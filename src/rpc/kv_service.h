// RPC key-value service: the two-sided hash-table baseline the paper's
// referenced work (HERD/FaSST [24, 25]) showed beating naive one-sided
// designs. One server-side hash table; clients do Get/Put/Delete in exactly
// one RPC round trip each — at the cost of server CPU.
#ifndef FMDS_SRC_RPC_KV_SERVICE_H_
#define FMDS_SRC_RPC_KV_SERVICE_H_

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "src/rpc/rpc.h"

namespace fmds {

class KvService {
 public:
  enum Method : uint32_t { kGet = 1, kPut = 2, kDelete = 3, kSize = 4 };

  // Registers the handlers on `server`. The service owns the map.
  explicit KvService(RpcServer* server);

  size_t size() const { return map_.size(); }

 private:
  std::unordered_map<uint64_t, uint64_t> map_;
};

// Client-side stub.
class KvStub {
 public:
  explicit KvStub(RpcClient client) : rpc_(client) {}

  Result<uint64_t> Get(uint64_t key);        // kNotFound when absent
  Status Put(uint64_t key, uint64_t value);
  Status Delete(uint64_t key);
  Result<uint64_t> Size();

 private:
  RpcClient rpc_;
};

}  // namespace fmds

#endif  // FMDS_SRC_RPC_KV_SERVICE_H_
