// Byte-level request/response codec for the two-sided (RPC) baselines.
// Little-endian fixed-width fields; length-prefixed byte strings.
#ifndef FMDS_SRC_RPC_MESSAGE_H_
#define FMDS_SRC_RPC_MESSAGE_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace fmds {

class MsgWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void Bytes(std::span<const std::byte> data) {
    U32(static_cast<uint32_t>(data.size()));
    Raw(data.data(), data.size());
  }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }

  std::span<const std::byte> view() const { return buf_; }
  std::vector<std::byte> Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  void Raw(const void* p, size_t n) {
    const size_t at = buf_.size();
    buf_.resize(at + n);
    std::memcpy(buf_.data() + at, p, n);
  }
  std::vector<std::byte> buf_;
};

class MsgReader {
 public:
  explicit MsgReader(std::span<const std::byte> data) : data_(data) {}

  Result<uint8_t> U8() {
    uint8_t v;
    FMDS_RETURN_IF_ERROR(Raw(&v, sizeof(v)));
    return v;
  }
  Result<uint32_t> U32() {
    uint32_t v;
    FMDS_RETURN_IF_ERROR(Raw(&v, sizeof(v)));
    return v;
  }
  Result<uint64_t> U64() {
    uint64_t v;
    FMDS_RETURN_IF_ERROR(Raw(&v, sizeof(v)));
    return v;
  }
  Result<std::vector<std::byte>> Bytes() {
    FMDS_ASSIGN_OR_RETURN(uint32_t n, U32());
    if (pos_ + n > data_.size()) {
      return Status(StatusCode::kOutOfRange, "truncated message");
    }
    std::vector<std::byte> out(data_.begin() + pos_, data_.begin() + pos_ + n);
    pos_ += n;
    return out;
  }

  size_t remaining() const { return data_.size() - pos_; }

 private:
  Status Raw(void* p, size_t n) {
    if (pos_ + n > data_.size()) {
      return OutOfRange("truncated message");
    }
    std::memcpy(p, data_.data() + pos_, n);
    pos_ += n;
    return OkStatus();
  }

  std::span<const std::byte> data_;
  size_t pos_ = 0;
};

}  // namespace fmds

#endif  // FMDS_SRC_RPC_MESSAGE_H_
