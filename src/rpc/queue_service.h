// RPC queue service: the two-sided baseline for §5.3. Enqueue/Dequeue each
// cost one RPC round trip plus server CPU; the server-side deque gives the
// queue trivial linearizability — the comparison point for the one-sided
// faai/saai queue.
#ifndef FMDS_SRC_RPC_QUEUE_SERVICE_H_
#define FMDS_SRC_RPC_QUEUE_SERVICE_H_

#include <cstdint>
#include <deque>

#include "src/rpc/rpc.h"

namespace fmds {

class QueueService {
 public:
  enum Method : uint32_t { kEnqueue = 10, kDequeue = 11, kLen = 12 };

  explicit QueueService(RpcServer* server);

  size_t size() const { return queue_.size(); }

 private:
  std::deque<uint64_t> queue_;
};

class QueueStub {
 public:
  explicit QueueStub(RpcClient client) : rpc_(client) {}

  Status Enqueue(uint64_t value);
  Result<uint64_t> Dequeue();  // kNotFound when empty
  Result<uint64_t> Len();

 private:
  RpcClient rpc_;
};

}  // namespace fmds

#endif  // FMDS_SRC_RPC_QUEUE_SERVICE_H_
