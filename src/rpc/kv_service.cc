#include "src/rpc/kv_service.h"

#include "src/rpc/message.h"

namespace fmds {

KvService::KvService(RpcServer* server) {
  server->RegisterHandler(
      kGet, [this](std::span<const std::byte> req,
                   std::vector<std::byte>& resp) -> Status {
        MsgReader reader(req);
        FMDS_ASSIGN_OR_RETURN(uint64_t key, reader.U64());
        MsgWriter writer;
        auto it = map_.find(key);
        writer.U8(it != map_.end() ? 1 : 0);
        writer.U64(it != map_.end() ? it->second : 0);
        resp = writer.Take();
        return OkStatus();
      });
  server->RegisterHandler(
      kPut, [this](std::span<const std::byte> req,
                   std::vector<std::byte>& resp) -> Status {
        MsgReader reader(req);
        FMDS_ASSIGN_OR_RETURN(uint64_t key, reader.U64());
        FMDS_ASSIGN_OR_RETURN(uint64_t value, reader.U64());
        map_[key] = value;
        MsgWriter writer;
        writer.U8(1);
        resp = writer.Take();
        return OkStatus();
      });
  server->RegisterHandler(
      kDelete, [this](std::span<const std::byte> req,
                      std::vector<std::byte>& resp) -> Status {
        MsgReader reader(req);
        FMDS_ASSIGN_OR_RETURN(uint64_t key, reader.U64());
        MsgWriter writer;
        writer.U8(map_.erase(key) != 0 ? 1 : 0);
        resp = writer.Take();
        return OkStatus();
      });
  server->RegisterHandler(
      kSize, [this](std::span<const std::byte>,
                    std::vector<std::byte>& resp) -> Status {
        MsgWriter writer;
        writer.U64(map_.size());
        resp = writer.Take();
        return OkStatus();
      });
}

Result<uint64_t> KvStub::Get(uint64_t key) {
  ScopedOpLabel label(&rpc_.client()->recorder(), "rpc.kv.get");
  MsgWriter writer;
  writer.U64(key);
  std::vector<std::byte> resp;
  FMDS_RETURN_IF_ERROR(rpc_.Call(KvService::kGet, writer.view(), resp));
  MsgReader reader(resp);
  FMDS_ASSIGN_OR_RETURN(uint8_t found, reader.U8());
  FMDS_ASSIGN_OR_RETURN(uint64_t value, reader.U64());
  if (found == 0) {
    return Status(StatusCode::kNotFound, "key absent");
  }
  return value;
}

Status KvStub::Put(uint64_t key, uint64_t value) {
  ScopedOpLabel label(&rpc_.client()->recorder(), "rpc.kv.put");
  MsgWriter writer;
  writer.U64(key);
  writer.U64(value);
  std::vector<std::byte> resp;
  return rpc_.Call(KvService::kPut, writer.view(), resp);
}

Status KvStub::Delete(uint64_t key) {
  ScopedOpLabel label(&rpc_.client()->recorder(), "rpc.kv.delete");
  MsgWriter writer;
  writer.U64(key);
  std::vector<std::byte> resp;
  FMDS_RETURN_IF_ERROR(rpc_.Call(KvService::kDelete, writer.view(), resp));
  MsgReader reader(resp);
  FMDS_ASSIGN_OR_RETURN(uint8_t erased, reader.U8());
  if (erased == 0) {
    return NotFound("key absent");
  }
  return OkStatus();
}

Result<uint64_t> KvStub::Size() {
  ScopedOpLabel label(&rpc_.client()->recorder(), "rpc.kv.size");
  MsgWriter writer;
  std::vector<std::byte> resp;
  FMDS_RETURN_IF_ERROR(rpc_.Call(KvService::kSize, writer.view(), resp));
  MsgReader reader(resp);
  return reader.U64();
}

}  // namespace fmds
