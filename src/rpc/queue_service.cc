#include "src/rpc/queue_service.h"

#include "src/rpc/message.h"

namespace fmds {

QueueService::QueueService(RpcServer* server) {
  server->RegisterHandler(
      kEnqueue, [this](std::span<const std::byte> req,
                       std::vector<std::byte>& resp) -> Status {
        MsgReader reader(req);
        FMDS_ASSIGN_OR_RETURN(uint64_t value, reader.U64());
        queue_.push_back(value);
        MsgWriter writer;
        writer.U8(1);
        resp = writer.Take();
        return OkStatus();
      });
  server->RegisterHandler(
      kDequeue, [this](std::span<const std::byte>,
                       std::vector<std::byte>& resp) -> Status {
        MsgWriter writer;
        if (queue_.empty()) {
          writer.U8(0);
          writer.U64(0);
        } else {
          writer.U8(1);
          writer.U64(queue_.front());
          queue_.pop_front();
        }
        resp = writer.Take();
        return OkStatus();
      });
  server->RegisterHandler(
      kLen, [this](std::span<const std::byte>,
                   std::vector<std::byte>& resp) -> Status {
        MsgWriter writer;
        writer.U64(queue_.size());
        resp = writer.Take();
        return OkStatus();
      });
}

Status QueueStub::Enqueue(uint64_t value) {
  ScopedOpLabel label(&rpc_.client()->recorder(), "rpc.queue.enqueue");
  MsgWriter writer;
  writer.U64(value);
  std::vector<std::byte> resp;
  return rpc_.Call(QueueService::kEnqueue, writer.view(), resp);
}

Result<uint64_t> QueueStub::Dequeue() {
  ScopedOpLabel label(&rpc_.client()->recorder(), "rpc.queue.dequeue");
  MsgWriter writer;
  std::vector<std::byte> resp;
  FMDS_RETURN_IF_ERROR(rpc_.Call(QueueService::kDequeue, writer.view(), resp));
  MsgReader reader(resp);
  FMDS_ASSIGN_OR_RETURN(uint8_t ok, reader.U8());
  FMDS_ASSIGN_OR_RETURN(uint64_t value, reader.U64());
  if (ok == 0) {
    return Status(StatusCode::kNotFound, "queue empty");
  }
  return value;
}

Result<uint64_t> QueueStub::Len() {
  ScopedOpLabel label(&rpc_.client()->recorder(), "rpc.queue.len");
  MsgWriter writer;
  std::vector<std::byte> resp;
  FMDS_RETURN_IF_ERROR(rpc_.Call(QueueService::kLen, writer.view(), resp));
  MsgReader reader(resp);
  return reader.U64();
}

}  // namespace fmds
