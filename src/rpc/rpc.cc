#include "src/rpc/rpc.h"

namespace fmds {

void RpcServer::RegisterHandler(uint32_t method, RpcHandler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  handlers_[method] = std::move(handler);
}

void RpcServer::set_load_factor(double rho) {
  if (rho < 0.0) {
    rho = 0.0;
  }
  if (rho > 0.95) {
    rho = 0.95;
  }
  load_factor_.store(rho, std::memory_order_relaxed);
}

Status RpcServer::Dispatch(uint32_t method,
                           std::span<const std::byte> request,
                           std::vector<std::byte>& response,
                           uint64_t* service_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = handlers_.find(method);
  if (it == handlers_.end()) {
    return Unimplemented("no handler for method");
  }
  handler_charge_ = 0;
  const Status status = it->second(request, response);
  uint64_t ns =
      options_.service_ns +
      static_cast<uint64_t>(options_.per_byte_ns *
                            static_cast<double>(request.size() +
                                                response.size())) +
      handler_charge_;
  const double rho = load_factor_.load(std::memory_order_relaxed);
  if (rho > 0.0) {
    // Occupied server: the request waits behind the colocated CPU's other
    // work before (and between) getting service — M/M/1 waiting time.
    ns += static_cast<uint64_t>(static_cast<double>(ns) * rho / (1.0 - rho));
  }
  calls_.fetch_add(1, std::memory_order_relaxed);
  busy_ns_.fetch_add(ns, std::memory_order_relaxed);
  if (service_ns != nullptr) {
    *service_ns = ns;
  }
  return status;
}

Status RpcClient::Call(uint32_t method, std::span<const std::byte> request,
                       std::vector<std::byte>& response) {
  // Congestion admission (§14): the request is one arrival at the server
  // node's NIC front end, exactly like a one-sided op. Runs the caller's
  // retry policy; a shed that exhausts it surfaces as kOverloaded without
  // dispatching the handler. Agent-local calls (client homed on the server
  // node) bypass the front end, as do fabrics with congestion disabled.
  FMDS_ASSIGN_OR_RETURN(
      const uint64_t queue_ns,
      client_->AdmitCongestion(FarOpKind::kRpc, server_->node(), kNullFarAddr,
                               1, request.size()));
  uint64_t service_ns = 0;
  const Status status =
      server_->Dispatch(method, request, response, &service_ns);
  auto& stats = client_->mutable_stats();
  ++stats.rpc_calls;
  stats.messages += 2;  // request + response messages
  stats.bytes_written += request.size();
  stats.bytes_read += response.size();
  const auto& latency = client_->fabric()->options().latency;
  uint64_t rpc_ns = latency.FarRoundTripNs(request.size() + response.size()) +
                    service_ns + queue_ns;
  const NodeId node = server_->node();
  if (node != kObsNoNode) {
    // A colocated server's requests cross the same degraded link/controller
    // one-sided accesses to that node do.
    rpc_ns += client_->fabric()->node(node).extra_service_ns();
  }
  const uint64_t start_ns = client_->clock().now_ns();
  client_->clock().Advance(rpc_ns);
  auto& recorder = client_->recorder();
  if (recorder.recording()) {
    recorder.RecordOp(FarOpKind::kRpc, node, kNullFarAddr,
                      request.size() + response.size(), start_ns, rpc_ns,
                      status.ok());
  }
  return status;
}

}  // namespace fmds
