// Two-sided RPC substrate: the distributed-data-structure baseline of §3.1.
//
// An RpcServer models "a processor close to the memory [that] can receive
// and service RPC requests". Handlers run inline under the server's dispatch
// lock (the server is ONE processor — this serialization is the point: it is
// what one-sided access avoids). The server accumulates modelled CPU busy
// time so the throughput model can find where it saturates.
//
// An RpcClient charges its FarClient one fabric round trip (request +
// response bytes) plus the server service time per call.
#ifndef FMDS_SRC_RPC_RPC_H_
#define FMDS_SRC_RPC_RPC_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/fabric/far_client.h"

namespace fmds {

using RpcHandler = std::function<Status(std::span<const std::byte> request,
                                        std::vector<std::byte>& response)>;

struct RpcServerOptions {
  // Modelled CPU nanoseconds per request, excluding per-byte handling.
  uint64_t service_ns = 400;
  // Modelled CPU nanoseconds per request/response payload byte.
  double per_byte_ns = 0.05;
};

class RpcServer {
 public:
  explicit RpcServer(RpcServerOptions options = {}) : options_(options) {}

  void RegisterHandler(uint32_t method, RpcHandler handler);

  // Executes the handler; fills `service_ns` with the modelled CPU time
  // consumed. Thread-safe (serialized, as a single server core would be).
  Status Dispatch(uint32_t method, std::span<const std::byte> request,
                  std::vector<std::byte>& response, uint64_t* service_ns);

  uint64_t calls() const { return calls_.load(std::memory_order_relaxed); }
  uint64_t busy_ns() const { return busy_ns_.load(std::memory_order_relaxed); }
  const RpcServerOptions& options() const { return options_; }

 private:
  RpcServerOptions options_;
  std::mutex mu_;
  std::unordered_map<uint32_t, RpcHandler> handlers_;
  std::atomic<uint64_t> calls_{0};
  std::atomic<uint64_t> busy_ns_{0};
};

class RpcClient {
 public:
  RpcClient(FarClient* client, RpcServer* server)
      : client_(client), server_(server) {}

  // One round trip: ships `request`, runs the handler at the server,
  // returns `response`. Advances the client clock by
  // RTT(request+response bytes) + server service time.
  Status Call(uint32_t method, std::span<const std::byte> request,
              std::vector<std::byte>& response);

  FarClient* client() { return client_; }
  RpcServer* server() { return server_; }

 private:
  FarClient* client_;
  RpcServer* server_;
};

}  // namespace fmds

#endif  // FMDS_SRC_RPC_RPC_H_
