// Two-sided RPC substrate: the distributed-data-structure baseline of §3.1.
//
// An RpcServer models "a processor close to the memory [that] can receive
// and service RPC requests". Handlers run inline under the server's dispatch
// lock (the server is ONE processor — this serialization is the point: it is
// what one-sided access avoids). The server accumulates modelled CPU busy
// time so the throughput model can find where it saturates.
//
// An RpcClient charges its FarClient one fabric round trip (request +
// response bytes) plus the server service time per call.
#ifndef FMDS_SRC_RPC_RPC_H_
#define FMDS_SRC_RPC_RPC_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/fabric/far_client.h"

namespace fmds {

using RpcHandler = std::function<Status(std::span<const std::byte> request,
                                        std::vector<std::byte>& response)>;

struct RpcServerOptions {
  // Modelled CPU nanoseconds per request, excluding per-byte handling.
  uint64_t service_ns = 400;
  // Modelled CPU nanoseconds per request/response payload byte.
  double per_byte_ns = 0.05;
};

class RpcServer {
 public:
  explicit RpcServer(RpcServerOptions options = {}) : options_(options) {}

  void RegisterHandler(uint32_t method, RpcHandler handler);

  // Executes the handler; fills `service_ns` with the modelled CPU time
  // consumed. Thread-safe (serialized, as a single server core would be).
  Status Dispatch(uint32_t method, std::span<const std::byte> request,
                  std::vector<std::byte>& response, uint64_t* service_ns);

  // Memory node this server is colocated with; kObsNoNode for free-floating
  // servers. RpcClient attributes calls (recorder node column + the node's
  // injected extra_service_ns) to it.
  void set_node(NodeId node) { node_.store(node, std::memory_order_relaxed); }
  NodeId node() const { return node_.load(std::memory_order_relaxed); }

  // CPU occupancy of the colocated processor from work OUTSIDE this
  // dispatch queue (the server also runs the application, §3.1). Modelled as
  // the M/M/1 waiting factor: every call's service time is inflated by
  // rho / (1 - rho) of queueing delay. This is the knob that moves the
  // one-sided vs RPC crossover — one-sided accesses bypass the server CPU
  // and never see it. Clamped to [0, 0.95].
  void set_load_factor(double rho);
  double load_factor() const {
    return load_factor_.load(std::memory_order_relaxed);
  }

  // Handlers that run far-structure operations through a server-side
  // FarClient report the simulated nanoseconds that client consumed; the
  // charge rides on the current call's service time (and therefore on the
  // caller's clock and the occupancy inflation). Valid only from inside a
  // handler invoked by Dispatch.
  void ChargeService(uint64_t ns) { handler_charge_ += ns; }

  uint64_t calls() const { return calls_.load(std::memory_order_relaxed); }
  uint64_t busy_ns() const { return busy_ns_.load(std::memory_order_relaxed); }
  const RpcServerOptions& options() const { return options_; }

 private:
  RpcServerOptions options_;
  std::mutex mu_;
  std::unordered_map<uint32_t, RpcHandler> handlers_;
  uint64_t handler_charge_ = 0;  // guarded by mu_ (set during dispatch)
  std::atomic<NodeId> node_{kObsNoNode};
  std::atomic<double> load_factor_{0.0};
  std::atomic<uint64_t> calls_{0};
  std::atomic<uint64_t> busy_ns_{0};
};

class RpcClient {
 public:
  RpcClient(FarClient* client, RpcServer* server)
      : client_(client), server_(server) {}

  // One round trip: ships `request`, runs the handler at the server,
  // returns `response`. Advances the client clock by
  // RTT(request+response bytes) + server service time.
  Status Call(uint32_t method, std::span<const std::byte> request,
              std::vector<std::byte>& response);

  FarClient* client() { return client_; }
  RpcServer* server() { return server_; }

 private:
  FarClient* client_;
  RpcServer* server_;
};

}  // namespace fmds

#endif  // FMDS_SRC_RPC_RPC_H_
