// §6 case study: monitoring a sampled metric through far memory.
//
// "Rather than storing samples, far memory keeps a vector with a histogram
//  of the samples. The producer treats a sample as an offset into the vector,
//  and increments the location using one far memory access with indexed
//  indirect addressing. Each consumer uses notifications to get changes in
//  the histogram vector at offsets corresponding to the alarm ranges."
//
// Far layout:
//   store header: current-window base pointer (the add2 anchor), window
//                 sequence number, config, per-window base table
//   windows:      num_windows page-aligned histogram vectors (num_bins words)
//
// Producer: Record(sample) = ONE far access (add2 through the current-window
// pointer); RotateWindow() swings the base pointer (readers follow via the
// pointer-word notification) and zeroes the reused window off the critical
// path.
//
// Consumer: subscribes notify0d to the alarm range [warn_bin, num_bins) of
// every window; normal-range samples cause NO traffic to consumers. Raises
// Warning/Critical/Failure alarms when a bin's count reaches the configured
// duration within a window.
//
// NaiveMonitor is the §6 strawman: the producer logs raw samples, every
// consumer reads every sample — (k+1)·N far transfers for k consumers.
#ifndef FMDS_SRC_APPS_MONITORING_MONITORING_H_
#define FMDS_SRC_APPS_MONITORING_MONITORING_H_

#include <cstdint>
#include <vector>

#include "src/alloc/far_allocator.h"
#include "src/fabric/far_client.h"

namespace fmds {

struct MonitorConfig {
  uint64_t num_bins = 64;
  double min_value = 0.0;
  double max_value = 100.0;     // samples clamp into [min, max)
  uint64_t num_windows = 4;     // circular buffer of histogram windows
  uint64_t warn_bin = 48;       // alarm range starts here
  uint64_t critical_bin = 56;
  uint64_t failure_bin = 62;
  uint64_t alarm_duration = 3;  // exceedances within a window to alarm
};

enum class AlarmSeverity : uint8_t { kWarning = 0, kCritical = 1, kFailure = 2 };

struct Alarm {
  AlarmSeverity severity;
  uint64_t window_seq;
  uint64_t bin;
  uint64_t count;
};

// Far-memory layout owner; producer and consumers attach to its header.
class MonitorStore {
 public:
  static Result<MonitorStore> Create(FarClient* client, FarAllocator* alloc,
                                     MonitorConfig config);
  static Result<MonitorStore> Attach(FarClient* client, FarAddr header);

  FarAddr header() const { return header_; }
  const MonitorConfig& config() const { return config_; }
  FarAddr current_ptr_addr() const { return header_; }
  FarAddr seq_addr() const { return header_ + kWordSize; }
  FarAddr window_base(uint64_t w) const { return windows_[w]; }
  uint64_t num_windows() const { return windows_.size(); }

 private:
  // Header words: [0] current window base, [1] window seq, [2] num_bins,
  // [3] num_windows, [4] warn, [5] critical, [6] failure, [7] duration,
  // [8..] window base table.
  MonitorStore(FarClient* client, FarAddr header)
      : client_(client), header_(header) {}

  FarClient* client_;
  FarAddr header_;
  MonitorConfig config_;
  std::vector<FarAddr> windows_;
};

class MetricProducer {
 public:
  MetricProducer(MonitorStore* store, FarClient* client)
      : store_(store), client_(client) {}

  // ONE far access: add2 increments histogram[bin] through the
  // current-window base pointer.
  Status Record(double sample);

  // Advances to the next window: zeroes it (background), swings the base
  // pointer (notify0 subscribers on the pointer word fire), bumps the seq.
  Status RotateWindow();

  uint64_t windows_produced() const { return rotations_; }

 private:
  uint64_t BinOf(double sample) const;

  MonitorStore* store_;
  FarClient* client_;
  uint64_t rotations_ = 0;
};

class MetricConsumer {
 public:
  // `min_severity` filters which alarm ranges this consumer subscribes to —
  // "different consumers can be notified of different thresholds".
  MetricConsumer(MonitorStore* store, FarClient* client,
                 AlarmSeverity min_severity,
                 DeliveryPolicy policy = DeliveryPolicy::Reliable())
      : store_(store), client_(client), min_severity_(min_severity),
        policy_(policy) {}

  // Arms notify0d on the alarm bins of every window + notify0 on the
  // current-window pointer (rotation tracking).
  Status Subscribe();

  // Drains the notification channel, returns alarms crossing thresholds.
  Result<std::vector<Alarm>> Poll();

  // Optional extra far access: snapshot the alarm range of the current
  // window for aggregation ("consumers optionally copy the histogram
  // values in the prescribed range").
  Result<std::vector<uint64_t>> CopyAlarmRange();

  // §6: "since consumers can access the distribution over a number of
  // windows, they can also correlate the histograms to detect variations
  // in the metric over multiple windows". One rgather (ONE far access)
  // returns the alarm range of every window.
  Result<std::vector<std::vector<uint64_t>>> SnapshotAllWindows();
  // Normalized L1 distance between the two most recent windows' alarm
  // histograms — a cheap drift detector built on SnapshotAllWindows.
  Result<double> WindowDrift();

  uint64_t rotations_seen() const { return rotations_seen_; }
  uint64_t data_events() const { return data_events_; }

 private:
  uint64_t first_subscribed_bin() const;
  AlarmSeverity SeverityOf(uint64_t bin) const;

  MonitorStore* store_;
  FarClient* client_;
  AlarmSeverity min_severity_;
  DeliveryPolicy policy_;
  std::vector<SubId> window_subs_;
  SubId rotation_sub_ = kInvalidSubId;
  uint64_t current_seq_ = 0;
  uint64_t rotations_seen_ = 0;
  uint64_t data_events_ = 0;
  // Last alarm level already raised per bin in the current window, to avoid
  // re-raising on every increment.
  std::vector<uint64_t> raised_counts_;
};

// §6 strawman: raw sample log. Producer appends samples; each consumer
// reads every sample — (k+1)N transfers for N samples, k consumers.
class NaiveMonitor {
 public:
  static Result<NaiveMonitor> Create(FarClient* client, FarAllocator* alloc,
                                     uint64_t log_capacity);
  static Result<NaiveMonitor> Attach(FarClient* client, FarAddr header);

  FarAddr header() const { return header_; }

  // Producer: one far op per sample (sample + index via wscatter).
  Status Record(FarClient* client, double sample);

  // Consumer: reads samples it has not seen; one far access per sample
  // (plus an index poll per batch). Returns how many it consumed.
  Result<uint64_t> PollSamples(FarClient* client, uint64_t* consumer_cursor,
                               std::vector<double>* out);

 private:
  // Header: [0] next index, [1] log base, [2] capacity.
  NaiveMonitor(FarAddr header) : header_(header) {}

  FarAddr header_;
  FarAddr log_ = kNullFarAddr;
  uint64_t capacity_ = 0;
  uint64_t producer_cursor_ = 0;  // single-producer append position
};

}  // namespace fmds

#endif  // FMDS_SRC_APPS_MONITORING_MONITORING_H_
