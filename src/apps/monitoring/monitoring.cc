#include "src/apps/monitoring/monitoring.h"

#include <algorithm>
#include <cmath>

#include "src/common/bytes.h"
#include "src/obs/recorder.h"

namespace fmds {

// ------------------------------ MonitorStore ------------------------------

Result<MonitorStore> MonitorStore::Create(FarClient* client,
                                          FarAllocator* alloc,
                                          MonitorConfig config) {
  if (config.num_bins == 0 || config.num_windows == 0 ||
      config.num_bins * kWordSize > kPageSize) {
    return Status(StatusCode::kInvalidArgument,
                  "bins must fit one page for notification ranges");
  }
  if (!(config.warn_bin <= config.critical_bin &&
        config.critical_bin <= config.failure_bin &&
        config.failure_bin < config.num_bins)) {
    return Status(StatusCode::kInvalidArgument, "bad alarm thresholds");
  }
  const uint64_t header_bytes = (8 + config.num_windows) * kWordSize;
  FMDS_ASSIGN_OR_RETURN(FarAddr header, alloc->Allocate(header_bytes));
  MonitorStore store(client, header);
  store.config_ = config;
  std::vector<uint64_t> hdr(8 + config.num_windows, 0);
  for (uint64_t w = 0; w < config.num_windows; ++w) {
    // Page-aligned so each window's alarm range is one valid subscription.
    FMDS_ASSIGN_OR_RETURN(
        FarAddr base, alloc->Allocate(config.num_bins * kWordSize,
                                      AllocHint::Any(), kPageSize));
    std::vector<uint64_t> zeros(config.num_bins, 0);
    FMDS_RETURN_IF_ERROR(client->Write(
        base, std::as_bytes(std::span<const uint64_t>(zeros))));
    store.windows_.push_back(base);
    hdr[8 + w] = base;
  }
  hdr[0] = store.windows_[0];
  hdr[1] = 0;
  hdr[2] = config.num_bins;
  hdr[3] = config.num_windows;
  hdr[4] = config.warn_bin;
  hdr[5] = config.critical_bin;
  hdr[6] = config.failure_bin;
  hdr[7] = config.alarm_duration;
  FMDS_RETURN_IF_ERROR(client->Write(
      header, std::as_bytes(std::span<const uint64_t>(hdr))));
  return store;
}

Result<MonitorStore> MonitorStore::Attach(FarClient* client, FarAddr header) {
  uint64_t fixed[8];
  FMDS_RETURN_IF_ERROR(client->Read(
      header, std::as_writable_bytes(std::span<uint64_t>(fixed))));
  MonitorStore store(client, header);
  store.config_.num_bins = fixed[2];
  store.config_.num_windows = fixed[3];
  store.config_.warn_bin = fixed[4];
  store.config_.critical_bin = fixed[5];
  store.config_.failure_bin = fixed[6];
  store.config_.alarm_duration = fixed[7];
  std::vector<uint64_t> table(store.config_.num_windows);
  FMDS_RETURN_IF_ERROR(client->Read(
      header + 8 * kWordSize,
      std::as_writable_bytes(std::span<uint64_t>(table))));
  store.windows_.assign(table.begin(), table.end());
  return store;
}

// ----------------------------- MetricProducer -----------------------------

uint64_t MetricProducer::BinOf(double sample) const {
  const MonitorConfig& cfg = store_->config();
  const double span = cfg.max_value - cfg.min_value;
  double norm = (sample - cfg.min_value) / span;
  norm = std::clamp(norm, 0.0, 1.0);
  uint64_t bin = static_cast<uint64_t>(norm * static_cast<double>(cfg.num_bins));
  return std::min(bin, cfg.num_bins - 1);
}

Status MetricProducer::Record(double sample) {
  ScopedOpLabel label(&client_->recorder(), "monitor.record");
  // The whole fast path: one indexed indirect atomic add through the
  // current-window base pointer.
  client_->AccountNear(1);  // local binning
  return client_->Add2(store_->current_ptr_addr(), 1,
                       BinOf(sample) * kWordSize);
}

Status MetricProducer::RotateWindow() {
  const MonitorConfig& cfg = store_->config();
  const uint64_t next = (rotations_ + 1) % cfg.num_windows;
  // Zero the window being reused off the critical path (its previous-lap
  // content has been consumed cfg.num_windows rotations ago).
  std::vector<uint64_t> zeros(cfg.num_bins, 0);
  FMDS_RETURN_IF_ERROR(client_->PostWriteBackground(
      store_->window_base(next),
      std::as_bytes(std::span<const uint64_t>(zeros))));
  // Swing the base pointer; consumers subscribed to this word get notified.
  FMDS_RETURN_IF_ERROR(
      client_->WriteWord(store_->current_ptr_addr(),
                         store_->window_base(next)));
  FMDS_RETURN_IF_ERROR(client_->FetchAdd(store_->seq_addr(), 1).status());
  ++rotations_;
  return OkStatus();
}

// ----------------------------- MetricConsumer -----------------------------

uint64_t MetricConsumer::first_subscribed_bin() const {
  const MonitorConfig& cfg = store_->config();
  switch (min_severity_) {
    case AlarmSeverity::kWarning:
      return cfg.warn_bin;
    case AlarmSeverity::kCritical:
      return cfg.critical_bin;
    case AlarmSeverity::kFailure:
      return cfg.failure_bin;
  }
  return cfg.warn_bin;
}

AlarmSeverity MetricConsumer::SeverityOf(uint64_t bin) const {
  const MonitorConfig& cfg = store_->config();
  if (bin >= cfg.failure_bin) {
    return AlarmSeverity::kFailure;
  }
  if (bin >= cfg.critical_bin) {
    return AlarmSeverity::kCritical;
  }
  return AlarmSeverity::kWarning;
}

Status MetricConsumer::Subscribe() {
  const MonitorConfig& cfg = store_->config();
  const uint64_t first = first_subscribed_bin();
  for (uint64_t w = 0; w < store_->num_windows(); ++w) {
    NotifySpec spec;
    spec.mode = NotifyMode::kOnWriteData;  // notify0d: counts travel along
    spec.addr = store_->window_base(w) + first * kWordSize;
    spec.len = (cfg.num_bins - first) * kWordSize;
    spec.policy = policy_;
    FMDS_ASSIGN_OR_RETURN(SubId id, client_->Subscribe(spec));
    window_subs_.push_back(id);
  }
  NotifySpec rotation;
  rotation.mode = NotifyMode::kOnWrite;  // notify0 on the base pointer word
  rotation.addr = store_->current_ptr_addr();
  rotation.len = kWordSize;
  rotation.policy = DeliveryPolicy::Reliable();
  FMDS_ASSIGN_OR_RETURN(rotation_sub_, client_->Subscribe(rotation));
  raised_counts_.assign(cfg.num_bins, 0);
  return OkStatus();
}

Result<std::vector<Alarm>> MetricConsumer::Poll() {
  ScopedOpLabel label(&client_->recorder(), "monitor.poll");
  const MonitorConfig& cfg = store_->config();
  std::vector<Alarm> alarms;
  while (auto event = client_->PollNotification()) {
    if (event->kind == NotifyEventKind::kLossWarning) {
      // Degraded delivery: resynchronize by snapshotting the alarm range.
      auto snapshot = CopyAlarmRange();
      if (!snapshot.ok()) {
        return snapshot.status();
      }
      const uint64_t first = first_subscribed_bin();
      for (uint64_t i = 0; i < snapshot->size(); ++i) {
        const uint64_t bin = first + i;
        const uint64_t count = (*snapshot)[i];
        if (count >= cfg.alarm_duration && raised_counts_[bin] < count) {
          alarms.push_back(Alarm{SeverityOf(bin), current_seq_, bin, count});
          raised_counts_[bin] = count;
        }
      }
      continue;
    }
    if (event->sub_id == rotation_sub_) {
      ++rotations_seen_;
      ++current_seq_;
      std::fill(raised_counts_.begin(), raised_counts_.end(), 0);
      continue;
    }
    // Histogram data event: the payload carries the changed bin counts.
    ++data_events_;
    // Which window's alarm range did this land in?
    uint64_t window = store_->num_windows();
    for (uint64_t w = 0; w < store_->num_windows(); ++w) {
      const FarAddr base = store_->window_base(w);
      if (event->addr >= base && event->addr < base + cfg.num_bins * kWordSize) {
        window = w;
        break;
      }
    }
    if (window == store_->num_windows() || event->data.size() < kWordSize) {
      continue;
    }
    const FarAddr base = store_->window_base(window);
    const uint64_t first_bin = (event->addr - base) / kWordSize;
    const uint64_t words = event->data.size() / kWordSize;
    for (uint64_t i = 0; i < words; ++i) {
      const uint64_t bin = first_bin + i;
      const uint64_t count =
          LoadAs<uint64_t>(std::span<const std::byte>(event->data),
                           i * kWordSize);
      if (count >= cfg.alarm_duration && raised_counts_[bin] < count) {
        alarms.push_back(Alarm{SeverityOf(bin), current_seq_, bin, count});
        raised_counts_[bin] = count;
      }
    }
  }
  return alarms;
}

Result<std::vector<uint64_t>> MetricConsumer::CopyAlarmRange() {
  const MonitorConfig& cfg = store_->config();
  const uint64_t first = first_subscribed_bin();
  std::vector<uint64_t> out(cfg.num_bins - first);
  // One extra far access: load1-style read through the current pointer
  // would need the offset; read via the cached window of the current seq.
  const FarAddr base =
      store_->window_base(current_seq_ % store_->num_windows());
  FMDS_RETURN_IF_ERROR(client_->Read(
      base + first * kWordSize,
      std::as_writable_bytes(std::span<uint64_t>(out))));
  return out;
}

Result<std::vector<std::vector<uint64_t>>>
MetricConsumer::SnapshotAllWindows() {
  const MonitorConfig& cfg = store_->config();
  const uint64_t first = first_subscribed_bin();
  const uint64_t range_words = cfg.num_bins - first;
  std::vector<FarSeg> iov;
  iov.reserve(store_->num_windows());
  for (uint64_t w = 0; w < store_->num_windows(); ++w) {
    iov.push_back(FarSeg{store_->window_base(w) + first * kWordSize,
                         range_words * kWordSize});
  }
  std::vector<uint64_t> flat(range_words * store_->num_windows());
  FMDS_RETURN_IF_ERROR(client_->RGather(
      iov, std::as_writable_bytes(std::span<uint64_t>(flat))));
  std::vector<std::vector<uint64_t>> out(store_->num_windows());
  for (uint64_t w = 0; w < store_->num_windows(); ++w) {
    out[w].assign(flat.begin() + w * range_words,
                  flat.begin() + (w + 1) * range_words);
  }
  return out;
}

Result<double> MetricConsumer::WindowDrift() {
  FMDS_ASSIGN_OR_RETURN(auto windows, SnapshotAllWindows());
  const uint64_t count = store_->num_windows();
  const uint64_t current = current_seq_ % count;
  const uint64_t previous = (current_seq_ + count - 1) % count;
  const auto& a = windows[current];
  const auto& b = windows[previous];
  uint64_t l1 = 0;
  uint64_t total = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    l1 += a[i] > b[i] ? a[i] - b[i] : b[i] - a[i];
    total += a[i] + b[i];
  }
  if (total == 0) {
    return 0.0;
  }
  return static_cast<double>(l1) / static_cast<double>(total);
}

// ------------------------------ NaiveMonitor ------------------------------

Result<NaiveMonitor> NaiveMonitor::Create(FarClient* client,
                                          FarAllocator* alloc,
                                          uint64_t log_capacity) {
  FMDS_ASSIGN_OR_RETURN(FarAddr header, alloc->Allocate(3 * kWordSize));
  FMDS_ASSIGN_OR_RETURN(FarAddr log,
                        alloc->Allocate(log_capacity * kWordSize));
  const uint64_t hdr[3] = {0, log, log_capacity};
  FMDS_RETURN_IF_ERROR(client->Write(
      header, std::as_bytes(std::span<const uint64_t>(hdr))));
  NaiveMonitor monitor(header);
  monitor.log_ = log;
  monitor.capacity_ = log_capacity;
  return monitor;
}

Result<NaiveMonitor> NaiveMonitor::Attach(FarClient* client, FarAddr header) {
  uint64_t hdr[3];
  FMDS_RETURN_IF_ERROR(client->Read(
      header, std::as_writable_bytes(std::span<uint64_t>(hdr))));
  NaiveMonitor monitor(header);
  monitor.log_ = hdr[1];
  monitor.capacity_ = hdr[2];
  return monitor;
}

Status NaiveMonitor::Record(FarClient* client, double sample) {
  ScopedOpLabel label(&client->recorder(), "naive.record");
  const uint64_t index = producer_cursor_;
  if (index >= capacity_) {
    return ResourceExhausted("sample log full");
  }
  ++producer_cursor_;
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(sample));
  std::memcpy(&bits, &sample, sizeof(bits));
  // One far op ships the sample and the bumped index together (wscatter).
  const uint64_t payload[2] = {bits, index + 1};
  const FarSeg iov[2] = {FarSeg{log_ + index * kWordSize, kWordSize},
                         FarSeg{header_, kWordSize}};
  return client->WScatter(iov,
                          std::as_bytes(std::span<const uint64_t>(payload)));
}

Result<uint64_t> NaiveMonitor::PollSamples(FarClient* client,
                                           uint64_t* consumer_cursor,
                                           std::vector<double>* out) {
  ScopedOpLabel label(&client->recorder(), "naive.poll");
  FMDS_ASSIGN_OR_RETURN(uint64_t produced, client->ReadWord(header_));
  uint64_t consumed = 0;
  while (*consumer_cursor < produced) {
    // One far access per sample — this is the (k+1)N cost the histogram
    // design eliminates.
    FMDS_ASSIGN_OR_RETURN(
        uint64_t bits,
        client->ReadWord(log_ + *consumer_cursor * kWordSize));
    double sample;
    std::memcpy(&sample, &bits, sizeof(sample));
    if (out != nullptr) {
      out->push_back(sample);
    }
    ++*consumer_cursor;
    ++consumed;
  }
  return consumed;
}

}  // namespace fmds
