// ASCII table printer used by the benchmark harness to emit paper-shaped
// rows/series (EXPERIMENTS.md pastes these directly).
#ifndef FMDS_SRC_COMMON_TABLE_H_
#define FMDS_SRC_COMMON_TABLE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace fmds {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  // Row cells are strings; use the Cell() helpers for numeric formatting.
  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  // Renders with a header rule and right-aligned numeric-looking cells.
  void Print(std::ostream& os, const std::string& title = "") const;

  static std::string Cell(uint64_t v);
  static std::string Cell(int64_t v);
  static std::string Cell(int v) { return Cell(static_cast<int64_t>(v)); }
  static std::string Cell(double v, int precision = 2);
  static std::string Cell(const std::string& s) { return s; }
  static std::string Cell(const char* s) { return s; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fmds

#endif  // FMDS_SRC_COMMON_TABLE_H_
