// Small helpers for treating POD values as byte spans when moving them
// through the fabric, plus iovec-style buffer descriptors shared by the
// scatter-gather primitives.
#ifndef FMDS_SRC_COMMON_BYTES_H_
#define FMDS_SRC_COMMON_BYTES_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

namespace fmds {

// Mutable / const views of a trivially-copyable value as raw bytes.
template <typename T>
std::span<std::byte> AsBytes(T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  return std::span<std::byte>(reinterpret_cast<std::byte*>(&value), sizeof(T));
}

template <typename T>
std::span<const std::byte> AsConstBytes(const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  return std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(&value), sizeof(T));
}

// Read a trivially-copyable T out of a byte span at `offset`.
template <typename T>
T LoadAs(std::span<const std::byte> bytes, size_t offset = 0) {
  static_assert(std::is_trivially_copyable_v<T>);
  T out;
  std::memcpy(&out, bytes.data() + offset, sizeof(T));
  return out;
}

template <typename T>
void StoreAs(std::span<std::byte> bytes, const T& value, size_t offset = 0) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::memcpy(bytes.data() + offset, &value, sizeof(T));
}

// A local buffer descriptor (client memory) for scatter-gather.
struct LocalBuf {
  std::byte* data;
  size_t len;
};

struct ConstLocalBuf {
  const std::byte* data;
  size_t len;
};

inline size_t TotalLen(std::span<const LocalBuf> iov) {
  size_t n = 0;
  for (const auto& b : iov) {
    n += b.len;
  }
  return n;
}

inline size_t TotalLen(std::span<const ConstLocalBuf> iov) {
  size_t n = 0;
  for (const auto& b : iov) {
    n += b.len;
  }
  return n;
}

}  // namespace fmds

#endif  // FMDS_SRC_COMMON_BYTES_H_
