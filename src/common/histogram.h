// Streaming statistics helpers for the benchmark harness: a fixed-resolution
// log-bucket latency histogram (HdrHistogram-lite) and a simple running
// mean/min/max accumulator.
#ifndef FMDS_SRC_COMMON_HISTOGRAM_H_
#define FMDS_SRC_COMMON_HISTOGRAM_H_

#include <algorithm>
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

namespace fmds {

// Log2-bucketed histogram with linear sub-buckets, covering [0, 2^62).
// Records integer values (typically nanoseconds or access counts) with
// bounded relative error set by sub_bucket_bits. Zero is a first-class
// value (bucket 0): background far ops cost the client clock nothing and
// the recorder still histograms them.
class LogHistogram {
 public:
  explicit LogHistogram(int sub_bucket_bits = 5);

  // Inline: this sits on the windowed-signals drain path, where an
  // out-of-line call per record dominated the E15 overhead budget.
  void Record(uint64_t value) {
    const size_t index = BucketIndex(value);
    buckets_[index]++;
    Touch(index);
    ++count_;
    sum_ += value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  // Batch-recorder interface (WindowedSignals): a caller that pre-buckets
  // values with BucketIndexFor folds whole batches in — bucket deltas via
  // AddBucketCount, then count/sum/min/max once via ApplyBatchSummary.
  // The index MUST come from BucketIndexFor with this histogram's sub_bits
  // and bucket_count().
  void AddBucketCount(size_t index, uint64_t n) {
    buckets_[index] += n;
    Touch(index);
  }
  void ApplyBatchSummary(uint64_t n, uint64_t sum, uint64_t min_value,
                         uint64_t max_value) {
    count_ += n;
    sum_ += sum;
    min_ = std::min(min_, min_value);
    max_ = std::max(max_, max_value);
  }
  size_t bucket_count() const { return buckets_.size(); }

  // Bucket-array size for a given resolution — what bucket_count() returns
  // on an instance built with the same sub_bits.
  static size_t BucketCountFor(int sub_bits) {
    return static_cast<size_t>(63) << sub_bits;
  }

  // The bucketing function, usable without an instance (hot paths bucket
  // into their own compact staging before ever touching a histogram).
  static size_t BucketIndexFor(uint64_t value, int sub_bits,
                               size_t num_buckets) {
    const uint64_t sub_count = 1ULL << sub_bits;
    if (value < sub_count) {
      return static_cast<size_t>(value);
    }
    const int msb = 63 - std::countl_zero(value);
    const int shift = msb - sub_bits;
    const uint64_t sub = (value >> shift) - sub_count;  // in [0, sub_count)
    const size_t base = static_cast<size_t>(msb - sub_bits + 1)
                        << sub_bits;
    return std::min(base + static_cast<size_t>(sub), num_buckets - 1);
  }
  void Merge(const LogHistogram& other);
  void Reset();
  // Zeroes counts in place, keeping the bucket allocation — the window
  // rotation path (WindowedHistogram) clears an expired sub-window on every
  // epoch advance, so this must not free/reallocate.
  void Clear() { Reset(); }

  // In-place bucket-wise merge. Unlike Merge(), which degrades a
  // resolution-mismatched source by re-recording bucket lower bounds, this
  // REJECTS a cross-sub-bits merge: returns false and leaves this histogram
  // untouched. Window rotation merges like-configured sub-windows only, and
  // a silent lossy merge there would corrupt rolling percentiles.
  bool MergeFrom(const LogHistogram& other);

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) /
                                   static_cast<double>(count_);
  }

  // Value at quantile q in [0, 1], e.g. 0.5 / 0.99 / 0.999. Results are
  // clamped into [min(), max()]: q=0 returns the exact minimum, q=1 the
  // exact maximum, and interior quantiles never report a bucket lower
  // bound below the smallest recorded value.
  uint64_t Percentile(double q) const;

  // "count=... mean=... p50=... p99=... max=..." one-liner.
  std::string Summary() const;

 private:
  size_t BucketIndex(uint64_t value) const {
    return BucketIndexFor(value, sub_bits_, buckets_.size());
  }
  uint64_t BucketLowerBound(size_t index) const;
  // Dirty-range bookkeeping: every write into buckets_ goes through Touch,
  // so [dirty_lo_, dirty_hi_] covers all nonzero buckets. Clear() then
  // zeroes only that span (the window-rotation path clears a sub-window
  // histogram every epoch advance — a full 4 KB memset there costs more
  // than the records it erases), and MergeFrom walks only the source's
  // span instead of the whole array.
  void Touch(size_t index) {
    dirty_lo_ = std::min(dirty_lo_, index);
    dirty_hi_ = std::max(dirty_hi_, index);
  }
  // Bucket-wise add of `other` (same resolution) plus summary fold.
  void AddBucketRange(const LogHistogram& other);

  int sub_bits_;
  uint64_t sub_count_;
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = UINT64_MAX;
  uint64_t max_ = 0;
  size_t dirty_lo_ = SIZE_MAX;  // SIZE_MAX/0 = nothing dirty
  size_t dirty_hi_ = 0;
};

// Mean/min/max/stddev accumulator for doubles.
class RunningStat {
 public:
  void Record(double v) {
    ++n_;
    const double delta = v - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (v - mean_);
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }

  uint64_t count() const { return n_; }
  double mean() const { return mean_; }
  double min() const { return n_ == 0 ? 0.0 : min_; }
  double max() const { return n_ == 0 ? 0.0 : max_; }
  double variance() const {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  double stddev() const;

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 1e300;
  double max_ = -1e300;
};

}  // namespace fmds

#endif  // FMDS_SRC_COMMON_HISTOGRAM_H_
