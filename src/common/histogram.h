// Streaming statistics helpers for the benchmark harness: a fixed-resolution
// log-bucket latency histogram (HdrHistogram-lite) and a simple running
// mean/min/max accumulator.
#ifndef FMDS_SRC_COMMON_HISTOGRAM_H_
#define FMDS_SRC_COMMON_HISTOGRAM_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace fmds {

// Log2-bucketed histogram with linear sub-buckets, covering [0, 2^62).
// Records integer values (typically nanoseconds or access counts) with
// bounded relative error set by sub_bucket_bits. Zero is a first-class
// value (bucket 0): background far ops cost the client clock nothing and
// the recorder still histograms them.
class LogHistogram {
 public:
  explicit LogHistogram(int sub_bucket_bits = 5);

  void Record(uint64_t value);
  void Merge(const LogHistogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) /
                                   static_cast<double>(count_);
  }

  // Value at quantile q in [0, 1], e.g. 0.5 / 0.99 / 0.999. Results are
  // clamped into [min(), max()]: q=0 returns the exact minimum, q=1 the
  // exact maximum, and interior quantiles never report a bucket lower
  // bound below the smallest recorded value.
  uint64_t Percentile(double q) const;

  // "count=... mean=... p50=... p99=... max=..." one-liner.
  std::string Summary() const;

 private:
  size_t BucketIndex(uint64_t value) const;
  uint64_t BucketLowerBound(size_t index) const;

  int sub_bits_;
  uint64_t sub_count_;
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = UINT64_MAX;
  uint64_t max_ = 0;
};

// Mean/min/max/stddev accumulator for doubles.
class RunningStat {
 public:
  void Record(double v) {
    ++n_;
    const double delta = v - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (v - mean_);
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }

  uint64_t count() const { return n_; }
  double mean() const { return mean_; }
  double min() const { return n_ == 0 ? 0.0 : min_; }
  double max() const { return n_ == 0 ? 0.0 : max_; }
  double variance() const {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  double stddev() const;

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 1e300;
  double max_ = -1e300;
};

}  // namespace fmds

#endif  // FMDS_SRC_COMMON_HISTOGRAM_H_
