// Deterministic pseudo-random generators used throughout the simulator and
// the workload generators. Everything here is seedable so experiments and
// tests are exactly reproducible.
#ifndef FMDS_SRC_COMMON_RNG_H_
#define FMDS_SRC_COMMON_RNG_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace fmds {

// SplitMix64: used to expand a small seed into full-entropy state.
inline uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256**-style generator: fast, good quality, tiny state.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed5eedULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : state_) {
      word = SplitMix64(sm);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound) {
    assert(bound > 0);
    // Multiply-shift rejection-free mapping (Lemire); tiny bias acceptable
    // for workload generation.
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  // Uniform in [lo, hi] inclusive.
  uint64_t NextInRange(uint64_t lo, uint64_t hi) {
    assert(lo <= hi);
    return lo + NextBelow(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Bernoulli trial.
  bool NextBool(double p_true) { return NextDouble() < p_true; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t state_[4] = {};
};

// Zipf-distributed integers in [0, n), with skew parameter theta in [0, 1).
// theta = 0 is uniform; YCSB uses theta = 0.99. Uses the Gray et al. /
// YCSB-style rejection-free inversion with precomputed constants, so Next()
// is O(1).
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta, uint64_t seed = 42);

  uint64_t Next();
  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  double Zeta(uint64_t n, double theta) const;

  Rng rng_;
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double threshold1_;  // probability mass of item 0
  double threshold2_;  // probability mass of items {0, 1}
};

// A weighted choice over a small fixed set of alternatives (e.g. op mix:
// 90% lookup / 10% insert).
class DiscreteChoice {
 public:
  DiscreteChoice(std::vector<double> weights, uint64_t seed = 7);

  // Returns index of the chosen alternative.
  size_t Next();

 private:
  Rng rng_;
  std::vector<double> cumulative_;
};

}  // namespace fmds

#endif  // FMDS_SRC_COMMON_RNG_H_
