// Hash functions used by the far-memory hash tables. Self-contained (no
// std::hash, whose quality is implementation-defined) so bucket distributions
// are reproducible across platforms.
#ifndef FMDS_SRC_COMMON_HASH_H_
#define FMDS_SRC_COMMON_HASH_H_

#include <cstdint>
#include <cstring>
#include <string_view>

namespace fmds {

// Fibonacci / xor-shift finalizer (splittable-random style). Good avalanche
// for 64-bit integer keys; this is the default key hash in the maps.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

// FNV-1a for byte strings.
inline uint64_t Fnv1a(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Combine two hashes (boost-style).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

}  // namespace fmds

#endif  // FMDS_SRC_COMMON_HASH_H_
