#include "src/common/status.h"

namespace fmds {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kAborted:
      return "ABORTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kOverloaded:
      return "OVERLOADED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace fmds
