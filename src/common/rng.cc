#include "src/common/rng.h"

#include <cmath>

namespace fmds {

ZipfGenerator::ZipfGenerator(uint64_t n, double theta, uint64_t seed)
    : rng_(seed), n_(n), theta_(theta) {
  assert(n > 0);
  assert(theta >= 0.0 && theta < 1.0);
  zetan_ = Zeta(n_, theta_);
  const double zeta2 = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
  threshold1_ = 1.0 / zetan_;
  threshold2_ = (1.0 + std::pow(0.5, theta_)) / zetan_;
}

double ZipfGenerator::Zeta(uint64_t n, double theta) const {
  double sum = 0.0;
  // Exact for small n; for very large n use the Euler-Maclaurin approximation
  // so constructing generators over huge keyspaces stays O(1)-ish.
  constexpr uint64_t kExactLimit = 10'000'000;
  if (n <= kExactLimit) {
    for (uint64_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }
  for (uint64_t i = 1; i <= kExactLimit; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  // Integral tail from kExactLimit to n of x^-theta dx.
  const double a = static_cast<double>(kExactLimit);
  const double b = static_cast<double>(n);
  sum += (std::pow(b, 1.0 - theta) - std::pow(a, 1.0 - theta)) / (1.0 - theta);
  return sum;
}

uint64_t ZipfGenerator::Next() {
  const double u = rng_.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, theta_)) {
    return 1;
  }
  const double x = static_cast<double>(n_) *
                   std::pow(eta_ * u - eta_ + 1.0, alpha_);
  uint64_t value = static_cast<uint64_t>(x);
  if (value >= n_) {
    value = n_ - 1;
  }
  return value;
}

DiscreteChoice::DiscreteChoice(std::vector<double> weights, uint64_t seed)
    : rng_(seed) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    total += w;
  }
  assert(total > 0.0);
  double acc = 0.0;
  cumulative_.reserve(weights.size());
  for (double w : weights) {
    acc += w / total;
    cumulative_.push_back(acc);
  }
  cumulative_.back() = 1.0;  // guard against FP drift
}

size_t DiscreteChoice::Next() {
  const double u = rng_.NextDouble();
  for (size_t i = 0; i < cumulative_.size(); ++i) {
    if (u < cumulative_[i]) {
      return i;
    }
  }
  return cumulative_.size() - 1;
}

}  // namespace fmds
