// Status / Result error-handling primitives for the fmds library.
//
// Library code does not throw: fallible operations return Status (no payload)
// or Result<T> (payload or error). Mirrors absl::Status in spirit but is
// self-contained so the library has no third-party runtime dependencies.
#ifndef FMDS_SRC_COMMON_STATUS_H_
#define FMDS_SRC_COMMON_STATUS_H_

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace fmds {

enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kUnavailable,
  kResourceExhausted,
  kAborted,
  kInternal,
  kUnimplemented,
  // A memory node's congestion front end shed the operation (bounded
  // service queue overflow, DESIGN.md §14). Retryable: backoff lets the
  // node drain; see ClientOptions::retry.
  kOverloaded,
};

// Human-readable name for a status code ("OK", "NOT_FOUND", ...).
std::string_view StatusCodeName(StatusCode code);

// A success-or-error value. Cheap to copy on the success path (no allocation);
// error statuses carry a code and an optional message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}
  explicit Status(StatusCode code) : code_(code) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or e.g. "NOT_FOUND: key 17 missing".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }
inline Status InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status OutOfRange(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
inline Status NotFound(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
inline Status AlreadyExists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
inline Status FailedPrecondition(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status Unavailable(std::string msg) {
  return Status(StatusCode::kUnavailable, std::move(msg));
}
inline Status ResourceExhausted(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
inline Status Aborted(std::string msg) {
  return Status(StatusCode::kAborted, std::move(msg));
}
inline Status Internal(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}
inline Status Unimplemented(std::string msg) {
  return Status(StatusCode::kUnimplemented, std::move(msg));
}
inline Status Overloaded(std::string msg) {
  return Status(StatusCode::kOverloaded, std::move(msg));
}

// Result<T>: either a value of type T or an error Status. Accessing value()
// on an error result asserts in debug builds and is undefined in release.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}                  // NOLINT
  Result(Status status) : status_(std::move(status)) {           // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  // value() if ok, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagate errors: RETURN_IF_ERROR(expr) where expr yields a Status.
#define FMDS_RETURN_IF_ERROR(expr)              \
  do {                                          \
    ::fmds::Status fmds_status_ = (expr);       \
    if (!fmds_status_.ok()) {                   \
      return fmds_status_;                      \
    }                                           \
  } while (false)

// Assign-or-return for Result<T>:
//   FMDS_ASSIGN_OR_RETURN(auto v, SomeResultReturningCall());
#define FMDS_ASSIGN_OR_RETURN(decl, expr)       \
  FMDS_ASSIGN_OR_RETURN_IMPL_(                  \
      FMDS_STATUS_CONCAT_(fmds_result_, __LINE__), decl, expr)
#define FMDS_ASSIGN_OR_RETURN_IMPL_(tmp, decl, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) {                                   \
    return tmp.status();                             \
  }                                                  \
  decl = std::move(tmp).value()
#define FMDS_STATUS_CONCAT_(a, b) FMDS_STATUS_CONCAT_IMPL_(a, b)
#define FMDS_STATUS_CONCAT_IMPL_(a, b) a##b

}  // namespace fmds

#endif  // FMDS_SRC_COMMON_STATUS_H_
