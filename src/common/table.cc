#include "src/common/table.h"

#include <algorithm>
#include <cstdio>
#include <iomanip>

namespace fmds {

std::string Table::Cell(uint64_t v) { return std::to_string(v); }
std::string Table::Cell(int64_t v) { return std::to_string(v); }

std::string Table::Cell(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void Table::Print(std::ostream& os, const std::string& title) const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  if (!title.empty()) {
    os << "\n== " << title << " ==\n";
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << ' ' << std::setw(static_cast<int>(widths[c])) << cell << " |";
    }
    os << '\n';
  };
  print_row(headers_);
  os << "|";
  for (size_t c = 0; c < widths.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) {
    print_row(row);
  }
  os.flush();
}

}  // namespace fmds
