// YCSB-style key-value workload generator: standard mixes (A-F) over a
// Zipf-distributed keyspace, used by the mixed-workload benches to compare
// map designs under realistic skew rather than uniform point lookups.
#ifndef FMDS_SRC_COMMON_WORKLOAD_H_
#define FMDS_SRC_COMMON_WORKLOAD_H_

#include <cstdint>

#include "src/common/rng.h"

namespace fmds {

enum class KvOp : uint8_t { kRead = 0, kUpdate = 1, kInsert = 2, kRmw = 3 };

struct KvRequest {
  KvOp op;
  uint64_t key;
};

// The classic YCSB core mixes.
enum class YcsbMix : uint8_t {
  kA = 0,  // 50% read / 50% update
  kB,      // 95% read / 5% update
  kC,      // 100% read
  kD,      // 95% read (latest) / 5% insert
  kF,      // 50% read / 50% read-modify-write
};

const char* YcsbMixName(YcsbMix mix);

class YcsbGenerator {
 public:
  // `records` existing keys [1, records]; inserts extend the keyspace.
  YcsbGenerator(YcsbMix mix, uint64_t records, double theta = 0.99,
                uint64_t seed = 1234)
      : mix_(mix),
        rng_(seed),
        zipf_(records, theta, seed * 3 + 1),
        next_insert_(records + 1) {}

  KvRequest Next() {
    KvRequest request;
    const double p = rng_.NextDouble();
    switch (mix_) {
      case YcsbMix::kA:
        request.op = p < 0.5 ? KvOp::kRead : KvOp::kUpdate;
        request.key = ZipfKey();
        break;
      case YcsbMix::kB:
        request.op = p < 0.95 ? KvOp::kRead : KvOp::kUpdate;
        request.key = ZipfKey();
        break;
      case YcsbMix::kC:
        request.op = KvOp::kRead;
        request.key = ZipfKey();
        break;
      case YcsbMix::kD:
        if (p < 0.95) {
          request.op = KvOp::kRead;
          // "Latest" distribution: skewed towards recent inserts.
          const uint64_t back = zipf_.Next();
          request.key = next_insert_ > back + 1 ? next_insert_ - 1 - back : 1;
        } else {
          request.op = KvOp::kInsert;
          request.key = next_insert_++;
        }
        break;
      case YcsbMix::kF:
        request.op = p < 0.5 ? KvOp::kRead : KvOp::kRmw;
        request.key = ZipfKey();
        break;
    }
    return request;
  }

  uint64_t inserted_high_water() const { return next_insert_ - 1; }

 private:
  uint64_t ZipfKey() { return zipf_.Next() + 1; }

  YcsbMix mix_;
  Rng rng_;
  ZipfGenerator zipf_;
  uint64_t next_insert_;
};

inline const char* YcsbMixName(YcsbMix mix) {
  switch (mix) {
    case YcsbMix::kA:
      return "A (50r/50u)";
    case YcsbMix::kB:
      return "B (95r/5u)";
    case YcsbMix::kC:
      return "C (100r)";
    case YcsbMix::kD:
      return "D (95r-latest/5i)";
    case YcsbMix::kF:
      return "F (50r/50rmw)";
  }
  return "?";
}

}  // namespace fmds

#endif  // FMDS_SRC_COMMON_WORKLOAD_H_
