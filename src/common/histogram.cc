#include "src/common/histogram.h"

#include <bit>
#include <cmath>
#include <cstdio>

namespace fmds {

LogHistogram::LogHistogram(int sub_bucket_bits)
    : sub_bits_(sub_bucket_bits), sub_count_(1ULL << sub_bucket_bits) {
  // 63 log2 buckets x sub_count_ linear sub-buckets.
  buckets_.assign(63 * sub_count_, 0);
}

uint64_t LogHistogram::BucketLowerBound(size_t index) const {
  if (index < sub_count_) {
    return index;
  }
  const size_t log = index / sub_count_;        // >= 1
  const uint64_t sub = index % sub_count_;
  const int shift = static_cast<int>(log) - 1;
  return (sub_count_ + sub) << shift;
}

void LogHistogram::Merge(const LogHistogram& other) {
  if (other.sub_bits_ != sub_bits_) {
    // Different resolutions: re-record bucket lower bounds (rare; tests only
    // merge like-configured histograms).
    for (size_t i = 0; i < other.buckets_.size(); ++i) {
      for (uint64_t c = 0; c < other.buckets_[i]; ++c) {
        Record(other.BucketLowerBound(i));
      }
    }
    return;
  }
  AddBucketRange(other);
}

bool LogHistogram::MergeFrom(const LogHistogram& other) {
  if (other.sub_bits_ != sub_bits_) {
    return false;
  }
  AddBucketRange(other);
  return true;
}

void LogHistogram::AddBucketRange(const LogHistogram& other) {
  // Only the source's dirty span can hold nonzero buckets; an empty source
  // (the common case when merging a ring of mostly-idle sub-windows) costs
  // nothing at all.
  if (other.dirty_lo_ <= other.dirty_hi_) {
    for (size_t i = other.dirty_lo_; i <= other.dirty_hi_; ++i) {
      buckets_[i] += other.buckets_[i];
    }
    dirty_lo_ = std::min(dirty_lo_, other.dirty_lo_);
    dirty_hi_ = std::max(dirty_hi_, other.dirty_hi_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void LogHistogram::Reset() {
  if (dirty_lo_ <= dirty_hi_) {
    std::fill(buckets_.begin() + dirty_lo_, buckets_.begin() + dirty_hi_ + 1,
              0);
  }
  dirty_lo_ = SIZE_MAX;
  dirty_hi_ = 0;
  count_ = 0;
  sum_ = 0;
  min_ = UINT64_MAX;
  max_ = 0;
}

uint64_t LogHistogram::Percentile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  q = std::clamp(q, 0.0, 1.0);
  if (q == 0.0) {
    // ceil(0 * count) = 0 would match the first non-empty bucket whose
    // lower bound can sit below the smallest recorded value; the q=0
    // quantile is the minimum by definition.
    return min_;
  }
  if (q == 1.0) {
    // The scan would land on the last non-empty bucket's *lower* bound,
    // which undershoots; the q=1 quantile is the maximum by definition.
    return max_;
  }
  const uint64_t target = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target && buckets_[i] > 0) {
      return std::clamp(BucketLowerBound(i), min_, max_);
    }
  }
  return max_;
}

std::string LogHistogram::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.1f p50=%llu p99=%llu p999=%llu max=%llu",
                static_cast<unsigned long long>(count_), mean(),
                static_cast<unsigned long long>(Percentile(0.50)),
                static_cast<unsigned long long>(Percentile(0.99)),
                static_cast<unsigned long long>(Percentile(0.999)),
                static_cast<unsigned long long>(max()));
  return buf;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

}  // namespace fmds
