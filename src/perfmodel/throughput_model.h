// Closed-system throughput model (E3): converts measured per-operation costs
// into throughput-vs-clients curves, reproducing §3.1's argument about where
// one-sided designs beat RPCs and vice versa.
//
// Model: N clients cycle through think-free operations. Each operation
// spends `delay_ns` in pure fabric latency (an infinite-server delay
// station: round trips overlap perfectly across clients) and demands
// `bottleneck_demand_ns` of a serialized resource:
//   - RPC designs: the server CPU (one core services every request);
//   - one-sided designs: the memory-node controller occupancy, divided
//     across `bottleneck_stations` nodes.
// Exact Mean Value Analysis for one queueing station + one delay station
// gives X(N); the asymptotes are N/delay (latency-bound) and 1/demand
// (bottleneck-bound) — the crossover the paper describes.
#ifndef FMDS_SRC_PERFMODEL_THROUGHPUT_MODEL_H_
#define FMDS_SRC_PERFMODEL_THROUGHPUT_MODEL_H_

#include <cstdint>
#include <vector>

namespace fmds {

struct WorkloadCost {
  double delay_ns = 0.0;             // per-op fabric latency (overlappable)
  double bottleneck_demand_ns = 0.0; // per-op serialized service demand
  uint32_t bottleneck_stations = 1;  // parallel copies of the bottleneck
};

struct ThroughputPoint {
  uint32_t clients;
  double ops_per_sec;
  double latency_ns;       // mean per-op response time
  double utilization;      // of the bottleneck resource
};

// Exact MVA for the two-station closed network described above.
ThroughputPoint SolveClosedSystem(const WorkloadCost& cost, uint32_t clients);

// Convenience sweep.
std::vector<ThroughputPoint> SweepClients(const WorkloadCost& cost,
                                          const std::vector<uint32_t>& ns);

}  // namespace fmds

#endif  // FMDS_SRC_PERFMODEL_THROUGHPUT_MODEL_H_
