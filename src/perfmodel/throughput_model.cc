#include "src/perfmodel/throughput_model.h"

#include <algorithm>

namespace fmds {

ThroughputPoint SolveClosedSystem(const WorkloadCost& cost,
                                  uint32_t clients) {
  // Exact MVA. Each operation visits one of `stations` identical serialized
  // stations (uniformly), demanding `bottleneck_demand_ns` of it, plus a
  // pure delay of `delay_ns` (round trips overlap across clients). By
  // symmetry all stations share one queue length Q.
  const double stations =
      static_cast<double>(std::max<uint32_t>(cost.bottleneck_stations, 1));
  const double demand = cost.bottleneck_demand_ns;
  double q = 0.0;           // per-station mean queue length
  double throughput = 0.0;  // ops per ns
  double response = cost.delay_ns + demand;
  for (uint32_t n = 1; n <= clients; ++n) {
    const double station_residence = demand * (1.0 + q);
    response = cost.delay_ns + station_residence;  // V = 1/stations each
    throughput = static_cast<double>(n) / response;
    q = (throughput / stations) * station_residence;
  }
  ThroughputPoint point;
  point.clients = clients;
  point.ops_per_sec = throughput * 1e9;
  point.latency_ns = response;
  point.utilization = std::min(1.0, throughput * demand / stations);
  return point;
}

std::vector<ThroughputPoint> SweepClients(const WorkloadCost& cost,
                                          const std::vector<uint32_t>& ns) {
  std::vector<ThroughputPoint> out;
  out.reserve(ns.size());
  for (uint32_t n : ns) {
    out.push_back(SolveClosedSystem(cost, n));
  }
  return out;
}

}  // namespace fmds
