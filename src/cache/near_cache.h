// NearCache: a byte-budgeted client-side cache of far-memory regions with
// CLOCK eviction, a k-hit admission filter, and notification-driven
// coherence (§4.3).
//
// The paper's premise (§3.1) is the ~10x near/far gap: every avoided round
// trip is the biggest lever there is. The HT-tree already caches its *trie*
// client-side; NearCache extends that to the hot data itself — bucket
// heads, items, blob chunks — so a skewed read mix runs near-only.
//
// Coherence: on admission the cache subscribes (kOnWrite) to the watched
// far range; any writer touching it triggers a notification that the
// owning client routes here via FarClient::DispatchNotifications(), which
// marks the entry invalid. The subscribe is a *read-and-arm*: the node
// returns a snapshot of the watched word taken atomically with the
// registration, and Admit compares it against the word the caller observed
// during its validated read. A mismatch means a writer raced the window
// between that read and the registration — the entry is then admitted
// invalid (the subscription is live; the next miss refills it under it)
// instead of pinning a possibly stale value. Under the default Reliable
// policy publication is synchronous and dispatch runs at operation entry,
// so hits are linearizable. Under lossy policies (drop_probability > 0) a
// dropped event can leave an entry stale; staleness is then bounded by the
// writer's own local Invalidate (read-your-writes), channel-overflow loss
// resets, eviction, and address reuse — the §7.2 best-effort tradeoff,
// documented in DESIGN.md §9.
//
// An invalidated entry keeps its slot and its subscription: a miss whose
// refill watches the *same* range refills in place without paying the
// subscribe round trip again, and without re-running the admission filter
// (the key already proved hot). A refill whose watched range *moved* —
// e.g. an HtTree split migrated the key to a bucket in a new table, and
// the old table was retired and freed — rewatches: the stale subscription
// is released and a fresh read-and-arm subscribe covers the new range.
// Keeping the old subscription would leave the entry watching dead memory,
// blind to every future write.
//
// Accounting rules (DESIGN.md §9): Lookup charges exactly one near access,
// hit or miss — on a hit that is the *entire* cost of the probe;
// admission, rewatch, and eviction charge their subscribe/unsubscribe
// round trips under the "cache.admit"/"cache.rewatch"/"cache.evict"
// labels; dispatching an empty notification channel is free.
//
// Threading (§11, write-behind): the cache is *owned* by one client
// thread — Lookup/Admit/OnNotify/Clear run there — but two kinds of helper
// threads may now touch it, so every method takes an internal mutex:
//   - a write-behind flusher refills/invalidates entries after publishing
//     (RefillExternal/InvalidateExternal — no owner-client accounting);
//   - a background evictor reclaims budget off the hot path
//     (BackgroundSweep — node-side unsubscribes paid by the *evictor's*
//     client; owner-side subscription bookkeeping is retired lazily on the
//     owner thread).
// The mutex guards cache state only; it is never held across a round trip
// except on owner-thread release paths (rewatch/clear/sync evict).
#ifndef FMDS_SRC_CACHE_NEAR_CACHE_H_
#define FMDS_SRC_CACHE_NEAR_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/cache/clock_ring.h"
#include "src/fabric/far_client.h"
#include "src/fabric/notification.h"
#include "src/obs/telemetry.h"
#include "src/obs/windowed.h"

namespace fmds {

// A byte budget shared by several caches (ShardedMap's per-shard rings
// draw on one of these so the client's footprint stays bounded as shard
// counts grow). `used` is the fleet-wide total across every attached
// cache; each cache still evicts only its own entries.
struct CacheBudget {
  static uint64_t DefaultHigh(uint64_t limit, uint64_t high) {
    return high != 0 ? high : limit;
  }
  static uint64_t DefaultLow(uint64_t limit, uint64_t high, uint64_t low) {
    if (low != 0) {
      return low;
    }
    const uint64_t h = DefaultHigh(limit, high);
    return h - h / 8;
  }
  explicit CacheBudget(uint64_t limit_bytes, uint64_t high_bytes = 0,
                       uint64_t low_bytes = 0)
      : limit(limit_bytes),
        high_watermark(DefaultHigh(limit_bytes, high_bytes)),
        low_watermark(DefaultLow(limit_bytes, high_bytes, low_bytes)) {}
  const uint64_t limit;
  const uint64_t high_watermark;  // background mode: admissions drop above
  const uint64_t low_watermark;   // background mode: sweeps drain to here
  std::atomic<uint64_t> used{0};
};

struct NearCacheOptions {
  // Total bytes of cached payload + per-entry overhead. 0 disables the
  // cache entirely (every Lookup misses without charging anything).
  uint64_t budget_bytes = 0;
  // k-hit admission: a key enters the cache on its k-th miss. 1 admits on
  // first touch; 2 (default) keeps one-shot keys from churning the budget.
  uint32_t admit_after = 2;
  // Delivery policy for the coherence subscriptions.
  DeliveryPolicy policy = DeliveryPolicy::Reliable();
  // Capacity of the admission filter's own CLOCK ring (miss counters).
  size_t filter_slots = 4096;
  // Word-versioned coherence: treat the watched word as a version — every
  // state of the watched range maps to a distinct word value that is never
  // reused (HT-tree bucket heads qualify: item slots are never recycled and
  // freed tables are quarantined). When set, a notification whose
  // state-at-publish word equals the word the entry was filled under
  // CONFIRMS the entry instead of killing it — which is what lets a writer
  // refill its own entry at Put exit and survive the echo of its own CAS.
  // Leave false for ranges whose words can repeat (e.g. blob length words).
  bool word_versioned = false;
  // Mage-style background eviction: the hot path NEVER runs a CLOCK sweep
  // or pays an unsubscribe round trip. Admissions proceed while used bytes
  // stay under the high watermark and are dropped (wm_drops) above it; a
  // BackgroundEvictor thread calls BackgroundSweep() to drain the cache to
  // the low watermark off the critical path.
  bool background_eviction = false;
  uint64_t high_watermark_bytes = 0;  // 0 => the budget/limit itself
  uint64_t low_watermark_bytes = 0;   // 0 => high - high/8
  // Fleet-wide budget shared with sibling caches. When set, `budget_bytes`
  // should equal the shared limit (it sizes this cache's ring); all byte
  // accounting and watermark checks run against the shared total.
  std::shared_ptr<CacheBudget> shared_budget;
};

struct NearCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t invalidations = 0;  // notification- or writer-driven entry kills
  uint64_t admissions = 0;     // new entries (paid a subscribe RTT)
  uint64_t refills = 0;        // in-place refills of resident entries
  uint64_t evictions = 0;      // synchronous (hot-path) budget/capacity
                               // victims (paid unsubscribe)
  uint64_t loss_resets = 0;    // whole-cache invalidations on loss warning
  uint64_t rewatches = 0;      // refills whose watched range moved (paid
                               // unsubscribe + subscribe RTTs)
  uint64_t raced_admits = 0;   // admissions whose arm-time snapshot differed
                               // from the validated read (entered invalid)
  uint64_t writer_refills = 0; // Refill() fills from a writer's own value
                               // (zero far round trips)
  uint64_t word_confirms = 0;  // notifications whose word matched the
                               // entry's fill word (entry kept valid)
  uint64_t bg_evictions = 0;   // victims reclaimed by BackgroundSweep()
                               // (unsubscribe paid by the evictor client)
  uint64_t wm_drops = 0;       // admissions dropped above the high
                               // watermark while awaiting a sweep

  void Add(const NearCacheStats& other) {
    hits += other.hits;
    misses += other.misses;
    invalidations += other.invalidations;
    admissions += other.admissions;
    refills += other.refills;
    evictions += other.evictions;
    loss_resets += other.loss_resets;
    rewatches += other.rewatches;
    raced_admits += other.raced_admits;
    writer_refills += other.writer_refills;
    word_confirms += other.word_confirms;
    bg_evictions += other.bg_evictions;
    wm_drops += other.wm_drops;
  }
  double HitRatio() const {
    const uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups;
  }
};

class NearCache : public NotificationSink {
 public:
  // Charged per entry on top of the payload: slot + index + subscription
  // bookkeeping on both sides of the fabric.
  static constexpr uint64_t kEntryOverhead = 64;

  NearCache(FarClient* client, NearCacheOptions options);
  NearCache(const NearCache&) = delete;
  NearCache& operator=(const NearCache&) = delete;
  ~NearCache() override;

  bool enabled() const { return options_.budget_bytes > 0; }

  // Probes the cache for `key`. A hit requires a valid entry whose payload
  // size equals out.size(); the payload is copied into `out`. Charges one
  // near access (the full cost of a hit); bumps hit/miss counters in
  // NearCacheStats, ClientStats, and the flight recorder's current label.
  bool Lookup(uint64_t key, std::span<std::byte> out);

  // Lookup variant for transactional reads: a hit additionally reports the
  // watched far range's first word address and the word value the entry was
  // filled under, so the caller can record a validatable (address, word)
  // pair in its read set. A txn that validates against this word detects
  // every concurrent write — even one whose invalidation notification is
  // still queued — because any such write changed the watched word.
  // Accounting matches Lookup (one near access, hit/miss counters).
  bool LookupWatch(uint64_t key, std::span<std::byte> out, FarAddr* watch,
                   uint64_t* watch_word);

  // Offers freshly validated far data for caching. `watch` is the far
  // range whose writes must invalidate this entry ([watch, watch+watch_len),
  // word-aligned, single page); `expected_watch_word` is the value of the
  // range's first word as the caller observed it during the read that
  // validated `payload` — every write that can change the key's value must
  // change that word (bucket heads and blob length words satisfy this).
  // Resident entries whose watch is unchanged refill in place (no new
  // subscription); a resident entry whose watch moved rewatches (release +
  // re-arm). New keys pass the k-hit filter, then pay one read-and-arm
  // subscribe round trip; if the arm-time snapshot differs from
  // `expected_watch_word`, a writer raced the admission and the entry
  // enters invalid rather than serving a possibly stale value. Call only
  // with data the caller has just validated — caching an unvalidated value
  // would make a stale read sticky.
  void Admit(uint64_t key, std::span<const std::byte> payload, FarAddr watch,
             uint64_t watch_len, uint64_t expected_watch_word);

  // Writer-side local invalidation: a client that just mutated the watched
  // range kills its own entry immediately, so read-your-writes holds even
  // under lossy delivery policies.
  void Invalidate(uint64_t key);

  // Writer-side refill: a client that just installed `payload` under a
  // successful CAS that left the watched word equal to `watch_word` re-fills
  // its own resident entry in place — zero far round trips, versus the read
  // RTT a miss-then-refill would pay. Only meaningful with word_versioned
  // (the echo of the writer's own CAS then *confirms* the entry instead of
  // killing it; without word versioning the refill would die on its own
  // notification). Resident same-watch entries refill; a resident entry
  // whose watch moved is invalidated (rewatching would cost round trips the
  // write path must not pay); absent keys are ignored (admission stays a
  // read-path, filter-gated decision).
  void Refill(uint64_t key, std::span<const std::byte> payload, FarAddr watch,
              uint64_t watch_len, uint64_t watch_word);

  // Cross-thread variants for the write-behind flusher (§11): same refill /
  // invalidate semantics, but NO owner-client stats, recorder, or near-op
  // accounting — the flusher charges its own client. Safe to call from a
  // non-owner thread.
  void RefillExternal(uint64_t key, std::span<const std::byte> payload,
                      FarAddr watch, uint64_t watch_len, uint64_t watch_word);
  void InvalidateExternal(uint64_t key);

  // Marks every entry invalid (subscriptions and slots survive for refill).
  void InvalidateAll();

  // NotificationSink: invalidate the entry watching the changed range; a
  // loss warning invalidates everything (unknown events were dropped).
  void OnNotify(const NotifyEvent& event) override;

  // Drops every entry and releases the subscriptions (unsubscribe RTTs).
  void Clear();

  // True when a background sweep has bytes to reclaim (used >= high
  // watermark in background mode). Cheap enough to poll.
  bool SweepNeeded() const;

  // Background eviction (Mage-style): evicts this cache's CLOCK victims
  // until the (possibly shared) used total drops to the low watermark.
  // Victim state is reclaimed under the cache mutex; the per-victim
  // unsubscribe round trips are then paid OUTSIDE the mutex by
  // `evictor_client` (label "cache.bg_evict", ClientStats.bg_evictions) so
  // the owner thread never blocks behind fabric teardown. The owner's
  // subscription bookkeeping is retired lazily (ForgetSubscription) on its
  // next cache operation. Returns the number of entries reclaimed. Caller
  // (the BackgroundEvictor) must stop sweeping before the cache dies.
  size_t BackgroundSweep(FarClient* evictor_client);

  uint64_t bytes_used() const;
  size_t entries() const;
  NearCacheStats stats() const;
  const NearCacheOptions& options() const { return options_; }

  // Budget geometry (shared budget when configured, else local).
  uint64_t budget_limit() const { return BudgetLimit(); }
  uint64_t high_watermark() const { return HighWatermark(); }
  uint64_t low_watermark() const { return LowWatermark(); }

  // Live health snapshot (any thread). windowed_hit_ratio covers only the
  // last window of the owner's simulated time, unlike
  // NearCacheStats::HitRatio() which is since-start — a cache that went
  // cold after a working-set shift shows up here first.
  struct Health {
    uint64_t bytes_used = 0;
    uint64_t entries = 0;
    uint64_t budget_limit = 0;
    uint64_t high_watermark = 0;
    uint64_t low_watermark = 0;
    bool sweep_needed = false;
    double windowed_hit_ratio = 0.0;
    uint64_t windowed_lookups = 0;
  };
  Health health() const;

  // Registers this cache's health gauges under `prefix` (e.g. "cache").
  // The group must not outlive the cache.
  void AddGauges(GaugeGroup* group, const std::string& prefix);

 private:
  struct Entry {
    std::vector<std::byte> payload;
    SubId sub = kInvalidSubId;
    // The subscribed range — kept so a refill can detect that the key's
    // watch moved (bucket migrated by a split) and rewatch instead of
    // staying subscribed to retired memory.
    FarAddr watch = kNullFarAddr;
    uint64_t watch_len = 0;
    // Value of the watched range's first word at the time the payload was
    // validated — the entry's version under word_versioned coherence, and
    // the word LookupWatch hands to transactional readers.
    uint64_t watch_word = 0;
    bool valid = false;
  };

  uint64_t EntryCost(const Entry& e) const {
    return e.payload.size() + kEntryOverhead;
  }
  // Byte accounting against the local counter and, when configured, the
  // shared fleet budget.
  void AddBytesLocked(uint64_t n);
  void SubBytesLocked(uint64_t n);
  uint64_t BudgetUsedLocked() const;
  uint64_t BudgetLimit() const;
  uint64_t HighWatermark() const;
  uint64_t LowWatermark() const;
  // Owner-thread lazy cleanup of subscriptions the background evictor
  // already tore down node-side.
  void DrainRetiredLocked();
  // Read-and-arm subscribe on [watch, watch+watch_len): fills e.sub/e.watch,
  // registers sub_to_key_, and sets e.valid from the snapshot comparison.
  // Returns false (entry untouched beyond payload) if the range is
  // unsubscribable.
  bool ArmWatchLocked(Entry& e, uint64_t key, FarAddr watch,
                      uint64_t watch_len, uint64_t expected_watch_word,
                      const char* label_name);
  // Unsubscribes and forgets one released entry; the label names the cause
  // in the flight recorder ("cache.evict" eviction, "cache.rewatch" move).
  void ReleaseEntryLocked(Entry& entry, const char* label_name = "cache.evict");
  // Marks one entry invalid. `account_client` gates the owner-client
  // ClientStats/recorder bumps (false on cross-thread paths).
  void InvalidateLocked(uint64_t key, bool account_client);
  void InvalidateAllLocked(bool account_client);
  void RefillLocked(uint64_t key, std::span<const std::byte> payload,
                    FarAddr watch, uint64_t watch_len, uint64_t watch_word,
                    bool account_client);
  void EvictToBudgetLocked();

  FarClient* client_;
  NearCacheOptions options_;
  // Guards every member below. See the threading note at the top.
  mutable std::mutex mu_;
  ClockRing<Entry> ring_;
  ClockRing<uint32_t> filter_;  // key -> miss count (admission filter)
  std::unordered_map<SubId, uint64_t> sub_to_key_;
  // Sub ids the background evictor reclaimed; the owner thread forgets
  // them (no round trip) on its next cache operation.
  std::vector<SubId> retired_subs_;
  uint64_t bytes_used_ = 0;
  NearCacheStats stats_;
  // Rolling hit ratio over the owner client's simulated time (timestamps
  // are taken in Lookup on the owner thread; readers go through health()).
  WindowedRate win_hits_;
  WindowedRate win_lookups_;
  uint64_t win_now_ns_ = 0;
};

}  // namespace fmds

#endif  // FMDS_SRC_CACHE_NEAR_CACHE_H_
