// BackgroundEvictor: a dedicated reclamation thread for NearCache rings
// (Mage-style, ROADMAP "asynchronous eviction/write-behind pipeline").
//
// With NearCacheOptions::background_eviction set, the owning thread's hot
// path never runs a CLOCK sweep and never pays an eviction's unsubscribe
// round trip: admissions simply stop above the high watermark, and this
// thread drains every watched cache back to the low watermark via
// NearCache::BackgroundSweep(). The evictor owns its own FarClient, so the
// teardown round trips land on its clock and stats (bg_evictions, label
// "cache.bg_evict"), keeping the application thread's counters an honest
// record of hot-path work.
//
// Lifetime contract: Unwatch() (or StopAndJoin()) every cache before it is
// destroyed — the evictor holds raw NearCache pointers.
#ifndef FMDS_SRC_CACHE_BG_EVICTOR_H_
#define FMDS_SRC_CACHE_BG_EVICTOR_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "src/cache/near_cache.h"
#include "src/fabric/far_client.h"

namespace fmds {

struct BackgroundEvictorOptions {
  // Real-time cadence between sweep passes. Each pass checks
  // NearCache::SweepNeeded() per cache (cheap) and only sweeps rings above
  // their high watermark.
  uint64_t poll_interval_us = 100;
  ClientOptions client;  // options for the evictor's own FarClient
};

class BackgroundEvictor {
 public:
  BackgroundEvictor(Fabric* fabric, uint64_t client_id,
                    BackgroundEvictorOptions options = {});
  BackgroundEvictor(const BackgroundEvictor&) = delete;
  BackgroundEvictor& operator=(const BackgroundEvictor&) = delete;
  ~BackgroundEvictor();

  void Watch(NearCache* cache);
  // Removes the cache and blocks until any in-flight pass is done touching
  // it. Required before the cache is destroyed.
  void Unwatch(NearCache* cache);

  // Wakes the thread and blocks until a full pass requested at or after
  // this call completes (deterministic draining for tests/benches).
  void SweepNow();

  void StopAndJoin();

  // Snapshot of the evictor client's stats as of the last completed pass.
  ClientStats stats() const;
  uint64_t passes() const;

  // Live sweep health (any thread; locks). bytes_used / budget_headroom
  // sum over every watched cache; headroom is distance below the high
  // watermark (0 when a sweep is due). Do not destroy a watched cache while
  // health readers (gauges) are live — Unwatch only fences the sweep pass.
  struct Health {
    uint64_t passes = 0;
    uint64_t bg_evictions = 0;  // as of the last completed pass
    uint64_t watched_caches = 0;
    uint64_t bytes_used = 0;
    uint64_t budget_headroom = 0;
  };
  Health health() const;

  // Registers sweep gauges under `prefix` (e.g. "evictor"). The group must
  // not outlive the evictor.
  void AddGauges(GaugeGroup* group, const std::string& prefix);

 private:
  void Main();

  FarClient client_;
  BackgroundEvictorOptions options_;
  mutable std::mutex mu_;
  std::condition_variable wake_cv_;  // app -> thread
  std::condition_variable pass_cv_;  // thread -> app (pass completed)
  std::vector<NearCache*> caches_;
  uint64_t wake_requests_ = 0;       // SweepNow tickets issued
  uint64_t completed_requests_ = 0;  // tickets covered by a finished pass
  uint64_t passes_ = 0;
  bool in_pass_ = false;
  bool stop_ = false;
  ClientStats stats_snapshot_;
  std::thread thread_;
};

}  // namespace fmds

#endif  // FMDS_SRC_CACHE_BG_EVICTOR_H_
