// Fixed-capacity CLOCK (second-chance) replacement ring over uint64 keys.
//
// Shared eviction core of the near-memory caching layer (§3: client-side
// caches are what turn the ~10x near/far gap into throughput): NearCache
// drives it by byte budget, HtTree's bucket-head hint cache by entry count.
// CLOCK approximates LRU with one reference bit per slot and a sweeping
// hand — eviction is O(slots swept), amortized O(1), instead of the O(n)
// wholesale clear the hint cache used before.
//
// Not thread-safe: like everything client-side, one owner thread.
#ifndef FMDS_SRC_CACHE_CLOCK_RING_H_
#define FMDS_SRC_CACHE_CLOCK_RING_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

namespace fmds {

template <typename Value>
class ClockRing {
 public:
  static constexpr size_t npos = static_cast<size_t>(-1);

  explicit ClockRing(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  size_t size() const { return index_.size(); }
  size_t capacity() const { return capacity_; }
  bool empty() const { return index_.empty(); }

  // Slot of `key`, or npos. Does not touch the reference bit — pair with
  // Touch() on use so a probe-only scan cannot pin an entry.
  size_t Find(uint64_t key) const {
    auto it = index_.find(key);
    return it == index_.end() ? npos : it->second;
  }

  void Touch(size_t slot) { slots_[slot].ref = true; }
  // Clears the reference bit: marks the entry as first in line for the next
  // sweep (invalidated-but-resident cache entries use this).
  void Unref(size_t slot) { slots_[slot].ref = false; }

  uint64_t key(size_t slot) const { return slots_[slot].key; }
  Value& value(size_t slot) { return slots_[slot].value; }
  const Value& value(size_t slot) const { return slots_[slot].value; }

  // Inserts a new key (must be absent) with its reference bit set. At
  // capacity the CLOCK victim is evicted first and reported via `evicted`.
  // Returns the new slot.
  size_t Insert(uint64_t key, Value value,
                std::optional<std::pair<uint64_t, Value>>* evicted = nullptr) {
    if (index_.size() >= capacity_) {
      auto victim = EvictOne();
      if (evicted != nullptr) {
        *evicted = std::move(victim);
      }
    }
    size_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else {
      slot = slots_.size();
      slots_.emplace_back();
    }
    Slot& s = slots_[slot];
    s.key = key;
    s.value = std::move(value);
    s.ref = true;
    s.live = true;
    index_.emplace(key, slot);
    return slot;
  }

  // Assign-if-present (touching the entry) or Insert.
  size_t Upsert(uint64_t key, Value value,
                std::optional<std::pair<uint64_t, Value>>* evicted = nullptr) {
    const size_t slot = Find(key);
    if (slot != npos) {
      slots_[slot].value = std::move(value);
      slots_[slot].ref = true;
      return slot;
    }
    return Insert(key, std::move(value), evicted);
  }

  bool Erase(uint64_t key) {
    auto it = index_.find(key);
    if (it == index_.end()) {
      return false;
    }
    Slot& s = slots_[it->second];
    s.live = false;
    s.value = Value();
    free_.push_back(it->second);
    index_.erase(it);
    return true;
  }

  // Second-chance sweep from the hand: referenced entries get their bit
  // cleared and survive one lap; the first unreferenced live entry is
  // removed and returned. nullopt when empty.
  std::optional<std::pair<uint64_t, Value>> EvictOne() {
    if (index_.empty()) {
      return std::nullopt;
    }
    while (true) {
      if (hand_ >= slots_.size()) {
        hand_ = 0;
      }
      Slot& s = slots_[hand_];
      if (s.live) {
        if (s.ref) {
          s.ref = false;
        } else {
          std::pair<uint64_t, Value> victim{s.key, std::move(s.value)};
          s.live = false;
          s.value = Value();
          index_.erase(victim.first);
          free_.push_back(hand_);
          ++hand_;
          return victim;
        }
      }
      ++hand_;
    }
  }

  // fn(key, Value&) over every live entry, in unspecified order.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (Slot& s : slots_) {
      if (s.live) {
        fn(s.key, s.value);
      }
    }
  }

  void Clear() {
    slots_.clear();
    free_.clear();
    index_.clear();
    hand_ = 0;
  }

 private:
  struct Slot {
    uint64_t key = 0;
    Value value{};
    bool ref = false;
    bool live = false;
  };

  std::vector<Slot> slots_;       // grows on demand up to capacity_
  std::vector<size_t> free_;      // dead slot indices for reuse
  std::unordered_map<uint64_t, size_t> index_;
  size_t hand_ = 0;
  size_t capacity_;
};

}  // namespace fmds

#endif  // FMDS_SRC_CACHE_CLOCK_RING_H_
