#include "src/cache/near_cache.h"

#include <algorithm>
#include <cstring>

namespace fmds {

namespace {
// Ring capacity bound: every entry costs at least kEntryOverhead, so the
// budget can never hold more than this many entries.
size_t MaxEntries(uint64_t budget_bytes) {
  return std::max<uint64_t>(1, budget_bytes / NearCache::kEntryOverhead);
}
}  // namespace

NearCache::NearCache(FarClient* client, NearCacheOptions options)
    : client_(client),
      options_(options),
      ring_(MaxEntries(options.budget_bytes)),
      filter_(options.filter_slots) {}

NearCache::~NearCache() { Clear(); }

bool NearCache::Lookup(uint64_t key, std::span<std::byte> out) {
  if (!enabled()) {
    return false;
  }
  // One near access covers the whole probe — on a hit this is the entire
  // cost of the operation (that asymmetry is the point of the cache).
  client_->AccountNear(1);
  const size_t slot = ring_.Find(key);
  if (slot != ClockRing<Entry>::npos) {
    Entry& e = ring_.value(slot);
    if (e.valid && e.payload.size() == out.size()) {
      ring_.Touch(slot);
      std::memcpy(out.data(), e.payload.data(), out.size());
      ++stats_.hits;
      ++client_->mutable_stats().cache_hits;
      client_->recorder().RecordCacheHit();
      return true;
    }
  }
  ++stats_.misses;
  ++client_->mutable_stats().cache_misses;
  client_->recorder().RecordCacheMiss();
  return false;
}

void NearCache::Admit(uint64_t key, std::span<const std::byte> payload,
                      FarAddr watch, uint64_t watch_len) {
  if (!enabled()) {
    return;
  }
  const uint64_t cost = payload.size() + kEntryOverhead;
  if (cost > options_.budget_bytes) {
    return;  // would never fit, even alone
  }
  const size_t slot = ring_.Find(key);
  if (slot != ClockRing<Entry>::npos) {
    // Resident (possibly invalidated) entry: refill in place. The
    // subscription is still registered on the watched range, so no new
    // round trip — this is what makes invalidation cheap to recover from.
    Entry& e = ring_.value(slot);
    bytes_used_ -= EntryCost(e);
    e.payload.assign(payload.begin(), payload.end());
    e.valid = true;
    bytes_used_ += EntryCost(e);
    ring_.Touch(slot);
    ++stats_.refills;
    EvictToBudget();
    return;
  }
  if (options_.admit_after > 1) {
    // k-hit filter: count misses per key in a small CLOCK ring; only a key
    // seen admit_after times earns the subscribe round trip and budget.
    const size_t fslot = filter_.Find(key);
    uint32_t seen = 1;
    if (fslot != ClockRing<uint32_t>::npos) {
      seen = ++filter_.value(fslot);
      filter_.Touch(fslot);
    } else {
      filter_.Insert(key, 1);
    }
    if (seen < options_.admit_after) {
      return;
    }
    filter_.Erase(key);
  }

  NotifySpec spec;
  spec.mode = NotifyMode::kOnWrite;
  spec.addr = watch;
  spec.len = watch_len;
  spec.policy = options_.policy;
  SubId sub = kInvalidSubId;
  {
    ScopedOpLabel label(&client_->recorder(), "cache.admit");
    auto result = client_->Subscribe(spec, this);
    if (!result.ok()) {
      return;  // unsubscribable range: serve it uncached
    }
    sub = *result;
  }
  Entry e;
  e.payload.assign(payload.begin(), payload.end());
  e.sub = sub;
  e.valid = true;
  bytes_used_ += EntryCost(e);
  sub_to_key_[sub] = key;
  std::optional<std::pair<uint64_t, Entry>> evicted;
  ring_.Insert(key, std::move(e), &evicted);
  if (evicted.has_value()) {
    bytes_used_ -= EntryCost(evicted->second);
    ReleaseEntry(evicted->second);
    ++stats_.evictions;
  }
  ++stats_.admissions;
  EvictToBudget();
}

void NearCache::Invalidate(uint64_t key) {
  const size_t slot = ring_.Find(key);
  if (slot == ClockRing<Entry>::npos) {
    return;
  }
  Entry& e = ring_.value(slot);
  if (!e.valid) {
    return;
  }
  e.valid = false;
  // First in line for eviction: an invalid entry is only worth keeping for
  // its subscription, not its budget share.
  ring_.Unref(slot);
  ++stats_.invalidations;
  ++client_->mutable_stats().cache_invalidations;
  client_->recorder().RecordCacheInvalidation();
}

void NearCache::InvalidateAll() {
  ring_.ForEach([this](uint64_t, Entry& e) {
    if (e.valid) {
      e.valid = false;
      ++stats_.invalidations;
      ++client_->mutable_stats().cache_invalidations;
      client_->recorder().RecordCacheInvalidation();
    }
  });
}

void NearCache::OnNotify(const NotifyEvent& event) {
  if (event.kind == NotifyEventKind::kLossWarning) {
    // An unknown number of events, for unknown subscriptions, were lost:
    // the only safe response is to distrust everything cached.
    ++stats_.loss_resets;
    InvalidateAll();
    return;
  }
  auto it = sub_to_key_.find(event.sub_id);
  if (it != sub_to_key_.end()) {
    Invalidate(it->second);
  }
}

void NearCache::ReleaseEntry(Entry& entry) {
  if (entry.sub != kInvalidSubId) {
    sub_to_key_.erase(entry.sub);
    ScopedOpLabel label(&client_->recorder(), "cache.evict");
    (void)client_->Unsubscribe(entry.sub);
    entry.sub = kInvalidSubId;
  }
}

void NearCache::EvictToBudget() {
  while (bytes_used_ > options_.budget_bytes) {
    auto victim = ring_.EvictOne();
    if (!victim.has_value()) {
      break;
    }
    bytes_used_ -= EntryCost(victim->second);
    ReleaseEntry(victim->second);
    ++stats_.evictions;
  }
}

void NearCache::Clear() {
  ring_.ForEach([this](uint64_t, Entry& e) { ReleaseEntry(e); });
  ring_.Clear();
  filter_.Clear();
  sub_to_key_.clear();
  bytes_used_ = 0;
}

}  // namespace fmds
