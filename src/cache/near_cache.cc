#include "src/cache/near_cache.h"

#include <algorithm>
#include <cstring>

namespace fmds {

namespace {
// Ring capacity bound: every entry costs at least kEntryOverhead, so the
// budget can never hold more than this many entries.
size_t MaxEntries(uint64_t budget_bytes) {
  return std::max<uint64_t>(1, budget_bytes / NearCache::kEntryOverhead);
}
}  // namespace

NearCache::NearCache(FarClient* client, NearCacheOptions options)
    : client_(client),
      options_(options),
      ring_(MaxEntries(options.budget_bytes)),
      filter_(options.filter_slots) {}

NearCache::~NearCache() { Clear(); }

bool NearCache::Lookup(uint64_t key, std::span<std::byte> out) {
  return LookupWatch(key, out, nullptr, nullptr);
}

bool NearCache::LookupWatch(uint64_t key, std::span<std::byte> out,
                            FarAddr* watch, uint64_t* watch_word) {
  if (!enabled()) {
    return false;
  }
  // One near access covers the whole probe — on a hit this is the entire
  // cost of the operation (that asymmetry is the point of the cache).
  client_->AccountNear(1);
  const size_t slot = ring_.Find(key);
  if (slot != ClockRing<Entry>::npos) {
    Entry& e = ring_.value(slot);
    if (e.valid && e.payload.size() == out.size()) {
      ring_.Touch(slot);
      std::memcpy(out.data(), e.payload.data(), out.size());
      if (watch != nullptr) {
        *watch = e.watch;
      }
      if (watch_word != nullptr) {
        *watch_word = e.watch_word;
      }
      ++stats_.hits;
      ++client_->mutable_stats().cache_hits;
      client_->recorder().RecordCacheHit();
      return true;
    }
  }
  ++stats_.misses;
  ++client_->mutable_stats().cache_misses;
  client_->recorder().RecordCacheMiss();
  return false;
}

bool NearCache::ArmWatch(Entry& e, uint64_t key, FarAddr watch,
                         uint64_t watch_len, uint64_t expected_watch_word,
                         const char* label_name) {
  NotifySpec spec;
  spec.mode = NotifyMode::kOnWrite;
  spec.addr = watch;
  spec.len = watch_len;
  spec.policy = options_.policy;
  uint64_t snapshot = 0;
  {
    ScopedOpLabel label(&client_->recorder(), label_name);
    auto result = client_->Subscribe(spec, this, &snapshot);
    if (!result.ok()) {
      return false;  // unsubscribable range: serve it uncached
    }
    e.sub = *result;
  }
  e.watch = watch;
  e.watch_len = watch_len;
  e.watch_word = snapshot;
  sub_to_key_[e.sub] = key;
  // Read-and-arm check: the payload was read *before* the subscription
  // existed. If the watched word moved in that window, a writer raced the
  // admission and its notification went to nobody — the payload cannot be
  // trusted. The subscription is live either way, so the entry enters
  // invalid and the next miss refills it under coverage.
  if (snapshot != expected_watch_word) {
    e.valid = false;
    ++stats_.raced_admits;
  } else {
    e.valid = true;
  }
  return true;
}

void NearCache::Admit(uint64_t key, std::span<const std::byte> payload,
                      FarAddr watch, uint64_t watch_len,
                      uint64_t expected_watch_word) {
  if (!enabled()) {
    return;
  }
  const uint64_t cost = payload.size() + kEntryOverhead;
  if (cost > options_.budget_bytes) {
    return;  // would never fit, even alone
  }
  const size_t slot = ring_.Find(key);
  if (slot != ClockRing<Entry>::npos) {
    // Resident (possibly invalidated) entry.
    Entry& e = ring_.value(slot);
    bytes_used_ -= EntryCost(e);
    e.payload.assign(payload.begin(), payload.end());
    if (e.watch == watch && e.watch_len == watch_len) {
      // Same watch: refill in place. The live subscription covered the
      // caller's read, so the payload is admissible as-is and no round
      // trip is paid — this is what makes invalidation cheap to recover
      // from. (A write racing the refill has already published into our
      // channel; the next dispatch kills the entry again.)
      e.watch_word = expected_watch_word;
      e.valid = true;
      ++stats_.refills;
    } else {
      // The key's watched range moved (e.g. a split migrated it to a new
      // table and retired — possibly freed — the old one). The old
      // subscription now watches dead memory and would never see another
      // relevant write, so release it and read-and-arm the new range.
      ReleaseEntry(e, "cache.rewatch");
      ++stats_.rewatches;
      if (!ArmWatch(e, key, watch, watch_len, expected_watch_word,
                    "cache.rewatch")) {
        // New range unsubscribable: the entry can't stay coherent. Drop it.
        ring_.Erase(key);
        return;
      }
    }
    bytes_used_ += EntryCost(e);
    ring_.Touch(slot);
    EvictToBudget();
    return;
  }
  if (options_.admit_after > 1) {
    // k-hit filter: count misses per key in a small CLOCK ring; only a key
    // seen admit_after times earns the subscribe round trip and budget.
    const size_t fslot = filter_.Find(key);
    uint32_t seen = 1;
    if (fslot != ClockRing<uint32_t>::npos) {
      seen = ++filter_.value(fslot);
      filter_.Touch(fslot);
    } else {
      filter_.Insert(key, 1);
    }
    if (seen < options_.admit_after) {
      return;
    }
    filter_.Erase(key);
  }

  Entry e;
  e.payload.assign(payload.begin(), payload.end());
  if (!ArmWatch(e, key, watch, watch_len, expected_watch_word,
                "cache.admit")) {
    return;
  }
  bytes_used_ += EntryCost(e);
  std::optional<std::pair<uint64_t, Entry>> evicted;
  ring_.Insert(key, std::move(e), &evicted);
  if (evicted.has_value()) {
    bytes_used_ -= EntryCost(evicted->second);
    ReleaseEntry(evicted->second);
    ++stats_.evictions;
  }
  ++stats_.admissions;
  EvictToBudget();
}

void NearCache::Invalidate(uint64_t key) {
  const size_t slot = ring_.Find(key);
  if (slot == ClockRing<Entry>::npos) {
    return;
  }
  Entry& e = ring_.value(slot);
  if (!e.valid) {
    return;
  }
  e.valid = false;
  // First in line for eviction: an invalid entry is only worth keeping for
  // its subscription, not its budget share.
  ring_.Unref(slot);
  ++stats_.invalidations;
  ++client_->mutable_stats().cache_invalidations;
  client_->recorder().RecordCacheInvalidation();
}

void NearCache::Refill(uint64_t key, std::span<const std::byte> payload,
                       FarAddr watch, uint64_t watch_len,
                       uint64_t watch_word) {
  if (!enabled()) {
    return;
  }
  const size_t slot = ring_.Find(key);
  if (slot == ClockRing<Entry>::npos) {
    return;  // not resident: admission stays a read-path decision
  }
  Entry& e = ring_.value(slot);
  if (e.watch != watch || e.watch_len != watch_len) {
    // The key's watched range moved under this entry (split migration).
    // Rewatching costs unsubscribe + subscribe round trips, which the
    // write path must not pay — kill the entry and let a read re-admit.
    Invalidate(key);
    return;
  }
  if (!options_.word_versioned) {
    // Without word versioning the echo of the writer's own CAS would kill
    // this refill at the next dispatch; keeping the entry valid until then
    // would serve hits that die unpredictably. Degrade to invalidation.
    Invalidate(key);
    return;
  }
  bytes_used_ -= EntryCost(e);
  e.payload.assign(payload.begin(), payload.end());
  e.watch_word = watch_word;
  e.valid = true;
  bytes_used_ += EntryCost(e);
  ring_.Touch(slot);
  ++stats_.writer_refills;
  EvictToBudget();
}

void NearCache::InvalidateAll() {
  ring_.ForEach([this](uint64_t, Entry& e) {
    if (e.valid) {
      e.valid = false;
      ++stats_.invalidations;
      ++client_->mutable_stats().cache_invalidations;
      client_->recorder().RecordCacheInvalidation();
    }
  });
}

void NearCache::OnNotify(const NotifyEvent& event) {
  if (event.kind == NotifyEventKind::kLossWarning) {
    // An unknown number of events, for unknown subscriptions, were lost:
    // the only safe response is to distrust everything cached.
    ++stats_.loss_resets;
    InvalidateAll();
    return;
  }
  auto it = sub_to_key_.find(event.sub_id);
  if (it == sub_to_key_.end()) {
    return;
  }
  if (options_.word_versioned) {
    // The event carries the watched word's state-at-publish value. If it
    // equals the word this entry was filled under, the write the event
    // reports *is* the write that produced the cached value (typically our
    // own refilled Put) — the entry is current, keep it. Coalesced events
    // carry the latest word, and an event stream always ends with the
    // current value, so a kept-stale window closes at the final event.
    const size_t slot = ring_.Find(it->second);
    if (slot != ClockRing<Entry>::npos) {
      Entry& e = ring_.value(slot);
      if (e.valid && e.watch == event.addr && e.watch_word == event.word) {
        ++stats_.word_confirms;
        return;
      }
    }
  }
  Invalidate(it->second);
}

void NearCache::ReleaseEntry(Entry& entry, const char* label_name) {
  if (entry.sub != kInvalidSubId) {
    sub_to_key_.erase(entry.sub);
    ScopedOpLabel label(&client_->recorder(), label_name);
    (void)client_->Unsubscribe(entry.sub);
    entry.sub = kInvalidSubId;
  }
  entry.watch = kNullFarAddr;
  entry.watch_len = 0;
}

void NearCache::EvictToBudget() {
  while (bytes_used_ > options_.budget_bytes) {
    auto victim = ring_.EvictOne();
    if (!victim.has_value()) {
      break;
    }
    bytes_used_ -= EntryCost(victim->second);
    ReleaseEntry(victim->second);
    ++stats_.evictions;
  }
}

void NearCache::Clear() {
  ring_.ForEach([this](uint64_t, Entry& e) { ReleaseEntry(e); });
  ring_.Clear();
  filter_.Clear();
  sub_to_key_.clear();
  bytes_used_ = 0;
}

}  // namespace fmds
