#include "src/cache/near_cache.h"

#include <algorithm>
#include <cstring>
#include <utility>

namespace fmds {

namespace {
// Ring capacity bound: every entry costs at least kEntryOverhead, so the
// budget can never hold more than this many entries.
size_t MaxEntries(uint64_t budget_bytes) {
  return std::max<uint64_t>(1, budget_bytes / NearCache::kEntryOverhead);
}
}  // namespace

NearCache::NearCache(FarClient* client, NearCacheOptions options)
    : client_(client),
      options_(options),
      ring_(MaxEntries(options.budget_bytes)),
      filter_(options.filter_slots),
      win_hits_(WindowedOptions{}.window_ns, WindowedOptions{}.slots),
      win_lookups_(WindowedOptions{}.window_ns, WindowedOptions{}.slots) {}

NearCache::~NearCache() { Clear(); }

uint64_t NearCache::BudgetLimit() const {
  return options_.shared_budget != nullptr ? options_.shared_budget->limit
                                           : options_.budget_bytes;
}

uint64_t NearCache::HighWatermark() const {
  if (options_.shared_budget != nullptr) {
    return options_.shared_budget->high_watermark;
  }
  return CacheBudget::DefaultHigh(options_.budget_bytes,
                                  options_.high_watermark_bytes);
}

uint64_t NearCache::LowWatermark() const {
  if (options_.shared_budget != nullptr) {
    return options_.shared_budget->low_watermark;
  }
  return CacheBudget::DefaultLow(options_.budget_bytes,
                                 options_.high_watermark_bytes,
                                 options_.low_watermark_bytes);
}

uint64_t NearCache::BudgetUsedLocked() const {
  return options_.shared_budget != nullptr
             ? options_.shared_budget->used.load(std::memory_order_relaxed)
             : bytes_used_;
}

void NearCache::AddBytesLocked(uint64_t n) {
  bytes_used_ += n;
  if (options_.shared_budget != nullptr) {
    options_.shared_budget->used.fetch_add(n, std::memory_order_relaxed);
  }
}

void NearCache::SubBytesLocked(uint64_t n) {
  bytes_used_ -= n;
  if (options_.shared_budget != nullptr) {
    options_.shared_budget->used.fetch_sub(n, std::memory_order_relaxed);
  }
}

void NearCache::DrainRetiredLocked() {
  // Owner thread only: finishes subscriptions the background evictor tore
  // down node-side. ForgetSubscription touches owner-thread client maps and
  // costs no round trip.
  for (SubId id : retired_subs_) {
    client_->ForgetSubscription(id);
  }
  retired_subs_.clear();
}

bool NearCache::Lookup(uint64_t key, std::span<std::byte> out) {
  return LookupWatch(key, out, nullptr, nullptr);
}

bool NearCache::LookupWatch(uint64_t key, std::span<std::byte> out,
                            FarAddr* watch, uint64_t* watch_word) {
  if (!enabled()) {
    return false;
  }
  // One near access covers the whole probe — on a hit this is the entire
  // cost of the operation (that asymmetry is the point of the cache).
  client_->AccountNear(1);
  // Owner thread: the clock read is safe here, and the timestamp feeds the
  // rolling hit-ratio gauge under mu_ below.
  const uint64_t now_ns = client_->clock().now_ns();
  std::lock_guard<std::mutex> lock(mu_);
  win_now_ns_ = std::max(win_now_ns_, now_ns);
  win_lookups_.Add(now_ns, 1);
  if (!retired_subs_.empty()) {
    DrainRetiredLocked();
  }
  const size_t slot = ring_.Find(key);
  if (slot != ClockRing<Entry>::npos) {
    Entry& e = ring_.value(slot);
    if (e.valid && e.payload.size() == out.size()) {
      ring_.Touch(slot);
      std::memcpy(out.data(), e.payload.data(), out.size());
      if (watch != nullptr) {
        *watch = e.watch;
      }
      if (watch_word != nullptr) {
        *watch_word = e.watch_word;
      }
      ++stats_.hits;
      win_hits_.Add(now_ns, 1);
      ++client_->mutable_stats().cache_hits;
      client_->recorder().RecordCacheHit();
      return true;
    }
  }
  ++stats_.misses;
  ++client_->mutable_stats().cache_misses;
  client_->recorder().RecordCacheMiss();
  return false;
}

bool NearCache::ArmWatchLocked(Entry& e, uint64_t key, FarAddr watch,
                               uint64_t watch_len,
                               uint64_t expected_watch_word,
                               const char* label_name) {
  NotifySpec spec;
  spec.mode = NotifyMode::kOnWrite;
  spec.addr = watch;
  spec.len = watch_len;
  spec.policy = options_.policy;
  uint64_t snapshot = 0;
  {
    ScopedOpLabel label(&client_->recorder(), label_name);
    auto result = client_->Subscribe(spec, this, &snapshot);
    if (!result.ok()) {
      return false;  // unsubscribable range: serve it uncached
    }
    e.sub = *result;
  }
  e.watch = watch;
  e.watch_len = watch_len;
  e.watch_word = snapshot;
  sub_to_key_[e.sub] = key;
  // Read-and-arm check: the payload was read *before* the subscription
  // existed. If the watched word moved in that window, a writer raced the
  // admission and its notification went to nobody — the payload cannot be
  // trusted. The subscription is live either way, so the entry enters
  // invalid and the next miss refills it under coverage.
  if (snapshot != expected_watch_word) {
    e.valid = false;
    ++stats_.raced_admits;
  } else {
    e.valid = true;
  }
  return true;
}

void NearCache::Admit(uint64_t key, std::span<const std::byte> payload,
                      FarAddr watch, uint64_t watch_len,
                      uint64_t expected_watch_word) {
  if (!enabled()) {
    return;
  }
  const uint64_t cost = payload.size() + kEntryOverhead;
  if (cost > BudgetLimit()) {
    return;  // would never fit, even alone
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (!retired_subs_.empty()) {
    DrainRetiredLocked();
  }
  const size_t slot = ring_.Find(key);
  if (slot != ClockRing<Entry>::npos) {
    // Resident (possibly invalidated) entry.
    Entry& e = ring_.value(slot);
    SubBytesLocked(EntryCost(e));
    e.payload.assign(payload.begin(), payload.end());
    if (e.watch == watch && e.watch_len == watch_len) {
      // Same watch: refill in place. The live subscription covered the
      // caller's read, so the payload is admissible as-is and no round
      // trip is paid — this is what makes invalidation cheap to recover
      // from. (A write racing the refill has already published into our
      // channel; the next dispatch kills the entry again.)
      e.watch_word = expected_watch_word;
      e.valid = true;
      ++stats_.refills;
    } else {
      // The key's watched range moved (e.g. a split migrated it to a new
      // table and retired — possibly freed — the old one). The old
      // subscription now watches dead memory and would never see another
      // relevant write, so release it and read-and-arm the new range.
      ReleaseEntryLocked(e, "cache.rewatch");
      ++stats_.rewatches;
      if (!ArmWatchLocked(e, key, watch, watch_len, expected_watch_word,
                          "cache.rewatch")) {
        // New range unsubscribable: the entry can't stay coherent. Drop it.
        ring_.Erase(key);
        return;
      }
    }
    AddBytesLocked(EntryCost(e));
    ring_.Touch(slot);
    if (!options_.background_eviction) {
      EvictToBudgetLocked();
    }
    return;
  }
  if (options_.background_eviction) {
    // The hot path never sweeps: above the high watermark (or with the ring
    // at capacity) the admission is dropped and the background evictor is
    // responsible for making room.
    if (BudgetUsedLocked() + cost > HighWatermark() ||
        ring_.size() + 1 >= ring_.capacity()) {
      ++stats_.wm_drops;
      return;
    }
  }
  if (options_.admit_after > 1) {
    // k-hit filter: count misses per key in a small CLOCK ring; only a key
    // seen admit_after times earns the subscribe round trip and budget.
    const size_t fslot = filter_.Find(key);
    uint32_t seen = 1;
    if (fslot != ClockRing<uint32_t>::npos) {
      seen = ++filter_.value(fslot);
      filter_.Touch(fslot);
    } else {
      filter_.Insert(key, 1);
    }
    if (seen < options_.admit_after) {
      return;
    }
    filter_.Erase(key);
  }

  Entry e;
  e.payload.assign(payload.begin(), payload.end());
  if (!ArmWatchLocked(e, key, watch, watch_len, expected_watch_word,
                      "cache.admit")) {
    return;
  }
  AddBytesLocked(EntryCost(e));
  std::optional<std::pair<uint64_t, Entry>> evicted;
  ring_.Insert(key, std::move(e), &evicted);
  if (evicted.has_value()) {
    SubBytesLocked(EntryCost(evicted->second));
    ReleaseEntryLocked(evicted->second);
    ++stats_.evictions;
  }
  ++stats_.admissions;
  if (!options_.background_eviction) {
    EvictToBudgetLocked();
  }
}

void NearCache::InvalidateLocked(uint64_t key, bool account_client) {
  const size_t slot = ring_.Find(key);
  if (slot == ClockRing<Entry>::npos) {
    return;
  }
  Entry& e = ring_.value(slot);
  if (!e.valid) {
    return;
  }
  e.valid = false;
  // First in line for eviction: an invalid entry is only worth keeping for
  // its subscription, not its budget share.
  ring_.Unref(slot);
  ++stats_.invalidations;
  if (account_client) {
    ++client_->mutable_stats().cache_invalidations;
    client_->recorder().RecordCacheInvalidation();
  }
}

void NearCache::Invalidate(uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  InvalidateLocked(key, /*account_client=*/true);
}

void NearCache::InvalidateExternal(uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  InvalidateLocked(key, /*account_client=*/false);
}

void NearCache::RefillLocked(uint64_t key, std::span<const std::byte> payload,
                             FarAddr watch, uint64_t watch_len,
                             uint64_t watch_word, bool account_client) {
  const size_t slot = ring_.Find(key);
  if (slot == ClockRing<Entry>::npos) {
    return;  // not resident: admission stays a read-path decision
  }
  Entry& e = ring_.value(slot);
  if (e.watch != watch || e.watch_len != watch_len) {
    // The key's watched range moved under this entry (split migration).
    // Rewatching costs unsubscribe + subscribe round trips, which the
    // write path must not pay — kill the entry and let a read re-admit.
    InvalidateLocked(key, account_client);
    return;
  }
  if (!options_.word_versioned) {
    // Without word versioning the echo of the writer's own CAS would kill
    // this refill at the next dispatch; keeping the entry valid until then
    // would serve hits that die unpredictably. Degrade to invalidation.
    InvalidateLocked(key, account_client);
    return;
  }
  SubBytesLocked(EntryCost(e));
  e.payload.assign(payload.begin(), payload.end());
  e.watch_word = watch_word;
  e.valid = true;
  AddBytesLocked(EntryCost(e));
  ring_.Touch(slot);
  ++stats_.writer_refills;
  if (!options_.background_eviction) {
    EvictToBudgetLocked();
  }
}

void NearCache::Refill(uint64_t key, std::span<const std::byte> payload,
                       FarAddr watch, uint64_t watch_len,
                       uint64_t watch_word) {
  if (!enabled()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  RefillLocked(key, payload, watch, watch_len, watch_word,
               /*account_client=*/true);
}

void NearCache::RefillExternal(uint64_t key, std::span<const std::byte> payload,
                               FarAddr watch, uint64_t watch_len,
                               uint64_t watch_word) {
  if (!enabled()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  RefillLocked(key, payload, watch, watch_len, watch_word,
               /*account_client=*/false);
}

void NearCache::InvalidateAllLocked(bool account_client) {
  ring_.ForEach([this, account_client](uint64_t, Entry& e) {
    if (e.valid) {
      e.valid = false;
      ++stats_.invalidations;
      if (account_client) {
        ++client_->mutable_stats().cache_invalidations;
        client_->recorder().RecordCacheInvalidation();
      }
    }
  });
}

void NearCache::InvalidateAll() {
  std::lock_guard<std::mutex> lock(mu_);
  InvalidateAllLocked(/*account_client=*/true);
}

void NearCache::OnNotify(const NotifyEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (event.kind == NotifyEventKind::kLossWarning) {
    // An unknown number of events, for unknown subscriptions, were lost:
    // the only safe response is to distrust everything cached.
    ++stats_.loss_resets;
    InvalidateAllLocked(/*account_client=*/true);
    return;
  }
  auto it = sub_to_key_.find(event.sub_id);
  if (it == sub_to_key_.end()) {
    return;
  }
  if (options_.word_versioned) {
    // The event carries the watched word's state-at-publish value. If it
    // equals the word this entry was filled under, the write the event
    // reports *is* the write that produced the cached value (typically our
    // own refilled Put) — the entry is current, keep it. Coalesced events
    // carry the latest word, and an event stream always ends with the
    // current value, so a kept-stale window closes at the final event.
    const size_t slot = ring_.Find(it->second);
    if (slot != ClockRing<Entry>::npos) {
      Entry& e = ring_.value(slot);
      if (e.valid && e.watch == event.addr && e.watch_word == event.word) {
        ++stats_.word_confirms;
        return;
      }
    }
  }
  InvalidateLocked(it->second, /*account_client=*/true);
}

void NearCache::ReleaseEntryLocked(Entry& entry, const char* label_name) {
  if (entry.sub != kInvalidSubId) {
    sub_to_key_.erase(entry.sub);
    ScopedOpLabel label(&client_->recorder(), label_name);
    (void)client_->Unsubscribe(entry.sub);
    entry.sub = kInvalidSubId;
  }
  entry.watch = kNullFarAddr;
  entry.watch_len = 0;
}

void NearCache::EvictToBudgetLocked() {
  while (BudgetUsedLocked() > BudgetLimit()) {
    auto victim = ring_.EvictOne();
    if (!victim.has_value()) {
      break;
    }
    SubBytesLocked(EntryCost(victim->second));
    ReleaseEntryLocked(victim->second);
    ++stats_.evictions;
  }
}

bool NearCache::SweepNeeded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_used_ > 0 && BudgetUsedLocked() > HighWatermark();
}

size_t NearCache::BackgroundSweep(FarClient* evictor_client) {
  // Phase 1 (under the cache mutex): pick CLOCK victims and reclaim their
  // near state. The victims' subscriptions are remembered but NOT torn down
  // here — paying round trips under the mutex would stall the hot path the
  // sweep exists to protect.
  struct Retired {
    SubId sub;
    FarAddr watch;
  };
  std::vector<Retired> retired;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const uint64_t low = LowWatermark();
    while (BudgetUsedLocked() > low && !ring_.empty()) {
      auto victim = ring_.EvictOne();
      if (!victim.has_value()) {
        break;
      }
      Entry& e = victim->second;
      SubBytesLocked(EntryCost(e));
      ++stats_.bg_evictions;
      if (e.sub != kInvalidSubId) {
        sub_to_key_.erase(e.sub);
        retired.push_back({e.sub, e.watch});
        // The owner forgets the id (no RTT) on its next cache op; any
        // event still in flight for it is ignored (sub_to_key_ miss) or
        // discarded by the owner's forgotten-subs filter.
        retired_subs_.push_back(e.sub);
      }
    }
  }
  // Phase 2 (no cache mutex): pay the node-side unsubscribe round trips on
  // the evictor's own client and clock.
  for (const Retired& r : retired) {
    ScopedOpLabel label(&evictor_client->recorder(), "cache.bg_evict");
    (void)evictor_client->UnsubscribeAt(r.watch, r.sub);
    ++evictor_client->mutable_stats().bg_evictions;
  }
  return retired.size();
}

void NearCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  DrainRetiredLocked();
  ring_.ForEach([this](uint64_t, Entry& e) { ReleaseEntryLocked(e); });
  ring_.Clear();
  filter_.Clear();
  sub_to_key_.clear();
  if (options_.shared_budget != nullptr && bytes_used_ > 0) {
    options_.shared_budget->used.fetch_sub(bytes_used_,
                                           std::memory_order_relaxed);
  }
  bytes_used_ = 0;
}

uint64_t NearCache::bytes_used() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_used_;
}

size_t NearCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

NearCacheStats NearCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

NearCache::Health NearCache::health() const {
  std::lock_guard<std::mutex> lock(mu_);
  Health h;
  h.bytes_used = bytes_used_;
  h.entries = ring_.size();
  h.budget_limit = BudgetLimit();
  h.high_watermark = HighWatermark();
  h.low_watermark = LowWatermark();
  h.sweep_needed = options_.background_eviction &&
                   BudgetUsedLocked() >= HighWatermark() && h.entries > 0;
  const uint64_t lookups = win_lookups_.RecentCount(win_now_ns_);
  const uint64_t hits = win_hits_.RecentCount(win_now_ns_);
  h.windowed_lookups = lookups;
  h.windowed_hit_ratio =
      lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups;
  return h;
}

void NearCache::AddGauges(GaugeGroup* group, const std::string& prefix) {
  group->Add(prefix + ".bytes_used", [this] {
    return static_cast<double>(health().bytes_used);
  });
  group->Add(prefix + ".entries",
             [this] { return static_cast<double>(health().entries); });
  group->Add(prefix + ".budget_headroom_bytes", [this] {
    const Health h = health();
    return h.bytes_used >= h.high_watermark
               ? 0.0
               : static_cast<double>(h.high_watermark - h.bytes_used);
  });
  group->Add(prefix + ".sweep_needed",
             [this] { return health().sweep_needed ? 1.0 : 0.0; });
  group->Add(prefix + ".windowed_hit_ratio",
             [this] { return health().windowed_hit_ratio; });
  group->Add(prefix + ".windowed_lookups", [this] {
    return static_cast<double>(health().windowed_lookups);
  });
}

}  // namespace fmds
