#include "src/cache/bg_evictor.h"

#include <algorithm>
#include <chrono>

namespace fmds {

BackgroundEvictor::BackgroundEvictor(Fabric* fabric, uint64_t client_id,
                                     BackgroundEvictorOptions options)
    : client_(fabric, client_id, options.client), options_(options) {
  thread_ = std::thread([this] { Main(); });
}

BackgroundEvictor::~BackgroundEvictor() { StopAndJoin(); }

void BackgroundEvictor::Watch(NearCache* cache) {
  std::lock_guard<std::mutex> lock(mu_);
  caches_.push_back(cache);
}

void BackgroundEvictor::Unwatch(NearCache* cache) {
  std::unique_lock<std::mutex> lock(mu_);
  caches_.erase(std::remove(caches_.begin(), caches_.end(), cache),
                caches_.end());
  // A pass snapshot taken before the erase may still hold the pointer;
  // wait it out so the caller can safely destroy the cache.
  pass_cv_.wait(lock, [this] { return !in_pass_; });
}

void BackgroundEvictor::SweepNow() {
  std::unique_lock<std::mutex> lock(mu_);
  if (stop_) {
    return;
  }
  const uint64_t ticket = ++wake_requests_;
  wake_cv_.notify_all();
  pass_cv_.wait(lock,
                [&] { return completed_requests_ >= ticket || stop_; });
}

void BackgroundEvictor::StopAndJoin() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      if (thread_.joinable()) {
        thread_.join();
      }
      return;
    }
    stop_ = true;
    wake_cv_.notify_all();
    pass_cv_.notify_all();
  }
  if (thread_.joinable()) {
    thread_.join();
  }
}

ClientStats BackgroundEvictor::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_snapshot_;
}

uint64_t BackgroundEvictor::passes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return passes_;
}

BackgroundEvictor::Health BackgroundEvictor::health() const {
  std::vector<NearCache*> caches;
  Health h;
  {
    std::lock_guard<std::mutex> lock(mu_);
    h.passes = passes_;
    h.bg_evictions = stats_snapshot_.bg_evictions;
    caches = caches_;
  }
  // Cache locks are taken OUTSIDE mu_ (the sweep path locks them with mu_
  // released too, so no ordering is established either way — don't start).
  h.watched_caches = caches.size();
  for (const NearCache* cache : caches) {
    const NearCache::Health ch = cache->health();
    h.bytes_used += ch.bytes_used;
    h.budget_headroom += ch.bytes_used >= ch.high_watermark
                             ? 0
                             : ch.high_watermark - ch.bytes_used;
  }
  return h;
}

void BackgroundEvictor::AddGauges(GaugeGroup* group,
                                  const std::string& prefix) {
  group->Add(prefix + ".passes",
             [this] { return static_cast<double>(health().passes); });
  group->Add(prefix + ".bg_evictions",
             [this] { return static_cast<double>(health().bg_evictions); });
  group->Add(prefix + ".watched_caches", [this] {
    return static_cast<double>(health().watched_caches);
  });
  group->Add(prefix + ".bytes_used",
             [this] { return static_cast<double>(health().bytes_used); });
  group->Add(prefix + ".budget_headroom", [this] {
    return static_cast<double>(health().budget_headroom);
  });
}

void BackgroundEvictor::Main() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    wake_cv_.wait_for(
        lock, std::chrono::microseconds(options_.poll_interval_us),
        [this] { return stop_ || wake_requests_ > completed_requests_; });
    if (stop_) {
      break;
    }
    const uint64_t claimed = wake_requests_;
    const bool forced = claimed > completed_requests_;
    std::vector<NearCache*> caches = caches_;
    in_pass_ = true;
    lock.unlock();
    for (NearCache* cache : caches) {
      if (forced || cache->SweepNeeded()) {
        cache->BackgroundSweep(&client_);
      }
    }
    lock.lock();
    in_pass_ = false;
    completed_requests_ = claimed;
    ++passes_;
    stats_snapshot_ = client_.stats();
    pass_cv_.notify_all();
  }
  in_pass_ = false;
  pass_cv_.notify_all();
}

}  // namespace fmds
