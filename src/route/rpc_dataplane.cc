#include "src/route/rpc_dataplane.h"

#include "src/rpc/message.h"

namespace fmds {

namespace {

// Per-key view wire format, shared by kGet and kMultiGet responses.
void WriteView(MsgWriter& writer, bool found, uint64_t value, FarAddr bucket,
               uint64_t head_word, uint64_t chain_hops) {
  writer.U8(found ? 1 : 0);
  writer.U8(1);  // server-side TxnRead views are always clean/admissible
  writer.U64(value);
  writer.U64(bucket);
  writer.U64(head_word);
  writer.U64(chain_hops);
}

Result<RemoteMapPath::ReadView> ReadViewFrom(MsgReader& reader) {
  RemoteMapPath::ReadView view;
  FMDS_ASSIGN_OR_RETURN(uint8_t found, reader.U8());
  FMDS_ASSIGN_OR_RETURN(uint8_t cacheable, reader.U8());
  FMDS_ASSIGN_OR_RETURN(view.value, reader.U64());
  FMDS_ASSIGN_OR_RETURN(view.bucket, reader.U64());
  FMDS_ASSIGN_OR_RETURN(view.head_word, reader.U64());
  FMDS_ASSIGN_OR_RETURN(uint64_t hops, reader.U64());
  view.found = found != 0;
  view.cacheable = cacheable != 0;
  view.chain_hops = static_cast<uint32_t>(hops);
  return view;
}

ClientOptions AgentClientOptions(NodeId node) {
  ClientOptions options;
  options.home_node = node;
  return options;
}

}  // namespace

// ---------------------------- MapRpcService ----------------------------

MapRpcService::MapRpcService(RpcServer* server, Fabric* fabric,
                             FarAllocator* alloc, NodeId node,
                             uint64_t client_id, HtTree::Options map_options)
    : server_(server),
      fabric_(fabric),
      alloc_(alloc),
      map_options_(map_options),
      agent_(fabric, client_id, AgentClientOptions(node)) {
  server->RegisterHandler(
      kGet, [this](std::span<const std::byte> req,
                   std::vector<std::byte>& resp) -> Status {
        return HandleGet(req, resp);
      });
  server->RegisterHandler(
      kPut, [this](std::span<const std::byte> req,
                   std::vector<std::byte>& resp) -> Status {
        return HandleWrite(req, resp, /*tombstone=*/false);
      });
  server->RegisterHandler(
      kRemove, [this](std::span<const std::byte> req,
                      std::vector<std::byte>& resp) -> Status {
        return HandleWrite(req, resp, /*tombstone=*/true);
      });
  server->RegisterHandler(
      kMultiGet, [this](std::span<const std::byte> req,
                        std::vector<std::byte>& resp) -> Status {
        return HandleMultiGet(req, resp);
      });
}

Result<HtTree*> MapRpcService::HandleFor(FarAddr header) {
  const auto it = handles_.find(header);
  if (it != handles_.end()) {
    return it->second.get();
  }
  // The agent binds its own handle to the same far header the callers use:
  // everything it publishes goes through the normal bucket-head CAS, so
  // caller-side watches and transaction validation see agent writes
  // exactly like one-sided ones.
  FMDS_ASSIGN_OR_RETURN(HtTree attached,
                        HtTree::Attach(&agent_, alloc_, header, map_options_));
  auto handle = std::make_unique<HtTree>(std::move(attached));
  HtTree* raw = handle.get();
  handles_.emplace(header, std::move(handle));
  return raw;
}

Status MapRpcService::HandleGet(std::span<const std::byte> req,
                                std::vector<std::byte>& resp) {
  MsgReader reader(req);
  FMDS_ASSIGN_OR_RETURN(uint64_t header, reader.U64());
  FMDS_ASSIGN_OR_RETURN(uint64_t key, reader.U64());
  const uint64_t t0 = agent_.clock().now_ns();
  auto map = HandleFor(header);
  if (!map.ok()) {
    server_->ChargeService(agent_.clock().now_ns() - t0);
    return map.status();
  }
  const uint64_t hops0 = (*map)->op_stats_.chain_hops;
  // TxnRead (cache off) rather than Get: it only answers from a clean,
  // version-checked head, so the returned word is admissible as the
  // caller's NearCache watch and as a Txn validation handle. The rare
  // kAborted (pending bucket outwaited) propagates; the caller falls back
  // to the one-sided path, which owns the retry discipline.
  auto view = (*map)->TxnRead(key, /*allow_cache=*/false);
  server_->ChargeService(agent_.clock().now_ns() - t0);
  if (!view.ok()) {
    return view.status();
  }
  MsgWriter writer;
  WriteView(writer, view->found, view->value, view->bucket, view->head_word,
            (*map)->op_stats_.chain_hops - hops0);
  resp = writer.Take();
  return OkStatus();
}

Status MapRpcService::HandleWrite(std::span<const std::byte> req,
                                  std::vector<std::byte>& resp,
                                  bool tombstone) {
  MsgReader reader(req);
  FMDS_ASSIGN_OR_RETURN(uint64_t header, reader.U64());
  FMDS_ASSIGN_OR_RETURN(uint64_t key, reader.U64());
  FMDS_ASSIGN_OR_RETURN(uint64_t value, reader.U64());
  const uint64_t t0 = agent_.clock().now_ns();
  auto map = HandleFor(header);
  if (!map.ok()) {
    server_->ChargeService(agent_.clock().now_ns() - t0);
    return map.status();
  }
  // MultiWrite's single-key form publishes through the bucket-head CAS and
  // reports the publish location, which the caller needs for its head hint
  // and writer-side refill.
  const uint64_t keys[1] = {key};
  const uint64_t values[1] = {value};
  const uint8_t tombstones[1] = {tombstone ? uint8_t{1} : uint8_t{0}};
  std::vector<HtTree::WriteOutcome> outcomes;
  const Status published =
      (*map)->MultiWrite(keys, values, tombstones, &outcomes);
  server_->ChargeService(agent_.clock().now_ns() - t0);
  FMDS_RETURN_IF_ERROR(published);
  MsgWriter writer;
  writer.U64(outcomes[0].bucket);
  writer.U64(outcomes[0].head);
  writer.U8(outcomes[0].refillable ? 1 : 0);
  resp = writer.Take();
  return OkStatus();
}

Status MapRpcService::HandleMultiGet(std::span<const std::byte> req,
                                     std::vector<std::byte>& resp) {
  MsgReader reader(req);
  FMDS_ASSIGN_OR_RETURN(uint64_t header, reader.U64());
  FMDS_ASSIGN_OR_RETURN(uint32_t count, reader.U32());
  std::vector<uint64_t> keys(count);
  for (uint32_t i = 0; i < count; ++i) {
    FMDS_ASSIGN_OR_RETURN(keys[i], reader.U64());
  }
  const uint64_t t0 = agent_.clock().now_ns();
  auto map = HandleFor(header);
  if (!map.ok()) {
    server_->ChargeService(agent_.clock().now_ns() - t0);
    return map.status();
  }
  // Serial per-key reads: at memory-local latencies the chain walks cost
  // nanoseconds, which is the point of shipping the batch here. Any key's
  // failure fails the call (the caller falls back one-sided as a whole).
  MsgWriter writer;
  writer.U32(count);
  Status failed = OkStatus();
  for (uint32_t i = 0; i < count; ++i) {
    const uint64_t hops0 = (*map)->op_stats_.chain_hops;
    auto view = (*map)->TxnRead(keys[i], /*allow_cache=*/false);
    if (!view.ok()) {
      failed = view.status();
      break;
    }
    WriteView(writer, view->found, view->value, view->bucket,
              view->head_word, (*map)->op_stats_.chain_hops - hops0);
  }
  server_->ChargeService(agent_.clock().now_ns() - t0);
  FMDS_RETURN_IF_ERROR(failed);
  resp = writer.Take();
  return OkStatus();
}

// ----------------------------- RpcDataplane -----------------------------

RpcDataplane::RpcDataplane(Fabric* fabric, FarAllocator* alloc,
                           Options options) {
  agents_.reserve(fabric->num_nodes());
  for (NodeId node = 0; node < fabric->num_nodes(); ++node) {
    agents_.push_back(
        std::make_unique<Agent>(fabric, alloc, node, options));
  }
}

// ------------------------------ RpcMapPath ------------------------------

RpcMapPath::RpcMapPath(FarClient* client, RpcDataplane* dataplane)
    : client_(client), dataplane_(dataplane) {
  rpcs_.resize(dataplane_->num_nodes());
}

Result<RpcClient*> RpcMapPath::ClientFor(FarAddr header) {
  FMDS_ASSIGN_OR_RETURN(auto loc, client_->fabric()->Translate(header));
  if (loc.node >= rpcs_.size()) {
    return Internal("map header on a node without an agent");
  }
  if (rpcs_[loc.node] == nullptr) {
    rpcs_[loc.node] =
        std::make_unique<RpcClient>(client_, dataplane_->server(loc.node));
  }
  return rpcs_[loc.node].get();
}

Result<RemoteMapPath::ReadView> RpcMapPath::Get(FarAddr header,
                                                uint64_t key) {
  ScopedOpLabel label(&client_->recorder(), "rpc.map.get");
  FMDS_ASSIGN_OR_RETURN(RpcClient * rpc, ClientFor(header));
  MsgWriter writer;
  writer.U64(header);
  writer.U64(key);
  std::vector<std::byte> resp;
  FMDS_RETURN_IF_ERROR(rpc->Call(MapRpcService::kGet, writer.view(), resp));
  MsgReader reader(resp);
  return ReadViewFrom(reader);
}

Result<RemoteMapPath::WriteOutcome> RpcMapPath::CallWrite(
    uint32_t method, const char* label_name, FarAddr header, uint64_t key,
    uint64_t value) {
  ScopedOpLabel label(&client_->recorder(), label_name);
  FMDS_ASSIGN_OR_RETURN(RpcClient * rpc, ClientFor(header));
  MsgWriter writer;
  writer.U64(header);
  writer.U64(key);
  writer.U64(value);
  std::vector<std::byte> resp;
  FMDS_RETURN_IF_ERROR(rpc->Call(method, writer.view(), resp));
  MsgReader reader(resp);
  WriteOutcome outcome;
  FMDS_ASSIGN_OR_RETURN(outcome.bucket, reader.U64());
  FMDS_ASSIGN_OR_RETURN(outcome.head, reader.U64());
  FMDS_ASSIGN_OR_RETURN(uint8_t refillable, reader.U8());
  outcome.refillable = refillable != 0;
  return outcome;
}

Result<RemoteMapPath::WriteOutcome> RpcMapPath::Put(FarAddr header,
                                                    uint64_t key,
                                                    uint64_t value) {
  return CallWrite(MapRpcService::kPut, "rpc.map.put", header, key, value);
}

Result<RemoteMapPath::WriteOutcome> RpcMapPath::Remove(FarAddr header,
                                                       uint64_t key) {
  return CallWrite(MapRpcService::kRemove, "rpc.map.remove", header, key, 0);
}

Status RpcMapPath::MultiGet(FarAddr header, std::span<const uint64_t> keys,
                            std::vector<ReadView>* views) {
  ScopedOpLabel label(&client_->recorder(), "rpc.map.multiget");
  FMDS_ASSIGN_OR_RETURN(RpcClient * rpc, ClientFor(header));
  MsgWriter writer;
  writer.U64(header);
  writer.U32(static_cast<uint32_t>(keys.size()));
  for (uint64_t key : keys) {
    writer.U64(key);
  }
  std::vector<std::byte> resp;
  FMDS_RETURN_IF_ERROR(
      rpc->Call(MapRpcService::kMultiGet, writer.view(), resp));
  MsgReader reader(resp);
  FMDS_ASSIGN_OR_RETURN(uint32_t count, reader.U32());
  if (count != keys.size()) {
    return Internal("multiget response count mismatch");
  }
  views->clear();
  views->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    FMDS_ASSIGN_OR_RETURN(ReadView view, ReadViewFrom(reader));
    views->push_back(view);
  }
  return OkStatus();
}

}  // namespace fmds
