// DataplaneRouter: the adaptive per-op one-sided vs RPC policy (DESIGN.md
// §13). §3.1 frames the choice — k dependent far accesses cost k round
// trips but no server CPU; shipping the op costs one round trip plus
// service time at a possibly-busy processor — and Brock et al. (PAPERS.md)
// show the winner flips with op complexity and server occupancy. Neither
// signal is static (chains grow, occupancy swings), so the router learns
// both routes' costs online and re-decides per operation.
//
// Policy, per (op kind, memory node):
//   - EWMA cost estimates, normalized so decisions extrapolate: the
//     one-sided estimate is ns per key per complexity unit (a chain twice
//     as deep prices twice as high), the RPC estimate is ns per key (the
//     agent walks chains at memory-local cost, so depth barely moves it).
//   - Cold start alternates routes until both have min_samples estimates.
//   - Hysteresis: the incumbent route keeps the traffic until the other is
//     better by more than the hysteresis factor — no flapping at the
//     crossover.
//   - Epsilon probing: every probe_period-th decision rides the losing
//     route so its estimate tracks regime changes the winner cannot see.
//   - Staleness priors: a route unobserved for stale_after decisions
//     blends its estimate toward the recorder's live windowed signals
//     (NodeLoadEwma for one-sided, RecentP99(kRpc) for RPC), so a swing
//     that happened while the route was cold still moves the decision.
#ifndef FMDS_SRC_ROUTE_ROUTER_H_
#define FMDS_SRC_ROUTE_ROUTER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "src/core/dataplane.h"
#include "src/fabric/far_client.h"

namespace fmds {

class GaugeGroup;

struct DataplaneRouterOptions {
  // Smoothing for the per-route cost EWMAs (and staleness blends).
  double ewma_alpha = 0.2;
  // The non-incumbent route must be better by this factor to take over.
  double hysteresis = 1.15;
  // Every Nth decision per (op, node) explores the losing route; 0 turns
  // probing off (estimates then only refresh via the staleness priors).
  uint32_t probe_period = 64;
  // Observations per route before its estimate is trusted; until then the
  // cold-start alternation feeds both routes.
  uint32_t min_samples = 3;
  // Decisions since a route's last observation before its estimate is
  // refreshed from the recorder's windowed signals.
  uint32_t stale_after = 256;
  // Static override: every decision returns this route (the bench's
  // one-sided-only / rpc-only arms). Probing and learning are bypassed.
  std::optional<DataplaneRoute> force;
};

class DataplaneRouter : public RouteDecider {
 public:
  // One router per FarClient (single application thread); `client` also
  // receives the route_* ClientStats bumps and provides the windowed
  // signals for staleness refresh.
  explicit DataplaneRouter(FarClient* client,
                           DataplaneRouterOptions options = {});

  DataplaneRoute Decide(RoutedOp op, NodeId node, double units,
                        uint64_t batch) override;
  void Observe(RoutedOp op, NodeId node, DataplaneRoute route,
               uint64_t latency_ns, double units, uint64_t batch) override;

  // Decision counters (readable from the telemetry thread).
  uint64_t one_sided_decisions() const {
    return one_sided_.load(std::memory_order_relaxed);
  }
  uint64_t rpc_decisions() const {
    return rpc_.load(std::memory_order_relaxed);
  }
  uint64_t probes() const { return probes_.load(std::memory_order_relaxed); }
  uint64_t flips() const { return flips_.load(std::memory_order_relaxed); }

  // Current normalized cost estimate (ns) for one route of one (op, node)
  // cell; 0 before any observation. Test/bench introspection.
  double EstimateNs(RoutedOp op, NodeId node, DataplaneRoute route) const;
  // The incumbent route for a cell (what Decide returns absent probes).
  DataplaneRoute Preferred(RoutedOp op, NodeId node) const;

  // Registers <prefix>.one_sided / .rpc / .probes / .flips gauges.
  void AddGauges(GaugeGroup* group, const std::string& prefix);

  const DataplaneRouterOptions& options() const { return options_; }

 private:
  struct RouteEstimate {
    double norm_ns = 0.0;  // EWMA, per key (×per unit for one-sided)
    uint64_t samples = 0;
    uint64_t last_seen = 0;  // decision index of the last observation
  };
  struct CellState {
    std::array<RouteEstimate, 2> est;  // indexed by DataplaneRoute
    DataplaneRoute preferred = DataplaneRoute::kOneSided;
    uint64_t decisions = 0;
  };

  CellState& Cell(RoutedOp op, NodeId node) {
    return states_[static_cast<size_t>(op)][node];
  }
  const CellState* CellIfPresent(RoutedOp op, NodeId node) const;
  void RefreshStale(CellState& cell, NodeId node);
  void CountDecision(DataplaneRoute route, bool probe);

  FarClient* client_;
  DataplaneRouterOptions options_;
  // Owner-thread state; the atomics below are the only cross-thread reads.
  std::array<std::unordered_map<NodeId, CellState>, kRoutedOpCount> states_;
  std::atomic<uint64_t> one_sided_{0};
  std::atomic<uint64_t> rpc_{0};
  std::atomic<uint64_t> probes_{0};
  std::atomic<uint64_t> flips_{0};
};

}  // namespace fmds

#endif  // FMDS_SRC_ROUTE_ROUTER_H_
