#include "src/route/router.h"

#include <algorithm>

#include "src/obs/telemetry.h"

namespace fmds {

namespace {

constexpr DataplaneRoute Other(DataplaneRoute route) {
  return route == DataplaneRoute::kOneSided ? DataplaneRoute::kRpc
                                            : DataplaneRoute::kOneSided;
}

constexpr size_t Idx(DataplaneRoute route) {
  return static_cast<size_t>(route);
}

}  // namespace

DataplaneRouter::DataplaneRouter(FarClient* client,
                                 DataplaneRouterOptions options)
    : client_(client), options_(options) {
  options_.ewma_alpha = std::clamp(options_.ewma_alpha, 0.01, 1.0);
  options_.hysteresis = std::max(options_.hysteresis, 1.0);
}

void DataplaneRouter::CountDecision(DataplaneRoute route, bool probe) {
  auto& stats = client_->mutable_stats();
  if (route == DataplaneRoute::kOneSided) {
    one_sided_.fetch_add(1, std::memory_order_relaxed);
    ++stats.route_one_sided;
  } else {
    rpc_.fetch_add(1, std::memory_order_relaxed);
    ++stats.route_rpc;
  }
  if (probe) {
    probes_.fetch_add(1, std::memory_order_relaxed);
    ++stats.route_probes;
  }
}

void DataplaneRouter::RefreshStale(CellState& cell, NodeId node) {
  // A cold estimate describes a regime that may be gone. The recorder's
  // rolling signals are live whichever route the traffic takes: every
  // one-sided access feeds NodeLoadEwma(node), every RPC feeds the kRpc
  // histogram — so each is a fair per-key prior for its route.
  const OpRecorder& recorder = client_->recorder();
  RouteEstimate& os = cell.est[Idx(DataplaneRoute::kOneSided)];
  if (os.samples > 0 && cell.decisions - os.last_seen > options_.stale_after) {
    const double load = recorder.NodeLoadEwma(node);  // ns per op
    if (load > 0.0) {
      os.norm_ns += options_.ewma_alpha * (load - os.norm_ns);
      os.last_seen = cell.decisions;
    }
  }
  RouteEstimate& rpc = cell.est[Idx(DataplaneRoute::kRpc)];
  if (rpc.samples > 0 &&
      cell.decisions - rpc.last_seen > options_.stale_after) {
    const double p99 =
        static_cast<double>(recorder.RecentP99(FarOpKind::kRpc));
    if (p99 > 0.0) {
      rpc.norm_ns += options_.ewma_alpha * (p99 - rpc.norm_ns);
      rpc.last_seen = cell.decisions;
    }
  }
}

DataplaneRoute DataplaneRouter::Decide(RoutedOp op, NodeId node, double units,
                                       uint64_t batch) {
  (void)batch;  // priced per key; the normalized estimates carry the rest
  if (options_.force.has_value()) {
    CountDecision(*options_.force, /*probe=*/false);
    return *options_.force;
  }
  CellState& cell = Cell(op, node);
  ++cell.decisions;
  RouteEstimate& os = cell.est[Idx(DataplaneRoute::kOneSided)];
  RouteEstimate& rpc = cell.est[Idx(DataplaneRoute::kRpc)];
  if (os.samples < options_.min_samples ||
      rpc.samples < options_.min_samples) {
    // Cold start: alternate so both routes earn real estimates before the
    // hysteresis loop starts defending an incumbent.
    const DataplaneRoute choice = os.samples <= rpc.samples
                                      ? DataplaneRoute::kOneSided
                                      : DataplaneRoute::kRpc;
    CountDecision(choice, /*probe=*/false);
    return choice;
  }
  RefreshStale(cell, node);
  const double os_cost = os.norm_ns * std::max(units, 1.0);
  const double rpc_cost = rpc.norm_ns;
  const DataplaneRoute challenger = Other(cell.preferred);
  const double incumbent_cost =
      cell.preferred == DataplaneRoute::kOneSided ? os_cost : rpc_cost;
  const double challenger_cost =
      cell.preferred == DataplaneRoute::kOneSided ? rpc_cost : os_cost;
  if (challenger_cost * options_.hysteresis < incumbent_cost) {
    cell.preferred = challenger;
    flips_.fetch_add(1, std::memory_order_relaxed);
    ++client_->mutable_stats().route_flips;
  }
  DataplaneRoute choice = cell.preferred;
  bool probe = false;
  if (options_.probe_period > 0 &&
      cell.decisions % options_.probe_period == 0) {
    // Exploration tick: ride the losing route once so its estimate stays
    // live (a regime change on the loser is otherwise invisible).
    choice = Other(cell.preferred);
    probe = true;
  }
  CountDecision(choice, probe);
  return choice;
}

void DataplaneRouter::Observe(RoutedOp op, NodeId node, DataplaneRoute route,
                              uint64_t latency_ns, double units,
                              uint64_t batch) {
  if (options_.force.has_value()) {
    return;  // static arms keep their estimates frozen
  }
  CellState& cell = Cell(op, node);
  RouteEstimate& est = cell.est[Idx(route)];
  const double keys = static_cast<double>(std::max<uint64_t>(batch, 1));
  double denom = keys;
  if (route == DataplaneRoute::kOneSided) {
    denom *= std::max(units, 1e-9);
  }
  const double norm = static_cast<double>(latency_ns) / denom;
  est.norm_ns = est.samples == 0
                    ? norm
                    : est.norm_ns + options_.ewma_alpha * (norm - est.norm_ns);
  ++est.samples;
  est.last_seen = cell.decisions;
}

const DataplaneRouter::CellState* DataplaneRouter::CellIfPresent(
    RoutedOp op, NodeId node) const {
  const auto& per_node = states_[static_cast<size_t>(op)];
  const auto it = per_node.find(node);
  return it == per_node.end() ? nullptr : &it->second;
}

double DataplaneRouter::EstimateNs(RoutedOp op, NodeId node,
                                   DataplaneRoute route) const {
  const CellState* cell = CellIfPresent(op, node);
  return cell == nullptr ? 0.0 : cell->est[Idx(route)].norm_ns;
}

DataplaneRoute DataplaneRouter::Preferred(RoutedOp op, NodeId node) const {
  const CellState* cell = CellIfPresent(op, node);
  return cell == nullptr ? DataplaneRoute::kOneSided : cell->preferred;
}

void DataplaneRouter::AddGauges(GaugeGroup* group, const std::string& prefix) {
  group->Add(prefix + ".one_sided",
             [this] { return static_cast<double>(one_sided_decisions()); });
  group->Add(prefix + ".rpc",
             [this] { return static_cast<double>(rpc_decisions()); });
  group->Add(prefix + ".probes",
             [this] { return static_cast<double>(probes()); });
  group->Add(prefix + ".flips",
             [this] { return static_cast<double>(flips()); });
}

}  // namespace fmds
