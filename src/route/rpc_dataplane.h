// The two-sided half of the adaptive dataplane (DESIGN.md §13): per-node
// near-memory agents that execute map operations server-side, and the
// caller-side RemoteMapPath that ships operations to them.
//
// Semantic equivalence is the load-bearing property. Each agent runs a real
// HtTree handle Attach'd to the same far header the callers use, through a
// FarClient whose home_node is the agent's own node — so its accesses are
// priced at memory-local cost (the §3.1 "processor close to the memory"),
// but they are the SAME protocol accesses: mutations publish through the
// bucket-head CAS, so NearCache watch words fire and Txn validation words
// swing exactly as if the caller had executed the op one-sided. Responses
// carry the publish/observe location so the caller maintains its own cache.
#ifndef FMDS_SRC_ROUTE_RPC_DATAPLANE_H_
#define FMDS_SRC_ROUTE_RPC_DATAPLANE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/core/dataplane.h"
#include "src/core/ht_tree.h"
#include "src/rpc/rpc.h"

namespace fmds {

// Server-side map service colocated with one memory node. Handlers run
// under the RpcServer's dispatch lock (one agent core); the modelled cost
// of the agent's own far-structure accesses rides the call's service time
// via RpcServer::ChargeService, and the node's load_factor inflates the
// whole call M/M/1-style.
class MapRpcService {
 public:
  static constexpr uint32_t kGet = 100;
  static constexpr uint32_t kPut = 101;
  static constexpr uint32_t kRemove = 102;
  static constexpr uint32_t kMultiGet = 103;

  MapRpcService(RpcServer* server, Fabric* fabric, FarAllocator* alloc,
                NodeId node, uint64_t client_id,
                HtTree::Options map_options = {});

  FarClient& agent_client() { return agent_; }

 private:
  // Lazy server-side attach keyed by header: the first request against a
  // map binds an agent handle to it (runs under the dispatch lock).
  Result<HtTree*> HandleFor(FarAddr header);

  Status HandleGet(std::span<const std::byte> req,
                   std::vector<std::byte>& resp);
  Status HandleWrite(std::span<const std::byte> req,
                     std::vector<std::byte>& resp, bool tombstone);
  Status HandleMultiGet(std::span<const std::byte> req,
                        std::vector<std::byte>& resp);

  RpcServer* server_;
  Fabric* fabric_;
  FarAllocator* alloc_;
  HtTree::Options map_options_;
  FarClient agent_;
  std::unordered_map<FarAddr, std::unique_ptr<HtTree>> handles_;
};

// One agent (RpcServer + MapRpcService) per memory node. The bench's
// occupancy knob is SetLoadFactor; HtTree/ShardedMap routing reaches the
// fleet through RpcMapPath below.
class RpcDataplane {
 public:
  struct Options {
    RpcServerOptions server;
    // Agent-side handle knobs. Leave the cache off (default): the agent
    // sits next to the memory, and a server-side NearCache would add a
    // second coherence domain for no latency win.
    HtTree::Options map;
    // Agent FarClients get ids base + node, so they are recognizable in
    // stats dumps next to application clients.
    uint64_t agent_client_id_base = 900;
  };

  RpcDataplane(Fabric* fabric, FarAllocator* alloc, Options options);
  RpcDataplane(Fabric* fabric, FarAllocator* alloc)
      : RpcDataplane(fabric, alloc, Options()) {}

  RpcServer* server(NodeId node) { return &agents_[node]->server; }
  MapRpcService& service(NodeId node) { return agents_[node]->service; }
  size_t num_nodes() const { return agents_.size(); }

  // Occupancy of the colocated processor from non-dataplane work — the
  // §3.1 crossover knob (M/M/1 inflation of every call to that node).
  void SetLoadFactor(NodeId node, double rho) {
    agents_[node]->server.set_load_factor(rho);
  }
  void SetLoadFactorAll(double rho) {
    for (auto& agent : agents_) {
      agent->server.set_load_factor(rho);
    }
  }

 private:
  struct Agent {
    RpcServer server;
    MapRpcService service;
    Agent(Fabric* fabric, FarAllocator* alloc, NodeId node,
          const Options& options)
        : server(options.server),
          service(&server, fabric, alloc, node,
                  options.agent_client_id_base + node, options.map) {
      server.set_node(node);
    }
  };

  std::vector<std::unique_ptr<Agent>> agents_;
};

// Caller-side RemoteMapPath: translates the map header to its home node
// and ships the op to that node's agent over a per-node RpcClient bound to
// the caller's FarClient (the call charges the caller's clock: fabric RTT
// + agent service + occupancy wait). One instance per application thread.
class RpcMapPath : public RemoteMapPath {
 public:
  RpcMapPath(FarClient* client, RpcDataplane* dataplane);

  Result<ReadView> Get(FarAddr header, uint64_t key) override;
  Result<WriteOutcome> Put(FarAddr header, uint64_t key,
                           uint64_t value) override;
  Result<WriteOutcome> Remove(FarAddr header, uint64_t key) override;
  Status MultiGet(FarAddr header, std::span<const uint64_t> keys,
                  std::vector<ReadView>* views) override;

 private:
  Result<RpcClient*> ClientFor(FarAddr header);
  Result<WriteOutcome> CallWrite(uint32_t method, const char* label,
                                 FarAddr header, uint64_t key, uint64_t value);

  FarClient* client_;
  RpcDataplane* dataplane_;
  std::vector<std::unique_ptr<RpcClient>> rpcs_;  // indexed by node
};

}  // namespace fmds

#endif  // FMDS_SRC_ROUTE_RPC_DATAPLANE_H_
