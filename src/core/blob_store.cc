#include "src/core/blob_store.h"

#include <cstring>

#include "src/common/bytes.h"
#include "src/obs/recorder.h"

namespace fmds {

Result<HtBlobStore> HtBlobStore::Create(FarClient* client,
                                        FarAllocator* alloc,
                                        HtTree::Options options) {
  ShardedMap::Options sharded;
  sharded.num_shards = 1;
  sharded.shard = options;
  sharded.pin_shards = false;  // keep the caller's placement choice
  return CreateSharded(client, alloc, sharded);
}

Result<HtBlobStore> HtBlobStore::CreateSharded(FarClient* client,
                                               FarAllocator* alloc,
                                               ShardedMap::Options options) {
  FMDS_ASSIGN_OR_RETURN(ShardedMap map,
                        ShardedMap::Create(client, alloc, options));
  return HtBlobStore(std::move(map), client, alloc);
}

Result<HtBlobStore> HtBlobStore::Attach(FarClient* client,
                                        FarAllocator* alloc,
                                        FarAddr header) {
  FMDS_ASSIGN_OR_RETURN(ShardedMap map,
                        ShardedMap::Attach(client, alloc, header));
  return HtBlobStore(std::move(map), client, alloc);
}

void HtBlobStore::EnableChunkCache(NearCacheOptions options) {
  if (options.budget_bytes > 0) {
    chunk_cache_ = std::make_unique<NearCache>(client_, options);
  } else {
    chunk_cache_.reset();
  }
}

Status HtBlobStore::Put(uint64_t key, std::span<const std::byte> value) {
  ScopedOpLabel label(&client_->recorder(), "blob.put");
  if (chunk_cache_ != nullptr) {
    (void)client_->DispatchNotifications();
  }
  // Blob layout: [0] length word, then the bytes. The blob lives on the
  // same node as the key's shard so batched reads of many keys split
  // cleanly into per-node sub-batches (§7 fan-out).
  const uint64_t blob_bytes = kWordSize + value.size();
  const AllocHint hint = map_.num_shards() > 1
                             ? AllocHint::OnNode(map_.NodeOf(key))
                             : AllocHint::Any();
  FMDS_ASSIGN_OR_RETURN(FarAddr blob, alloc_->Allocate(blob_bytes, hint));
  std::vector<std::byte> image(blob_bytes);
  const uint64_t len = value.size();
  std::memcpy(image.data(), &len, kWordSize);
  std::memcpy(image.data() + kWordSize, value.data(), value.size());
  FMDS_RETURN_IF_ERROR(client_->Write(blob, image));  // 1 far access
  // Publish through the map (2 far accesses). A replaced blob becomes
  // unreachable; its memory is reclaimed through allocator epochs by the
  // application's maintenance cadence.
  return map_.Put(key, blob);
}

Result<std::vector<std::byte>> HtBlobStore::Get(uint64_t key,
                                                uint64_t size_hint) {
  ScopedOpLabel label(&client_->recorder(), "blob.get");
  if (chunk_cache_ != nullptr) {
    (void)client_->DispatchNotifications();
  }
  FMDS_ASSIGN_OR_RETURN(uint64_t blob, map_.Get(key));  // 1 far access
  const uint64_t first_fetch =
      kWordSize + (size_hint > 0 ? size_hint : kInlineFetch - kWordSize);
  std::vector<std::byte> buf(first_fetch);
  // Chunk cache: a hit replaces the first-fetch far read with a near copy.
  const bool chunk_hit =
      chunk_cache_ != nullptr && chunk_cache_->Lookup(blob, buf);
  if (!chunk_hit) {
    FMDS_RETURN_IF_ERROR(client_->Read(blob, buf));  // 1 far access
    if (chunk_cache_ != nullptr) {
      // Watch = the blob's own length word; the value just read doubles as
      // the read-and-arm expectation (blobs are immutable, so the word only
      // changes if the allocator recycles the region under us).
      chunk_cache_->Admit(blob, buf, blob, kWordSize, LoadAs<uint64_t>(buf));
    }
  }
  const uint64_t len = LoadAs<uint64_t>(buf);
  std::vector<std::byte> value(len);
  const uint64_t have = std::min<uint64_t>(len, first_fetch - kWordSize);
  std::memcpy(value.data(), buf.data() + kWordSize, have);
  if (have < len) {
    // Large value beyond the speculative fetch: one more far access.
    FMDS_RETURN_IF_ERROR(client_->Read(
        blob + kWordSize + have,
        std::span<std::byte>(value).subspan(have)));
  }
  return value;
}

std::vector<Result<std::vector<std::byte>>> HtBlobStore::MultiGet(
    std::span<const uint64_t> keys, uint64_t size_hint) {
  ScopedOpLabel label(&client_->recorder(), "blob.multiget");
  if (chunk_cache_ != nullptr) {
    (void)client_->DispatchNotifications();
  }
  std::vector<Result<std::vector<std::byte>>> results(
      keys.size(),
      Result<std::vector<std::byte>>(
          Status(StatusCode::kInternal, "multiget unresolved")));
  // Phase 1: all map lookups in batched waves.
  std::vector<Result<uint64_t>> blobs = map_.MultiGet(keys);
  // Phase 2: metadata + payload gather — every live blob whose first fetch
  // the chunk cache can't serve shares one doorbell. Tails (from hits and
  // fetches alike) collect into phase 3.
  const uint64_t first_fetch =
      kWordSize + (size_hint > 0 ? size_hint : kInlineFetch - kWordSize);
  struct Fetch {
    size_t idx = 0;
    FarAddr blob = kNullFarAddr;
    std::vector<std::byte> buf;
  };
  struct Tail {
    size_t idx = 0;  // result index
    FarAddr blob = kNullFarAddr;
    uint64_t have = 0;
  };
  std::vector<Fetch> fetches;
  std::vector<Tail> tails;
  // Unpacks a first-fetch image into results[idx]; queues any tail.
  const auto absorb_first_fetch = [&](size_t idx, FarAddr blob,
                                      std::span<const std::byte> buf) {
    const uint64_t len = LoadAs<uint64_t>(buf);
    std::vector<std::byte> value(len);
    const uint64_t have = std::min<uint64_t>(len, first_fetch - kWordSize);
    std::memcpy(value.data(), buf.data() + kWordSize, have);
    results[idx] = std::move(value);
    if (have < len) {
      tails.push_back(Tail{idx, blob, have});
    }
  };
  for (size_t i = 0; i < keys.size(); ++i) {
    if (!blobs[i].ok()) {
      results[i] = blobs[i].status();
      continue;
    }
    const FarAddr blob = *blobs[i];
    if (chunk_cache_ != nullptr) {
      std::vector<std::byte> cached(first_fetch);
      if (chunk_cache_->Lookup(blob, cached)) {
        absorb_first_fetch(i, blob, cached);
        continue;
      }
    }
    fetches.push_back(Fetch{i, blob, std::vector<std::byte>(first_fetch)});
  }
  for (Fetch& fetch : fetches) {
    client_->PostRead(fetch.blob, fetch.buf);
  }
  if (!fetches.empty()) {
    std::vector<FarClient::Completion> done;
    (void)client_->WaitAll(&done);
    for (size_t j = 0; j < fetches.size(); ++j) {
      const Fetch& fetch = fetches[j];
      if (!done[j].status.ok()) {
        results[fetch.idx] = done[j].status;
        continue;
      }
      if (chunk_cache_ != nullptr) {
        chunk_cache_->Admit(fetch.blob, fetch.buf, fetch.blob, kWordSize,
                            LoadAs<uint64_t>(fetch.buf));
      }
      absorb_first_fetch(fetch.idx, fetch.blob, fetch.buf);
    }
  }
  // Phase 3: tails beyond the speculative fetch share a final doorbell.
  if (tails.empty()) {
    return results;
  }
  for (const Tail& tail : tails) {
    client_->PostRead(
        tail.blob + kWordSize + tail.have,
        std::span<std::byte>(*results[tail.idx]).subspan(tail.have));
  }
  std::vector<FarClient::Completion> done;
  (void)client_->WaitAll(&done);
  for (size_t j = 0; j < tails.size(); ++j) {
    if (!done[j].status.ok()) {
      results[tails[j].idx] = done[j].status;
    }
  }
  return results;
}

Status HtBlobStore::Remove(uint64_t key) {
  ScopedOpLabel label(&client_->recorder(), "blob.remove");
  return map_.Remove(key);
}

}  // namespace fmds
