#include "src/core/blob_store.h"

#include <cstring>

#include "src/common/bytes.h"

namespace fmds {

Result<HtBlobStore> HtBlobStore::Create(FarClient* client,
                                        FarAllocator* alloc,
                                        HtTree::Options options) {
  FMDS_ASSIGN_OR_RETURN(HtTree map, HtTree::Create(client, alloc, options));
  return HtBlobStore(std::move(map), client, alloc);
}

Result<HtBlobStore> HtBlobStore::Attach(FarClient* client,
                                        FarAllocator* alloc,
                                        FarAddr header) {
  FMDS_ASSIGN_OR_RETURN(HtTree map, HtTree::Attach(client, alloc, header));
  return HtBlobStore(std::move(map), client, alloc);
}

Status HtBlobStore::Put(uint64_t key, std::span<const std::byte> value) {
  // Blob layout: [0] length word, then the bytes.
  const uint64_t blob_bytes = kWordSize + value.size();
  FMDS_ASSIGN_OR_RETURN(FarAddr blob, alloc_->Allocate(blob_bytes));
  std::vector<std::byte> image(blob_bytes);
  const uint64_t len = value.size();
  std::memcpy(image.data(), &len, kWordSize);
  std::memcpy(image.data() + kWordSize, value.data(), value.size());
  FMDS_RETURN_IF_ERROR(client_->Write(blob, image));  // 1 far access
  // Publish through the map (2 far accesses). A replaced blob becomes
  // unreachable; its memory is reclaimed through allocator epochs by the
  // application's maintenance cadence.
  return map_.Put(key, blob);
}

Result<std::vector<std::byte>> HtBlobStore::Get(uint64_t key,
                                                uint64_t size_hint) {
  FMDS_ASSIGN_OR_RETURN(uint64_t blob, map_.Get(key));  // 1 far access
  const uint64_t first_fetch =
      kWordSize + (size_hint > 0 ? size_hint : kInlineFetch - kWordSize);
  std::vector<std::byte> buf(first_fetch);
  FMDS_RETURN_IF_ERROR(client_->Read(blob, buf));  // 1 far access
  const uint64_t len = LoadAs<uint64_t>(buf);
  std::vector<std::byte> value(len);
  const uint64_t have = std::min<uint64_t>(len, first_fetch - kWordSize);
  std::memcpy(value.data(), buf.data() + kWordSize, have);
  if (have < len) {
    // Large value beyond the speculative fetch: one more far access.
    FMDS_RETURN_IF_ERROR(client_->Read(
        blob + kWordSize + have,
        std::span<std::byte>(value).subspan(have)));
  }
  return value;
}

Status HtBlobStore::Remove(uint64_t key) { return map_.Remove(key); }

}  // namespace fmds
