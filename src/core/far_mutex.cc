#include "src/core/far_mutex.h"

#include <chrono>
#include <thread>

namespace fmds {

Result<bool> FarMutex::TryLock(FarClient& client) const {
  FMDS_ASSIGN_OR_RETURN(uint64_t old,
                        client.CompareSwap(addr_, 0, OwnerTag(client)));
  return old == 0;
}

Status FarMutex::Lock(FarClient& client, MutexWaitStrategy strategy,
                      uint64_t timeout_ms) const {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  FMDS_ASSIGN_OR_RETURN(bool acquired, TryLock(client));
  if (acquired) {
    return OkStatus();
  }
  if (strategy == MutexWaitStrategy::kPoll) {
    while (std::chrono::steady_clock::now() < deadline) {
      FMDS_ASSIGN_OR_RETURN(bool got, TryLock(client));
      if (got) {
        return OkStatus();
      }
      std::this_thread::yield();
    }
    return Unavailable("mutex poll-lock timed out");
  }
  // Notification strategy: subscribe to "word == 0", retry the CAS whenever
  // a release fires (or periodically as a lost-notification fallback).
  NotifySpec spec;
  spec.mode = NotifyMode::kOnEqual;
  spec.addr = addr_;
  spec.len = kWordSize;
  spec.value = 0;
  FMDS_ASSIGN_OR_RETURN(SubId sub, client.Subscribe(spec));
  Status result = Unavailable("mutex notify-lock timed out");
  while (std::chrono::steady_clock::now() < deadline) {
    // Re-check after subscribing: the release may have happened in between
    // (classic missed-wakeup guard).
    auto got = TryLock(client);
    if (!got.ok()) {
      result = got.status();
      break;
    }
    if (*got) {
      result = OkStatus();
      break;
    }
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) {
      break;
    }
    // Wait for a release event; on timeout loop back to a CAS retry so a
    // dropped notification cannot wedge us (notifications are best-effort).
    (void)client.WaitNotification(static_cast<uint64_t>(
        std::min<int64_t>(remaining.count(), 50)));
  }
  (void)client.Unsubscribe(sub);
  return result;
}

Status FarMutex::Unlock(FarClient& client) const {
  return client.WriteWord(addr_, 0);
}

}  // namespace fmds
