// Write-behind dataplane (§3.1, DESIGN.md §11): the application thread
// enqueues Put/Remove into a client-local pending-write table and returns
// immediately; a dedicated flusher thread drains the table in pipelined
// stages (coalesce -> CAS-issue -> completion-absorb -> writer-side cache
// refill). Storm's observation (PAPERS.md) is that issue *rate*, not
// single-op latency, bounds a loaded dataplane — decoupling the app thread
// from the publish round trips is what lifts the synchronous-Put ceiling.
//
// Write combining: in combine mode (default) the pending table holds at
// most one record per key — a newer Put/Remove to a staged key overwrites
// it in place (ClientStats.writes_combined on the app client) and the
// superseded value never costs a doorbell. A hot key being rewritten in a
// loop costs one publish per flush interval, not one per write.
//
// Ordering guarantees (per key, last-writer-wins):
//   - Read-your-writes: Lookup() consults the pending table (staged AND
//     in-flight records), so the owning thread always observes its latest
//     write. Structure integration checks the table BEFORE its near cache.
//   - Per-key order: combine mode trivially (one record); FIFO mode stops
//     a batch at the first same-key duplicate, so two writes to one key
//     never ride one MultiWrite (whose same-batch duplicate order is
//     unspecified).
//   - NO cross-key ordering: writes to different keys may publish in any
//     order. A reader needing a consistent multi-key cut must use
//     FlushBarrier() or a transaction (Txn entry points drain the table).
//   - FlushBarrier() blocks until every write enqueued before the call is
//     published, and returns the first asynchronous publish error since
//     the last barrier (a failed batch's records are dropped, not
//     silently retried forever).
//
// Threading: Put/Remove/Lookup/FlushBarrier are called by the single
// owning application thread; the flusher thread is internal. The flusher
// publishes through a Publisher the structure supplies — it owns a
// SEPARATE FarClient (and structure handle), so round trips, stats
// (flush_stages) and labels ("wb.coalesce"/"wb.flush") land on the
// flusher's clock, keeping the app client's counters an honest record of
// hot-path work (the proof the hot path is allocation- and
// reclamation-free).
#ifndef FMDS_SRC_CORE_WRITE_BEHIND_H_
#define FMDS_SRC_CORE_WRITE_BEHIND_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/status.h"
#include "src/fabric/far_client.h"
#include "src/obs/telemetry.h"

namespace fmds {

struct WriteBehindOptions {
  // Combine same-key writes in the pending table before the doorbell.
  bool combine = true;
  // Records drained per flush pass (one MultiWrite doorbell wave).
  size_t max_batch = 256;
  // Backpressure bound: Enqueue blocks while this many records are staged.
  size_t max_pending = 4096;
  // The flusher drains when a batch's worth is staged, a barrier is
  // waiting, or this real-time interval elapses with work pending. Large
  // intervals maximize combining; small ones minimize publish lag.
  uint64_t flush_interval_us = 200;
  // Options for the flusher's own FarClient (obs gate etc.).
  ClientOptions flusher_client;
};

class WriteBehindEngine {
 public:
  // One drained batch, in pending-table order.
  struct Batch {
    std::vector<uint64_t> keys;
    std::vector<uint64_t> values;
    std::vector<uint8_t> tombstones;  // 1 = Remove
  };

  // The structure-side publish target, owned by the engine and driven only
  // from the flusher thread. Implementations (HtTree/ShardedMap) hold a
  // flusher-owned FarClient plus an Attach'd handle to the same far map.
  class Publisher {
   public:
    virtual ~Publisher() = default;
    // The flusher's client: stage stats and labels are charged here.
    virtual FarClient* client() = 0;
    // CAS-issue + completion-absorb: publish the whole batch far-side
    // (one doorbell wave per stage via the structure's batch engine).
    virtual Status Publish(const Batch& batch) = 0;
    // Writer-side cache refill: push the published values into the
    // application handle's NearCache (External variants — no owner-client
    // accounting). Called only after a successful Publish.
    virtual void RefillCaches(const Batch& batch) = 0;
  };

  WriteBehindEngine(FarClient* app_client,
                    std::unique_ptr<Publisher> publisher,
                    WriteBehindOptions options);
  WriteBehindEngine(const WriteBehindEngine&) = delete;
  WriteBehindEngine& operator=(const WriteBehindEngine&) = delete;
  // Drains every staged write, then joins the flusher.
  ~WriteBehindEngine();

  // Enqueue (app thread, no round trip). Errors surface at FlushBarrier().
  void Put(uint64_t key, uint64_t value);
  void Remove(uint64_t key);

  // Read-your-writes probe: true when `key` has an unpublished (staged or
  // in-flight) write; *tombstone reports a pending Remove.
  bool Lookup(uint64_t key, uint64_t* value, bool* tombstone) const;

  // True when no staged or in-flight writes exist. Lock-free fast path for
  // per-operation drain hooks.
  bool Empty() const {
    return unpublished_.load(std::memory_order_acquire) == 0;
  }

  // Blocks until every write enqueued before the call is published; returns
  // (and clears) the first asynchronous publish error since the last
  // barrier.
  Status FlushBarrier();

  uint64_t pending_count() const {
    return unpublished_.load(std::memory_order_acquire);
  }
  const WriteBehindOptions& options() const { return options_; }

  // Live pipeline health (any thread; locks mu_). Ages are in the APP
  // client's simulated time, measured against the newest enqueue the engine
  // has seen (sim clocks are owner-local, so a cross-thread "now" does not
  // exist); stage times are cumulative FLUSHER-clock ns per pipeline stage,
  // so their ratios expose where drain time goes.
  struct Health {
    uint64_t pending_entries = 0;   // staged + in-flight (unpublished)
    uint64_t staged_entries = 0;    // staged only (not yet taken)
    uint64_t pending_bytes = 0;     // logical payload (key+value per record)
    uint64_t oldest_staged_age_ns = 0;
    bool in_flight = false;
    uint64_t batches_flushed = 0;
    uint64_t records_published = 0;
    uint64_t deferred_errors = 0;   // failed publishes since construction
    uint64_t stage_coalesce_ns = 0;
    uint64_t stage_publish_ns = 0;
    uint64_t stage_refill_ns = 0;
  };
  Health health() const;

  // Registers pipeline gauges under `prefix` (e.g. "wb"). The group must
  // not outlive the engine.
  void AddGauges(GaugeGroup* group, const std::string& prefix);
  // The flusher's client (its stats carry flush_stages; its clock carries
  // the publish latency). Safe to read after a FlushBarrier.
  FarClient* flusher_client() { return publisher_->client(); }

 private:
  struct Rec {
    uint64_t value = 0;
    bool tombstone = false;
    uint64_t seq = 0;
    // App-clock time the currently staged record FIRST entered the table
    // (preserved across combine overwrites — age measures how long the key
    // has been waiting, not how recently it was rewritten).
    uint64_t enqueue_ns = 0;
  };
  struct FifoRec {
    uint64_t key = 0;
    uint64_t value = 0;
    bool tombstone = false;
    uint64_t seq = 0;
    uint64_t enqueue_ns = 0;
  };

  void Enqueue(uint64_t key, uint64_t value, bool tombstone);
  size_t StagedLocked() const {
    return options_.combine ? order_.size() : fifo_.size();
  }
  Batch TakeBatchLocked(std::vector<uint64_t>* seqs);
  void FlusherMain();

  FarClient* app_client_;
  std::unique_ptr<Publisher> publisher_;
  WriteBehindOptions options_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // app -> flusher (batch ready/stop)
  std::condition_variable drain_cv_;  // flusher -> app (space/drained)
  // Combine mode: at most one staged record per key, FIFO by first
  // enqueue; the record body lives in latest_.
  std::deque<uint64_t> order_;
  std::unordered_set<uint64_t> staged_keys_;
  // FIFO mode: every record staged in program order.
  std::deque<FifoRec> fifo_;
  // Read-your-writes view: key -> newest unpublished record (staged OR
  // in-flight). Erased after publish iff the sequence still matches (a
  // newer enqueue keeps the entry alive).
  std::unordered_map<uint64_t, Rec> latest_;
  uint64_t next_seq_ = 1;
  size_t barrier_waiters_ = 0;
  bool in_flight_ = false;
  bool stop_ = false;
  Status first_error_;
  // Health counters (under mu_). last_app_now_ns_ is the newest app-clock
  // timestamp observed at Enqueue — the reference point for staged ages.
  uint64_t last_app_now_ns_ = 0;
  uint64_t batches_flushed_ = 0;
  uint64_t records_published_ = 0;
  uint64_t deferred_errors_ = 0;
  uint64_t stage_coalesce_ns_ = 0;
  uint64_t stage_publish_ns_ = 0;
  uint64_t stage_refill_ns_ = 0;
  std::atomic<uint64_t> unpublished_{0};
  std::thread flusher_;
};

}  // namespace fmds

#endif  // FMDS_SRC_CORE_WRITE_BEHIND_H_
