// ShardedMap (§7 scale-out): hash-partitions a uint64 key space over N
// HT-tree shards, each pinned to one memory node. The paper's scale-out
// argument is that far memory's capacity story only materializes when a
// structure spans nodes — but naive spanning turns every batch into
// sequential per-node conversations. ShardedMap keeps each shard's storage
// (trie, tables, items) on a single node via the allocator's OnNode
// placement, so:
//   - point ops touch exactly one node (same cost as an unsharded map);
//   - MultiGet/MultiPut run one resumable wave engine per shard and flush
//     ALL shards' posted ops through a single doorbell. The fabric issues
//     the per-node sub-batches concurrently, so the simulated wait is the
//     max over nodes, not the sum (ClientStats.fanout_batches /
//     cross_node_rtts_saved account the overlap).
//
// Routing hash: shards are chosen by a salted re-mix of the key,
// decorrelated from the HT-tree's own Mix64(key) — the tree uses the hash's
// high bits for trie descent and low bits for bucket choice, so routing by
// the same hash would confine each shard's keys to a residue class of its
// buckets (with power-of-two shard counts, 1/N of every table would be
// populated N times as densely).
//
// Far layout (the "directory"):
//   word 0    num_shards
//   word 1+i  shard i's HT-tree header address
#ifndef FMDS_SRC_CORE_SHARDED_MAP_H_
#define FMDS_SRC_CORE_SHARDED_MAP_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/core/ht_tree.h"

namespace fmds {

class ShardedMap : public FarMap {
 public:
  struct Options {
    uint32_t num_shards = 8;
    // Per-shard HT-tree knobs. `shard.placement` is overridden per shard
    // when pin_shards is set (the normal configuration). `shard.cache`
    // creates one NearCache *per shard* (the budget is per shard, not
    // global): with pinning, every shard's coherence subscriptions live on
    // that shard's own memory node, so invalidation traffic stays
    // node-local instead of fanning out across the fabric.
    HtTree::Options shard;
    // Pin shard i's storage to node i % num_nodes. Turning this off leaves
    // placement round-robin per allocation — a measurable anti-pattern
    // (bench_e11): batches then touch every node per shard.
    bool pin_shards = true;
    // DEPRECATED flat alias for `shard.cache.global_budget_bytes` (the
    // composable CacheOptions block, src/core/map_options.h). The
    // defaulting rule: a non-zero block value wins; otherwise this field
    // seeds it, so old code compiles and behaves unchanged. Fleet-wide
    // NearCache budget: one shared CacheBudget caps the summed bytes of
    // ALL shards' rings (near_cache_bytes() == the shared total), so the
    // client's footprint stays bounded as shard counts grow instead of
    // multiplying per-shard budgets. Overrides shard.cache.budget_bytes
    // when non-zero; shard.cache's watermark fields configure the shared
    // watermarks (background eviction drains whichever shards hold bytes).
    uint64_t global_cache_budget_bytes = 0;
    // Route MultiPut through the transaction chainlet builder: all keys
    // publish atomically (one prepare/validate/commit round) instead of
    // the independent per-key waves. Ignored while write-behind is on
    // (staged writes publish in flusher batches instead).
    bool atomic_multiput = false;
  };

  static Result<ShardedMap> Create(FarClient* client, FarAllocator* alloc,
                                   Options options);
  // Binds to an existing directory. `options.num_shards` is ignored (the
  // directory knows); the rest configures the per-shard handles.
  static Result<ShardedMap> Attach(FarClient* client, FarAllocator* alloc,
                                   FarAddr directory, Options options);
  static Result<ShardedMap> Attach(FarClient* client, FarAllocator* alloc,
                                   FarAddr directory);

  FarAddr directory() const { return directory_; }
  uint32_t num_shards() const { return static_cast<uint32_t>(shards_.size()); }

  // Routing: which shard (and which memory node, under pinning) owns `key`.
  uint32_t ShardOf(uint64_t key) const;
  NodeId NodeOf(uint64_t key) const;

  // Point operations: route + delegate; exactly one shard (one node) is
  // touched, so costs match an unsharded HT-tree.
  Result<uint64_t> Get(uint64_t key) override;
  Status Put(uint64_t key, uint64_t value) override;
  Status Remove(uint64_t key) override;

  // Batched operations: one wave engine per shard, one doorbell per wave
  // across ALL shards (the §7 fan-out). Per-key semantics match the
  // per-shard HtTree::MultiGet/MultiPut. Requires no other async ops
  // pending on the client.
  std::vector<Result<uint64_t>> MultiGet(
      std::span<const uint64_t> keys) override;
  Status MultiPut(std::span<const uint64_t> keys,
                  std::span<const uint64_t> values) override;

  // Batched mixed store/remove across shards (the write-behind flusher's
  // publish primitive); see HtTree::MultiWrite. `outcomes`, when non-null,
  // is filled in input order.
  Status MultiWrite(std::span<const uint64_t> keys,
                    std::span<const uint64_t> values,
                    std::span<const uint8_t> tombstones,
                    std::vector<HtTree::WriteOutcome>* outcomes = nullptr);

  // Atomic MultiPut via the transaction engine: every key (any shard)
  // publishes in one ≤3-doorbell prepare/validate/commit, all-or-nothing
  // with respect to other transactions. Options::atomic_multiput routes
  // MultiPut here.
  Status MultiPutAtomic(std::span<const uint64_t> keys,
                        std::span<const uint64_t> values);

  // ---- Write-behind mode (DESIGN.md §11) ----
  // One fleet-wide engine: Put/Remove/MultiPut stage into a shared pending
  // table (same-key combining) and the flusher publishes through its own
  // Attach'd ShardedMap handle, so batches still fan out across shards and
  // nodes in single doorbell waves. Do not also enable per-shard
  // write-behind on this map's HtTrees.
  Status EnableWriteBehind(const WriteBehindOptions& wb_options);
  // No-arg overload: enables with the stored shard.write_behind block (the
  // map_options.h defaulting rule — an explicit argument wins).
  Status EnableWriteBehind() {
    return EnableWriteBehind(options_.shard.write_behind);
  }
  // Blocks until every staged write (map-level and any per-shard engine)
  // is published; surfaces the first asynchronous error.
  Status FlushBarrier() override;
  // Cheap per-operation drain hook (Txn entry points): barriers only when
  // something is actually pending.
  Status DrainWriteBehind();
  WriteBehindEngine* write_behind() { return wb_.get(); }

  HtTree& shard(uint32_t i) { return shards_[i]; }

  // ---- Adaptive routing (DESIGN.md §13) ----
  // Enables per-op one-sided vs RPC routing on every shard. One decider
  // serves the fleet, but its state is keyed by (op, node), so shards
  // pinned to different nodes are priced independently — a busy node's
  // shard can route one-sided while an idle node's shard ships RPCs, in
  // the same MultiGet.
  Status EnableRouting(RouteDecider* decider, RemoteMapPath* remote);

  // Sum of the shards' per-handle counters.
  HtTree::OpStats op_stats() const;
  // FarMap surface: portable counters and the structure name.
  FarMapStats map_stats() const override {
    const HtTree::OpStats s = op_stats();
    return {s.gets,       s.puts,        s.removes, s.chain_hops,
            s.stale_refreshes, s.cas_retries, s.splits};
  }
  const char* kind() const override { return "sharded_map"; }
  uint64_t cache_bytes() const;
  // Aggregated per-shard NearCache counters (zeros when caching is off).
  NearCacheStats near_cache_stats() const;
  // Total bytes resident across the shards' NearCaches (== the shared
  // budget's used total when global_cache_budget_bytes is set).
  uint64_t near_cache_bytes() const;
  // The fleet-wide budget, or null when per-shard budgets are in use.
  const std::shared_ptr<CacheBudget>& shared_cache_budget() const {
    return shared_budget_;
  }

 private:
  ShardedMap(FarClient* client, FarAddr directory)
      : client_(client), directory_(directory) {}

  // Per-shard HtTree options for shard `i` under `options`; `budget` is
  // the fleet-wide CacheBudget (null for per-shard budgets).
  static HtTree::Options ShardOptions(const Options& options, uint32_t i,
                                      uint32_t num_nodes,
                                      const std::shared_ptr<CacheBudget>& budget);

  FarClient* client_;
  FarAllocator* alloc_ = nullptr;
  FarAddr directory_;
  Options options_;
  std::shared_ptr<CacheBudget> shared_budget_;
  std::vector<HtTree> shards_;
  // Fleet-wide write-behind engine (null when off). Declared after
  // shards_: the flusher refills the shards' caches, so the engine must
  // stop before they destruct.
  std::unique_ptr<WriteBehindEngine> wb_;
};

}  // namespace fmds

#endif  // FMDS_SRC_CORE_SHARDED_MAP_H_
