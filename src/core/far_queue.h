// Far-memory MPMC queue (§5.3).
//
// "We address this problem by using fetch-and-add-indirect and
//  store-and-add-indirect (faai, saai). These instructions permit a client to
//  do two things atomically: (1) update the head or tail pointers and
//  (2) extract or insert the required item. ... with one far access in the
//  common fast-path case."
//
// Far layout (one contiguous block):
//   header: head pointer word, tail pointer word, lock, geometry
//   ring:   `capacity` word slots
//   slack:  max_clients + 1 extra slots past the ring (§5.3's slack region)
//
// Fast paths (ONE far access each):
//   Enqueue: saai(tail, +8, v) — bump tail, store v at the old tail slot.
//   Dequeue: faai(head, +8)    — bump head, load the old head slot.
// The old-pointer value both return (see DESIGN.md §1) tells the client —
// locally, off the critical path — whether it landed in the slack region.
//
// Slow paths (far mutex + exact pointer reads, all accesses counted):
//   * wrap-around: an op that lands in the slack region fixes the queue up —
//     tail landers copy slack slots back to the ring start and subtract one
//     lap from the pointer; head landers consume the wrapped ring slot;
//   * empty race: a dequeue that reads an unwritten slot (0) either spins
//     for the in-flight producer assigned to that exact slot or returns the
//     reservation and reports empty;
//   * occupancy: clients keep *background-refreshed* estimates of the remote
//     head/tail ("second logical slack", §5.3) and fall back to synchronous
//     pointer reads only when the estimated margin gets thin.
//
// Values are non-zero uint64 words (0 marks an empty slot); real deployments
// store far pointers, which are non-zero by construction.
#ifndef FMDS_SRC_CORE_FAR_QUEUE_H_
#define FMDS_SRC_CORE_FAR_QUEUE_H_

#include <cstdint>
#include <memory>

#include "src/alloc/far_allocator.h"
#include "src/core/far_mutex.h"
#include "src/fabric/far_client.h"

namespace fmds {

class FarQueue {
 public:
  struct Options {
    uint64_t capacity = 1024;    // ring slots
    uint64_t max_clients = 16;   // n: bound on concurrent clients
    // Refresh the head/tail estimates (background reads) every this many
    // fast-path ops. Ignored under watch_estimates.
    uint64_t refresh_every = 4;
    // Watch the head/tail header words via read-and-arm subscriptions
    // instead of periodic background reads: estimates update from pushed
    // notifications drained at op entry, so an IDLE consumer's poll
    // (estimate says empty) costs ZERO far accesses — the ReadWord
    // empty-check and the periodic refresh reads both disappear. On a
    // channel loss warning the estimates resynchronize with one pair of
    // background reads.
    bool watch_estimates = false;
  };

  struct OpStats {
    uint64_t fast_enqueues = 0;
    uint64_t fast_dequeues = 0;
    uint64_t slow_enqueues = 0;  // slack landings + occupancy fallbacks
    uint64_t slow_dequeues = 0;
    uint64_t wraps = 0;          // lap fixups this handle performed
    uint64_t empty_races = 0;    // dequeues that hit an unwritten slot
  };

  // Creates the queue in far memory; the handle is bound to `client`.
  static Result<FarQueue> Create(FarClient* client, FarAllocator* alloc,
                                 Options options);
  static Result<FarQueue> Create(FarClient* client, FarAllocator* alloc);
  // Binds to an existing queue (reads the geometry header). The Options
  // overload applies this handle's estimate knobs (refresh_every /
  // watch_estimates); geometry fields are ignored — the directory knows.
  static Result<FarQueue> Attach(FarClient* client, FarAddr header);
  static Result<FarQueue> Attach(FarClient* client, FarAddr header,
                                 Options options);

  FarAddr header() const { return header_; }
  uint64_t capacity() const { return capacity_; }

  // Adds `value` (non-zero). kResourceExhausted when (conservatively) full.
  Status Enqueue(uint64_t value);
  // Removes the oldest value. kNotFound when (conservatively) empty.
  Result<uint64_t> Dequeue();

  // Exact occupancy via synchronous pointer reads (two far accesses) —
  // a deliberate slow-path helper for draining/tests.
  Result<uint64_t> SizeSlow();

  const OpStats& op_stats() const { return op_stats_; }
  FarClient* client() { return client_; }

 private:
  // Header words.
  static constexpr uint64_t kHdrHead = 0;
  static constexpr uint64_t kHdrTail = 8;
  static constexpr uint64_t kHdrLock = 16;
  static constexpr uint64_t kHdrRingBase = 24;
  static constexpr uint64_t kHdrCapacity = 32;
  static constexpr uint64_t kHdrMaxClients = 40;
  static constexpr uint64_t kHeaderBytes = 64;

  FarQueue(FarClient* client, FarAddr header);

  FarAddr head_addr() const { return header_ + kHdrHead; }
  FarAddr tail_addr() const { return header_ + kHdrTail; }
  FarAddr ring_end() const { return ring_base_ + capacity_ * kWordSize; }
  FarAddr slack_end() const {
    return ring_end() + (max_clients_ + 1) * kWordSize;
  }

  // Background refresh of the remote pointer estimates.
  Status MaybeRefreshEstimates();

  // Pushed estimates (Options::watch_estimates): one sink watching the
  // head and tail header words. Heap-owned because the pointer registered
  // with FarClient::Subscribe must stay stable across FarQueue moves.
  struct EstimateWatch : NotificationSink {
    SubId head_sub = kInvalidSubId;
    SubId tail_sub = kInvalidSubId;
    uint64_t head = 0;  // latest pushed pointer values (absolute addresses)
    uint64_t tail = 0;
    bool loss = false;  // channel overflowed; values untrustworthy
    void OnNotify(const NotifyEvent& event) override;
  };
  Status EnableWatch();

  // Slack-landing fixups (hold the queue lock).
  Status FixupTailLanding(FarAddr landed, uint64_t value);
  Result<uint64_t> FixupHeadLanding(FarAddr landed, uint64_t faai_value);

  FarClient* client_;
  FarAddr header_;
  FarAddr ring_base_ = 0;
  uint64_t capacity_ = 0;
  uint64_t max_clients_ = 0;
  uint64_t refresh_every_ = 4;
  FarMutex lock_ = FarMutex::Attach(kNullFarAddr);

  // Conservative estimates of the remote pointers (absolute addresses).
  uint64_t est_head_ = 0;
  uint64_t est_tail_ = 0;
  uint64_t ops_since_refresh_ = 0;
  std::unique_ptr<EstimateWatch> watch_;

  OpStats op_stats_;
};

inline Result<FarQueue> FarQueue::Create(FarClient* client,
                                         FarAllocator* alloc) {
  return Create(client, alloc, Options{});
}

}  // namespace fmds

#endif  // FMDS_SRC_CORE_FAR_QUEUE_H_
