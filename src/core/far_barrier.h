// Far-memory barrier (§5.1): "Barriers use a far memory decreasing counter
// initialized to the number of participants. As each participant reaches the
// barrier, it uses an atomic decrement... Equality notifications against 0
// (notifye) indicate when all participants complete the barrier."
//
// This implementation is reusable across rounds: alongside the count word it
// keeps a generation word. The last arriver of a round resets the count and
// bumps the generation; waiters subscribe notifye(generation == my_round).
// Layout: [0] count, [8] generation, [16] participants.
#ifndef FMDS_SRC_CORE_FAR_BARRIER_H_
#define FMDS_SRC_CORE_FAR_BARRIER_H_

#include "src/alloc/far_allocator.h"
#include "src/fabric/far_client.h"

namespace fmds {

class FarBarrier {
 public:
  static Result<FarBarrier> Create(FarClient& client, FarAllocator& alloc,
                                   uint64_t participants);

  // Attaching reads the participant count (one far access).
  static Result<FarBarrier> Attach(FarClient& client, FarAddr base);

  FarAddr base() const { return base_; }
  uint64_t participants() const { return participants_; }

  // Blocks (bounded) until all participants of the current round arrive.
  // Each handle tracks its own round count locally, so repeated Arrive()
  // calls implement successive barrier rounds.
  Status Arrive(FarClient& client, uint64_t timeout_ms = 5000);

 private:
  FarBarrier(FarAddr base, uint64_t participants)
      : base_(base), participants_(participants) {}

  FarAddr count_addr() const { return base_; }
  FarAddr gen_addr() const { return base_ + kWordSize; }
  FarAddr participants_addr() const { return base_ + 2 * kWordSize; }

  FarAddr base_;
  uint64_t participants_;
  uint64_t local_round_ = 0;  // rounds this handle has completed
};

}  // namespace fmds

#endif  // FMDS_SRC_CORE_FAR_BARRIER_H_
