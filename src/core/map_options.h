// Consolidated map option blocks, shared by HtTree and ShardedMap.
//
// Every far map used to grow its own flat knobs for the same three
// concerns — near caching, write-behind staging, and adaptive routing.
// These blocks make the concerns composable: HtTree::Options and
// ShardedMap::Options embed the SAME types, so harness/bench code can build
// one {cache, write_behind, route} configuration and drop it into either
// map.
//
// THE defaulting rule (there is exactly one, applied uniformly): a
// non-default value in the composable block wins; when the block is left at
// its default, the legacy flat field (kept as a deprecated alias) seeds it.
// Concretely:
//   - ShardedMap fleet cache budget: `shard.cache.global_budget_bytes` wins
//     over the deprecated flat `Options::global_cache_budget_bytes`.
//   - Write-behind: an explicit EnableWriteBehind(options) argument wins
//     over the stored `Options::write_behind` block (used by the no-arg
//     overload).
// Old code that sets only the flat fields compiles and behaves unchanged.
#ifndef FMDS_SRC_CORE_MAP_OPTIONS_H_
#define FMDS_SRC_CORE_MAP_OPTIONS_H_

#include <cstdint>

#include "src/cache/near_cache.h"
#include "src/core/dataplane.h"

namespace fmds {

// NearCacheOptions plus the fleet-wide concerns a multi-cache map owns.
// Inherits so every per-cache knob keeps its name (`cache.budget_bytes`,
// `cache.admit_after`, ...) and whole-struct assignment from a bare
// NearCacheOptions keeps compiling via the implicit adopting constructor.
struct CacheOptions : NearCacheOptions {
  CacheOptions() = default;
  // Implicit: legacy `options.cache = NearCacheOptions{...}` still works.
  CacheOptions(const NearCacheOptions& base) : NearCacheOptions(base) {}

  // Fleet-wide budget shared by sibling caches (ShardedMap: one shared
  // CacheBudget caps the summed bytes of ALL shards' rings). 0 keeps
  // per-cache budgets. Maps owning a single cache (HtTree) ignore it.
  uint64_t global_budget_bytes = 0;
};

// Adaptive one-sided vs RPC dataplane (DESIGN.md §13) as a configuration
// block: both pointers must outlive the map. When enabled() at
// Create/Attach, the map arms routing immediately — equivalent to calling
// EnableRouting() on the fresh handle.
struct RouteOptions {
  RouteDecider* decider = nullptr;
  RemoteMapPath* remote = nullptr;
  bool enabled() const { return decider != nullptr && remote != nullptr; }
};

}  // namespace fmds

#endif  // FMDS_SRC_CORE_MAP_OPTIONS_H_
