// HT-tree (§5.2): the paper's map for far memory — "a tree where each leaf
// node stores base pointers of hash tables. Clients cache the entire tree,
// but not the hash tables."
//
// Far layout
//   map header   root trie pointer, splits counter, retired sentinel, config
//   trie nodes   32 B; internal {left, right} or leaf {table, version}
//   hash table   header (version, lock, counts) + bucket array of item
//                pointers; every table owns an "empty" sentinel item
//   items        32 B, immutable once linked: {key, value, meta, next}
//
// Access costs (the paper's claims, reproduced by bench_e4):
//   lookup, fresh cache: descend the *cached* trie (near accesses), then ONE
//     far access — load0 on the bucket follows the item pointer and returns
//     the item in the same round trip. Empty buckets hold the table's
//     sentinel item, whose embedded version makes even negative lookups
//     verifiable in one access.
//   store, fresh cache: TWO far accesses — write the new item, then CAS the
//     bucket head. The CAS doubles as the version check: its expected value
//     (cached head or sentinel) is only correct for the current table
//     version; a retired table's buckets never match.
//
// Concurrency protocol: every mutation is an insert-at-head published by a
// single CAS on the bucket word (updates shadow older items; removals insert
// a tombstone). A split freezes the table by CASing every bucket to the
// map-wide retired sentinel — after that no mutation can land in the old
// table — then rewrites the frozen chains (dropping shadowed items and
// tombstones: splits double as compaction) into two fresh tables and
// republishes the trie via CAS on the parent pointer. Clients with stale
// caches observe the retired sentinel (or a version mismatch) in their one
// far access and refresh their cached trie.
#ifndef FMDS_SRC_CORE_HT_TREE_H_
#define FMDS_SRC_CORE_HT_TREE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/alloc/far_allocator.h"
#include "src/cache/clock_ring.h"
#include "src/cache/near_cache.h"
#include "src/common/hash.h"
#include "src/core/dataplane.h"
#include "src/core/far_map.h"
#include "src/core/map_options.h"
#include "src/core/write_behind.h"
#include "src/fabric/far_client.h"

namespace fmds {

class HtTree : public FarMap {
 public:
  struct Options {
    uint64_t buckets_per_table = 1024;
    // Split a table once a Get observes a chain longer than this, or local
    // collision estimates exceed the table load factor.
    uint64_t max_chain = 6;
    // Pre-split the key space into 2^initial_depth tables at Create().
    uint32_t initial_depth = 0;
    // Items a client's slab pre-allocates per far allocation (item
    // allocation itself then costs no far access).
    uint64_t arena_batch = 4096;
    // Ablation knobs (bench_a11): turn off the proposed hardware
    // (load0 merging the bucket dereference with the item read) and/or the
    // client-side bucket-head hint cache, to isolate their contributions.
    bool use_indirect = true;
    bool use_head_hints = true;
    // Standing placement for every far allocation this map makes (header,
    // trie nodes, tables, item slabs). ShardedMap pins each shard's
    // storage to one memory node with this (§7 scale-out), keeping a
    // shard's indirections local and its doorbell traffic single-node.
    AllocHint placement = AllocHint::Any();
    // NearCache of bucket heads (budget_bytes = 0 keeps it off): a hit
    // serves the whole lookup from near memory — zero far accesses —
    // with coherence via per-bucket write notifications (DESIGN.md §9).
    // The composable block (src/core/map_options.h); assigning a bare
    // NearCacheOptions still compiles. HtTree ignores the fleet-wide
    // global_budget_bytes field (single cache).
    CacheOptions cache;
    // Stored write-behind defaults: the no-arg EnableWriteBehind() overload
    // enables the engine with this block. The defaulting rule
    // (map_options.h): an explicit EnableWriteBehind(options) argument wins.
    WriteBehindOptions write_behind;
    // Adaptive dataplane block: when enabled() (both pointers set),
    // Create/Attach arm routing on the fresh handle — equivalent to
    // calling EnableRouting() immediately after.
    RouteOptions route;
  };

  // Per-handle counters for the experiments.
  struct OpStats {
    uint64_t gets = 0;
    uint64_t puts = 0;
    uint64_t removes = 0;
    uint64_t chain_hops = 0;       // extra far accesses walking chains
    uint64_t stale_refreshes = 0;  // cache refreshes triggered by staleness
    uint64_t cas_retries = 0;      // bucket CAS mispredictions
    uint64_t splits = 0;           // splits this handle performed
  };

  // Creates a new map in far memory and returns a handle bound to `client`.
  static Result<HtTree> Create(FarClient* client, FarAllocator* alloc,
                               Options options);
  static Result<HtTree> Create(FarClient* client, FarAllocator* alloc);

  // Binds to an existing map; performs a full cache refresh. The Options
  // overload carries client-local knobs (placement, arena size, ablations);
  // the far-resident geometry always comes from the header.
  static Result<HtTree> Attach(FarClient* client, FarAllocator* alloc,
                               FarAddr header);
  static Result<HtTree> Attach(FarClient* client, FarAllocator* alloc,
                               FarAddr header, Options options);

  FarAddr header() const { return header_; }

  // Point operations. Get returns kNotFound for absent/tombstoned keys.
  Result<uint64_t> Get(uint64_t key) override;
  Status Put(uint64_t key, uint64_t value) override;
  Status Remove(uint64_t key) override;

  // Batched multi-key lookup over the async pipeline: every key's bucket
  // probe rides one doorbell (one client round trip for the whole batch
  // instead of one per key), and chain continuations proceed in batched
  // waves. Per-key semantics match Get exactly; keys whose cached view turns
  // out stale fall back to the synchronous path. Unlike Get this never
  // triggers proactive splits (it is a read-only fast path). Requires no
  // other async ops pending on the client.
  std::vector<Result<uint64_t>> MultiGet(
      std::span<const uint64_t> keys) override;

  // Batched multi-key store: each key's item-body write and bucket CAS ride
  // one shared doorbell (k stores ≈ 1 waited round trip instead of 2 each).
  // Keys whose CAS mispredicts (stale cache, same-bucket collisions inside
  // the batch, concurrent writers) fall back to the synchronous Put, so
  // per-key semantics match Put; duplicate keys in one batch resolve in
  // unspecified relative order. The write→CAS ordering a doorbell
  // guarantees holds per node, so a map whose storage spans nodes relies
  // on the simulator's in-order execution — pin placement (ShardedMap
  // does) for hardware-faithful batching. Requires no other async ops
  // pending on the client. Returns the first per-key error, if any.
  Status MultiPut(std::span<const uint64_t> keys,
                  std::span<const uint64_t> values) override;

  // Per-key publish location from MultiWrite, for the write-behind
  // flusher's writer-side cache refill. Only the batched fast path is
  // refillable: a fallback's bucket head is unknown here, so the refill
  // stage invalidates instead and lets the bucket notification rule.
  struct WriteOutcome {
    FarAddr bucket = kNullFarAddr;
    FarAddr head = kNullFarAddr;  // new bucket head = the key's item slot
    bool refillable = false;
  };

  // Batched mixed store/remove: like MultiPut, but tombstones[i] != 0
  // selects a Remove for keys[i] (an empty span means all stores). When
  // `outcomes` is non-null it is resized to keys.size() and filled in
  // input order. Same batching contract and fallback semantics as
  // MultiPut; this is the write-behind flusher's publish primitive.
  Status MultiWrite(std::span<const uint64_t> keys,
                    std::span<const uint64_t> values,
                    std::span<const uint8_t> tombstones,
                    std::vector<WriteOutcome>* outcomes = nullptr);

  using CompletionMap =
      std::unordered_map<FarClient::OpId, FarClient::Completion>;
  static CompletionMap ToCompletionMap(std::vector<FarClient::Completion> done);

  // BatchGet / BatchPut — the resumable wave engines behind MultiGet /
  // MultiPut — are defined after the private layout types they capture; see
  // the bottom of the class.
  class BatchGet;
  class BatchPut;

  // Re-reads the trie from far memory (level-by-level rgather).
  Status RefreshCache();

  // Subscribes to the map's splits counter so structural changes invalidate
  // the cached trie via notifications instead of lazy version checks.
  Status EnableSplitNotifications(
      DeliveryPolicy policy = DeliveryPolicy::Reliable());
  // Polls the channel and refreshes the cache if a split fired. Returns
  // true if a refresh happened.
  Result<bool> PollSplitNotifications();

  // Local-cache footprint in bytes of the trie mirror — the cache the
  // structure *requires* for 1-far-access lookups (E4's currency).
  uint64_t cache_bytes() const;
  // Optional bucket-head hint cache (accelerates stores; bounded).
  uint64_t hint_cache_bytes() const;
  uint64_t cached_tables() const;

  const OpStats& op_stats() const { return op_stats_; }
  // FarMap surface: portable counters and the structure name.
  FarMapStats map_stats() const override {
    return {op_stats_.gets,          op_stats_.puts,
            op_stats_.removes,       op_stats_.chain_hops,
            op_stats_.stale_refreshes, op_stats_.cas_retries,
            op_stats_.splits};
  }
  const char* kind() const override { return "ht_tree"; }
  FarClient* client() { return client_; }
  // The bucket-head NearCache, or nullptr when Options::cache is off.
  NearCache* near_cache() { return near_cache_.get(); }
  const NearCache* near_cache() const { return near_cache_.get(); }

  // ---- Write-behind mode (DESIGN.md §11) ----
  // Switches Put/Remove to asynchronous enqueue-and-return: writes stage
  // in a pending table (same-key writes combined) and a dedicated flusher
  // thread publishes them in batched waves through its own Attach'd handle
  // and FarClient, so this thread never blocks on a publish round trip.
  // Get/MultiGet consult the pending table first (read-your-writes). Call
  // at most once, after the handle reached its final location. Handles
  // owned by a ShardedMap must not enable this directly — the map runs one
  // fleet-wide engine instead (ShardedMap::Options::write_behind).
  Status EnableWriteBehind(const WriteBehindOptions& wb_options);
  // No-arg overload: enables with the stored Options::write_behind block
  // (the map_options.h defaulting rule — an explicit argument wins).
  Status EnableWriteBehind() { return EnableWriteBehind(options_.write_behind); }
  // Blocks until every enqueued write is published and surfaces the first
  // asynchronous publish error. No-op when write-behind is off.
  Status FlushBarrier() override;
  // The engine, or nullptr when write-behind is off.
  WriteBehindEngine* write_behind() { return wb_.get(); }

  // ---- Adaptive hybrid dataplane (DESIGN.md §13) ----
  // Arms per-op routing between the one-sided path and shipping the op to
  // the near-memory RPC agent of this map's home node (where the header
  // lives — under ShardedMap pinning, the node owning the whole shard).
  // Decisions are made AFTER the near-only fast paths (pending-table,
  // NearCache) miss: near hits never reach either dataplane. Both pointers
  // must outlive the handle; pass them to every handle of one client so
  // estimates accumulate. Routed mutations stay cache-coherent: the RPC
  // agent publishes through the bucket-head CAS (watch notifications fire)
  // and this handle refills/invalidates its own NearCache from the returned
  // outcome, exactly like the one-sided exit paths.
  Status EnableRouting(RouteDecider* decider, RemoteMapPath* remote);
  RouteDecider* route_decider() { return route_decider_; }
  // The node owning this map's header (kObsNoNode before EnableRouting).
  NodeId home_node() const { return home_node_; }
  // Smoothed serial-RTT estimate for one lookup (1 + expected chain hops);
  // the complexity signal routed decisions price one-sided cost with.
  double lookup_units() const { return lookup_units_; }

  // Routed front end for batched lookups, shared by MultiGet and
  // ShardedMap's per-shard fan-out. No-op (returns false) when routing is
  // off. Otherwise resolves near-served keys (pending writes, NearCache),
  // and if the router ships the residue to the RPC agent — and the remote
  // call succeeds — fills `results` completely and returns true. A false
  // return leaves `results` untouched: every key still needs the one-sided
  // BatchGet engine (which re-consults the near paths at near-only cost),
  // and the caller must Observe() the engine's cost for the router.
  bool TryRouteMultiGet(std::span<const uint64_t> keys,
                        std::vector<Result<uint64_t>>* results);

  // Exposed for tests: forces a split of the table owning `key`.
  Status SplitTableOf(uint64_t key);

 private:
  // Txn (src/core/txn.*) builds multi-key optimistic commits out of this
  // map's private machinery: validated bucket words, item slots, the
  // pending lock-record protocol, and the per-shard NearCache.
  friend class Txn;
  friend class ShardedMap;
  // The near-memory RPC agent (src/route/rpc_dataplane.*) executes routed
  // ops through a server-side handle: TxnRead gives it clean validatable
  // views to return for caller-side cache admission.
  friend class MapRpcService;

  // ---- Far layout constants ----
  // Map header words.
  static constexpr uint64_t kHdrRoot = 0;        // trie root pointer
  static constexpr uint64_t kHdrSplits = 8;      // splits counter (notify)
  static constexpr uint64_t kHdrTableCount = 16;
  static constexpr uint64_t kHdrRetired = 24;    // retired sentinel item
  static constexpr uint64_t kHdrBuckets = 32;    // buckets per table
  static constexpr uint64_t kHdrMaxChain = 40;
  static constexpr uint64_t kHeaderBytes = 64;

  // Trie node words (32 B).
  static constexpr uint64_t kNodeMeta = 0;   // bit0 leaf, bits8.. depth
  static constexpr uint64_t kNodeLeft = 8;   // internal: left child
  static constexpr uint64_t kNodeRight = 16; // internal: right child
  static constexpr uint64_t kLeafTable = 8;  // leaf: table address
  static constexpr uint64_t kLeafVersion = 16;
  static constexpr uint64_t kNodeBytes = 32;

  // Table header words.
  static constexpr uint64_t kTabVersion = 0;
  static constexpr uint64_t kTabLock = 8;
  static constexpr uint64_t kTabCount = 16;
  static constexpr uint64_t kTabBuckets = 24;
  static constexpr uint64_t kTabSentinel = 32;
  static constexpr uint64_t kTabState = 40;  // 0 active, 1 retired
  static constexpr uint64_t kTableHeaderBytes = 48;

  // Item words (32 B).
  static constexpr uint64_t kItemKey = 0;
  static constexpr uint64_t kItemValue = 8;
  static constexpr uint64_t kItemMeta = 16;
  static constexpr uint64_t kItemNext = 24;
  static constexpr uint64_t kItemBytes = 32;

  // Item meta flags (meta low 32 bits = table version).
  static constexpr uint64_t kFlagSentinel = 1ull << 32;
  static constexpr uint64_t kFlagRetired = 1ull << 33;
  static constexpr uint64_t kFlagTombstone = 1ull << 34;
  // Transaction lock record (src/core/txn.*): a pending item sits at a
  // bucket head while a multi-key commit is in flight; its `next` is the
  // pre-transaction clean head. Invariants: pending items appear ONLY at
  // bucket heads, and only the owning transaction may change a pending
  // bucket's word (commit swings it to the new chain, rollback restores
  // `next`). Readers skip it (pre-transaction view); writers and splits
  // wait it out rather than CAS over it.
  static constexpr uint64_t kFlagPending = 1ull << 35;

  struct Item {
    uint64_t key;
    uint64_t value;
    uint64_t meta;
    FarAddr next;
  };
  static_assert(sizeof(Item) == kItemBytes);

  // ---- Client cache ----
  struct CachedNode {
    bool leaf = true;
    uint32_t depth = 0;
    FarAddr addr = kNullFarAddr;       // far trie node
    int32_t child[2] = {-1, -1};       // indices into nodes_ (internal)
    FarAddr table = kNullFarAddr;      // leaf payload
    uint64_t version = 0;
    FarAddr sentinel = kNullFarAddr;
  };

  HtTree(FarClient* client, FarAllocator* alloc, FarAddr header,
         Options options);

  // Builds {table header, buckets, sentinel} far objects for a fresh table;
  // all writes batched. Returns the table address.
  Result<FarAddr> BuildTable(uint64_t version,
                             const std::vector<std::vector<Item>>& chains);
  Result<FarAddr> BuildLeafNode(uint32_t depth, FarAddr table,
                                uint64_t version);

  // Allocates an item slot from the client slab (no far access).
  Result<FarAddr> AllocItemSlot();

  // Trie descent over the local cache; returns index into nodes_ of the
  // leaf covering `hash`. Accounts near accesses.
  int32_t DescendCached(uint64_t hash) const;

  // Replaces the cached subtree rooted where `hash` leads after detecting
  // staleness: walks the *far* trie along the hash path and splices.
  Status RefreshPath(uint64_t hash);
  // Reads the subtree under far node `addr` and appends it to the cache;
  // returns the local index of the subtree root.
  Result<int32_t> FetchSubtree(FarAddr addr);

  Status ReadItem(FarAddr addr, Item* out);

  // ---- Transaction read hook (used by Txn via friendship) ----
  // One validated read observation: the resolved value (or a definitive
  // miss) together with the bucket word it was resolved under. The word is
  // the txn's validation handle — every mutation of the bucket swings it to
  // a freshly allocated address that is never reused (arena slots are not
  // recycled; freed tables are quarantined), so word equality at commit
  // time proves the chain is unchanged since this read.
  struct TxnReadView {
    bool found = false;
    uint64_t value = 0;
    FarAddr bucket = kNullFarAddr;
    uint64_t head_word = 0;  // clean (non-pending) head observed
    uint64_t version = 0;    // table version of the view
    bool versioned = false;  // false when served from the NearCache (the
                             // cache stores words, not table versions)
  };
  // Reads `key` and returns a validatable view. Unlike Get, a miss is a
  // successful view (found = false) — negative reads participate in
  // validation too. Waits out pending bucket heads (bounded backoff) so the
  // recorded word is always clean; returns kAborted if a transaction holds
  // the bucket past the retry budget. `allow_cache` permits the zero-far-op
  // NearCache fast path (versioned = false); pass false when the caller
  // needs the table version (write intents building item images).
  Result<TxnReadView> TxnRead(uint64_t key, bool allow_cache);

  // ---- NearCache integration (key-addressed value entries) ----
  // Entries are keyed by the USER key and hold the resolved value (8 bytes),
  // watching the key's bucket word. That watch gives exact coherence: items
  // are immutable once reachable, so the value bound to a key can only
  // change through a bucket CAS (insert, tombstone, split freeze) — and
  // every bucket CAS publishes a notification on the watched word. A hit
  // therefore returns the value with ZERO far accesses and without even
  // descending the trie or walking the chain; trie staleness is irrelevant
  // on the hit path because the trie is never consulted.
  //
  // Routes pending invalidation notifications before an operation reads
  // the cache (free when the channel is empty).
  void DispatchCacheInvalidations() {
    if (near_cache_ != nullptr) {
      (void)client_->DispatchNotifications();
    }
  }
  // Offers a freshly resolved (version-checked) key -> value binding.
  // `head` is the bucket word observed by the resolving read (the
  // read-and-arm race check — see CacheAdmitValue in ht_tree.cc).
  void CacheAdmitValue(uint64_t key, uint64_t value, FarAddr bucket,
                       FarAddr head);
  // Probe; on hit fills *value and returns true.
  bool CacheLookupValue(uint64_t key, uint64_t* value);

  FarAddr BucketAddr(FarAddr table, uint64_t bucket) const {
    return table + kTableHeaderBytes + bucket * kWordSize;
  }
  // CAS-prediction hint for `bucket` (touching its CLOCK slot), or
  // `fallback` (the leaf's sentinel) when unhinted or hints are off.
  FarAddr HeadHint(FarAddr bucket, FarAddr fallback) {
    if (!options_.use_head_hints) {
      return fallback;
    }
    const size_t slot = head_hints_.Find(bucket);
    if (slot == ClockRing<FarAddr>::npos) {
      return fallback;
    }
    head_hints_.Touch(slot);
    return head_hints_.value(slot);
  }
  uint64_t BucketIndex(uint64_t hash) const {
    return hash % buckets_per_table_;
  }
  static uint32_t HashBit(uint64_t hash, uint32_t depth) {
    return static_cast<uint32_t>((hash >> (63 - depth)) & 1);
  }

  // The split slow path: freeze, rewrite, republish (see file comment).
  Status SplitLeaf(int32_t leaf_index, uint64_t hash);
  // Body executed while holding the table lock; never returns without the
  // caller releasing that lock.
  Status SplitLeafLocked(const CachedNode& leaf, uint64_t hash,
                         FarAddr* internal_out, bool* already_split);

  FarClient* client_;
  FarAllocator* alloc_;
  FarAddr header_;
  Options options_;
  uint64_t buckets_per_table_ = 0;
  FarAddr retired_sentinel_ = kNullFarAddr;

  std::vector<CachedNode> nodes_;  // nodes_[0] mirrors the root
  // Bucket-head hints: bucket addr -> last observed head item. Only an
  // optimization (mispredicted CAS retries fix them up). Bounded by the
  // same CLOCK ring NearCache uses, so a hot working set survives instead
  // of the old wholesale clear.
  static constexpr size_t kMaxHeadHints = 1 << 16;
  ClockRing<FarAddr> head_hints_{kMaxHeadHints};
  // Per-table local collision estimate driving proactive splits.
  std::unordered_map<FarAddr, uint64_t> collision_estimate_;
  // Bucket-head NearCache (null when Options::cache.budget_bytes == 0).
  // Heap-owned so the NotificationSink pointer registered with the client
  // stays stable across HtTree moves.
  std::unique_ptr<NearCache> near_cache_;

  // Client item slab.
  FarAddr arena_next_ = kNullFarAddr;
  uint64_t arena_left_ = 0;

  SubId split_sub_ = kInvalidSubId;
  OpStats op_stats_;

  // One-sided bodies of the routed point ops: everything after the
  // near-only fast paths (write-behind table, NearCache) and the routing
  // decision.
  Result<uint64_t> GetOneSided(uint64_t key);
  Status PutOneSided(uint64_t key, uint64_t value);
  Status RemoveOneSided(uint64_t key);

  // ---- Routing state (EnableRouting; DESIGN.md §13) ----
  RouteDecider* route_decider_ = nullptr;
  RemoteMapPath* remote_path_ = nullptr;
  NodeId home_node_ = kObsNoNode;
  // Smoothed complexity estimates in serial one-sided round trips per op:
  // lookups start at the head-hit cost (1), stores at item write + CAS (2).
  // Fed by the one-sided walks/retries AND by the RPC agent's chain-hop
  // feedback, so the signal stays fresh whichever path is preferred.
  double lookup_units_ = 1.0;
  double store_units_ = 2.0;
  static constexpr double kUnitsAlpha = 0.1;
  void NoteLookupUnits(double units) {
    lookup_units_ += kUnitsAlpha * (units - lookup_units_);
  }
  void NoteStoreUnits(double units) {
    store_units_ += kUnitsAlpha * (units - store_units_);
  }
  // Routed mutation exit: mirrors the one-sided success path's cache
  // maintenance (writer-side refill / tombstone invalidate) and head-hint
  // update from the agent's publish outcome.
  void ApplyRemoteWrite(uint64_t key, uint64_t value, bool tombstone,
                        const RemoteMapPath::WriteOutcome& outcome);

  // Write-behind engine (null when off). Declared after near_cache_: the
  // flusher's refill stage touches that cache, so the engine must stop
  // (members destroy in reverse order) before the cache goes away.
  std::unique_ptr<WriteBehindEngine> wb_;

 public:
  // Resumable engine behind MultiGet: PostWave() enqueues the next wave of
  // far ops without flushing, AbsorbWave() consumes their completions.
  // Routers (ShardedMap) run one engine per shard and flush ALL engines'
  // posted waves through a single doorbell, so sub-batches bound for
  // different memory nodes overlap (§7: simulated time = max over nodes).
  // Drive until PostWave() returns 0 for every engine, then Take().
  class BatchGet {
   public:
    BatchGet(HtTree* map, std::span<const uint64_t> keys);
    // Txn mode (the batched walk stage of Txn::MultiGet): skips the
    // pending-table and value-cache consults (the txn resolved those with
    // watch words before calling), treats pending heads as fallbacks
    // instead of resolving the pre-transaction view, and records a
    // validatable TxnReadView per resolved key — so a deep-chain read set
    // costs O(chain) doorbells total instead of O(keys × chain) sequential
    // round trips. Keys needing the sync path's backoff/refresh discipline
    // (pending or stale heads) are left at kFallback for the caller's
    // TxnRead; the caller reads views via txn_outcome()/txn_view() and
    // must NOT call Take().
    BatchGet(HtTree* map, std::span<const uint64_t> keys, bool txn_mode);
    enum class TxnOutcome : uint8_t { kFallback = 0, kView = 1, kError = 2 };
    TxnOutcome txn_outcome(size_t i) const {
      return static_cast<TxnOutcome>(txn_state_[i]);
    }
    const TxnReadView& txn_view(size_t i) const { return views_[i]; }
    Status txn_error(size_t i) const { return results_[i].status(); }
    // Posts this engine's next wave into the client's issue queue (no
    // fabric traffic yet); returns the number of ops posted.
    size_t PostWave();
    // Consumes the flushed wave's completions, keyed by op id.
    void AbsorbWave(const CompletionMap& done);
    // Resolves keys that fell back to the sync path (stale caches) and
    // returns per-key results in input order. Call once, at the end.
    std::vector<Result<uint64_t>> Take();

   private:
    enum class Stage : uint8_t { kProbe, kHead, kWalk, kStale, kDone };
    struct Probe {
      size_t idx = 0;  // index into keys/results
      uint64_t key = 0;
      uint64_t hash = 0;
      CachedNode leaf;
      FarAddr bucket = kNullFarAddr;
      FarAddr head = kNullFarAddr;
      Item item{};
      Stage stage = Stage::kProbe;
      FarClient::OpId op = 0;
      // Head was a transaction lock record: the walk resolves the
      // pre-transaction view, which must not feed hints or the cache.
      bool pending_seen = false;
    };
    // Chain-walk decision on a fresh item image: hit, definitive miss, or
    // continue walking next wave.
    void Classify(Probe& probe);

    HtTree* map_;
    std::vector<Probe> probes_;
    std::vector<Result<uint64_t>> results_;
    // Txn mode only: per-key outcome (TxnOutcome values) and resolved views.
    bool txn_mode_ = false;
    std::vector<uint8_t> txn_state_;
    std::vector<TxnReadView> views_;
  };

  // Resumable engine behind MultiPut (see BatchGet for the wave protocol
  // and the ShardedMap fan-out rationale).
  class BatchPut {
   public:
    BatchPut(HtTree* map, std::span<const uint64_t> keys,
             std::span<const uint64_t> values);
    // Mixed store/remove wave with optional per-key outcome capture (the
    // MultiWrite engine; tombstones may be empty, outcomes may be null).
    BatchPut(HtTree* map, std::span<const uint64_t> keys,
             std::span<const uint64_t> values,
             std::span<const uint8_t> tombstones,
             std::vector<WriteOutcome>* outcomes);
    size_t PostWave();
    void AbsorbWave(const CompletionMap& done);
    // Runs sync fallbacks (Put or Remove) and deferred splits; first error
    // wins.
    Status Take();

   private:
    // kInspect/kRelink are the wave-based CAS retry: a mispredicted op
    // reads the observed head (kInspect -> kInspectPosted), validates it
    // against the cached leaf version, then re-links and re-CASes in a
    // later wave (kRelink). Only pending locks, retired tables, and
    // exhausted retry budgets drop to the synchronous kFallback path, so
    // cross-handle collisions stay pipelined instead of re-serializing.
    enum class State : uint8_t {
      kInit,
      kPosted,
      kInspect,
      kInspectPosted,
      kRelink,
      kDone,
      kFallback
    };
    struct Op {
      uint64_t key = 0;
      uint64_t value = 0;
      uint64_t hash = 0;
      int32_t leaf_index = -1;
      CachedNode leaf;
      FarAddr slot = kNullFarAddr;
      FarAddr bucket = kNullFarAddr;
      FarAddr predicted = kNullFarAddr;
      // Bucket word a failed CAS observed; inspected before adoption.
      FarAddr observed = kNullFarAddr;
      Item head{};
      FarClient::OpId write_op = 0;
      FarClient::OpId cas_op = 0;
      FarClient::OpId read_op = 0;
      int attempts = 0;
      State state = State::kInit;
      bool tombstone = false;
      Status result;
    };
    HtTree* map_;
    std::vector<Op> ops_;
    // Input-order outcome sink (null unless the caller asked).
    std::vector<WriteOutcome>* outcomes_ = nullptr;
    // Tables that crossed the split threshold during the batch; split after
    // the waves so the batched fast path itself stays split-free.
    std::vector<std::pair<int32_t, uint64_t>> deferred_splits_;
  };
};

inline Result<HtTree> HtTree::Create(FarClient* client, FarAllocator* alloc) {
  return Create(client, alloc, Options{});
}

}  // namespace fmds

#endif  // FMDS_SRC_CORE_HT_TREE_H_
