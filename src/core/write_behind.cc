#include "src/core/write_behind.h"

#include <chrono>
#include <utility>

#include "src/obs/recorder.h"

namespace fmds {

WriteBehindEngine::WriteBehindEngine(FarClient* app_client,
                                     std::unique_ptr<Publisher> publisher,
                                     WriteBehindOptions options)
    : app_client_(app_client),
      publisher_(std::move(publisher)),
      options_(options) {
  if (options_.max_batch == 0) {
    options_.max_batch = 1;
  }
  if (options_.max_pending < options_.max_batch) {
    options_.max_pending = options_.max_batch;
  }
  flusher_ = std::thread([this] { FlusherMain(); });
}

WriteBehindEngine::~WriteBehindEngine() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    work_cv_.notify_all();
  }
  // FlusherMain drains every staged record before honoring stop_.
  flusher_.join();
}

void WriteBehindEngine::Put(uint64_t key, uint64_t value) {
  Enqueue(key, value, /*tombstone=*/false);
}

void WriteBehindEngine::Remove(uint64_t key) {
  Enqueue(key, /*value=*/0, /*tombstone=*/true);
}

void WriteBehindEngine::Enqueue(uint64_t key, uint64_t value, bool tombstone) {
  // App thread: the clock read anchors the staged record's age gauge.
  const uint64_t now_ns = app_client_->clock().now_ns();
  std::unique_lock<std::mutex> lock(mu_);
  if (StagedLocked() >= options_.max_pending) {
    work_cv_.notify_one();
    drain_cv_.wait(lock,
                   [&] { return StagedLocked() < options_.max_pending; });
  }
  last_app_now_ns_ = std::max(last_app_now_ns_, now_ns);
  const uint64_t seq = next_seq_++;
  if (options_.combine) {
    if (staged_keys_.insert(key).second) {
      order_.push_back(key);
      latest_[key] = Rec{value, tombstone, seq, now_ns};
      unpublished_.fetch_add(1, std::memory_order_release);
    } else {
      // Overwrote a staged record in place: the superseded write will never
      // cost a doorbell. Charged to the app client — combining happens on
      // the hot path. The staging timestamp survives the overwrite so the
      // age gauge reports how long the key has waited, not its last touch.
      Rec& rec = latest_[key];
      const uint64_t staged_ns = rec.enqueue_ns;
      rec = Rec{value, tombstone, seq, staged_ns};
      ++app_client_->mutable_stats().writes_combined;
    }
  } else {
    latest_[key] = Rec{value, tombstone, seq, now_ns};
    fifo_.push_back(FifoRec{key, value, tombstone, seq, now_ns});
    unpublished_.fetch_add(1, std::memory_order_release);
  }
  if (StagedLocked() >= options_.max_batch) {
    work_cv_.notify_one();
  }
}

bool WriteBehindEngine::Lookup(uint64_t key, uint64_t* value,
                               bool* tombstone) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = latest_.find(key);
  if (it == latest_.end()) {
    return false;
  }
  if (value != nullptr) {
    *value = it->second.value;
  }
  if (tombstone != nullptr) {
    *tombstone = it->second.tombstone;
  }
  return true;
}

Status WriteBehindEngine::FlushBarrier() {
  std::unique_lock<std::mutex> lock(mu_);
  ++barrier_waiters_;
  work_cv_.notify_all();
  drain_cv_.wait(lock, [&] { return StagedLocked() == 0 && !in_flight_; });
  --barrier_waiters_;
  Status s = first_error_;
  first_error_ = OkStatus();
  return s;
}

WriteBehindEngine::Batch WriteBehindEngine::TakeBatchLocked(
    std::vector<uint64_t>* seqs) {
  Batch batch;
  if (options_.combine) {
    const size_t n = std::min(order_.size(), options_.max_batch);
    batch.keys.reserve(n);
    batch.values.reserve(n);
    batch.tombstones.reserve(n);
    seqs->reserve(n);
    for (size_t i = 0; i < n; ++i) {
      const uint64_t key = order_.front();
      order_.pop_front();
      staged_keys_.erase(key);
      const Rec& rec = latest_[key];
      batch.keys.push_back(key);
      batch.values.push_back(rec.value);
      batch.tombstones.push_back(rec.tombstone ? 1 : 0);
      seqs->push_back(rec.seq);
    }
  } else {
    // Stop at the first same-key duplicate: two writes to one key must not
    // ride one MultiWrite, whose same-batch duplicate order is unspecified.
    std::unordered_set<uint64_t> in_batch;
    while (!fifo_.empty() && batch.keys.size() < options_.max_batch) {
      const FifoRec& rec = fifo_.front();
      if (!in_batch.insert(rec.key).second) {
        break;
      }
      batch.keys.push_back(rec.key);
      batch.values.push_back(rec.value);
      batch.tombstones.push_back(rec.tombstone ? 1 : 0);
      seqs->push_back(rec.seq);
      fifo_.pop_front();
    }
  }
  return batch;
}

void WriteBehindEngine::FlusherMain() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait_for(
        lock, std::chrono::microseconds(options_.flush_interval_us), [&] {
          return stop_ || StagedLocked() >= options_.max_batch ||
                 (barrier_waiters_ > 0 && StagedLocked() > 0);
        });
    if (StagedLocked() == 0) {
      if (stop_) {
        break;
      }
      drain_cv_.notify_all();
      continue;
    }
    std::vector<uint64_t> seqs;
    Batch batch = TakeBatchLocked(&seqs);
    in_flight_ = true;
    drain_cv_.notify_all();  // staging space freed
    lock.unlock();

    FarClient* fc = publisher_->client();
    const uint64_t stage0_ns = fc->clock().now_ns();
    {
      // Stage 1 (coalesce): the merge itself happened at enqueue time under
      // mu_; this accounts the near-side work of materializing the batch.
      ScopedOpLabel label(&fc->recorder(), "wb.coalesce");
      fc->AccountNear(batch.keys.size());
      ++fc->mutable_stats().flush_stages;
    }
    const uint64_t stage1_ns = fc->clock().now_ns();
    Status s;
    {
      // Stages 2+3 (CAS-issue + completion-absorb): one counter bump per
      // stage, one doorbell wave each inside the structure's batch engine.
      ScopedOpLabel label(&fc->recorder(), "wb.flush");
      fc->mutable_stats().flush_stages += 2;
      s = publisher_->Publish(batch);
    }
    const uint64_t stage2_ns = fc->clock().now_ns();
    if (s.ok()) {
      // Stage 4 (writer-side cache refill): push published values into the
      // app handle's near cache so the writer's next read hits near memory.
      ScopedOpLabel label(&fc->recorder(), "wb.flush");
      ++fc->mutable_stats().flush_stages;
      publisher_->RefillCaches(batch);
    }
    const uint64_t stage3_ns = fc->clock().now_ns();

    lock.lock();
    // Drain-lag attribution on the flusher's clock, per pipeline stage.
    stage_coalesce_ns_ += stage1_ns - stage0_ns;
    stage_publish_ns_ += stage2_ns - stage1_ns;
    stage_refill_ns_ += stage3_ns - stage2_ns;
    ++batches_flushed_;
    if (s.ok()) {
      records_published_ += batch.keys.size();
    } else {
      ++deferred_errors_;
    }
    // Erase AFTER publish (and refill): a pending-table miss therefore
    // implies the far write — and the writer-side cache update — already
    // happened, which is what makes the Get-side
    // pending -> dispatch -> cache consult order read-your-writes safe.
    for (size_t i = 0; i < batch.keys.size(); ++i) {
      auto it = latest_.find(batch.keys[i]);
      if (it != latest_.end() && it->second.seq == seqs[i]) {
        latest_.erase(it);
      }
    }
    unpublished_.fetch_sub(batch.keys.size(), std::memory_order_release);
    in_flight_ = false;
    if (!s.ok() && first_error_.ok()) {
      first_error_ = s;
    }
    drain_cv_.notify_all();
  }
  drain_cv_.notify_all();
}

WriteBehindEngine::Health WriteBehindEngine::health() const {
  std::lock_guard<std::mutex> lock(mu_);
  Health h;
  h.pending_entries = unpublished_.load(std::memory_order_acquire);
  h.staged_entries = StagedLocked();
  // Logical payload: 8-byte key + 8-byte value per unpublished record.
  h.pending_bytes = h.pending_entries * 16;
  uint64_t oldest_ns = 0;
  bool have_oldest = false;
  if (options_.combine) {
    if (!order_.empty()) {
      const auto it = latest_.find(order_.front());
      if (it != latest_.end()) {
        oldest_ns = it->second.enqueue_ns;
        have_oldest = true;
      }
    }
  } else if (!fifo_.empty()) {
    oldest_ns = fifo_.front().enqueue_ns;
    have_oldest = true;
  }
  if (have_oldest && last_app_now_ns_ > oldest_ns) {
    h.oldest_staged_age_ns = last_app_now_ns_ - oldest_ns;
  }
  h.in_flight = in_flight_;
  h.batches_flushed = batches_flushed_;
  h.records_published = records_published_;
  h.deferred_errors = deferred_errors_;
  h.stage_coalesce_ns = stage_coalesce_ns_;
  h.stage_publish_ns = stage_publish_ns_;
  h.stage_refill_ns = stage_refill_ns_;
  return h;
}

void WriteBehindEngine::AddGauges(GaugeGroup* group,
                                  const std::string& prefix) {
  group->Add(prefix + ".pending_entries", [this] {
    return static_cast<double>(health().pending_entries);
  });
  group->Add(prefix + ".pending_bytes", [this] {
    return static_cast<double>(health().pending_bytes);
  });
  group->Add(prefix + ".oldest_staged_age_ns", [this] {
    return static_cast<double>(health().oldest_staged_age_ns);
  });
  group->Add(prefix + ".in_flight",
             [this] { return health().in_flight ? 1.0 : 0.0; });
  group->Add(prefix + ".batches_flushed", [this] {
    return static_cast<double>(health().batches_flushed);
  });
  group->Add(prefix + ".records_published", [this] {
    return static_cast<double>(health().records_published);
  });
  group->Add(prefix + ".deferred_errors", [this] {
    return static_cast<double>(health().deferred_errors);
  });
  group->Add(prefix + ".stage_coalesce_ns", [this] {
    return static_cast<double>(health().stage_coalesce_ns);
  });
  group->Add(prefix + ".stage_publish_ns", [this] {
    return static_cast<double>(health().stage_publish_ns);
  });
  group->Add(prefix + ".stage_refill_ns", [this] {
    return static_cast<double>(health().stage_refill_ns);
  });
}

}  // namespace fmds
