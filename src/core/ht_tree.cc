#include "src/core/ht_tree.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <deque>
#include <thread>
#include <unordered_set>

#include "src/common/bytes.h"
#include "src/core/far_mutex.h"
#include "src/obs/recorder.h"

namespace fmds {

namespace {
constexpr uint32_t kMaxDepth = 40;
// Stale retries may have to outwait an in-flight split (buckets frozen,
// trie not yet republished), so the budget is generous and backs off.
constexpr int kMaxOpRetries = 4096;
// Wave-based CAS retries in BatchPut before dropping to the synchronous
// fallback. Each retry costs two extra waves (inspect, re-CAS), so a
// persistent loser hands off to the sync path's backoff fairly quickly.
constexpr int kMaxBatchCasRetries = 16;

uint64_t VersionOf(uint64_t meta) { return meta & 0xffffffffull; }

// Brief real-time backoff between staleness retries: an in-flight split
// holds the table frozen for many fabric round trips.
void StaleBackoff(int attempt) {
  if (attempt < 8) {
    std::this_thread::yield();
  } else {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}
}  // namespace

// Far trie node image.
struct NodeRec {
  uint64_t meta;
  uint64_t a;  // left / table
  uint64_t b;  // right / version
  uint64_t c;  // unused / sentinel

  bool leaf() const { return (meta & 1) != 0; }
  uint32_t depth() const { return static_cast<uint32_t>((meta >> 8) & 0xff); }
};

HtTree::HtTree(FarClient* client, FarAllocator* alloc, FarAddr header,
               Options options)
    : client_(client), alloc_(alloc), header_(header), options_(options) {
  if (options_.cache.budget_bytes > 0) {
    // Bucket words are true versions — every mutation swings them to a
    // freshly allocated, never-reused address — so the cache can use
    // word-versioned coherence: a writer refills its own entry at Put exit
    // and the echo of its CAS confirms instead of killing it.
    options_.cache.word_versioned = true;
    near_cache_ = std::make_unique<NearCache>(client_, options_.cache);
  }
}

bool HtTree::CacheLookupValue(uint64_t key, uint64_t* value) {
  if (near_cache_ == nullptr) {
    return false;
  }
  return near_cache_->Lookup(key, AsBytes(*value));
}

void HtTree::CacheAdmitValue(uint64_t key, uint64_t value, FarAddr bucket,
                             FarAddr head) {
  if (near_cache_ == nullptr) {
    return;
  }
  // Only version-checked, chain-resolved FOUND results reach this point:
  // caching an unvalidated read would make a stale value sticky (same
  // lesson as the BatchPut hint rule below). Absent keys and tombstones
  // are not cached — negative entries would pin budget for keys the
  // workload may never ask about again. `head` is the bucket word observed
  // by the read that resolved this value: Admit's read-and-arm subscribe
  // compares it against the word at arm time, so a bucket CAS racing the
  // window between our read and the subscription cannot pin a stale value
  // (every mutation swings the head to a freshly allocated item, so an
  // unchanged head word means an unchanged chain).
  near_cache_->Admit(key, AsConstBytes(value), bucket, kWordSize, head);
}

Result<HtTree> HtTree::Create(FarClient* client, FarAllocator* alloc,
                              Options options) {
  if (options.buckets_per_table == 0 || options.initial_depth > 20) {
    return Status(StatusCode::kInvalidArgument, "bad HtTree options");
  }
  FMDS_ASSIGN_OR_RETURN(FarAddr header,
                        alloc->Allocate(kHeaderBytes, options.placement));
  HtTree map(client, alloc, header, options);
  map.buckets_per_table_ = options.buckets_per_table;

  // Map-wide retired sentinel: the frozen-bucket marker.
  FMDS_ASSIGN_OR_RETURN(FarAddr retired,
                        alloc->Allocate(kItemBytes, options.placement));
  Item retired_item{0, 0, kFlagSentinel | kFlagRetired, kNullFarAddr};
  FMDS_RETURN_IF_ERROR(client->Write(retired, AsConstBytes(retired_item)));
  map.retired_sentinel_ = retired;

  // Initial trie: a perfect binary trie of depth initial_depth whose 2^d
  // leaves each own an empty table (version 1).
  const std::vector<std::vector<Item>> empty_chains(
      options.buckets_per_table);
  struct Pending {
    uint32_t depth;
    FarAddr addr;
  };
  // Build leaves first.
  std::vector<FarAddr> level;
  const uint32_t d = options.initial_depth;
  const uint64_t leaf_count = 1ull << d;
  for (uint64_t i = 0; i < leaf_count; ++i) {
    FMDS_ASSIGN_OR_RETURN(FarAddr table, map.BuildTable(1, empty_chains));
    FMDS_ASSIGN_OR_RETURN(FarAddr leaf, map.BuildLeafNode(d, table, 1));
    level.push_back(leaf);
  }
  // Internals bottom-up.
  for (uint32_t depth = d; depth > 0; --depth) {
    std::vector<FarAddr> next;
    for (size_t i = 0; i < level.size(); i += 2) {
      FMDS_ASSIGN_OR_RETURN(FarAddr node,
                            alloc->Allocate(kNodeBytes, options.placement));
      NodeRec rec{/*meta=*/static_cast<uint64_t>(depth - 1) << 8, level[i],
                  level[i + 1], 0};
      FMDS_RETURN_IF_ERROR(client->Write(node, AsConstBytes(rec)));
      next.push_back(node);
    }
    level = std::move(next);
  }

  uint64_t hdr[8] = {};
  hdr[kHdrRoot / 8] = level[0];
  hdr[kHdrSplits / 8] = 0;
  hdr[kHdrTableCount / 8] = leaf_count;
  hdr[kHdrRetired / 8] = retired;
  hdr[kHdrBuckets / 8] = options.buckets_per_table;
  hdr[kHdrMaxChain / 8] = options.max_chain;
  FMDS_RETURN_IF_ERROR(client->Write(
      header, std::as_bytes(std::span<const uint64_t>(hdr))));

  FMDS_RETURN_IF_ERROR(map.RefreshCache());
  if (options.route.enabled()) {
    FMDS_RETURN_IF_ERROR(
        map.EnableRouting(options.route.decider, options.route.remote));
  }
  return map;
}

Result<HtTree> HtTree::Attach(FarClient* client, FarAllocator* alloc,
                              FarAddr header) {
  return Attach(client, alloc, header, Options{});
}

Result<HtTree> HtTree::Attach(FarClient* client, FarAllocator* alloc,
                              FarAddr header, Options options) {
  HtTree map(client, alloc, header, options);
  FMDS_RETURN_IF_ERROR(map.RefreshCache());
  if (options.route.enabled()) {
    FMDS_RETURN_IF_ERROR(
        map.EnableRouting(options.route.decider, options.route.remote));
  }
  return map;
}

Result<FarAddr> HtTree::BuildTable(
    uint64_t version, const std::vector<std::vector<Item>>& chains) {
  const uint64_t nb = chains.size();
  const uint64_t table_bytes = kTableHeaderBytes + nb * kWordSize;
  FMDS_ASSIGN_OR_RETURN(FarAddr table,
                        alloc_->Allocate(table_bytes, options_.placement));
  FMDS_ASSIGN_OR_RETURN(FarAddr sentinel,
                        alloc_->Allocate(kItemBytes, options_.placement));
  Item sentinel_item{0, 0, kFlagSentinel | VersionOf(version), kNullFarAddr};
  FMDS_RETURN_IF_ERROR(client_->Write(sentinel, AsConstBytes(sentinel_item)));

  // Lay out all items in one contiguous block with pre-linked chains, so
  // the whole table body is written in two far accesses (items + header
  // and bucket array).
  uint64_t total_items = 0;
  for (const auto& chain : chains) {
    total_items += chain.size();
  }
  FarAddr items_base = kNullFarAddr;
  std::vector<Item> images;
  std::vector<uint64_t> heads(nb, sentinel);
  if (total_items > 0) {
    FMDS_ASSIGN_OR_RETURN(
        items_base,
        alloc_->Allocate(total_items * kItemBytes, options_.placement));
    images.reserve(total_items);
    uint64_t slot = 0;
    for (uint64_t b = 0; b < nb; ++b) {
      const auto& chain = chains[b];
      if (chain.empty()) {
        continue;
      }
      heads[b] = items_base + slot * kItemBytes;
      for (size_t i = 0; i < chain.size(); ++i) {
        Item img = chain[i];
        img.meta = VersionOf(version) | (img.meta & kFlagTombstone);
        img.next = (i + 1 < chain.size())
                       ? items_base + (slot + 1) * kItemBytes
                       : sentinel;
        images.push_back(img);
        ++slot;
      }
    }
    FMDS_RETURN_IF_ERROR(client_->Write(
        items_base, std::as_bytes(std::span<const Item>(images))));
  }

  std::vector<uint64_t> block(table_bytes / kWordSize, 0);
  block[kTabVersion / 8] = version;
  block[kTabLock / 8] = 0;
  block[kTabCount / 8] = total_items;
  block[kTabBuckets / 8] = nb;
  block[kTabSentinel / 8] = sentinel;
  block[kTabState / 8] = 0;
  for (uint64_t b = 0; b < nb; ++b) {
    block[kTableHeaderBytes / 8 + b] = heads[b];
  }
  FMDS_RETURN_IF_ERROR(client_->Write(
      table, std::as_bytes(std::span<const uint64_t>(block))));
  return table;
}

Result<FarAddr> HtTree::BuildLeafNode(uint32_t depth, FarAddr table,
                                      uint64_t version) {
  FMDS_ASSIGN_OR_RETURN(FarAddr node,
                        alloc_->Allocate(kNodeBytes, options_.placement));
  // Leaf nodes carry the table's sentinel so attaching clients learn it
  // without touching the table header.
  FMDS_ASSIGN_OR_RETURN(uint64_t sentinel,
                        client_->ReadWord(table + kTabSentinel));
  NodeRec rec{1 | (static_cast<uint64_t>(depth) << 8), table, version,
              sentinel};
  FMDS_RETURN_IF_ERROR(client_->Write(node, AsConstBytes(rec)));
  return node;
}

Result<FarAddr> HtTree::AllocItemSlot() {
  if (arena_left_ == 0) {
    FMDS_ASSIGN_OR_RETURN(
        arena_next_, alloc_->Allocate(options_.arena_batch * kItemBytes,
                                      options_.placement));
    arena_left_ = options_.arena_batch;
  }
  const FarAddr slot = arena_next_;
  arena_next_ += kItemBytes;
  --arena_left_;
  client_->AccountNear(1);  // slab bookkeeping is a local operation
  return slot;
}

int32_t HtTree::DescendCached(uint64_t hash) const {
  int32_t idx = 0;
  uint64_t hops = 1;
  while (!nodes_[idx].leaf) {
    idx = nodes_[idx].child[HashBit(hash, nodes_[idx].depth)];
    ++hops;
  }
  client_->AccountNear(hops);
  return idx;
}

Status HtTree::ReadItem(FarAddr addr, Item* out) {
  return client_->Read(addr, AsBytes(*out));
}

Status HtTree::RefreshCache() {
  // Header: config + root pointer, one far access.
  uint64_t hdr[8];
  FMDS_RETURN_IF_ERROR(client_->Read(
      header_, std::as_writable_bytes(std::span<uint64_t>(hdr))));
  buckets_per_table_ = hdr[kHdrBuckets / 8];
  retired_sentinel_ = hdr[kHdrRetired / 8];
  options_.buckets_per_table = buckets_per_table_;
  options_.max_chain = hdr[kHdrMaxChain / 8];

  // Mirror the trie breadth-first through the batched pipeline: the whole
  // trie costs depth+1 round trips, not one per node.
  nodes_.clear();
  FMDS_ASSIGN_OR_RETURN(int32_t root, FetchSubtree(hdr[kHdrRoot / 8]));
  (void)root;  // appended into an empty cache, so always index 0
  return OkStatus();
}

Result<int32_t> HtTree::FetchSubtree(FarAddr addr) {
  // Level-order batched fetch: all nodes of one level ride one doorbell
  // (both children of every internal node in a single round trip).
  const int32_t root_idx = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(CachedNode{});
  struct Fetch {
    FarAddr addr;
    int32_t idx;
  };
  std::vector<Fetch> frontier{{addr, root_idx}};
  while (!frontier.empty()) {
    std::vector<NodeRec> recs(frontier.size());
    for (size_t i = 0; i < frontier.size(); ++i) {
      client_->PostRead(frontier[i].addr, AsBytes(recs[i]));
    }
    FMDS_RETURN_IF_ERROR(client_->WaitAll());
    std::vector<Fetch> next;
    for (size_t i = 0; i < frontier.size(); ++i) {
      const NodeRec& rec = recs[i];
      // Build locally and assign by index: the push_backs below reallocate
      // `nodes_`, so no reference into it may be held across them.
      CachedNode node;
      node.addr = frontier[i].addr;
      node.depth = rec.depth();
      if (rec.leaf()) {
        node.leaf = true;
        node.table = rec.a;
        node.version = rec.b;
        node.sentinel = rec.c;
      } else {
        node.leaf = false;
        node.child[0] = static_cast<int32_t>(nodes_.size());
        nodes_.push_back(CachedNode{});
        node.child[1] = static_cast<int32_t>(nodes_.size());
        nodes_.push_back(CachedNode{});
        next.push_back(Fetch{rec.a, node.child[0]});
        next.push_back(Fetch{rec.b, node.child[1]});
      }
      nodes_[frontier[i].idx] = node;
    }
    frontier = std::move(next);
  }
  return root_idx;
}

Status HtTree::RefreshPath(uint64_t hash) {
  ++op_stats_.stale_refreshes;
  FMDS_ASSIGN_OR_RETURN(FarAddr root, client_->ReadWord(header_ + kHdrRoot));
  if (nodes_.empty() || nodes_[0].addr != root) {
    return RefreshCache();
  }
  int32_t ci = 0;
  FarAddr fa = root;
  for (uint32_t level = 0; level <= kMaxDepth; ++level) {
    NodeRec rec;
    FMDS_RETURN_IF_ERROR(client_->Read(fa, AsBytes(rec)));
    CachedNode& cached = nodes_[ci];
    if (rec.leaf()) {
      cached.leaf = true;
      cached.addr = fa;
      cached.depth = rec.depth();
      cached.table = rec.a;
      cached.version = rec.b;
      cached.sentinel = rec.c;
      return OkStatus();
    }
    if (cached.leaf) {
      // The cached view lags a split: pull the whole replacement subtree.
      FMDS_ASSIGN_OR_RETURN(int32_t sub, FetchSubtree(fa));
      nodes_[ci] = nodes_[sub];
      return OkStatus();
    }
    const uint32_t bit = HashBit(hash, rec.depth());
    const FarAddr next_fa = (bit == 0) ? rec.a : rec.b;
    const int32_t next_ci = cached.child[bit];
    if (nodes_[next_ci].addr != next_fa) {
      FMDS_ASSIGN_OR_RETURN(int32_t sub, FetchSubtree(next_fa));
      nodes_[next_ci] = nodes_[sub];
      return OkStatus();
    }
    fa = next_fa;
    ci = next_ci;
  }
  return Internal("trie deeper than kMaxDepth");
}

Result<uint64_t> HtTree::Get(uint64_t key) {
  ScopedOpLabel label(&client_->recorder(), "httree.get");
  ++op_stats_.gets;
  // Write-behind read-your-writes: the pending table is the newest truth
  // for this thread's own writes, so it outranks the near cache and the
  // far map. A miss here implies the write already published (the flusher
  // erases records only after its CAS and cache-refill stages), making the
  // pending -> dispatch -> cache consult order safe.
  if (wb_ != nullptr) {
    uint64_t pending_value = 0;
    bool pending_tombstone = false;
    if (wb_->Lookup(key, &pending_value, &pending_tombstone)) {
      client_->AccountNear(1);
      if (pending_tombstone) {
        return Status(StatusCode::kNotFound, "key removed");
      }
      return pending_value;
    }
  }
  DispatchCacheInvalidations();
  // NearCache fast path: a valid entry IS the answer — no trie descent, no
  // chain walk, zero far accesses. Coherence comes from the bucket-word
  // watch (dispatched above); under a lossy delivery policy a stale hit is
  // bounded by the writer-side Invalidate and the channel loss reset.
  uint64_t cached_value = 0;
  if (CacheLookupValue(key, &cached_value)) {
    return cached_value;
  }
  // Routing decision only after every near-only fast path missed: the
  // router prices far work, and a key the cache answers costs neither path
  // anything.
  if (route_decider_ != nullptr) {
    const uint64_t t0 = client_->clock().now_ns();
    if (route_decider_->Decide(RoutedOp::kGet, home_node_, lookup_units_,
                               1) == DataplaneRoute::kRpc) {
      auto view = remote_path_->Get(header_, key);
      if (view.ok()) {
        NoteLookupUnits(1.0 + static_cast<double>(view->chain_hops));
        if (view->found && view->cacheable) {
          CacheAdmitValue(key, view->value, view->bucket, view->head_word);
        }
        route_decider_->Observe(RoutedOp::kGet, home_node_,
                                DataplaneRoute::kRpc,
                                client_->clock().now_ns() - t0, lookup_units_,
                                1);
        if (!view->found) {
          return Status(StatusCode::kNotFound, "key absent");
        }
        return view->value;
      }
      // Agent unreachable or aborted: the one-sided walk below is the
      // safety valve; observe the path actually taken.
    }
    const uint64_t hops0 = op_stats_.chain_hops;
    Result<uint64_t> result = GetOneSided(key);
    NoteLookupUnits(1.0 + static_cast<double>(op_stats_.chain_hops - hops0));
    route_decider_->Observe(RoutedOp::kGet, home_node_,
                            DataplaneRoute::kOneSided,
                            client_->clock().now_ns() - t0, lookup_units_, 1);
    return result;
  }
  return GetOneSided(key);
}

Result<uint64_t> HtTree::GetOneSided(uint64_t key) {
  const uint64_t hash = Mix64(key);
  for (int attempt = 0; attempt < kMaxOpRetries; ++attempt) {
    const int32_t li = DescendCached(hash);
    const CachedNode leaf = nodes_[li];
    const FarAddr bucket = BucketAddr(leaf.table, BucketIndex(hash));
    Item item;
    FarAddr head_addr = kNullFarAddr;
    Result<FarAddr> head = Status(StatusCode::kInternal, "unset");
    if (options_.use_indirect) {
      // Proposed hardware: ONE far access dereferences the bucket and
      // returns the head item.
      head = client_->Load0(bucket, AsBytes(item));
    } else {
      // Today's verbs (ablation): bucket word first, then the item.
      auto ptr = client_->ReadWord(bucket);
      if (ptr.ok()) {
        Status read = ReadItem(*ptr, &item);
        head = read.ok() ? Result<FarAddr>(*ptr) : Result<FarAddr>(read);
      } else {
        head = ptr.status();
      }
    }
    if (!head.ok()) {
      return head.status();
    }
    head_addr = *head;
    client_->AccountNear(1);
    // A pending head is a transaction's lock record (only ever at the
    // head); the pre-transaction chain hangs off its `next`. The walk
    // resolves that view wait-free, but the pending address must never
    // become a CAS-prediction hint (a Put predicting it would steal the
    // lock) or a cache watch word (a txn validating against it would miss
    // the commit).
    const bool head_pending = (item.meta & kFlagPending) != 0;
    if (options_.use_head_hints && !head_pending) {
      head_hints_.Upsert(bucket, head_addr);
    }
    if ((item.meta & kFlagRetired) != 0 ||
        VersionOf(item.meta) != leaf.version) {
      FMDS_RETURN_IF_ERROR(RefreshPath(hash));
      StaleBackoff(attempt);
      continue;
    }
    // Fresh view: walk the chain (first match wins; tombstone = absent).
    uint64_t chain_len = 0;
    FarAddr cursor_addr = head_addr;
    Item cursor = item;
    if (head_pending) {
      cursor_addr = cursor.next;
      FMDS_RETURN_IF_ERROR(ReadItem(cursor_addr, &cursor));
    }
    while (true) {
      if ((cursor.meta & kFlagSentinel) != 0) {
        // End of chain (or empty bucket): definitive miss in one access
        // thanks to the version-carrying sentinel.
        if (chain_len > options_.max_chain) {
          (void)SplitLeaf(li, hash);
        }
        return Status(StatusCode::kNotFound, "key absent");
      }
      if (cursor.key == key) {
        const bool tombstone = (cursor.meta & kFlagTombstone) != 0;
        if (chain_len > options_.max_chain) {
          (void)SplitLeaf(li, hash);
        }
        if (tombstone) {
          return Status(StatusCode::kNotFound, "key removed");
        }
        if (!head_pending) {
          CacheAdmitValue(key, cursor.value, bucket, head_addr);
        }
        return cursor.value;
      }
      if (cursor.next == kNullFarAddr) {
        return Status(StatusCode::kNotFound, "key absent");
      }
      cursor_addr = cursor.next;
      FMDS_RETURN_IF_ERROR(ReadItem(cursor_addr, &cursor));
      ++chain_len;
      ++op_stats_.chain_hops;
    }
  }
  return Status(StatusCode::kAborted, "get retries exhausted");
}

Result<HtTree::TxnReadView> HtTree::TxnRead(uint64_t key, bool allow_cache) {
  ScopedOpLabel label(&client_->recorder(), "txn.read");
  ++op_stats_.gets;
  DispatchCacheInvalidations();
  if (allow_cache && near_cache_ != nullptr) {
    // Zero-far-op fast path: a valid entry carries the bucket it watches
    // AND the word it was filled under, so the hit is a validatable read —
    // commit-time word equality catches any concurrent write even if its
    // invalidation notification is still queued.
    uint64_t cached_value = 0;
    FarAddr watch = kNullFarAddr;
    uint64_t watch_word = 0;
    if (near_cache_->LookupWatch(key, AsBytes(cached_value), &watch,
                                 &watch_word)) {
      TxnReadView view;
      view.found = true;
      view.value = cached_value;
      view.bucket = watch;
      view.head_word = watch_word;
      return view;
    }
  }
  const uint64_t hash = Mix64(key);
  for (int attempt = 0; attempt < kMaxOpRetries; ++attempt) {
    const int32_t li = DescendCached(hash);
    const CachedNode leaf = nodes_[li];
    const FarAddr bucket = BucketAddr(leaf.table, BucketIndex(hash));
    Item item;
    Result<FarAddr> head = Status(StatusCode::kInternal, "unset");
    if (options_.use_indirect) {
      head = client_->Load0(bucket, AsBytes(item));
    } else {
      auto ptr = client_->ReadWord(bucket);
      if (ptr.ok()) {
        Status read = ReadItem(*ptr, &item);
        head = read.ok() ? Result<FarAddr>(*ptr) : Result<FarAddr>(read);
      } else {
        head = ptr.status();
      }
    }
    if (!head.ok()) {
      return head.status();
    }
    const FarAddr head_addr = *head;
    client_->AccountNear(1);
    if ((item.meta & kFlagPending) != 0) {
      // Another transaction holds this bucket pending. Unlike Get, a txn
      // read must NOT resolve the pre-transaction view: the only word it
      // could record would be the lock record's address, and validating
      // against that would certify a read the in-flight commit is about to
      // overwrite (write skew). Wait for a clean head instead.
      StaleBackoff(attempt);
      continue;
    }
    if (options_.use_head_hints) {
      head_hints_.Upsert(bucket, head_addr);
    }
    if ((item.meta & kFlagRetired) != 0 ||
        VersionOf(item.meta) != leaf.version) {
      FMDS_RETURN_IF_ERROR(RefreshPath(hash));
      StaleBackoff(attempt);
      continue;
    }
    // Fresh, clean view: walk the chain. A miss is a successful view —
    // negative reads participate in validation with the same word.
    TxnReadView view;
    view.bucket = bucket;
    view.head_word = head_addr;
    view.version = leaf.version;
    view.versioned = true;
    FarAddr cursor_addr = head_addr;
    Item cursor = item;
    while (true) {
      if ((cursor.meta & kFlagSentinel) != 0) {
        return view;  // found = false
      }
      if (cursor.key == key) {
        if ((cursor.meta & kFlagTombstone) == 0) {
          view.found = true;
          view.value = cursor.value;
          CacheAdmitValue(key, cursor.value, bucket, head_addr);
        }
        return view;
      }
      if (cursor.next == kNullFarAddr) {
        return view;  // found = false
      }
      cursor_addr = cursor.next;
      FMDS_RETURN_IF_ERROR(ReadItem(cursor_addr, &cursor));
      ++op_stats_.chain_hops;
    }
  }
  return Aborted("txn read waited out a pending bucket");
}

HtTree::CompletionMap HtTree::ToCompletionMap(
    std::vector<FarClient::Completion> done) {
  CompletionMap map;
  map.reserve(done.size());
  for (const FarClient::Completion& c : done) {
    map.emplace(c.id, c);
  }
  return map;
}

// ---------------------------- BatchGet engine ----------------------------

HtTree::BatchGet::BatchGet(HtTree* map, std::span<const uint64_t> keys)
    : BatchGet(map, keys, /*txn_mode=*/false) {}

HtTree::BatchGet::BatchGet(HtTree* map, std::span<const uint64_t> keys,
                           bool txn_mode)
    : map_(map),
      results_(keys.size(),
               Status(StatusCode::kInternal, "multiget unresolved")),
      txn_mode_(txn_mode) {
  map_->op_stats_.gets += keys.size();
  map_->DispatchCacheInvalidations();
  if (txn_mode_) {
    txn_state_.assign(keys.size(), 0);  // kFallback until a view resolves
    views_.resize(keys.size());
  }
  probes_.reserve(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    Probe probe;
    probe.idx = i;
    probe.key = keys[i];
    // Pending-table consult first (read-your-writes, see Get), then the
    // NearCache: either hit resolves the probe before any wave posts —
    // hot keys drop out of the doorbell entirely, without even a descent.
    // Txn mode skips both: the caller already resolved cache hits with
    // watch words, and a value without one is useless to validation.
    if (!txn_mode_ && map_->wb_ != nullptr) {
      uint64_t pending_value = 0;
      bool pending_tombstone = false;
      if (map_->wb_->Lookup(probe.key, &pending_value, &pending_tombstone)) {
        map_->client_->AccountNear(1);
        results_[i] = pending_tombstone
                          ? Result<uint64_t>(
                                Status(StatusCode::kNotFound, "key removed"))
                          : Result<uint64_t>(pending_value);
        probe.stage = Stage::kDone;
        probes_.push_back(probe);
        continue;
      }
    }
    uint64_t cached_value = 0;
    if (!txn_mode_ && map_->CacheLookupValue(probe.key, &cached_value)) {
      results_[i] = cached_value;
      probe.stage = Stage::kDone;
      probes_.push_back(probe);
      continue;
    }
    probe.hash = Mix64(keys[i]);
    probe.leaf = map_->nodes_[map_->DescendCached(probe.hash)];
    probe.bucket =
        map_->BucketAddr(probe.leaf.table, map_->BucketIndex(probe.hash));
    probes_.push_back(probe);
  }
}

size_t HtTree::BatchGet::PostWave() {
  size_t posted = 0;
  for (Probe& probe : probes_) {
    switch (probe.stage) {
      case Stage::kProbe:
        // use_indirect: ONE access dereferences the bucket and returns the
        // head item. Ablation: bucket word this wave, head item next wave —
        // two batched round trips where the sync path pays two *per key*.
        probe.op = map_->options_.use_indirect
                       ? map_->client_->PostLoad0(probe.bucket,
                                                  AsBytes(probe.item))
                       : map_->client_->PostReadWord(probe.bucket);
        ++posted;
        break;
      case Stage::kHead:
        probe.op = map_->client_->PostRead(probe.head, AsBytes(probe.item));
        ++posted;
        break;
      case Stage::kWalk:
        // addr is captured at post time, so reading into `item` is safe
        // even though it overwrites the `next` field the address came from.
        probe.op =
            map_->client_->PostRead(probe.item.next, AsBytes(probe.item));
        ++map_->op_stats_.chain_hops;
        ++posted;
        break;
      case Stage::kStale:
      case Stage::kDone:
        break;
    }
  }
  return posted;
}

void HtTree::BatchGet::AbsorbWave(const CompletionMap& done) {
  for (Probe& probe : probes_) {
    if (probe.stage == Stage::kStale || probe.stage == Stage::kDone) {
      continue;
    }
    const auto it = done.find(probe.op);
    if (it == done.end()) {
      continue;  // posted into a wave this map did not flush yet
    }
    if (!it->second.status.ok()) {
      results_[probe.idx] = it->second.status;
      if (txn_mode_) {
        txn_state_[probe.idx] = static_cast<uint8_t>(TxnOutcome::kError);
      }
      probe.stage = Stage::kDone;
      continue;
    }
    switch (probe.stage) {
      case Stage::kProbe:
        probe.head = it->second.word;
        if (!map_->options_.use_indirect) {
          probe.stage = Stage::kHead;  // item read rides the next wave
          break;
        }
        [[fallthrough]];
      case Stage::kHead:
        // Staleness check on the head; stale views finish via the sync path.
        map_->client_->AccountNear(1);
        if ((probe.item.meta & kFlagRetired) != 0 ||
            VersionOf(probe.item.meta) != probe.leaf.version) {
          probe.stage = Stage::kStale;
          break;
        }
        if ((probe.item.meta & kFlagPending) != 0) {
          if (txn_mode_) {
            // A txn read must not resolve the pre-transaction view (the
            // lock record's word would certify a read the in-flight commit
            // overwrites — write skew). Fall back to TxnRead's wait-out
            // discipline for this key only.
            probe.stage = Stage::kStale;
            break;
          }
          // Transaction lock record at the head: the pre-transaction chain
          // hangs off its `next`; resolve that view via the walk stage and
          // keep it out of the cache (see Get).
          probe.pending_seen = true;
          probe.stage = Stage::kWalk;
          break;
        }
        Classify(probe);
        break;
      case Stage::kWalk:
        Classify(probe);
        break;
      case Stage::kStale:
      case Stage::kDone:
        break;
    }
  }
}

void HtTree::BatchGet::Classify(Probe& probe) {
  // No proactive splits on this read-only path (unlike Get).
  const Item& item = probe.item;
  if (txn_mode_) {
    // Classify only sees version-checked clean heads (kStale/pending gates
    // upstream), so a terminal outcome is a validatable view keyed by the
    // bucket word the probe wave observed. A miss (sentinel or chain end)
    // is a successful negative view — same as the sync TxnRead.
    const bool sentinel = (item.meta & kFlagSentinel) != 0;
    const bool match = !sentinel && item.key == probe.key;
    if (sentinel || match || item.next == kNullFarAddr) {
      TxnReadView& view = views_[probe.idx];
      view.bucket = probe.bucket;
      view.head_word = probe.head;
      view.version = probe.leaf.version;
      view.versioned = true;
      if (match && (item.meta & kFlagTombstone) == 0) {
        view.found = true;
        view.value = item.value;
        map_->CacheAdmitValue(probe.key, item.value, probe.bucket,
                              probe.head);
      }
      txn_state_[probe.idx] = static_cast<uint8_t>(TxnOutcome::kView);
      probe.stage = Stage::kDone;
    } else {
      probe.stage = Stage::kWalk;
    }
    return;
  }
  if ((item.meta & kFlagSentinel) != 0) {
    results_[probe.idx] = Status(StatusCode::kNotFound, "key absent");
    probe.stage = Stage::kDone;
  } else if (item.key == probe.key) {
    if ((item.meta & kFlagTombstone) != 0) {
      results_[probe.idx] = Status(StatusCode::kNotFound, "key removed");
    } else {
      // Classify only sees version-checked fresh views (the kHead absorb
      // gates on the staleness check), so the binding is admissible.
      // probe.head is the bucket word the kProbe wave observed — unless a
      // pending lock record sat there, in which case it must not become a
      // cache watch word.
      if (!probe.pending_seen) {
        map_->CacheAdmitValue(probe.key, item.value, probe.bucket,
                              probe.head);
      }
      results_[probe.idx] = item.value;
    }
    probe.stage = Stage::kDone;
  } else if (item.next == kNullFarAddr) {
    results_[probe.idx] = Status(StatusCode::kNotFound, "key absent");
    probe.stage = Stage::kDone;
  } else {
    probe.stage = Stage::kWalk;
  }
}

std::vector<Result<uint64_t>> HtTree::BatchGet::Take() {
  for (Probe& probe : probes_) {
    if (probe.stage == Stage::kStale) {
      --map_->op_stats_.gets;  // Get() bumps it again
      results_[probe.idx] = map_->Get(probe.key);
      probe.stage = Stage::kDone;
    }
  }
  return std::move(results_);
}

std::vector<Result<uint64_t>> HtTree::MultiGet(
    std::span<const uint64_t> keys) {
  ScopedOpLabel label(&client_->recorder(), "httree.multiget");
  std::vector<Result<uint64_t>> routed;
  if (TryRouteMultiGet(keys, &routed)) {
    return routed;
  }
  const uint64_t t0 = client_->clock().now_ns();
  const uint64_t hops0 = op_stats_.chain_hops;
  BatchGet engine(this, keys);
  while (engine.PostWave() > 0) {
    std::vector<FarClient::Completion> done;
    (void)client_->WaitAll(&done);
    engine.AbsorbWave(ToCompletionMap(std::move(done)));
  }
  std::vector<Result<uint64_t>> results = engine.Take();
  if (!keys.empty()) {
    // Feed chain-depth units from the one-sided path too; if only the RPC
    // path reported units, the per-unit one-sided estimate would be scaled
    // by units it never observed, biasing Decide() toward RPC.
    NoteLookupUnits(1.0 + static_cast<double>(op_stats_.chain_hops - hops0) /
                              static_cast<double>(keys.size()));
    if (route_decider_ != nullptr) {
      route_decider_->Observe(RoutedOp::kMultiGet, home_node_,
                              DataplaneRoute::kOneSided,
                              client_->clock().now_ns() - t0, lookup_units_,
                              keys.size());
    }
  }
  return results;
}

Status HtTree::EnableRouting(RouteDecider* decider, RemoteMapPath* remote) {
  if (decider == nullptr || remote == nullptr) {
    return InvalidArgument("routing needs a decider and a remote path");
  }
  // The map's home node hosts every table/item this handle allocates, so
  // one node id keys all of this handle's route state.
  FMDS_ASSIGN_OR_RETURN(auto loc, client_->fabric()->Translate(header_));
  home_node_ = loc.node;
  route_decider_ = decider;
  remote_path_ = remote;
  return OkStatus();
}

void HtTree::ApplyRemoteWrite(uint64_t key, uint64_t value, bool tombstone,
                              const RemoteMapPath::WriteOutcome& outcome) {
  // Mirror the one-sided CAS exit: the agent's CAS left the bucket word
  // equal to `outcome.head`, so the hint and (for a Put) the writer-side
  // refill are exactly as fresh as they would be had this client swung the
  // word itself. Word-versioned coherence covers the race with later
  // writers: their events carry a different word and kill the entry, and
  // none of their queued events can have been dispatched between the agent's
  // publish and this refill (no DispatchCacheInvalidations in between).
  if (options_.use_head_hints && outcome.bucket != kNullFarAddr) {
    head_hints_.Upsert(outcome.bucket, outcome.head);
  }
  if (near_cache_ == nullptr) {
    return;
  }
  if (!tombstone && outcome.refillable && outcome.bucket != kNullFarAddr) {
    near_cache_->Refill(key, AsConstBytes(value), outcome.bucket, kWordSize,
                        outcome.head);
  } else {
    near_cache_->Invalidate(key);
  }
}

bool HtTree::TryRouteMultiGet(std::span<const uint64_t> keys,
                              std::vector<Result<uint64_t>>* results) {
  if (route_decider_ == nullptr || keys.empty()) {
    return false;
  }
  const uint64_t t0 = client_->clock().now_ns();
  // Decide before the near-path sweep: a kOneSided verdict returns false
  // immediately, so the engine's own consults are not double-charged.
  if (route_decider_->Decide(RoutedOp::kMultiGet, home_node_, lookup_units_,
                             keys.size()) != DataplaneRoute::kRpc) {
    return false;
  }
  op_stats_.gets += keys.size();
  DispatchCacheInvalidations();
  results->assign(keys.size(), Result<uint64_t>(Status(
                                   StatusCode::kInternal, "unresolved")));
  // Same near-first discipline as the BatchGet engine: pending-table and
  // cache hits resolve locally; only the residue ships to the agent.
  std::vector<uint64_t> residue;
  std::vector<size_t> residue_pos;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (wb_ != nullptr) {
      uint64_t pending_value = 0;
      bool pending_tombstone = false;
      if (wb_->Lookup(keys[i], &pending_value, &pending_tombstone)) {
        client_->AccountNear(1);
        (*results)[i] = pending_tombstone
                            ? Result<uint64_t>(Status(StatusCode::kNotFound,
                                                      "key removed"))
                            : Result<uint64_t>(pending_value);
        continue;
      }
    }
    uint64_t cached_value = 0;
    if (CacheLookupValue(keys[i], &cached_value)) {
      (*results)[i] = cached_value;
      continue;
    }
    residue.push_back(keys[i]);
    residue_pos.push_back(i);
  }
  if (residue.empty()) {
    return true;  // nothing far to observe — all keys answered near
  }
  std::vector<RemoteMapPath::ReadView> views;
  const Status shipped = remote_path_->MultiGet(header_, residue, &views);
  if (!shipped.ok()) {
    // Fall back whole-batch: the engine re-bumps the op counters.
    op_stats_.gets -= keys.size();
    return false;
  }
  double hops = 0.0;
  for (size_t j = 0; j < residue.size(); ++j) {
    const RemoteMapPath::ReadView& view = views[j];
    hops += static_cast<double>(view.chain_hops);
    if (view.found && view.cacheable) {
      CacheAdmitValue(residue[j], view.value, view.bucket, view.head_word);
    }
    (*results)[residue_pos[j]] =
        view.found ? Result<uint64_t>(view.value)
                   : Result<uint64_t>(
                         Status(StatusCode::kNotFound, "key absent"));
  }
  NoteLookupUnits(1.0 + hops / static_cast<double>(residue.size()));
  route_decider_->Observe(RoutedOp::kMultiGet, home_node_,
                          DataplaneRoute::kRpc,
                          client_->clock().now_ns() - t0, lookup_units_,
                          residue.size());
  return true;
}

Status HtTree::Put(uint64_t key, uint64_t value) {
  ScopedOpLabel label(&client_->recorder(), "httree.put");
  if (wb_ != nullptr) {
    // Write-behind: stage and return — no far round trip, no allocation,
    // no cache sweep on this thread. The flusher publishes asynchronously;
    // errors surface at FlushBarrier().
    ++op_stats_.puts;
    client_->AccountNear(1);
    wb_->Put(key, value);
    return OkStatus();
  }
  ++op_stats_.puts;
  DispatchCacheInvalidations();
  if (route_decider_ != nullptr) {
    const uint64_t t0 = client_->clock().now_ns();
    if (route_decider_->Decide(RoutedOp::kPut, home_node_, store_units_,
                               1) == DataplaneRoute::kRpc) {
      auto outcome = remote_path_->Put(header_, key, value);
      if (outcome.ok()) {
        ApplyRemoteWrite(key, value, /*tombstone=*/false, *outcome);
        route_decider_->Observe(RoutedOp::kPut, home_node_,
                                DataplaneRoute::kRpc,
                                client_->clock().now_ns() - t0, store_units_,
                                1);
        return OkStatus();
      }
    }
    const uint64_t retries0 = op_stats_.cas_retries;
    const Status status = PutOneSided(key, value);
    NoteStoreUnits(2.0 +
                   static_cast<double>(op_stats_.cas_retries - retries0));
    route_decider_->Observe(RoutedOp::kPut, home_node_,
                            DataplaneRoute::kOneSided,
                            client_->clock().now_ns() - t0, store_units_, 1);
    return status;
  }
  return PutOneSided(key, value);
}

Status HtTree::PutOneSided(uint64_t key, uint64_t value) {
  const uint64_t hash = Mix64(key);
  FMDS_ASSIGN_OR_RETURN(FarAddr slot, AllocItemSlot());
  int32_t li = DescendCached(hash);
  CachedNode leaf = nodes_[li];
  FarAddr bucket = BucketAddr(leaf.table, BucketIndex(hash));
  client_->AccountNear(1);
  FarAddr predicted = HeadHint(bucket, leaf.sentinel);
  // Far access 1: publish the item body (not yet reachable).
  Item item{key, value, VersionOf(leaf.version), predicted};
  FMDS_RETURN_IF_ERROR(client_->Write(slot, AsConstBytes(item)));
  bool full_write_done = true;
  for (int attempt = 0; attempt < kMaxOpRetries; ++attempt) {
    if (!full_write_done) {
      // Only the link field changed since the last image.
      FMDS_RETURN_IF_ERROR(client_->WriteWord(slot + kItemNext, predicted));
    }
    // Far access 2: the bucket CAS both links the item and validates the
    // cached version (a frozen/retired bucket can never equal `predicted`).
    FMDS_ASSIGN_OR_RETURN(uint64_t old,
                          client_->CompareSwap(bucket, predicted, slot));
    if (old == predicted) {
      if (options_.use_head_hints) {
        head_hints_.Upsert(bucket, slot);
      }
      // Writer-side refill (zero far round trips): the writer holds the
      // fresh value and its CAS left the bucket word equal to `slot`, so a
      // resident entry refills in place instead of dying and paying a read
      // RTT on the next lookup. Word-versioned coherence makes this safe:
      // the echo of our own CAS confirms the entry (event word == slot),
      // while any later writer's event carries a different word and kills
      // it. Non-resident keys are untouched; a moved watch degrades to the
      // old invalidate, so read-your-writes holds in every case.
      if (near_cache_ != nullptr) {
        near_cache_->Refill(key, AsConstBytes(value), bucket, kWordSize,
                            slot);
      }
      // Split once this handle's inserts into the table reach load factor
      // ~1/2: most buckets hold at most one item, so lookups stay at one
      // far access (§5.2's "enough collisions" trigger).
      const uint64_t estimate = ++collision_estimate_[leaf.table];
      client_->AccountNear(1);
      if (estimate > buckets_per_table_ / 2) {
        collision_estimate_[leaf.table] = 0;
        (void)SplitLeaf(li, hash);
      }
      return OkStatus();
    }
    ++op_stats_.cas_retries;
    // Misprediction: inspect the actual head for staleness.
    Item head;
    FMDS_RETURN_IF_ERROR(ReadItem(old, &head));
    if ((head.meta & kFlagPending) != 0) {
      // A transaction holds the bucket pending. Only its owner may change
      // the word (commit or rollback), so adopting `old` as the prediction
      // would steal the lock — wait it out instead.
      StaleBackoff(attempt);
      continue;
    }
    if ((head.meta & kFlagRetired) != 0 ||
        VersionOf(head.meta) != leaf.version) {
      FMDS_RETURN_IF_ERROR(RefreshPath(hash));
      li = DescendCached(hash);
      leaf = nodes_[li];
      bucket = BucketAddr(leaf.table, BucketIndex(hash));
      predicted = leaf.sentinel;
      // Version changed: rewrite the full item image.
      item.meta = VersionOf(leaf.version);
      item.next = predicted;
      FMDS_RETURN_IF_ERROR(client_->Write(slot, AsConstBytes(item)));
      full_write_done = true;
      StaleBackoff(attempt);
      continue;
    }
    if (options_.use_head_hints) {
      head_hints_.Upsert(bucket, old);
    }
    predicted = old;
    full_write_done = false;
  }
  return Aborted("put retries exhausted");
}

// ---------------------------- BatchPut engine ----------------------------

HtTree::BatchPut::BatchPut(HtTree* map, std::span<const uint64_t> keys,
                           std::span<const uint64_t> values)
    : BatchPut(map, keys, values, {}, nullptr) {}

HtTree::BatchPut::BatchPut(HtTree* map, std::span<const uint64_t> keys,
                           std::span<const uint64_t> values,
                           std::span<const uint8_t> tombstones,
                           std::vector<WriteOutcome>* outcomes)
    : map_(map), outcomes_(outcomes) {
  map_->DispatchCacheInvalidations();
  if (outcomes_ != nullptr) {
    outcomes_->assign(keys.size(), WriteOutcome{});
  }
  ops_.reserve(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    Op op;
    op.key = keys[i];
    op.tombstone = i < tombstones.size() && tombstones[i] != 0;
    op.value = (!op.tombstone && i < values.size()) ? values[i] : 0;
    op.hash = Mix64(keys[i]);
    if (op.tombstone) {
      ++map_->op_stats_.removes;
    } else {
      ++map_->op_stats_.puts;
    }
    ops_.push_back(op);
  }
}

size_t HtTree::BatchPut::PostWave() {
  size_t posted = 0;
  // Same-bucket ops within one wave chain their predictions: op k links
  // (and predicts) op k-1's slot, so the whole chain rides the ordered
  // doorbell with zero intra-batch mispredictions. Without this, a batch
  // of hot keys (write-behind under Zipf) collides on its own buckets and
  // every op past the first falls back to a serial synchronous Put —
  // re-serializing exactly the round trips the batch exists to overlap.
  // Only each chain's FIRST op races external writers.
  std::unordered_map<FarAddr, const Op*> chain_tail;
  for (Op& op : ops_) {
    switch (op.state) {
      case State::kInit: {
        auto slot = map_->AllocItemSlot();
        if (!slot.ok()) {
          op.result = slot.status();
          op.state = State::kDone;
          break;
        }
        op.slot = *slot;
        op.leaf_index = map_->DescendCached(op.hash);
        op.leaf = map_->nodes_[op.leaf_index];
        op.bucket =
            map_->BucketAddr(op.leaf.table, map_->BucketIndex(op.hash));
        map_->client_->AccountNear(1);
        const auto tail = chain_tail.find(op.bucket);
        op.predicted = tail != chain_tail.end()
                           ? tail->second->slot
                           : map_->HeadHint(op.bucket, op.leaf.sentinel);
        chain_tail[op.bucket] = &op;
        // Both far accesses of the store ride the shared doorbell: publish
        // the item body, then CAS the bucket head. The doorbell preserves
        // post order per node, so the item is visible before it becomes
        // reachable. A removal is the same insert-at-head with the
        // tombstone flag set.
        Item item{op.key, op.value,
                  VersionOf(op.leaf.version) |
                      (op.tombstone ? kFlagTombstone : 0ull),
                  op.predicted};
        op.write_op = map_->client_->PostWrite(op.slot, AsConstBytes(item));
        op.cas_op =
            map_->client_->PostCompareSwap(op.bucket, op.predicted, op.slot);
        op.state = State::kPosted;
        posted += 2;
        break;
      }
      case State::kInspect:
        // Read the item behind the observed head before adopting it as a
        // prediction (it could be the retired sentinel of a frozen
        // bucket). The read rides the same doorbell as every other op in
        // the wave, so an entire failed chain re-validates in one batched
        // round trip.
        op.read_op = map_->client_->PostRead(op.observed, AsBytes(op.head));
        op.state = State::kInspectPosted;
        posted += 1;
        break;
      case State::kRelink: {
        // The slot body is already published and never became reachable
        // (the CAS failed), so only the link word needs rewriting. An
        // earlier same-bucket op in this wave re-forms the chain; its
        // members keep their original relative order, so their link words
        // are rewritten with the values they already hold.
        const auto tail = chain_tail.find(op.bucket);
        op.predicted =
            tail != chain_tail.end() ? tail->second->slot : op.observed;
        chain_tail[op.bucket] = &op;
        op.write_op =
            map_->client_->PostWriteWord(op.slot + kItemNext, op.predicted);
        op.cas_op =
            map_->client_->PostCompareSwap(op.bucket, op.predicted, op.slot);
        op.state = State::kPosted;
        posted += 2;
        break;
      }
      case State::kPosted:
      case State::kInspectPosted:
      case State::kDone:
      case State::kFallback:
        break;
    }
  }
  return posted;
}

void HtTree::BatchPut::AbsorbWave(const CompletionMap& done) {
  for (size_t i = 0; i < ops_.size(); ++i) {
    Op& op = ops_[i];
    if (op.state == State::kInspectPosted) {
      const auto rit = done.find(op.read_op);
      if (rit == done.end()) {
        continue;  // posted into a wave this map did not flush yet
      }
      if (!rit->second.status.ok()) {
        op.result = rit->second.status;
        op.state = State::kDone;
        continue;
      }
      map_->client_->AccountNear(1);
      if ((op.head.meta & kFlagPending) != 0 ||
          (op.head.meta & kFlagRetired) != 0 ||
          VersionOf(op.head.meta) != op.leaf.version) {
        // A pending transaction lock (only its owner may change the word)
        // or a concurrent split: both need the sync path's backoff /
        // RefreshPath machinery. Rare enough to pay the serial trip.
        op.state = State::kFallback;
        continue;
      }
      // Validated live head of the current table generation: safe to adopt
      // as the prediction and as a hint (mirrors the sync Put).
      if (map_->options_.use_head_hints) {
        map_->head_hints_.Upsert(op.bucket, op.observed);
      }
      op.state = State::kRelink;
      continue;
    }
    if (op.state != State::kPosted) {
      continue;
    }
    const auto wit = done.find(op.write_op);
    const auto cit = done.find(op.cas_op);
    if (wit == done.end() || cit == done.end()) {
      continue;  // posted into a wave this map did not flush yet
    }
    if (!wit->second.status.ok() || !cit->second.status.ok()) {
      op.result = !wit->second.status.ok() ? wit->second.status
                                           : cit->second.status;
      op.state = State::kDone;
      continue;
    }
    const uint64_t old = cit->second.word;
    if (old != op.predicted) {
      // Mispredicted: stale cache or a concurrent writer (same-batch
      // neighbors never collide — they chain at post time). Retry inside
      // the wave engine: inspect the observed head next wave, adopt it if
      // it validates, re-CAS the wave after. The observed head must NOT
      // be cached as a hint before that read: we cannot tell it from the
      // retired sentinel of a concurrently frozen bucket, and a later CAS
      // predicting the sentinel would "succeed" into the dead table and
      // lose the write.
      ++map_->op_stats_.cas_retries;
      if (++op.attempts >= kMaxBatchCasRetries) {
        op.state = State::kFallback;
      } else {
        op.observed = old;
        op.state = State::kInspect;
      }
      continue;
    }
    if (map_->options_.use_head_hints) {
      map_->head_hints_.Upsert(op.bucket, op.slot);
    }
    // Writer-side refill, same rationale as the sync Put's; a tombstone
    // mirrors the sync Remove and invalidates instead.
    if (map_->near_cache_ != nullptr) {
      if (op.tombstone) {
        map_->near_cache_->Invalidate(op.key);
      } else {
        map_->near_cache_->Refill(op.key, AsConstBytes(op.value), op.bucket,
                                  kWordSize, op.slot);
      }
    }
    // Only the batched fast path yields a refillable outcome: its CAS left
    // the bucket word equal to op.slot, the exact confirmation word a
    // cross-thread RefillExternal needs.
    if (outcomes_ != nullptr) {
      (*outcomes_)[i] = WriteOutcome{op.bucket, op.slot, !op.tombstone};
    }
    const uint64_t estimate = ++map_->collision_estimate_[op.leaf.table];
    map_->client_->AccountNear(1);
    if (estimate > map_->buckets_per_table_ / 2) {
      map_->collision_estimate_[op.leaf.table] = 0;
      deferred_splits_.emplace_back(op.leaf_index, op.hash);
    }
    op.result = OkStatus();
    op.state = State::kDone;
  }
}

Status HtTree::BatchPut::Take() {
  Status first = OkStatus();
  std::unordered_set<FarAddr> fallback_buckets;
  for (Op& op : ops_) {
    if (op.state == State::kFallback) {
      fallback_buckets.insert(op.bucket);
      // The sync op bumps the stat again.
      if (op.tombstone) {
        --map_->op_stats_.removes;
        op.result = map_->Remove(op.key);
      } else {
        --map_->op_stats_.puts;
        op.result = map_->Put(op.key, op.value);
      }
      op.state = State::kDone;
    }
    if (first.ok() && !op.result.ok()) {
      first = op.result;
    }
  }
  if (outcomes_ != nullptr) {
    // A chained bucket's stable post-batch head is its LAST landed slot;
    // refill confirmations must record that word, not each member's own
    // slot (the member's word was overwritten by its chain successor). A
    // bucket any fallback op re-wrote moved past the chain entirely —
    // downgrade its outcomes to invalidate.
    std::unordered_map<FarAddr, uint64_t> final_head;
    for (size_t i = 0; i < ops_.size(); ++i) {
      const WriteOutcome& o = (*outcomes_)[i];
      if (o.bucket != kNullFarAddr) {
        final_head[o.bucket] = o.head;
      }
    }
    for (size_t i = 0; i < ops_.size(); ++i) {
      WriteOutcome& o = (*outcomes_)[i];
      if (!o.refillable) {
        continue;
      }
      if (fallback_buckets.count(o.bucket) != 0) {
        o.refillable = false;
      } else {
        o.head = final_head[o.bucket];
      }
    }
  }
  // Deferred splits run after the waves so the batched fast path itself
  // stays split-free. Re-descend by hash: an earlier split in this very
  // loop may have spliced the cached trie under the recorded index.
  for (const auto& [leaf_index, hash] : deferred_splits_) {
    (void)leaf_index;
    (void)map_->SplitLeaf(map_->DescendCached(hash), hash);
  }
  deferred_splits_.clear();
  return first;
}

Status HtTree::MultiPut(std::span<const uint64_t> keys,
                        std::span<const uint64_t> values) {
  if (keys.size() != values.size()) {
    return InvalidArgument("MultiPut keys/values length mismatch");
  }
  return MultiWrite(keys, values, {});
}

Status HtTree::MultiWrite(std::span<const uint64_t> keys,
                          std::span<const uint64_t> values,
                          std::span<const uint8_t> tombstones,
                          std::vector<WriteOutcome>* outcomes) {
  if (keys.size() != values.size() ||
      (!tombstones.empty() && tombstones.size() != keys.size())) {
    return InvalidArgument("MultiWrite span length mismatch");
  }
  ScopedOpLabel label(&client_->recorder(), "httree.multiput");
  if (wb_ != nullptr) {
    // Write-behind handles stage instead of publishing: a direct publish
    // here could overtake an older staged write to the same key. The
    // engine's flusher handle has wb_ == null and takes the path below.
    client_->AccountNear(keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      const bool tombstone = i < tombstones.size() && tombstones[i] != 0;
      if (tombstone) {
        ++op_stats_.removes;
        wb_->Remove(keys[i]);
      } else {
        ++op_stats_.puts;
        wb_->Put(keys[i], values[i]);
      }
    }
    if (outcomes != nullptr) {
      outcomes->assign(keys.size(), WriteOutcome{});
    }
    return OkStatus();
  }
  BatchPut engine(this, keys, values, tombstones, outcomes);
  while (engine.PostWave() > 0) {
    std::vector<FarClient::Completion> done;
    (void)client_->WaitAll(&done);
    engine.AbsorbWave(ToCompletionMap(std::move(done)));
  }
  return engine.Take();
}

Status HtTree::Remove(uint64_t key) {
  // A removal is an insert-at-head of a tombstone: same cost, same
  // concurrency story as Put. Splits drop tombstones and everything they
  // shadow.
  ScopedOpLabel label(&client_->recorder(), "httree.remove");
  if (wb_ != nullptr) {
    ++op_stats_.removes;
    client_->AccountNear(1);
    wb_->Remove(key);
    return OkStatus();
  }
  ++op_stats_.removes;
  DispatchCacheInvalidations();
  if (route_decider_ != nullptr) {
    const uint64_t t0 = client_->clock().now_ns();
    if (route_decider_->Decide(RoutedOp::kRemove, home_node_, store_units_,
                               1) == DataplaneRoute::kRpc) {
      auto outcome = remote_path_->Remove(header_, key);
      if (outcome.ok()) {
        ApplyRemoteWrite(key, 0, /*tombstone=*/true, *outcome);
        route_decider_->Observe(RoutedOp::kRemove, home_node_,
                                DataplaneRoute::kRpc,
                                client_->clock().now_ns() - t0, store_units_,
                                1);
        return OkStatus();
      }
    }
    const uint64_t retries0 = op_stats_.cas_retries;
    const Status status = RemoveOneSided(key);
    NoteStoreUnits(2.0 +
                   static_cast<double>(op_stats_.cas_retries - retries0));
    route_decider_->Observe(RoutedOp::kRemove, home_node_,
                            DataplaneRoute::kOneSided,
                            client_->clock().now_ns() - t0, store_units_, 1);
    return status;
  }
  return RemoveOneSided(key);
}

Status HtTree::RemoveOneSided(uint64_t key) {
  const uint64_t hash = Mix64(key);
  FMDS_ASSIGN_OR_RETURN(FarAddr slot, AllocItemSlot());
  int32_t li = DescendCached(hash);
  CachedNode leaf = nodes_[li];
  FarAddr bucket = BucketAddr(leaf.table, BucketIndex(hash));
  client_->AccountNear(1);
  FarAddr predicted = HeadHint(bucket, leaf.sentinel);
  Item item{key, 0, VersionOf(leaf.version) | kFlagTombstone, predicted};
  FMDS_RETURN_IF_ERROR(client_->Write(slot, AsConstBytes(item)));
  bool full_write_done = true;
  for (int attempt = 0; attempt < kMaxOpRetries; ++attempt) {
    if (!full_write_done) {
      FMDS_RETURN_IF_ERROR(client_->WriteWord(slot + kItemNext, predicted));
    }
    FMDS_ASSIGN_OR_RETURN(uint64_t old,
                          client_->CompareSwap(bucket, predicted, slot));
    if (old == predicted) {
      if (options_.use_head_hints) {
        head_hints_.Upsert(bucket, slot);
      }
      if (near_cache_ != nullptr) {
        near_cache_->Invalidate(key);
      }
      // Tombstones lengthen chains exactly like inserts do.
      const uint64_t estimate = ++collision_estimate_[leaf.table];
      client_->AccountNear(1);
      if (estimate > buckets_per_table_ / 2) {
        collision_estimate_[leaf.table] = 0;
        (void)SplitLeaf(li, hash);
      }
      return OkStatus();
    }
    ++op_stats_.cas_retries;
    Item head;
    FMDS_RETURN_IF_ERROR(ReadItem(old, &head));
    if ((head.meta & kFlagPending) != 0) {
      // Transaction lock record: wait for its owner (see Put).
      StaleBackoff(attempt);
      continue;
    }
    if ((head.meta & kFlagRetired) != 0 ||
        VersionOf(head.meta) != leaf.version) {
      FMDS_RETURN_IF_ERROR(RefreshPath(hash));
      li = DescendCached(hash);
      leaf = nodes_[li];
      bucket = BucketAddr(leaf.table, BucketIndex(hash));
      predicted = leaf.sentinel;
      item.meta = VersionOf(leaf.version) | kFlagTombstone;
      item.next = predicted;
      FMDS_RETURN_IF_ERROR(client_->Write(slot, AsConstBytes(item)));
      full_write_done = true;
      StaleBackoff(attempt);
      continue;
    }
    if (options_.use_head_hints) {
      head_hints_.Upsert(bucket, old);
    }
    predicted = old;
    full_write_done = false;
  }
  return Aborted("remove retries exhausted");
}

Status HtTree::SplitTableOf(uint64_t key) {
  const uint64_t hash = Mix64(key);
  return SplitLeaf(DescendCached(hash), hash);
}

Status HtTree::SplitLeaf(int32_t leaf_index, uint64_t hash) {
  ScopedOpLabel label(&client_->recorder(), "httree.split");
  ++client_->mutable_stats().slow_path_ops;
  CachedNode leaf = nodes_[leaf_index];
  if (!leaf.leaf) {
    return FailedPrecondition("node is not a leaf");
  }
  if (leaf.depth + 1 >= kMaxDepth) {
    return FailedPrecondition("trie depth limit reached");
  }
  const FarAddr table = leaf.table;
  FarMutex lock = FarMutex::Attach(table + kTabLock);
  FMDS_RETURN_IF_ERROR(lock.Lock(*client_, MutexWaitStrategy::kPoll));
  FarAddr internal = kNullFarAddr;
  bool already_split = false;
  // The locked body may fail at any step; the unlock below must always run
  // or every later split on this table wedges.
  const Status body = SplitLeafLocked(leaf, hash, &internal, &already_split);
  const Status unlocked = lock.Unlock(*client_);
  FMDS_RETURN_IF_ERROR(body);
  FMDS_RETURN_IF_ERROR(unlocked);
  if (already_split) {
    // Someone else replaced this table; just resynchronize the cache.
    return RefreshPath(hash);
  }

  // Retire the old far objects (quarantined, not recycled immediately).
  (void)alloc_->Free(table, kTableHeaderBytes + buckets_per_table_ * kWordSize);
  (void)alloc_->Free(leaf.addr, kNodeBytes);

  // Splice the new subtree into the local cache.
  FMDS_ASSIGN_OR_RETURN(int32_t sub, FetchSubtree(internal));
  nodes_[leaf_index] = nodes_[sub];
  collision_estimate_.erase(table);
  ++op_stats_.splits;
  return OkStatus();
}

Status HtTree::SplitLeafLocked(const CachedNode& leaf, uint64_t hash,
                               FarAddr* internal_out, bool* already_split) {
  const FarAddr table = leaf.table;
  // Re-validate under the lock: someone may have split this table already.
  FMDS_ASSIGN_OR_RETURN(uint64_t state, client_->ReadWord(table + kTabState));
  if (state != 0) {
    *already_split = true;
    return OkStatus();
  }
  const uint64_t nb = buckets_per_table_;

  // Freeze every bucket: after the CAS, no mutation can land in this table
  // (their bucket CAS can never match the retired sentinel). The final
  // observed value is the frozen chain head. Batched: one bucket-array
  // read, one doorbell of nb CASes, then individual retries for the rare
  // buckets a racing insert changed in between.
  //
  // Pending pre-check: a freeze CAS must never predict a transaction's
  // lock record — succeeding would steal the bucket from its owner, whose
  // commit/rollback CAS is must-succeed by protocol. Items are immutable
  // and slots never reused, so a head that checks clean here stays clean;
  // a transaction preparing after the check changes the word, and the
  // freeze CAS then simply mispredicts into the retry loop below (which
  // waits pending heads out before retrying).
  std::vector<uint64_t> heads(nb);
  std::vector<Item> head_items(nb);
  for (int attempt = 0;; ++attempt) {
    FMDS_RETURN_IF_ERROR(client_->Read(
        BucketAddr(table, 0),
        std::as_writable_bytes(std::span<uint64_t>(heads))));
    std::vector<FarSeg> head_iov;
    head_iov.reserve(nb);
    for (uint64_t b = 0; b < nb; ++b) {
      head_iov.push_back(FarSeg{heads[b], kItemBytes});
    }
    FMDS_RETURN_IF_ERROR(client_->RGather(
        head_iov, std::as_writable_bytes(std::span<Item>(head_items))));
    bool pending = false;
    for (uint64_t b = 0; b < nb; ++b) {
      if ((head_items[b].meta & kFlagPending) != 0) {
        pending = true;
        break;
      }
    }
    if (!pending) {
      break;
    }
    StaleBackoff(attempt);
  }
  std::vector<FarClient::CasTarget> wave(nb);
  std::vector<uint64_t> observed(nb);
  for (uint64_t b = 0; b < nb; ++b) {
    wave[b] = FarClient::CasTarget{BucketAddr(table, b), heads[b],
                                   retired_sentinel_};
  }
  FMDS_RETURN_IF_ERROR(client_->CasBatch(wave, observed));
  for (uint64_t b = 0; b < nb; ++b) {
    uint64_t predicted = heads[b];
    uint64_t got = observed[b];
    int attempt = 0;
    while (got != predicted) {
      Item head_item;
      FMDS_RETURN_IF_ERROR(ReadItem(got, &head_item));
      if ((head_item.meta & kFlagPending) != 0) {
        // Owner-only word: wait for the transaction to commit or roll
        // back rather than CASing its lock record away.
        StaleBackoff(attempt++);
        FMDS_ASSIGN_OR_RETURN(got, client_->ReadWord(BucketAddr(table, b)));
        if (got == predicted) {
          // Rolled back to exactly the head we predicted — the earlier
          // CAS still failed, so retry it rather than exiting unfrozen.
          FMDS_ASSIGN_OR_RETURN(
              got, client_->CompareSwap(BucketAddr(table, b), predicted,
                                        retired_sentinel_));
        }
        continue;
      }
      predicted = got;
      FMDS_ASSIGN_OR_RETURN(
          got, client_->CompareSwap(BucketAddr(table, b), predicted,
                                    retired_sentinel_));
    }
    heads[b] = predicted;
  }
  FMDS_RETURN_IF_ERROR(client_->WriteWord(table + kTabState, 1));

  // Read the frozen chains level-by-level — one rgather per chain depth
  // instead of one round trip per item — and compact: first occurrence per
  // key wins; tombstones erase their key.
  std::vector<std::vector<Item>> bucket_items(nb);
  std::vector<std::pair<uint64_t, FarAddr>> frontier;  // (bucket, item addr)
  for (uint64_t b = 0; b < nb; ++b) {
    if (heads[b] != kNullFarAddr) {
      frontier.emplace_back(b, heads[b]);
    }
  }
  for (uint32_t depth_guard = 0; !frontier.empty() && depth_guard < 1u << 20;
       ++depth_guard) {
    std::vector<FarSeg> iov;
    iov.reserve(frontier.size());
    for (const auto& [b, addr] : frontier) {
      iov.push_back(FarSeg{addr, kItemBytes});
    }
    std::vector<Item> items(frontier.size());
    FMDS_RETURN_IF_ERROR(client_->RGather(
        iov, std::as_writable_bytes(std::span<Item>(items))));
    std::vector<std::pair<uint64_t, FarAddr>> next;
    for (size_t i = 0; i < frontier.size(); ++i) {
      const uint64_t b = frontier[i].first;
      const Item& item = items[i];
      if ((item.meta & kFlagSentinel) != 0) {
        continue;  // end of this chain
      }
      bucket_items[b].push_back(item);
      if (item.next != kNullFarAddr) {
        next.emplace_back(b, item.next);
      }
    }
    frontier = std::move(next);
  }
  std::vector<std::vector<Item>> child_chains[2];
  child_chains[0].assign(nb, {});
  child_chains[1].assign(nb, {});
  std::unordered_set<uint64_t> seen;
  for (uint64_t b = 0; b < nb; ++b) {
    seen.clear();
    for (const Item& item : bucket_items[b]) {
      if (seen.insert(item.key).second &&
          (item.meta & kFlagTombstone) == 0) {
        const uint64_t item_hash = Mix64(item.key);
        const uint32_t side = HashBit(item_hash, leaf.depth);
        child_chains[side][item_hash % nb].push_back(item);
      }
    }
  }

  // Build the two replacement tables and their trie nodes.
  const uint64_t new_version = leaf.version + 1;
  FMDS_ASSIGN_OR_RETURN(FarAddr t0, BuildTable(new_version, child_chains[0]));
  FMDS_ASSIGN_OR_RETURN(FarAddr t1, BuildTable(new_version, child_chains[1]));
  FMDS_ASSIGN_OR_RETURN(FarAddr l0,
                        BuildLeafNode(leaf.depth + 1, t0, new_version));
  FMDS_ASSIGN_OR_RETURN(FarAddr l1,
                        BuildLeafNode(leaf.depth + 1, t1, new_version));
  FMDS_ASSIGN_OR_RETURN(FarAddr internal,
                        alloc_->Allocate(kNodeBytes, options_.placement));
  NodeRec internal_rec{static_cast<uint64_t>(leaf.depth) << 8, l0, l1, 0};
  FMDS_RETURN_IF_ERROR(client_->Write(internal, AsConstBytes(internal_rec)));

  // Republish: walk the far trie to the cell holding this leaf's address
  // and swing it to the new internal node. We hold the table lock, so no
  // one else can replace this particular leaf.
  FarAddr cell = header_ + kHdrRoot;
  for (uint32_t level = 0; level <= kMaxDepth; ++level) {
    FMDS_ASSIGN_OR_RETURN(FarAddr cur, client_->ReadWord(cell));
    if (cur == leaf.addr) {
      break;
    }
    NodeRec rec;
    FMDS_RETURN_IF_ERROR(client_->Read(cur, AsBytes(rec)));
    if (rec.leaf()) {
      return Internal("split lost the trie path");
    }
    cell = cur + (HashBit(hash, rec.depth()) == 0 ? kNodeLeft : kNodeRight);
  }
  FMDS_ASSIGN_OR_RETURN(uint64_t swung,
                        client_->CompareSwap(cell, leaf.addr, internal));
  if (swung != leaf.addr) {
    return Internal("trie republish CAS failed");
  }
  FMDS_RETURN_IF_ERROR(client_->FetchAdd(header_ + kHdrSplits, 1).status());
  FMDS_RETURN_IF_ERROR(
      client_->FetchAdd(header_ + kHdrTableCount, 1).status());
  *internal_out = internal;
  return OkStatus();
}

namespace {
// Distinguishes a flusher client's id from its application client's.
constexpr uint64_t kWbClientIdBit = 1ull << 62;

// Publishes write-behind batches through a flusher-owned FarClient and
// Attach'd handle to the same far map, then refills the application
// handle's NearCache from the per-key outcomes. Lives entirely on the
// flusher thread; the only cross-thread touch is the (internally locked)
// NearCache External calls.
class HtTreeWbPublisher : public WriteBehindEngine::Publisher {
 public:
  HtTreeWbPublisher(std::unique_ptr<FarClient> client, HtTree map,
                    NearCache* app_cache)
      : client_(std::move(client)),
        map_(std::move(map)),
        app_cache_(app_cache) {}

  FarClient* client() override { return client_.get(); }

  Status Publish(const WriteBehindEngine::Batch& batch) override {
    return map_.MultiWrite(batch.keys, batch.values, batch.tombstones,
                           &outcomes_);
  }

  void RefillCaches(const WriteBehindEngine::Batch& batch) override {
    if (app_cache_ == nullptr) {
      return;
    }
    for (size_t i = 0; i < batch.keys.size(); ++i) {
      if (batch.tombstones[i] != 0 || !outcomes_[i].refillable) {
        // Tombstones and fallback publishes: drop the entry and let the
        // bucket notification (already in the app channel by now) rule.
        app_cache_->InvalidateExternal(batch.keys[i]);
      } else {
        // Fast-path store: the CAS left the bucket word equal to
        // outcomes_[i].head, so a resident entry refills in place and the
        // writer's next read costs zero far accesses.
        app_cache_->RefillExternal(batch.keys[i],
                                   AsConstBytes(batch.values[i]),
                                   outcomes_[i].bucket, kWordSize,
                                   outcomes_[i].head);
      }
    }
  }

 private:
  std::unique_ptr<FarClient> client_;
  HtTree map_;
  NearCache* app_cache_;
  std::vector<HtTree::WriteOutcome> outcomes_;
};
}  // namespace

Status HtTree::EnableWriteBehind(const WriteBehindOptions& wb_options) {
  if (wb_ != nullptr) {
    return FailedPrecondition("write-behind already enabled");
  }
  // The flusher owns a separate client (so publish round trips land on its
  // clock, not this thread's) and a separate handle (head hints on for CAS
  // prediction, near cache off — the app handle's cache is refilled via
  // the External calls instead).
  auto flusher_client = std::make_unique<FarClient>(
      client_->fabric(), client_->id() | kWbClientIdBit,
      wb_options.flusher_client);
  Options fopt = options_;
  fopt.cache = NearCacheOptions{};
  FMDS_ASSIGN_OR_RETURN(
      HtTree handle, Attach(flusher_client.get(), alloc_, header_, fopt));
  auto publisher = std::make_unique<HtTreeWbPublisher>(
      std::move(flusher_client), std::move(handle), near_cache_.get());
  wb_ = std::make_unique<WriteBehindEngine>(client_, std::move(publisher),
                                            wb_options);
  return OkStatus();
}

Status HtTree::FlushBarrier() {
  if (wb_ == nullptr) {
    return OkStatus();
  }
  ScopedOpLabel label(&client_->recorder(), "httree.flush_barrier");
  return wb_->FlushBarrier();
}

Status HtTree::EnableSplitNotifications(DeliveryPolicy policy) {
  NotifySpec spec;
  spec.mode = NotifyMode::kOnWrite;
  spec.addr = header_ + kHdrSplits;
  spec.len = kWordSize;
  spec.policy = policy;
  FMDS_ASSIGN_OR_RETURN(split_sub_, client_->Subscribe(spec));
  return OkStatus();
}

Result<bool> HtTree::PollSplitNotifications() {
  bool refresh = false;
  while (auto event = client_->PollNotification()) {
    if (event->kind == NotifyEventKind::kLossWarning ||
        event->sub_id == split_sub_) {
      refresh = true;
    }
  }
  if (refresh) {
    FMDS_RETURN_IF_ERROR(RefreshCache());
  }
  return refresh;
}

uint64_t HtTree::cached_tables() const {
  uint64_t leaves = 0;
  for (const CachedNode& node : nodes_) {
    if (node.leaf && node.table != kNullFarAddr) {
      ++leaves;
    }
  }
  return leaves;
}

uint64_t HtTree::cache_bytes() const {
  // The §5.2 geometry: the mirrored trie is what the client must cache to
  // get 1-far-access lookups.
  return nodes_.size() * sizeof(CachedNode);
}

uint64_t HtTree::hint_cache_bytes() const {
  // Hints are a pure optimization (mispredicted CASes self-correct); the
  // CLOCK ring bounds them at kMaxHeadHints entries, evicting cold buckets
  // one at a time instead of the old wholesale clear.
  return head_hints_.size() * (sizeof(FarAddr) * 2 + sizeof(void*)) +
         collision_estimate_.size() * (sizeof(FarAddr) + sizeof(uint64_t));
}

}  // namespace fmds
