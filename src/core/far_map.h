// FarMap: the unified key-value interface every far-memory map in this
// repo speaks — HtTree (§5.2), ShardedMap (§7 scale-out), and, via the
// FarMapRef adapter, the baseline hash tables. Harness code (the overload
// scenario suite, shadow-equivalence tests, benches) programs against this
// interface and swaps structures without touching the driver.
//
// The interface is the common semantic core, not the union of features:
//   - Get/Put/Remove: point ops on uint64 keys/values; Get returns
//     kNotFound for absent keys. Under congestion (DESIGN.md §14) any verb
//     may surface kOverloaded when the client's retry budget is exhausted.
//   - MultiGet/MultiPut: batched ops with per-key Get/Put semantics. The
//     default implementations loop the point ops (correct everywhere); maps
//     with doorbell wave engines override them with the batched fast path.
//   - FlushBarrier: publishes staged asynchronous writes (write-behind);
//     a no-op default for maps without staging.
// Structure-specific surface (routing arms, txn hooks, wave engines) stays
// on the concrete classes; callers needing it downcast explicitly.
#ifndef FMDS_SRC_CORE_FAR_MAP_H_
#define FMDS_SRC_CORE_FAR_MAP_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/status.h"

namespace fmds {

// Portable per-handle counters: the common denominator of the concrete
// maps' richer stats. Fields a structure does not track stay zero.
struct FarMapStats {
  uint64_t gets = 0;
  uint64_t puts = 0;
  uint64_t removes = 0;
  uint64_t chain_hops = 0;
  uint64_t stale_refreshes = 0;
  uint64_t cas_retries = 0;
  uint64_t splits = 0;
};

class FarMap {
 public:
  virtual ~FarMap() = default;

  virtual Result<uint64_t> Get(uint64_t key) = 0;
  virtual Status Put(uint64_t key, uint64_t value) = 0;
  virtual Status Remove(uint64_t key) = 0;

  // Batched lookups; default = sequential Gets (one round trip per key).
  virtual std::vector<Result<uint64_t>> MultiGet(
      std::span<const uint64_t> keys) {
    std::vector<Result<uint64_t>> results;
    results.reserve(keys.size());
    for (uint64_t key : keys) {
      results.push_back(Get(key));
    }
    return results;
  }

  // Batched stores; default = sequential Puts, first error wins.
  virtual Status MultiPut(std::span<const uint64_t> keys,
                          std::span<const uint64_t> values) {
    if (keys.size() != values.size()) {
      return InvalidArgument("multiput keys/values size mismatch");
    }
    Status first = OkStatus();
    for (size_t i = 0; i < keys.size(); ++i) {
      Status st = Put(keys[i], values[i]);
      if (first.ok() && !st.ok()) {
        first = st;
      }
    }
    return first;
  }

  // Publishes staged asynchronous writes; no-op without write-behind.
  virtual Status FlushBarrier() { return OkStatus(); }

  // Portable counters (see FarMapStats).
  virtual FarMapStats map_stats() const { return {}; }

  // Structure name for reports ("ht_tree", "sharded_map", ...).
  virtual const char* kind() const = 0;

 protected:
  FarMap() = default;
  FarMap(const FarMap&) = default;
  FarMap& operator=(const FarMap&) = default;
  FarMap(FarMap&&) = default;
  FarMap& operator=(FarMap&&) = default;
};

// Non-owning adapter: presents any map-shaped M (the baseline hash tables)
// as a FarMap. Uses whatever batched/flush surface M has and falls back to
// the FarMap defaults for the rest, so a baseline without MultiPut still
// slots into a generic harness.
template <typename M>
class FarMapRef final : public FarMap {
 public:
  explicit FarMapRef(M* map, const char* kind_name) : map_(map), kind_(kind_name) {}

  Result<uint64_t> Get(uint64_t key) override { return map_->Get(key); }
  Status Put(uint64_t key, uint64_t value) override {
    return map_->Put(key, value);
  }
  Status Remove(uint64_t key) override { return map_->Remove(key); }

  std::vector<Result<uint64_t>> MultiGet(
      std::span<const uint64_t> keys) override {
    if constexpr (requires { map_->MultiGet(keys); }) {
      return map_->MultiGet(keys);
    } else {
      return FarMap::MultiGet(keys);
    }
  }

  Status MultiPut(std::span<const uint64_t> keys,
                  std::span<const uint64_t> values) override {
    if constexpr (requires { map_->MultiPut(keys, values); }) {
      return map_->MultiPut(keys, values);
    } else {
      return FarMap::MultiPut(keys, values);
    }
  }

  Status FlushBarrier() override {
    if constexpr (requires { map_->FlushBarrier(); }) {
      return map_->FlushBarrier();
    } else {
      return OkStatus();
    }
  }

  FarMapStats map_stats() const override {
    if constexpr (requires { map_->map_stats(); }) {
      return map_->map_stats();
    } else {
      return {};
    }
  }

  const char* kind() const override { return kind_; }

  M* get() { return map_; }

 private:
  M* map_;
  const char* kind_;
};

}  // namespace fmds

#endif  // FMDS_SRC_CORE_FAR_MAP_H_
