// Far-memory counter (§5.1): "implemented using loads, stores, and atomics
// with immediate addressing". One word in far memory; every operation is a
// single far access. Consumers can subscribe to changes (notify0) or to a
// target value (notifye) instead of polling.
#ifndef FMDS_SRC_CORE_FAR_COUNTER_H_
#define FMDS_SRC_CORE_FAR_COUNTER_H_

#include "src/alloc/far_allocator.h"
#include "src/fabric/far_client.h"

namespace fmds {

class FarCounter {
 public:
  // Allocates and initializes the counter (one far write).
  static Result<FarCounter> Create(FarClient& client, FarAllocator& alloc,
                                   uint64_t initial = 0) {
    FMDS_ASSIGN_OR_RETURN(FarAddr addr, alloc.Allocate(kWordSize));
    FMDS_RETURN_IF_ERROR(client.WriteWord(addr, initial));
    return FarCounter(addr);
  }

  // Binds to an existing counter created elsewhere.
  static FarCounter Attach(FarAddr addr) { return FarCounter(addr); }

  FarAddr addr() const { return addr_; }

  Result<uint64_t> Get(FarClient& client) const {
    return client.ReadWord(addr_);
  }
  Status Set(FarClient& client, uint64_t value) const {
    return client.WriteWord(addr_, value);
  }
  Result<uint64_t> FetchAdd(FarClient& client, uint64_t delta) const {
    return client.FetchAdd(addr_, delta);
  }
  Status Add(FarClient& client, uint64_t delta) const {
    return client.FetchAdd(addr_, delta).status();
  }

  // notify0 on the counter word.
  Result<SubId> SubscribeChanges(
      FarClient& client,
      DeliveryPolicy policy = DeliveryPolicy::Reliable()) const {
    NotifySpec spec;
    spec.mode = NotifyMode::kOnWrite;
    spec.addr = addr_;
    spec.len = kWordSize;
    spec.policy = policy;
    return client.Subscribe(spec);
  }

  // notifye: fires when the counter reaches `target`.
  Result<SubId> SubscribeEquals(
      FarClient& client, uint64_t target,
      DeliveryPolicy policy = DeliveryPolicy::Reliable()) const {
    NotifySpec spec;
    spec.mode = NotifyMode::kOnEqual;
    spec.addr = addr_;
    spec.len = kWordSize;
    spec.value = target;
    spec.policy = policy;
    return client.Subscribe(spec);
  }

 private:
  explicit FarCounter(FarAddr addr) : addr_(addr) {}
  FarAddr addr_;
};

}  // namespace fmds

#endif  // FMDS_SRC_CORE_FAR_COUNTER_H_
