// Variable-size values over the HT-tree (§5.2 stores fixed words; §7.1
// mentions "very large keys or values" placed data-structure-aware).
//
// HtBlobStore maps uint64 keys to byte strings: the HT-tree value is a far
// pointer to a length-prefixed blob. Reading costs the map's one far access
// plus ONE blob read (the item tells us the address; the length prefix
// rides in the same read via a conservative first fetch, or the caller
// passes a size hint). Blobs are immutable — an overwrite allocates a new
// blob and republishes the pointer through the map's usual bucket CAS, so
// concurrent readers always see a complete old or new blob, never a torn
// one. Old blobs are quarantined via the allocator's epochs.
#ifndef FMDS_SRC_CORE_BLOB_STORE_H_
#define FMDS_SRC_CORE_BLOB_STORE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/cache/near_cache.h"
#include "src/core/sharded_map.h"

namespace fmds {

class HtBlobStore {
 public:
  // First fetch size when the caller has no size hint: covers the length
  // prefix plus typical small values in one far access.
  static constexpr uint64_t kInlineFetch = 256;

  // The index is a ShardedMap; the plain Create makes a single unpinned
  // shard (the pre-scale-out behavior), CreateSharded spreads the index
  // AND the blobs over the nodes (each blob lands on its key's shard node,
  // so batched reads fan out across nodes in one doorbell, §7).
  static Result<HtBlobStore> Create(FarClient* client, FarAllocator* alloc,
                                    HtTree::Options options = HtTree::Options());
  static Result<HtBlobStore> CreateSharded(FarClient* client,
                                           FarAllocator* alloc,
                                           ShardedMap::Options options);
  static Result<HtBlobStore> Attach(FarClient* client, FarAllocator* alloc,
                                    FarAddr header);

  FarAddr header() const { return map_.directory(); }

  // Writes the blob (1 far access) + the map store (2) = 3 far accesses.
  Status Put(uint64_t key, std::span<const std::byte> value);
  // Map lookup (1) + blob read (1, or 2 when the value exceeds
  // kInlineFetch and no hint was given) = 2-3 far accesses.
  Result<std::vector<std::byte>> Get(uint64_t key, uint64_t size_hint = 0);
  Status Remove(uint64_t key);

  // Batched multi-key read: map lookups ride one batched wave (HtTree
  // MultiGet), then every blob's metadata+payload first fetch shares a
  // second doorbell, with a third batched wave for tails beyond the
  // speculative fetch. k reads cost ~3 batched round trips instead of
  // 2-3 each. Requires no other async ops pending on the client.
  std::vector<Result<std::vector<std::byte>>> MultiGet(
      std::span<const uint64_t> keys, uint64_t size_hint = 0);

  ShardedMap& map() { return map_; }

  // Chunk-granular NearCache: caches each blob's first fetch (length word +
  // speculative payload) keyed by blob address, so a hot blob's Get costs
  // only the map lookup — or zero far accesses when the map's own cache
  // (options.cache on the index) hits too. Coherence: blobs are immutable,
  // so the watched length word only changes when the allocator recycles the
  // region for a new blob — whose write fires the invalidation. A Get whose
  // effective first-fetch size differs from the cached chunk (different
  // size_hint) misses and refills at the new size.
  void EnableChunkCache(NearCacheOptions options);
  NearCache* chunk_cache() { return chunk_cache_.get(); }
  const NearCache* chunk_cache() const { return chunk_cache_.get(); }

 private:
  HtBlobStore(ShardedMap map, FarClient* client, FarAllocator* alloc)
      : map_(std::move(map)), client_(client), alloc_(alloc) {}

  ShardedMap map_;
  FarClient* client_;
  FarAllocator* alloc_;
  std::unique_ptr<NearCache> chunk_cache_;
};

}  // namespace fmds

#endif  // FMDS_SRC_CORE_BLOB_STORE_H_
