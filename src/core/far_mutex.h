// Far-memory mutex (§5.1): "Mutexes use a far memory location initialized
// to 0. Clients acquire the mutex using a compare-and-swap. If the CAS
// fails, equality notifications against 0 (notifye) indicate when the mutex
// is free."
//
// Two waiting strategies are provided so E10 can compare them:
//   * kNotify — subscribe notifye(lock, 0) and block until the holder's
//     release write fires it (few far accesses under contention);
//   * kPoll — classic CAS spinning (one far access per retry).
#ifndef FMDS_SRC_CORE_FAR_MUTEX_H_
#define FMDS_SRC_CORE_FAR_MUTEX_H_

#include "src/alloc/far_allocator.h"
#include "src/fabric/far_client.h"

namespace fmds {

enum class MutexWaitStrategy : uint8_t { kNotify = 0, kPoll = 1 };

class FarMutex {
 public:
  static Result<FarMutex> Create(FarClient& client, FarAllocator& alloc) {
    FMDS_ASSIGN_OR_RETURN(FarAddr addr, alloc.Allocate(kWordSize));
    FMDS_RETURN_IF_ERROR(client.WriteWord(addr, 0));
    return FarMutex(addr);
  }

  static FarMutex Attach(FarAddr addr) { return FarMutex(addr); }

  FarAddr addr() const { return addr_; }

  // Acquires the mutex for `client`; blocks (bounded, ~timeout) while held
  // elsewhere. Returns kUnavailable on timeout.
  Status Lock(FarClient& client,
              MutexWaitStrategy strategy = MutexWaitStrategy::kNotify,
              uint64_t timeout_ms = 5000) const;

  // Single CAS attempt: true if acquired.
  Result<bool> TryLock(FarClient& client) const;

  // Releases; undefined if the caller does not hold the mutex.
  Status Unlock(FarClient& client) const;

 private:
  explicit FarMutex(FarAddr addr) : addr_(addr) {}

  // The stored owner tag: client id + 1 so id 0 is distinguishable from
  // "free" (0).
  static uint64_t OwnerTag(const FarClient& client) {
    return client.id() + 1;
  }

  FarAddr addr_;
};

// RAII guard for scoped acquisition in application code.
class FarMutexGuard {
 public:
  FarMutexGuard(const FarMutex& mutex, FarClient& client,
                MutexWaitStrategy strategy = MutexWaitStrategy::kNotify)
      : mutex_(mutex), client_(client) {
    status_ = mutex_.Lock(client_, strategy);
  }
  ~FarMutexGuard() {
    if (status_.ok()) {
      (void)mutex_.Unlock(client_);
    }
  }
  FarMutexGuard(const FarMutexGuard&) = delete;
  FarMutexGuard& operator=(const FarMutexGuard&) = delete;

  const Status& status() const { return status_; }

 private:
  const FarMutex& mutex_;
  FarClient& client_;
  Status status_;
};

}  // namespace fmds

#endif  // FMDS_SRC_CORE_FAR_MUTEX_H_
