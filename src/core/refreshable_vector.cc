#include "src/core/refreshable_vector.h"

#include <algorithm>

#include "src/common/bytes.h"

namespace fmds {

RefreshableVector::RefreshableVector(FarClient* client, FarAddr header)
    : client_(client), header_(header) {}

Result<RefreshableVector> RefreshableVector::Create(FarClient* client,
                                                    FarAllocator* alloc,
                                                    Options options) {
  if (options.size == 0 || options.group_size == 0) {
    return Status(StatusCode::kInvalidArgument, "bad refreshable options");
  }
  const uint64_t num_groups =
      (options.size + options.group_size - 1) / options.group_size;
  FMDS_ASSIGN_OR_RETURN(FarAddr header, alloc->Allocate(kHeaderBytes));
  FMDS_ASSIGN_OR_RETURN(FarAddr data,
                        alloc->Allocate(options.size * kWordSize));
  FMDS_ASSIGN_OR_RETURN(FarAddr versions,
                        alloc->Allocate(num_groups * kWordSize));

  std::vector<uint64_t> zeros(options.size, 0);
  FMDS_RETURN_IF_ERROR(client->Write(
      data, std::as_bytes(std::span<const uint64_t>(zeros))));
  zeros.assign(num_groups, 0);
  FMDS_RETURN_IF_ERROR(client->Write(
      versions, std::as_bytes(std::span<const uint64_t>(zeros))));

  uint64_t hdr[8] = {};
  hdr[kHdrData / 8] = data;
  hdr[kHdrVersions / 8] = versions;
  hdr[kHdrSize / 8] = options.size;
  hdr[kHdrGroupSize / 8] = options.group_size;
  hdr[kHdrNumGroups / 8] = num_groups;
  FMDS_RETURN_IF_ERROR(client->Write(
      header, std::as_bytes(std::span<const uint64_t>(hdr))));

  RefreshableVector vec(client, header);
  vec.data_ = data;
  vec.versions_ = versions;
  vec.size_ = options.size;
  vec.group_size_ = options.group_size;
  vec.num_groups_ = num_groups;
  vec.writer_versions_.assign(num_groups, 0);
  return vec;
}

Result<RefreshableVector> RefreshableVector::Attach(FarClient* client,
                                                    FarAddr header) {
  uint64_t hdr[8];
  FMDS_RETURN_IF_ERROR(client->Read(
      header, std::as_writable_bytes(std::span<uint64_t>(hdr))));
  RefreshableVector vec(client, header);
  vec.data_ = hdr[kHdrData / 8];
  vec.versions_ = hdr[kHdrVersions / 8];
  vec.size_ = hdr[kHdrSize / 8];
  vec.group_size_ = hdr[kHdrGroupSize / 8];
  vec.num_groups_ = hdr[kHdrNumGroups / 8];
  vec.writer_versions_.assign(vec.num_groups_, 0);
  return vec;
}

Status RefreshableVector::Update(uint64_t i, uint64_t value) {
  if (i >= size_) {
    return OutOfRange("refreshable index");
  }
  // Data first, then the version bump: a reader that observes the new
  // version is guaranteed to gather the new datum.
  FMDS_RETURN_IF_ERROR(client_->WriteWord(ElementAddr(i), value));
  return client_->FetchAdd(VersionAddr(GroupOf(i)), 1).status();
}

Status RefreshableVector::UpdateScatter(uint64_t i, uint64_t value) {
  if (i >= size_) {
    return OutOfRange("refreshable index");
  }
  const uint64_t g = GroupOf(i);
  const uint64_t next_version = ++writer_versions_[g];
  client_->AccountNear(1);
  const uint64_t payload[2] = {value, next_version};
  const FarSeg iov[2] = {FarSeg{ElementAddr(i), kWordSize},
                         FarSeg{VersionAddr(g), kWordSize}};
  return client_->WScatter(
      iov, std::as_bytes(std::span<const uint64_t>(payload)));
}

Status RefreshableVector::SubscribeVersions() {
  // One notify0 subscription per page-sized chunk of the version region
  // (a hardware subscription must not cross a page, §4.3).
  const uint64_t bytes = num_groups_ * kWordSize;
  uint64_t offset = 0;
  while (offset < bytes) {
    const FarAddr addr = versions_ + offset;
    const uint64_t page_left = kPageSize - (addr % kPageSize);
    const uint64_t len = std::min(bytes - offset, page_left);
    NotifySpec spec;
    spec.mode = NotifyMode::kOnWrite;
    spec.addr = addr;
    spec.len = len;
    spec.policy.coalesce = false;  // every group invalidation matters
    FMDS_ASSIGN_OR_RETURN(SubId id, client_->Subscribe(spec));
    version_subs_.push_back(id);
    offset += len;
  }
  notify_active_ = true;
  refresh_stats_.notify_active = true;
  return OkStatus();
}

Status RefreshableVector::UnsubscribeVersions() {
  for (SubId id : version_subs_) {
    FMDS_RETURN_IF_ERROR(client_->Unsubscribe(id));
  }
  version_subs_.clear();
  notify_active_ = false;
  refresh_stats_.notify_active = false;
  return OkStatus();
}

Status RefreshableVector::EnableReader(RefreshMode mode) {
  mode_ = mode;
  mirror_.assign(size_, 0);
  mirror_versions_.assign(num_groups_, 0);
  // Initial full pull: versions first would race ongoing writers; pulling
  // versions *before* data keeps the mirror conservative (any concurrent
  // update leaves a version ahead of the mirror and re-pulls next refresh).
  FMDS_RETURN_IF_ERROR(client_->Read(
      versions_,
      std::as_writable_bytes(std::span<uint64_t>(mirror_versions_))));
  FMDS_RETURN_IF_ERROR(client_->Read(
      data_, std::as_writable_bytes(std::span<uint64_t>(mirror_))));
  reader_enabled_ = true;
  if (mode == RefreshMode::kNotify) {
    FMDS_RETURN_IF_ERROR(SubscribeVersions());
  }
  return OkStatus();
}

Result<uint64_t> RefreshableVector::Get(uint64_t i) const {
  if (!reader_enabled_) {
    return Status(StatusCode::kFailedPrecondition, "reader not enabled");
  }
  if (i >= size_) {
    return Status(StatusCode::kOutOfRange, "refreshable index");
  }
  client_->AccountNear(1);
  return mirror_[i];
}

Status RefreshableVector::PullGroups(const std::vector<uint64_t>& groups) {
  if (groups.empty()) {
    return OkStatus();
  }
  // Gather version words and group payloads in one round trip each way:
  // versions travel with the data so the mirror's version reflects what was
  // actually gathered.
  std::vector<FarSeg> iov;
  uint64_t total_words = 0;
  for (uint64_t g : groups) {
    iov.push_back(FarSeg{VersionAddr(g), kWordSize});
    iov.push_back(FarSeg{ElementAddr(g * group_size_),
                         GroupLen(g) * kWordSize});
    total_words += 1 + GroupLen(g);
  }
  std::vector<uint64_t> buf(total_words);
  FMDS_RETURN_IF_ERROR(client_->RGather(
      iov, std::as_writable_bytes(std::span<uint64_t>(buf))));
  size_t cursor = 0;
  for (uint64_t g : groups) {
    mirror_versions_[g] = buf[cursor++];
    const uint64_t len = GroupLen(g);
    std::copy_n(buf.begin() + cursor, len,
                mirror_.begin() + g * group_size_);
    cursor += len;
  }
  refresh_stats_.groups_refreshed += groups.size();
  return OkStatus();
}

Status RefreshableVector::RefreshByPolling() {
  ++refresh_stats_.full_polls;
  std::vector<uint64_t> current(num_groups_);
  FMDS_RETURN_IF_ERROR(client_->Read(
      versions_, std::as_writable_bytes(std::span<uint64_t>(current))));
  std::vector<uint64_t> changed;
  for (uint64_t g = 0; g < num_groups_; ++g) {
    if (current[g] != mirror_versions_[g]) {
      changed.push_back(g);
    }
  }
  client_->AccountNear(num_groups_ / 8 + 1);  // local diff scan
  FMDS_RETURN_IF_ERROR(PullGroups(changed));
  // kAuto: quiet periods shift the policy to notifications.
  if (mode_ == RefreshMode::kAuto) {
    const double fraction = static_cast<double>(changed.size()) /
                            static_cast<double>(num_groups_);
    quiet_refreshes_ = fraction <= kLowWaterFraction ? quiet_refreshes_ + 1
                                                     : 0;
    if (quiet_refreshes_ >= kQuietRefreshesToNotify && !notify_active_) {
      FMDS_RETURN_IF_ERROR(SubscribeVersions());
      ++refresh_stats_.mode_switches;
    }
  }
  return OkStatus();
}

Status RefreshableVector::RefreshByNotifications() {
  bool lost = false;
  std::vector<uint64_t> dirty;
  while (auto event = client_->PollNotification()) {
    if (event->kind == NotifyEventKind::kLossWarning) {
      lost = true;
      continue;
    }
    const uint64_t first = (event->addr - versions_) / kWordSize;
    const uint64_t last =
        (event->addr + event->len - 1 - versions_) / kWordSize;
    for (uint64_t g = first; g <= last && g < num_groups_; ++g) {
      dirty.push_back(g);
    }
  }
  if (lost) {
    // Best-effort delivery dropped events: fall back to a full version poll
    // this round (correctness never depends on notifications).
    ++refresh_stats_.loss_fallbacks;
    return RefreshByPolling();
  }
  std::sort(dirty.begin(), dirty.end());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
  FMDS_RETURN_IF_ERROR(PullGroups(dirty));
  if (mode_ == RefreshMode::kAuto && notify_active_) {
    const double fraction = static_cast<double>(dirty.size()) /
                            static_cast<double>(num_groups_);
    if (fraction >= kHighWaterFraction) {
      // Update storm: notifications cost more than polling; switch back.
      FMDS_RETURN_IF_ERROR(UnsubscribeVersions());
      quiet_refreshes_ = 0;
      ++refresh_stats_.mode_switches;
    }
  }
  return OkStatus();
}

Status RefreshableVector::Refresh() {
  if (!reader_enabled_) {
    return FailedPrecondition("reader not enabled");
  }
  ++refresh_stats_.refreshes;
  if (notify_active_) {
    return RefreshByNotifications();
  }
  return RefreshByPolling();
}

}  // namespace fmds
