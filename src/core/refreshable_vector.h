// Refreshable vector (§5.4): a client-cached vector that may serve stale
// reads but guarantees freshness after Refresh() — the parameter-server
// abstraction ("workers read parameters from the vector and refresh
// periodically to provide bounded staleness").
//
// Far layout: element array + a contiguous per-group version region.
// A writer bumps the group version with every element update; readers keep
// a full local mirror and refresh it by:
//   * kPollVersions — read the version region (1 far access), diff against
//     the mirror, rgather exactly the changed groups (1 more far access);
//   * kNotify — subscribe notify0 to the version region; refreshes consult
//     the notification channel (near accesses only) and rgather just the
//     invalidated groups: ZERO far accesses when nothing changed;
//   * kAuto — the paper's dynamic policy: start polling while the update
//     rate is high, shift to notifications as updates slow (an iterative ML
//     workload converging), and shift back if the rate picks up.
// Notification loss (best-effort delivery, §7.2) degrades kNotify to a full
// version poll on the next refresh — never to incorrect data.
#ifndef FMDS_SRC_CORE_REFRESHABLE_VECTOR_H_
#define FMDS_SRC_CORE_REFRESHABLE_VECTOR_H_

#include <cstdint>
#include <vector>

#include "src/alloc/far_allocator.h"
#include "src/fabric/far_client.h"

namespace fmds {

class RefreshableVector {
 public:
  struct Options {
    uint64_t size = 0;        // elements (uint64 words)
    uint64_t group_size = 64; // elements per version group
  };

  enum class RefreshMode : uint8_t { kPollVersions = 0, kNotify = 1, kAuto = 2 };

  struct RefreshStats {
    uint64_t refreshes = 0;
    uint64_t groups_refreshed = 0;
    uint64_t mode_switches = 0;
    uint64_t full_polls = 0;       // version-region reads
    uint64_t loss_fallbacks = 0;   // notify losses degraded to a full poll
    bool notify_active = false;
  };

  static Result<RefreshableVector> Create(FarClient* client,
                                          FarAllocator* alloc,
                                          Options options);
  static Result<RefreshableVector> Attach(FarClient* client, FarAddr header);

  FarAddr header() const { return header_; }
  uint64_t size() const { return size_; }
  uint64_t num_groups() const { return num_groups_; }

  // ---- Writer side ----
  // Multi-writer safe: element write + atomic version bump (2 far accesses).
  Status Update(uint64_t i, uint64_t value);
  // Single-writer optimization: element + absolute version in one wscatter
  // (1 far access, 2 messages).
  Status UpdateScatter(uint64_t i, uint64_t value);

  // ---- Reader side ----
  // Builds the local mirror (one bulk read) and arms the chosen policy.
  Status EnableReader(RefreshMode mode);
  // Serves from the local mirror; may be stale until the next Refresh().
  Result<uint64_t> Get(uint64_t i) const;
  // Bounded-staleness anchor: after Refresh() returns, the mirror reflects
  // every update that completed before the call.
  Status Refresh();

  const RefreshStats& refresh_stats() const { return refresh_stats_; }

 private:
  // Header words.
  static constexpr uint64_t kHdrData = 0;
  static constexpr uint64_t kHdrVersions = 8;
  static constexpr uint64_t kHdrSize = 16;
  static constexpr uint64_t kHdrGroupSize = 24;
  static constexpr uint64_t kHdrNumGroups = 32;
  static constexpr uint64_t kHeaderBytes = 64;

  // kAuto hysteresis: switch to notifications after this many consecutive
  // refreshes below the low-water change fraction; back to polling above
  // the high-water fraction.
  static constexpr int kQuietRefreshesToNotify = 3;
  static constexpr double kLowWaterFraction = 0.05;
  static constexpr double kHighWaterFraction = 0.25;

  RefreshableVector(FarClient* client, FarAddr header);

  FarAddr ElementAddr(uint64_t i) const { return data_ + i * kWordSize; }
  FarAddr VersionAddr(uint64_t g) const { return versions_ + g * kWordSize; }
  uint64_t GroupOf(uint64_t i) const { return i / group_size_; }
  uint64_t GroupLen(uint64_t g) const {
    const uint64_t first = g * group_size_;
    return std::min(group_size_, size_ - first);
  }

  Status SubscribeVersions();
  Status UnsubscribeVersions();
  // Pulls the listed groups' data (and versions) with one rgather.
  Status PullGroups(const std::vector<uint64_t>& groups);
  Status RefreshByPolling();
  Status RefreshByNotifications();

  FarClient* client_;
  FarAddr header_;
  FarAddr data_ = kNullFarAddr;
  FarAddr versions_ = kNullFarAddr;
  uint64_t size_ = 0;
  uint64_t group_size_ = 0;
  uint64_t num_groups_ = 0;

  // Writer-side absolute version cache (UpdateScatter).
  std::vector<uint64_t> writer_versions_;

  // Reader-side mirror.
  bool reader_enabled_ = false;
  RefreshMode mode_ = RefreshMode::kPollVersions;
  bool notify_active_ = false;
  std::vector<uint64_t> mirror_;
  std::vector<uint64_t> mirror_versions_;
  std::vector<SubId> version_subs_;
  int quiet_refreshes_ = 0;
  RefreshStats refresh_stats_;
};

}  // namespace fmds

#endif  // FMDS_SRC_CORE_REFRESHABLE_VECTOR_H_
