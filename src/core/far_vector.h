// Far-memory vector (§5.1): a fixed-capacity array of trivially copyable
// elements behind a far base pointer.
//
// Two access modes, both one far access per element operation:
//   * indirect (load1/store1): the hardware dereferences the base pointer
//     and indexes in a single instruction — clients need not know where the
//     storage lives, and the owner can swap the storage atomically (the
//     monitoring case study's circular window buffer relies on this);
//   * direct: the client caches the base pointer once and reads/writes the
//     element address itself.
//
// Clients may subscribe to element ranges (notify0 / notify0d) or to an
// element reaching a value (notifye).
#ifndef FMDS_SRC_CORE_FAR_VECTOR_H_
#define FMDS_SRC_CORE_FAR_VECTOR_H_

#include <array>

#include "src/alloc/far_allocator.h"
#include "src/common/bytes.h"
#include "src/fabric/far_client.h"

namespace fmds {

template <typename T>
class FarVector {
  static_assert(std::is_trivially_copyable_v<T>);
  static_assert(sizeof(T) % kWordSize == 0,
                "element size must be a multiple of the fabric word");

 public:
  // Header layout: [0] base pointer, [8] capacity.
  static constexpr uint64_t kHeaderBytes = 2 * kWordSize;

  // Allocates header + storage; zero-initializes elements.
  static Result<FarVector> Create(FarClient& client, FarAllocator& alloc,
                                  uint64_t capacity,
                                  AllocHint data_hint = AllocHint::Any()) {
    FMDS_ASSIGN_OR_RETURN(FarAddr header, alloc.Allocate(kHeaderBytes));
    FMDS_ASSIGN_OR_RETURN(FarAddr data,
                          alloc.Allocate(capacity * sizeof(T), data_hint));
    FMDS_RETURN_IF_ERROR(client.WriteWord(header, data));
    FMDS_RETURN_IF_ERROR(client.WriteWord(header + kWordSize, capacity));
    // Zero the storage (allocator does not guarantee fresh pages are clean
    // after reuse); bulk write, one round trip.
    std::vector<std::byte> zeros(capacity * sizeof(T), std::byte{0});
    FMDS_RETURN_IF_ERROR(client.Write(data, zeros));
    return FarVector(header, data, capacity);
  }

  // Binds to an existing vector; reads the header (one far access).
  static Result<FarVector> Attach(FarClient& client, FarAddr header) {
    std::array<uint64_t, 2> hdr;
    FMDS_RETURN_IF_ERROR(client.Read(
        header, std::as_writable_bytes(std::span<uint64_t>(hdr))));
    return FarVector(header, hdr[0], hdr[1]);
  }

  FarAddr header() const { return header_; }
  FarAddr data() const { return data_; }
  uint64_t capacity() const { return capacity_; }
  FarAddr ElementAddr(uint64_t i) const { return data_ + i * sizeof(T); }

  // ---- Direct mode: client-resolved addressing (base cached locally). ----
  Result<T> Get(FarClient& client, uint64_t i) const {
    FMDS_RETURN_IF_ERROR(CheckIndex(i));
    T out;
    FMDS_RETURN_IF_ERROR(client.Read(ElementAddr(i), AsBytes(out)));
    return out;
  }

  Status Set(FarClient& client, uint64_t i, const T& value) const {
    FMDS_RETURN_IF_ERROR(CheckIndex(i));
    return client.Write(ElementAddr(i), AsConstBytes(value));
  }

  // ---- Indirect mode: hardware dereferences the far base pointer. ----
  Result<T> GetIndirect(FarClient& client, uint64_t i) const {
    FMDS_RETURN_IF_ERROR(CheckIndex(i));
    T out;
    FMDS_RETURN_IF_ERROR(
        client.Load2(header_, i * sizeof(T), AsBytes(out)).status());
    return out;
  }

  Status SetIndirect(FarClient& client, uint64_t i, const T& value) const {
    FMDS_RETURN_IF_ERROR(CheckIndex(i));
    return client.Store2(header_, i * sizeof(T), AsConstBytes(value))
        .status();
  }

  // Atomic add on a word-sized element through the base pointer (add2) —
  // one far access even though two far locations participate.
  Status AddIndirect(FarClient& client, uint64_t i, uint64_t delta) const {
    static_assert(sizeof(T) == kWordSize,
                  "AddIndirect requires word-sized elements");
    FMDS_RETURN_IF_ERROR(CheckIndex(i));
    return client.Add2(header_, delta, i * sizeof(T));
  }

  // Bulk read of [first, first+count) into `out` (one round trip).
  Status ReadRange(FarClient& client, uint64_t first, std::span<T> out) const {
    if (first + out.size() > capacity_) {
      return OutOfRange("vector range read");
    }
    return client.Read(ElementAddr(first),
                       std::as_writable_bytes(out));
  }

  Status WriteRange(FarClient& client, uint64_t first,
                    std::span<const T> values) const {
    if (first + values.size() > capacity_) {
      return OutOfRange("vector range write");
    }
    return client.Write(ElementAddr(first), std::as_bytes(values));
  }

  // notify0 / notify0d over [first, first+count) elements. The range must
  // stay within one page (fabric constraint) — callers align their layouts.
  Result<SubId> SubscribeRange(
      FarClient& client, uint64_t first, uint64_t count, bool with_data,
      DeliveryPolicy policy = DeliveryPolicy::Reliable()) const {
    if (first + count > capacity_) {
      return Status(StatusCode::kOutOfRange, "subscribe range");
    }
    NotifySpec spec;
    spec.mode = with_data ? NotifyMode::kOnWriteData : NotifyMode::kOnWrite;
    spec.addr = ElementAddr(first);
    spec.len = count * sizeof(T);
    spec.policy = policy;
    return client.Subscribe(spec);
  }

  // notifye on element i reaching `target` (word-sized elements).
  Result<SubId> SubscribeEquals(
      FarClient& client, uint64_t i, uint64_t target,
      DeliveryPolicy policy = DeliveryPolicy::Reliable()) const {
    static_assert(sizeof(T) == kWordSize);
    FMDS_RETURN_IF_ERROR(CheckIndex(i));
    NotifySpec spec;
    spec.mode = NotifyMode::kOnEqual;
    spec.addr = ElementAddr(i);
    spec.len = kWordSize;
    spec.value = target;
    spec.policy = policy;
    return client.Subscribe(spec);
  }

  // Swaps the storage the base pointer designates (owner-side; one far
  // write). Indirect-mode readers switch over atomically.
  Status Rebase(FarClient& client, FarAddr new_data) {
    FMDS_RETURN_IF_ERROR(client.WriteWord(header_, new_data));
    data_ = new_data;
    return OkStatus();
  }

 private:
  FarVector(FarAddr header, FarAddr data, uint64_t capacity)
      : header_(header), data_(data), capacity_(capacity) {}

  Status CheckIndex(uint64_t i) const {
    if (i >= capacity_) {
      return OutOfRange("vector index");
    }
    return OkStatus();
  }

  FarAddr header_;
  FarAddr data_;
  uint64_t capacity_;
};

}  // namespace fmds

#endif  // FMDS_SRC_CORE_FAR_VECTOR_H_
