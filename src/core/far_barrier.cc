#include "src/core/far_barrier.h"

#include <chrono>

namespace fmds {

Result<FarBarrier> FarBarrier::Create(FarClient& client, FarAllocator& alloc,
                                      uint64_t participants) {
  if (participants == 0) {
    return Status(StatusCode::kInvalidArgument, "barrier needs participants");
  }
  FMDS_ASSIGN_OR_RETURN(FarAddr base, alloc.Allocate(3 * kWordSize));
  FMDS_RETURN_IF_ERROR(client.WriteWord(base, participants));
  FMDS_RETURN_IF_ERROR(client.WriteWord(base + kWordSize, 0));
  FMDS_RETURN_IF_ERROR(client.WriteWord(base + 2 * kWordSize, participants));
  return FarBarrier(base, participants);
}

Result<FarBarrier> FarBarrier::Attach(FarClient& client, FarAddr base) {
  FMDS_ASSIGN_OR_RETURN(uint64_t participants,
                        client.ReadWord(base + 2 * kWordSize));
  return FarBarrier(base, participants);
}

Status FarBarrier::Arrive(FarClient& client, uint64_t timeout_ms) {
  const uint64_t target_gen = local_round_ + 1;
  FMDS_ASSIGN_OR_RETURN(
      uint64_t old, client.FetchAdd(count_addr(), static_cast<uint64_t>(-1)));
  if (old == 1) {
    // Last arriver: reopen the barrier for the next round, then announce
    // completion. Order matters — the count must be reset before waiters of
    // this round can start the next one.
    FMDS_RETURN_IF_ERROR(client.WriteWord(count_addr(), participants_));
    FMDS_RETURN_IF_ERROR(client.FetchAdd(gen_addr(), 1).status());
    ++local_round_;
    return OkStatus();
  }
  // Wait for generation == target via notifye, with a read-back guard
  // against the notification racing the subscription (or being dropped).
  NotifySpec spec;
  spec.mode = NotifyMode::kOnEqual;
  spec.addr = gen_addr();
  spec.len = kWordSize;
  spec.value = target_gen;
  FMDS_ASSIGN_OR_RETURN(SubId sub, client.Subscribe(spec));
  Status result = Unavailable("barrier wait timed out");
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    FMDS_ASSIGN_OR_RETURN(uint64_t gen, client.ReadWord(gen_addr()));
    if (gen >= target_gen) {
      result = OkStatus();
      break;
    }
    (void)client.WaitNotification(50);
  }
  (void)client.Unsubscribe(sub);
  if (result.ok()) {
    ++local_round_;
  }
  return result;
}

}  // namespace fmds
