// Optimistic multi-key transactions over ShardedMap (Storm's "fast
// transactional dataplane" claim, built from this repo's one-sided verbs).
//
// A Txn buffers reads and writes client-side. Every read records the
// bucket word it was resolved under — the same no-ABA word the NearCache
// watches, so a snapshot read and a coherence watch are one primitive:
// bucket words only ever swing to freshly allocated, never-reused
// addresses (item slots are not recycled; freed tables are quarantined),
// so word equality at commit time proves the bucket's chain is unchanged
// since the read.
//
// Commit runs backward-validation OCC in up to three doorbells:
//   P (prepare)   per write bucket: the new items, a PENDING lock record
//                 whose `next` is the pre-txn head, and a CAS swinging the
//                 bucket word recorded-head -> lock record — all in ONE
//                 flush (the doorbell's per-node post order makes bodies
//                 visible before the CAS publishes them). A mispredicted
//                 CAS means the bucket changed since the read: roll back
//                 and abort.
//   V (validate)  one flush of word reads over the read-set buckets not in
//                 the write set (prepare already validated those). Any
//                 mismatch: roll back, abort.
//   C (commit)    CasBatch swinging every locked bucket lock -> new chain
//                 head. Must succeed: only the owner may change a pending
//                 bucket's word (readers skip it, writers and splits wait).
// Single-bucket write sets with no extra read buckets skip the lock
// entirely: one direct CAS recorded-head -> new head commits the txn.
//
// Aborts surface as StatusCode::kAborted; RunTxn() wraps body + Commit in
// a bounded jittered-backoff retry loop.
#ifndef FMDS_SRC_CORE_TXN_H_
#define FMDS_SRC_CORE_TXN_H_

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/core/sharded_map.h"

namespace fmds {

struct TxnOptions {
  // RunTxn: attempts before giving up with the last abort status.
  int max_attempts = 16;
  // RunTxn: jittered exponential backoff between attempts; attempt k sleeps
  // uniform(1 .. base << min(k, 6)) microseconds (0 disables sleeping).
  uint64_t backoff_base_us = 50;
  // Jitter seed, so contention experiments replay exactly.
  uint64_t seed = 0x7e57c0de;
};

// One transaction attempt. Single-shot: after Commit() (either outcome) or
// an abort the handle only returns errors — RunTxn builds a fresh Txn per
// attempt. Owned by one thread, like the FarClient underneath.
class Txn {
 public:
  explicit Txn(ShardedMap* map) : map_(map) {}
  Txn(const Txn&) = delete;
  Txn& operator=(const Txn&) = delete;

  // Reads `key` under the txn: write buffer first (read-your-writes), then
  // the read-set memo (repeatable reads), then the shard's NearCache or far
  // memory. kNotFound for absent keys is a *recorded* observation — the
  // commit validates negative reads too. kAborted means the txn is dead
  // (inconsistent views or a pending bucket outwaited) and must be retried.
  Result<uint64_t> Get(uint64_t key);

  // Batched Get: unresolved keys' bucket probes ride one doorbell across
  // all shards (chains, stale caches, and pending buckets fall back to the
  // synchronous path). Per-key results match Get.
  std::vector<Result<uint64_t>> MultiGet(std::span<const uint64_t> keys);

  // Buffers a write; nothing reaches far memory until Commit. The key's
  // bucket is pinned (one validated far read, unless the txn already read
  // it) so prepare has an expected word and a table version to build items
  // against.
  Status Put(uint64_t key, uint64_t value);
  // Buffers a tombstone write; same pinning as Put.
  Status Remove(uint64_t key);

  // Validates the read set and publishes the write set (see file comment).
  // OK: every read word still current, all writes applied atomically with
  // respect to other transactions. kAborted: a conflict was detected and
  // nothing was published (prepared locks rolled back).
  Status Commit();

  bool aborted() const { return aborted_; }
  size_t read_set_size() const { return reads_.size(); }
  size_t write_set_size() const { return writes_.size(); }

 private:
  struct ReadRec {
    bool found = false;
    uint64_t value = 0;
    FarAddr bucket = kNullFarAddr;
  };
  struct WriteRec {
    uint64_t value = 0;
    bool tombstone = false;
    FarAddr bucket = kNullFarAddr;
  };
  // Per-bucket validation state. `word` is the clean head recorded by the
  // first read touching the bucket; any later read of the same bucket must
  // observe the same word or the views are inconsistent (early abort).
  struct BucketView {
    uint64_t word = 0;
    uint64_t version = 0;
    bool versioned = false;  // false while only cache-served reads saw it
    uint32_t shard = 0;
  };
  // A write bucket's prepared commit image: the new items chained
  // final_head -> ... -> expected, plus the lock record.
  struct BucketCommit {
    FarAddr bucket = kNullFarAddr;
    HtTree* shard = nullptr;
    uint64_t expected = 0;        // recorded clean head word
    FarAddr final_head = kNullFarAddr;
    FarAddr pending = kNullFarAddr;
    FarClient::OpId cas_op = 0;
    std::vector<std::pair<uint64_t, WriteRec>> writes;
    std::vector<std::pair<FarAddr, HtTree::Item>> items;
    HtTree::Item pending_item{};
  };

  FarClient* client() { return map_->shard(0).client(); }
  // Marks the txn dead, bumps the abort counter once, returns kAborted.
  Status Abort(const char* why);
  // Merges a validated view into reads_/buckets_; kAborted when the bucket
  // was already recorded under a different word.
  Status RecordView(uint64_t key, uint32_t shard_idx,
                    const HtTree::TxnReadView& view, bool record_key);
  // Pins `key`'s bucket with a far-validated (word, version) pair; returns
  // the bucket address.
  Result<FarAddr> EnsureWritableBucket(uint64_t key);
  Status BufferWrite(uint64_t key, uint64_t value, bool tombstone);
  // Builds item chainlets + lock records for every write bucket.
  Status BuildCommits(std::vector<BucketCommit>* commits);
  // CASes every bucket in `prepared` lock record -> recorded head. Must
  // succeed (owner-only word); Internal if the fabric disagrees.
  Status RollbackPrepared(std::span<BucketCommit* const> prepared);
  // Post-publish bookkeeping: head hints and writer-side cache refills.
  void FinalizeBucket(const BucketCommit& bc);

  ShardedMap* map_;
  std::unordered_map<uint64_t, ReadRec> reads_;
  std::unordered_map<uint64_t, WriteRec> writes_;
  std::unordered_map<FarAddr, BucketView> buckets_;
  bool committed_ = false;
  bool aborted_ = false;
  bool validate_failed_ = false;  // read-set validation lost (for telemetry)
};

// Retry loop: runs `body` against a fresh Txn, commits, and on kAborted
// backs off (jittered exponential, bounded) and retries up to
// options.max_attempts. Non-abort errors and body errors return
// immediately; a body that fails with kAborted (e.g. from a dead txn
// handle) retries like a failed commit.
Status RunTxn(ShardedMap* map, const TxnOptions& options,
              const std::function<Status(Txn&)>& body);

}  // namespace fmds

#endif  // FMDS_SRC_CORE_TXN_H_
