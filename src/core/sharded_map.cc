#include "src/core/sharded_map.h"

#include "src/common/bytes.h"
#include "src/common/hash.h"
#include "src/obs/recorder.h"

namespace fmds {

namespace {
// Routing salt: decorrelates the shard hash from the HT-tree's Mix64(key)
// (see the file comment in sharded_map.h). Any odd constant works; this is
// the golden-ratio word also used by Fibonacci hashing.
constexpr uint64_t kShardSalt = 0x9e3779b97f4a7c15ull;

constexpr uint32_t kMaxShards = 1u << 12;
}  // namespace

uint32_t ShardedMap::ShardOf(uint64_t key) const {
  return static_cast<uint32_t>(Mix64(key ^ kShardSalt) % shards_.size());
}

NodeId ShardedMap::NodeOf(uint64_t key) const {
  return static_cast<NodeId>(ShardOf(key) %
                             client_->fabric()->num_nodes());
}

HtTree::Options ShardedMap::ShardOptions(const Options& options, uint32_t i,
                                         uint32_t num_nodes) {
  HtTree::Options shard = options.shard;
  if (options.pin_shards) {
    shard.placement = AllocHint::OnNode(i % num_nodes);
  }
  return shard;
}

Result<ShardedMap> ShardedMap::Create(FarClient* client, FarAllocator* alloc,
                                      Options options) {
  if (options.num_shards == 0 || options.num_shards > kMaxShards) {
    return InvalidArgument("bad shard count");
  }
  const uint32_t num_nodes = client->fabric()->num_nodes();
  FMDS_ASSIGN_OR_RETURN(
      FarAddr directory,
      alloc->Allocate((1 + options.num_shards) * kWordSize));
  ShardedMap map(client, directory);
  std::vector<uint64_t> dir(1 + options.num_shards, 0);
  dir[0] = options.num_shards;
  map.shards_.reserve(options.num_shards);
  for (uint32_t i = 0; i < options.num_shards; ++i) {
    FMDS_ASSIGN_OR_RETURN(
        HtTree shard,
        HtTree::Create(client, alloc, ShardOptions(options, i, num_nodes)));
    dir[1 + i] = shard.header();
    map.shards_.push_back(std::move(shard));
  }
  FMDS_RETURN_IF_ERROR(client->Write(
      directory, std::as_bytes(std::span<const uint64_t>(dir))));
  return map;
}

Result<ShardedMap> ShardedMap::Attach(FarClient* client, FarAllocator* alloc,
                                      FarAddr directory) {
  return Attach(client, alloc, directory, Options());
}

Result<ShardedMap> ShardedMap::Attach(FarClient* client, FarAllocator* alloc,
                                      FarAddr directory, Options options) {
  FMDS_ASSIGN_OR_RETURN(uint64_t num_shards, client->ReadWord(directory));
  if (num_shards == 0 || num_shards > kMaxShards) {
    return Internal("corrupt shard directory");
  }
  const uint32_t num_nodes = client->fabric()->num_nodes();
  std::vector<uint64_t> headers(num_shards);
  FMDS_RETURN_IF_ERROR(client->Read(
      directory + kWordSize,
      std::as_writable_bytes(std::span<uint64_t>(headers))));
  ShardedMap map(client, directory);
  map.shards_.reserve(num_shards);
  for (uint32_t i = 0; i < num_shards; ++i) {
    FMDS_ASSIGN_OR_RETURN(
        HtTree shard,
        HtTree::Attach(client, alloc, headers[i],
                       ShardOptions(options, i, num_nodes)));
    map.shards_.push_back(std::move(shard));
  }
  return map;
}

Result<uint64_t> ShardedMap::Get(uint64_t key) {
  // Outer label for nesting; the shard's own "httree.get" (innermost) wins
  // latency attribution.
  ScopedOpLabel label(&client_->recorder(), "sharded.get");
  client_->AccountNear(1);  // routing hash
  return shards_[ShardOf(key)].Get(key);
}

Status ShardedMap::Put(uint64_t key, uint64_t value) {
  ScopedOpLabel label(&client_->recorder(), "sharded.put");
  client_->AccountNear(1);
  return shards_[ShardOf(key)].Put(key, value);
}

Status ShardedMap::Remove(uint64_t key) {
  ScopedOpLabel label(&client_->recorder(), "sharded.remove");
  client_->AccountNear(1);
  return shards_[ShardOf(key)].Remove(key);
}

std::vector<Result<uint64_t>> ShardedMap::MultiGet(
    std::span<const uint64_t> keys) {
  ScopedOpLabel label(&client_->recorder(), "sharded.multiget");
  // Partition keys by shard, remembering each key's input position.
  const size_t n = shards_.size();
  std::vector<std::vector<uint64_t>> shard_keys(n);
  std::vector<std::vector<size_t>> shard_pos(n);
  for (size_t i = 0; i < keys.size(); ++i) {
    client_->AccountNear(1);
    const uint32_t s = ShardOf(keys[i]);
    shard_keys[s].push_back(keys[i]);
    shard_pos[s].push_back(i);
  }
  // One engine per shard; each wave flushes EVERY shard's posted ops in a
  // single doorbell, so sub-batches bound for different nodes overlap.
  std::vector<HtTree::BatchGet> engines;
  engines.reserve(n);
  for (size_t s = 0; s < n; ++s) {
    engines.emplace_back(&shards_[s], std::span<const uint64_t>(shard_keys[s]));
  }
  while (true) {
    size_t posted = 0;
    for (HtTree::BatchGet& engine : engines) {
      posted += engine.PostWave();
    }
    if (posted == 0) {
      break;
    }
    std::vector<FarClient::Completion> done;
    (void)client_->WaitAll(&done);
    const HtTree::CompletionMap completions =
        HtTree::ToCompletionMap(std::move(done));
    for (HtTree::BatchGet& engine : engines) {
      engine.AbsorbWave(completions);
    }
  }
  // Scatter per-shard results back to input order.
  std::vector<Result<uint64_t>> results(
      keys.size(), Status(StatusCode::kInternal, "multiget unresolved"));
  for (size_t s = 0; s < n; ++s) {
    std::vector<Result<uint64_t>> shard_results = engines[s].Take();
    for (size_t j = 0; j < shard_results.size(); ++j) {
      results[shard_pos[s][j]] = std::move(shard_results[j]);
    }
  }
  return results;
}

Status ShardedMap::MultiPut(std::span<const uint64_t> keys,
                            std::span<const uint64_t> values) {
  if (keys.size() != values.size()) {
    return InvalidArgument("MultiPut keys/values length mismatch");
  }
  ScopedOpLabel label(&client_->recorder(), "sharded.multiput");
  const size_t n = shards_.size();
  std::vector<std::vector<uint64_t>> shard_keys(n);
  std::vector<std::vector<uint64_t>> shard_values(n);
  for (size_t i = 0; i < keys.size(); ++i) {
    client_->AccountNear(1);
    const uint32_t s = ShardOf(keys[i]);
    shard_keys[s].push_back(keys[i]);
    shard_values[s].push_back(values[i]);
  }
  std::vector<HtTree::BatchPut> engines;
  engines.reserve(n);
  for (size_t s = 0; s < n; ++s) {
    engines.emplace_back(&shards_[s],
                         std::span<const uint64_t>(shard_keys[s]),
                         std::span<const uint64_t>(shard_values[s]));
  }
  while (true) {
    size_t posted = 0;
    for (HtTree::BatchPut& engine : engines) {
      posted += engine.PostWave();
    }
    if (posted == 0) {
      break;
    }
    std::vector<FarClient::Completion> done;
    (void)client_->WaitAll(&done);
    const HtTree::CompletionMap completions =
        HtTree::ToCompletionMap(std::move(done));
    for (HtTree::BatchPut& engine : engines) {
      engine.AbsorbWave(completions);
    }
  }
  Status first = OkStatus();
  for (HtTree::BatchPut& engine : engines) {
    const Status status = engine.Take();
    if (first.ok() && !status.ok()) {
      first = status;
    }
  }
  return first;
}

HtTree::OpStats ShardedMap::op_stats() const {
  HtTree::OpStats total;
  for (const HtTree& shard : shards_) {
    const HtTree::OpStats& s = shard.op_stats();
    total.gets += s.gets;
    total.puts += s.puts;
    total.removes += s.removes;
    total.chain_hops += s.chain_hops;
    total.stale_refreshes += s.stale_refreshes;
    total.cas_retries += s.cas_retries;
    total.splits += s.splits;
  }
  return total;
}

uint64_t ShardedMap::cache_bytes() const {
  uint64_t total = 0;
  for (const HtTree& shard : shards_) {
    total += shard.cache_bytes();
  }
  return total;
}

NearCacheStats ShardedMap::near_cache_stats() const {
  NearCacheStats total;
  for (const HtTree& shard : shards_) {
    if (shard.near_cache() != nullptr) {
      total.Add(shard.near_cache()->stats());
    }
  }
  return total;
}

uint64_t ShardedMap::near_cache_bytes() const {
  uint64_t total = 0;
  for (const HtTree& shard : shards_) {
    if (shard.near_cache() != nullptr) {
      total += shard.near_cache()->bytes_used();
    }
  }
  return total;
}

}  // namespace fmds
