#include "src/core/sharded_map.h"

#include "src/common/bytes.h"
#include "src/common/hash.h"
#include "src/core/txn.h"
#include "src/obs/recorder.h"

namespace fmds {

namespace {
// Routing salt: decorrelates the shard hash from the HT-tree's Mix64(key)
// (see the file comment in sharded_map.h). Any odd constant works; this is
// the golden-ratio word also used by Fibonacci hashing.
constexpr uint64_t kShardSalt = 0x9e3779b97f4a7c15ull;

constexpr uint32_t kMaxShards = 1u << 12;

// Distinguishes the write-behind flusher's client id from its application
// client's (same convention as ht_tree.cc).
constexpr uint64_t kWbClientIdBit = 1ull << 62;

// The map_options.h defaulting rule for the fleet-wide cache budget: the
// composable block (shard.cache.global_budget_bytes) wins when set;
// otherwise the deprecated flat field seeds it.
uint64_t EffectiveGlobalBudget(const ShardedMap::Options& options) {
  return options.shard.cache.global_budget_bytes != 0
             ? options.shard.cache.global_budget_bytes
             : options.global_cache_budget_bytes;
}
}  // namespace

uint32_t ShardedMap::ShardOf(uint64_t key) const {
  return static_cast<uint32_t>(Mix64(key ^ kShardSalt) % shards_.size());
}

NodeId ShardedMap::NodeOf(uint64_t key) const {
  return static_cast<NodeId>(ShardOf(key) %
                             client_->fabric()->num_nodes());
}

HtTree::Options ShardedMap::ShardOptions(
    const Options& options, uint32_t i, uint32_t num_nodes,
    const std::shared_ptr<CacheBudget>& budget) {
  HtTree::Options shard = options.shard;
  if (options.pin_shards) {
    shard.placement = AllocHint::OnNode(i % num_nodes);
  }
  if (budget != nullptr) {
    // Fleet-wide budget: budget_bytes sizes each shard's ring, but all
    // byte accounting and watermark checks run against the shared total.
    shard.cache.budget_bytes = budget->limit;
    shard.cache.shared_budget = budget;
  }
  return shard;
}

Result<ShardedMap> ShardedMap::Create(FarClient* client, FarAllocator* alloc,
                                      Options options) {
  if (options.num_shards == 0 || options.num_shards > kMaxShards) {
    return InvalidArgument("bad shard count");
  }
  const uint32_t num_nodes = client->fabric()->num_nodes();
  FMDS_ASSIGN_OR_RETURN(
      FarAddr directory,
      alloc->Allocate((1 + options.num_shards) * kWordSize));
  ShardedMap map(client, directory);
  map.alloc_ = alloc;
  map.options_ = options;
  if (const uint64_t global_budget = EffectiveGlobalBudget(options);
      global_budget > 0) {
    map.shared_budget_ = std::make_shared<CacheBudget>(
        global_budget, options.shard.cache.high_watermark_bytes,
        options.shard.cache.low_watermark_bytes);
  }
  std::vector<uint64_t> dir(1 + options.num_shards, 0);
  dir[0] = options.num_shards;
  map.shards_.reserve(options.num_shards);
  for (uint32_t i = 0; i < options.num_shards; ++i) {
    FMDS_ASSIGN_OR_RETURN(
        HtTree shard,
        HtTree::Create(client, alloc,
                       ShardOptions(options, i, num_nodes,
                                    map.shared_budget_)));
    dir[1 + i] = shard.header();
    map.shards_.push_back(std::move(shard));
  }
  FMDS_RETURN_IF_ERROR(client->Write(
      directory, std::as_bytes(std::span<const uint64_t>(dir))));
  return map;
}

Result<ShardedMap> ShardedMap::Attach(FarClient* client, FarAllocator* alloc,
                                      FarAddr directory) {
  return Attach(client, alloc, directory, Options());
}

Result<ShardedMap> ShardedMap::Attach(FarClient* client, FarAllocator* alloc,
                                      FarAddr directory, Options options) {
  FMDS_ASSIGN_OR_RETURN(uint64_t num_shards, client->ReadWord(directory));
  if (num_shards == 0 || num_shards > kMaxShards) {
    return Internal("corrupt shard directory");
  }
  const uint32_t num_nodes = client->fabric()->num_nodes();
  std::vector<uint64_t> headers(num_shards);
  FMDS_RETURN_IF_ERROR(client->Read(
      directory + kWordSize,
      std::as_writable_bytes(std::span<uint64_t>(headers))));
  ShardedMap map(client, directory);
  map.alloc_ = alloc;
  map.options_ = options;
  if (const uint64_t global_budget = EffectiveGlobalBudget(options);
      global_budget > 0) {
    map.shared_budget_ = std::make_shared<CacheBudget>(
        global_budget, options.shard.cache.high_watermark_bytes,
        options.shard.cache.low_watermark_bytes);
  }
  map.shards_.reserve(num_shards);
  for (uint32_t i = 0; i < num_shards; ++i) {
    FMDS_ASSIGN_OR_RETURN(
        HtTree shard,
        HtTree::Attach(client, alloc, headers[i],
                       ShardOptions(options, i, num_nodes,
                                    map.shared_budget_)));
    map.shards_.push_back(std::move(shard));
  }
  return map;
}

Result<uint64_t> ShardedMap::Get(uint64_t key) {
  // Outer label for nesting; the shard's own "httree.get" (innermost) wins
  // latency attribution.
  ScopedOpLabel label(&client_->recorder(), "sharded.get");
  client_->AccountNear(1);  // routing hash
  // Fleet-wide write-behind read-your-writes: the shared pending table
  // outranks every shard's cache and far state (see HtTree::Get).
  if (wb_ != nullptr) {
    uint64_t pending_value = 0;
    bool pending_tombstone = false;
    if (wb_->Lookup(key, &pending_value, &pending_tombstone)) {
      if (pending_tombstone) {
        return Status(StatusCode::kNotFound, "key removed");
      }
      return pending_value;
    }
  }
  return shards_[ShardOf(key)].Get(key);
}

Status ShardedMap::Put(uint64_t key, uint64_t value) {
  ScopedOpLabel label(&client_->recorder(), "sharded.put");
  client_->AccountNear(1);
  if (wb_ != nullptr) {
    wb_->Put(key, value);
    return OkStatus();
  }
  return shards_[ShardOf(key)].Put(key, value);
}

Status ShardedMap::Remove(uint64_t key) {
  ScopedOpLabel label(&client_->recorder(), "sharded.remove");
  client_->AccountNear(1);
  if (wb_ != nullptr) {
    wb_->Remove(key);
    return OkStatus();
  }
  return shards_[ShardOf(key)].Remove(key);
}

std::vector<Result<uint64_t>> ShardedMap::MultiGet(
    std::span<const uint64_t> keys) {
  ScopedOpLabel label(&client_->recorder(), "sharded.multiget");
  std::vector<Result<uint64_t>> results(
      keys.size(), Status(StatusCode::kInternal, "multiget unresolved"));
  // Partition keys by shard, remembering each key's input position. Keys
  // with a pending write-behind record resolve here (read-your-writes)
  // and never reach a wave.
  const size_t n = shards_.size();
  std::vector<std::vector<uint64_t>> shard_keys(n);
  std::vector<std::vector<size_t>> shard_pos(n);
  for (size_t i = 0; i < keys.size(); ++i) {
    client_->AccountNear(1);
    if (wb_ != nullptr) {
      uint64_t pending_value = 0;
      bool pending_tombstone = false;
      if (wb_->Lookup(keys[i], &pending_value, &pending_tombstone)) {
        results[i] = pending_tombstone
                         ? Result<uint64_t>(
                               Status(StatusCode::kNotFound, "key removed"))
                         : Result<uint64_t>(pending_value);
        continue;
      }
    }
    const uint32_t s = ShardOf(keys[i]);
    shard_keys[s].push_back(keys[i]);
    shard_pos[s].push_back(i);
  }
  // Per-shard routing first: an RPC-priced shard ships its whole
  // sub-batch to that node's agent and drops out of the wave loop; the
  // rest run the one-sided engines below. Because route state is keyed by
  // node, a skewed fleet splits — busy nodes walk one-sided, idle nodes
  // answer by RPC — within a single MultiGet.
  std::vector<HtTree::BatchGet> engines;
  std::vector<size_t> engine_shard;
  engines.reserve(n);
  for (size_t s = 0; s < n; ++s) {
    if (!shard_keys[s].empty()) {
      std::vector<Result<uint64_t>> routed;
      if (shards_[s].TryRouteMultiGet(shard_keys[s], &routed)) {
        for (size_t j = 0; j < routed.size(); ++j) {
          results[shard_pos[s][j]] = std::move(routed[j]);
        }
        continue;
      }
    }
    engine_shard.push_back(s);
    engines.emplace_back(&shards_[s], std::span<const uint64_t>(shard_keys[s]));
  }
  // Each wave flushes EVERY remaining shard's posted ops in a single
  // doorbell, so sub-batches bound for different nodes overlap.
  const uint64_t wave_start_ns = client_->clock().now_ns();
  std::vector<uint64_t> hops_before(engine_shard.size());
  for (size_t e = 0; e < engine_shard.size(); ++e) {
    hops_before[e] = shards_[engine_shard[e]].op_stats().chain_hops;
  }
  while (true) {
    size_t posted = 0;
    for (HtTree::BatchGet& engine : engines) {
      posted += engine.PostWave();
    }
    if (posted == 0) {
      break;
    }
    std::vector<FarClient::Completion> done;
    (void)client_->WaitAll(&done);
    const HtTree::CompletionMap completions =
        HtTree::ToCompletionMap(std::move(done));
    for (HtTree::BatchGet& engine : engines) {
      engine.AbsorbWave(completions);
    }
  }
  // Scatter per-shard results back to input order; feed the router each
  // shard's PROPORTIONAL share of the wave-loop cost. Waves overlap
  // across shards, so charging every shard the full joint latency would
  // double-count it and bias every shard's one-sided estimate upward.
  const uint64_t wave_ns = client_->clock().now_ns() - wave_start_ns;
  size_t engine_key_total = 0;
  for (size_t e = 0; e < engines.size(); ++e) {
    engine_key_total += shard_keys[engine_shard[e]].size();
  }
  for (size_t e = 0; e < engines.size(); ++e) {
    const size_t s = engine_shard[e];
    std::vector<Result<uint64_t>> shard_results = engines[e].Take();
    for (size_t j = 0; j < shard_results.size(); ++j) {
      results[shard_pos[s][j]] = std::move(shard_results[j]);
    }
    if (!shard_keys[s].empty()) {
      // Mirror the RPC path's units feedback: without it, chain-depth units
      // would only ever grow from agent observations, inflating the
      // one-sided cost estimate for deep-chain shards.
      const uint64_t hops = shards_[s].op_stats().chain_hops - hops_before[e];
      shards_[s].NoteLookupUnits(1.0 + static_cast<double>(hops) /
                                           static_cast<double>(
                                               shard_keys[s].size()));
      if (shards_[s].route_decider() != nullptr) {
        const uint64_t attributed_ns =
            wave_ns * shard_keys[s].size() / std::max<size_t>(engine_key_total, 1);
        shards_[s].route_decider()->Observe(
            RoutedOp::kMultiGet, shards_[s].home_node(),
            DataplaneRoute::kOneSided, attributed_ns,
            shards_[s].lookup_units(), shard_keys[s].size());
      }
    }
  }
  return results;
}

Status ShardedMap::EnableRouting(RouteDecider* decider, RemoteMapPath* remote) {
  for (HtTree& shard : shards_) {
    FMDS_RETURN_IF_ERROR(shard.EnableRouting(decider, remote));
  }
  return OkStatus();
}

Status ShardedMap::MultiPut(std::span<const uint64_t> keys,
                            std::span<const uint64_t> values) {
  if (keys.size() != values.size()) {
    return InvalidArgument("MultiPut keys/values length mismatch");
  }
  // Write-behind wins over atomic_multiput: staged writes publish in the
  // flusher's batches (MultiWrite handles the staging).
  if (wb_ == nullptr && options_.atomic_multiput) {
    return MultiPutAtomic(keys, values);
  }
  return MultiWrite(keys, values, {});
}

Status ShardedMap::MultiWrite(std::span<const uint64_t> keys,
                              std::span<const uint64_t> values,
                              std::span<const uint8_t> tombstones,
                              std::vector<HtTree::WriteOutcome>* outcomes) {
  if (keys.size() != values.size() ||
      (!tombstones.empty() && tombstones.size() != keys.size())) {
    return InvalidArgument("MultiWrite span length mismatch");
  }
  ScopedOpLabel label(&client_->recorder(), "sharded.multiput");
  if (wb_ != nullptr) {
    // Stage instead of publishing (see HtTree::MultiWrite's rationale).
    client_->AccountNear(keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      if (i < tombstones.size() && tombstones[i] != 0) {
        wb_->Remove(keys[i]);
      } else {
        wb_->Put(keys[i], values[i]);
      }
    }
    if (outcomes != nullptr) {
      outcomes->assign(keys.size(), HtTree::WriteOutcome{});
    }
    return OkStatus();
  }
  const size_t n = shards_.size();
  std::vector<std::vector<uint64_t>> shard_keys(n);
  std::vector<std::vector<uint64_t>> shard_values(n);
  std::vector<std::vector<uint8_t>> shard_tombs(n);
  std::vector<std::vector<size_t>> shard_pos(n);
  for (size_t i = 0; i < keys.size(); ++i) {
    client_->AccountNear(1);
    const uint32_t s = ShardOf(keys[i]);
    shard_keys[s].push_back(keys[i]);
    shard_values[s].push_back(values[i]);
    shard_tombs[s].push_back(
        i < tombstones.size() && tombstones[i] != 0 ? 1 : 0);
    shard_pos[s].push_back(i);
  }
  std::vector<std::vector<HtTree::WriteOutcome>> shard_outcomes(n);
  std::vector<HtTree::BatchPut> engines;
  engines.reserve(n);
  for (size_t s = 0; s < n; ++s) {
    engines.emplace_back(&shards_[s],
                         std::span<const uint64_t>(shard_keys[s]),
                         std::span<const uint64_t>(shard_values[s]),
                         std::span<const uint8_t>(shard_tombs[s]),
                         outcomes != nullptr ? &shard_outcomes[s] : nullptr);
  }
  while (true) {
    size_t posted = 0;
    for (HtTree::BatchPut& engine : engines) {
      posted += engine.PostWave();
    }
    if (posted == 0) {
      break;
    }
    std::vector<FarClient::Completion> done;
    (void)client_->WaitAll(&done);
    const HtTree::CompletionMap completions =
        HtTree::ToCompletionMap(std::move(done));
    for (HtTree::BatchPut& engine : engines) {
      engine.AbsorbWave(completions);
    }
  }
  Status first = OkStatus();
  for (HtTree::BatchPut& engine : engines) {
    const Status status = engine.Take();
    if (first.ok() && !status.ok()) {
      first = status;
    }
  }
  if (outcomes != nullptr) {
    // Scatter the per-shard outcomes back to input order.
    outcomes->assign(keys.size(), HtTree::WriteOutcome{});
    for (size_t s = 0; s < n; ++s) {
      for (size_t j = 0; j < shard_pos[s].size(); ++j) {
        (*outcomes)[shard_pos[s][j]] = shard_outcomes[s][j];
      }
    }
  }
  return first;
}

Status ShardedMap::MultiPutAtomic(std::span<const uint64_t> keys,
                                  std::span<const uint64_t> values) {
  if (keys.size() != values.size()) {
    return InvalidArgument("MultiPut keys/values length mismatch");
  }
  if (keys.empty()) {
    return OkStatus();
  }
  ScopedOpLabel label(&client_->recorder(), "sharded.multiput_atomic");
  return RunTxn(this, TxnOptions{}, [&](Txn& txn) {
    // Batch-pin: one doorbell of bucket probes records validated views for
    // most keys, so the Puts below rarely pay a per-key pinning read and
    // the whole operation stays at prepare/validate/commit + one probe
    // wave.
    (void)txn.MultiGet(keys);
    for (size_t i = 0; i < keys.size(); ++i) {
      FMDS_RETURN_IF_ERROR(txn.Put(keys[i], values[i]));
    }
    return OkStatus();
  });
}

namespace {
// Fleet-wide flusher target: publishes through an Attach'd ShardedMap
// handle so each drained batch still fans out across shards/nodes in
// single doorbell waves, then refills the app handle's per-shard caches.
class ShardedWbPublisher : public WriteBehindEngine::Publisher {
 public:
  ShardedWbPublisher(std::unique_ptr<FarClient> client, ShardedMap map,
                     std::vector<NearCache*> app_caches)
      : client_(std::move(client)),
        map_(std::move(map)),
        app_caches_(std::move(app_caches)) {}

  FarClient* client() override { return client_.get(); }

  Status Publish(const WriteBehindEngine::Batch& batch) override {
    return map_.MultiWrite(batch.keys, batch.values, batch.tombstones,
                           &outcomes_);
  }

  void RefillCaches(const WriteBehindEngine::Batch& batch) override {
    for (size_t i = 0; i < batch.keys.size(); ++i) {
      NearCache* cache = app_caches_[map_.ShardOf(batch.keys[i])];
      if (cache == nullptr) {
        continue;
      }
      if (batch.tombstones[i] != 0 || !outcomes_[i].refillable) {
        cache->InvalidateExternal(batch.keys[i]);
      } else {
        cache->RefillExternal(batch.keys[i], AsConstBytes(batch.values[i]),
                              outcomes_[i].bucket, kWordSize,
                              outcomes_[i].head);
      }
    }
  }

 private:
  std::unique_ptr<FarClient> client_;
  ShardedMap map_;
  std::vector<NearCache*> app_caches_;
  std::vector<HtTree::WriteOutcome> outcomes_;
};
}  // namespace

Status ShardedMap::EnableWriteBehind(const WriteBehindOptions& wb_options) {
  if (wb_ != nullptr) {
    return FailedPrecondition("write-behind already enabled");
  }
  for (HtTree& shard : shards_) {
    if (shard.write_behind() != nullptr) {
      return FailedPrecondition(
          "per-shard write-behind already enabled; use one engine per map");
    }
  }
  // Mirror HtTree::EnableWriteBehind: the flusher gets its own client and
  // its own Attach'd handle (caches off — the app shards' caches are
  // refilled via the External calls; no shared budget either, the flusher
  // handle caches nothing).
  auto flusher_client = std::make_unique<FarClient>(
      client_->fabric(), client_->id() | kWbClientIdBit,
      wb_options.flusher_client);
  Options fopt = options_;
  fopt.shard.cache = NearCacheOptions{};
  fopt.global_cache_budget_bytes = 0;
  FMDS_ASSIGN_OR_RETURN(
      ShardedMap handle,
      Attach(flusher_client.get(), alloc_, directory_, fopt));
  std::vector<NearCache*> app_caches;
  app_caches.reserve(shards_.size());
  for (HtTree& shard : shards_) {
    app_caches.push_back(shard.near_cache());
  }
  auto publisher = std::make_unique<ShardedWbPublisher>(
      std::move(flusher_client), std::move(handle), std::move(app_caches));
  wb_ = std::make_unique<WriteBehindEngine>(client_, std::move(publisher),
                                            wb_options);
  return OkStatus();
}

Status ShardedMap::FlushBarrier() {
  Status first = OkStatus();
  if (wb_ != nullptr) {
    ScopedOpLabel label(&client_->recorder(), "sharded.flush_barrier");
    first = wb_->FlushBarrier();
  }
  for (HtTree& shard : shards_) {
    const Status status = shard.FlushBarrier();
    if (first.ok() && !status.ok()) {
      first = status;
    }
  }
  return first;
}

Status ShardedMap::DrainWriteBehind() {
  // Empty() is lock-free, so structures without write-behind (or with an
  // idle engine) pay nothing on this per-operation hook.
  Status first = OkStatus();
  if (wb_ != nullptr && !wb_->Empty()) {
    first = wb_->FlushBarrier();
  }
  for (HtTree& shard : shards_) {
    if (shard.write_behind() != nullptr && !shard.write_behind()->Empty()) {
      const Status status = shard.FlushBarrier();
      if (first.ok() && !status.ok()) {
        first = status;
      }
    }
  }
  return first;
}

HtTree::OpStats ShardedMap::op_stats() const {
  HtTree::OpStats total;
  for (const HtTree& shard : shards_) {
    const HtTree::OpStats& s = shard.op_stats();
    total.gets += s.gets;
    total.puts += s.puts;
    total.removes += s.removes;
    total.chain_hops += s.chain_hops;
    total.stale_refreshes += s.stale_refreshes;
    total.cas_retries += s.cas_retries;
    total.splits += s.splits;
  }
  return total;
}

uint64_t ShardedMap::cache_bytes() const {
  uint64_t total = 0;
  for (const HtTree& shard : shards_) {
    total += shard.cache_bytes();
  }
  return total;
}

NearCacheStats ShardedMap::near_cache_stats() const {
  NearCacheStats total;
  for (const HtTree& shard : shards_) {
    if (shard.near_cache() != nullptr) {
      total.Add(shard.near_cache()->stats());
    }
  }
  return total;
}

uint64_t ShardedMap::near_cache_bytes() const {
  uint64_t total = 0;
  for (const HtTree& shard : shards_) {
    if (shard.near_cache() != nullptr) {
      total += shard.near_cache()->bytes_used();
    }
  }
  return total;
}

}  // namespace fmds
