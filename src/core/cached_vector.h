// Notification-maintained vector cache (§5.1): "If desired, client caches
// can be updated using notifications: clients subscribe to specific
// (ranges of) addresses to receive notifications when they are modified."
//
// CachedFarVector wraps a far word vector with a full local mirror kept
// fresh by notify0d subscriptions: every remote write is pushed to the
// client with its data, so reads cost ZERO far accesses. Because delivery
// is best-effort (§7.2), a channel loss warning triggers a bulk resync
// read; correctness never depends on delivery.
//
// Freshness contract: Get() reflects every write whose notification had
// been delivered when Sync() last ran — the "freshness" axis of §3.2 set
// to eventual; use RefreshableVector for bounded staleness with explicit
// refresh points, or plain FarVector for always-fresh reads at one far
// access each.
#ifndef FMDS_SRC_CORE_CACHED_VECTOR_H_
#define FMDS_SRC_CORE_CACHED_VECTOR_H_

#include <cstdint>
#include <vector>

#include "src/alloc/far_allocator.h"
#include "src/fabric/far_client.h"

namespace fmds {

class CachedFarVector {
 public:
  struct Stats {
    uint64_t events_applied = 0;
    uint64_t loss_resyncs = 0;
    uint64_t syncs = 0;
  };

  // Creates backing far storage of `size` words.
  static Result<CachedFarVector> Create(FarClient* client,
                                        FarAllocator* alloc, uint64_t size);
  // Binds to existing storage created elsewhere ([0] size, then words).
  static Result<CachedFarVector> Attach(FarClient* client, FarAddr header);

  FarAddr header() const { return header_; }
  uint64_t size() const { return size_; }

  // Writer side: one far access; subscribers' mirrors follow.
  Status Set(uint64_t i, uint64_t value);

  // Reader side: builds the mirror (one bulk read) and arms notify0d over
  // the element region (one subscription per page).
  Status EnableMirror();
  // Drains the channel, applying pushed updates to the mirror; a loss
  // warning triggers one bulk re-read. Near-only in the common case.
  Status Sync();
  // Mirror read (near access). Call Sync() first for the freshest view.
  Result<uint64_t> Get(uint64_t i);

  const Stats& stats() const { return stats_; }

 private:
  CachedFarVector(FarClient* client, FarAddr header)
      : client_(client), header_(header) {}

  FarAddr ElementAddr(uint64_t i) const {
    return data_ + i * kWordSize;
  }
  Status Resync();

  FarClient* client_;
  FarAddr header_;
  FarAddr data_ = kNullFarAddr;
  uint64_t size_ = 0;
  bool mirror_enabled_ = false;
  std::vector<uint64_t> mirror_;
  std::vector<SubId> subs_;
  Stats stats_;
};

}  // namespace fmds

#endif  // FMDS_SRC_CORE_CACHED_VECTOR_H_
