#include "src/core/cached_vector.h"

#include <algorithm>

#include "src/common/bytes.h"

namespace fmds {

Result<CachedFarVector> CachedFarVector::Create(FarClient* client,
                                                FarAllocator* alloc,
                                                uint64_t size) {
  if (size == 0) {
    return Status(StatusCode::kInvalidArgument, "empty cached vector");
  }
  // Header: [0] size, [8] data pointer. Data page-aligned so the
  // notification subscriptions tile cleanly.
  FMDS_ASSIGN_OR_RETURN(FarAddr header, alloc->Allocate(2 * kWordSize));
  FMDS_ASSIGN_OR_RETURN(
      FarAddr data,
      alloc->Allocate(size * kWordSize, AllocHint::Any(), kPageSize));
  const uint64_t hdr[2] = {size, data};
  FMDS_RETURN_IF_ERROR(client->Write(
      header, std::as_bytes(std::span<const uint64_t>(hdr))));
  std::vector<uint64_t> zeros(size, 0);
  FMDS_RETURN_IF_ERROR(client->Write(
      data, std::as_bytes(std::span<const uint64_t>(zeros))));
  CachedFarVector vec(client, header);
  vec.data_ = data;
  vec.size_ = size;
  return vec;
}

Result<CachedFarVector> CachedFarVector::Attach(FarClient* client,
                                                FarAddr header) {
  uint64_t hdr[2];
  FMDS_RETURN_IF_ERROR(client->Read(
      header, std::as_writable_bytes(std::span<uint64_t>(hdr))));
  CachedFarVector vec(client, header);
  vec.size_ = hdr[0];
  vec.data_ = hdr[1];
  return vec;
}

Status CachedFarVector::Set(uint64_t i, uint64_t value) {
  if (i >= size_) {
    return OutOfRange("cached vector index");
  }
  return client_->WriteWord(ElementAddr(i), value);
}

Status CachedFarVector::EnableMirror() {
  mirror_.assign(size_, 0);
  FMDS_RETURN_IF_ERROR(client_->Read(
      data_, std::as_writable_bytes(std::span<uint64_t>(mirror_))));
  // notify0d per page chunk: updates arrive with their data.
  const uint64_t bytes = size_ * kWordSize;
  uint64_t offset = 0;
  while (offset < bytes) {
    const FarAddr addr = data_ + offset;
    const uint64_t page_left = kPageSize - (addr % kPageSize);
    const uint64_t len = std::min(bytes - offset, page_left);
    NotifySpec spec;
    spec.mode = NotifyMode::kOnWriteData;
    spec.addr = addr;
    spec.len = len;
    spec.policy.coalesce = false;  // each update applies individually
    FMDS_ASSIGN_OR_RETURN(SubId id, client_->Subscribe(spec));
    subs_.push_back(id);
    offset += len;
  }
  mirror_enabled_ = true;
  return OkStatus();
}

Status CachedFarVector::Resync() {
  ++stats_.loss_resyncs;
  return client_->Read(
      data_, std::as_writable_bytes(std::span<uint64_t>(mirror_)));
}

Status CachedFarVector::Sync() {
  if (!mirror_enabled_) {
    return FailedPrecondition("mirror not enabled");
  }
  ++stats_.syncs;
  bool lost = false;
  while (auto event = client_->PollNotification()) {
    if (event->kind == NotifyEventKind::kLossWarning) {
      lost = true;
      continue;
    }
    if (event->data.empty()) {
      continue;
    }
    const uint64_t first = (event->addr - data_) / kWordSize;
    const uint64_t words = event->data.size() / kWordSize;
    for (uint64_t w = 0; w < words && first + w < size_; ++w) {
      mirror_[first + w] = LoadAs<uint64_t>(
          std::span<const std::byte>(event->data), w * kWordSize);
      ++stats_.events_applied;
    }
  }
  if (lost) {
    return Resync();
  }
  return OkStatus();
}

Result<uint64_t> CachedFarVector::Get(uint64_t i) {
  if (!mirror_enabled_) {
    return Status(StatusCode::kFailedPrecondition, "mirror not enabled");
  }
  if (i >= size_) {
    return Status(StatusCode::kOutOfRange, "cached vector index");
  }
  client_->AccountNear(1);
  return mirror_[i];
}

}  // namespace fmds
