#include "src/core/far_queue.h"

#include <thread>

#include "src/common/bytes.h"
#include "src/obs/recorder.h"

namespace fmds {

namespace {
// Bounded spin for a slot whose assigned producer is in flight.
constexpr int kSlotSpinLimit = 1 << 20;
}  // namespace

FarQueue::FarQueue(FarClient* client, FarAddr header)
    : client_(client), header_(header) {}

Result<FarQueue> FarQueue::Create(FarClient* client, FarAllocator* alloc,
                                  Options options) {
  if (options.capacity < 4 * (options.max_clients + 1)) {
    return Status(StatusCode::kInvalidArgument,
                  "capacity must be >= 4*(max_clients+1)");
  }
  // Header + ring + slack (+1 guard word), one contiguous block.
  const uint64_t slack_slots = options.max_clients + 2;
  const uint64_t total =
      kHeaderBytes + (options.capacity + slack_slots) * kWordSize;
  FMDS_ASSIGN_OR_RETURN(FarAddr header, alloc->Allocate(total));
  const FarAddr ring_base = header + kHeaderBytes;

  std::vector<uint64_t> image(total / kWordSize, 0);
  image[kHdrHead / 8] = ring_base;
  image[kHdrTail / 8] = ring_base;
  image[kHdrLock / 8] = 0;
  image[kHdrRingBase / 8] = ring_base;
  image[kHdrCapacity / 8] = options.capacity;
  image[kHdrMaxClients / 8] = options.max_clients;
  FMDS_RETURN_IF_ERROR(client->Write(
      header, std::as_bytes(std::span<const uint64_t>(image))));

  FarQueue queue(client, header);
  queue.ring_base_ = ring_base;
  queue.capacity_ = options.capacity;
  queue.max_clients_ = options.max_clients;
  queue.refresh_every_ = options.refresh_every;
  queue.lock_ = FarMutex::Attach(header + kHdrLock);
  queue.est_head_ = ring_base;
  queue.est_tail_ = ring_base;
  if (options.watch_estimates) {
    FMDS_RETURN_IF_ERROR(queue.EnableWatch());
  }
  return queue;
}

Result<FarQueue> FarQueue::Attach(FarClient* client, FarAddr header) {
  return Attach(client, header, Options{});
}

Result<FarQueue> FarQueue::Attach(FarClient* client, FarAddr header,
                                  Options options) {
  uint64_t hdr[8];
  FMDS_RETURN_IF_ERROR(client->Read(
      header, std::as_writable_bytes(std::span<uint64_t>(hdr))));
  FarQueue queue(client, header);
  queue.ring_base_ = hdr[kHdrRingBase / 8];
  queue.capacity_ = hdr[kHdrCapacity / 8];
  queue.max_clients_ = hdr[kHdrMaxClients / 8];
  queue.refresh_every_ = options.refresh_every;
  queue.lock_ = FarMutex::Attach(header + kHdrLock);
  queue.est_head_ = hdr[kHdrHead / 8];
  queue.est_tail_ = hdr[kHdrTail / 8];
  if (options.watch_estimates) {
    FMDS_RETURN_IF_ERROR(queue.EnableWatch());
  }
  return queue;
}

void FarQueue::EstimateWatch::OnNotify(const NotifyEvent& event) {
  if (event.kind == NotifyEventKind::kLossWarning) {
    loss = true;
    return;
  }
  // event.word is the pointer word's value read inside the node's
  // subscription critical section at publish time; coalesced events keep
  // the latest, so adopting it directly is always monotone in real time.
  if (event.sub_id == head_sub) {
    head = event.word;
  } else if (event.sub_id == tail_sub) {
    tail = event.word;
  }
}

Status FarQueue::EnableWatch() {
  watch_ = std::make_unique<EstimateWatch>();
  NotifySpec spec;
  spec.mode = NotifyMode::kOnWrite;
  spec.len = kWordSize;
  // Coalescing is safe (and desirable) here: only the newest pointer value
  // matters, and the event's `word` field carries it.
  spec.policy = DeliveryPolicy{0.0, /*coalesce=*/true, 0};
  uint64_t snapshot = 0;
  spec.addr = head_addr();
  FMDS_ASSIGN_OR_RETURN(watch_->head_sub,
                        client_->Subscribe(spec, watch_.get(), &snapshot));
  watch_->head = snapshot;
  spec.addr = tail_addr();
  FMDS_ASSIGN_OR_RETURN(watch_->tail_sub,
                        client_->Subscribe(spec, watch_.get(), &snapshot));
  watch_->tail = snapshot;
  // Read-and-arm: the snapshots are exact at registration time.
  est_head_ = watch_->head;
  est_tail_ = watch_->tail;
  return OkStatus();
}

Status FarQueue::MaybeRefreshEstimates() {
  if (watch_ != nullptr) {
    // Pushed estimates: drain whatever the fabric delivered (free when the
    // channel is empty) and adopt the watch's latest pointer values. Our
    // own faai/saai publish notifications synchronously at the node, so by
    // the time the next op dispatches, the watch is at least as fresh as
    // our last completed op.
    (void)client_->DispatchNotifications();
    if (watch_->loss) {
      watch_->loss = false;
      FMDS_ASSIGN_OR_RETURN(watch_->head,
                            client_->ReadWordBackground(head_addr()));
      FMDS_ASSIGN_OR_RETURN(watch_->tail,
                            client_->ReadWordBackground(tail_addr()));
    }
    est_head_ = watch_->head;
    est_tail_ = watch_->tail;
    return OkStatus();
  }
  if (ops_since_refresh_ < refresh_every_) {
    return OkStatus();
  }
  ops_since_refresh_ = 0;
  FMDS_ASSIGN_OR_RETURN(est_head_, client_->ReadWordBackground(head_addr()));
  FMDS_ASSIGN_OR_RETURN(est_tail_, client_->ReadWordBackground(tail_addr()));
  return OkStatus();
}

// Slots between two absolute pointer values, modulo one ring lap.
static uint64_t LogicalOccSlots(uint64_t head, uint64_t tail,
                                uint64_t ring_bytes) {
  int64_t d = static_cast<int64_t>(tail) - static_cast<int64_t>(head);
  if (d < 0) {
    d += static_cast<int64_t>(ring_bytes);
  }
  return static_cast<uint64_t>(d) / kWordSize;
}

Status FarQueue::Enqueue(uint64_t value) {
  if (value == 0) {
    return InvalidArgument("queue values must be non-zero");
  }
  ScopedOpLabel label(&client_->recorder(), "queue.enqueue");
  FMDS_RETURN_IF_ERROR(MaybeRefreshEstimates());
  // Second logical slack (§5.3): when the *estimated* free space dips below
  // 2n, leave the fast path and read the true head.
  uint64_t occ = LogicalOccSlots(est_head_, est_tail_,
                                 capacity_ * kWordSize);
  if (occ + 2 * max_clients_ >= capacity_) {
    ++op_stats_.slow_enqueues;
    ++client_->mutable_stats().slow_path_ops;
    FMDS_ASSIGN_OR_RETURN(est_head_, client_->ReadWord(head_addr()));
    occ = LogicalOccSlots(est_head_, est_tail_, capacity_ * kWordSize);
    if (occ + max_clients_ + 1 >= capacity_) {
      return ResourceExhausted("queue full");
    }
  }
  // Fast path: ONE far access — bump tail and store the value at the old
  // tail slot atomically (saai).
  auto landed = client_->Saai(tail_addr(), kWordSize, AsConstBytes(value));
  if (!landed.ok()) {
    return landed.status();
  }
  est_tail_ = *landed + kWordSize;
  ++ops_since_refresh_;
  if (*landed < ring_end()) {
    ++op_stats_.fast_enqueues;
    return OkStatus();
  }
  if (*landed >= slack_end()) {
    return Internal("tail overshot the slack region (protocol violation)");
  }
  return FixupTailLanding(*landed, value);
}

Status FarQueue::FixupTailLanding(FarAddr landed, uint64_t value) {
  (void)value;  // the slot already holds it; fixup moves it by address
  ++op_stats_.slow_enqueues;
  ++client_->mutable_stats().slow_path_ops;
  FMDS_RETURN_IF_ERROR(lock_.Lock(*client_, MutexWaitStrategy::kPoll));
  const uint64_t j = (landed - ring_end()) / kWordSize;
  // Move my item to its wrapped position unless a previous fixup already
  // did (then my slack slot reads 0).
  FMDS_ASSIGN_OR_RETURN(uint64_t mine, client_->ReadWord(landed));
  if (mine != 0) {
    FMDS_RETURN_IF_ERROR(
        client_->WriteWord(ring_base_ + j * kWordSize, mine));
    FMDS_RETURN_IF_ERROR(client_->WriteWord(landed, 0));
  }
  // First lander still observing the tail in slack subtracts the lap, after
  // sweeping every completed slack slot back into the ring.
  FMDS_ASSIGN_OR_RETURN(uint64_t tail_now, client_->ReadWord(tail_addr()));
  if (tail_now >= ring_end()) {
    const uint64_t slack_slots = max_clients_ + 2;
    std::vector<uint64_t> slack(slack_slots);
    FMDS_RETURN_IF_ERROR(client_->Read(
        ring_end(), std::as_writable_bytes(std::span<uint64_t>(slack))));
    for (uint64_t k = 0; k < slack_slots; ++k) {
      if (slack[k] != 0) {
        FMDS_RETURN_IF_ERROR(
            client_->WriteWord(ring_base_ + k * kWordSize, slack[k]));
        FMDS_RETURN_IF_ERROR(client_->WriteWord(ring_end() + k * kWordSize,
                                                0));
      }
    }
    FMDS_RETURN_IF_ERROR(
        client_->FetchAdd(tail_addr(),
                          static_cast<uint64_t>(-(capacity_ * kWordSize)))
            .status());
    ++op_stats_.wraps;
  }
  FMDS_RETURN_IF_ERROR(lock_.Unlock(*client_));
  ops_since_refresh_ = refresh_every_;  // force a fresh estimate next op
  return OkStatus();
}

Result<uint64_t> FarQueue::Dequeue() {
  ScopedOpLabel label(&client_->recorder(), "queue.dequeue");
  FMDS_RETURN_IF_ERROR(MaybeRefreshEstimates());
  uint64_t occ =
      LogicalOccSlots(est_head_, est_tail_, capacity_ * kWordSize);
  if (occ == 0) {
    if (watch_ != nullptr) {
      // Watched pointers: the estimate is push-fresh, so an idle poll ends
      // here at ZERO far accesses (bench_e5's idle-poll gate). A concurrent
      // enqueue not yet delivered surfaces on a later poll — same
      // conservative-empty contract as the synchronous check below.
      return Status(StatusCode::kNotFound, "queue empty");
    }
    // Estimate says maybe-empty: read the true tail before reserving.
    ++op_stats_.slow_dequeues;
    ++client_->mutable_stats().slow_path_ops;
    FMDS_ASSIGN_OR_RETURN(est_tail_, client_->ReadWord(tail_addr()));
    occ = LogicalOccSlots(est_head_, est_tail_, capacity_ * kWordSize);
    if (occ == 0) {
      return Status(StatusCode::kNotFound, "queue empty");
    }
  }
  // Fast path: ONE far access — bump head and load the old head slot (faai).
  uint64_t value = 0;
  auto landed = client_->Faai(head_addr(), kWordSize, AsBytes(value));
  if (!landed.ok()) {
    return landed.status();
  }
  est_head_ = *landed + kWordSize;
  ++ops_since_refresh_;
  if (*landed >= slack_end()) {
    return Status(StatusCode::kInternal,
                  "head overshot the slack region (protocol violation)");
  }
  if (*landed >= ring_end()) {
    return FixupHeadLanding(*landed, value);
  }
  if (value == 0) {
    // Empty race: we reserved a slot no producer has filled (yet). Either
    // the producer assigned to this exact slot shows up (slots fill in
    // order, so ours fills before any later reservation's), or we give the
    // reservation back with a CAS that only succeeds once every later
    // reserver has unwound first (LIFO unwind — prevents double-consuming
    // a slot another dequeuer still owns).
    ++op_stats_.empty_races;
    ++op_stats_.slow_dequeues;
    ++client_->mutable_stats().slow_path_ops;
    for (int spin = 0; spin < kSlotSpinLimit; ++spin) {
      FMDS_ASSIGN_OR_RETURN(uint64_t v, client_->ReadWord(*landed));
      if (v != 0) {
        FMDS_RETURN_IF_ERROR(client_->PostWriteWordBackground(*landed, 0));
        return v;
      }
      FMDS_ASSIGN_OR_RETURN(
          uint64_t old,
          client_->CompareSwap(head_addr(), *landed + kWordSize, *landed));
      if (old == *landed + kWordSize) {
        est_head_ = *landed;
        return Status(StatusCode::kNotFound, "queue empty");
      }
      std::this_thread::yield();
    }
    return Status(StatusCode::kAborted, "empty-race unwind did not settle");
  }
  ++op_stats_.fast_dequeues;
  // Reset the consumed slot off the critical path so the next lap's empty
  // detection stays sound.
  FMDS_RETURN_IF_ERROR(client_->PostWriteWordBackground(*landed, 0));
  return value;
}

Result<uint64_t> FarQueue::FixupHeadLanding(FarAddr landed,
                                            uint64_t faai_value) {
  ++op_stats_.slow_dequeues;
  ++client_->mutable_stats().slow_path_ops;
  const uint64_t j = (landed - ring_end()) / kWordSize;
  Result<uint64_t> out = Status(StatusCode::kInternal, "unset");
  if (faai_value != 0) {
    // Margin violation: the slack slot still held a tail item when our faai
    // read it. The tail fixup (which runs under the lock) may have since
    // copied it to its wrapped ring position; under the lock, exactly one
    // of {slack slot, ring slot} still holds the value — clear both so the
    // item is consumed exactly once.
    FMDS_RETURN_IF_ERROR(lock_.Lock(*client_, MutexWaitStrategy::kPoll));
    FMDS_ASSIGN_OR_RETURN(uint64_t in_slack, client_->ReadWord(landed));
    if (in_slack == faai_value) {
      FMDS_RETURN_IF_ERROR(client_->WriteWord(landed, 0));
    }
    FMDS_ASSIGN_OR_RETURN(uint64_t in_ring,
                          client_->ReadWord(ring_base_ + j * kWordSize));
    if (in_ring == faai_value) {
      FMDS_RETURN_IF_ERROR(
          client_->WriteWord(ring_base_ + j * kWordSize, 0));
    }
    FMDS_RETURN_IF_ERROR(lock_.Unlock(*client_));
    out = faai_value;
  } else {
    // Normal wrap: my reservation logically names ring slot j; the tail
    // fixup places the item there. Spin WITHOUT the queue lock — the tail
    // fixup needs it to perform that very copy.
    bool got = false;
    for (int spin = 0; spin < kSlotSpinLimit; ++spin) {
      FMDS_ASSIGN_OR_RETURN(uint64_t v,
                            client_->ReadWord(ring_base_ + j * kWordSize));
      if (v != 0) {
        FMDS_RETURN_IF_ERROR(
            client_->WriteWord(ring_base_ + j * kWordSize, 0));
        out = v;
        got = true;
        break;
      }
      std::this_thread::yield();
    }
    if (!got) {
      out = Status(StatusCode::kAborted, "wrapped slot never filled");
    }
  }
  // Subtract the lap (once) if the head still points into the slack.
  FMDS_RETURN_IF_ERROR(lock_.Lock(*client_, MutexWaitStrategy::kPoll));
  auto head_now = client_->ReadWord(head_addr());
  if (head_now.ok() && *head_now >= ring_end()) {
    FMDS_RETURN_IF_ERROR(
        client_->FetchAdd(head_addr(),
                          static_cast<uint64_t>(-(capacity_ * kWordSize)))
            .status());
    ++op_stats_.wraps;
  }
  FMDS_RETURN_IF_ERROR(lock_.Unlock(*client_));
  ops_since_refresh_ = refresh_every_;
  return out;
}

Result<uint64_t> FarQueue::SizeSlow() {
  FMDS_ASSIGN_OR_RETURN(est_head_, client_->ReadWord(head_addr()));
  FMDS_ASSIGN_OR_RETURN(est_tail_, client_->ReadWord(tail_addr()));
  return LogicalOccSlots(est_head_, est_tail_, capacity_ * kWordSize);
}

}  // namespace fmds
