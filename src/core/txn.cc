#include "src/core/txn.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "src/common/bytes.h"
#include "src/common/rng.h"
#include "src/obs/recorder.h"

namespace fmds {

namespace {
uint64_t VersionBits(uint64_t version) { return version & 0xffffffffull; }
}  // namespace

Status Txn::Abort(const char* why) {
  if (!aborted_) {
    aborted_ = true;
    FarClient* c = client();
    ++c->mutable_stats().txn_aborts;
    c->recorder().RecordTxnOutcome(c->clock().now_ns(), /*committed=*/false,
                                   validate_failed_);
  }
  return Aborted(why);
}

Status Txn::RecordView(uint64_t key, uint32_t shard_idx,
                       const HtTree::TxnReadView& view, bool record_key) {
  auto [it, inserted] = buckets_.try_emplace(
      view.bucket,
      BucketView{view.head_word, view.version, view.versioned, shard_idx});
  if (!inserted) {
    if (it->second.word != view.head_word) {
      // Two reads of the same bucket saw different words: a writer landed
      // between them, so no single snapshot contains both observations.
      return Abort("txn read set is not a snapshot");
    }
    if (view.versioned && !it->second.versioned) {
      it->second.version = view.version;
      it->second.versioned = true;
    }
  }
  if (record_key) {
    reads_.emplace(key, ReadRec{view.found, view.value, view.bucket});
  }
  return OkStatus();
}

Result<uint64_t> Txn::Get(uint64_t key) {
  if (aborted_ || committed_) {
    return Aborted("txn handle is dead");
  }
  // Write-behind interop: a staged-but-unpublished write is invisible to
  // TxnRead's bucket probe, so drain the pending table first (no-op when
  // write-behind is off or idle).
  FMDS_RETURN_IF_ERROR(map_->DrainWriteBehind());
  if (auto w = writes_.find(key); w != writes_.end()) {
    // Read-your-writes from the buffer.
    if (w->second.tombstone) {
      return NotFound("txn: key removed by this txn");
    }
    return w->second.value;
  }
  if (auto r = reads_.find(key); r != reads_.end()) {
    // Repeatable read from the memo.
    if (!r->second.found) {
      return NotFound("txn: key absent");
    }
    return r->second.value;
  }
  const uint32_t shard_idx = map_->ShardOf(key);
  auto view = map_->shard(shard_idx).TxnRead(key, /*allow_cache=*/true);
  if (!view.ok()) {
    if (view.status().code() == StatusCode::kAborted) {
      return Abort("txn read outwaited a pending bucket");
    }
    return view.status();
  }
  FMDS_RETURN_IF_ERROR(RecordView(key, shard_idx, *view, /*record_key=*/true));
  if (!view->found) {
    return NotFound("txn: key absent");
  }
  return view->value;
}

std::vector<Result<uint64_t>> Txn::MultiGet(std::span<const uint64_t> keys) {
  std::vector<Result<uint64_t>> results(
      keys.size(), Status(StatusCode::kInternal, "txn multiget unresolved"));
  if (aborted_ || committed_) {
    for (auto& r : results) {
      r = Aborted("txn handle is dead");
    }
    return results;
  }
  if (const Status drained = map_->DrainWriteBehind(); !drained.ok()) {
    for (auto& r : results) {
      r = drained;
    }
    return results;
  }
  FarClient* c = client();
  ScopedOpLabel label(&c->recorder(), "txn.read");
  (void)c->DispatchNotifications();

  // Resolve what never needs the fabric: write buffer, read memo, caches.
  const size_t num_shards = map_->num_shards();
  std::vector<std::vector<uint64_t>> shard_keys(num_shards);
  std::vector<std::vector<size_t>> shard_pos(num_shards);
  for (size_t i = 0; i < keys.size(); ++i) {
    const uint64_t key = keys[i];
    if (auto w = writes_.find(key); w != writes_.end()) {
      results[i] = w->second.tombstone
                       ? Result<uint64_t>(NotFound("txn: key removed"))
                       : Result<uint64_t>(w->second.value);
      continue;
    }
    if (auto r = reads_.find(key); r != reads_.end()) {
      results[i] = r->second.found
                       ? Result<uint64_t>(r->second.value)
                       : Result<uint64_t>(NotFound("txn: key absent"));
      continue;
    }
    const uint32_t shard_idx = map_->ShardOf(key);
    NearCache* cache = map_->shard(shard_idx).near_cache();
    if (cache != nullptr) {
      uint64_t cached_value = 0;
      FarAddr watch = kNullFarAddr;
      uint64_t watch_word = 0;
      if (cache->LookupWatch(key, AsBytes(cached_value), &watch,
                             &watch_word)) {
        HtTree::TxnReadView view;
        view.found = true;
        view.value = cached_value;
        view.bucket = watch;
        view.head_word = watch_word;
        Status rec = RecordView(key, shard_idx, view, true);
        results[i] = rec.ok() ? Result<uint64_t>(cached_value)
                              : Result<uint64_t>(rec);
        continue;
      }
    }
    shard_keys[shard_idx].push_back(key);
    shard_pos[shard_idx].push_back(i);
  }
  if (aborted_) {
    for (auto& r : results) {
      if (!r.ok() && r.status().code() == StatusCode::kInternal) {
        r = Aborted("txn aborted during multiget");
      }
    }
    return results;
  }

  // Batched chain walks: one txn-mode wave engine per shard, every wave
  // flushed through a single doorbell across ALL shards (the §7 fan-out).
  // A read set over depth-d chains costs O(d) doorbells total, where the
  // old per-key TxnRead fallback paid O(keys × d) sequential round trips.
  // Keys the engine cannot resolve wait-free (pending or stale heads)
  // fall back to the sync path's retry/backoff discipline below.
  std::vector<HtTree::BatchGet> engines;
  std::vector<uint32_t> engine_shard;
  for (uint32_t s = 0; s < num_shards; ++s) {
    if (shard_keys[s].empty()) {
      continue;
    }
    engines.emplace_back(&map_->shard(s),
                         std::span<const uint64_t>(shard_keys[s]),
                         /*txn_mode=*/true);
    engine_shard.push_back(s);
  }
  while (true) {
    size_t posted = 0;
    for (HtTree::BatchGet& engine : engines) {
      posted += engine.PostWave();
    }
    if (posted == 0) {
      break;
    }
    std::vector<FarClient::Completion> done;
    (void)c->WaitAll(&done);
    const auto completions = HtTree::ToCompletionMap(std::move(done));
    for (HtTree::BatchGet& engine : engines) {
      engine.AbsorbWave(completions);
    }
  }
  for (size_t e = 0; e < engines.size(); ++e) {
    const uint32_t s = engine_shard[e];
    HtTree* shard = &map_->shard(s);
    for (size_t j = 0; j < shard_keys[s].size(); ++j) {
      const size_t idx = shard_pos[s][j];
      const uint64_t key = shard_keys[s][j];
      if (aborted_) {
        results[idx] = Aborted("txn aborted during multiget");
        continue;
      }
      HtTree::TxnReadView view;
      switch (engines[e].txn_outcome(j)) {
        case HtTree::BatchGet::TxnOutcome::kError:
          results[idx] = engines[e].txn_error(j);
          continue;
        case HtTree::BatchGet::TxnOutcome::kView:
          view = engines[e].txn_view(j);
          break;
        case HtTree::BatchGet::TxnOutcome::kFallback: {
          auto fallback = shard->TxnRead(key, /*allow_cache=*/false);
          --shard->op_stats_.gets;  // the engine already counted this key
          if (!fallback.ok()) {
            results[idx] =
                fallback.status().code() == StatusCode::kAborted
                    ? Abort("txn read outwaited a pending bucket")
                    : fallback.status();
            continue;
          }
          view = *fallback;
          break;
        }
      }
      Status rec = RecordView(key, s, view, true);
      if (!rec.ok()) {
        results[idx] = rec;
        continue;
      }
      results[idx] = view.found
                         ? Result<uint64_t>(view.value)
                         : Result<uint64_t>(NotFound("txn: key absent"));
    }
  }
  return results;
}

Result<FarAddr> Txn::EnsureWritableBucket(uint64_t key) {
  if (auto w = writes_.find(key); w != writes_.end()) {
    return w->second.bucket;  // pinned by the earlier write
  }
  if (auto r = reads_.find(key); r != reads_.end()) {
    const auto bv = buckets_.find(r->second.bucket);
    if (bv != buckets_.end() && bv->second.versioned) {
      return r->second.bucket;
    }
  }
  // Pin with a far-validated read: commit needs the table version for item
  // images, and the cache stores only words. An earlier cache-served read
  // of this bucket is cross-checked by RecordView (word mismatch aborts).
  const uint32_t shard_idx = map_->ShardOf(key);
  auto view = map_->shard(shard_idx).TxnRead(key, /*allow_cache=*/false);
  if (!view.ok()) {
    if (view.status().code() == StatusCode::kAborted) {
      return Abort("txn write outwaited a pending bucket");
    }
    return view.status();
  }
  FMDS_RETURN_IF_ERROR(
      RecordView(key, shard_idx, *view, !reads_.contains(key)));
  return view->bucket;
}

Status Txn::BufferWrite(uint64_t key, uint64_t value, bool tombstone) {
  if (aborted_ || committed_) {
    return Aborted("txn handle is dead");
  }
  // A staged async write to this key must publish before the txn pins the
  // bucket, or the flusher's CAS could land between pin and commit.
  FMDS_RETURN_IF_ERROR(map_->DrainWriteBehind());
  FMDS_ASSIGN_OR_RETURN(FarAddr bucket, EnsureWritableBucket(key));
  writes_[key] = WriteRec{value, tombstone, bucket};
  return OkStatus();
}

Status Txn::Put(uint64_t key, uint64_t value) {
  return BufferWrite(key, value, /*tombstone=*/false);
}

Status Txn::Remove(uint64_t key) {
  return BufferWrite(key, 0, /*tombstone=*/true);
}

Status Txn::BuildCommits(std::vector<BucketCommit>* commits) {
  std::unordered_map<FarAddr, size_t> index;
  for (const auto& [key, w] : writes_) {
    const auto bv = buckets_.find(w.bucket);
    if (bv == buckets_.end() || !bv->second.versioned) {
      return Internal("txn write bucket was never pinned");
    }
    const auto [it, inserted] = index.try_emplace(w.bucket, commits->size());
    if (inserted) {
      BucketCommit bc;
      bc.bucket = w.bucket;
      bc.shard = &map_->shard(bv->second.shard);
      bc.expected = bv->second.word;
      commits->push_back(std::move(bc));
    }
    (*commits)[it->second].writes.emplace_back(key, w);
  }
  for (BucketCommit& bc : *commits) {
    const uint64_t ver = VersionBits(buckets_[bc.bucket].version);
    // Chainlet: f_m -> ... -> f_0 -> pre-txn head. Later entries shadow
    // earlier ones, matching insert-at-head semantics.
    FarAddr prev = bc.expected;
    bc.items.reserve(bc.writes.size());
    for (const auto& [key, w] : bc.writes) {
      FMDS_ASSIGN_OR_RETURN(FarAddr slot, bc.shard->AllocItemSlot());
      bc.items.emplace_back(
          slot, HtTree::Item{key, w.value,
                             ver | (w.tombstone ? HtTree::kFlagTombstone : 0),
                             prev});
      prev = slot;
    }
    bc.final_head = prev;
    // Lock record: key/value are meaningless (readers skip on the flag
    // before any key comparison); `next` preserves the pre-txn view.
    FMDS_ASSIGN_OR_RETURN(FarAddr pending, bc.shard->AllocItemSlot());
    bc.pending = pending;
    bc.pending_item =
        HtTree::Item{0, 0, ver | HtTree::kFlagPending, bc.expected};
  }
  return OkStatus();
}

Status Txn::RollbackPrepared(std::span<BucketCommit* const> prepared) {
  if (prepared.empty()) {
    return OkStatus();
  }
  FarClient* c = client();
  ScopedOpLabel label(&c->recorder(), "txn.abort");
  std::vector<FarClient::CasTarget> targets;
  std::vector<uint64_t> observed(prepared.size());
  targets.reserve(prepared.size());
  for (const BucketCommit* bc : prepared) {
    targets.push_back(
        FarClient::CasTarget{bc->bucket, bc->pending, bc->expected});
  }
  FMDS_RETURN_IF_ERROR(c->CasBatch(targets, observed));
  for (size_t i = 0; i < prepared.size(); ++i) {
    if (observed[i] != prepared[i]->pending) {
      // Owner-only invariant broken: nobody else may touch a pending word.
      return Internal("txn rollback CAS lost a pending bucket");
    }
  }
  return OkStatus();
}

void Txn::FinalizeBucket(const BucketCommit& bc) {
  HtTree* shard = bc.shard;
  if (shard->options_.use_head_hints) {
    shard->head_hints_.Upsert(bc.bucket, bc.final_head);
  }
  if (shard->near_cache_ == nullptr) {
    return;
  }
  for (const auto& [key, w] : bc.writes) {
    if (w.tombstone) {
      shard->near_cache_->Invalidate(key);
    } else {
      // Writer-side refill under the committed head word — same zero-RTT
      // path as HtTree::Put's exit.
      shard->near_cache_->Refill(key, AsConstBytes(w.value), bc.bucket,
                                 kWordSize, bc.final_head);
    }
  }
}

Status Txn::Commit() {
  if (aborted_) {
    return Aborted("txn already aborted");
  }
  if (committed_) {
    return FailedPrecondition("txn already committed");
  }
  committed_ = true;
  // Publish any staged async writes before validation reads the bucket
  // words the commit round will certify.
  FMDS_RETURN_IF_ERROR(map_->DrainWriteBehind());
  FarClient* c = client();
  ScopedOpLabel label(&c->recorder(), "txn.commit");

  // Read-only: one validation doorbell re-reading every recorded bucket
  // word. All read intervals share [last read, first validation read], so
  // unchanged words certify a consistent snapshot.
  if (writes_.empty()) {
    if (!buckets_.empty()) {
      ScopedOpLabel vlabel(&c->recorder(), "txn.validate");
      std::vector<uint64_t> expected;
      expected.reserve(buckets_.size());
      for (const auto& [bucket, bv] : buckets_) {
        expected.push_back(bv.word);
        (void)c->PostReadWord(bucket);
      }
      std::vector<FarClient::Completion> done;
      FMDS_RETURN_IF_ERROR(c->WaitAll(&done));
      for (size_t i = 0; i < expected.size(); ++i) {
        if (done[i].word != expected[i]) {
          ++c->mutable_stats().txn_validate_fails;
          validate_failed_ = true;
          return Abort("txn validation failed");
        }
      }
    }
    ++c->mutable_stats().txn_commits;
    c->recorder().RecordTxnOutcome(c->clock().now_ns(), /*committed=*/true,
                                   false);
    return OkStatus();
  }

  std::vector<BucketCommit> commits;
  FMDS_RETURN_IF_ERROR(BuildCommits(&commits));

  // Fast path: a single write bucket and no other read buckets means the
  // prepare CAS IS the whole transaction — publish the chainlet directly,
  // no lock record, one doorbell (bodies + CAS; per-node post order makes
  // the items visible before the CAS links them).
  if (commits.size() == 1 && buckets_.size() == 1) {
    BucketCommit& bc = commits.front();
    for (const auto& [slot, img] : bc.items) {
      (void)c->PostWrite(slot, AsConstBytes(img));
    }
    bc.cas_op = c->PostCompareSwap(bc.bucket, bc.expected, bc.final_head);
    std::vector<FarClient::Completion> done;
    FMDS_RETURN_IF_ERROR(c->WaitAll(&done));
    const auto completions = HtTree::ToCompletionMap(std::move(done));
    const auto it = completions.find(bc.cas_op);
    if (it == completions.end()) {
      return Internal("txn commit CAS completion lost");
    }
    if (it->second.word != bc.expected) {
      ++c->mutable_stats().txn_prepare_fails;
      return Abort("txn commit CAS lost the bucket");
    }
    FinalizeBucket(bc);
    ++c->mutable_stats().txn_commits;
    c->recorder().RecordTxnOutcome(c->clock().now_ns(), /*committed=*/true,
                                   false);
    return OkStatus();
  }

  // Round P — prepare: per write bucket, publish items + lock record and
  // CAS the bucket word recorded-head -> lock record, all in one flush.
  // NOTE: with shard pinning, a bucket's items and its bucket word live on
  // the same node, so the doorbell's per-node post order guarantees the
  // bodies land first (the same contract MultiPut relies on).
  for (BucketCommit& bc : commits) {
    for (const auto& [slot, img] : bc.items) {
      (void)c->PostWrite(slot, AsConstBytes(img));
    }
    (void)c->PostWrite(bc.pending, AsConstBytes(bc.pending_item));
    bc.cas_op = c->PostCompareSwap(bc.bucket, bc.expected, bc.pending);
  }
  std::vector<FarClient::Completion> done;
  FMDS_RETURN_IF_ERROR(c->WaitAll(&done));
  const auto completions = HtTree::ToCompletionMap(std::move(done));
  std::vector<BucketCommit*> prepared;
  bool prepare_failed = false;
  for (BucketCommit& bc : commits) {
    const auto it = completions.find(bc.cas_op);
    if (it == completions.end() || !it->second.status.ok()) {
      prepare_failed = true;
      continue;
    }
    if (it->second.word == bc.expected) {
      prepared.push_back(&bc);
    } else {
      prepare_failed = true;
    }
  }
  if (prepare_failed) {
    FMDS_RETURN_IF_ERROR(RollbackPrepared(prepared));
    ++c->mutable_stats().txn_prepare_fails;
    return Abort("txn prepare lost a bucket");
  }

  // Round V — validate the read-set buckets the prepare didn't already
  // cover (its CAS validated every write bucket's word).
  std::vector<std::pair<FarAddr, uint64_t>> checks;
  for (const auto& [bucket, bv] : buckets_) {
    if (std::any_of(
            commits.begin(), commits.end(),
            [&](const BucketCommit& bc) { return bc.bucket == bucket; })) {
      continue;
    }
    checks.emplace_back(bucket, bv.word);
  }
  if (!checks.empty()) {
    ScopedOpLabel vlabel(&c->recorder(), "txn.validate");
    for (const auto& [bucket, word] : checks) {
      (void)word;
      (void)c->PostReadWord(bucket);
    }
    std::vector<FarClient::Completion> vdone;
    FMDS_RETURN_IF_ERROR(c->WaitAll(&vdone));
    for (size_t i = 0; i < checks.size(); ++i) {
      if (vdone[i].word != checks[i].second) {
        FMDS_RETURN_IF_ERROR(RollbackPrepared(prepared));
        ++c->mutable_stats().txn_validate_fails;
        validate_failed_ = true;
        return Abort("txn validation failed");
      }
    }
  }

  // Round C — commit: swing every locked bucket lock record -> new chain
  // head in one CasBatch. Must succeed: pending words are owner-only.
  std::vector<FarClient::CasTarget> targets;
  std::vector<uint64_t> observed(commits.size());
  targets.reserve(commits.size());
  for (const BucketCommit& bc : commits) {
    targets.push_back(
        FarClient::CasTarget{bc.bucket, bc.pending, bc.final_head});
  }
  FMDS_RETURN_IF_ERROR(c->CasBatch(targets, observed));
  for (size_t i = 0; i < commits.size(); ++i) {
    if (observed[i] != commits[i].pending) {
      return Internal("txn commit CAS lost a pending bucket");
    }
  }
  for (const BucketCommit& bc : commits) {
    FinalizeBucket(bc);
  }
  ++c->mutable_stats().txn_commits;
  c->recorder().RecordTxnOutcome(c->clock().now_ns(), /*committed=*/true,
                                 false);
  return OkStatus();
}

Status RunTxn(ShardedMap* map, const TxnOptions& options,
              const std::function<Status(Txn&)>& body) {
  Rng jitter(options.seed);
  Status last = Aborted("txn: no attempts made");
  const int attempts = std::max(1, options.max_attempts);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    Txn txn(map);
    Status s = body(txn);
    if (s.ok()) {
      s = txn.Commit();
    }
    if (s.ok()) {
      return s;
    }
    if (s.code() != StatusCode::kAborted) {
      return s;  // real failure — retrying would repeat it
    }
    last = s;
    if (options.backoff_base_us > 0 && attempt + 1 < attempts) {
      // Jittered exponential backoff, capped: contending txns decorrelate
      // instead of re-colliding in lockstep.
      const uint64_t ceiling = options.backoff_base_us
                               << std::min(attempt, 6);
      const uint64_t us = 1 + jitter.NextBelow(ceiling);
      std::this_thread::sleep_for(std::chrono::microseconds(us));
    }
  }
  return last;
}

}  // namespace fmds
