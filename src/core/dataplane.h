// Adaptive hybrid dataplane interfaces (DESIGN.md §13).
//
// §3.1 presents two ways to operate on a far structure: one-sided access
// (k dependent accesses = k round trips, zero server CPU) and shipping the
// operation to a processor near the memory (1 round trip + service time, and
// the chain walk happens at memory-local cost). Brock et al. (PAPERS.md)
// show the winner flips with op complexity and server occupancy — so the
// choice belongs to a per-operation router, not to the structure.
//
// These are the two seams HtTree/ShardedMap route through. Both are
// implemented by src/route/ (DataplaneRouter, RpcMapPath); src/core only
// depends on the abstract shape, keeping the core -> route dependency
// inverted (route links core, not vice versa).
#ifndef FMDS_SRC_CORE_DATAPLANE_H_
#define FMDS_SRC_CORE_DATAPLANE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/status.h"
#include "src/fabric/fabric.h"

namespace fmds {

// Operation classes the router prices separately: their one-sided cost
// scales differently with structure state (chain depth, CAS contention,
// batch size), so each keeps its own per-node estimates.
enum class RoutedOp : uint8_t { kGet = 0, kPut = 1, kRemove = 2, kMultiGet = 3 };
inline constexpr size_t kRoutedOpCount = 4;

enum class DataplaneRoute : uint8_t { kOneSided = 0, kRpc = 1 };

// Per-operation route decision + measurement feedback. One decider serves
// every handle bound to one FarClient (single application thread); state is
// keyed by (op kind, memory node), so ShardedMap shards pinned to different
// nodes are priced independently.
class RouteDecider {
 public:
  virtual ~RouteDecider() = default;
  // `units` is the caller's estimate of serial one-sided round trips for ONE
  // op of this kind (1 + expected chain hops for a lookup, 2 + expected CAS
  // retries for a store) — the complexity signal that moves the §3.1
  // crossover. `batch` is the number of keys the decision covers (MultiGet);
  // 1 for point ops.
  virtual DataplaneRoute Decide(RoutedOp op, NodeId node, double units,
                                uint64_t batch) = 0;
  // Measured client-clock cost of an op executed down `route`, with the
  // same units/batch the decision saw. Callers observe the path actually
  // taken (a failed RPC that fell back one-sided observes one-sided).
  virtual void Observe(RoutedOp op, NodeId node, DataplaneRoute route,
                       uint64_t latency_ns, double units, uint64_t batch) = 0;
};

// The two-sided executor: ships a map operation to the near-memory agent of
// the node owning `header`'s map, which runs it through a server-side handle
// on the SAME far structure. Semantic equivalence contract: mutations
// publish through the normal bucket-head CAS protocol (notifications fire,
// Txn validation words swing), and responses carry the publish location so
// the CALLER maintains its NearCache exactly like the one-sided path does.
class RemoteMapPath {
 public:
  virtual ~RemoteMapPath() = default;

  struct ReadView {
    bool found = false;
    // True when the server resolved a clean, version-checked head: `bucket`
    // and `head_word` are then admissible as a caller-side NearCache entry
    // (read-and-arm subscription closes the admission race as usual).
    bool cacheable = false;
    uint64_t value = 0;
    FarAddr bucket = kNullFarAddr;
    uint64_t head_word = 0;
    // Chain positions the server walked — complexity feedback that keeps
    // the caller's units estimate fresh even while RPC-routed.
    uint32_t chain_hops = 0;
  };

  struct WriteOutcome {
    FarAddr bucket = kNullFarAddr;
    uint64_t head = 0;  // new bucket head word (the key's item slot)
    bool refillable = false;
  };

  virtual Result<ReadView> Get(FarAddr header, uint64_t key) = 0;
  virtual Result<WriteOutcome> Put(FarAddr header, uint64_t key,
                                   uint64_t value) = 0;
  virtual Result<WriteOutcome> Remove(FarAddr header, uint64_t key) = 0;
  // All keys in one request; `views` is resized to keys.size() in input
  // order. Fails as a whole (caller falls back one-sided) if any key's
  // server-side read fails.
  virtual Status MultiGet(FarAddr header, std::span<const uint64_t> keys,
                          std::vector<ReadView>* views) = 0;
};

}  // namespace fmds

#endif  // FMDS_SRC_CORE_DATAPLANE_H_
