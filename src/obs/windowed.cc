#include "src/obs/windowed.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace fmds {

// ---------------------------------------------------------------------------
// WindowedHistogram

namespace {

// Smallest power of two >= ceil(window_ns / slots), plus its log2. The
// power-of-two span turns every epoch computation — one per recorded op on
// the hot path — into a shift.
std::pair<uint64_t, int> SlotSpanOf(uint64_t window_ns, size_t slots) {
  const uint64_t target =
      std::max<uint64_t>(1, (window_ns + slots - 1) / slots);
  const uint64_t span = std::bit_ceil(target);
  return {span, std::countr_zero(span)};
}

}  // namespace

WindowedHistogram::WindowedHistogram(uint64_t window_ns, size_t slots,
                                     int sub_bits)
    : sub_bits_(sub_bits) {
  if (slots == 0) {
    slots = 1;
  }
  const auto [span, shift] = SlotSpanOf(window_ns, slots);
  slot_ns_ = span;
  slot_shift_ = shift;
  ring_.reserve(slots);
  for (size_t i = 0; i < slots; ++i) {
    ring_.push_back(Slot{kNoEpoch, LogHistogram(sub_bits)});
  }
}

LogHistogram& WindowedHistogram::ClaimSlot(uint64_t epoch) {
  Slot& slot = ring_[epoch % ring_.size()];
  if (slot.epoch != epoch) {
    // Lazy rotation: the slot last held an epoch that is now >= one full
    // window old — clear in place (no reallocation) and claim it.
    slot.hist.Clear();
    slot.epoch = epoch;
  }
  return slot.hist;
}

void WindowedHistogram::Record(uint64_t now_ns, uint64_t value) {
  ClaimSlot(EpochOf(now_ns)).Record(value);
}

LogHistogram WindowedHistogram::MergedRecent(uint64_t now_ns) const {
  LogHistogram merged(sub_bits_);
  MergeRecentInto(now_ns, &merged);
  return merged;
}

void WindowedHistogram::MergeRecentInto(uint64_t now_ns,
                                        LogHistogram* out) const {
  const uint64_t epoch_now = EpochOf(now_ns);
  for (const Slot& slot : ring_) {
    if (SlotLive(slot, epoch_now)) {
      out->MergeFrom(slot.hist);
    }
  }
}

uint64_t WindowedHistogram::RecentCount(uint64_t now_ns) const {
  const uint64_t epoch_now = EpochOf(now_ns);
  uint64_t total = 0;
  for (const Slot& slot : ring_) {
    if (SlotLive(slot, epoch_now)) {
      total += slot.hist.count();
    }
  }
  return total;
}

uint64_t WindowedHistogram::RecentPercentile(uint64_t now_ns, double q) const {
  return MergedRecent(now_ns).Percentile(q);
}

double WindowedHistogram::RecentRatePerSec(uint64_t now_ns) const {
  const double span_sec = static_cast<double>(window_ns()) * 1e-9;
  return static_cast<double>(RecentCount(now_ns)) / span_sec;
}

// ---------------------------------------------------------------------------
// WindowedRate

WindowedRate::WindowedRate(uint64_t window_ns, size_t slots) {
  if (slots == 0) {
    slots = 1;
  }
  const auto [span, shift] = SlotSpanOf(window_ns, slots);
  slot_ns_ = span;
  slot_shift_ = shift;
  epochs_.assign(slots, kNoEpoch);
  counts_.assign(slots, 0);
}

void WindowedRate::Add(uint64_t now_ns, uint64_t n) {
  AddAtEpoch(now_ns >> slot_shift_, n);
}

void WindowedRate::AddAtEpoch(uint64_t epoch, uint64_t n) {
  const size_t i = epoch % epochs_.size();
  if (epochs_[i] != epoch) {
    epochs_[i] = epoch;
    counts_[i] = 0;
  }
  counts_[i] += n;
}

uint64_t WindowedRate::RecentCount(uint64_t now_ns) const {
  const uint64_t epoch_now = now_ns >> slot_shift_;
  uint64_t total = 0;
  for (size_t i = 0; i < epochs_.size(); ++i) {
    const uint64_t e = epochs_[i];
    if (e != kNoEpoch && e <= epoch_now && e + epochs_.size() > epoch_now) {
      total += counts_[i];
    }
  }
  return total;
}

double WindowedRate::RecentRatePerSec(uint64_t now_ns) const {
  const double span_sec = static_cast<double>(window_ns()) * 1e-9;
  return static_cast<double>(RecentCount(now_ns)) / span_sec;
}

// ---------------------------------------------------------------------------
// Ewma

void Ewma::UpdateMany(uint64_t now_ns, double sample, uint64_t n) {
  if (n == 0) {
    return;
  }
  if (count_ == 0) {
    value_ = sample;
  } else {
    const uint64_t dt = now_ns > last_ns_ ? now_ns - last_ns_ : 0;
    const double alpha =
        1.0 - std::exp(-static_cast<double>(dt) / static_cast<double>(tau_ns_));
    // dt == 0 (several ops completing at the same simulated instant) gives
    // alpha == 0; average those samples in with a small floor instead of
    // dropping them entirely.
    const double a = std::max(alpha, 1e-3);
    value_ += a * (sample - value_);
  }
  count_ += n;
  last_ns_ = std::max(last_ns_, now_ns);
}

// ---------------------------------------------------------------------------
// WindowedSignals

WindowedSignals::WindowedSignals(const WindowedOptions& options)
    : options_(options),
      txn_commits_(options.window_ns, options.slots),
      txn_aborts_(options.window_ns, options.slots),
      txn_vfails_(options.window_ns, options.slots) {
  if (options_.staging == 0) {
    options_.staging = 1;
  }
  kind_hist_.reserve(kFarOpKindCount);
  for (size_t k = 0; k < kFarOpKindCount; ++k) {
    kind_hist_.emplace_back(options_.window_ns, options_.slots,
                            options_.sub_bits);
  }
  slot_shift_ = kind_hist_[0].slot_shift();
  // +2 headroom: DrainLocked flushes both pending run slots into the tail,
  // and BreakRun only guarantees staged_total_ <= staging_cap_ on entry.
  staging_.resize(options_.staging + 2);
  staging_data_ = staging_.data();
  staging_cap_ = options_.staging;
}

void WindowedSignals::BreakRun(uint64_t key) {
  if (pend_[1].count != 0) {
    if (staged_total_ == staging_cap_) {
      // Rare: more distinct runs than staging slots within one sub-window.
      // Drain flushes both pending slots too, so fall through with them
      // empty.
      LockedDrain();
    }
    if (pend_[1].count != 0) {
      staging_data_[staged_total_++] = pend_[1];
    }
  }
  pend_[1] = pend_[0];
  pend_[0] = PendingRun{key, 1};
}

void WindowedSignals::GrowNodeHot(size_t node) {
  node_hot_.resize(node + 1);
  node_hot_data_ = node_hot_.data();
  node_hot_cap_ = node_hot_.size();
}

void WindowedSignals::RecordTxn(uint64_t now_ns, bool committed,
                                bool validate_fail) {
  std::lock_guard<std::mutex> lock(mu_);
  DrainLocked();
  if (committed) {
    txn_commits_.Add(now_ns, 1);
  } else {
    txn_aborts_.Add(now_ns, 1);
    if (validate_fail) {
      txn_vfails_.Add(now_ns, 1);
    }
  }
  last_now_ns_ = std::max(last_now_ns_, now_ns);
}

void WindowedSignals::Drain() {
  std::lock_guard<std::mutex> lock(mu_);
  DrainLocked();
}

void WindowedSignals::DrainLocked() {
  for (PendingRun& p : pend_) {
    if (p.count != 0) {
      staging_data_[staged_total_++] = p;
    }
    p = PendingRun{};
  }
  if (staged_total_ == 0) {
    return;
  }
  // Every staged run shares one sub-window epoch — RecordOp drains BEFORE
  // admitting a record from a new sub-window — so each kind's ring slot is
  // claimed once per batch and runs replay straight into it: one bucket
  // delta and one summary fold per run, not per record. With the two
  // pending slots absorbing the dominant latency alternation, a typical
  // batch is a handful of runs covering a whole sub-window of records.
  const uint64_t epoch = staged_epoch_;
  const uint64_t newest = std::max(last_now_ns_, staged_last_now_);
  LogHistogram* slot[kFarOpKindCount] = {};
  for (size_t i = 0; i < staged_total_; ++i) {
    const PendingRun& r = staging_data_[i];
    const uint64_t lat = r.key >> 8;
    const size_t kind = static_cast<size_t>(r.key & 0xff);
    LogHistogram*& s = slot[kind];
    if (s == nullptr) {
      s = &kind_hist_[kind].ClaimSlot(epoch);
    }
    s->AddBucketCount(
        LogHistogram::BucketIndexFor(lat, options_.sub_bits, s->bucket_count()),
        r.count);
    s->ApplyBatchSummary(r.count, r.count * lat, lat, lat);
  }
  // Fold the per-node table: the expensive per-node work (two ring bumps +
  // one exp() for the load EWMA, see Ewma::UpdateMany) runs once per
  // touched node per drain, not once per record.
  for (size_t n = 0; n < node_hot_.size(); ++n) {
    NodeAgg& a = node_hot_[n];
    if (a.ops == 0) {
      continue;
    }
    EnsureNodeLocked(n);
    node_ops_[n].AddAtEpoch(epoch, a.ops);
    node_bytes_[n].AddAtEpoch(epoch, a.bytes);
    node_load_[n].UpdateMany(
        newest, static_cast<double>(a.latency_sum) / static_cast<double>(a.ops),
        a.ops);
    a = NodeAgg{};
  }
  last_now_ns_ = newest;
  staged_total_ = 0;
}

void WindowedSignals::EnsureNodeLocked(size_t node) {
  while (node_ops_.size() <= node) {
    node_ops_.emplace_back(options_.window_ns, options_.slots);
    node_bytes_.emplace_back(options_.window_ns, options_.slots);
    node_load_.emplace_back(options_.ewma_tau_ns);
  }
}

uint64_t WindowedSignals::RecentPercentile(FarOpKind kind, double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  return kind_hist_[static_cast<size_t>(kind)].RecentPercentile(last_now_ns_,
                                                                q);
}

uint64_t WindowedSignals::RecentPercentileAll(double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  // The all-kinds view is a read-time merge over the per-kind windows
  // (excluding the kBatch roll-up span) — read-side work so the drain loop
  // appends each record once.
  LogHistogram merged(options_.sub_bits);
  for (size_t k = 0; k < kFarOpKindCount; ++k) {
    if (k == static_cast<size_t>(FarOpKind::kBatch)) {
      continue;
    }
    kind_hist_[k].MergeRecentInto(last_now_ns_, &merged);
  }
  return merged.Percentile(q);
}

uint64_t WindowedSignals::RecentCount(FarOpKind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  return kind_hist_[static_cast<size_t>(kind)].RecentCount(last_now_ns_);
}

uint64_t WindowedSignals::RecentCountAll() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (size_t k = 0; k < kFarOpKindCount; ++k) {
    if (k == static_cast<size_t>(FarOpKind::kBatch)) {
      continue;
    }
    total += kind_hist_[k].RecentCount(last_now_ns_);
  }
  return total;
}

double WindowedSignals::RecentOpsPerSec(NodeId node) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (node >= node_ops_.size()) {
    return 0.0;
  }
  return node_ops_[node].RecentRatePerSec(last_now_ns_);
}

double WindowedSignals::RecentBytesPerSec(NodeId node) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (node >= node_bytes_.size()) {
    return 0.0;
  }
  return node_bytes_[node].RecentRatePerSec(last_now_ns_);
}

double WindowedSignals::NodeLoadEwma(NodeId node) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (node >= node_load_.size()) {
    return 0.0;
  }
  return node_load_[node].value();
}

size_t WindowedSignals::node_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return node_ops_.size();
}

double WindowedSignals::RecentTxnAbortRate() const {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t commits = txn_commits_.RecentCount(last_now_ns_);
  const uint64_t aborts = txn_aborts_.RecentCount(last_now_ns_);
  const uint64_t total = commits + aborts;
  return total == 0 ? 0.0
                    : static_cast<double>(aborts) / static_cast<double>(total);
}

double WindowedSignals::RecentTxnValidateFailRate() const {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t commits = txn_commits_.RecentCount(last_now_ns_);
  const uint64_t aborts = txn_aborts_.RecentCount(last_now_ns_);
  const uint64_t vfails = txn_vfails_.RecentCount(last_now_ns_);
  const uint64_t total = commits + aborts;
  return total == 0 ? 0.0
                    : static_cast<double>(vfails) / static_cast<double>(total);
}

uint64_t WindowedSignals::RecentTxnCommits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return txn_commits_.RecentCount(last_now_ns_);
}

uint64_t WindowedSignals::RecentTxnAborts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return txn_aborts_.RecentCount(last_now_ns_);
}

uint64_t WindowedSignals::last_now_ns() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_now_ns_;
}

}  // namespace fmds
