// Live telemetry: a gauge registry (TelemetryHub), RAII registration
// (GaugeGroup), and a continuous exporter (TelemetrySnapshotter).
//
// The flight recorder answers "what happened" after a run; the hub answers
// "what is happening" during one. Components expose their health as named
// gauges — cheap double-valued callbacks registered with a hub — and the
// snapshotter thread samples every gauge on a wall-clock cadence into a
// JSON-lines time series (one object per tick), the format
// `bench_util --telemetry=<path>` consumes. `ExportPromText()` renders the
// same snapshot once in Prometheus text exposition format.
//
// Threading: TelemetryHub is fully synchronized; gauges may be registered,
// removed, and sampled from any thread. A gauge callback must be safe to
// invoke from the snapshotter thread (read an atomic, lock the component's
// own mutex, call a WindowedSignals reader — never touch single-owner state
// like ClientStats). Callbacks must not call back into the hub.
//
// Lifetime: a GaugeGroup unregisters its gauges on destruction. Destroy the
// group (or the hub) BEFORE the component its callbacks capture; the hub
// never outlives a sample mid-call (removal blocks on the hub mutex).
#ifndef FMDS_SRC_OBS_TELEMETRY_H_
#define FMDS_SRC_OBS_TELEMETRY_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/status.h"

namespace fmds {

class TelemetryHub {
 public:
  using GaugeFn = std::function<double()>;

  struct Sample {
    std::string name;
    double value = 0.0;
  };

  // Registers (or replaces) the gauge `name`. Names are dotted paths
  // ("wb.pending_entries", "node0.ops_per_sec"); exporters rely on the
  // map's sorted iteration for deterministic output.
  void AddGauge(const std::string& name, GaugeFn fn);
  void RemoveGauge(const std::string& name);
  size_t gauge_count() const;

  // Evaluates every gauge under the hub lock; sorted by name. Non-finite
  // values are clamped to 0 (JSON has no NaN/Inf).
  std::vector<Sample> Snapshot() const;

  // One-shot Prometheus text exposition: names are sanitized to the metric
  // charset ([a-zA-Z0-9_:]) and prefixed "fmds_".
  std::string ExportPromText() const;

  // Writes `{"name":value,...}` (sorted, escaped) — the "gauges" object of
  // one snapshotter tick.
  void WriteJsonObject(std::ostream& os) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, GaugeFn> gauges_;
};

// RAII batch of gauge registrations: everything Add()ed through the group
// is removed from the hub when the group dies. Components provide
// `AddGauges(GaugeGroup*, prefix)` helpers; the code wiring a scenario owns
// the groups and drops them before the components they sample.
class GaugeGroup {
 public:
  GaugeGroup() = default;
  explicit GaugeGroup(TelemetryHub* hub) : hub_(hub) {}
  GaugeGroup(const GaugeGroup&) = delete;
  GaugeGroup& operator=(const GaugeGroup&) = delete;
  GaugeGroup(GaugeGroup&& other) noexcept
      : hub_(other.hub_), names_(std::move(other.names_)) {
    other.hub_ = nullptr;
    other.names_.clear();
  }
  ~GaugeGroup() { Release(); }

  void Add(std::string name, TelemetryHub::GaugeFn fn);
  // Unregisters everything now (idempotent; also run by the destructor).
  void Release();

  TelemetryHub* hub() const { return hub_; }
  size_t size() const { return names_.size(); }

 private:
  TelemetryHub* hub_ = nullptr;
  std::vector<std::string> names_;
};

struct SnapshotterOptions {
  // JSON-lines output file; empty writes nothing (ticks still count, and
  // TickNow() still samples — useful for overhead runs and tests that only
  // assert lifecycle behavior).
  std::string path;
  // Wall-clock cadence between ticks.
  uint64_t interval_ms = 50;
};

// Background exporter: every interval_ms, evaluates the hub and appends one
// JSON object line: {"tick":N,"wall_ms":M,"gauges":{...}} where wall_ms is
// milliseconds since Start(). Start/Stop are idempotent and the destructor
// stops; a final tick is taken on Stop() so short runs always emit at least
// one line.
class TelemetrySnapshotter {
 public:
  TelemetrySnapshotter(TelemetryHub* hub, SnapshotterOptions options);
  TelemetrySnapshotter(const TelemetrySnapshotter&) = delete;
  TelemetrySnapshotter& operator=(const TelemetrySnapshotter&) = delete;
  ~TelemetrySnapshotter();

  // Launches the sampling thread. Second Start without a Stop is a no-op;
  // Start after Stop relaunches (the output file is appended to). Fails if
  // the output path cannot be opened.
  Status Start();
  // Joins the thread (taking one final tick). No-op when not running.
  void Stop();

  // Takes one synchronous tick from the calling thread (works whether or
  // not the thread is running; serialized with it).
  void TickNow();

  bool running() const { return running_.load(std::memory_order_acquire); }
  uint64_t ticks() const { return ticks_.load(std::memory_order_acquire); }
  const SnapshotterOptions& options() const { return options_; }

 private:
  void Main();
  void EmitTickLocked();

  TelemetryHub* hub_;
  SnapshotterOptions options_;

  std::mutex mu_;  // guards out_, start time, stop flag, cv
  std::condition_variable stop_cv_;
  std::ofstream out_;
  bool out_open_ = false;
  bool stop_ = false;
  std::chrono::steady_clock::time_point started_at_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> ticks_{0};
  std::thread thread_;
};

}  // namespace fmds

#endif  // FMDS_SRC_OBS_TELEMETRY_H_
