// Far-operation taxonomy for the flight recorder. §3.1 makes far accesses
// THE metric; the recorder breaks them down by *what kind of verb* consumed
// them, so per-op-kind latency distributions (bench JSON p50/p99) and the
// paper-style access tables can say where round trips go.
#ifndef FMDS_SRC_OBS_OP_KIND_H_
#define FMDS_SRC_OBS_OP_KIND_H_

#include <cstddef>
#include <cstdint>

namespace fmds {

enum class FarOpKind : uint8_t {
  kRead = 0,        // byte-range read
  kWrite,           // byte-range write
  kReadWord,        // 8-byte load
  kWriteWord,       // 8-byte store
  kCas,             // compare-and-swap
  kFetchAdd,        // fetch-and-add
  kIndirect,        // load*/store*/faai/saai/add* (Fig. 1 extensions)
  kScatterGather,   // rscatter/rgather/wscatter/wgather
  kCasBatch,        // CasBatch doorbell
  kBatch,           // a flushed async doorbell batch (span over its ops)
  kBackground,      // off-critical-path far ops (zero client latency)
  kNotification,    // subscriptions + delivered events (§4.3)
  kRpc,             // two-sided baseline calls
  kKindCount,
};

inline constexpr size_t kFarOpKindCount =
    static_cast<size_t>(FarOpKind::kKindCount);

inline const char* FarOpKindName(FarOpKind kind) {
  switch (kind) {
    case FarOpKind::kRead: return "read";
    case FarOpKind::kWrite: return "write";
    case FarOpKind::kReadWord: return "read_word";
    case FarOpKind::kWriteWord: return "write_word";
    case FarOpKind::kCas: return "cas";
    case FarOpKind::kFetchAdd: return "fetch_add";
    case FarOpKind::kIndirect: return "indirect";
    case FarOpKind::kScatterGather: return "scatter_gather";
    case FarOpKind::kCasBatch: return "cas_batch";
    case FarOpKind::kBatch: return "batch";
    case FarOpKind::kBackground: return "background";
    case FarOpKind::kNotification: return "notification";
    case FarOpKind::kRpc: return "rpc";
    case FarOpKind::kKindCount: break;
  }
  return "unknown";
}

}  // namespace fmds

#endif  // FMDS_SRC_OBS_OP_KIND_H_
