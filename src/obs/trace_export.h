// Chrome trace-event JSON export of the flight recorder's TraceRings.
// The output loads in Perfetto / chrome://tracing: one process+track per
// client, simulated nanoseconds mapped to trace microseconds, and flushed
// doorbell batches rendered as spans enclosing their ops (each op's span is
// its latency share of the batch, tiled so children exactly fill the
// parent). Every event carries the required ph/ts/pid/tid/name keys.
#ifndef FMDS_SRC_OBS_TRACE_EXPORT_H_
#define FMDS_SRC_OBS_TRACE_EXPORT_H_

#include <iosfwd>
#include <string>

#include "src/common/status.h"
#include "src/obs/metrics_registry.h"

namespace fmds {

// Writes {"traceEvents": [...], "displayTimeUnit": "ns"} for every client
// recorder absorbed into `registry`.
void WriteChromeTrace(std::ostream& os, const MetricsRegistry& registry);

// Convenience: export to a file path. kUnavailable on I/O failure.
Status WriteChromeTraceFile(const std::string& path,
                            const MetricsRegistry& registry);

}  // namespace fmds

#endif  // FMDS_SRC_OBS_TRACE_EXPORT_H_
