// Per-client flight recorder: latency histograms per op kind and per
// scoped op-label, a per-node traffic row (the client's slice of the
// fleet heatmap), and a bounded TraceRing of executed ops.
//
// Threading: one OpRecorder per FarClient, owned by the client's thread —
// no synchronization, same model as ClientStats. Aggregation across
// clients happens at report time through MetricsRegistry.
//
// Overhead: compiled in always. With ObsOptions disabled (the default),
// every hook is one `enabled()` branch; histograms, label interning and
// the ring are only touched when enabled.
#ifndef FMDS_SRC_OBS_RECORDER_H_
#define FMDS_SRC_OBS_RECORDER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/histogram.h"
#include "src/obs/op_kind.h"
#include "src/obs/trace_ring.h"

namespace fmds {

// Runtime gate for the observability layer. Everything defaults OFF so the
// fabric hot path stays a branch + the existing counter increments.
struct ObsOptions {
  bool latency_histograms = false;  // per-kind + per-label LogHistograms
  bool trace = false;               // record ops into the TraceRing
  size_t trace_capacity = 65536;    // ring slots (flight-recorder window)
  int histogram_sub_bits = 3;       // LogHistogram resolution

  static ObsOptions All(size_t trace_capacity = 65536) {
    ObsOptions o;
    o.latency_histograms = true;
    o.trace = true;
    o.trace_capacity = trace_capacity;
    return o;
  }
  static ObsOptions HistogramsOnly() {
    ObsOptions o;
    o.latency_histograms = true;
    return o;
  }
};

class OpRecorder {
 public:
  struct Traffic {
    uint64_t ops = 0;
    uint64_t bytes = 0;
  };

  // Per-label NearCache activity (hit/miss attributed to the label of the
  // data-structure op that consulted the cache).
  struct CacheCounts {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t invalidations = 0;
  };

  explicit OpRecorder(uint64_t client_id);

  void set_options(const ObsOptions& options);
  const ObsOptions& options() const { return options_; }
  bool histograms_enabled() const { return options_.latency_histograms; }
  bool trace_enabled() const { return options_.trace; }
  bool enabled() const { return enabled_; }
  uint64_t client_id() const { return client_id_; }

  // ---- Scoped op-label stack (see ScopedOpLabel) ----
  // Labels tag fabric traffic with the data-structure code path that issued
  // it ("httree.get", "sharded.multiget", ...). The innermost label wins
  // attribution; nesting is preserved for tests and future path joins.
  void PushLabel(std::string_view label);
  void PopLabel();
  size_t label_depth() const { return label_stack_.size(); }
  std::string_view current_label() const;
  const std::string& label_name(uint32_t id) const { return label_names_[id]; }

  // ---- Recording hooks (called by FarClient / RpcClient) ----
  // One executed far operation: attributed to `kind`, the current label,
  // and `node`'s traffic row; appended to the trace ring. `latency_ns` is
  // the modelled duration charged to the client clock (0 for background
  // ops), `start_ns` the simulated issue time. `batch_id` groups ops
  // flushed in one doorbell (0 = synchronous).
  void RecordOp(FarOpKind kind, NodeId node, FarAddr addr, uint64_t bytes,
                uint64_t start_ns, uint64_t latency_ns, bool ok,
                uint64_t batch_id = 0);

  // Monotonic id for one Flush() doorbell (its span + its ops).
  uint64_t NextBatchId() { return ++batch_seq_; }

  // NearCache hooks: attribute a cache event to the current label so the
  // hit-ratio column in MetricsRegistry breaks down by code path.
  void RecordCacheHit();
  void RecordCacheMiss();
  void RecordCacheInvalidation();

  // ---- Read side ----
  const LogHistogram& kind_histogram(FarOpKind kind) const {
    return kind_hists_[static_cast<size_t>(kind)];
  }
  // Label id -> histogram of that label's far-op latencies. Index 0 is the
  // unlabeled bucket. Parallel to label_name(id).
  const std::vector<LogHistogram>& label_histograms() const {
    return label_hists_;
  }
  const std::vector<Traffic>& label_traffic() const { return label_traffic_; }
  // Label id -> cache hit/miss/invalidation counts, parallel to label_name.
  const std::vector<CacheCounts>& label_cache() const { return label_cache_; }
  size_t label_count() const { return label_names_.size(); }
  // Per-node traffic row; index = NodeId (grown on demand).
  const std::vector<Traffic>& node_traffic() const { return node_traffic_; }
  const TraceRing& trace() const { return trace_; }

  void Reset();

 private:
  uint32_t InternLabel(std::string_view label);

  uint64_t client_id_;
  ObsOptions options_;
  bool enabled_ = false;

  std::vector<LogHistogram> kind_hists_;   // size kFarOpKindCount
  std::vector<uint32_t> label_stack_;      // interned ids, innermost last
  std::vector<std::string> label_names_;   // id -> name; [0] = ""
  std::unordered_map<std::string, uint32_t> label_ids_;
  std::vector<LogHistogram> label_hists_;  // id -> latency histogram
  std::vector<Traffic> label_traffic_;     // id -> ops/bytes
  std::vector<CacheCounts> label_cache_;   // id -> cache hit/miss/inval
  std::vector<Traffic> node_traffic_;      // NodeId -> ops/bytes
  TraceRing trace_;
  uint64_t batch_seq_ = 0;
};

// RAII op label. Construct on entry to a data-structure operation; every
// far op the client executes in the scope is attributed to the label.
// Captures the recorder's enabled state at construction, so toggling
// ObsOptions mid-scope affects only later scopes (keeps push/pop paired).
class ScopedOpLabel {
 public:
  ScopedOpLabel(OpRecorder* recorder, std::string_view label)
      : recorder_(recorder->enabled() ? recorder : nullptr) {
    if (recorder_ != nullptr) {
      recorder_->PushLabel(label);
    }
  }
  ScopedOpLabel(const ScopedOpLabel&) = delete;
  ScopedOpLabel& operator=(const ScopedOpLabel&) = delete;
  ~ScopedOpLabel() {
    if (recorder_ != nullptr) {
      recorder_->PopLabel();
    }
  }

 private:
  OpRecorder* recorder_;
};

}  // namespace fmds

#endif  // FMDS_SRC_OBS_RECORDER_H_
