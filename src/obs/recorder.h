// Per-client flight recorder: latency histograms per op kind and per
// scoped op-label, a per-node traffic row (the client's slice of the
// fleet heatmap), and a bounded TraceRing of executed ops.
//
// Threading: one OpRecorder per FarClient, owned by the client's thread —
// no synchronization, same model as ClientStats. Aggregation across
// clients happens at report time through MetricsRegistry.
//
// Overhead: compiled in always. With ObsOptions disabled (the default),
// every hook is one `enabled()` branch; histograms, label interning and
// the ring are only touched when enabled.
#ifndef FMDS_SRC_OBS_RECORDER_H_
#define FMDS_SRC_OBS_RECORDER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/histogram.h"
#include "src/obs/op_kind.h"
#include "src/obs/trace_ring.h"
#include "src/obs/windowed.h"

namespace fmds {

class GaugeGroup;

// Runtime gate for the observability layer. Everything defaults OFF so the
// fabric hot path stays a branch + the existing counter increments.
struct ObsOptions {
  bool latency_histograms = false;  // per-kind + per-label LogHistograms
  bool trace = false;               // record ops into the TraceRing
  size_t trace_capacity = 65536;    // ring slots (flight-recorder window)
  int histogram_sub_bits = 3;       // LogHistogram resolution
  // Rolling signals (RecentP99 / RecentOpsPerSec / NodeLoadEwma) over the
  // last windowed_opts.window_ns of simulated time. Independent of the
  // since-start machinery above: windowed-only mode keeps `enabled()` false,
  // so labels, label interning and the trace ring stay untouched — this is
  // the always-on configuration the E15 <5% overhead bound covers.
  bool windowed = false;
  WindowedOptions windowed_opts;

  static ObsOptions All(size_t trace_capacity = 65536) {
    ObsOptions o;
    o.latency_histograms = true;
    o.trace = true;
    o.trace_capacity = trace_capacity;
    o.windowed = true;
    return o;
  }
  static ObsOptions HistogramsOnly() {
    ObsOptions o;
    o.latency_histograms = true;
    return o;
  }
  // The always-on production shape: rolling signals, nothing since-start.
  static ObsOptions WindowedOnly() {
    ObsOptions o;
    o.windowed = true;
    return o;
  }
};

class OpRecorder {
 public:
  struct Traffic {
    uint64_t ops = 0;
    uint64_t bytes = 0;
  };

  // Per-label NearCache activity (hit/miss attributed to the label of the
  // data-structure op that consulted the cache).
  struct CacheCounts {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t invalidations = 0;
  };

  explicit OpRecorder(uint64_t client_id);

  void set_options(const ObsOptions& options);
  const ObsOptions& options() const { return options_; }
  bool histograms_enabled() const { return options_.latency_histograms; }
  bool trace_enabled() const { return options_.trace; }
  // True when the since-start machinery (labels, histograms, trace) is on.
  // Windowed-only mode leaves this false so ScopedOpLabel and the label
  // tables stay off the hot path.
  bool enabled() const { return enabled_; }
  // True when ANY recording is on — the gate RecordOp callers must use.
  bool recording() const { return enabled_ || windowed_ != nullptr; }
  bool windowed_enabled() const { return windowed_ != nullptr; }
  uint64_t client_id() const { return client_id_; }

  // ---- Scoped op-label stack (see ScopedOpLabel) ----
  // Labels tag fabric traffic with the data-structure code path that issued
  // it ("httree.get", "sharded.multiget", ...). The innermost label wins
  // attribution; nesting is preserved for tests and future path joins.
  void PushLabel(std::string_view label);
  void PopLabel();
  size_t label_depth() const { return label_stack_.size(); }
  std::string_view current_label() const;
  const std::string& label_name(uint32_t id) const { return label_names_[id]; }

  // ---- Recording hooks (called by FarClient / RpcClient) ----
  // One executed far operation: attributed to `kind`, the current label,
  // and `node`'s traffic row; appended to the trace ring. `latency_ns` is
  // the modelled duration charged to the client clock (0 for background
  // ops), `start_ns` the simulated issue time. `batch_id` groups ops
  // flushed in one doorbell (0 = synchronous).
  void RecordOp(FarOpKind kind, NodeId node, FarAddr addr, uint64_t bytes,
                uint64_t start_ns, uint64_t latency_ns, bool ok,
                uint64_t batch_id = 0) {
    if (windowed_ != nullptr) {
      // Attribute to the op's completion time: windows answer "what happened
      // in the last W ns", and an op belongs to the instant it finished.
      windowed_->RecordOp(kind, node, bytes, start_ns + latency_ns,
                          latency_ns);
    }
    if (enabled_) {
      RecordOpSinceStart(kind, node, addr, bytes, start_ns, latency_ns, ok,
                         batch_id);
    }
  }

  // Monotonic id for one Flush() doorbell (its span + its ops).
  uint64_t NextBatchId() { return ++batch_seq_; }

  // Pause / resume the windowed signals WITHOUT destroying window state:
  // parking moves the instance aside, so recording() and the RecordOp gate
  // see exactly the windowed-off shape (a null pointer), and resuming moves
  // it back — one pointer swap either way, no allocation, no zeroing.
  // Registered gauges keep working while parked (they hold the instance
  // pointer, which parking does not invalidate). set_options() drops a
  // parked instance just as it would a live one. The E15 overhead bench
  // toggles modes at sub-millisecond grain through this: rebuilding the
  // ~half-MB ring allocation per toggle would trash the cache and charge
  // the windowed mode for the refill.
  void PauseWindowed() {
    if (windowed_ != nullptr) {
      parked_windowed_ = std::move(windowed_);
    }
  }
  void ResumeWindowed() {
    if (parked_windowed_ != nullptr) {
      windowed_ = std::move(parked_windowed_);
    }
  }

  // NearCache hooks: attribute a cache event to the current label so the
  // hit-ratio column in MetricsRegistry breaks down by code path.
  void RecordCacheHit();
  void RecordCacheMiss();
  void RecordCacheInvalidation();

  // Transaction outcome hook (called by Txn at commit/abort) — feeds the
  // windowed abort / validate-fail rate gauges. No-op unless windowed.
  void RecordTxnOutcome(uint64_t now_ns, bool committed, bool validate_fail);

  // ---- Read side ----
  const LogHistogram& kind_histogram(FarOpKind kind) const {
    return kind_hists_[static_cast<size_t>(kind)];
  }
  // Label id -> histogram of that label's far-op latencies. Index 0 is the
  // unlabeled bucket. Parallel to label_name(id).
  const std::vector<LogHistogram>& label_histograms() const {
    return label_hists_;
  }
  const std::vector<Traffic>& label_traffic() const { return label_traffic_; }
  // Label id -> cache hit/miss/invalidation counts, parallel to label_name.
  const std::vector<CacheCounts>& label_cache() const { return label_cache_; }
  size_t label_count() const { return label_names_.size(); }
  // Per-node traffic row; index = NodeId (grown on demand).
  const std::vector<Traffic>& node_traffic() const { return node_traffic_; }
  const TraceRing& trace() const { return trace_; }

  // ---- Rolling signals (nullptr unless options.windowed) ----
  // WindowedSignals is internally synchronized: any thread may call its
  // Recent* readers while the owning client thread keeps recording. The
  // owner should call windowed()->Drain() before reading its own signals.
  WindowedSignals* windowed() { return windowed_.get(); }
  const WindowedSignals* windowed() const { return windowed_.get(); }
  // Convenience forwarders answering 0 when windowed signals are off.
  uint64_t RecentP99(FarOpKind kind) const {
    return windowed_ ? windowed_->RecentP99(kind) : 0;
  }
  uint64_t RecentP99All() const {
    return windowed_ ? windowed_->RecentP99All() : 0;
  }
  double RecentOpsPerSec(NodeId node) const {
    return windowed_ ? windowed_->RecentOpsPerSec(node) : 0.0;
  }
  double NodeLoadEwma(NodeId node) const {
    return windowed_ ? windowed_->NodeLoadEwma(node) : 0.0;
  }

  // Registers the rolling signals with a TelemetryHub under `prefix`:
  // p99/count per op kind and overall, txn rates, and — for nodes
  // [0, num_nodes) — per-node ops/s, bytes/s, and load EWMA. No-op unless
  // windowed signals are on. The gauges capture the current WindowedSignals,
  // which set_options() and Reset() replace: release the group before
  // either, and never let it outlive this recorder.
  void AddGauges(GaugeGroup* group, const std::string& prefix,
                 uint32_t num_nodes) const;

  void Reset();

 private:
  uint32_t InternLabel(std::string_view label);
  // Since-start attribution (labels, traffic rows, histograms, trace ring).
  // Out of line so the inline RecordOp head stays small; only reached when
  // `enabled_` is true.
  void RecordOpSinceStart(FarOpKind kind, NodeId node, FarAddr addr,
                          uint64_t bytes, uint64_t start_ns,
                          uint64_t latency_ns, bool ok, uint64_t batch_id);

  uint64_t client_id_;
  ObsOptions options_;
  bool enabled_ = false;

  std::vector<LogHistogram> kind_hists_;   // size kFarOpKindCount
  std::vector<uint32_t> label_stack_;      // interned ids, innermost last
  std::vector<std::string> label_names_;   // id -> name; [0] = ""
  std::unordered_map<std::string, uint32_t> label_ids_;
  std::vector<LogHistogram> label_hists_;  // id -> latency histogram
  std::vector<Traffic> label_traffic_;     // id -> ops/bytes
  std::vector<CacheCounts> label_cache_;   // id -> cache hit/miss/inval
  std::vector<Traffic> node_traffic_;      // NodeId -> ops/bytes
  TraceRing trace_;
  uint64_t batch_seq_ = 0;
  std::unique_ptr<WindowedSignals> windowed_;  // set iff options_.windowed
  std::unique_ptr<WindowedSignals> parked_windowed_;  // see PauseWindowed()
};

// RAII op label. Construct on entry to a data-structure operation; every
// far op the client executes in the scope is attributed to the label.
// Captures the recorder's enabled state at construction, so toggling
// ObsOptions mid-scope affects only later scopes (keeps push/pop paired).
class ScopedOpLabel {
 public:
  ScopedOpLabel(OpRecorder* recorder, std::string_view label)
      : recorder_(recorder->enabled() ? recorder : nullptr) {
    if (recorder_ != nullptr) {
      recorder_->PushLabel(label);
    }
  }
  ScopedOpLabel(const ScopedOpLabel&) = delete;
  ScopedOpLabel& operator=(const ScopedOpLabel&) = delete;
  ~ScopedOpLabel() {
    if (recorder_ != nullptr) {
      recorder_->PopLabel();
    }
  }

 private:
  OpRecorder* recorder_;
};

}  // namespace fmds

#endif  // FMDS_SRC_OBS_RECORDER_H_
