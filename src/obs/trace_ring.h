// Bounded per-client ring of executed far operations, on the simulated
// clock. The flight-recorder idea: always compiled in, capacity-bounded so
// long runs keep the most recent window, exported to Chrome trace-event
// JSON (Perfetto) with one track per client and doorbell batches as spans
// enclosing their ops.
#ifndef FMDS_SRC_OBS_TRACE_RING_H_
#define FMDS_SRC_OBS_TRACE_RING_H_

#include <cstdint>
#include <vector>

#include "src/fabric/far_addr.h"
#include "src/obs/op_kind.h"

namespace fmds {

// Node id carried by events that do not touch a memory node (RPC calls,
// notification waits, batch spans).
inline constexpr NodeId kObsNoNode = ~NodeId{0};

struct TraceEvent {
  uint64_t start_ns = 0;    // simulated clock at issue
  uint64_t latency_ns = 0;  // modelled duration (0 for background ops)
  FarAddr addr = kNullFarAddr;
  uint64_t bytes = 0;       // payload bytes moved
  uint64_t batch_id = 0;    // 0 = synchronous; else groups ops under a span
  NodeId node = kObsNoNode; // primary memory node serviced
  uint32_t label_id = 0;    // interned op-label (0 = unlabeled)
  FarOpKind kind = FarOpKind::kRead;
  bool ok = true;
};

class TraceRing {
 public:
  explicit TraceRing(size_t capacity = 0) { set_capacity(capacity); }

  // Resizing clears recorded events (capacity changes re-arm the recorder).
  void set_capacity(size_t capacity) {
    events_.clear();
    events_.reserve(capacity);
    capacity_ = capacity;
    next_ = 0;
    recorded_ = 0;
  }

  void Push(const TraceEvent& event) {
    if (capacity_ == 0) {
      return;
    }
    if (events_.size() < capacity_) {
      events_.push_back(event);
    } else {
      events_[next_] = event;  // overwrite the oldest
    }
    next_ = (next_ + 1) % capacity_;
    ++recorded_;
  }

  size_t capacity() const { return capacity_; }
  size_t size() const { return events_.size(); }
  uint64_t recorded() const { return recorded_; }
  // Events lost to wraparound (flight recorder keeps the newest window).
  uint64_t dropped() const { return recorded_ - events_.size(); }

  // Events in chronological (record) order, oldest surviving first.
  std::vector<TraceEvent> Snapshot() const {
    std::vector<TraceEvent> out;
    out.reserve(events_.size());
    if (events_.size() < capacity_ || capacity_ == 0) {
      out = events_;
      return out;
    }
    for (size_t i = 0; i < events_.size(); ++i) {
      out.push_back(events_[(next_ + i) % capacity_]);
    }
    return out;
  }

  void Clear() {
    events_.clear();
    next_ = 0;
    recorded_ = 0;
  }

 private:
  std::vector<TraceEvent> events_;
  size_t capacity_ = 0;
  size_t next_ = 0;       // slot the next push overwrites once full
  uint64_t recorded_ = 0; // total pushes ever
};

}  // namespace fmds

#endif  // FMDS_SRC_OBS_TRACE_RING_H_
