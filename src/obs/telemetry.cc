#include "src/obs/telemetry.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "src/obs/json.h"

namespace fmds {

namespace {

double Sanitize(double v) { return std::isfinite(v) ? v : 0.0; }

// Shortest round-trippable double rendering that is still JSON-valid.
std::string NumberToJson(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(static_cast<int64_t>(v)));
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  }
  return buf;
}

std::string PromName(const std::string& name) {
  std::string out = "fmds_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// TelemetryHub

void TelemetryHub::AddGauge(const std::string& name, GaugeFn fn) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = std::move(fn);
}

void TelemetryHub::RemoveGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_.erase(name);
}

size_t TelemetryHub::gauge_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return gauges_.size();
}

std::vector<TelemetryHub::Sample> TelemetryHub::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Sample> out;
  out.reserve(gauges_.size());
  for (const auto& [name, fn] : gauges_) {
    out.push_back(Sample{name, Sanitize(fn())});
  }
  return out;
}

std::string TelemetryHub::ExportPromText() const {
  std::string out;
  for (const Sample& s : Snapshot()) {
    const std::string metric = PromName(s.name);
    out += "# TYPE " + metric + " gauge\n";
    out += metric + " " + NumberToJson(s.value) + "\n";
  }
  return out;
}

void TelemetryHub::WriteJsonObject(std::ostream& os) const {
  os << '{';
  bool first = true;
  for (const Sample& s : Snapshot()) {
    if (!first) {
      os << ',';
    }
    first = false;
    os << '"' << JsonEscape(s.name) << "\":" << NumberToJson(s.value);
  }
  os << '}';
}

// ---------------------------------------------------------------------------
// GaugeGroup

void GaugeGroup::Add(std::string name, TelemetryHub::GaugeFn fn) {
  if (hub_ == nullptr) {
    return;
  }
  hub_->AddGauge(name, std::move(fn));
  names_.push_back(std::move(name));
}

void GaugeGroup::Release() {
  if (hub_ != nullptr) {
    for (const std::string& name : names_) {
      hub_->RemoveGauge(name);
    }
  }
  names_.clear();
}

// ---------------------------------------------------------------------------
// TelemetrySnapshotter

TelemetrySnapshotter::TelemetrySnapshotter(TelemetryHub* hub,
                                           SnapshotterOptions options)
    : hub_(hub), options_(std::move(options)) {
  started_at_ = std::chrono::steady_clock::now();
}

TelemetrySnapshotter::~TelemetrySnapshotter() { Stop(); }

Status TelemetrySnapshotter::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_.load(std::memory_order_acquire)) {
    return OkStatus();
  }
  if (!options_.path.empty() && !out_open_) {
    out_.open(options_.path, std::ios::out | std::ios::app);
    if (!out_.is_open()) {
      return Status(StatusCode::kInternal,
                    "telemetry: cannot open output path");
    }
    out_open_ = true;
  }
  started_at_ = std::chrono::steady_clock::now();
  stop_ = false;
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Main(); });
  return OkStatus();
}

void TelemetrySnapshotter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_.load(std::memory_order_acquire)) {
      return;
    }
    stop_ = true;
    stop_cv_.notify_all();
  }
  thread_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Final tick: even a run shorter than one interval leaves a time series.
    EmitTickLocked();
    if (out_open_) {
      out_.flush();
    }
    running_.store(false, std::memory_order_release);
  }
}

void TelemetrySnapshotter::TickNow() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!out_open_ && !options_.path.empty()) {
    // TickNow before Start: open lazily so tests can drive the snapshotter
    // fully synchronously.
    out_.open(options_.path, std::ios::out | std::ios::app);
    out_open_ = out_.is_open();
  }
  EmitTickLocked();
}

void TelemetrySnapshotter::Main() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    EmitTickLocked();
    stop_cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                      [&] { return stop_; });
  }
}

void TelemetrySnapshotter::EmitTickLocked() {
  const uint64_t tick = ticks_.fetch_add(1, std::memory_order_acq_rel);
  const auto wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - started_at_)
                           .count();
  if (!out_open_) {
    // Still sample the hub so gauge callbacks run (lifecycle tests assert
    // concurrent-read safety with no output file configured).
    (void)hub_->Snapshot();
    return;
  }
  out_ << "{\"tick\":" << tick << ",\"wall_ms\":" << wall_ms
       << ",\"gauges\":";
  hub_->WriteJsonObject(out_);
  out_ << "}\n";
}

}  // namespace fmds
