// Rolling (windowed) telemetry primitives over SIMULATED time.
//
// The flight recorder (recorder.h) accumulates since-start histograms that
// are read once at report time — the right shape for experiment tables, the
// wrong shape for *decisions*. The §3.1 crossover and the §7.1 migration
// trade-offs are decided by current conditions: recent tail latency, recent
// per-node load. These primitives answer from the last W nanoseconds of
// simulated time instead of since boot:
//
//   WindowedHistogram  ring of N sub-window LogHistograms rotated by epoch
//                      (epoch = now / slot_ns). Rotation is O(1) amortized:
//                      a slot is cleared lazily the first time its epoch is
//                      re-entered; reads merge the live slots (MergeFrom).
//   WindowedRate       the same ring over plain counters — rolling ops/sec
//                      and bytes/sec without histogram weight.
//   Ewma               irregular-interval exponentially weighted moving
//                      average (alpha = 1 - exp(-dt/tau)) — the smoothed
//                      per-node load gauge.
//   WindowedSignals    the recorder-side bundle: per-op-kind windowed
//                      histograms, per-node rates + load EWMAs, and windowed
//                      txn outcome rates, behind ONE mutex with owner-thread
//                      run-length accumulators so the record hot path is a
//                      packed-key compare + two counter increments on
//                      always-hot lines (the <5% always-on budget, E15).
//
// Time base: the owning client's SimClock. Simulated time only advances
// when the client executes operations, so windows never decay while a
// client idles — "the last W ms" means the last W ms of *work*.
//
// Threading: WindowedHistogram / WindowedRate / Ewma are caller-
// synchronized (single-threaded) building blocks. WindowedSignals is the
// concurrency boundary: Record*() must be called by the owning client
// thread only; every reader method locks and may be called from any thread
// (the TelemetrySnapshotter reads live while app/flusher/evictor threads
// record).
#ifndef FMDS_SRC_OBS_WINDOWED_H_
#define FMDS_SRC_OBS_WINDOWED_H_

#include <array>
#include <bit>
#include <cstdint>
#include <mutex>
#include <vector>

#include "src/common/histogram.h"
#include "src/fabric/far_addr.h"
#include "src/obs/op_kind.h"

namespace fmds {

// Ring of `slots` sub-window LogHistograms covering the last
// slots * slot_ns nanoseconds. Single-threaded; WindowedSignals provides
// the locking.
class WindowedHistogram {
 public:
  // `window_ns` is the full rolling window W; it is split into `slots`
  // equal sub-windows (the rotation grain — recency is resolved to
  // W / slots). The sub-window span is rounded UP to a power of two so the
  // per-record epoch computation is a shift, not a division — the effective
  // window is therefore slots * bit_ceil(ceil(window_ns / slots)) >= W.
  WindowedHistogram(uint64_t window_ns, size_t slots, int sub_bits);

  void Record(uint64_t now_ns, uint64_t value);

  // Lazily clears and claims the sub-window for `epoch`, returning its
  // histogram. Batch recorders (WindowedSignals::DrainLocked) resolve the
  // slot once per same-epoch batch and Record into it directly.
  LogHistogram& ClaimSlot(uint64_t epoch);

  // Merge of every sub-window still inside [now - W, now]. A sub-window
  // whose epoch fell out of the range no longer contributes — this is what
  // makes the signals *recent* instead of since-start.
  LogHistogram MergedRecent(uint64_t now_ns) const;
  // Same merge, folded into an existing accumulator (cross-kind roll-ups).
  void MergeRecentInto(uint64_t now_ns, LogHistogram* out) const;

  uint64_t RecentCount(uint64_t now_ns) const;
  uint64_t RecentPercentile(uint64_t now_ns, double q) const;
  // RecentCount over the window span, in events per simulated second. Uses
  // the full window span, so a cold (partially filled) window reads low.
  double RecentRatePerSec(uint64_t now_ns) const;

  uint64_t window_ns() const { return slot_ns_ * ring_.size(); }
  uint64_t slot_ns() const { return slot_ns_; }
  // log2(slot_ns): epoch = now_ns >> slot_shift().
  int slot_shift() const { return slot_shift_; }

 private:
  struct Slot {
    uint64_t epoch = kNoEpoch;
    LogHistogram hist;
  };
  static constexpr uint64_t kNoEpoch = UINT64_MAX;

  uint64_t EpochOf(uint64_t now_ns) const { return now_ns >> slot_shift_; }
  bool SlotLive(const Slot& slot, uint64_t epoch_now) const {
    return slot.epoch != kNoEpoch && slot.epoch + ring_.size() > epoch_now &&
           slot.epoch <= epoch_now;
  }

  uint64_t slot_ns_;
  int slot_shift_;
  int sub_bits_;
  std::vector<Slot> ring_;
};

// The same epoch ring over plain uint64 counters: rolling event and byte
// rates without per-record histogram cost.
class WindowedRate {
 public:
  WindowedRate(uint64_t window_ns, size_t slots);

  void Add(uint64_t now_ns, uint64_t n);
  // Pre-resolved-epoch variant for batch recorders. The epoch MUST come
  // from the same window geometry (same window_ns / slots rounding).
  void AddAtEpoch(uint64_t epoch, uint64_t n);
  uint64_t RecentCount(uint64_t now_ns) const;
  double RecentRatePerSec(uint64_t now_ns) const;
  uint64_t window_ns() const { return slot_ns_ * counts_.size(); }
  int slot_shift() const { return slot_shift_; }

 private:
  static constexpr uint64_t kNoEpoch = UINT64_MAX;
  uint64_t slot_ns_;
  int slot_shift_;
  std::vector<uint64_t> epochs_;
  std::vector<uint64_t> counts_;
};

// Irregular-interval EWMA: Update decays the running value toward the
// sample with alpha = 1 - exp(-dt / tau), so the smoothing is a property
// of elapsed simulated time, not of the sample rate. The first sample
// initializes the value.
class Ewma {
 public:
  explicit Ewma(uint64_t tau_ns) : tau_ns_(tau_ns == 0 ? 1 : tau_ns) {}

  void Update(uint64_t now_ns, double sample) { UpdateMany(now_ns, sample, 1); }
  // Folds `n` samples with mean `sample` (one drain batch's worth) into a
  // single decay step — one exp() per batch instead of per sample. The
  // smoothing grain becomes the drain cadence; tau still governs how fast
  // the value tracks, in elapsed simulated time.
  void UpdateMany(uint64_t now_ns, double sample, uint64_t n);

  double value() const { return value_; }
  uint64_t count() const { return count_; }
  uint64_t last_update_ns() const { return last_ns_; }

 private:
  uint64_t tau_ns_;
  double value_ = 0.0;
  uint64_t count_ = 0;
  uint64_t last_ns_ = 0;
};

struct WindowedOptions {
  // The rolling window W of simulated time the Recent* signals answer from.
  uint64_t window_ns = 5'000'000;  // 5 ms of simulated work (~5k far ops)
  // Sub-windows per window: recency grain W / slots; rotation clears one
  // sub-window LogHistogram per grain.
  size_t slots = 8;
  // LogHistogram resolution for the sub-windows (coarser than the
  // since-start histograms: windows trade resolution for rotation cost).
  int sub_bits = 3;
  // Time constant of the per-node load EWMAs.
  uint64_t ewma_tau_ns = 1'000'000;
  // Staging-array capacity, in RUNS (maximal same-(latency, kind) record
  // groups): records accumulate lock-free in owner-side run accumulators
  // and are folded into the locked window structures when the sub-window
  // epoch advances (or, rarely, when this array fills with distinct runs).
  // Readers can therefore lag the owner by up to one sub-window of records.
  size_t staging = 256;
};

// The per-client windowed signal bundle (hung off OpRecorder).
class WindowedSignals {
 public:
  explicit WindowedSignals(const WindowedOptions& options);

  // ---- Owner-thread write side ----
  // One executed far op. `now_ns` is the op's completion time on the
  // owner's SimClock. Folds the op into owner-side run accumulators; the
  // batch moves into the locked structures when `now_ns` crosses a
  // sub-window boundary (or, rarely, when the run array fills).
  // Inline: this runs once per far op in always-on mode (the E15 budget).
  // Two design rules keep the in-situ cost near the microbenchmark number
  // even when the app's working set is hundreds of times the cache:
  //   1. Touch only ALWAYS-HOT lines. Everything written here — the run
  //      header and the few-entry per-node table — is re-touched every
  //      record, so it lives in L1 no matter what the app evicts. (An
  //      earlier version aggregated per-kind summaries into cold per-kind
  //      arrays; those read-modify-writes missed to L2/L3 on every record,
  //      tripling the in-situ cost over the same code in a tight loop.)
  //   2. Collapse before storing. Modelled latencies are deterministic, so
  //      traffic is runs of a few distinct (latency, kind) values — e.g.
  //      probe streams alternate bucket-read / value-read latencies. TWO
  //      pending run slots (current + previous key) absorb exactly that
  //      alternation: each record is a packed-u64 key compare plus a count
  //      increment, and the staging array is only written when a THIRD
  //      distinct key appears within one sub-window.
  void RecordOp(FarOpKind kind, NodeId node, uint64_t bytes, uint64_t now_ns,
                uint64_t latency_ns) {
    const uint64_t epoch = now_ns >> slot_shift_;
    if (epoch != staged_epoch_) {
      if (pend_[0].count != 0) {
        LockedDrain();
      }
      staged_epoch_ = epoch;
    }
    if (now_ns > staged_last_now_) {
      staged_last_now_ = now_ns;
    }
    const uint64_t lat = latency_ns > UINT32_MAX ? UINT32_MAX : latency_ns;
    if (kind != FarOpKind::kBatch) {
      if (node >= node_hot_cap_) {
        GrowNodeHot(node);
      }
      NodeAgg& a = node_hot_data_[node];
      ++a.ops;
      a.bytes += bytes;
      a.latency_sum += lat;
    }
    const uint64_t key = (lat << 8) | static_cast<uint8_t>(kind);
    if (key == pend_[0].key) {
      ++pend_[0].count;
      return;
    }
    if (key == pend_[1].key) {
      ++pend_[1].count;
      return;
    }
    BreakRun(key);
  }
  // One transaction outcome (commit or abort; validate_fail marks aborts
  // whose read set failed validation). Rare relative to ops: locks directly.
  void RecordTxn(uint64_t now_ns, bool committed, bool validate_fail);
  // Flushes the staging buffer. Owner thread only (the owner calls this
  // before reading its own signals so they include everything it recorded).
  void Drain();

  // ---- Read side (any thread; locks) ----
  // Windows are evaluated at the newest drained timestamp, so reads are
  // consistent with the last drain rather than a clock readers can't see.
  uint64_t RecentPercentile(FarOpKind kind, double q) const;
  uint64_t RecentP99(FarOpKind kind) const {
    return RecentPercentile(kind, 0.99);
  }
  // Across ALL op kinds (excluding the kBatch roll-up span).
  uint64_t RecentPercentileAll(double q) const;
  uint64_t RecentP99All() const { return RecentPercentileAll(0.99); }
  uint64_t RecentCount(FarOpKind kind) const;
  uint64_t RecentCountAll() const;
  double RecentOpsPerSec(NodeId node) const;
  double RecentBytesPerSec(NodeId node) const;
  // Smoothed per-op modelled latency to `node` (ns) — the load proxy an
  // adaptive one-sided/RPC router consumes: a saturated or slowed node
  // shows up here within ~tau of simulated time. 0 for never-touched nodes.
  double NodeLoadEwma(NodeId node) const;
  // Number of node slots with any recorded traffic (index bound for the
  // per-node getters).
  size_t node_count() const;
  // Windowed txn outcome rates over commits+aborts in the window (0 when
  // the window holds no outcomes).
  double RecentTxnAbortRate() const;
  double RecentTxnValidateFailRate() const;
  uint64_t RecentTxnCommits() const;
  uint64_t RecentTxnAborts() const;
  // Newest drained simulated timestamp.
  uint64_t last_now_ns() const;

  const WindowedOptions& options() const { return options_; }

 private:
  // A real key is (latency<<8 | kind) with latency clamped to 32 bits
  // (a 4-second modelled op saturates — far beyond anything the fabric
  // models), so it fits 40 bits; UINT64_MAX can never collide with one and
  // marks an empty run slot.
  static constexpr uint64_t kEmptyKey = UINT64_MAX;

  // One run of consecutive (not necessarily adjacent — the two pending
  // slots absorb a 2-way interleave) records sharing a (latency, kind) key
  // within one sub-window epoch.
  struct PendingRun {
    uint64_t key = kEmptyKey;
    uint64_t count = 0;
  };
  // Per-node accumulator (node_hot_, indexed by node id). Updated inline by
  // RecordOp — the table is a few nodes x 24 bytes and touched every
  // record, so it stays L1-resident — and folded into the per-node rings /
  // EWMAs once per drain.
  struct NodeAgg {
    uint64_t ops = 0;
    uint64_t bytes = 0;
    uint64_t latency_sum = 0;
  };

  void DrainLocked();
  void LockedDrain() {
    std::lock_guard<std::mutex> lock(mu_);
    DrainLocked();
  }
  // Third-distinct-key path of RecordOp: evict the older pending run to the
  // staging array (draining first if it is full) and open a run for `key`.
  // Out of line — it runs once per key change, not once per record.
  void BreakRun(uint64_t key);
  // Out-of-line growth path for the per-node table (first record ever seen
  // for a node id).
  void GrowNodeHot(size_t node);
  void EnsureNodeLocked(size_t node);

  // Hot header fields, kept adjacent so the RecordOp read-modify-write
  // traffic stays within one or two cache lines.
  int slot_shift_;  // cached from kind_hist_ (all rings share geometry)
  PendingRun pend_[2];  // [0] = current run, [1] = previous (still open) run
  size_t staged_total_ = 0;
  uint64_t staged_epoch_ = UINT64_MAX;
  uint64_t staged_last_now_ = 0;  // newest completion time in the batch
  // Raw pointer/bound of node_hot_, cached so the per-record accumulation
  // avoids the vector's size() recomputation.
  NodeAgg* node_hot_data_ = nullptr;
  size_t node_hot_cap_ = 0;
  // Raw pointer/capacity of staging_, cached for the same reason.
  PendingRun* staging_data_ = nullptr;
  size_t staging_cap_ = 0;
  // Owner-only staging (no lock): closed runs, appended by BreakRun,
  // drained under mu_. Every staged run shares one sub-window epoch —
  // RecordOp drains BEFORE admitting a record from a new sub-window.
  std::vector<PendingRun> staging_;  // capacity = options_.staging
  // Owner-only per-node sums since the last drain (see NodeAgg).
  std::vector<NodeAgg> node_hot_;

  WindowedOptions options_;

  mutable std::mutex mu_;
  // Per-kind rolling histograms only; the all-kinds view (RecentP99All) is
  // merged from them at read time, so the drain loop appends each record to
  // ONE histogram instead of two.
  std::vector<WindowedHistogram> kind_hist_;  // size kFarOpKindCount
  std::vector<WindowedRate> node_ops_;        // NodeId -> rolling op count
  std::vector<WindowedRate> node_bytes_;      // NodeId -> rolling bytes
  std::vector<Ewma> node_load_;               // NodeId -> latency EWMA
  WindowedRate txn_commits_;
  WindowedRate txn_aborts_;
  WindowedRate txn_vfails_;
  uint64_t last_now_ns_ = 0;
};

}  // namespace fmds

#endif  // FMDS_SRC_OBS_WINDOWED_H_
