// Fleet-wide aggregation of per-client OpRecorders: merged per-op-kind and
// per-label latency histograms, the (client x node) traffic matrix behind
// the node heatmap, and the trace rings for export. Built at report time
// (single-threaded), so absorption is plain merging.
#ifndef FMDS_SRC_OBS_METRICS_REGISTRY_H_
#define FMDS_SRC_OBS_METRICS_REGISTRY_H_

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "src/common/histogram.h"
#include "src/obs/recorder.h"

namespace fmds {

class MetricsRegistry {
 public:
  struct Traffic {
    uint64_t ops = 0;
    uint64_t bytes = 0;
  };

  MetricsRegistry();

  // Merges one client's recorder into the fleet view and remembers its
  // trace ring for export. The recorder must outlive the registry (benches
  // and tests keep clients alive through reporting).
  void Absorb(const OpRecorder& recorder);

  // ---- Merged views ----
  const LogHistogram& kind_histogram(FarOpKind kind) const {
    return kind_hists_[static_cast<size_t>(kind)];
  }
  struct LabelRow {
    LogHistogram hist;
    uint64_t ops = 0;
    uint64_t bytes = 0;
    uint64_t cache_hits = 0;
    uint64_t cache_misses = 0;
    uint64_t cache_invalidations = 0;
  };
  const std::map<std::string, LabelRow>& labels() const { return labels_; }

  // (client, node) -> traffic; the heatmap's cells.
  const std::map<std::pair<uint64_t, NodeId>, Traffic>& traffic() const {
    return traffic_;
  }
  // Per-node totals across clients (heatmap row sums), index = NodeId.
  std::vector<Traffic> NodeTotals() const;

  struct TraceSource {
    uint64_t client_id = 0;
    const OpRecorder* recorder = nullptr;
  };
  const std::vector<TraceSource>& trace_sources() const { return sources_; }

  // ---- Report output ----
  // Per-op-kind latency table: kind, count, mean, p50, p99, max.
  void PrintOpKindTable(std::ostream& os, const std::string& title) const;
  // Paper-style per-structure breakdown: label, far ops, bytes, p50, p99.
  void PrintLabelTable(std::ostream& os, const std::string& title) const;
  // Client x node ops matrix plus per-node byte totals.
  void PrintHeatmap(std::ostream& os, const std::string& title) const;

  // ---- JSON fragments (for BenchJson::Raw) ----
  // Both object fragments emit keys in stable sorted order and JSON-escape
  // key strings, so the output is valid JSON byte-stable across runs.
  // {"read": {"count":N,"p50_ns":..,"p99_ns":..,"max_ns":..,"mean_ns":..},..}
  std::string OpLatencyJsonObject() const;
  // [{"node":0,"ops":N,"bytes":B}, ...] summed over clients.
  std::string NodeHeatmapJsonArray() const;
  // {"httree.get": {"ops":N,"bytes":B,"p50_ns":..,"p99_ns":..}, ...}
  // Labels with NearCache activity additionally carry cache_hits,
  // cache_misses, cache_invalidations, and hit_ratio fields.
  std::string LabelJsonObject() const;
  // {"hits":N,"misses":N,"hit_ratio":R,"invalidations":N} summed over all
  // labels — the bench-level cache summary fragment.
  std::string CacheJsonObject() const;

 private:
  std::vector<LogHistogram> kind_hists_;
  std::map<std::string, LabelRow> labels_;
  std::map<std::pair<uint64_t, NodeId>, Traffic> traffic_;
  std::vector<TraceSource> sources_;
};

}  // namespace fmds

#endif  // FMDS_SRC_OBS_METRICS_REGISTRY_H_
