#include "src/obs/metrics_registry.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <utility>

#include "src/common/table.h"
#include "src/obs/json.h"

namespace fmds {

MetricsRegistry::MetricsRegistry() {
  kind_hists_.reserve(kFarOpKindCount);
  for (size_t i = 0; i < kFarOpKindCount; ++i) {
    kind_hists_.emplace_back();
  }
}

void MetricsRegistry::Absorb(const OpRecorder& recorder) {
  for (size_t i = 0; i < kFarOpKindCount; ++i) {
    kind_hists_[i].Merge(recorder.kind_histogram(static_cast<FarOpKind>(i)));
  }
  for (size_t id = 0; id < recorder.label_count(); ++id) {
    const OpRecorder::Traffic& traffic = recorder.label_traffic()[id];
    const LogHistogram& hist = recorder.label_histograms()[id];
    const OpRecorder::CacheCounts& cache = recorder.label_cache()[id];
    if (traffic.ops == 0 && hist.count() == 0 && cache.hits == 0 &&
        cache.misses == 0 && cache.invalidations == 0) {
      continue;
    }
    LabelRow& row = labels_[recorder.label_name(id)];
    row.hist.Merge(hist);
    row.ops += traffic.ops;
    row.bytes += traffic.bytes;
    row.cache_hits += cache.hits;
    row.cache_misses += cache.misses;
    row.cache_invalidations += cache.invalidations;
  }
  for (NodeId node = 0; node < recorder.node_traffic().size(); ++node) {
    const OpRecorder::Traffic& cell = recorder.node_traffic()[node];
    if (cell.ops == 0 && cell.bytes == 0) {
      continue;
    }
    Traffic& merged = traffic_[{recorder.client_id(), node}];
    merged.ops += cell.ops;
    merged.bytes += cell.bytes;
  }
  sources_.push_back(TraceSource{recorder.client_id(), &recorder});
}

std::vector<MetricsRegistry::Traffic> MetricsRegistry::NodeTotals() const {
  std::vector<Traffic> totals;
  for (const auto& [key, cell] : traffic_) {
    const NodeId node = key.second;
    if (totals.size() <= node) {
      totals.resize(node + 1);
    }
    totals[node].ops += cell.ops;
    totals[node].bytes += cell.bytes;
  }
  return totals;
}

void MetricsRegistry::PrintOpKindTable(std::ostream& os,
                                       const std::string& title) const {
  Table table({"op kind", "count", "mean_ns", "p50_ns", "p99_ns", "max_ns"});
  for (size_t i = 0; i < kFarOpKindCount; ++i) {
    const LogHistogram& hist = kind_hists_[i];
    if (hist.count() == 0) {
      continue;
    }
    table.AddRow({FarOpKindName(static_cast<FarOpKind>(i)),
                  Table::Cell(hist.count()), Table::Cell(hist.mean(), 1),
                  Table::Cell(hist.Percentile(0.50)),
                  Table::Cell(hist.Percentile(0.99)),
                  Table::Cell(hist.max())});
  }
  table.Print(os, title);
}

void MetricsRegistry::PrintLabelTable(std::ostream& os,
                                      const std::string& title) const {
  Table table({"op label", "far_ops", "bytes", "mean_ns", "p50_ns", "p99_ns",
               "hit%"});
  for (const auto& [name, row] : labels_) {
    const uint64_t lookups = row.cache_hits + row.cache_misses;
    std::string hit_pct = "-";
    if (lookups > 0) {
      hit_pct = Table::Cell(
          100.0 * static_cast<double>(row.cache_hits) / lookups, 1);
    }
    table.AddRow({name.empty() ? "(unlabeled)" : name, Table::Cell(row.ops),
                  Table::Cell(row.bytes), Table::Cell(row.hist.mean(), 1),
                  Table::Cell(row.hist.Percentile(0.50)),
                  Table::Cell(row.hist.Percentile(0.99)), hit_pct});
  }
  table.Print(os, title);
}

void MetricsRegistry::PrintHeatmap(std::ostream& os,
                                   const std::string& title) const {
  const std::vector<Traffic> totals = NodeTotals();
  Table table({"client", "node", "ops", "bytes"});
  for (const auto& [key, cell] : traffic_) {
    table.AddRow({Table::Cell(key.first),
                  Table::Cell(static_cast<uint64_t>(key.second)),
                  Table::Cell(cell.ops), Table::Cell(cell.bytes)});
  }
  for (NodeId node = 0; node < totals.size(); ++node) {
    table.AddRow({"(all)", Table::Cell(static_cast<uint64_t>(node)),
                  Table::Cell(totals[node].ops),
                  Table::Cell(totals[node].bytes)});
  }
  table.Print(os, title);
}

namespace {

std::string HistStatsJson(const LogHistogram& hist) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "\"count\": %llu, \"mean_ns\": %.1f, \"p50_ns\": %llu, "
                "\"p99_ns\": %llu, \"max_ns\": %llu",
                static_cast<unsigned long long>(hist.count()), hist.mean(),
                static_cast<unsigned long long>(hist.Percentile(0.50)),
                static_cast<unsigned long long>(hist.Percentile(0.99)),
                static_cast<unsigned long long>(hist.max()));
  return buf;
}

}  // namespace

std::string MetricsRegistry::OpLatencyJsonObject() const {
  // Keys come out sorted by name (not enum order) so the fragment is byte-
  // stable across runs and diffs cleanly between bench JSON files.
  std::vector<std::pair<std::string, size_t>> kinds;
  for (size_t i = 0; i < kFarOpKindCount; ++i) {
    if (kind_hists_[i].count() != 0) {
      kinds.emplace_back(FarOpKindName(static_cast<FarOpKind>(i)), i);
    }
  }
  std::sort(kinds.begin(), kinds.end());
  std::string out = "{";
  bool first = true;
  for (const auto& [name, i] : kinds) {
    if (!first) {
      out += ", ";
    }
    first = false;
    out += "\"";
    out += JsonEscape(name);
    out += "\": {";
    out += HistStatsJson(kind_hists_[i]);
    out += "}";
  }
  out += "}";
  return out;
}

std::string MetricsRegistry::NodeHeatmapJsonArray() const {
  const std::vector<Traffic> totals = NodeTotals();
  std::string out = "[";
  for (NodeId node = 0; node < totals.size(); ++node) {
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"node\": %u, \"ops\": %llu, \"bytes\": %llu}",
                  node == 0 ? "" : ", ", node,
                  static_cast<unsigned long long>(totals[node].ops),
                  static_cast<unsigned long long>(totals[node].bytes));
    out += buf;
  }
  out += "]";
  return out;
}

std::string MetricsRegistry::LabelJsonObject() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, row] : labels_) {
    if (!first) {
      out += ", ";
    }
    first = false;
    out += "\"";
    // Labels are user-supplied strings; escape them so a quote or backslash
    // in a label cannot corrupt the fragment. labels_ is an ordered map, so
    // keys are already emitted in stable sorted order.
    out += JsonEscape(name.empty() ? "(unlabeled)" : name);
    out += "\": {";
    char buf[192];
    std::snprintf(buf, sizeof(buf), "\"ops\": %llu, \"bytes\": %llu, ",
                  static_cast<unsigned long long>(row.ops),
                  static_cast<unsigned long long>(row.bytes));
    out += buf;
    out += HistStatsJson(row.hist);
    const uint64_t lookups = row.cache_hits + row.cache_misses;
    if (lookups > 0 || row.cache_invalidations > 0) {
      std::snprintf(
          buf, sizeof(buf),
          ", \"cache_hits\": %llu, \"cache_misses\": %llu, "
          "\"cache_invalidations\": %llu, \"hit_ratio\": %.4f",
          static_cast<unsigned long long>(row.cache_hits),
          static_cast<unsigned long long>(row.cache_misses),
          static_cast<unsigned long long>(row.cache_invalidations),
          lookups == 0 ? 0.0
                       : static_cast<double>(row.cache_hits) / lookups);
      out += buf;
    }
    out += "}";
  }
  out += "}";
  return out;
}

std::string MetricsRegistry::CacheJsonObject() const {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t invalidations = 0;
  for (const auto& [name, row] : labels_) {
    hits += row.cache_hits;
    misses += row.cache_misses;
    invalidations += row.cache_invalidations;
  }
  const uint64_t lookups = hits + misses;
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "{\"hits\": %llu, \"misses\": %llu, \"hit_ratio\": %.4f, "
                "\"invalidations\": %llu}",
                static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(misses),
                lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups,
                static_cast<unsigned long long>(invalidations));
  return buf;
}

}  // namespace fmds
