// Minimal JSON string escaping for the observability exporters. The bench
// harness's BenchJson quotes only '"' and '\\'; exporter-facing strings
// (gauge names, op labels like "httree.get") may in principle carry control
// characters or unicode-free arbitrary bytes, and a committed BENCH_*.json
// must stay parseable regardless.
#ifndef FMDS_SRC_OBS_JSON_H_
#define FMDS_SRC_OBS_JSON_H_

#include <cstdio>
#include <string>
#include <string_view>

namespace fmds {

// Returns `s` with JSON string escapes applied (no surrounding quotes).
inline std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace fmds

#endif  // FMDS_SRC_OBS_JSON_H_
