#include "src/obs/recorder.h"

#include "src/obs/telemetry.h"

namespace fmds {

OpRecorder::OpRecorder(uint64_t client_id) : client_id_(client_id) {
  // Label id 0 is the unlabeled bucket, always present so attribution never
  // needs a lookup miss path.
  label_names_.push_back("");
  label_ids_.emplace("", 0);
  label_hists_.emplace_back(options_.histogram_sub_bits);
  label_traffic_.emplace_back();
  label_cache_.emplace_back();
  kind_hists_.reserve(kFarOpKindCount);
  for (size_t i = 0; i < kFarOpKindCount; ++i) {
    kind_hists_.emplace_back(options_.histogram_sub_bits);
  }
}

void OpRecorder::set_options(const ObsOptions& options) {
  const bool resolution_changed =
      options.histogram_sub_bits != options_.histogram_sub_bits;
  options_ = options;
  enabled_ = options_.latency_histograms || options_.trace;
  // A parked instance never survives an options change (its geometry may
  // no longer match).
  parked_windowed_.reset();
  if (options_.windowed) {
    // Rebuild rather than carry over: window geometry may have changed and
    // a fresh ring is cheap next to the since-start histogram rebuild below.
    windowed_ = std::make_unique<WindowedSignals>(options_.windowed_opts);
  } else {
    windowed_.reset();
  }
  if (resolution_changed) {
    kind_hists_.clear();
    for (size_t i = 0; i < kFarOpKindCount; ++i) {
      kind_hists_.emplace_back(options_.histogram_sub_bits);
    }
    label_hists_.clear();
    for (size_t i = 0; i < label_names_.size(); ++i) {
      label_hists_.emplace_back(options_.histogram_sub_bits);
    }
  }
  if (trace_.capacity() != options_.trace_capacity) {
    trace_.set_capacity(options_.trace ? options_.trace_capacity : 0);
  } else if (!options_.trace) {
    trace_.set_capacity(0);
  }
}

uint32_t OpRecorder::InternLabel(std::string_view label) {
  auto it = label_ids_.find(std::string(label));
  if (it != label_ids_.end()) {
    return it->second;
  }
  const uint32_t id = static_cast<uint32_t>(label_names_.size());
  label_names_.emplace_back(label);
  label_ids_.emplace(label_names_.back(), id);
  label_hists_.emplace_back(options_.histogram_sub_bits);
  label_traffic_.emplace_back();
  label_cache_.emplace_back();
  return id;
}

void OpRecorder::PushLabel(std::string_view label) {
  label_stack_.push_back(InternLabel(label));
}

void OpRecorder::PopLabel() {
  if (!label_stack_.empty()) {
    label_stack_.pop_back();
  }
}

std::string_view OpRecorder::current_label() const {
  return label_stack_.empty() ? std::string_view()
                              : label_names_[label_stack_.back()];
}

void OpRecorder::RecordOpSinceStart(FarOpKind kind, NodeId node, FarAddr addr,
                                    uint64_t bytes, uint64_t start_ns,
                                    uint64_t latency_ns, bool ok,
                                    uint64_t batch_id) {
  const uint32_t label =
      label_stack_.empty() ? 0 : label_stack_.back();
  // The batch span is a roll-up over ops attributed individually; keep it
  // out of the label/node tables so breakdowns don't double count.
  if (kind != FarOpKind::kBatch) {
    label_traffic_[label].ops += 1;
    label_traffic_[label].bytes += bytes;
    if (node != kObsNoNode) {
      if (node_traffic_.size() <= node) {
        node_traffic_.resize(node + 1);
      }
      node_traffic_[node].ops += 1;
      node_traffic_[node].bytes += bytes;
    }
  }
  if (options_.latency_histograms) {
    kind_hists_[static_cast<size_t>(kind)].Record(latency_ns);
    if (kind != FarOpKind::kBatch) {
      label_hists_[label].Record(latency_ns);
    }
  }
  if (options_.trace) {
    TraceEvent event;
    event.start_ns = start_ns;
    event.latency_ns = latency_ns;
    event.addr = addr;
    event.bytes = bytes;
    event.batch_id = batch_id;
    event.node = node;
    event.label_id = label;
    event.kind = kind;
    event.ok = ok;
    trace_.Push(event);
  }
}

void OpRecorder::RecordTxnOutcome(uint64_t now_ns, bool committed,
                                  bool validate_fail) {
  if (windowed_ != nullptr) {
    windowed_->RecordTxn(now_ns, committed, validate_fail);
  }
}

void OpRecorder::RecordCacheHit() {
  if (enabled_) {
    ++label_cache_[label_stack_.empty() ? 0 : label_stack_.back()].hits;
  }
}

void OpRecorder::RecordCacheMiss() {
  if (enabled_) {
    ++label_cache_[label_stack_.empty() ? 0 : label_stack_.back()].misses;
  }
}

void OpRecorder::RecordCacheInvalidation() {
  if (enabled_) {
    ++label_cache_[label_stack_.empty() ? 0 : label_stack_.back()]
          .invalidations;
  }
}

void OpRecorder::AddGauges(GaugeGroup* group, const std::string& prefix,
                           uint32_t num_nodes) const {
  const WindowedSignals* w = windowed_.get();
  if (w == nullptr) {
    return;
  }
  group->Add(prefix + ".p99_ns", [w] {
    return static_cast<double>(w->RecentP99All());
  });
  group->Add(prefix + ".ops", [w] {
    return static_cast<double>(w->RecentCountAll());
  });
  for (size_t i = 0; i < kFarOpKindCount; ++i) {
    const FarOpKind kind = static_cast<FarOpKind>(i);
    group->Add(prefix + ".p99_ns." + FarOpKindName(kind), [w, kind] {
      return static_cast<double>(w->RecentP99(kind));
    });
  }
  group->Add(prefix + ".txn_abort_rate",
             [w] { return w->RecentTxnAbortRate(); });
  group->Add(prefix + ".txn_validate_fail_rate",
             [w] { return w->RecentTxnValidateFailRate(); });
  for (uint32_t node = 0; node < num_nodes; ++node) {
    const std::string node_prefix =
        prefix + ".node" + std::to_string(node);
    group->Add(node_prefix + ".ops_per_sec",
               [w, node] { return w->RecentOpsPerSec(node); });
    group->Add(node_prefix + ".bytes_per_sec",
               [w, node] { return w->RecentBytesPerSec(node); });
    group->Add(node_prefix + ".load_ewma",
               [w, node] { return w->NodeLoadEwma(node); });
  }
}

void OpRecorder::Reset() {
  for (auto& hist : kind_hists_) {
    hist.Reset();
  }
  for (auto& hist : label_hists_) {
    hist.Reset();
  }
  for (auto& traffic : label_traffic_) {
    traffic = Traffic();
  }
  for (auto& cache : label_cache_) {
    cache = CacheCounts();
  }
  node_traffic_.clear();
  trace_.Clear();
  parked_windowed_.reset();
  if (windowed_ != nullptr) {
    windowed_ = std::make_unique<WindowedSignals>(options_.windowed_opts);
  }
}

}  // namespace fmds
