#include "src/obs/trace_export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <ostream>

namespace fmds {

namespace {

// Simulated ns -> trace-format microseconds (Perfetto's JSON ts unit).
void AppendTs(std::string& out, const char* key, uint64_t ns) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\": %.3f", key,
                static_cast<double>(ns) / 1000.0);
  out += buf;
}

void AppendEvent(std::ostream& os, const TraceEvent& event,
                 const OpRecorder& recorder, bool* first) {
  std::string line = *first ? "  {" : ",\n  {";
  *first = false;

  std::string name;
  if (event.kind == FarOpKind::kBatch) {
    name = "batch#" + std::to_string(event.batch_id);
  } else {
    const std::string& label = recorder.label_name(event.label_id);
    name = label.empty() ? FarOpKindName(event.kind) : label;
  }
  line += "\"name\": \"" + name + "\", ";
  line += "\"cat\": \"fabric\", \"ph\": \"X\", ";
  AppendTs(line, "ts", event.start_ns);
  line += ", ";
  AppendTs(line, "dur", event.latency_ns);

  char buf[256];
  std::snprintf(buf, sizeof(buf),
                ", \"pid\": %" PRIu64 ", \"tid\": %" PRIu64
                ", \"args\": {\"kind\": \"%s\", \"label\": \"%s\", "
                "\"node\": %lld, \"addr\": %" PRIu64 ", \"bytes\": %" PRIu64
                ", \"batch\": %" PRIu64 ", \"ok\": %s}}",
                recorder.client_id(), recorder.client_id(),
                FarOpKindName(event.kind),
                recorder.label_name(event.label_id).c_str(),
                event.node == kObsNoNode
                    ? -1ll
                    : static_cast<long long>(event.node),
                event.addr, event.bytes, event.batch_id,
                event.ok ? "true" : "false");
  line += buf;
  os << line;
}

void AppendMetadata(std::ostream& os, uint64_t client_id, bool* first) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%s  {\"name\": \"process_name\", \"ph\": \"M\", \"ts\": 0, "
                "\"pid\": %" PRIu64 ", \"tid\": %" PRIu64
                ", \"args\": {\"name\": \"client %" PRIu64 "\"}}",
                *first ? "" : ",\n", client_id, client_id, client_id);
  *first = false;
  os << buf;
  std::snprintf(buf, sizeof(buf),
                ",\n  {\"name\": \"thread_name\", \"ph\": \"M\", \"ts\": 0, "
                "\"pid\": %" PRIu64 ", \"tid\": %" PRIu64
                ", \"args\": {\"name\": \"fabric ops\"}}",
                client_id, client_id);
  os << buf;
}

}  // namespace

void WriteChromeTrace(std::ostream& os, const MetricsRegistry& registry) {
  os << "{\"traceEvents\": [\n";
  bool first = true;
  for (const auto& source : registry.trace_sources()) {
    if (source.recorder == nullptr) {
      continue;
    }
    std::vector<TraceEvent> events = source.recorder->trace().Snapshot();
    if (events.empty()) {
      continue;
    }
    AppendMetadata(os, source.client_id, &first);
    // Stable order for the importer: by start time, longest span first on
    // ties so batch parents precede the ops they enclose.
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                       if (a.start_ns != b.start_ns) {
                         return a.start_ns < b.start_ns;
                       }
                       return a.latency_ns > b.latency_ns;
                     });
    for (const TraceEvent& event : events) {
      AppendEvent(os, event, *source.recorder, &first);
    }
  }
  os << "\n], \"displayTimeUnit\": \"ns\"}\n";
}

Status WriteChromeTraceFile(const std::string& path,
                            const MetricsRegistry& registry) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Unavailable("cannot open trace output file");
  }
  WriteChromeTrace(out, registry);
  out.flush();
  if (!out) {
    return Unavailable("trace output write failed");
  }
  return OkStatus();
}

}  // namespace fmds
