#include "src/alloc/far_allocator.h"

#include <algorithm>
#include <cassert>

namespace fmds {

namespace {
// First 64 bytes of every node stay unused so global address 0 is never
// handed out (null pointer) and node headers have scratch space.
constexpr uint64_t kArenaBase = 64;

uint64_t RoundUpWords(uint64_t size) {
  return (size + kWordSize - 1) & ~(kWordSize - 1);
}
}  // namespace

FarAllocator::FarAllocator(Fabric* fabric) : fabric_(fabric) {
  const auto& opt = fabric_->options();
  chunk_size_ = opt.stripe_bytes == 0 ? opt.node_capacity : opt.stripe_bytes;
  chunks_per_node_ = opt.node_capacity / chunk_size_;
  arenas_.resize(opt.num_nodes);
  for (auto& arena : arenas_) {
    arena.chunk_used = kArenaBase;
  }
  contiguous_bump_ = fabric_->total_capacity();
}

FarAddr FarAllocator::ChunkAddr(NodeId node, uint64_t chunk,
                                uint64_t offset) const {
  const auto& opt = fabric_->options();
  if (opt.stripe_bytes == 0 || opt.num_nodes == 1) {
    return static_cast<FarAddr>(node) * opt.node_capacity +
           chunk * chunk_size_ + offset;
  }
  const uint64_t stripe_index = chunk * opt.num_nodes + node;
  return stripe_index * chunk_size_ + offset;
}

Result<FarAddr> FarAllocator::AllocateOnNodeLocked(NodeId node,
                                                   uint64_t size,
                                                   uint64_t alignment) {
  NodeArena& arena = arenas_[node];
  auto it = arena.free_lists.find(size);
  if (it != arena.free_lists.end() && !it->second.empty() &&
      it->second.back() % alignment == 0) {
    const FarAddr addr = it->second.back();
    it->second.pop_back();
    allocated_bytes_ += size;
    return addr;
  }
  if (size > chunk_size_) {
    return Status(StatusCode::kInvalidArgument,
                  "single-node allocation larger than node chunk");
  }
  // Chunk bases are page-aligned in the global space (capacities and
  // stripes are page multiples), so aligning the in-chunk offset aligns the
  // global address.
  uint64_t aligned = (arena.chunk_used + alignment - 1) & ~(alignment - 1);
  if (aligned + size > chunk_size_) {
    // Advance to the next chunk of this node's sequence.
    ++arena.next_chunk;
    arena.chunk_used = 0;
    aligned = 0;
  }
  if (arena.next_chunk >= chunks_per_node_) {
    return Status(StatusCode::kResourceExhausted, "memory node full");
  }
  const FarAddr addr = ChunkAddr(node, arena.next_chunk, aligned);
  arena.chunk_used = aligned + size;
  allocated_bytes_ += size;
  return addr;
}

Result<FarAddr> FarAllocator::Allocate(uint64_t size, AllocHint hint,
                                       uint64_t alignment) {
  if (size == 0 || alignment == 0 || (alignment & (alignment - 1)) != 0) {
    return Status(StatusCode::kInvalidArgument, "zero-size allocation");
  }
  size = RoundUpWords(size);
  std::lock_guard<std::mutex> lock(mu_);
  switch (hint.placement) {
    case Placement::kAny: {
      // Round-robin across nodes for parallelism; fall through full nodes.
      const uint32_t n = fabric_->num_nodes();
      for (uint32_t attempt = 0; attempt < n; ++attempt) {
        const NodeId node = (round_robin_ + attempt) % n;
        auto r = AllocateOnNodeLocked(node, size, alignment);
        if (r.ok()) {
          round_robin_ = (node + 1) % n;
          return r;
        }
        if (r.status().code() != StatusCode::kResourceExhausted) {
          return r;
        }
      }
      return Status(StatusCode::kResourceExhausted, "all nodes full");
    }
    case Placement::kOnNode:
      if (hint.node >= fabric_->num_nodes()) {
        return Status(StatusCode::kInvalidArgument, "bad node id");
      }
      return AllocateOnNodeLocked(hint.node, size, alignment);
    case Placement::kNearAddr: {
      auto loc = fabric_->Translate(hint.near);
      if (!loc.ok()) {
        return loc.status();
      }
      return AllocateOnNodeLocked(loc->node, size, alignment);
    }
    case Placement::kContiguous: {
      if (size > contiguous_bump_) {
        return Status(StatusCode::kResourceExhausted,
                      "contiguous region exhausted");
      }
      const FarAddr candidate = (contiguous_bump_ - size) & ~(alignment - 1);
      // Refuse if the range would collide with any node's bump frontier.
      std::vector<Fabric::Segment> segs;
      FMDS_RETURN_IF_ERROR(fabric_->Segments(candidate, size, segs));
      for (const auto& seg : segs) {
        const NodeArena& arena = arenas_[seg.node];
        const uint64_t used =
            arena.next_chunk * chunk_size_ + arena.chunk_used;
        if (seg.offset < used) {
          return Status(StatusCode::kResourceExhausted,
                        "contiguous region collides with node arenas");
        }
      }
      contiguous_bump_ = candidate;
      allocated_bytes_ += size;
      return candidate;
    }
  }
  return Status(StatusCode::kInternal, "bad placement");
}

NodeId FarAllocator::PolicyNode(PlacementPolicy policy,
                                uint64_t shard_key) const {
  const uint32_t n = fabric_->num_nodes();
  switch (policy) {
    case PlacementPolicy::kSingleNode:
      return home_node_ % n;
    case PlacementPolicy::kRoundRobinPage: {
      std::lock_guard<std::mutex> lock(mu_);
      return static_cast<NodeId>(policy_pages_ % n);
    }
    case PlacementPolicy::kShardByKey:
      return static_cast<NodeId>(shard_key % n);
  }
  return 0;
}

Result<FarAddr> FarAllocator::AllocatePlaced(uint64_t size,
                                             PlacementPolicy policy,
                                             uint64_t shard_key,
                                             uint64_t alignment) {
  NodeId node = 0;
  const uint32_t n = fabric_->num_nodes();
  switch (policy) {
    case PlacementPolicy::kSingleNode:
      node = home_node_ % n;
      break;
    case PlacementPolicy::kRoundRobinPage: {
      // The cursor advances by whole pages so small allocations keep
      // landing together and page-sized ones tile the nodes evenly.
      std::lock_guard<std::mutex> lock(mu_);
      node = static_cast<NodeId>(policy_pages_ % n);
      policy_pages_ += std::max<uint64_t>(1, (size + kPageSize - 1) / kPageSize);
      break;
    }
    case PlacementPolicy::kShardByKey:
      node = static_cast<NodeId>(shard_key % n);
      break;
  }
  return Allocate(size, AllocHint::OnNode(node), alignment);
}

Status FarAllocator::Free(FarAddr addr, uint64_t size) {
  if (addr == kNullFarAddr) {
    return InvalidArgument("freeing null far address");
  }
  size = RoundUpWords(size);
  FMDS_ASSIGN_OR_RETURN(auto loc, fabric_->Translate(addr));
  std::lock_guard<std::mutex> lock(mu_);
  quarantine_[0].push_back(QuarantinedBlock{addr, size, loc.node});
  freed_bytes_ += size;
  return OkStatus();
}

void FarAllocator::AdvanceEpoch() {
  std::lock_guard<std::mutex> lock(mu_);
  // Blocks that already waited one epoch become reusable.
  for (const auto& block : quarantine_[1]) {
    arenas_[block.node].free_lists[block.size].push_back(block.addr);
  }
  quarantine_[1] = std::move(quarantine_[0]);
  quarantine_[0].clear();
}

uint64_t FarAllocator::allocated_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return allocated_bytes_;
}

uint64_t FarAllocator::freed_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return freed_bytes_;
}

}  // namespace fmds
