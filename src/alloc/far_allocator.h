// Far-memory allocator (§7.1): hands out global far addresses with optional
// (anti-)locality hints so data structures can control placement across
// memory nodes — e.g. keep a hash-bucket chain on one node (indirection stays
// local) or spread independent hash tables across nodes (parallelism).
//
// Design: one region allocator per memory node, operating on that node's
// slice of the global address space (whole partition, or its stripe
// sequence). Allocations of size <= stripe never straddle nodes. Freed
// blocks go to exact-size free lists (the workloads allocate a small set of
// fixed-size objects: items, buckets, tree nodes, tables).
//
// Reclamation safety: Free() never recycles memory immediately; blocks sit
// in a quarantine until the owner calls AdvanceEpoch() twice, giving
// HT-tree-style readers with stale caches time to notice retirement markers
// before addresses are reused (epoch-based reclamation).
#ifndef FMDS_SRC_ALLOC_FAR_ALLOCATOR_H_
#define FMDS_SRC_ALLOC_FAR_ALLOCATOR_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "src/common/status.h"
#include "src/fabric/fabric.h"

namespace fmds {

enum class Placement : uint8_t {
  kAny = 0,     // round-robin across nodes (default: spread for parallelism)
  kOnNode,      // on a specific node
  kNearAddr,    // on the same node as a given address (locality hint)
  kContiguous,  // globally contiguous range (spans nodes when striped)
};

struct AllocHint {
  Placement placement = Placement::kAny;
  NodeId node = 0;
  FarAddr near = kNullFarAddr;

  static AllocHint Any() { return {}; }
  static AllocHint OnNode(NodeId n) {
    return AllocHint{Placement::kOnNode, n, kNullFarAddr};
  }
  static AllocHint Near(FarAddr addr) {
    return AllocHint{Placement::kNearAddr, 0, addr};
  }
  static AllocHint Contiguous() {
    return AllocHint{Placement::kContiguous, 0, kNullFarAddr};
  }
};

// §7 scale-out placement policies: deterministic rules mapping a stream of
// allocations onto memory nodes, so structures can stripe their storage.
// Unlike the per-call AllocHint, a policy is a standing decision a
// structure (or a router like ShardedMap) applies to every allocation:
//   kSingleNode     everything on one home node — maximal locality, the
//                   pre-scale-out behaviour of a pinned structure.
//   kRoundRobinPage successive pages cycle over the nodes — capacity and
//                   bandwidth spread for bulk/append-ish storage.
//   kShardByKey     node = shard_key % num_nodes — co-locates everything
//                   sharing a shard key; the basis of per-node sharding.
enum class PlacementPolicy : uint8_t {
  kSingleNode = 0,
  kRoundRobinPage,
  kShardByKey,
};

class FarAllocator {
 public:
  explicit FarAllocator(Fabric* fabric);

  // Returns a far address of `size` bytes (rounded up to a multiple of 8),
  // aligned to `alignment` (a power of two; notification-heavy layouts pass
  // kPageSize so ranges never straddle pages). kResourceExhausted when the
  // placement target is full.
  Result<FarAddr> Allocate(uint64_t size, AllocHint hint = AllocHint::Any(),
                           uint64_t alignment = kWordSize);

  // Allocates under a standing placement policy. `shard_key` selects the
  // node for kShardByKey (ignored otherwise); kSingleNode pins to
  // `home_node` (default 0, see set_home_node); kRoundRobinPage advances an
  // internal page cursor by the pages this allocation covers.
  Result<FarAddr> AllocatePlaced(uint64_t size, PlacementPolicy policy,
                                 uint64_t shard_key = 0,
                                 uint64_t alignment = kWordSize);

  // The node the next AllocatePlaced(policy, shard_key) would target.
  // Stateless for kSingleNode/kShardByKey; reads (does not advance) the
  // round-robin cursor for kRoundRobinPage.
  NodeId PolicyNode(PlacementPolicy policy, uint64_t shard_key = 0) const;

  void set_home_node(NodeId node) { home_node_ = node; }

  // Returns the block to the quarantine; recycled two epochs later.
  Status Free(FarAddr addr, uint64_t size);

  // Moves quarantined blocks one epoch closer to reuse.
  void AdvanceEpoch();

  uint64_t allocated_bytes() const;
  uint64_t freed_bytes() const;

 private:
  struct NodeArena {
    // Next unused chunk index and offset within the node's chunk sequence.
    uint64_t next_chunk = 0;
    uint64_t chunk_used = 0;
    // Exact (rounded) size -> reusable global addresses.
    std::map<uint64_t, std::vector<FarAddr>> free_lists;
  };

  struct QuarantinedBlock {
    FarAddr addr;
    uint64_t size;
    NodeId node;
  };

  // Global address of byte `offset` within `node`'s chunk number `chunk`.
  FarAddr ChunkAddr(NodeId node, uint64_t chunk, uint64_t offset) const;
  Result<FarAddr> AllocateOnNodeLocked(NodeId node, uint64_t size,
                                       uint64_t alignment);

  Fabric* fabric_;
  uint64_t chunk_size_;   // stripe size, or the whole partition
  uint64_t chunks_per_node_;
  mutable std::mutex mu_;
  std::vector<NodeArena> arenas_;
  NodeId round_robin_ = 0;
  NodeId home_node_ = 0;       // kSingleNode target
  uint64_t policy_pages_ = 0;  // pages handed out by kRoundRobinPage
  FarAddr contiguous_bump_;  // high end of the address space, grows down
  std::vector<QuarantinedBlock> quarantine_[2];
  uint64_t allocated_bytes_ = 0;
  uint64_t freed_bytes_ = 0;
};

}  // namespace fmds

#endif  // FMDS_SRC_ALLOC_FAR_ALLOCATOR_H_
