// Far-memory allocator (§7.1): hands out global far addresses with optional
// (anti-)locality hints so data structures can control placement across
// memory nodes — e.g. keep a hash-bucket chain on one node (indirection stays
// local) or spread independent hash tables across nodes (parallelism).
//
// Design: one region allocator per memory node, operating on that node's
// slice of the global address space (whole partition, or its stripe
// sequence). Allocations of size <= stripe never straddle nodes. Freed
// blocks go to exact-size free lists (the workloads allocate a small set of
// fixed-size objects: items, buckets, tree nodes, tables).
//
// Reclamation safety: Free() never recycles memory immediately; blocks sit
// in a quarantine until the owner calls AdvanceEpoch() twice, giving
// HT-tree-style readers with stale caches time to notice retirement markers
// before addresses are reused (epoch-based reclamation).
#ifndef FMDS_SRC_ALLOC_FAR_ALLOCATOR_H_
#define FMDS_SRC_ALLOC_FAR_ALLOCATOR_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "src/common/status.h"
#include "src/fabric/fabric.h"

namespace fmds {

enum class Placement : uint8_t {
  kAny = 0,     // round-robin across nodes (default: spread for parallelism)
  kOnNode,      // on a specific node
  kNearAddr,    // on the same node as a given address (locality hint)
  kContiguous,  // globally contiguous range (spans nodes when striped)
};

struct AllocHint {
  Placement placement = Placement::kAny;
  NodeId node = 0;
  FarAddr near = kNullFarAddr;

  static AllocHint Any() { return {}; }
  static AllocHint OnNode(NodeId n) {
    return AllocHint{Placement::kOnNode, n, kNullFarAddr};
  }
  static AllocHint Near(FarAddr addr) {
    return AllocHint{Placement::kNearAddr, 0, addr};
  }
  static AllocHint Contiguous() {
    return AllocHint{Placement::kContiguous, 0, kNullFarAddr};
  }
};

class FarAllocator {
 public:
  explicit FarAllocator(Fabric* fabric);

  // Returns a far address of `size` bytes (rounded up to a multiple of 8),
  // aligned to `alignment` (a power of two; notification-heavy layouts pass
  // kPageSize so ranges never straddle pages). kResourceExhausted when the
  // placement target is full.
  Result<FarAddr> Allocate(uint64_t size, AllocHint hint = AllocHint::Any(),
                           uint64_t alignment = kWordSize);

  // Returns the block to the quarantine; recycled two epochs later.
  Status Free(FarAddr addr, uint64_t size);

  // Moves quarantined blocks one epoch closer to reuse.
  void AdvanceEpoch();

  uint64_t allocated_bytes() const;
  uint64_t freed_bytes() const;

 private:
  struct NodeArena {
    // Next unused chunk index and offset within the node's chunk sequence.
    uint64_t next_chunk = 0;
    uint64_t chunk_used = 0;
    // Exact (rounded) size -> reusable global addresses.
    std::map<uint64_t, std::vector<FarAddr>> free_lists;
  };

  struct QuarantinedBlock {
    FarAddr addr;
    uint64_t size;
    NodeId node;
  };

  // Global address of byte `offset` within `node`'s chunk number `chunk`.
  FarAddr ChunkAddr(NodeId node, uint64_t chunk, uint64_t offset) const;
  Result<FarAddr> AllocateOnNodeLocked(NodeId node, uint64_t size,
                                       uint64_t alignment);

  Fabric* fabric_;
  uint64_t chunk_size_;   // stripe size, or the whole partition
  uint64_t chunks_per_node_;
  mutable std::mutex mu_;
  std::vector<NodeArena> arenas_;
  NodeId round_robin_ = 0;
  FarAddr contiguous_bump_;  // high end of the address space, grows down
  std::vector<QuarantinedBlock> quarantine_[2];
  uint64_t allocated_bytes_ = 0;
  uint64_t freed_bytes_ = 0;
};

}  // namespace fmds

#endif  // FMDS_SRC_ALLOC_FAR_ALLOCATOR_H_
