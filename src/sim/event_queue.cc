#include "src/sim/event_queue.h"

#include <utility>

namespace fmds {

void EventQueue::ScheduleAt(uint64_t at_ns, Action action) {
  if (at_ns < now_ns_) {
    at_ns = now_ns_;  // never schedule into the past
  }
  heap_.push(Event{at_ns, next_seq_++, std::move(action)});
}

bool EventQueue::Step() {
  if (heap_.empty()) {
    return false;
  }
  // priority_queue::top is const; move out via const_cast on the action only.
  Event ev = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  now_ns_ = ev.at_ns;
  ev.action();
  return true;
}

size_t EventQueue::RunUntil(uint64_t until_ns) {
  size_t executed = 0;
  while (!heap_.empty() && heap_.top().at_ns <= until_ns) {
    Step();
    ++executed;
  }
  if (heap_.empty() && now_ns_ < until_ns && until_ns != UINT64_MAX) {
    now_ns_ = until_ns;
  }
  return executed;
}

}  // namespace fmds
