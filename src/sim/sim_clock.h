// Per-client virtual clock. Each client of the fabric owns one; fabric
// operations advance it by modelled latencies. Clocks are private to their
// client, so multi-threaded experiments need no synchronization on time.
#ifndef FMDS_SRC_SIM_SIM_CLOCK_H_
#define FMDS_SRC_SIM_SIM_CLOCK_H_

#include <cstdint>

namespace fmds {

class SimClock {
 public:
  uint64_t now_ns() const { return now_ns_; }
  void Advance(uint64_t delta_ns) { now_ns_ += delta_ns; }
  void Reset() { now_ns_ = 0; }

 private:
  uint64_t now_ns_ = 0;
};

}  // namespace fmds

#endif  // FMDS_SRC_SIM_SIM_CLOCK_H_
