// Cost model of the far-memory interconnect (§2, §3.1 of the paper).
//
// The simulator does not sleep: every fabric operation *accounts* simulated
// nanoseconds against the issuing client's SimClock using this model, and
// bumps exact far-access / message / byte counters. Defaults reproduce the
// paper's numbers: near access O(100 ns), far access O(1 µs), 1 KB in ~1 µs
// over an InfiniBand-FDR-class link.
#ifndef FMDS_SRC_SIM_LATENCY_MODEL_H_
#define FMDS_SRC_SIM_LATENCY_MODEL_H_

#include <cstdint>

namespace fmds {

struct LatencyModel {
  // One local (near-memory) access by the client CPU.
  uint64_t near_ns = 100;

  // Base round trip for a small (<= 64 B) one-sided far operation:
  // client NIC -> fabric -> memory node logic -> back.
  uint64_t far_base_ns = 900;

  // Wire/serialization time per payload byte (~4 GB/s effective per client
  // link => 1 KB adds ~256 ns, total ~1.15 µs: "1 KB in 1 µs").
  double per_byte_ns = 0.25;

  // Extra hop when a memory node forwards a request to another memory node
  // (memory-side indirection across striping, §7.1).
  uint64_t node_hop_ns = 250;

  // CPU time the RPC server spends servicing one request, excluding the
  // fabric round trip (two-sided baseline, §3.1).
  uint64_t rpc_service_ns = 400;

  // Fabric-to-client latency of a notification event (§4.3).
  uint64_t notify_delay_ns = 1200;

  // Issue/occupancy cost of each additional operation riding in a doorbell
  // batch (§3.1 / doorbell batching): the NIC and memory-node controller
  // process batched ops back to back, so a batch of k independent ops to one
  // node costs one base round trip plus (k-1) of these, not k round trips.
  uint64_t batch_op_ns = 100;

  // Latency of one one-sided round trip moving `payload_bytes`.
  uint64_t FarRoundTripNs(uint64_t payload_bytes) const {
    return far_base_ns +
           static_cast<uint64_t>(per_byte_ns * static_cast<double>(payload_bytes));
  }

  // Latency of a doorbell batch of `ops` independent operations moving
  // `payload_bytes` in total to ONE memory node: one base round trip, each
  // op's wire bytes, and per-op controller occupancy beyond the first.
  // Cross-node batches overlap: the client charges the max across nodes.
  uint64_t BatchNs(uint64_t ops, uint64_t payload_bytes) const {
    if (ops == 0) {
      return 0;
    }
    return FarRoundTripNs(payload_bytes) + (ops - 1) * batch_op_ns;
  }

  // Latency of an RPC: one round trip plus server service time.
  uint64_t RpcNs(uint64_t request_bytes, uint64_t response_bytes) const {
    return FarRoundTripNs(request_bytes + response_bytes) + rpc_service_ns;
  }
};

// Cost model for a near-memory agent (§3.1's "processor close to the
// memory"): accesses to the agent's own node cross a memory controller, not
// the fabric, so the base access sits near DRAM latency and bytes are close
// to free. FarClients created with ClientOptions::home_node use this model
// for home-node round trips; everything else still pays the fabric model.
inline LatencyModel LocalAgentLatency() {
  LatencyModel m;
  m.far_base_ns = 140;   // controller + DRAM, no NIC/fabric traversal
  m.per_byte_ns = 0.02;  // memory bandwidth, not link serialization
  m.batch_op_ns = 20;    // back-to-back controller issue
  return m;
}

}  // namespace fmds

#endif  // FMDS_SRC_SIM_LATENCY_MODEL_H_
