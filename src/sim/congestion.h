// Per-node congestion model (DESIGN.md §14). The base LatencyModel charges a
// fixed round trip regardless of offered load — fine for a single client, but
// a memory node serving many clients has a finite front end: its controller
// admits ops at a bounded service rate and its link moves a bounded number of
// bytes per second. ServiceQueue models that front end as a virtual-time
// work-conserving FIFO:
//
//   - every admitted op occupies the front end for service_ns plus
//     per_byte_service_ns per payload byte (the service *rate*, NOT an
//     added latency: an op arriving at an idle node waits zero extra time,
//     so the fixed-RTT behaviour of the base model is recovered exactly at
//     low load — the drain-to-idle invariant the unit tests pin down);
//   - an op arriving while earlier arrivals still hold the front end waits
//     behind them; that waiting time is the queueing delay the client adds
//     to the modelled round trip, and it grows without bound as offered
//     load crosses the service rate (the nonlinear tail the overload
//     scenarios measure);
//   - at most queue_ops operations may be waiting; an arrival beyond that
//     is shed. The bounce itself costs the front end reject_ns (declining
//     work is not free), which is why a client-side admission controller
//     that avoids sending doomed ops yields strictly more goodput than a
//     retry storm.
//
// Time base: clients carry private SimClocks, so "now" differs per caller.
// The queue keeps its own virtual clock — the max arrival time it has seen —
// and services work in that frame. Clocks of concurrently running closed-loop
// clients advance at similar rates, so the max is a faithful fabric-side
// notion of "the present".
#ifndef FMDS_SRC_SIM_CONGESTION_H_
#define FMDS_SRC_SIM_CONGESTION_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>

namespace fmds {

struct CongestionOptions {
  // Master switch. Off (the default) bypasses the queue entirely: no lock,
  // no state, bit-identical latencies to the pre-congestion fabric.
  bool enabled = false;
  // Front-end occupancy per admitted operation: the node's peak service
  // rate is 1e9 / service_ns ops per second.
  uint64_t service_ns = 300;
  // Link-bandwidth share per payload byte (0 keeps admission op-bound).
  double per_byte_service_ns = 0.0;
  // Hard bound on operations waiting for service; arrivals beyond it are
  // shed with kOverloaded.
  uint64_t queue_ops = 256;
  // Front-end time consumed by bouncing one shed operation.
  uint64_t reject_ns = 150;
};

// Outcome of offering work to a node's congestion front end.
struct AdmissionOutcome {
  bool admitted = false;
  // Queueing delay: how long the work waited behind earlier arrivals
  // before its service began. Zero at an idle node.
  uint64_t queue_ns = 0;
};

class ServiceQueue {
 public:
  explicit ServiceQueue(const CongestionOptions& options);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Reconfigure at runtime (scenario phase changes: slowdown, recovery).
  // Existing backlog is preserved; new work is priced with the new rates.
  void SetOptions(const CongestionOptions& options);
  CongestionOptions GetOptions() const;

  // Offers `ops` operations carrying `bytes` payload bytes arriving at
  // `now_ns` (the caller's simulated clock). All-or-nothing for the batch.
  AdmissionOutcome Offer(uint64_t now_ns, uint64_t ops, uint64_t bytes);

  // Operations still waiting for service at the queue's virtual present.
  // Telemetry-thread safe; a disabled queue reports 0.
  uint64_t DepthOps() const;
  // Pending work in ns at the virtual present (the backlog a new arrival
  // would wait behind).
  uint64_t BacklogNs() const;
  // Operations shed since construction.
  uint64_t Sheds() const { return sheds_.load(std::memory_order_relaxed); }

 private:
  // Drops completed work up to virtual time `now_v` (mu_ held).
  void DrainLocked(uint64_t now_v);

  mutable std::mutex mu_;
  CongestionOptions options_;       // guarded by mu_
  std::atomic<bool> enabled_{false};
  uint64_t virtual_now_ = 0;        // max arrival time observed
  uint64_t busy_until_ = 0;         // front end free again at this time
  std::deque<uint64_t> in_service_; // per-op completion times (FIFO)
  std::atomic<uint64_t> sheds_{0};
};

}  // namespace fmds

#endif  // FMDS_SRC_SIM_CONGESTION_H_
