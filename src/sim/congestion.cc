#include "src/sim/congestion.h"

#include <algorithm>

namespace fmds {

ServiceQueue::ServiceQueue(const CongestionOptions& options)
    : options_(options) {
  enabled_.store(options.enabled, std::memory_order_relaxed);
}

void ServiceQueue::SetOptions(const CongestionOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  options_ = options;
  enabled_.store(options.enabled, std::memory_order_relaxed);
  if (!options.enabled) {
    // A disabled front end services nothing and owes nothing: forget the
    // backlog so re-enabling starts from idle.
    in_service_.clear();
    busy_until_ = virtual_now_;
  }
}

CongestionOptions ServiceQueue::GetOptions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return options_;
}

void ServiceQueue::DrainLocked(uint64_t now_v) {
  while (!in_service_.empty() && in_service_.front() <= now_v) {
    in_service_.pop_front();
  }
  if (busy_until_ < now_v) {
    busy_until_ = now_v;  // idle gap: the front end was free meanwhile
  }
}

AdmissionOutcome ServiceQueue::Offer(uint64_t now_ns, uint64_t ops,
                                     uint64_t bytes) {
  if (!enabled()) {
    return {true, 0};
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (!options_.enabled) {
    return {true, 0};
  }
  virtual_now_ = std::max(virtual_now_, now_ns);
  DrainLocked(virtual_now_);
  if (in_service_.size() + ops > options_.queue_ops) {
    // Shed. The bounce still occupies the front end: a node drowning in
    // doomed arrivals spends real capacity turning them away.
    sheds_.fetch_add(ops, std::memory_order_relaxed);
    busy_until_ += options_.reject_ns * ops;
    return {false, 0};
  }
  const uint64_t start = std::max(busy_until_, virtual_now_);
  const uint64_t work =
      ops * options_.service_ns +
      static_cast<uint64_t>(options_.per_byte_service_ns *
                            static_cast<double>(bytes));
  // The batch's ops complete back to back; depth accounting tracks each.
  const uint64_t per_op = ops == 0 ? 0 : work / std::max<uint64_t>(ops, 1);
  uint64_t finish = start;
  for (uint64_t i = 0; i + 1 < ops; ++i) {
    finish += per_op;
    in_service_.push_back(finish);
  }
  if (ops > 0) {
    finish = start + work;
    in_service_.push_back(finish);
  }
  busy_until_ = std::max(busy_until_, finish);
  // Queueing delay = waiting behind earlier arrivals. The op's own service
  // occupancy is capacity consumed, not latency added: an idle node admits
  // with zero delay, so the base model's fixed RTT is recovered exactly.
  return {true, start - virtual_now_};
}

uint64_t ServiceQueue::DepthOps() const {
  if (!enabled()) {
    return 0;
  }
  std::lock_guard<std::mutex> lock(mu_);
  size_t live = 0;
  for (uint64_t finish : in_service_) {
    if (finish > virtual_now_) {
      ++live;
    }
  }
  return live;
}

uint64_t ServiceQueue::BacklogNs() const {
  if (!enabled()) {
    return 0;
  }
  std::lock_guard<std::mutex> lock(mu_);
  return busy_until_ > virtual_now_ ? busy_until_ - virtual_now_ : 0;
}

}  // namespace fmds
