// Deterministic time-ordered event queue. Used by the monitoring case study
// and the notification-scalability experiments to replay producer/consumer
// interleavings at virtual timestamps, independent of host scheduling.
#ifndef FMDS_SRC_SIM_EVENT_QUEUE_H_
#define FMDS_SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace fmds {

class EventQueue {
 public:
  using Action = std::function<void()>;

  // Schedule `action` to run at absolute virtual time `at_ns`. Events at the
  // same timestamp run in scheduling order (stable).
  void ScheduleAt(uint64_t at_ns, Action action);
  void ScheduleAfter(uint64_t delay_ns, Action action) {
    ScheduleAt(now_ns_ + delay_ns, std::move(action));
  }

  // Runs events until the queue is empty or `until_ns` is reached.
  // Returns the number of events executed.
  size_t RunUntil(uint64_t until_ns = UINT64_MAX);

  // Runs at most one event; returns false if the queue is empty.
  bool Step();

  uint64_t now_ns() const { return now_ns_; }
  size_t pending() const { return heap_.size(); }

 private:
  struct Event {
    uint64_t at_ns;
    uint64_t seq;  // tie-break for stability
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at_ns != b.at_ns) {
        return a.at_ns > b.at_ns;
      }
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  uint64_t now_ns_ = 0;
  uint64_t next_seq_ = 0;
};

}  // namespace fmds

#endif  // FMDS_SRC_SIM_EVENT_QUEUE_H_
