#include "src/baselines/simple_queues.h"

#include <thread>

#include "src/common/bytes.h"

namespace fmds {

namespace {
constexpr int kSpinLimit = 1 << 20;
}

// ------------------------------ LockFarQueue ------------------------------

Result<LockFarQueue> LockFarQueue::Create(FarClient* client,
                                          FarAllocator* alloc,
                                          uint64_t capacity) {
  if (capacity == 0) {
    return Status(StatusCode::kInvalidArgument, "capacity must be > 0");
  }
  FMDS_ASSIGN_OR_RETURN(
      FarAddr header,
      alloc->Allocate(kHeaderBytes + capacity * kWordSize));
  const FarAddr ring = header + kHeaderBytes;
  std::vector<uint64_t> image(kHeaderBytes / 8 + capacity, 0);
  image[3] = ring;
  image[4] = capacity;
  FMDS_RETURN_IF_ERROR(client->Write(
      header, std::as_bytes(std::span<const uint64_t>(image))));
  LockFarQueue queue(client, header);
  queue.ring_ = ring;
  queue.capacity_ = capacity;
  queue.lock_ = FarMutex::Attach(header + 16);
  return queue;
}

Result<LockFarQueue> LockFarQueue::Attach(FarClient* client, FarAddr header) {
  uint64_t hdr[5];
  FMDS_RETURN_IF_ERROR(client->Read(
      header, std::as_writable_bytes(std::span<uint64_t>(hdr))));
  LockFarQueue queue(client, header);
  queue.ring_ = hdr[3];
  queue.capacity_ = hdr[4];
  queue.lock_ = FarMutex::Attach(header + 16);
  return queue;
}

Status LockFarQueue::Enqueue(uint64_t value) {
  FMDS_RETURN_IF_ERROR(lock_.Lock(*client_, MutexWaitStrategy::kPoll));
  Status result = OkStatus();
  do {
    auto head = client_->ReadWord(header_);
    auto tail = client_->ReadWord(header_ + 8);
    if (!head.ok() || !tail.ok()) {
      result = head.ok() ? tail.status() : head.status();
      break;
    }
    if (*tail - *head >= capacity_) {
      result = ResourceExhausted("queue full");
      break;
    }
    result = client_->WriteWord(ring_ + (*tail % capacity_) * kWordSize,
                                value);
    if (!result.ok()) {
      break;
    }
    result = client_->WriteWord(header_ + 8, *tail + 1);
  } while (false);
  FMDS_RETURN_IF_ERROR(lock_.Unlock(*client_));
  return result;
}

Result<uint64_t> LockFarQueue::Dequeue() {
  FMDS_RETURN_IF_ERROR(lock_.Lock(*client_, MutexWaitStrategy::kPoll));
  Result<uint64_t> result = Status(StatusCode::kNotFound, "queue empty");
  do {
    auto head = client_->ReadWord(header_);
    auto tail = client_->ReadWord(header_ + 8);
    if (!head.ok() || !tail.ok()) {
      result = head.ok() ? tail.status() : head.status();
      break;
    }
    if (*tail == *head) {
      break;  // empty
    }
    auto value = client_->ReadWord(ring_ + (*head % capacity_) * kWordSize);
    if (!value.ok()) {
      result = value.status();
      break;
    }
    Status st = client_->WriteWord(header_, *head + 1);
    if (!st.ok()) {
      result = st;
      break;
    }
    result = *value;
  } while (false);
  FMDS_RETURN_IF_ERROR(lock_.Unlock(*client_));
  return result;
}

// ----------------------------- TicketFarQueue -----------------------------

Result<TicketFarQueue> TicketFarQueue::Create(FarClient* client,
                                              FarAllocator* alloc,
                                              uint64_t capacity) {
  if (capacity == 0) {
    return Status(StatusCode::kInvalidArgument, "capacity must be > 0");
  }
  FMDS_ASSIGN_OR_RETURN(
      FarAddr header,
      alloc->Allocate(kHeaderBytes + capacity * kWordSize));
  const FarAddr ring = header + kHeaderBytes;
  std::vector<uint64_t> image(kHeaderBytes / 8 + capacity, 0);
  image[2] = ring;
  image[3] = capacity;
  FMDS_RETURN_IF_ERROR(client->Write(
      header, std::as_bytes(std::span<const uint64_t>(image))));
  TicketFarQueue queue(client, header);
  queue.ring_ = ring;
  queue.capacity_ = capacity;
  return queue;
}

Result<TicketFarQueue> TicketFarQueue::Attach(FarClient* client,
                                              FarAddr header) {
  uint64_t hdr[4];
  FMDS_RETURN_IF_ERROR(client->Read(
      header, std::as_writable_bytes(std::span<uint64_t>(hdr))));
  TicketFarQueue queue(client, header);
  queue.ring_ = hdr[2];
  queue.capacity_ = hdr[3];
  return queue;
}

Status TicketFarQueue::Enqueue(uint64_t value) {
  if (value == 0) {
    return InvalidArgument("queue values must be non-zero");
  }
  // Two far accesses — this is the best today's verbs can do: the FAA
  // reserves a ticket, a second round trip stores the item.
  FMDS_ASSIGN_OR_RETURN(uint64_t ticket, client_->FetchAdd(header_ + 8, 1));
  return client_->WriteWord(SlotAddr(ticket), value);
}

Result<uint64_t> TicketFarQueue::Dequeue() {
  FMDS_ASSIGN_OR_RETURN(uint64_t ticket, client_->FetchAdd(header_, 1));
  const FarAddr slot = SlotAddr(ticket);
  FMDS_ASSIGN_OR_RETURN(uint64_t value, client_->ReadWord(slot));
  if (value != 0) {
    FMDS_RETURN_IF_ERROR(client_->PostWriteWordBackground(slot, 0));
    return value;
  }
  // Raced an in-flight or absent producer: consume when the slot fills, or
  // unwind the ticket LIFO (same discipline as FarQueue's empty race).
  for (int spin = 0; spin < kSpinLimit; ++spin) {
    FMDS_ASSIGN_OR_RETURN(uint64_t v, client_->ReadWord(slot));
    if (v != 0) {
      FMDS_RETURN_IF_ERROR(client_->PostWriteWordBackground(slot, 0));
      return v;
    }
    FMDS_ASSIGN_OR_RETURN(uint64_t old,
                          client_->CompareSwap(header_, ticket + 1, ticket));
    if (old == ticket + 1) {
      return Status(StatusCode::kNotFound, "queue empty");
    }
    std::this_thread::yield();
  }
  return Status(StatusCode::kAborted, "ticket unwind did not settle");
}

}  // namespace fmds
