// Baseline: FaRM-style neighborhood (Hopscotch-flavoured) hash table [11].
// Colliding key-value pairs are inlined in a window of H consecutive slots
// after the home bucket, so a lookup reads the whole neighborhood in ONE far
// access — the trade §8 describes: one round trip, but it "consumes
// additional bandwidth to transfer items that will not be used".
//
// Inserts claim a slot in the neighborhood with a CAS on the key word
// (read neighborhood + CAS + value write = 3 far accesses); a full
// neighborhood fails the insert (kResourceExhausted) — sized appropriately
// this is rare, and keeping the baseline honest matters more than absorbing
// overflow with extra machinery the original also lacks per-object.
#ifndef FMDS_SRC_BASELINES_NEIGHBORHOOD_HASH_H_
#define FMDS_SRC_BASELINES_NEIGHBORHOOD_HASH_H_

#include <cstdint>

#include "src/alloc/far_allocator.h"
#include "src/common/hash.h"
#include "src/fabric/far_client.h"

namespace fmds {

class NeighborhoodHash {
 public:
  struct Options {
    uint64_t buckets = 4096;       // home positions
    uint64_t neighborhood = 8;     // H: slots scanned per lookup
  };

  static Result<NeighborhoodHash> Create(FarClient* client,
                                         FarAllocator* alloc,
                                         Options options);
  static Result<NeighborhoodHash> Attach(FarClient* client, FarAddr header);

  FarAddr header() const { return header_; }

  Result<uint64_t> Get(uint64_t key);
  Status Put(uint64_t key, uint64_t value);
  Status Remove(uint64_t key);

  // Batched multi-key lookup: every neighborhood read rides one doorbell —
  // k lookups cost one batched round trip instead of k. Requires no other
  // async ops pending on the client.
  std::vector<Result<uint64_t>> MultiGet(std::span<const uint64_t> keys);

  // Payload bytes a single lookup moves (the bandwidth cost of inlining).
  uint64_t lookup_bytes() const { return neighborhood_ * kSlotBytes; }

 private:
  // Slot: [0] key (0 = free), [8] value. Key 0 is reserved.
  static constexpr uint64_t kSlotBytes = 16;
  // Header: [0] slot base, [8] buckets, [16] neighborhood.
  static constexpr uint64_t kHeaderBytes = 24;

  struct Slot {
    uint64_t key;
    uint64_t value;
  };

  explicit NeighborhoodHash(FarClient* client) : client_(client) {}

  uint64_t HomeBucket(uint64_t key) const { return Mix64(key) % buckets_; }
  FarAddr SlotAddr(uint64_t index) const {
    return slots_ + index * kSlotBytes;
  }

  FarClient* client_;
  FarAddr header_ = kNullFarAddr;
  FarAddr slots_ = kNullFarAddr;
  uint64_t buckets_ = 0;
  uint64_t neighborhood_ = 0;
};

}  // namespace fmds

#endif  // FMDS_SRC_BASELINES_NEIGHBORHOOD_HASH_H_
