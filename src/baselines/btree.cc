#include "src/baselines/btree.h"

#include <algorithm>

#include "src/common/bytes.h"

namespace fmds {

Result<FarBTree> FarBTree::Create(FarClient* client, FarAllocator* alloc,
                                  Options options) {
  if (options.fanout < 3) {
    return Status(StatusCode::kInvalidArgument, "fanout must be >= 3");
  }
  FarBTree tree(client, alloc);
  tree.options_ = options;
  tree.fanout_ = options.fanout;
  FMDS_ASSIGN_OR_RETURN(tree.header_, alloc->Allocate(kHeaderBytes));
  Node root;
  root.leaf = true;
  root.count = 0;
  root.keys.assign(options.fanout, 0);
  root.ptrs.assign(options.fanout + 1, 0);
  FMDS_ASSIGN_OR_RETURN(FarAddr root_addr, tree.AllocNode(root));
  const uint64_t hdr[4] = {root_addr, options.fanout, 0, 1};
  FMDS_RETURN_IF_ERROR(client->Write(
      tree.header_, std::as_bytes(std::span<const uint64_t>(hdr))));
  tree.lock_ = FarMutex::Attach(tree.header_ + 16);
  tree.height_ = 1;
  return tree;
}

Result<FarBTree> FarBTree::Attach(FarClient* client, FarAllocator* alloc,
                                  FarAddr header) {
  FarBTree tree(client, alloc);
  tree.header_ = header;
  uint64_t hdr[4];
  FMDS_RETURN_IF_ERROR(client->Read(
      header, std::as_writable_bytes(std::span<uint64_t>(hdr))));
  tree.fanout_ = hdr[1];
  tree.options_.fanout = hdr[1];
  tree.height_ = hdr[3];
  tree.lock_ = FarMutex::Attach(header + 16);
  return tree;
}

Result<FarBTree::Node> FarBTree::ReadNode(FarAddr addr, bool count_access) {
  std::vector<uint64_t> words(node_words());
  FMDS_RETURN_IF_ERROR(client_->Read(
      addr, std::as_writable_bytes(std::span<uint64_t>(words))));
  if (count_access) {
    ++last_get_accesses_;
  }
  Node node;
  node.leaf = (words[0] & 1) != 0;
  node.count = words[0] >> 8;
  node.keys.assign(words.begin() + 1, words.begin() + 1 + fanout_);
  node.ptrs.assign(words.begin() + 1 + fanout_, words.end());
  return node;
}

Status FarBTree::WriteNode(FarAddr addr, const Node& node) {
  std::vector<uint64_t> words(node_words(), 0);
  words[0] = (node.leaf ? 1 : 0) | (node.count << 8);
  std::copy(node.keys.begin(), node.keys.end(), words.begin() + 1);
  std::copy(node.ptrs.begin(), node.ptrs.end(),
            words.begin() + 1 + fanout_);
  Invalidate(addr);
  return client_->Write(addr,
                        std::as_bytes(std::span<const uint64_t>(words)));
}

Result<FarAddr> FarBTree::AllocNode(const Node& node) {
  FMDS_ASSIGN_OR_RETURN(FarAddr addr, alloc_->Allocate(node_bytes()));
  FMDS_RETURN_IF_ERROR(WriteNode(addr, node));
  return addr;
}

Result<FarBTree::Node> FarBTree::ReadInternal(FarAddr addr) {
  if (options_.cache_internal) {
    auto it = cache_.find(addr);
    if (it != cache_.end()) {
      client_->AccountNear(1);
      return it->second;
    }
  }
  FMDS_ASSIGN_OR_RETURN(Node node, ReadNode(addr));
  if (options_.cache_internal && !node.leaf) {
    cache_[addr] = node;
  }
  return node;
}

Result<uint64_t> FarBTree::Get(uint64_t key) {
  last_get_accesses_ = 0;
  FMDS_ASSIGN_OR_RETURN(FarAddr cursor, client_->ReadWord(header_));
  ++last_get_accesses_;
  for (uint64_t level = 0; level < 64; ++level) {
    FMDS_ASSIGN_OR_RETURN(Node node, ReadInternal(cursor));
    if (node.leaf) {
      for (uint64_t i = 0; i < node.count; ++i) {
        if (node.keys[i] == key) {
          return node.ptrs[i];
        }
      }
      return Status(StatusCode::kNotFound, "key absent");
    }
    uint64_t slot = 0;
    while (slot < node.count && key >= node.keys[slot]) {
      ++slot;
    }
    cursor = node.ptrs[slot];
  }
  return Status(StatusCode::kInternal, "tree too deep");
}

Status FarBTree::SplitChild(FarAddr parent_addr, Node& parent, uint64_t slot,
                            FarAddr child_addr, Node& child) {
  const uint64_t mid = child.count / 2;
  Node right;
  right.leaf = child.leaf;
  right.keys.assign(fanout_, 0);
  right.ptrs.assign(fanout_ + 1, 0);
  uint64_t promoted;
  if (child.leaf) {
    // Leaf split: upper half moves right; the first right key is promoted
    // (copied, B+tree style).
    right.count = child.count - mid;
    for (uint64_t i = 0; i < right.count; ++i) {
      right.keys[i] = child.keys[mid + i];
      right.ptrs[i] = child.ptrs[mid + i];
    }
    promoted = right.keys[0];
    child.count = mid;
    // Maintain the leaf chain (last ptr slot).
    right.ptrs[fanout_] = child.ptrs[fanout_];
  } else {
    // Internal split: middle key moves up.
    promoted = child.keys[mid];
    right.count = child.count - mid - 1;
    for (uint64_t i = 0; i < right.count; ++i) {
      right.keys[i] = child.keys[mid + 1 + i];
      right.ptrs[i] = child.ptrs[mid + 1 + i];
    }
    right.ptrs[right.count] = child.ptrs[child.count];
    child.count = mid;
  }
  FMDS_ASSIGN_OR_RETURN(FarAddr right_addr, AllocNode(right));
  if (child.leaf) {
    child.ptrs[fanout_] = right_addr;
  }
  FMDS_RETURN_IF_ERROR(WriteNode(child_addr, child));
  // Insert promoted key + right pointer into the parent at `slot`.
  for (uint64_t i = parent.count; i > slot; --i) {
    parent.keys[i] = parent.keys[i - 1];
    parent.ptrs[i + 1] = parent.ptrs[i];
  }
  parent.keys[slot] = promoted;
  parent.ptrs[slot + 1] = right_addr;
  ++parent.count;
  return WriteNode(parent_addr, parent);
}

Status FarBTree::Put(uint64_t key, uint64_t value) {
  FMDS_RETURN_IF_ERROR(lock_.Lock(*client_, MutexWaitStrategy::kPoll));
  Status result = OkStatus();
  do {
    auto root_r = client_->ReadWord(header_);
    if (!root_r.ok()) {
      result = root_r.status();
      break;
    }
    FarAddr cursor = *root_r;
    auto node_r = ReadNode(cursor);
    if (!node_r.ok()) {
      result = node_r.status();
      break;
    }
    Node node = *node_r;
    // Preemptive root split keeps every descent single-pass.
    if (node.count == fanout_) {
      Node new_root;
      new_root.leaf = false;
      new_root.count = 0;
      new_root.keys.assign(fanout_, 0);
      new_root.ptrs.assign(fanout_ + 1, 0);
      new_root.ptrs[0] = cursor;
      auto new_root_addr = AllocNode(new_root);
      if (!new_root_addr.ok()) {
        result = new_root_addr.status();
        break;
      }
      result = SplitChild(*new_root_addr, new_root, 0, cursor, node);
      if (!result.ok()) {
        break;
      }
      result = client_->WriteWord(header_, *new_root_addr);
      if (!result.ok()) {
        break;
      }
      ++height_;
      result = client_->WriteWord(header_ + 24, height_);
      if (!result.ok()) {
        break;
      }
      cursor = *new_root_addr;
      node = new_root;
    }
    // Single-pass descent: split any full child before entering it.
    while (!node.leaf) {
      uint64_t slot = 0;
      while (slot < node.count && key >= node.keys[slot]) {
        ++slot;
      }
      FarAddr child_addr = node.ptrs[slot];
      auto child_r = ReadNode(child_addr);
      if (!child_r.ok()) {
        result = child_r.status();
        break;
      }
      Node child = *child_r;
      if (child.count == fanout_) {
        result = SplitChild(cursor, node, slot, child_addr, child);
        if (!result.ok()) {
          break;
        }
        // Re-pick the side of the split.
        if (key >= node.keys[slot]) {
          child_addr = node.ptrs[slot + 1];
          auto reread = ReadNode(child_addr);
          if (!reread.ok()) {
            result = reread.status();
            break;
          }
          child = *reread;
        }
      }
      cursor = child_addr;
      node = child;
    }
    if (!result.ok()) {
      break;
    }
    // Leaf insert (sorted; replaces an existing key's value in place).
    uint64_t pos = 0;
    while (pos < node.count && node.keys[pos] < key) {
      ++pos;
    }
    if (pos < node.count && node.keys[pos] == key) {
      node.ptrs[pos] = value;
    } else {
      for (uint64_t i = node.count; i > pos; --i) {
        node.keys[i] = node.keys[i - 1];
        node.ptrs[i] = node.ptrs[i - 1];
      }
      node.keys[pos] = key;
      node.ptrs[pos] = value;
      ++node.count;
    }
    result = WriteNode(cursor, node);
  } while (false);
  FMDS_RETURN_IF_ERROR(lock_.Unlock(*client_));
  return result;
}

Status FarBTree::Remove(uint64_t key) {
  FMDS_RETURN_IF_ERROR(lock_.Lock(*client_, MutexWaitStrategy::kPoll));
  Status result = OkStatus();
  do {
    auto root_r = client_->ReadWord(header_);
    if (!root_r.ok()) {
      result = root_r.status();
      break;
    }
    FarAddr cursor = *root_r;
    Node node;
    while (true) {
      auto node_r = ReadNode(cursor);
      if (!node_r.ok()) {
        result = node_r.status();
        break;
      }
      node = *node_r;
      if (node.leaf) {
        break;
      }
      uint64_t slot = 0;
      while (slot < node.count && key >= node.keys[slot]) {
        ++slot;
      }
      cursor = node.ptrs[slot];
    }
    if (!result.ok()) {
      break;
    }
    // Lazy deletion: remove the entry, never rebalance.
    uint64_t pos = 0;
    while (pos < node.count && node.keys[pos] != key) {
      ++pos;
    }
    if (pos == node.count) {
      result = NotFound("key absent");
      break;
    }
    for (uint64_t i = pos; i + 1 < node.count; ++i) {
      node.keys[i] = node.keys[i + 1];
      node.ptrs[i] = node.ptrs[i + 1];
    }
    --node.count;
    result = WriteNode(cursor, node);
  } while (false);
  FMDS_RETURN_IF_ERROR(lock_.Unlock(*client_));
  return result;
}

uint64_t FarBTree::cache_bytes() const {
  // Each cached node: key/ptr vectors + map node overhead.
  const uint64_t per_node =
      node_bytes() + sizeof(Node) + sizeof(FarAddr) + 2 * sizeof(void*);
  return cache_.size() * per_node;
}

}  // namespace fmds
