// Baseline: singly linked list in far memory — §1's O(n)-far-accesses
// cautionary tale. Insert-at-head is cheap (2 far accesses); Find walks the
// chain at one far access per node.
#ifndef FMDS_SRC_BASELINES_LINKED_LIST_H_
#define FMDS_SRC_BASELINES_LINKED_LIST_H_

#include <cstdint>

#include "src/alloc/far_allocator.h"
#include "src/fabric/far_client.h"

namespace fmds {

class FarLinkedList {
 public:
  static Result<FarLinkedList> Create(FarClient* client, FarAllocator* alloc);
  static FarLinkedList Attach(FarClient* client, FarAllocator* alloc,
                              FarAddr head) {
    return FarLinkedList(client, alloc, head);
  }

  FarAddr head() const { return head_; }

  Status PushFront(uint64_t key, uint64_t value);
  Result<uint64_t> Find(uint64_t key);  // O(n) far accesses

  uint64_t last_find_far_accesses() const { return last_find_accesses_; }

 private:
  struct Node {
    uint64_t key;
    uint64_t value;
    FarAddr next;
    uint64_t pad;
  };

  FarLinkedList(FarClient* client, FarAllocator* alloc, FarAddr head)
      : client_(client), alloc_(alloc), head_(head) {}

  FarClient* client_;
  FarAllocator* alloc_;
  FarAddr head_;  // far word holding the first-node pointer
  uint64_t last_find_accesses_ = 0;
};

}  // namespace fmds

#endif  // FMDS_SRC_BASELINES_LINKED_LIST_H_
