// Baseline: B+tree over far memory (cf. [12] in the paper).
//
// One-sided lookups cost one far access per level — the O(log n) the paper
// says far memory cannot afford (§1, §5.2). With `cache_internal` the client
// caches every internal node it reads, getting 1-far-access lookups at the
// price of an O(n / fanout) client cache — exactly the trade §5.2 criticizes
// ("a B-tree with a trillion elements must cache billions of elements to
// enable single round trip lookups") and the HT-tree avoids.
//
// Writers serialize on a far mutex (top-down preemptive-split insertion);
// deletion is lazy (no rebalancing). Cross-client cache invalidation is out
// of scope for this baseline — E4 measures cache *size*, which is the
// paper's argument.
#ifndef FMDS_SRC_BASELINES_BTREE_H_
#define FMDS_SRC_BASELINES_BTREE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/alloc/far_allocator.h"
#include "src/core/far_mutex.h"
#include "src/fabric/far_client.h"

namespace fmds {

class FarBTree {
 public:
  struct Options {
    uint64_t fanout = 16;        // max keys per node
    bool cache_internal = false; // client-cached inner levels
  };

  static Result<FarBTree> Create(FarClient* client, FarAllocator* alloc,
                                 Options options);
  static Result<FarBTree> Attach(FarClient* client, FarAllocator* alloc,
                                 FarAddr header);

  FarAddr header() const { return header_; }

  Result<uint64_t> Get(uint64_t key);
  Status Put(uint64_t key, uint64_t value);
  Status Remove(uint64_t key);

  // Far accesses the most recent Get performed (cache hits excluded).
  uint64_t last_get_far_accesses() const { return last_get_accesses_; }
  uint64_t height() const { return height_; }
  uint64_t cache_bytes() const;
  void ClearCache() { cache_.clear(); }

 private:
  // Header: [0] root, [8] fanout, [16] lock, [24] height.
  static constexpr uint64_t kHeaderBytes = 32;

  // In-memory node image. Far layout (words):
  //   [0] meta (bit0 leaf, bits 8.. key count)
  //   [1 .. F]      keys
  //   [F+1 .. 2F+1] children (internal) / values + next-leaf in the last
  //                 slot (leaf)
  struct Node {
    bool leaf = true;
    uint64_t count = 0;
    std::vector<uint64_t> keys;
    std::vector<uint64_t> ptrs;  // children or values (+ next-leaf link)
  };

  FarBTree(FarClient* client, FarAllocator* alloc)
      : client_(client), alloc_(alloc) {}

  uint64_t node_words() const { return 2 * fanout_ + 2; }
  uint64_t node_bytes() const { return node_words() * kWordSize; }

  Result<Node> ReadNode(FarAddr addr, bool count_access = true);
  Status WriteNode(FarAddr addr, const Node& node);
  Result<FarAddr> AllocNode(const Node& node);
  // Cached read for internal nodes when cache_internal is on.
  Result<Node> ReadInternal(FarAddr addr);
  void Invalidate(FarAddr addr) { cache_.erase(addr); }

  // Splits full child `child_addr` (index `slot` of `parent`); parent must
  // have room. Rewrites parent and both halves.
  Status SplitChild(FarAddr parent_addr, Node& parent, uint64_t slot,
                    FarAddr child_addr, Node& child);

  FarClient* client_;
  FarAllocator* alloc_;
  FarAddr header_ = kNullFarAddr;
  uint64_t fanout_ = 0;
  Options options_;
  FarMutex lock_ = FarMutex::Attach(kNullFarAddr);
  uint64_t height_ = 1;
  uint64_t last_get_accesses_ = 0;

  std::unordered_map<FarAddr, Node> cache_;
};

}  // namespace fmds

#endif  // FMDS_SRC_BASELINES_BTREE_H_
