// Baseline: skip list in far memory — the other O(log n) structure §1 rules
// out. Single-writer (far mutex) inserts; lookups pay roughly one far access
// per horizontal/vertical hop.
#ifndef FMDS_SRC_BASELINES_SKIP_LIST_H_
#define FMDS_SRC_BASELINES_SKIP_LIST_H_

#include <cstdint>

#include "src/alloc/far_allocator.h"
#include "src/common/rng.h"
#include "src/core/far_mutex.h"
#include "src/fabric/far_client.h"

namespace fmds {

class FarSkipList {
 public:
  static constexpr uint32_t kMaxHeight = 16;

  static Result<FarSkipList> Create(FarClient* client, FarAllocator* alloc,
                                    uint64_t seed = 99);
  static Result<FarSkipList> Attach(FarClient* client, FarAllocator* alloc,
                                    FarAddr header, uint64_t seed = 99);

  FarAddr header() const { return header_; }

  Status Put(uint64_t key, uint64_t value);
  Result<uint64_t> Get(uint64_t key);

  uint64_t last_get_far_accesses() const { return last_get_accesses_; }

 private:
  // Node layout (words): [0] key, [1] value, [2] height,
  // [3..3+kMaxHeight) next pointers.
  static constexpr uint64_t kNodeWords = 3 + kMaxHeight;
  // Header: lock word + head tower (kMaxHeight next pointers).
  static constexpr uint64_t kHeaderWords = 1 + kMaxHeight;

  struct Node {
    uint64_t key;
    uint64_t value;
    uint64_t height;
    uint64_t next[kMaxHeight];
  };

  FarSkipList(FarClient* client, FarAllocator* alloc, FarAddr header,
              uint64_t seed)
      : client_(client), alloc_(alloc), header_(header), rng_(seed) {}

  FarAddr head_tower(uint32_t level) const {
    return header_ + kWordSize * (1 + level);
  }
  uint32_t RandomHeight();
  Result<Node> ReadNode(FarAddr addr, bool count = true);

  FarClient* client_;
  FarAllocator* alloc_;
  FarAddr header_;
  Rng rng_;
  FarMutex lock_ = FarMutex::Attach(kNullFarAddr);
  uint64_t last_get_accesses_ = 0;
};

}  // namespace fmds

#endif  // FMDS_SRC_BASELINES_SKIP_LIST_H_
