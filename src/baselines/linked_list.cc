#include "src/baselines/linked_list.h"

#include "src/common/bytes.h"

namespace fmds {

Result<FarLinkedList> FarLinkedList::Create(FarClient* client,
                                            FarAllocator* alloc) {
  FMDS_ASSIGN_OR_RETURN(FarAddr head, alloc->Allocate(kWordSize));
  FMDS_RETURN_IF_ERROR(client->WriteWord(head, 0));
  return FarLinkedList(client, alloc, head);
}

Status FarLinkedList::PushFront(uint64_t key, uint64_t value) {
  FMDS_ASSIGN_OR_RETURN(FarAddr slot, alloc_->Allocate(sizeof(Node)));
  FarAddr predicted = kNullFarAddr;
  Node node{key, value, predicted, 0};
  FMDS_RETURN_IF_ERROR(client_->Write(slot, AsConstBytes(node)));
  for (int attempt = 0; attempt < 64; ++attempt) {
    FMDS_ASSIGN_OR_RETURN(uint64_t old,
                          client_->CompareSwap(head_, predicted, slot));
    if (old == predicted) {
      return OkStatus();
    }
    predicted = old;
    FMDS_RETURN_IF_ERROR(client_->WriteWord(slot + 16, predicted));
  }
  return Aborted("list push retries exhausted");
}

Result<uint64_t> FarLinkedList::Find(uint64_t key) {
  last_find_accesses_ = 0;
  FMDS_ASSIGN_OR_RETURN(FarAddr cursor, client_->ReadWord(head_));
  ++last_find_accesses_;
  while (cursor != kNullFarAddr) {
    Node node;
    FMDS_RETURN_IF_ERROR(client_->Read(cursor, AsBytes(node)));
    ++last_find_accesses_;
    if (node.key == key) {
      return node.value;
    }
    cursor = node.next;
  }
  return Status(StatusCode::kNotFound, "key absent");
}

}  // namespace fmds
