#include "src/baselines/skip_list.h"

#include "src/common/bytes.h"

namespace fmds {

Result<FarSkipList> FarSkipList::Create(FarClient* client,
                                        FarAllocator* alloc, uint64_t seed) {
  FMDS_ASSIGN_OR_RETURN(FarAddr header,
                        alloc->Allocate(kHeaderWords * kWordSize));
  std::vector<uint64_t> zeros(kHeaderWords, 0);
  FMDS_RETURN_IF_ERROR(client->Write(
      header, std::as_bytes(std::span<const uint64_t>(zeros))));
  FarSkipList list(client, alloc, header, seed);
  list.lock_ = FarMutex::Attach(header);
  return list;
}

Result<FarSkipList> FarSkipList::Attach(FarClient* client,
                                        FarAllocator* alloc, FarAddr header,
                                        uint64_t seed) {
  FarSkipList list(client, alloc, header, seed);
  list.lock_ = FarMutex::Attach(header);
  return list;
}

uint32_t FarSkipList::RandomHeight() {
  uint32_t height = 1;
  while (height < kMaxHeight && rng_.NextBool(0.5)) {
    ++height;
  }
  return height;
}

Result<FarSkipList::Node> FarSkipList::ReadNode(FarAddr addr, bool count) {
  Node node;
  FMDS_RETURN_IF_ERROR(client_->Read(addr, AsBytes(node)));
  if (count) {
    ++last_get_accesses_;
  }
  return node;
}

Result<uint64_t> FarSkipList::Get(uint64_t key) {
  last_get_accesses_ = 0;
  // Walk down the head tower, then right along each level; every pointer
  // hop that lands on a node costs one far access.
  FarAddr pred_node = kNullFarAddr;  // 0 = the head tower
  Node pred{};
  for (int level = kMaxHeight - 1; level >= 0; --level) {
    while (true) {
      FarAddr next;
      if (pred_node == kNullFarAddr) {
        FMDS_ASSIGN_OR_RETURN(next, client_->ReadWord(head_tower(level)));
        ++last_get_accesses_;
      } else {
        next = pred.next[level];
        client_->AccountNear(1);
      }
      if (next == kNullFarAddr) {
        break;
      }
      FMDS_ASSIGN_OR_RETURN(Node node, ReadNode(next));
      if (node.key == key) {
        return node.value;
      }
      if (node.key > key) {
        break;
      }
      pred_node = next;
      pred = node;
    }
  }
  return Status(StatusCode::kNotFound, "key absent");
}

Status FarSkipList::Put(uint64_t key, uint64_t value) {
  FMDS_RETURN_IF_ERROR(lock_.Lock(*client_, MutexWaitStrategy::kPoll));
  Status result = OkStatus();
  do {
    // Collect the predecessor pointer cell at each level.
    FarAddr update_cells[kMaxHeight];
    FarAddr pred_node = kNullFarAddr;
    Node pred{};
    bool replaced = false;
    for (int level = kMaxHeight - 1; level >= 0; --level) {
      while (true) {
        FarAddr cell = pred_node == kNullFarAddr
                           ? head_tower(level)
                           : pred_node + kWordSize * (3 + level);
        FarAddr next;
        if (pred_node == kNullFarAddr) {
          auto r = client_->ReadWord(cell);
          if (!r.ok()) {
            result = r.status();
            break;
          }
          next = *r;
        } else {
          next = pred.next[level];
        }
        if (next == kNullFarAddr) {
          update_cells[level] = cell;
          break;
        }
        auto node = ReadNode(next, /*count=*/false);
        if (!node.ok()) {
          result = node.status();
          break;
        }
        if (node->key == key) {
          // In-place value update.
          result = client_->WriteWord(next + kWordSize, value);
          replaced = true;
          break;
        }
        if (node->key > key) {
          update_cells[level] = cell;
          break;
        }
        pred_node = next;
        pred = *node;
      }
      if (!result.ok() || replaced) {
        break;
      }
    }
    if (!result.ok() || replaced) {
      break;
    }
    const uint32_t height = RandomHeight();
    Node fresh{};
    fresh.key = key;
    fresh.value = value;
    fresh.height = height;
    // Link: read each predecessor cell's current target into the new node,
    // then point the cells at the new node.
    FarAddr node_addr;
    {
      auto a = alloc_->Allocate(kNodeWords * kWordSize);
      if (!a.ok()) {
        result = a.status();
        break;
      }
      node_addr = *a;
    }
    for (uint32_t level = 0; level < height; ++level) {
      auto cur = client_->ReadWord(update_cells[level]);
      if (!cur.ok()) {
        result = cur.status();
        break;
      }
      fresh.next[level] = *cur;
    }
    if (!result.ok()) {
      break;
    }
    result = client_->Write(node_addr, AsConstBytes(fresh));
    if (!result.ok()) {
      break;
    }
    for (uint32_t level = 0; level < height; ++level) {
      result = client_->WriteWord(update_cells[level], node_addr);
      if (!result.ok()) {
        break;
      }
    }
  } while (false);
  FMDS_RETURN_IF_ERROR(lock_.Unlock(*client_));
  return result;
}

}  // namespace fmds
