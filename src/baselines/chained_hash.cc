#include "src/baselines/chained_hash.h"

#include "src/common/bytes.h"

namespace fmds {

Result<ChainedHash> ChainedHash::Create(FarClient* client,
                                        FarAllocator* alloc,
                                        Options options) {
  if (options.buckets == 0) {
    return Status(StatusCode::kInvalidArgument, "buckets must be > 0");
  }
  ChainedHash table(client, alloc);
  table.options_ = options;
  table.nbuckets_ = options.buckets;
  FMDS_ASSIGN_OR_RETURN(table.header_, alloc->Allocate(kHeaderBytes));
  FMDS_ASSIGN_OR_RETURN(table.buckets_,
                        alloc->Allocate(options.buckets * kWordSize));
  std::vector<uint64_t> zeros(options.buckets, 0);
  FMDS_RETURN_IF_ERROR(client->Write(
      table.buckets_, std::as_bytes(std::span<const uint64_t>(zeros))));
  const uint64_t hdr[2] = {table.buckets_, options.buckets};
  FMDS_RETURN_IF_ERROR(client->Write(
      table.header_, std::as_bytes(std::span<const uint64_t>(hdr))));
  return table;
}

Result<ChainedHash> ChainedHash::Attach(FarClient* client,
                                        FarAllocator* alloc, FarAddr header) {
  ChainedHash table(client, alloc);
  table.header_ = header;
  uint64_t hdr[2];
  FMDS_RETURN_IF_ERROR(client->Read(
      header, std::as_writable_bytes(std::span<uint64_t>(hdr))));
  table.buckets_ = hdr[0];
  table.nbuckets_ = hdr[1];
  return table;
}

Result<FarAddr> ChainedHash::AllocItemSlot() {
  if (arena_left_ == 0) {
    FMDS_ASSIGN_OR_RETURN(
        arena_next_, alloc_->Allocate(options_.arena_batch * kItemBytes));
    arena_left_ = options_.arena_batch;
  }
  const FarAddr slot = arena_next_;
  arena_next_ += kItemBytes;
  --arena_left_;
  client_->AccountNear(1);
  return slot;
}

Result<uint64_t> ChainedHash::Get(uint64_t key) {
  ++gets_;
  const FarAddr bucket = BucketAddr(key);
  Item item;
  FarAddr cursor;
  if (options_.use_indirect) {
    // Proposed hardware: one access merges bucket dereference + item read.
    auto head = client_->Load0(bucket, AsBytes(item));
    if (!head.ok()) {
      if (head.status().code() == StatusCode::kFailedPrecondition) {
        return Status(StatusCode::kNotFound, "empty bucket");
      }
      return head.status();
    }
    cursor = *head;
  } else {
    // Today's verbs: bucket word first, then the item — two round trips
    // before we even see a key.
    FMDS_ASSIGN_OR_RETURN(cursor, client_->ReadWord(bucket));
    if (cursor == kNullFarAddr) {
      return Status(StatusCode::kNotFound, "empty bucket");
    }
    FMDS_RETURN_IF_ERROR(client_->Read(cursor, AsBytes(item)));
  }
  while (true) {
    if (item.key == key) {
      if ((item.flags & kFlagTombstone) != 0) {
        return Status(StatusCode::kNotFound, "key removed");
      }
      return item.value;
    }
    if (item.next == kNullFarAddr) {
      return Status(StatusCode::kNotFound, "key absent");
    }
    cursor = item.next;
    FMDS_RETURN_IF_ERROR(client_->Read(cursor, AsBytes(item)));
    ++chain_hops_;
  }
}

Status ChainedHash::InsertAtHead(uint64_t key, uint64_t value,
                                 uint64_t flags) {
  const FarAddr bucket = BucketAddr(key);
  FMDS_ASSIGN_OR_RETURN(FarAddr slot, AllocItemSlot());
  // Optimistically expect an empty bucket; the CAS returns the real head on
  // a miss and we relink.
  FarAddr predicted = kNullFarAddr;
  Item item{key, value, flags, predicted};
  FMDS_RETURN_IF_ERROR(client_->Write(slot, AsConstBytes(item)));
  for (int attempt = 0; attempt < 64; ++attempt) {
    FMDS_ASSIGN_OR_RETURN(uint64_t old,
                          client_->CompareSwap(bucket, predicted, slot));
    if (old == predicted) {
      return OkStatus();
    }
    predicted = old;
    FMDS_RETURN_IF_ERROR(client_->WriteWord(slot + 24, predicted));
  }
  return Aborted("chained-hash insert retries exhausted");
}

Status ChainedHash::Put(uint64_t key, uint64_t value) {
  return InsertAtHead(key, value, 0);
}

Status ChainedHash::Remove(uint64_t key) {
  return InsertAtHead(key, 0, kFlagTombstone);
}

}  // namespace fmds
