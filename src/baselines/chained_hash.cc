#include "src/baselines/chained_hash.h"

#include "src/common/bytes.h"

namespace fmds {

Result<ChainedHash> ChainedHash::Create(FarClient* client,
                                        FarAllocator* alloc,
                                        Options options) {
  if (options.buckets == 0) {
    return Status(StatusCode::kInvalidArgument, "buckets must be > 0");
  }
  ChainedHash table(client, alloc);
  table.options_ = options;
  table.nbuckets_ = options.buckets;
  FMDS_ASSIGN_OR_RETURN(table.header_, alloc->Allocate(kHeaderBytes));
  FMDS_ASSIGN_OR_RETURN(table.buckets_,
                        alloc->Allocate(options.buckets * kWordSize));
  std::vector<uint64_t> zeros(options.buckets, 0);
  FMDS_RETURN_IF_ERROR(client->Write(
      table.buckets_, std::as_bytes(std::span<const uint64_t>(zeros))));
  const uint64_t hdr[2] = {table.buckets_, options.buckets};
  FMDS_RETURN_IF_ERROR(client->Write(
      table.header_, std::as_bytes(std::span<const uint64_t>(hdr))));
  return table;
}

Result<ChainedHash> ChainedHash::Attach(FarClient* client,
                                        FarAllocator* alloc, FarAddr header) {
  ChainedHash table(client, alloc);
  table.header_ = header;
  uint64_t hdr[2];
  FMDS_RETURN_IF_ERROR(client->Read(
      header, std::as_writable_bytes(std::span<uint64_t>(hdr))));
  table.buckets_ = hdr[0];
  table.nbuckets_ = hdr[1];
  return table;
}

Result<FarAddr> ChainedHash::AllocItemSlot() {
  if (arena_left_ == 0) {
    FMDS_ASSIGN_OR_RETURN(
        arena_next_, alloc_->Allocate(options_.arena_batch * kItemBytes));
    arena_left_ = options_.arena_batch;
  }
  const FarAddr slot = arena_next_;
  arena_next_ += kItemBytes;
  --arena_left_;
  client_->AccountNear(1);
  return slot;
}

Result<uint64_t> ChainedHash::Get(uint64_t key) {
  ++gets_;
  const FarAddr bucket = BucketAddr(key);
  Item item;
  FarAddr cursor;
  if (options_.use_indirect) {
    // Proposed hardware: one access merges bucket dereference + item read.
    auto head = client_->Load0(bucket, AsBytes(item));
    if (!head.ok()) {
      if (head.status().code() == StatusCode::kFailedPrecondition) {
        return Status(StatusCode::kNotFound, "empty bucket");
      }
      return head.status();
    }
    cursor = *head;
  } else {
    // Today's verbs: bucket word first, then the item — two round trips
    // before we even see a key.
    FMDS_ASSIGN_OR_RETURN(cursor, client_->ReadWord(bucket));
    if (cursor == kNullFarAddr) {
      return Status(StatusCode::kNotFound, "empty bucket");
    }
    FMDS_RETURN_IF_ERROR(client_->Read(cursor, AsBytes(item)));
  }
  while (true) {
    if (item.key == key) {
      if ((item.flags & kFlagTombstone) != 0) {
        return Status(StatusCode::kNotFound, "key removed");
      }
      return item.value;
    }
    if (item.next == kNullFarAddr) {
      return Status(StatusCode::kNotFound, "key absent");
    }
    cursor = item.next;
    FMDS_RETURN_IF_ERROR(client_->Read(cursor, AsBytes(item)));
    ++chain_hops_;
  }
}

std::vector<Result<uint64_t>> ChainedHash::MultiGet(
    std::span<const uint64_t> keys) {
  struct Probe {
    size_t idx = 0;
    uint64_t key = 0;
    Item item{};
  };
  std::vector<Result<uint64_t>> results(
      keys.size(), Status(StatusCode::kInternal, "multiget unresolved"));
  gets_ += keys.size();

  std::vector<Probe> probes;
  probes.reserve(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    probes.push_back(Probe{i, keys[i], {}});
  }

  std::vector<size_t> walking;
  std::vector<FarClient::Completion> done;

  // Wave 1: all bucket probes in one doorbell (completions in post order).
  if (options_.use_indirect) {
    for (auto& probe : probes) {
      client_->PostLoad0(BucketAddr(probe.key), AsBytes(probe.item));
    }
    (void)client_->WaitAll(&done);
    for (size_t i = 0; i < probes.size(); ++i) {
      if (done[i].status.ok()) {
        walking.push_back(i);
      } else if (done[i].status.code() == StatusCode::kFailedPrecondition) {
        results[probes[i].idx] =
            Status(StatusCode::kNotFound, "empty bucket");
      } else {
        results[probes[i].idx] = done[i].status;
      }
    }
  } else {
    for (auto& probe : probes) {
      client_->PostReadWord(BucketAddr(probe.key));
    }
    (void)client_->WaitAll(&done);
    std::vector<size_t> live;
    std::vector<FarAddr> heads;
    for (size_t i = 0; i < probes.size(); ++i) {
      if (!done[i].status.ok()) {
        results[probes[i].idx] = done[i].status;
      } else if (done[i].word == kNullFarAddr) {
        results[probes[i].idx] =
            Status(StatusCode::kNotFound, "empty bucket");
      } else {
        live.push_back(i);
        heads.push_back(done[i].word);
      }
    }
    done.clear();
    for (size_t j = 0; j < live.size(); ++j) {
      client_->PostRead(heads[j], AsBytes(probes[live[j]].item));
    }
    (void)client_->WaitAll(&done);
    for (size_t j = 0; j < live.size(); ++j) {
      if (done[j].status.ok()) {
        walking.push_back(live[j]);
      } else {
        results[probes[live[j]].idx] = done[j].status;
      }
    }
  }

  // Chain waves: one doorbell resolves the next hop of every open chain.
  while (!walking.empty()) {
    std::vector<size_t> continuing;
    for (size_t i : walking) {
      const Probe& probe = probes[i];
      if (probe.item.key == probe.key) {
        if ((probe.item.flags & kFlagTombstone) != 0) {
          results[probe.idx] = Status(StatusCode::kNotFound, "key removed");
        } else {
          results[probe.idx] = probe.item.value;
        }
      } else if (probe.item.next == kNullFarAddr) {
        results[probe.idx] = Status(StatusCode::kNotFound, "key absent");
      } else {
        continuing.push_back(i);
      }
    }
    if (continuing.empty()) {
      break;
    }
    done.clear();
    for (size_t i : continuing) {
      Probe& probe = probes[i];
      client_->PostRead(probe.item.next, AsBytes(probe.item));
      ++chain_hops_;
    }
    (void)client_->WaitAll(&done);
    std::vector<size_t> still;
    for (size_t j = 0; j < continuing.size(); ++j) {
      if (done[j].status.ok()) {
        still.push_back(continuing[j]);
      } else {
        results[probes[continuing[j]].idx] = done[j].status;
      }
    }
    walking = std::move(still);
  }
  return results;
}

Status ChainedHash::InsertAtHead(uint64_t key, uint64_t value,
                                 uint64_t flags) {
  const FarAddr bucket = BucketAddr(key);
  FMDS_ASSIGN_OR_RETURN(FarAddr slot, AllocItemSlot());
  // Optimistically expect an empty bucket; the CAS returns the real head on
  // a miss and we relink.
  FarAddr predicted = kNullFarAddr;
  Item item{key, value, flags, predicted};
  FMDS_RETURN_IF_ERROR(client_->Write(slot, AsConstBytes(item)));
  for (int attempt = 0; attempt < 64; ++attempt) {
    FMDS_ASSIGN_OR_RETURN(uint64_t old,
                          client_->CompareSwap(bucket, predicted, slot));
    if (old == predicted) {
      return OkStatus();
    }
    predicted = old;
    FMDS_RETURN_IF_ERROR(client_->WriteWord(slot + 24, predicted));
  }
  return Aborted("chained-hash insert retries exhausted");
}

Status ChainedHash::Put(uint64_t key, uint64_t value) {
  return InsertAtHead(key, value, 0);
}

Status ChainedHash::Remove(uint64_t key) {
  return InsertAtHead(key, 0, kFlagTombstone);
}

}  // namespace fmds
