// Baseline queues for E5 (§5.3):
//
//  * LockFarQueue — a far mutex around head/tail/slot updates: ~5 far
//    accesses per op plus lock contention ("costly concurrency control").
//  * TicketFarQueue — lock-free with plain fetch-add: TWO far accesses per
//    op (FAA on a ticket word, then the slot read/write), i.e. exactly what
//    you can do with today's RDMA atomics and what faai/saai halve.
//
// Both use logical monotonically increasing tickets mapped to ring slots
// client-side, so they need no slack region — the contrast with FarQueue's
// physical-pointer scheme is the point of the experiment.
#ifndef FMDS_SRC_BASELINES_SIMPLE_QUEUES_H_
#define FMDS_SRC_BASELINES_SIMPLE_QUEUES_H_

#include <cstdint>

#include "src/alloc/far_allocator.h"
#include "src/core/far_mutex.h"
#include "src/fabric/far_client.h"

namespace fmds {

class LockFarQueue {
 public:
  static Result<LockFarQueue> Create(FarClient* client, FarAllocator* alloc,
                                     uint64_t capacity);
  static Result<LockFarQueue> Attach(FarClient* client, FarAddr header);

  FarAddr header() const { return header_; }
  Status Enqueue(uint64_t value);
  Result<uint64_t> Dequeue();

 private:
  // Header: [0] head ticket, [8] tail ticket, [16] lock, [24] ring base,
  // [32] capacity.
  static constexpr uint64_t kHeaderBytes = 40;

  LockFarQueue(FarClient* client, FarAddr header)
      : client_(client), header_(header) {}

  FarClient* client_;
  FarAddr header_;
  FarAddr ring_ = kNullFarAddr;
  uint64_t capacity_ = 0;
  FarMutex lock_ = FarMutex::Attach(kNullFarAddr);
};

class TicketFarQueue {
 public:
  static Result<TicketFarQueue> Create(FarClient* client,
                                       FarAllocator* alloc,
                                       uint64_t capacity);
  static Result<TicketFarQueue> Attach(FarClient* client, FarAddr header);

  FarAddr header() const { return header_; }
  Status Enqueue(uint64_t value);   // 2 far accesses
  Result<uint64_t> Dequeue();       // 2 far accesses (+ spin when racing)

 private:
  // Header: [0] head ticket, [8] tail ticket, [16] ring base,
  // [24] capacity.
  static constexpr uint64_t kHeaderBytes = 32;

  TicketFarQueue(FarClient* client, FarAddr header)
      : client_(client), header_(header) {}

  FarAddr SlotAddr(uint64_t ticket) const {
    return ring_ + (ticket % capacity_) * kWordSize;
  }

  FarClient* client_;
  FarAddr header_;
  FarAddr ring_ = kNullFarAddr;
  uint64_t capacity_ = 0;
};

}  // namespace fmds

#endif  // FMDS_SRC_BASELINES_SIMPLE_QUEUES_H_
