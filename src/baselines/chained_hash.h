// Baseline: a *traditional* chained hash table used over far memory with
// one-sided accesses — the design §1 calls "the wrong data structure for far
// memory". Fixed bucket count (resizing a large far table is disruptive,
// §5.2), chains grow with load, and without the proposed hardware a lookup
// needs at least two far accesses (bucket word, then item), plus one per
// chain hop.
//
// `use_indirect` switches the bucket+item read to a single load0 — isolating
// how much of the HT-tree's win comes from the hardware primitive vs from
// the structure itself (E2 ablation).
#ifndef FMDS_SRC_BASELINES_CHAINED_HASH_H_
#define FMDS_SRC_BASELINES_CHAINED_HASH_H_

#include <cstdint>

#include "src/alloc/far_allocator.h"
#include "src/common/hash.h"
#include "src/fabric/far_client.h"

namespace fmds {

class ChainedHash {
 public:
  struct Options {
    uint64_t buckets = 4096;
    bool use_indirect = false;  // load0 on lookups (proposed HW)
    uint64_t arena_batch = 4096;
  };

  static Result<ChainedHash> Create(FarClient* client, FarAllocator* alloc,
                                    Options options);
  static Result<ChainedHash> Attach(FarClient* client, FarAllocator* alloc,
                                    FarAddr header);

  FarAddr header() const { return header_; }

  Result<uint64_t> Get(uint64_t key);
  Status Put(uint64_t key, uint64_t value);
  Status Remove(uint64_t key);  // tombstone insert, like Put

  // Batched multi-key lookup over the async pipeline: all bucket probes in
  // one doorbell, chain hops in batched waves. Same per-key semantics as
  // Get. Requires no other async ops pending on the client.
  std::vector<Result<uint64_t>> MultiGet(std::span<const uint64_t> keys);

  // Average chain length observed by this handle's Gets.
  double observed_chain_length() const {
    return gets_ == 0 ? 0.0
                      : static_cast<double>(chain_hops_) /
                            static_cast<double>(gets_);
  }

 private:
  // Header: [0] bucket base, [8] bucket count.
  static constexpr uint64_t kHeaderBytes = 16;
  // Item: [0] key, [8] value, [16] flags, [24] next (0 terminates).
  static constexpr uint64_t kItemBytes = 32;
  static constexpr uint64_t kFlagTombstone = 1;

  struct Item {
    uint64_t key;
    uint64_t value;
    uint64_t flags;
    FarAddr next;
  };

  ChainedHash(FarClient* client, FarAllocator* alloc)
      : client_(client), alloc_(alloc) {}

  FarAddr BucketAddr(uint64_t key) const {
    return buckets_ + (Mix64(key) % nbuckets_) * kWordSize;
  }
  Result<FarAddr> AllocItemSlot();
  Status InsertAtHead(uint64_t key, uint64_t value, uint64_t flags);

  FarClient* client_;
  FarAllocator* alloc_;
  FarAddr header_ = kNullFarAddr;
  FarAddr buckets_ = kNullFarAddr;
  uint64_t nbuckets_ = 0;
  Options options_;

  FarAddr arena_next_ = kNullFarAddr;
  uint64_t arena_left_ = 0;
  uint64_t gets_ = 0;
  uint64_t chain_hops_ = 0;
};

}  // namespace fmds

#endif  // FMDS_SRC_BASELINES_CHAINED_HASH_H_
