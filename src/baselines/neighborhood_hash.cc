#include "src/baselines/neighborhood_hash.h"

#include "src/common/bytes.h"

namespace fmds {

Result<NeighborhoodHash> NeighborhoodHash::Create(FarClient* client,
                                                  FarAllocator* alloc,
                                                  Options options) {
  if (options.buckets == 0 || options.neighborhood == 0) {
    return Status(StatusCode::kInvalidArgument, "bad neighborhood options");
  }
  NeighborhoodHash table(client);
  table.buckets_ = options.buckets;
  table.neighborhood_ = options.neighborhood;
  // The slot array is padded by one neighborhood so windows never wrap.
  const uint64_t total_slots = options.buckets + options.neighborhood;
  FMDS_ASSIGN_OR_RETURN(table.header_, alloc->Allocate(kHeaderBytes));
  FMDS_ASSIGN_OR_RETURN(table.slots_,
                        alloc->Allocate(total_slots * kSlotBytes));
  std::vector<uint64_t> zeros(total_slots * 2, 0);
  FMDS_RETURN_IF_ERROR(client->Write(
      table.slots_, std::as_bytes(std::span<const uint64_t>(zeros))));
  const uint64_t hdr[3] = {table.slots_, options.buckets,
                           options.neighborhood};
  FMDS_RETURN_IF_ERROR(client->Write(
      table.header_, std::as_bytes(std::span<const uint64_t>(hdr))));
  return table;
}

Result<NeighborhoodHash> NeighborhoodHash::Attach(FarClient* client,
                                                  FarAddr header) {
  NeighborhoodHash table(client);
  table.header_ = header;
  uint64_t hdr[3];
  FMDS_RETURN_IF_ERROR(client->Read(
      header, std::as_writable_bytes(std::span<uint64_t>(hdr))));
  table.slots_ = hdr[0];
  table.buckets_ = hdr[1];
  table.neighborhood_ = hdr[2];
  return table;
}

Result<uint64_t> NeighborhoodHash::Get(uint64_t key) {
  if (key == 0) {
    return Status(StatusCode::kInvalidArgument, "key 0 reserved");
  }
  // ONE far access: the whole neighborhood in a single read.
  std::vector<Slot> window(neighborhood_);
  FMDS_RETURN_IF_ERROR(client_->Read(
      SlotAddr(HomeBucket(key)),
      std::as_writable_bytes(std::span<Slot>(window))));
  client_->AccountNear(neighborhood_ / 4 + 1);  // local scan
  for (const Slot& slot : window) {
    if (slot.key == key) {
      return slot.value;
    }
  }
  return Status(StatusCode::kNotFound, "key absent");
}

std::vector<Result<uint64_t>> NeighborhoodHash::MultiGet(
    std::span<const uint64_t> keys) {
  std::vector<Result<uint64_t>> results(
      keys.size(), Status(StatusCode::kInternal, "multiget unresolved"));
  // One doorbell: every key's whole neighborhood in a single batched
  // round trip (the sync path pays one round trip per key).
  std::vector<std::vector<Slot>> windows(keys.size());
  std::vector<size_t> posted;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (keys[i] == 0) {
      results[i] = Status(StatusCode::kInvalidArgument, "key 0 reserved");
      continue;
    }
    windows[i].resize(neighborhood_);
    client_->PostRead(SlotAddr(HomeBucket(keys[i])),
                      std::as_writable_bytes(std::span<Slot>(windows[i])));
    posted.push_back(i);
  }
  std::vector<FarClient::Completion> done;
  (void)client_->WaitAll(&done);
  for (size_t j = 0; j < posted.size(); ++j) {
    const size_t i = posted[j];
    if (!done[j].status.ok()) {
      results[i] = done[j].status;
      continue;
    }
    client_->AccountNear(neighborhood_ / 4 + 1);  // local scan
    results[i] = Status(StatusCode::kNotFound, "key absent");
    for (const Slot& slot : windows[i]) {
      if (slot.key == keys[i]) {
        results[i] = slot.value;
        break;
      }
    }
  }
  return results;
}

Status NeighborhoodHash::Put(uint64_t key, uint64_t value) {
  if (key == 0) {
    return InvalidArgument("key 0 reserved");
  }
  const uint64_t home = HomeBucket(key);
  std::vector<Slot> window(neighborhood_);
  FMDS_RETURN_IF_ERROR(client_->Read(
      SlotAddr(home), std::as_writable_bytes(std::span<Slot>(window))));
  // Existing key: in-place value update.
  for (uint64_t i = 0; i < neighborhood_; ++i) {
    if (window[i].key == key) {
      return client_->WriteWord(SlotAddr(home + i) + kWordSize, value);
    }
  }
  // Claim a free slot with a CAS on its key word, then write the value.
  for (uint64_t i = 0; i < neighborhood_; ++i) {
    if (window[i].key != 0) {
      continue;
    }
    FMDS_ASSIGN_OR_RETURN(
        uint64_t old, client_->CompareSwap(SlotAddr(home + i), 0, key));
    if (old == 0) {
      return client_->WriteWord(SlotAddr(home + i) + kWordSize, value);
    }
    if (old == key) {  // concurrent insert of the same key
      return client_->WriteWord(SlotAddr(home + i) + kWordSize, value);
    }
  }
  return ResourceExhausted("neighborhood full");
}

Status NeighborhoodHash::Remove(uint64_t key) {
  if (key == 0) {
    return InvalidArgument("key 0 reserved");
  }
  const uint64_t home = HomeBucket(key);
  std::vector<Slot> window(neighborhood_);
  FMDS_RETURN_IF_ERROR(client_->Read(
      SlotAddr(home), std::as_writable_bytes(std::span<Slot>(window))));
  for (uint64_t i = 0; i < neighborhood_; ++i) {
    if (window[i].key == key) {
      FMDS_ASSIGN_OR_RETURN(
          uint64_t old, client_->CompareSwap(SlotAddr(home + i), key, 0));
      if (old == key) {
        return OkStatus();
      }
      return Aborted("slot changed during remove");
    }
  }
  return NotFound("key absent");
}

}  // namespace fmds
