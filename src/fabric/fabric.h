// The far-memory fabric: a pool of MemoryNodes behind one flat address
// space, plus the routing logic for the paper's memory-side primitives.
//
// Address distribution (§7.1): either contiguous partitions (node i owns one
// capacity-sized slice) or block-cyclic striping with a configurable stripe
// size (a multiple of the page size, so pages — and hence notification
// subscriptions — never straddle nodes).
//
// Memory-side indirection that dereferences a pointer living on a *different*
// node is resolved per IndirectionPolicy: kForward relays the request between
// memory nodes (extra hop, still one client round trip), kError bounces the
// pointer back so the client completes the indirection itself (second round
// trip) — exactly the two alternatives §7.1 describes.
#ifndef FMDS_SRC_FABRIC_FABRIC_H_
#define FMDS_SRC_FABRIC_FABRIC_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <vector>

#include "src/common/status.h"
#include "src/fabric/far_addr.h"
#include "src/fabric/memory_node.h"
#include "src/sim/latency_model.h"

namespace fmds {

class GaugeGroup;

enum class IndirectionPolicy : uint8_t {
  kForward = 0,  // memory node forwards to the target node
  kError = 1,    // request fails; client issues the second access itself
};

struct FabricOptions {
  uint32_t num_nodes = 1;
  uint64_t node_capacity = 64ull << 20;  // bytes per node
  uint64_t stripe_bytes = 0;             // 0 => contiguous partitions
  IndirectionPolicy indirection = IndirectionPolicy::kForward;
  LatencyModel latency;
  // Per-node congestion front end (DESIGN.md §14): bounded service queue
  // with a configurable service rate, link bandwidth share, and shed
  // bound. Off by default — the fabric then behaves bit-identically to the
  // fixed-RTT model. Every node starts with this config; per-node runtime
  // changes go through MemoryNode::SetCongestion.
  CongestionOptions congestion;
};

class Fabric {
 public:
  explicit Fabric(FabricOptions options);

  struct Location {
    NodeId node;
    uint64_t offset;
  };

  // One per-node contiguous piece of a global range.
  struct Segment {
    NodeId node;
    uint64_t offset;  // node-local
    uint64_t len;
    FarAddr addr;     // global address of the segment start
  };

  const FabricOptions& options() const { return options_; }
  uint64_t total_capacity() const { return total_capacity_; }
  uint32_t num_nodes() const { return options_.num_nodes; }
  MemoryNode& node(NodeId id) { return *nodes_[id]; }

  // Maps a global address; status is kOutOfRange for bad addresses.
  Result<Location> Translate(FarAddr addr) const;

  // Splits [addr, addr+len) into per-node contiguous segments, in address
  // order. Returns kOutOfRange if the range exceeds the address space.
  Status Segments(FarAddr addr, uint64_t len, std::vector<Segment>& out) const;

  // True if the entire word at `addr` lives on `node` (8-byte ranges never
  // straddle nodes given page-multiple stripes).
  bool SameNodeWord(FarAddr addr, NodeId node) const;

  SubId NextSubId() { return next_sub_id_.fetch_add(1) + 1; }

  // Fleet-wide per-node service counters as one table (plus a totals row):
  // the memory-side companion to the client-side flight recorder.
  void DumpStats(std::ostream& os) const;

  // Client-side fleet table: one row per ClientStats with EVERY counter
  // ClientStats::ToString reports — including the PR 7 pipeline counters
  // (writes_combined, flush_stages, bg_evictions) — plus a totals row.
  // Pass each thread's client->stats() snapshot (taken quiesced: ClientStats
  // are single-owner and must not be read while the owner runs).
  static void DumpClientStats(std::ostream& os,
                              std::span<const ClientStats> clients);

  // Live per-node health table: service counters plus the gauges DumpStats
  // omits — active subscriptions, the injected per-op slowdown
  // (set_extra_service_ns), and the congestion front end's queue depth and
  // cumulative sheds. Safe to call while clients run (all atomics).
  void DumpHealth(std::ostream& os) const;

  // Registers per-node traffic gauges (`prefix.node<i>.{ops,bytes_in,
  // bytes_out,notifications,subs,extra_service_ns,queue_depth,sheds,
  // shed_rate}`) with a TelemetryHub. Atomic reads only; safe while
  // clients run. The group must not outlive the fabric.
  void AddGauges(GaugeGroup* group, const std::string& prefix) const;

 private:
  FabricOptions options_;
  uint64_t total_capacity_;
  std::vector<std::unique_ptr<MemoryNode>> nodes_;
  std::atomic<SubId> next_sub_id_{0};
};

}  // namespace fmds

#endif  // FMDS_SRC_FABRIC_FABRIC_H_
