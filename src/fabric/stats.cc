#include "src/fabric/stats.h"

#include <cstdio>

namespace fmds {

std::string ClientStats::ToString() const {
  char buf[768];
  std::snprintf(buf, sizeof(buf),
                "far_ops=%llu msgs=%llu rd=%lluB wr=%lluB near=%llu rpc=%llu "
                "notif=%llu slow=%llu bg=%llu batches=%llu batched=%llu "
                "rtts_saved=%llu fanout=%llu xnode_saved=%llu "
                "cache_hit=%llu cache_miss=%llu cache_inval=%llu "
                "txn_commit=%llu txn_abort=%llu txn_vfail=%llu txn_pfail=%llu "
                "wb_combined=%llu wb_stages=%llu bg_evict=%llu "
                "route_1s=%llu route_rpc=%llu route_probe=%llu "
                "route_flip=%llu ovl_shed=%llu ovl_retry=%llu ovl_fail=%llu",
                static_cast<unsigned long long>(far_ops),
                static_cast<unsigned long long>(messages),
                static_cast<unsigned long long>(bytes_read),
                static_cast<unsigned long long>(bytes_written),
                static_cast<unsigned long long>(near_ops),
                static_cast<unsigned long long>(rpc_calls),
                static_cast<unsigned long long>(notifications),
                static_cast<unsigned long long>(slow_path_ops),
                static_cast<unsigned long long>(background_ops),
                static_cast<unsigned long long>(batches),
                static_cast<unsigned long long>(batched_ops),
                static_cast<unsigned long long>(overlapped_rtts_saved),
                static_cast<unsigned long long>(fanout_batches),
                static_cast<unsigned long long>(cross_node_rtts_saved),
                static_cast<unsigned long long>(cache_hits),
                static_cast<unsigned long long>(cache_misses),
                static_cast<unsigned long long>(cache_invalidations),
                static_cast<unsigned long long>(txn_commits),
                static_cast<unsigned long long>(txn_aborts),
                static_cast<unsigned long long>(txn_validate_fails),
                static_cast<unsigned long long>(txn_prepare_fails),
                static_cast<unsigned long long>(writes_combined),
                static_cast<unsigned long long>(flush_stages),
                static_cast<unsigned long long>(bg_evictions),
                static_cast<unsigned long long>(route_one_sided),
                static_cast<unsigned long long>(route_rpc),
                static_cast<unsigned long long>(route_probes),
                static_cast<unsigned long long>(route_flips),
                static_cast<unsigned long long>(overload_sheds),
                static_cast<unsigned long long>(overload_retries),
                static_cast<unsigned long long>(overload_failures));
  return buf;
}

std::string NodeStats::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "ops=%llu in=%lluB out=%lluB indir=%llu fwd=%llu "
                "notif_fired=%llu notif_dropped=%llu notif_coalesced=%llu "
                "shed=%llu",
                static_cast<unsigned long long>(
                    ops_serviced.load(std::memory_order_relaxed)),
                static_cast<unsigned long long>(
                    bytes_in.load(std::memory_order_relaxed)),
                static_cast<unsigned long long>(
                    bytes_out.load(std::memory_order_relaxed)),
                static_cast<unsigned long long>(
                    indirections.load(std::memory_order_relaxed)),
                static_cast<unsigned long long>(
                    forwards.load(std::memory_order_relaxed)),
                static_cast<unsigned long long>(
                    notifications_fired.load(std::memory_order_relaxed)),
                static_cast<unsigned long long>(
                    notifications_dropped.load(std::memory_order_relaxed)),
                static_cast<unsigned long long>(
                    notifications_coalesced.load(std::memory_order_relaxed)),
                static_cast<unsigned long long>(
                    ops_shed.load(std::memory_order_relaxed)));
  return buf;
}

}  // namespace fmds
