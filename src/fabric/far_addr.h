// Global far-memory addressing.
//
// The fabric exposes one flat byte-addressable space of
// num_nodes * node_capacity bytes, distributed over memory nodes either in
// contiguous partitions or block-cyclically striped (§7.1). FarAddr 0 is the
// null pointer; allocators never hand it out.
#ifndef FMDS_SRC_FABRIC_FAR_ADDR_H_
#define FMDS_SRC_FABRIC_FAR_ADDR_H_

#include <cstdint>

namespace fmds {

using FarAddr = uint64_t;
using NodeId = uint32_t;

inline constexpr FarAddr kNullFarAddr = 0;
inline constexpr uint64_t kWordSize = 8;
inline constexpr uint64_t kPageSize = 4096;

inline bool IsWordAligned(FarAddr addr) { return (addr & (kWordSize - 1)) == 0; }
inline uint64_t PageIndexOf(uint64_t offset) { return offset / kPageSize; }

}  // namespace fmds

#endif  // FMDS_SRC_FABRIC_FAR_ADDR_H_
