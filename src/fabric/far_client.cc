#include "src/fabric/far_client.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <unordered_set>

// Sanitizer instrumentation slows the spinning side of real-time waits by
// 5-20x, so wall-clock budgets that are generous natively can fire
// spuriously under scripts/check.sh's TSan/ASan passes. Scale them.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define FMDS_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define FMDS_UNDER_SANITIZER 1
#endif
#endif

namespace fmds {

namespace {
#ifdef FMDS_UNDER_SANITIZER
constexpr uint64_t kWaitBudgetScale = 20;
#else
constexpr uint64_t kWaitBudgetScale = 1;
#endif
}  // namespace

FarClient::FarClient(Fabric* fabric, uint64_t client_id, ClientOptions options)
    : fabric_(fabric),
      client_id_(client_id),
      latency_(fabric->options().latency),
      retry_(options.retry),
      jitter_state_(client_id * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull),
      home_node_(options.home_node),
      local_latency_(options.local_latency),
      obs_(client_id),
      channel_(options.channel_capacity),
      channel_capacity_(options.channel_capacity) {
  obs_.set_options(options.obs);
}

void FarClient::AccountRoundTrip(FarOpKind kind, NodeId node, FarAddr addr,
                                 uint64_t payload_bytes, uint64_t messages,
                                 uint64_t extra_hops, bool ok,
                                 uint64_t queue_ns) {
  ++stats_.far_ops;
  stats_.messages += messages;
  uint64_t latency_ns = ModelFor(node).FarRoundTripNs(payload_bytes) +
                        extra_hops * latency_.node_hop_ns + queue_ns;
  if (node != kObsNoNode) {
    // Per-node slowdown knob (contention / degraded link injection): the
    // serviced node's extra service time rides on every round trip to it.
    latency_ns += fabric_->node(node).extra_service_ns();
  }
  const uint64_t start_ns = clock_.now_ns();
  clock_.Advance(latency_ns);
  if (obs_.recording()) {
    obs_.RecordOp(kind, node, addr, payload_bytes, start_ns, latency_ns, ok);
  }
}

// --------------------- Congestion admission (§14) ---------------------

uint64_t FarClient::NextJitter() {
  // xorshift64*: deterministic per client, free of global state.
  uint64_t x = jitter_state_;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  jitter_state_ = x;
  return x * 0x2545F4914F6CDD1Dull;
}

Result<uint64_t> FarClient::OfferOnce(NodeId node, uint64_t ops,
                                      uint64_t bytes) {
  if (node == kObsNoNode) {
    return uint64_t{0};
  }
  if (home_node_.has_value() && node == *home_node_) {
    // The near-memory agent reaches its own memory through the controller,
    // not through the node's NIC front end; its local work never queues
    // there. (This is what lets an RPC agent keep servicing shipped ops
    // while the one-sided front end is saturated.)
    return uint64_t{0};
  }
  MemoryNode& n = fabric_->node(node);
  if (!n.congestion_enabled()) {
    return uint64_t{0};
  }
  AdmissionOutcome outcome = n.OfferLoad(clock_.now_ns(), ops, bytes);
  if (outcome.admitted) {
    return outcome.queue_ns;
  }
  stats_.overload_sheds += ops;
  ++stats_.overload_failures;
  return Overloaded("node " + std::to_string(node) +
                    " shed op: service queue full");
}

Result<uint64_t> FarClient::AdmitCongestion(FarOpKind kind, NodeId node,
                                            FarAddr addr, uint64_t ops,
                                            uint64_t bytes) {
  if (node == kObsNoNode) {
    return uint64_t{0};
  }
  if (home_node_.has_value() && node == *home_node_) {
    // See OfferOnce: home-node (agent) accesses bypass the NIC front end.
    return uint64_t{0};
  }
  MemoryNode& n = fabric_->node(node);
  if (!n.congestion_enabled()) {
    return uint64_t{0};
  }
  const uint64_t op_start_ns = clock_.now_ns();
  for (uint32_t attempt = 1;; ++attempt) {
    AdmissionOutcome outcome = n.OfferLoad(clock_.now_ns(), ops, bytes);
    if (outcome.admitted) {
      return outcome.queue_ns;
    }
    stats_.overload_sheds += ops;
    // The bounce is a completed (failed) round trip: the client learns of
    // the shed from the node's reject reply.
    AccountRoundTrip(kind, node, addr, 0, 1, 0, /*ok=*/false);
    if (attempt >= retry_.max_attempts) {
      break;
    }
    uint64_t backoff = retry_.backoff_base_ns
                       << std::min<uint32_t>(attempt - 1, 20);
    backoff = std::min(std::max<uint64_t>(backoff, 1), retry_.backoff_max_ns);
    if (retry_.jitter) {
      backoff = backoff / 2 + NextJitter() % std::max<uint64_t>(backoff / 2, 1);
    }
    if (retry_.deadline_ns != 0 &&
        clock_.now_ns() - op_start_ns + backoff > retry_.deadline_ns) {
      // Out of deadline budget: failing now beats sleeping past it.
      break;
    }
    ++stats_.overload_retries;
    clock_.Advance(backoff);
  }
  ++stats_.overload_failures;
  return Overloaded("node " + std::to_string(node) +
                    " shed op: retry budget exhausted");
}

// ------------------------------ Base verbs ------------------------------

Status FarClient::Read(FarAddr addr, std::span<std::byte> out) {
  std::vector<Fabric::Segment> segs;
  FMDS_RETURN_IF_ERROR(fabric_->Segments(addr, out.size(), segs));
  // Admission precedes memory effects everywhere: a shed op never touches
  // far memory. The op (all its segments) queues at its primary node.
  FMDS_ASSIGN_OR_RETURN(
      const uint64_t queue_ns,
      AdmitCongestion(FarOpKind::kRead,
                      segs.empty() ? kObsNoNode : segs.front().node, addr,
                      std::max<size_t>(segs.size(), 1), out.size()));
  size_t produced = 0;
  for (const auto& seg : segs) {
    fabric_->node(seg.node).ReadRange(
        seg.offset, out.subspan(produced, static_cast<size_t>(seg.len)));
    produced += static_cast<size_t>(seg.len);
  }
  stats_.bytes_read += out.size();
  AccountRoundTrip(FarOpKind::kRead,
                   segs.empty() ? kObsNoNode : segs.front().node, addr,
                   out.size(), std::max<size_t>(segs.size(), 1), 0,
                   /*ok=*/true, queue_ns);
  return OkStatus();
}

Status FarClient::Write(FarAddr addr, std::span<const std::byte> data) {
  std::vector<Fabric::Segment> segs;
  FMDS_RETURN_IF_ERROR(fabric_->Segments(addr, data.size(), segs));
  FMDS_ASSIGN_OR_RETURN(
      const uint64_t queue_ns,
      AdmitCongestion(FarOpKind::kWrite,
                      segs.empty() ? kObsNoNode : segs.front().node, addr,
                      std::max<size_t>(segs.size(), 1), data.size()));
  size_t consumed = 0;
  for (const auto& seg : segs) {
    fabric_->node(seg.node).WriteRange(
        seg.offset, data.subspan(consumed, static_cast<size_t>(seg.len)),
        clock_.now_ns());
    consumed += static_cast<size_t>(seg.len);
  }
  stats_.bytes_written += data.size();
  AccountRoundTrip(FarOpKind::kWrite,
                   segs.empty() ? kObsNoNode : segs.front().node, addr,
                   data.size(), std::max<size_t>(segs.size(), 1), 0,
                   /*ok=*/true, queue_ns);
  return OkStatus();
}

Result<uint64_t> FarClient::ReadWord(FarAddr addr) {
  if (!IsWordAligned(addr)) {
    return Status(StatusCode::kInvalidArgument, "unaligned word read");
  }
  FMDS_ASSIGN_OR_RETURN(auto loc, fabric_->Translate(addr));
  FMDS_ASSIGN_OR_RETURN(
      const uint64_t queue_ns,
      AdmitCongestion(FarOpKind::kReadWord, loc.node, addr, 1, kWordSize));
  const uint64_t value = fabric_->node(loc.node).LoadWord(loc.offset);
  stats_.bytes_read += kWordSize;
  AccountRoundTrip(FarOpKind::kReadWord, loc.node, addr, kWordSize, 1, 0,
                   /*ok=*/true, queue_ns);
  return value;
}

Status FarClient::WriteWord(FarAddr addr, uint64_t value) {
  if (!IsWordAligned(addr)) {
    return InvalidArgument("unaligned word write");
  }
  FMDS_ASSIGN_OR_RETURN(auto loc, fabric_->Translate(addr));
  FMDS_ASSIGN_OR_RETURN(
      const uint64_t queue_ns,
      AdmitCongestion(FarOpKind::kWriteWord, loc.node, addr, 1, kWordSize));
  fabric_->node(loc.node).StoreWord(loc.offset, value, clock_.now_ns());
  stats_.bytes_written += kWordSize;
  AccountRoundTrip(FarOpKind::kWriteWord, loc.node, addr, kWordSize, 1, 0,
                   /*ok=*/true, queue_ns);
  return OkStatus();
}

Result<uint64_t> FarClient::CompareSwap(FarAddr addr, uint64_t expected,
                                        uint64_t desired) {
  if (!IsWordAligned(addr)) {
    return Status(StatusCode::kInvalidArgument, "unaligned CAS");
  }
  FMDS_ASSIGN_OR_RETURN(auto loc, fabric_->Translate(addr));
  FMDS_ASSIGN_OR_RETURN(
      const uint64_t queue_ns,
      AdmitCongestion(FarOpKind::kCas, loc.node, addr, 1, kWordSize));
  const uint64_t old = fabric_->node(loc.node).CompareSwapWord(
      loc.offset, expected, desired, clock_.now_ns());
  stats_.bytes_written += kWordSize;
  stats_.bytes_read += kWordSize;
  AccountRoundTrip(FarOpKind::kCas, loc.node, addr, kWordSize, 1, 0,
                   /*ok=*/true, queue_ns);
  return old;
}

Result<uint64_t> FarClient::FetchAdd(FarAddr addr, uint64_t delta) {
  if (!IsWordAligned(addr)) {
    return Status(StatusCode::kInvalidArgument, "unaligned fetch-add");
  }
  FMDS_ASSIGN_OR_RETURN(auto loc, fabric_->Translate(addr));
  FMDS_ASSIGN_OR_RETURN(
      const uint64_t queue_ns,
      AdmitCongestion(FarOpKind::kFetchAdd, loc.node, addr, 1, kWordSize));
  const uint64_t old =
      fabric_->node(loc.node).FetchAddWord(loc.offset, delta, clock_.now_ns());
  stats_.bytes_written += kWordSize;
  stats_.bytes_read += kWordSize;
  AccountRoundTrip(FarOpKind::kFetchAdd, loc.node, addr, kWordSize, 1, 0,
                   /*ok=*/true, queue_ns);
  return old;
}

// -------------------------- Indirect addressing --------------------------

Status FarClient::DirectAccess(IndirectKind kind, FarAddr addr,
                               std::span<std::byte> read_out,
                               std::span<const std::byte> write_value,
                               uint64_t add_value) {
  switch (kind) {
    case IndirectKind::kRead:
      return Read(addr, read_out);
    case IndirectKind::kWrite:
      return Write(addr, write_value);
    case IndirectKind::kAtomicAdd: {
      auto r = FetchAdd(addr, add_value);
      return r.status();
    }
  }
  return Internal("bad indirect kind");
}

Result<FarAddr> FarClient::IndirectOp(IndirectKind kind, IndexMode mode,
                                      FarAddr ad, uint64_t i,
                                      std::optional<int64_t> fetch_add_delta,
                                      std::span<std::byte> read_out,
                                      std::span<const std::byte> write_value,
                                      uint64_t add_value) {
  // 1. Locate the pointer word.
  const FarAddr ptr_addr = (mode == IndexMode::kIndexedPtr) ? ad + i : ad;
  if (!IsWordAligned(ptr_addr)) {
    return Status(StatusCode::kInvalidArgument,
                  "indirect pointer location must be word-aligned");
  }
  FMDS_ASSIGN_OR_RETURN(auto home, fabric_->Translate(ptr_addr));
  MemoryNode& home_node = fabric_->node(home.node);
  // One queued request at the home node covers the whole indirection; the
  // dependent access (forwarded or local) is controller work, not a second
  // NIC arrival.
  FMDS_ASSIGN_OR_RETURN(const uint64_t queue_ns,
                        AdmitCongestion(FarOpKind::kIndirect, home.node,
                                        ptr_addr, 1, kWordSize));
  home_node.stats().indirections.fetch_add(1, std::memory_order_relaxed);

  // 2. Fetch (and for faai/saai atomically bump) the pointer.
  FarAddr pointer;
  if (fetch_add_delta.has_value()) {
    pointer = home_node.FetchAddWord(
        home.offset, static_cast<uint64_t>(*fetch_add_delta), clock_.now_ns());
  } else {
    pointer = home_node.LoadWord(home.offset);
  }
  if (pointer == kNullFarAddr) {
    // Completed round trip that found a null pointer; still one far access.
    stats_.bytes_read += kWordSize;
    AccountRoundTrip(FarOpKind::kIndirect, home.node, ptr_addr, kWordSize, 1,
                     0, /*ok=*/false, queue_ns);
    return Status(StatusCode::kFailedPrecondition, "null indirect pointer");
  }

  // 3. Compute the target of the second access.
  const FarAddr target = (mode == IndexMode::kIndexedTgt) ? pointer + i
                                                          : pointer;
  const uint64_t len = (kind == IndirectKind::kRead) ? read_out.size()
                       : (kind == IndirectKind::kWrite) ? write_value.size()
                                                        : kWordSize;
  if (kind == IndirectKind::kAtomicAdd && !IsWordAligned(target)) {
    return Status(StatusCode::kInvalidArgument,
                  "indirect add target must be word-aligned");
  }

  std::vector<Fabric::Segment> segs;
  Status seg_status = fabric_->Segments(target, len, segs);
  if (!seg_status.ok()) {
    stats_.bytes_read += kWordSize;
    AccountRoundTrip(FarOpKind::kIndirect, home.node, ptr_addr, kWordSize, 1,
                     0, /*ok=*/false, queue_ns);
    return seg_status;
  }

  uint64_t remote_hops = 0;
  for (const auto& seg : segs) {
    if (seg.node != home.node) {
      ++remote_hops;
    }
  }

  if (remote_hops > 0 &&
      fabric_->options().indirection == IndirectionPolicy::kError) {
    // §7.1 alternative: the memory node returns the pointer and an error;
    // the client completes the indirection itself with a second round trip
    // (which accounts under its own direct op kind).
    stats_.bytes_read += kWordSize;
    AccountRoundTrip(FarOpKind::kIndirect, home.node, ptr_addr, kWordSize, 1,
                     0, /*ok=*/true, queue_ns);
    FMDS_RETURN_IF_ERROR(
        DirectAccess(kind, target, read_out, write_value, add_value));
    return pointer;
  }

  // 4. Execute memory-side (forwarding between nodes when needed).
  if (remote_hops > 0) {
    home_node.stats().forwards.fetch_add(remote_hops,
                                         std::memory_order_relaxed);
  }
  size_t moved = 0;
  for (const auto& seg : segs) {
    MemoryNode& tgt = fabric_->node(seg.node);
    switch (kind) {
      case IndirectKind::kRead:
        tgt.ReadRange(seg.offset,
                      read_out.subspan(moved, static_cast<size_t>(seg.len)));
        break;
      case IndirectKind::kWrite:
        tgt.WriteRange(seg.offset,
                       write_value.subspan(moved,
                                           static_cast<size_t>(seg.len)),
                       clock_.now_ns());
        break;
      case IndirectKind::kAtomicAdd:
        tgt.FetchAddWord(seg.offset, add_value, clock_.now_ns());
        break;
    }
    moved += static_cast<size_t>(seg.len);
  }

  // 5. Accounting: one client round trip regardless of forwarding; each
  // forward hop adds a node-to-node traversal and hop latency.
  const uint64_t payload = kWordSize + len;
  if (kind == IndirectKind::kRead) {
    stats_.bytes_read += len;
  } else {
    stats_.bytes_written += len;
  }
  AccountRoundTrip(FarOpKind::kIndirect, home.node, ptr_addr, payload,
                   1 + remote_hops, remote_hops, /*ok=*/true, queue_ns);
  return pointer;
}

Result<FarAddr> FarClient::Load0(FarAddr ad, std::span<std::byte> out) {
  return IndirectOp(IndirectKind::kRead, IndexMode::kPlain, ad, 0,
                    std::nullopt, out, {}, 0);
}

Result<FarAddr> FarClient::Load1(FarAddr ad, uint64_t i,
                                 std::span<std::byte> out) {
  return IndirectOp(IndirectKind::kRead, IndexMode::kIndexedPtr, ad, i,
                    std::nullopt, out, {}, 0);
}

Result<FarAddr> FarClient::Load2(FarAddr ad, uint64_t i,
                                 std::span<std::byte> out) {
  return IndirectOp(IndirectKind::kRead, IndexMode::kIndexedTgt, ad, i,
                    std::nullopt, out, {}, 0);
}

Result<FarAddr> FarClient::Store0(FarAddr ad,
                                  std::span<const std::byte> value) {
  return IndirectOp(IndirectKind::kWrite, IndexMode::kPlain, ad, 0,
                    std::nullopt, {}, value, 0);
}

Result<FarAddr> FarClient::Store1(FarAddr ad, uint64_t i,
                                  std::span<const std::byte> value) {
  return IndirectOp(IndirectKind::kWrite, IndexMode::kIndexedPtr, ad, i,
                    std::nullopt, {}, value, 0);
}

Result<FarAddr> FarClient::Store2(FarAddr ad, uint64_t i,
                                  std::span<const std::byte> value) {
  return IndirectOp(IndirectKind::kWrite, IndexMode::kIndexedTgt, ad, i,
                    std::nullopt, {}, value, 0);
}

Result<FarAddr> FarClient::Faai(FarAddr ad, int64_t delta,
                                std::span<std::byte> out) {
  return IndirectOp(IndirectKind::kRead, IndexMode::kPlain, ad, 0, delta, out,
                    {}, 0);
}

Result<FarAddr> FarClient::Saai(FarAddr ad, int64_t delta,
                                std::span<const std::byte> value) {
  return IndirectOp(IndirectKind::kWrite, IndexMode::kPlain, ad, 0, delta, {},
                    value, 0);
}

Status FarClient::Add0(FarAddr ad, uint64_t v) {
  return IndirectOp(IndirectKind::kAtomicAdd, IndexMode::kPlain, ad, 0,
                    std::nullopt, {}, {}, v)
      .status();
}

Status FarClient::Add1(FarAddr ad, uint64_t v, uint64_t i) {
  return IndirectOp(IndirectKind::kAtomicAdd, IndexMode::kIndexedPtr, ad, i,
                    std::nullopt, {}, {}, v)
      .status();
}

Status FarClient::Add2(FarAddr ad, uint64_t v, uint64_t i) {
  return IndirectOp(IndirectKind::kAtomicAdd, IndexMode::kIndexedTgt, ad, i,
                    std::nullopt, {}, {}, v)
      .status();
}

// ----------------------------- Scatter-gather -----------------------------

Status FarClient::RScatter(FarAddr ad, std::span<const LocalBuf> iov) {
  const uint64_t total = TotalLen(iov);
  std::vector<std::byte> staging(total);
  std::vector<Fabric::Segment> segs;
  FMDS_RETURN_IF_ERROR(fabric_->Segments(ad, total, segs));
  FMDS_ASSIGN_OR_RETURN(
      const uint64_t queue_ns,
      AdmitCongestion(FarOpKind::kScatterGather,
                      segs.empty() ? kObsNoNode : segs.front().node, ad,
                      std::max<size_t>(segs.size(), 1), total));
  size_t produced = 0;
  for (const auto& seg : segs) {
    fabric_->node(seg.node).ReadRange(
        seg.offset,
        std::span<std::byte>(staging).subspan(produced,
                                              static_cast<size_t>(seg.len)));
    produced += static_cast<size_t>(seg.len);
  }
  size_t cursor = 0;
  for (const auto& buf : iov) {
    std::memcpy(buf.data, staging.data() + cursor, buf.len);
    cursor += buf.len;
  }
  stats_.bytes_read += total;
  AccountRoundTrip(FarOpKind::kScatterGather,
                   segs.empty() ? kObsNoNode : segs.front().node, ad, total,
                   std::max<size_t>(segs.size(), 1), 0, /*ok=*/true, queue_ns);
  return OkStatus();
}

Status FarClient::RGather(std::span<const FarSeg> iov,
                          std::span<std::byte> out) {
  uint64_t total = 0;
  for (const auto& seg : iov) {
    total += seg.len;
  }
  if (total > out.size()) {
    return InvalidArgument("rgather output buffer too small");
  }
  uint64_t queue_ns = 0;
  if (!iov.empty()) {
    FMDS_ASSIGN_OR_RETURN(auto loc0, fabric_->Translate(iov.front().addr));
    FMDS_ASSIGN_OR_RETURN(queue_ns,
                          AdmitCongestion(FarOpKind::kScatterGather, loc0.node,
                                          iov.front().addr, iov.size(), total));
  }
  size_t produced = 0;
  uint64_t messages = 0;
  NodeId first_node = kObsNoNode;
  for (const auto& far : iov) {
    std::vector<Fabric::Segment> segs;
    FMDS_RETURN_IF_ERROR(fabric_->Segments(far.addr, far.len, segs));
    size_t inner = 0;
    for (const auto& seg : segs) {
      if (first_node == kObsNoNode) {
        first_node = seg.node;
      }
      fabric_->node(seg.node).ReadRange(
          seg.offset,
          out.subspan(produced + inner, static_cast<size_t>(seg.len)));
      inner += static_cast<size_t>(seg.len);
    }
    produced += static_cast<size_t>(far.len);
    messages += segs.size();
  }
  stats_.bytes_read += total;
  // One client round trip: the adapter issues the segment reads concurrently.
  AccountRoundTrip(FarOpKind::kScatterGather, first_node,
                   iov.empty() ? kNullFarAddr : iov.front().addr, total,
                   std::max<uint64_t>(messages, 1), 0, /*ok=*/true, queue_ns);
  return OkStatus();
}

Status FarClient::WScatter(std::span<const FarSeg> iov,
                           std::span<const std::byte> src) {
  uint64_t total = 0;
  for (const auto& seg : iov) {
    total += seg.len;
  }
  if (total > src.size()) {
    return InvalidArgument("wscatter source buffer too small");
  }
  uint64_t queue_ns = 0;
  if (!iov.empty()) {
    FMDS_ASSIGN_OR_RETURN(auto loc0, fabric_->Translate(iov.front().addr));
    FMDS_ASSIGN_OR_RETURN(queue_ns,
                          AdmitCongestion(FarOpKind::kScatterGather, loc0.node,
                                          iov.front().addr, iov.size(), total));
  }
  size_t consumed = 0;
  uint64_t messages = 0;
  NodeId first_node = kObsNoNode;
  for (const auto& far : iov) {
    std::vector<Fabric::Segment> segs;
    FMDS_RETURN_IF_ERROR(fabric_->Segments(far.addr, far.len, segs));
    size_t inner = 0;
    for (const auto& seg : segs) {
      if (first_node == kObsNoNode) {
        first_node = seg.node;
      }
      fabric_->node(seg.node).WriteRange(
          seg.offset,
          src.subspan(consumed + inner, static_cast<size_t>(seg.len)),
          clock_.now_ns());
      inner += static_cast<size_t>(seg.len);
    }
    consumed += static_cast<size_t>(far.len);
    messages += segs.size();
  }
  stats_.bytes_written += total;
  AccountRoundTrip(FarOpKind::kScatterGather, first_node,
                   iov.empty() ? kNullFarAddr : iov.front().addr, total,
                   std::max<uint64_t>(messages, 1), 0, /*ok=*/true, queue_ns);
  return OkStatus();
}

Status FarClient::WGather(FarAddr ad, std::span<const ConstLocalBuf> iov) {
  const uint64_t total = TotalLen(iov);
  std::vector<std::byte> staging(total);
  size_t cursor = 0;
  for (const auto& buf : iov) {
    std::memcpy(staging.data() + cursor, buf.data, buf.len);
    cursor += buf.len;
  }
  std::vector<Fabric::Segment> segs;
  FMDS_RETURN_IF_ERROR(fabric_->Segments(ad, total, segs));
  FMDS_ASSIGN_OR_RETURN(
      const uint64_t queue_ns,
      AdmitCongestion(FarOpKind::kScatterGather,
                      segs.empty() ? kObsNoNode : segs.front().node, ad,
                      std::max<size_t>(segs.size(), 1), total));
  size_t consumed = 0;
  for (const auto& seg : segs) {
    fabric_->node(seg.node).WriteRange(
        seg.offset,
        std::span<const std::byte>(staging)
            .subspan(consumed, static_cast<size_t>(seg.len)),
        clock_.now_ns());
    consumed += static_cast<size_t>(seg.len);
  }
  stats_.bytes_written += total;
  AccountRoundTrip(FarOpKind::kScatterGather,
                   segs.empty() ? kObsNoNode : segs.front().node, ad, total,
                   std::max<size_t>(segs.size(), 1), 0, /*ok=*/true, queue_ns);
  return OkStatus();
}

Status FarClient::CasBatch(std::span<const CasTarget> targets,
                           std::span<uint64_t> observed) {
  if (observed.size() < targets.size()) {
    return InvalidArgument("cas batch result buffer too small");
  }
  uint64_t queue_ns = 0;
  if (!targets.empty()) {
    FMDS_ASSIGN_OR_RETURN(auto loc0, fabric_->Translate(targets.front().addr));
    FMDS_ASSIGN_OR_RETURN(
        queue_ns, AdmitCongestion(FarOpKind::kCasBatch, loc0.node,
                                  targets.front().addr, targets.size(),
                                  targets.size() * 2 * kWordSize));
  }
  NodeId first_node = kObsNoNode;
  for (size_t i = 0; i < targets.size(); ++i) {
    const CasTarget& target = targets[i];
    if (!IsWordAligned(target.addr)) {
      return InvalidArgument("unaligned CAS in batch");
    }
    FMDS_ASSIGN_OR_RETURN(auto loc, fabric_->Translate(target.addr));
    if (first_node == kObsNoNode) {
      first_node = loc.node;
    }
    observed[i] = fabric_->node(loc.node).CompareSwapWord(
        loc.offset, target.expected, target.desired, clock_.now_ns());
  }
  stats_.bytes_written += targets.size() * kWordSize;
  stats_.bytes_read += targets.size() * kWordSize;
  AccountRoundTrip(FarOpKind::kCasBatch, first_node,
                   targets.empty() ? kNullFarAddr : targets.front().addr,
                   targets.size() * 2 * kWordSize,
                   std::max<size_t>(targets.size(), 1), 0, /*ok=*/true,
                   queue_ns);
  return OkStatus();
}

// ------------------------- Async batched pipeline -------------------------

FarClient::OpId FarClient::Enqueue(PendingOp op) {
  op.id = next_op_id_++;
  const OpId id = op.id;
  issue_queue_.push_back(std::move(op));
  return id;
}

FarClient::OpId FarClient::PostRead(FarAddr addr, std::span<std::byte> out) {
  PendingOp op;
  op.kind = OpKind::kRead;
  op.addr = addr;
  op.out = out;
  return Enqueue(std::move(op));
}

FarClient::OpId FarClient::PostWrite(FarAddr addr,
                                     std::span<const std::byte> data) {
  PendingOp op;
  op.kind = OpKind::kWrite;
  op.addr = addr;
  op.payload.assign(data.begin(), data.end());
  return Enqueue(std::move(op));
}

FarClient::OpId FarClient::PostReadWord(FarAddr addr) {
  PendingOp op;
  op.kind = OpKind::kReadWord;
  op.addr = addr;
  return Enqueue(std::move(op));
}

FarClient::OpId FarClient::PostWriteWord(FarAddr addr, uint64_t value) {
  PendingOp op;
  op.kind = OpKind::kWriteWord;
  op.addr = addr;
  op.arg0 = value;
  return Enqueue(std::move(op));
}

FarClient::OpId FarClient::PostCompareSwap(FarAddr addr, uint64_t expected,
                                           uint64_t desired) {
  PendingOp op;
  op.kind = OpKind::kCas;
  op.addr = addr;
  op.arg0 = expected;
  op.arg1 = desired;
  return Enqueue(std::move(op));
}

FarClient::OpId FarClient::PostFetchAdd(FarAddr addr, uint64_t delta) {
  PendingOp op;
  op.kind = OpKind::kFetchAdd;
  op.addr = addr;
  op.arg0 = delta;
  return Enqueue(std::move(op));
}

FarClient::OpId FarClient::PostLoad0(FarAddr ad, std::span<std::byte> out) {
  PendingOp op;
  op.kind = OpKind::kLoad0;
  op.addr = ad;
  op.out = out;
  return Enqueue(std::move(op));
}

FarClient::OpId FarClient::PostRGather(std::vector<FarSeg> iov,
                                       std::span<std::byte> out) {
  PendingOp op;
  op.kind = OpKind::kRGather;
  op.iov = std::move(iov);
  op.out = out;
  return Enqueue(std::move(op));
}

Status FarClient::ExecuteBatchedOp(
    PendingOp& op, uint64_t* word,
    std::unordered_map<NodeId, BatchGroup>& groups, uint64_t* messages,
    uint64_t* fabric_ops, uint64_t* serial_ns, uint64_t* serial_rtts,
    BatchOpObs* obs) {
  // One node-group contribution: `msgs` fabric messages carrying
  // `payload_bytes` whose occupancy lands on `node`, plus forward hops.
  // Batch-path admission: one offer per op, no retry — a doorbell cannot
  // re-time individual sub-ops, so a shed surfaces as a kOverloaded
  // completion and the caller decides whether to re-post. The group waits
  // out the worst queueing delay among its admitted ops.
  auto admit = [&](NodeId node, uint64_t ops, uint64_t bytes) -> Status {
    FMDS_ASSIGN_OR_RETURN(const uint64_t queue_ns,
                          OfferOnce(node, ops, bytes));
    if (queue_ns > 0) {
      BatchGroup& group = groups[node];
      group.queue_ns = std::max(group.queue_ns, queue_ns);
    }
    return OkStatus();
  };
  auto charge = [&](NodeId node, uint64_t payload_bytes, uint64_t msgs,
                    uint64_t hops) {
    BatchGroup& group = groups[node];
    ++group.contribs;
    group.wire_ns +=
        ModelFor(node).per_byte_ns * static_cast<double>(payload_bytes);
    group.hops += hops;
    *messages += msgs;
    if (obs != nullptr && obs->node == kObsNoNode) {
      obs->node = node;  // primary node serviced (first charge)
    }
    if (obs != nullptr) {
      obs->bytes += payload_bytes;
    }
  };
  if (obs != nullptr) {
    obs->addr = op.addr;
    switch (op.kind) {
      case OpKind::kRead: obs->kind = FarOpKind::kRead; break;
      case OpKind::kWrite: obs->kind = FarOpKind::kWrite; break;
      case OpKind::kReadWord: obs->kind = FarOpKind::kReadWord; break;
      case OpKind::kWriteWord: obs->kind = FarOpKind::kWriteWord; break;
      case OpKind::kCas: obs->kind = FarOpKind::kCas; break;
      case OpKind::kFetchAdd: obs->kind = FarOpKind::kFetchAdd; break;
      case OpKind::kLoad0: obs->kind = FarOpKind::kIndirect; break;
      case OpKind::kRGather: obs->kind = FarOpKind::kScatterGather; break;
    }
  }

  switch (op.kind) {
    case OpKind::kRead: {
      std::vector<Fabric::Segment> segs;
      FMDS_RETURN_IF_ERROR(fabric_->Segments(op.addr, op.out.size(), segs));
      FMDS_RETURN_IF_ERROR(admit(segs.empty() ? kObsNoNode : segs.front().node,
                                 std::max<size_t>(segs.size(), 1),
                                 op.out.size()));
      size_t produced = 0;
      for (const auto& seg : segs) {
        fabric_->node(seg.node).ReadRange(
            seg.offset,
            op.out.subspan(produced, static_cast<size_t>(seg.len)));
        charge(seg.node, seg.len, 1, 0);
        produced += static_cast<size_t>(seg.len);
      }
      stats_.bytes_read += op.out.size();
      ++*fabric_ops;
      return OkStatus();
    }
    case OpKind::kWrite: {
      std::vector<Fabric::Segment> segs;
      FMDS_RETURN_IF_ERROR(
          fabric_->Segments(op.addr, op.payload.size(), segs));
      FMDS_RETURN_IF_ERROR(admit(segs.empty() ? kObsNoNode : segs.front().node,
                                 std::max<size_t>(segs.size(), 1),
                                 op.payload.size()));
      size_t consumed = 0;
      for (const auto& seg : segs) {
        fabric_->node(seg.node).WriteRange(
            seg.offset,
            std::span<const std::byte>(op.payload)
                .subspan(consumed, static_cast<size_t>(seg.len)),
            clock_.now_ns());
        charge(seg.node, seg.len, 1, 0);
        consumed += static_cast<size_t>(seg.len);
      }
      stats_.bytes_written += op.payload.size();
      ++*fabric_ops;
      return OkStatus();
    }
    case OpKind::kReadWord:
    case OpKind::kWriteWord:
    case OpKind::kCas:
    case OpKind::kFetchAdd: {
      if (!IsWordAligned(op.addr)) {
        return InvalidArgument("unaligned word op in batch");
      }
      FMDS_ASSIGN_OR_RETURN(auto loc, fabric_->Translate(op.addr));
      FMDS_RETURN_IF_ERROR(admit(loc.node, 1, kWordSize));
      MemoryNode& node = fabric_->node(loc.node);
      switch (op.kind) {
        case OpKind::kReadWord:
          *word = node.LoadWord(loc.offset);
          stats_.bytes_read += kWordSize;
          break;
        case OpKind::kWriteWord:
          node.StoreWord(loc.offset, op.arg0, clock_.now_ns());
          stats_.bytes_written += kWordSize;
          break;
        case OpKind::kCas:
          *word = node.CompareSwapWord(loc.offset, op.arg0, op.arg1,
                                       clock_.now_ns());
          stats_.bytes_read += kWordSize;
          stats_.bytes_written += kWordSize;
          break;
        default:  // OpKind::kFetchAdd
          *word = node.FetchAddWord(loc.offset, op.arg0, clock_.now_ns());
          stats_.bytes_read += kWordSize;
          stats_.bytes_written += kWordSize;
          break;
      }
      charge(loc.node, kWordSize, 1, 0);
      ++*fabric_ops;
      return OkStatus();
    }
    case OpKind::kLoad0: {
      if (!IsWordAligned(op.addr)) {
        return InvalidArgument("indirect pointer location must be word-aligned");
      }
      FMDS_ASSIGN_OR_RETURN(auto home, fabric_->Translate(op.addr));
      FMDS_RETURN_IF_ERROR(
          admit(home.node, 1, kWordSize + op.out.size()));
      MemoryNode& home_node = fabric_->node(home.node);
      home_node.stats().indirections.fetch_add(1, std::memory_order_relaxed);
      const FarAddr pointer = home_node.LoadWord(home.offset);
      if (pointer == kNullFarAddr) {
        // The round trip completed and found a null pointer.
        stats_.bytes_read += kWordSize;
        charge(home.node, kWordSize, 1, 0);
        ++*fabric_ops;
        return Status(StatusCode::kFailedPrecondition,
                      "null indirect pointer");
      }
      const uint64_t len = op.out.size();
      std::vector<Fabric::Segment> segs;
      Status seg_status = fabric_->Segments(pointer, len, segs);
      if (!seg_status.ok()) {
        stats_.bytes_read += kWordSize;
        charge(home.node, kWordSize, 1, 0);
        ++*fabric_ops;
        return seg_status;
      }
      uint64_t remote_hops = 0;
      for (const auto& seg : segs) {
        if (seg.node != home.node) {
          ++remote_hops;
        }
      }
      if (remote_hops > 0 &&
          fabric_->options().indirection == IndirectionPolicy::kError) {
        // §7.1 kError: the pointer bounces back inside the batch; the client
        // completes the read with a second round trip that cannot overlap
        // anything (it depends on this batch), so it is charged serially.
        stats_.bytes_read += kWordSize;
        charge(home.node, kWordSize, 1, 0);
        ++*fabric_ops;
        size_t produced = 0;
        for (const auto& seg : segs) {
          fabric_->node(seg.node).ReadRange(
              seg.offset,
              op.out.subspan(produced, static_cast<size_t>(seg.len)));
          produced += static_cast<size_t>(seg.len);
        }
        stats_.bytes_read += len;
        *messages += segs.size();
        *serial_ns += latency_.FarRoundTripNs(len);
        ++*serial_rtts;
        ++*fabric_ops;
        *word = pointer;
        return OkStatus();
      }
      if (remote_hops > 0) {
        home_node.stats().forwards.fetch_add(remote_hops,
                                             std::memory_order_relaxed);
      }
      size_t produced = 0;
      for (const auto& seg : segs) {
        fabric_->node(seg.node).ReadRange(
            seg.offset,
            op.out.subspan(produced, static_cast<size_t>(seg.len)));
        produced += static_cast<size_t>(seg.len);
      }
      stats_.bytes_read += len;
      charge(home.node, kWordSize + len, 1 + remote_hops, remote_hops);
      ++*fabric_ops;
      *word = pointer;
      return OkStatus();
    }
    case OpKind::kRGather: {
      uint64_t total = 0;
      for (const auto& far : op.iov) {
        total += far.len;
      }
      if (total > op.out.size()) {
        return InvalidArgument("rgather output buffer too small");
      }
      if (!op.iov.empty()) {
        FMDS_ASSIGN_OR_RETURN(auto loc0,
                              fabric_->Translate(op.iov.front().addr));
        FMDS_RETURN_IF_ERROR(admit(loc0.node, op.iov.size(), total));
      }
      size_t produced = 0;
      for (const auto& far : op.iov) {
        std::vector<Fabric::Segment> segs;
        FMDS_RETURN_IF_ERROR(fabric_->Segments(far.addr, far.len, segs));
        size_t inner = 0;
        for (const auto& seg : segs) {
          fabric_->node(seg.node).ReadRange(
              seg.offset,
              op.out.subspan(produced + inner,
                             static_cast<size_t>(seg.len)));
          charge(seg.node, seg.len, 1, 0);
          inner += static_cast<size_t>(seg.len);
        }
        produced += static_cast<size_t>(far.len);
      }
      stats_.bytes_read += total;
      ++*fabric_ops;
      return OkStatus();
    }
  }
  return Internal("bad batched op kind");
}

Status FarClient::Flush() {
  if (issue_queue_.empty()) {
    return OkStatus();
  }
  std::vector<PendingOp> batch;
  batch.swap(issue_queue_);
  std::unordered_map<NodeId, BatchGroup> groups;
  uint64_t messages = 0;
  uint64_t fabric_ops = 0;   // logical round trips the sync path would pay
  uint64_t serial_ns = 0;    // dependent second accesses (kError policy)
  uint64_t serial_rtts = 0;
  const bool observing = obs_.recording();
  std::vector<BatchOpObs> op_obs;
  if (observing) {
    op_obs.resize(batch.size());
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    PendingOp& op = batch[i];
    Completion completion;
    completion.id = op.id;
    uint64_t word = 0;
    completion.status = ExecuteBatchedOp(op, &word, groups, &messages,
                                         &fabric_ops, &serial_ns,
                                         &serial_rtts,
                                         observing ? &op_obs[i] : nullptr);
    completion.word = word;
    if (observing) {
      op_obs[i].ok = completion.status.ok();
    }
    completion_queue_.push_back(std::move(completion));
  }
  // One doorbell: per-node groups proceed in parallel; the client waits for
  // the slowest, then for any serialized dependent accesses.
  uint64_t batch_ns = 0;
  for (const auto& [node, group] : groups) {
    const LatencyModel& model = ModelFor(node);
    if (group.contribs == 0) {
      // Admitted op that failed before any memory effect (e.g. a bad range
      // in a gather): its queueing delay was still paid.
      batch_ns = std::max(batch_ns, group.queue_ns);
      continue;
    }
    const uint64_t cost =
        model.far_base_ns + static_cast<uint64_t>(group.wire_ns) +
        (group.contribs - 1) * model.batch_op_ns +
        group.hops * latency_.node_hop_ns +
        // A slowed node services each of its sub-batch ops slower.
        group.contribs * fabric_->node(node).extra_service_ns() +
        // Congestion (§14): the group waits out its worst queueing delay.
        group.queue_ns;
    batch_ns = std::max(batch_ns, cost);
  }
  ++stats_.batches;
  stats_.batched_ops += batch.size();
  stats_.messages += messages;
  const uint64_t waited_rtts = (groups.empty() ? 0 : 1) + serial_rtts;
  stats_.far_ops += waited_rtts;
  if (fabric_ops > waited_rtts) {
    stats_.overlapped_rtts_saved += fabric_ops - waited_rtts;
  }
  if (groups.size() > 1) {
    // §7 fan-out: G per-node doorbells overlapped into one wait. A client
    // that issued node sub-batches one at a time would wait G round trips.
    ++stats_.fanout_batches;
    stats_.cross_node_rtts_saved += groups.size() - 1;
  }
  const uint64_t start_ns = clock_.now_ns();
  const uint64_t total_ns = batch_ns + serial_ns;
  clock_.Advance(total_ns);
  if (observing && !op_obs.empty()) {
    // Flight recorder: the doorbell is one span [start, start+total]; each
    // op inside gets an equal latency share, remainder on the first op, so
    // the shares tile the span exactly and sum to the clock delta (the
    // batched counterpart of "per-lookup share of the batch's simulated
    // time" the benches report).
    const uint64_t batch_id = obs_.NextBatchId();
    const uint64_t k = op_obs.size();
    const uint64_t share = total_ns / k;
    uint64_t total_bytes = 0;
    bool all_ok = true;
    for (const BatchOpObs& o : op_obs) {
      total_bytes += o.bytes;
      all_ok = all_ok && o.ok;
    }
    obs_.RecordOp(FarOpKind::kBatch, kObsNoNode, kNullFarAddr, total_bytes,
                  start_ns, total_ns, all_ok, batch_id);
    uint64_t cursor = start_ns;
    for (size_t i = 0; i < op_obs.size(); ++i) {
      const BatchOpObs& o = op_obs[i];
      const uint64_t op_ns =
          (i == 0) ? total_ns - share * (k - 1) : share;
      obs_.RecordOp(o.kind, o.node, o.addr, o.bytes, cursor, op_ns, o.ok,
                    batch_id);
      cursor += op_ns;
    }
  }
  return OkStatus();
}

std::optional<FarClient::Completion> FarClient::Poll() {
  AccountNear(1);  // completion-queue check
  if (completion_queue_.empty()) {
    return std::nullopt;
  }
  Completion completion = std::move(completion_queue_.front());
  completion_queue_.pop_front();
  return completion;
}

Status FarClient::WaitAll(std::vector<Completion>* out) {
  FMDS_RETURN_IF_ERROR(Flush());
  AccountNear(1);
  Status first = OkStatus();
  while (!completion_queue_.empty()) {
    Completion completion = std::move(completion_queue_.front());
    completion_queue_.pop_front();
    if (first.ok() && !completion.status.ok()) {
      first = completion.status;
    }
    if (out != nullptr) {
      out->push_back(std::move(completion));
    }
  }
  return first;
}

// ------------------------------ Notifications ------------------------------

Result<SubId> FarClient::Subscribe(const NotifySpec& spec,
                                   uint64_t* snapshot) {
  if (!IsWordAligned(spec.addr) || spec.len == 0) {
    return Status(StatusCode::kInvalidArgument,
                  "subscription must be word-aligned and non-empty");
  }
  FMDS_ASSIGN_OR_RETURN(auto loc, fabric_->Translate(spec.addr));
  const SubId id = fabric_->NextSubId();
  Status st = fabric_->node(loc.node).Subscribe(loc.offset, spec, &channel_,
                                                id, snapshot);
  if (!st.ok()) {
    return st;
  }
  sub_homes_[id] = loc.node;
  // Subscription setup message (the read-and-arm snapshot rides the reply).
  AccountRoundTrip(FarOpKind::kNotification, loc.node, spec.addr, kWordSize, 1,
                   0);
  return id;
}

Result<SubId> FarClient::Subscribe(const NotifySpec& spec,
                                   NotificationSink* sink,
                                   uint64_t* snapshot) {
  FMDS_ASSIGN_OR_RETURN(SubId id, Subscribe(spec, snapshot));
  if (sink != nullptr) {
    sinks_[id] = sink;
  }
  return id;
}

Status FarClient::Unsubscribe(SubId id) {
  auto it = sub_homes_.find(id);
  if (it == sub_homes_.end()) {
    return NotFound("unknown subscription");
  }
  const NodeId node = it->second;  // captured before erase invalidates it
  fabric_->node(node).Unsubscribe(id);
  sub_homes_.erase(it);
  sinks_.erase(id);
  AccountRoundTrip(FarOpKind::kNotification, node, kNullFarAddr, kWordSize, 1,
                   0);
  return OkStatus();
}

Status FarClient::UnsubscribeAt(FarAddr watch_addr, SubId id) {
  FMDS_ASSIGN_OR_RETURN(auto loc, fabric_->Translate(watch_addr));
  fabric_->node(loc.node).Unsubscribe(id);
  AccountRoundTrip(FarOpKind::kNotification, loc.node, kNullFarAddr, kWordSize,
                   1, 0);
  return OkStatus();
}

void FarClient::ForgetSubscription(SubId id) {
  sub_homes_.erase(id);
  sinks_.erase(id);
  // Remember the id so events already queued for it are dropped at dispatch
  // instead of accumulating in the poll-style park (where enough of them
  // would overflow into a spurious loss warning). Bounded: an id aged out
  // degrades to the park path, which is still correct.
  constexpr size_t kForgottenCap = 256;
  if (forgotten_subs_.size() >= kForgottenCap) {
    forgotten_subs_.pop_front();
  }
  forgotten_subs_.push_back(id);
}

size_t FarClient::DispatchNotifications() {
  // Empty-channel check is free: the queue head is client-local state the
  // caller touches on every op anyway; charging here would tax every cached
  // operation for coherence traffic that never arrived.
  if (channel_.size() == 0) {
    return 0;
  }
  AccountNear(1);
  size_t routed = 0;
  for (NotifyEvent& ev : channel_.Drain()) {
    // Stats and obs are charged at the point of delivery, never at parking:
    // a parked event is counted by the PollNotification()/WaitNotification()
    // call that consumes it. Counting the drain itself would tally parked
    // events twice whenever dispatch coexists with poll-style subscriptions
    // (e.g. the near cache plus the HT-tree's split watch).
    if (ev.kind == NotifyEventKind::kLossWarning) {
      // No sub_id: an unknown number of events for unknown subscriptions
      // were dropped. Every sink must assume the worst, and poll-style
      // subscribers still need to see the warning too — the warning is
      // parked for them and counted when they consume it.
      std::unordered_set<NotificationSink*> seen;
      for (const auto& [sub, sink] : sinks_) {
        if (seen.insert(sink).second) {
          sink->OnNotify(ev);
          ++routed;
        }
      }
      ParkEvent(std::move(ev));
      continue;
    }
    auto it = sinks_.find(ev.sub_id);
    if (it != sinks_.end()) {
      ++stats_.notifications;
      if (obs_.recording()) {
        obs_.RecordOp(FarOpKind::kNotification, kObsNoNode, ev.addr, ev.len,
                      clock_.now_ns(), 0, true);
      }
      it->second->OnNotify(ev);
      ++routed;
    } else if (!forgotten_subs_.empty() &&
               std::find(forgotten_subs_.begin(), forgotten_subs_.end(),
                         ev.sub_id) != forgotten_subs_.end()) {
      // Late event for a background-retired subscription: drop it.
    } else {
      ParkEvent(std::move(ev));
    }
  }
  return routed;
}

void FarClient::ParkEvent(NotifyEvent ev) {
  // The park inherits the channel's bound: a dispatcher that never polls
  // its poll-style events must not grow memory without limit. Overflow
  // degrades exactly like the channel does — drop everything parked and
  // leave a single loss warning.
  if (parked_events_.size() >= channel_capacity_) {
    parked_events_.clear();
    NotifyEvent loss;
    loss.kind = NotifyEventKind::kLossWarning;
    loss.publish_ns = ev.publish_ns;
    parked_events_.push_back(std::move(loss));
    return;
  }
  parked_events_.push_back(std::move(ev));
}

std::optional<NotifyEvent> FarClient::PollNotification() {
  AccountNear(1);
  if (!parked_events_.empty()) {
    NotifyEvent ev = std::move(parked_events_.front());
    parked_events_.pop_front();
    ++stats_.notifications;
    if (obs_.recording()) {
      obs_.RecordOp(FarOpKind::kNotification, kObsNoNode, ev.addr, ev.len,
                    clock_.now_ns(), 0, true);
    }
    return ev;
  }
  auto ev = channel_.Poll();
  if (ev.has_value()) {
    ++stats_.notifications;
    if (obs_.recording()) {
      // Delivery already happened on the node side; a poll that drains the
      // channel costs the client only the near access charged above.
      obs_.RecordOp(FarOpKind::kNotification, kObsNoNode, ev->addr, ev->len,
                    clock_.now_ns(), 0, true);
    }
  }
  return ev;
}

Result<NotifyEvent> FarClient::WaitNotification(uint64_t timeout_ms) {
  // Monotonic budget (immune to wall-clock steps) stretched under
  // sanitizer builds, where the poll loop itself runs an order of
  // magnitude slower.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(timeout_ms * kWaitBudgetScale);
  while (std::chrono::steady_clock::now() < deadline) {
    std::optional<NotifyEvent> ev;
    if (!parked_events_.empty()) {
      ev = std::move(parked_events_.front());
      parked_events_.pop_front();
    } else {
      ev = channel_.Poll();
    }
    if (ev.has_value()) {
      ++stats_.notifications;
      AccountNear(1);
      const uint64_t start_ns = clock_.now_ns();
      clock_.Advance(latency_.notify_delay_ns);
      if (obs_.recording()) {
        obs_.RecordOp(FarOpKind::kNotification, kObsNoNode, ev->addr, ev->len,
                      start_ns, latency_.notify_delay_ns, true);
      }
      return *std::move(ev);
    }
    std::this_thread::yield();
  }
  return Status(StatusCode::kUnavailable, "notification wait timed out");
}

// ------------------------------- Accounting -------------------------------

void FarClient::Fence() {
  // Synchronous ops already execute in program order; posted async ops are
  // submitted here so nothing issued before the fence can reorder past it.
  // Costs one near access (completion-queue check) on top of the flush.
  (void)Flush();
  AccountNear(1);
}

void FarClient::AccountNear(uint64_t accesses) {
  stats_.near_ops += accesses;
  clock_.Advance(accesses * latency_.near_ns);
}

Status FarClient::PostWriteBackground(FarAddr addr,
                                      std::span<const std::byte> data) {
  std::vector<Fabric::Segment> segs;
  FMDS_RETURN_IF_ERROR(fabric_->Segments(addr, data.size(), segs));
  size_t consumed = 0;
  for (const auto& seg : segs) {
    fabric_->node(seg.node).WriteRange(
        seg.offset, data.subspan(consumed, static_cast<size_t>(seg.len)),
        clock_.now_ns());
    consumed += static_cast<size_t>(seg.len);
  }
  ++stats_.background_ops;
  stats_.messages += std::max<size_t>(segs.size(), 1);
  stats_.bytes_written += data.size();
  if (obs_.recording()) {
    // Fire-and-forget: the client clock does not wait, so latency is 0.
    obs_.RecordOp(FarOpKind::kBackground,
                  segs.empty() ? kObsNoNode : segs.front().node, addr,
                  data.size(), clock_.now_ns(), 0, true);
  }
  return OkStatus();
}

Status FarClient::PostWriteWordBackground(FarAddr addr, uint64_t value) {
  uint64_t v = value;
  return PostWriteBackground(addr, AsConstBytes(v));
}

Result<uint64_t> FarClient::ReadWordBackground(FarAddr addr) {
  if (!IsWordAligned(addr)) {
    return Status(StatusCode::kInvalidArgument, "unaligned word read");
  }
  FMDS_ASSIGN_OR_RETURN(auto loc, fabric_->Translate(addr));
  const uint64_t value = fabric_->node(loc.node).LoadWord(loc.offset);
  ++stats_.background_ops;
  ++stats_.messages;
  stats_.bytes_read += kWordSize;
  if (obs_.recording()) {
    obs_.RecordOp(FarOpKind::kBackground, loc.node, addr, kWordSize,
                  clock_.now_ns(), 0, true);
  }
  return value;
}

}  // namespace fmds
