#include "src/fabric/notification.h"

#include <algorithm>

namespace fmds {

void NotificationChannel::Publish(NotifyEvent event, bool coalesce) {
  std::lock_guard<std::mutex> lock(mu_);
  ++published_;
  if (coalesce && event.kind == NotifyEventKind::kChanged) {
    auto it = pending_index_.find(event.sub_id);
    if (it != pending_index_.end() && it->second < queue_.size()) {
      NotifyEvent& queued = queue_[it->second];
      if (queued.sub_id == event.sub_id &&
          queued.kind == NotifyEventKind::kChanged) {
        // Merge: extend the covered range, keep the freshest payload.
        const FarAddr lo = std::min(queued.addr, event.addr);
        const FarAddr hi =
            std::max(queued.addr + queued.len, event.addr + event.len);
        queued.addr = lo;
        queued.len = hi - lo;
        queued.publish_ns = std::max(queued.publish_ns, event.publish_ns);
        queued.coalesced += 1 + event.coalesced;
        queued.word = event.word;  // latest write wins
        if (!event.data.empty()) {
          queued.data = std::move(event.data);
        }
        ++coalesced_;
        return;
      }
    }
  }
  if (queue_.size() >= capacity_) {
    // Overflow: drop the event, remember to surface a single loss warning.
    ++overflow_lost_;
    if (!loss_pending_) {
      loss_pending_ = true;
      NotifyEvent warn;
      warn.kind = NotifyEventKind::kLossWarning;
      warn.publish_ns = event.publish_ns;
      // Replace the oldest queued event so the warning is guaranteed to fit.
      if (!queue_.empty()) {
        queue_.pop_front();
        // Indices into queue_ shifted; rebuild the coalescing index.
        pending_index_.clear();
        for (size_t i = 0; i < queue_.size(); ++i) {
          pending_index_[queue_[i].sub_id] = i;
        }
      }
      queue_.push_back(std::move(warn));
    }
    return;
  }
  if (coalesce) {
    pending_index_[event.sub_id] = queue_.size();
  }
  queue_.push_back(std::move(event));
}

std::optional<NotifyEvent> NotificationChannel::Poll() {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.empty()) {
    return std::nullopt;
  }
  NotifyEvent ev = std::move(queue_.front());
  queue_.pop_front();
  if (ev.kind == NotifyEventKind::kLossWarning) {
    loss_pending_ = false;
  }
  // Indices shifted by one; rebuild lazily only when small, else clear
  // (coalescing is an optimization, correctness never depends on it).
  pending_index_.clear();
  for (size_t i = 0; i < queue_.size(); ++i) {
    pending_index_[queue_[i].sub_id] = i;
  }
  return ev;
}

std::vector<NotifyEvent> NotificationChannel::Drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<NotifyEvent> out(std::make_move_iterator(queue_.begin()),
                               std::make_move_iterator(queue_.end()));
  queue_.clear();
  pending_index_.clear();
  loss_pending_ = false;
  return out;
}

size_t NotificationChannel::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

uint64_t NotificationChannel::published() const {
  std::lock_guard<std::mutex> lock(mu_);
  return published_;
}

uint64_t NotificationChannel::overflow_lost() const {
  std::lock_guard<std::mutex> lock(mu_);
  return overflow_lost_;
}

uint64_t NotificationChannel::coalesced() const {
  std::lock_guard<std::mutex> lock(mu_);
  return coalesced_;
}

void SubscriptionTable::Add(uint64_t node_offset, const NotifySpec& spec,
                            NotificationChannel* channel, SubId id) {
  auto sub = std::make_unique<Subscription>();
  sub->id = id;
  sub->spec = spec;
  sub->node_offset = node_offset;
  sub->channel = channel;
  sub->drop_rng.Seed(0x1005ULL * id + 17);
  Subscription* raw = sub.get();
  subs_[id] = std::move(sub);
  by_page_[PageIndexOf(node_offset)].push_back(raw);
}

bool SubscriptionTable::Remove(SubId id) {
  auto it = subs_.find(id);
  if (it == subs_.end()) {
    return false;
  }
  const uint64_t page = PageIndexOf(it->second->node_offset);
  auto page_it = by_page_.find(page);
  if (page_it != by_page_.end()) {
    auto& vec = page_it->second;
    vec.erase(std::remove(vec.begin(), vec.end(), it->second.get()),
              vec.end());
    if (vec.empty()) {
      by_page_.erase(page_it);
    }
  }
  subs_.erase(it);
  return true;
}

void SubscriptionTable::Collect(uint64_t offset, uint64_t len,
                                std::vector<Subscription*>& out) {
  const uint64_t first_page = PageIndexOf(offset);
  const uint64_t last_page = PageIndexOf(offset + (len == 0 ? 0 : len - 1));
  for (uint64_t page = first_page; page <= last_page; ++page) {
    auto it = by_page_.find(page);
    if (it == by_page_.end()) {
      continue;
    }
    for (Subscription* sub : it->second) {
      const uint64_t sub_lo = sub->node_offset;
      const uint64_t sub_hi = sub_lo + sub->spec.len;
      if (offset < sub_hi && sub_lo < offset + len) {
        out.push_back(sub);
      }
    }
  }
}

}  // namespace fmds
