// One far-memory node: a slab of word-addressable memory plus the memory-side
// logic the paper's hardware extensions require (fabric-level atomics,
// page-indexed notification subscriptions).
//
// Concurrency model: word operations are lock-free via std::atomic_ref on the
// 8-byte-aligned backing store, so they are atomic "at the fabric level,
// bypassing the processor caches" (§2) with respect to every other fabric
// operation. Byte-range writes merge partial edge words with CAS loops so
// they never corrupt concurrent word atomics. The subscription table is
// guarded by a mutex taken only when subscriptions exist on the node.
#ifndef FMDS_SRC_FABRIC_MEMORY_NODE_H_
#define FMDS_SRC_FABRIC_MEMORY_NODE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "src/common/status.h"
#include "src/fabric/far_addr.h"
#include "src/fabric/notification.h"
#include "src/fabric/stats.h"
#include "src/sim/congestion.h"

namespace fmds {

class MemoryNode {
 public:
  MemoryNode(NodeId id, uint64_t capacity_bytes,
             const CongestionOptions& congestion = {});
  MemoryNode(const MemoryNode&) = delete;
  MemoryNode& operator=(const MemoryNode&) = delete;

  NodeId id() const { return id_; }
  uint64_t capacity() const { return capacity_; }

  // --- Word operations (offset must be word-aligned and in range). ---
  uint64_t LoadWord(uint64_t offset);
  void StoreWord(uint64_t offset, uint64_t value, uint64_t now_ns);
  // Returns the previous value; publishes a change only if the swap happened.
  uint64_t CompareSwapWord(uint64_t offset, uint64_t expected,
                           uint64_t desired, uint64_t now_ns);
  uint64_t FetchAddWord(uint64_t offset, uint64_t delta, uint64_t now_ns);

  // --- Byte-range operations. ---
  void ReadRange(uint64_t offset, std::span<std::byte> out);
  void WriteRange(uint64_t offset, std::span<const std::byte> data,
                  uint64_t now_ns);

  // --- Notifications (§4.3). ---
  // spec.addr is the global address; `offset` its node-local location.
  // Read-and-arm: if `snapshot` is non-null it receives the value of the
  // range's first word, read inside the same critical section that
  // registers the subscription. Writers publish under that lock too, so a
  // concurrent write is either visible in the snapshot or delivered as a
  // notification — never silently lost in between. Subscribers that cached
  // a value read *before* subscribing compare the snapshot against what
  // they read to detect a write that raced the registration.
  Status Subscribe(uint64_t offset, const NotifySpec& spec,
                   NotificationChannel* channel, SubId id,
                   uint64_t* snapshot = nullptr);
  bool Unsubscribe(SubId id);
  size_t subscription_count() const {
    return subs_active_.load(std::memory_order_relaxed);
  }

  NodeStats& stats() { return stats_; }

  // --- Fault/contention injection (E15 load-shift scenario). ---
  // Extra service time charged per round trip (and per batched sub-op)
  // serviced by this node. Models a hot or degraded node so rolling
  // telemetry (RecentP99, NodeLoadEwma) has a real signal to track. Settable
  // from any thread; clients read it when they account a round trip.
  void set_extra_service_ns(uint64_t ns) {
    extra_service_ns_.store(ns, std::memory_order_relaxed);
  }
  uint64_t extra_service_ns() const {
    return extra_service_ns_.load(std::memory_order_relaxed);
  }

  // --- Congestion front end (DESIGN.md §14). ---
  // Offers `ops` operations carrying `bytes` payload to this node's bounded
  // service queue. FarClient calls this BEFORE executing memory effects: a
  // shed operation must not have happened. On admit, queue_ns is the
  // load-dependent delay the client folds into the round trip; on shed the
  // node's ops_shed stat bumps and the client surfaces kOverloaded.
  AdmissionOutcome OfferLoad(uint64_t now_ns, uint64_t ops, uint64_t bytes) {
    AdmissionOutcome outcome = service_queue_.Offer(now_ns, ops, bytes);
    if (!outcome.admitted) {
      stats_.ops_shed.fetch_add(ops, std::memory_order_relaxed);
    }
    return outcome;
  }
  bool congestion_enabled() const { return service_queue_.enabled(); }
  // Runtime reconfiguration (scenario phases: slowdown, recovery). Safe
  // from any thread.
  void SetCongestion(const CongestionOptions& options) {
    service_queue_.SetOptions(options);
  }
  CongestionOptions congestion() const { return service_queue_.GetOptions(); }
  // Live gauges for DumpHealth / telemetry: ops waiting for service, and
  // pending front-end work, at the queue's virtual present.
  uint64_t queue_depth_ops() const { return service_queue_.DepthOps(); }
  uint64_t queue_backlog_ns() const { return service_queue_.BacklogNs(); }

 private:
  std::atomic_ref<uint64_t> WordRef(uint64_t offset) {
    return std::atomic_ref<uint64_t>(words_[offset / kWordSize]);
  }

  // Fires subscriptions intersecting the written range.
  void PublishWrite(uint64_t offset, uint64_t len, uint64_t now_ns);

  NodeId id_;
  uint64_t capacity_;
  std::vector<uint64_t> words_;

  std::mutex sub_mu_;
  SubscriptionTable subs_;
  std::atomic<size_t> subs_active_{0};
  std::atomic<uint64_t> extra_service_ns_{0};
  ServiceQueue service_queue_;
  NodeStats stats_;
};

}  // namespace fmds

#endif  // FMDS_SRC_FABRIC_MEMORY_NODE_H_
