// Operation accounting. §3.1: "the key performance metric for far memory
// data structures is far memory accesses" — these counters are the
// experiment's ground truth, independent of wall-clock noise.
#ifndef FMDS_SRC_FABRIC_STATS_H_
#define FMDS_SRC_FABRIC_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace fmds {

// Per-client counters. A FarClient is owned by one application thread, so
// these are plain integers (no synchronization cost on the hot path).
struct ClientStats {
  uint64_t far_ops = 0;         // one-sided round trips issued
  uint64_t messages = 0;        // fabric messages (segments, forward hops)
  uint64_t bytes_read = 0;      // payload bytes moved far -> client
  uint64_t bytes_written = 0;   // payload bytes moved client -> far
  uint64_t near_ops = 0;        // local (client cache) accesses accounted
  uint64_t rpc_calls = 0;       // two-sided calls (baselines)
  uint64_t notifications = 0;   // notification events consumed
  uint64_t slow_path_ops = 0;   // data-structure slow-path entries
  uint64_t background_ops = 0;  // far ops posted off the critical path
  // Async pipeline (doorbell batching): far_ops counts round-trip latencies
  // the client serially waited for, so a flushed batch of k independent ops
  // bumps far_ops once and these three record the pipelining.
  uint64_t batches = 0;               // Flush() doorbells issued
  uint64_t batched_ops = 0;           // ops carried inside those batches
  uint64_t overlapped_rtts_saved = 0; // round trips overlapped vs sync path
  // Cross-node fan-out (§7 scale-out): a flushed batch whose ops span
  // several memory nodes issues the per-node sub-batches concurrently and
  // waits for the slowest node, not the sum.
  uint64_t fanout_batches = 0;        // flushes that spanned > 1 node
  uint64_t cross_node_rtts_saved = 0; // node doorbells overlapped vs
                                      // one-node-at-a-time issue (G-1 each)
  // NearCache (src/cache/): a hit replaces a far round trip with a near
  // access; an invalidation is a notification-driven entry kill.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_invalidations = 0;
  // Optimistic multi-key transactions (src/core/txn.*): commit/abort
  // outcomes and the reason a commit attempt died. abort rate =
  // txn_aborts / (txn_commits + txn_aborts).
  uint64_t txn_commits = 0;
  uint64_t txn_aborts = 0;
  uint64_t txn_validate_fails = 0;  // read-set word changed under the txn
  uint64_t txn_prepare_fails = 0;   // write-set bucket CAS mispredicted
  // Write-behind dataplane (src/core/write_behind.*): the app thread
  // enqueues; a flusher thread publishes. writes_combined counts pending
  // writes absorbed by a newer write to the same key before any doorbell
  // (app client); flush_stages counts pipeline stage executions by the
  // flusher (coalesce / publish / refill passes, flusher client);
  // bg_evictions counts cache entries reclaimed off the hot path by a
  // background evictor (evictor client).
  uint64_t writes_combined = 0;
  uint64_t flush_stages = 0;
  uint64_t bg_evictions = 0;
  // Adaptive dataplane routing (src/route/): per-op decisions between the
  // one-sided fabric path and shipping the op to the node's near-memory RPC
  // agent. Probes are decisions deliberately sent down the currently
  // non-preferred path to keep its estimate fresh; flips count changes of
  // the preferred path (a crossover crossing that beat the hysteresis band).
  uint64_t route_one_sided = 0;
  uint64_t route_rpc = 0;
  uint64_t route_probes = 0;
  uint64_t route_flips = 0;
  // Congestion control (DESIGN.md §14): sheds counts kOverloaded bounces
  // this client observed (each one a completed, failed round trip);
  // retries counts backoff re-offers the retry policy took; failures
  // counts operations that surfaced kOverloaded to the caller after the
  // policy gave up.
  uint64_t overload_sheds = 0;
  uint64_t overload_retries = 0;
  uint64_t overload_failures = 0;

  ClientStats Delta(const ClientStats& earlier) const {
    ClientStats d;
    d.far_ops = far_ops - earlier.far_ops;
    d.messages = messages - earlier.messages;
    d.bytes_read = bytes_read - earlier.bytes_read;
    d.bytes_written = bytes_written - earlier.bytes_written;
    d.near_ops = near_ops - earlier.near_ops;
    d.rpc_calls = rpc_calls - earlier.rpc_calls;
    d.notifications = notifications - earlier.notifications;
    d.slow_path_ops = slow_path_ops - earlier.slow_path_ops;
    d.background_ops = background_ops - earlier.background_ops;
    d.batches = batches - earlier.batches;
    d.batched_ops = batched_ops - earlier.batched_ops;
    d.overlapped_rtts_saved =
        overlapped_rtts_saved - earlier.overlapped_rtts_saved;
    d.fanout_batches = fanout_batches - earlier.fanout_batches;
    d.cross_node_rtts_saved =
        cross_node_rtts_saved - earlier.cross_node_rtts_saved;
    d.cache_hits = cache_hits - earlier.cache_hits;
    d.cache_misses = cache_misses - earlier.cache_misses;
    d.cache_invalidations = cache_invalidations - earlier.cache_invalidations;
    d.txn_commits = txn_commits - earlier.txn_commits;
    d.txn_aborts = txn_aborts - earlier.txn_aborts;
    d.txn_validate_fails = txn_validate_fails - earlier.txn_validate_fails;
    d.txn_prepare_fails = txn_prepare_fails - earlier.txn_prepare_fails;
    d.writes_combined = writes_combined - earlier.writes_combined;
    d.flush_stages = flush_stages - earlier.flush_stages;
    d.bg_evictions = bg_evictions - earlier.bg_evictions;
    d.route_one_sided = route_one_sided - earlier.route_one_sided;
    d.route_rpc = route_rpc - earlier.route_rpc;
    d.route_probes = route_probes - earlier.route_probes;
    d.route_flips = route_flips - earlier.route_flips;
    d.overload_sheds = overload_sheds - earlier.overload_sheds;
    d.overload_retries = overload_retries - earlier.overload_retries;
    d.overload_failures = overload_failures - earlier.overload_failures;
    return d;
  }

  void Add(const ClientStats& other) {
    far_ops += other.far_ops;
    messages += other.messages;
    bytes_read += other.bytes_read;
    bytes_written += other.bytes_written;
    near_ops += other.near_ops;
    rpc_calls += other.rpc_calls;
    notifications += other.notifications;
    slow_path_ops += other.slow_path_ops;
    background_ops += other.background_ops;
    batches += other.batches;
    batched_ops += other.batched_ops;
    overlapped_rtts_saved += other.overlapped_rtts_saved;
    fanout_batches += other.fanout_batches;
    cross_node_rtts_saved += other.cross_node_rtts_saved;
    cache_hits += other.cache_hits;
    cache_misses += other.cache_misses;
    cache_invalidations += other.cache_invalidations;
    txn_commits += other.txn_commits;
    txn_aborts += other.txn_aborts;
    txn_validate_fails += other.txn_validate_fails;
    txn_prepare_fails += other.txn_prepare_fails;
    writes_combined += other.writes_combined;
    flush_stages += other.flush_stages;
    bg_evictions += other.bg_evictions;
    route_one_sided += other.route_one_sided;
    route_rpc += other.route_rpc;
    route_probes += other.route_probes;
    route_flips += other.route_flips;
    overload_sheds += other.overload_sheds;
    overload_retries += other.overload_retries;
    overload_failures += other.overload_failures;
  }

  std::string ToString() const;
};

// Per-memory-node counters; shared across clients, hence atomics.
struct NodeStats {
  std::atomic<uint64_t> ops_serviced{0};
  std::atomic<uint64_t> bytes_in{0};
  std::atomic<uint64_t> bytes_out{0};
  std::atomic<uint64_t> indirections{0};        // memory-side derefs executed
  std::atomic<uint64_t> forwards{0};            // cross-node forwarded derefs
  std::atomic<uint64_t> notifications_fired{0};
  std::atomic<uint64_t> notifications_dropped{0};
  std::atomic<uint64_t> notifications_coalesced{0};
  // Operations bounced by the congestion front end (DESIGN.md §14).
  std::atomic<uint64_t> ops_shed{0};

  std::string ToString() const;
};

}  // namespace fmds

#endif  // FMDS_SRC_FABRIC_STATS_H_
