#include "src/fabric/admission.h"

#include <algorithm>

namespace fmds {

AdmissionController::AdmissionController(const AdmissionOptions& options)
    : options_(options) {}

AdmissionController::Bucket& AdmissionController::BucketFor(NodeId node,
                                                            uint64_t now_ns) {
  auto [it, inserted] = buckets_.try_emplace(
      node, Bucket{options_.burst_ops, options_.initial_rate_ops_per_sec,
                   now_ns});
  Bucket& bucket = it->second;
  if (!inserted && now_ns > bucket.clock_ns) {
    // Refill on the shared max-clock: per-thread SimClocks advance
    // independently, so time only ever moves forward here.
    const double elapsed_s =
        static_cast<double>(now_ns - bucket.clock_ns) * 1e-9;
    bucket.tokens =
        std::min(options_.burst_ops, bucket.tokens + elapsed_s * bucket.rate);
    bucket.clock_ns = now_ns;
  }
  return bucket;
}

bool AdmissionController::Admit(NodeId node, uint64_t now_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  Bucket& bucket = BucketFor(node, now_ns);
  if (bucket.tokens >= 1.0) {
    bucket.tokens -= 1.0;
    admitted_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  deferred_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void AdmissionController::ReportP99(NodeId node, uint64_t p99_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  Bucket& bucket = BucketFor(node, /*now_ns=*/0);
  if (p99_ns > options_.p99_bound_ns) {
    bucket.rate = std::max(options_.min_rate_ops_per_sec,
                           bucket.rate * options_.decrease_factor);
  } else {
    bucket.rate = std::min(options_.max_rate_ops_per_sec,
                           bucket.rate + options_.increase_ops_per_sec);
  }
}

double AdmissionController::RateFor(NodeId node) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = buckets_.find(node);
  return it == buckets_.end() ? options_.initial_rate_ops_per_sec
                              : it->second.rate;
}

}  // namespace fmds
