#include "src/fabric/fabric.h"

#include <cassert>
#include <ostream>
#include <string>

#include "src/common/table.h"
#include "src/obs/telemetry.h"

namespace fmds {

Fabric::Fabric(FabricOptions options) : options_(options) {
  assert(options_.num_nodes >= 1);
  assert(options_.node_capacity % kPageSize == 0);
  if (options_.stripe_bytes != 0) {
    assert(options_.stripe_bytes % kPageSize == 0);
    assert(options_.node_capacity % options_.stripe_bytes == 0);
  }
  total_capacity_ =
      static_cast<uint64_t>(options_.num_nodes) * options_.node_capacity;
  nodes_.reserve(options_.num_nodes);
  for (NodeId i = 0; i < options_.num_nodes; ++i) {
    nodes_.push_back(std::make_unique<MemoryNode>(i, options_.node_capacity,
                                                  options_.congestion));
  }
}

Result<Fabric::Location> Fabric::Translate(FarAddr addr) const {
  if (addr >= total_capacity_) {
    return Status(StatusCode::kOutOfRange, "far address beyond fabric");
  }
  if (options_.stripe_bytes == 0 || options_.num_nodes == 1) {
    const NodeId node = static_cast<NodeId>(addr / options_.node_capacity);
    return Location{node, addr % options_.node_capacity};
  }
  const uint64_t stripe = options_.stripe_bytes;
  const uint64_t stripe_index = addr / stripe;
  const NodeId node = static_cast<NodeId>(stripe_index % options_.num_nodes);
  const uint64_t local_stripe = stripe_index / options_.num_nodes;
  return Location{node, local_stripe * stripe + addr % stripe};
}

Status Fabric::Segments(FarAddr addr, uint64_t len,
                        std::vector<Segment>& out) const {
  if (len == 0) {
    return OkStatus();
  }
  if (addr + len > total_capacity_ || addr + len < addr) {
    return OutOfRange("far range beyond fabric");
  }
  const uint64_t chunk =
      (options_.stripe_bytes == 0 || options_.num_nodes == 1)
          ? options_.node_capacity
          : options_.stripe_bytes;
  FarAddr cursor = addr;
  uint64_t remaining = len;
  while (remaining > 0) {
    const uint64_t chunk_end = (cursor / chunk + 1) * chunk;
    const uint64_t take = std::min<uint64_t>(remaining, chunk_end - cursor);
    const Location loc = Translate(cursor).value();
    // Merge with the previous segment when contiguous on the same node
    // (always true in partitioned mode within one node).
    if (!out.empty() && out.back().node == loc.node &&
        out.back().offset + out.back().len == loc.offset &&
        out.back().addr + out.back().len == cursor) {
      out.back().len += take;
    } else {
      out.push_back(Segment{loc.node, loc.offset, take, cursor});
    }
    cursor += take;
    remaining -= take;
  }
  return OkStatus();
}

bool Fabric::SameNodeWord(FarAddr addr, NodeId node) const {
  auto loc = Translate(addr);
  return loc.ok() && loc->node == node;
}

void Fabric::DumpStats(std::ostream& os) const {
  Table table({"node", "ops", "bytes_in", "bytes_out", "indirections",
               "forwards", "notif_fired", "notif_dropped",
               "notif_coalesced"});
  uint64_t totals[8] = {};
  for (NodeId i = 0; i < options_.num_nodes; ++i) {
    const NodeStats& s = nodes_[i]->stats();
    const uint64_t row[8] = {
        s.ops_serviced.load(std::memory_order_relaxed),
        s.bytes_in.load(std::memory_order_relaxed),
        s.bytes_out.load(std::memory_order_relaxed),
        s.indirections.load(std::memory_order_relaxed),
        s.forwards.load(std::memory_order_relaxed),
        s.notifications_fired.load(std::memory_order_relaxed),
        s.notifications_dropped.load(std::memory_order_relaxed),
        s.notifications_coalesced.load(std::memory_order_relaxed)};
    std::vector<std::string> cells{Table::Cell(static_cast<uint64_t>(i))};
    for (size_t c = 0; c < 8; ++c) {
      cells.push_back(Table::Cell(row[c]));
      totals[c] += row[c];
    }
    table.AddRow(std::move(cells));
  }
  std::vector<std::string> total_cells{"(all)"};
  for (size_t c = 0; c < 8; ++c) {
    total_cells.push_back(Table::Cell(totals[c]));
  }
  table.AddRow(std::move(total_cells));
  table.Print(os, "fabric: per-node service counters");
}

void Fabric::DumpClientStats(std::ostream& os,
                             std::span<const ClientStats> clients) {
  Table table({"client", "far_ops", "msgs", "rd_B", "wr_B", "near", "rpc",
               "notif", "slow", "bg", "batches", "batched", "rtts_saved",
               "fanout", "xnode_saved", "cache_hit", "cache_miss",
               "cache_inval", "txn_commit", "txn_abort", "txn_vfail",
               "txn_pfail", "wb_combined", "wb_stages", "bg_evict",
               "route_1s", "route_rpc", "route_probe", "route_flip"});
  ClientStats totals;
  for (size_t i = 0; i < clients.size(); ++i) {
    const ClientStats& s = clients[i];
    totals.Add(s);
    table.AddRow({Table::Cell(static_cast<uint64_t>(i)),
                  Table::Cell(s.far_ops), Table::Cell(s.messages),
                  Table::Cell(s.bytes_read), Table::Cell(s.bytes_written),
                  Table::Cell(s.near_ops), Table::Cell(s.rpc_calls),
                  Table::Cell(s.notifications), Table::Cell(s.slow_path_ops),
                  Table::Cell(s.background_ops), Table::Cell(s.batches),
                  Table::Cell(s.batched_ops),
                  Table::Cell(s.overlapped_rtts_saved),
                  Table::Cell(s.fanout_batches),
                  Table::Cell(s.cross_node_rtts_saved),
                  Table::Cell(s.cache_hits), Table::Cell(s.cache_misses),
                  Table::Cell(s.cache_invalidations),
                  Table::Cell(s.txn_commits), Table::Cell(s.txn_aborts),
                  Table::Cell(s.txn_validate_fails),
                  Table::Cell(s.txn_prepare_fails),
                  Table::Cell(s.writes_combined), Table::Cell(s.flush_stages),
                  Table::Cell(s.bg_evictions), Table::Cell(s.route_one_sided),
                  Table::Cell(s.route_rpc), Table::Cell(s.route_probes),
                  Table::Cell(s.route_flips)});
  }
  table.AddRow({"(all)", Table::Cell(totals.far_ops),
                Table::Cell(totals.messages), Table::Cell(totals.bytes_read),
                Table::Cell(totals.bytes_written), Table::Cell(totals.near_ops),
                Table::Cell(totals.rpc_calls), Table::Cell(totals.notifications),
                Table::Cell(totals.slow_path_ops),
                Table::Cell(totals.background_ops), Table::Cell(totals.batches),
                Table::Cell(totals.batched_ops),
                Table::Cell(totals.overlapped_rtts_saved),
                Table::Cell(totals.fanout_batches),
                Table::Cell(totals.cross_node_rtts_saved),
                Table::Cell(totals.cache_hits), Table::Cell(totals.cache_misses),
                Table::Cell(totals.cache_invalidations),
                Table::Cell(totals.txn_commits), Table::Cell(totals.txn_aborts),
                Table::Cell(totals.txn_validate_fails),
                Table::Cell(totals.txn_prepare_fails),
                Table::Cell(totals.writes_combined),
                Table::Cell(totals.flush_stages),
                Table::Cell(totals.bg_evictions),
                Table::Cell(totals.route_one_sided),
                Table::Cell(totals.route_rpc), Table::Cell(totals.route_probes),
                Table::Cell(totals.route_flips)});
  table.Print(os, "clients: per-client counters");
}

void Fabric::DumpHealth(std::ostream& os) const {
  Table table({"node", "ops", "bytes_in", "bytes_out", "notif_fired",
               "notif_dropped", "subs", "extra_service_ns", "queue_depth",
               "sheds"});
  uint64_t totals[9] = {};
  for (NodeId i = 0; i < options_.num_nodes; ++i) {
    const MemoryNode& n = *nodes_[i];
    const NodeStats& s = nodes_[i]->stats();
    const uint64_t row[9] = {
        s.ops_serviced.load(std::memory_order_relaxed),
        s.bytes_in.load(std::memory_order_relaxed),
        s.bytes_out.load(std::memory_order_relaxed),
        s.notifications_fired.load(std::memory_order_relaxed),
        s.notifications_dropped.load(std::memory_order_relaxed),
        n.subscription_count(), n.extra_service_ns(), n.queue_depth_ops(),
        s.ops_shed.load(std::memory_order_relaxed)};
    std::vector<std::string> cells{Table::Cell(static_cast<uint64_t>(i))};
    for (size_t c = 0; c < 9; ++c) {
      cells.push_back(Table::Cell(row[c]));
      totals[c] += row[c];
    }
    table.AddRow(std::move(cells));
  }
  std::vector<std::string> total_cells{"(all)"};
  for (size_t c = 0; c < 9; ++c) {
    total_cells.push_back(Table::Cell(totals[c]));
  }
  table.AddRow(std::move(total_cells));
  table.Print(os, "fabric: per-node health");
}

void Fabric::AddGauges(GaugeGroup* group, const std::string& prefix) const {
  for (NodeId i = 0; i < options_.num_nodes; ++i) {
    MemoryNode* n = nodes_[i].get();
    const std::string node_prefix = prefix + ".node" + std::to_string(i);
    group->Add(node_prefix + ".ops", [n] {
      return static_cast<double>(
          n->stats().ops_serviced.load(std::memory_order_relaxed));
    });
    group->Add(node_prefix + ".bytes_in", [n] {
      return static_cast<double>(
          n->stats().bytes_in.load(std::memory_order_relaxed));
    });
    group->Add(node_prefix + ".bytes_out", [n] {
      return static_cast<double>(
          n->stats().bytes_out.load(std::memory_order_relaxed));
    });
    group->Add(node_prefix + ".notifications", [n] {
      return static_cast<double>(
          n->stats().notifications_fired.load(std::memory_order_relaxed));
    });
    group->Add(node_prefix + ".subs", [n] {
      return static_cast<double>(n->subscription_count());
    });
    group->Add(node_prefix + ".extra_service_ns", [n] {
      return static_cast<double>(n->extra_service_ns());
    });
    // Congestion front end (DESIGN.md §14): live queue depth, cumulative
    // sheds, and the shed fraction of offered load. All zero while
    // congestion is disabled.
    group->Add(node_prefix + ".queue_depth", [n] {
      return static_cast<double>(n->queue_depth_ops());
    });
    group->Add(node_prefix + ".sheds", [n] {
      return static_cast<double>(
          n->stats().ops_shed.load(std::memory_order_relaxed));
    });
    group->Add(node_prefix + ".shed_rate", [n] {
      const double shed = static_cast<double>(
          n->stats().ops_shed.load(std::memory_order_relaxed));
      const double serviced = static_cast<double>(
          n->stats().ops_serviced.load(std::memory_order_relaxed));
      return shed + serviced > 0.0 ? shed / (shed + serviced) : 0.0;
    });
  }
}

}  // namespace fmds
