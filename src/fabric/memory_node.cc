#include "src/fabric/memory_node.h"

#include <cassert>
#include <cstring>

namespace fmds {

MemoryNode::MemoryNode(NodeId id, uint64_t capacity_bytes,
                       const CongestionOptions& congestion)
    : id_(id), capacity_(capacity_bytes), service_queue_(congestion) {
  assert(capacity_bytes % kWordSize == 0);
  words_.assign(capacity_bytes / kWordSize, 0);
}

uint64_t MemoryNode::LoadWord(uint64_t offset) {
  assert(IsWordAligned(offset) && offset + kWordSize <= capacity_);
  stats_.ops_serviced.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_out.fetch_add(kWordSize, std::memory_order_relaxed);
  return WordRef(offset).load(std::memory_order_seq_cst);
}

void MemoryNode::StoreWord(uint64_t offset, uint64_t value, uint64_t now_ns) {
  assert(IsWordAligned(offset) && offset + kWordSize <= capacity_);
  stats_.ops_serviced.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_in.fetch_add(kWordSize, std::memory_order_relaxed);
  WordRef(offset).store(value, std::memory_order_seq_cst);
  PublishWrite(offset, kWordSize, now_ns);
}

uint64_t MemoryNode::CompareSwapWord(uint64_t offset, uint64_t expected,
                                     uint64_t desired, uint64_t now_ns) {
  assert(IsWordAligned(offset) && offset + kWordSize <= capacity_);
  stats_.ops_serviced.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_in.fetch_add(kWordSize, std::memory_order_relaxed);
  uint64_t observed = expected;
  const bool swapped = WordRef(offset).compare_exchange_strong(
      observed, desired, std::memory_order_seq_cst);
  if (swapped) {
    PublishWrite(offset, kWordSize, now_ns);
    return expected;
  }
  return observed;
}

uint64_t MemoryNode::FetchAddWord(uint64_t offset, uint64_t delta,
                                  uint64_t now_ns) {
  assert(IsWordAligned(offset) && offset + kWordSize <= capacity_);
  stats_.ops_serviced.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_in.fetch_add(kWordSize, std::memory_order_relaxed);
  const uint64_t old = WordRef(offset).fetch_add(delta,
                                                 std::memory_order_seq_cst);
  PublishWrite(offset, kWordSize, now_ns);
  return old;
}

void MemoryNode::ReadRange(uint64_t offset, std::span<std::byte> out) {
  assert(offset + out.size() <= capacity_);
  stats_.ops_serviced.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_out.fetch_add(out.size(), std::memory_order_relaxed);
  size_t produced = 0;
  uint64_t cursor = offset;
  while (produced < out.size()) {
    const uint64_t word_base = cursor & ~(kWordSize - 1);
    const uint64_t in_word = cursor - word_base;
    const size_t take = static_cast<size_t>(
        std::min<uint64_t>(kWordSize - in_word, out.size() - produced));
    const uint64_t word =
        WordRef(word_base).load(std::memory_order_acquire);
    std::memcpy(out.data() + produced,
                reinterpret_cast<const char*>(&word) + in_word, take);
    produced += take;
    cursor += take;
  }
}

void MemoryNode::WriteRange(uint64_t offset, std::span<const std::byte> data,
                            uint64_t now_ns) {
  assert(offset + data.size() <= capacity_);
  stats_.ops_serviced.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_in.fetch_add(data.size(), std::memory_order_relaxed);
  size_t consumed = 0;
  uint64_t cursor = offset;
  while (consumed < data.size()) {
    const uint64_t word_base = cursor & ~(kWordSize - 1);
    const uint64_t in_word = cursor - word_base;
    const size_t put = static_cast<size_t>(
        std::min<uint64_t>(kWordSize - in_word, data.size() - consumed));
    auto ref = WordRef(word_base);
    if (put == kWordSize) {
      uint64_t word;
      std::memcpy(&word, data.data() + consumed, kWordSize);
      ref.store(word, std::memory_order_release);
    } else {
      // Partial word: merge via CAS so concurrent word atomics stay intact.
      uint64_t cur = ref.load(std::memory_order_acquire);
      while (true) {
        uint64_t next = cur;
        std::memcpy(reinterpret_cast<char*>(&next) + in_word,
                    data.data() + consumed, put);
        if (ref.compare_exchange_weak(cur, next, std::memory_order_acq_rel)) {
          break;
        }
      }
    }
    consumed += put;
    cursor += put;
  }
  PublishWrite(offset, data.size(), now_ns);
}

Status MemoryNode::Subscribe(uint64_t offset, const NotifySpec& spec,
                             NotificationChannel* channel, SubId id,
                             uint64_t* snapshot) {
  if (!IsWordAligned(offset) || spec.len == 0) {
    return InvalidArgument("notification range must be word-aligned");
  }
  if (PageIndexOf(offset) != PageIndexOf(offset + spec.len - 1)) {
    return InvalidArgument("notification range must not cross a page");
  }
  if (offset + spec.len > capacity_) {
    return OutOfRange("notification range exceeds node capacity");
  }
  std::lock_guard<std::mutex> lock(sub_mu_);
  subs_.Add(offset, spec, channel, id);
  subs_active_.store(subs_.size(), std::memory_order_relaxed);
  if (snapshot != nullptr) {
    // Read-and-arm: the snapshot and the registration share this critical
    // section. A concurrent writer's publish also takes sub_mu_, so its
    // write is either already visible here (writer published before we
    // registered, or will find us registered) — the subscriber can compare
    // this word against the value it read before subscribing and treat any
    // difference as a raced write.
    *snapshot = WordRef(offset).load(std::memory_order_acquire);
  }
  return OkStatus();
}

bool MemoryNode::Unsubscribe(SubId id) {
  std::lock_guard<std::mutex> lock(sub_mu_);
  const bool removed = subs_.Remove(id);
  subs_active_.store(subs_.size(), std::memory_order_relaxed);
  return removed;
}

void MemoryNode::PublishWrite(uint64_t offset, uint64_t len, uint64_t now_ns) {
  if (subs_active_.load(std::memory_order_relaxed) == 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(sub_mu_);
  std::vector<Subscription*> hits;
  subs_.Collect(offset, len, hits);
  for (Subscription* sub : hits) {
    if (sub->spec.mode == NotifyMode::kOnEqual) {
      // Fire only if the subscribed word now equals the target value.
      const uint64_t word =
          WordRef(sub->node_offset).load(std::memory_order_acquire);
      if (word != sub->spec.value) {
        continue;
      }
    }
    if (sub->spec.policy.drop_probability > 0.0 &&
        sub->drop_rng.NextBool(sub->spec.policy.drop_probability)) {
      ++sub->dropped;
      stats_.notifications_dropped.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    NotifyEvent event;
    event.kind = NotifyEventKind::kChanged;
    event.sub_id = sub->id;
    // Report the intersection of the write with the subscribed range, in
    // global coordinates.
    const uint64_t lo = std::max(offset, sub->node_offset);
    const uint64_t hi =
        std::min(offset + len, sub->node_offset + sub->spec.len);
    event.addr = sub->spec.addr + (lo - sub->node_offset);
    event.len = hi - lo;
    event.publish_ns = now_ns + sub->spec.policy.delay_ns;
    // State-at-publish snapshot of the subscribed range's first word, read
    // under sub_mu_ — the same critical section read-and-arm uses. Racing
    // writers both publish; whichever publish runs last reads the final
    // word, so an event stream always ENDS with the current value.
    event.word = WordRef(sub->node_offset).load(std::memory_order_acquire);
    if (sub->spec.mode == NotifyMode::kOnWriteData) {
      event.data.resize(event.len);
      ReadRange(lo, std::span<std::byte>(event.data));
      // The read-back is node-internal; undo its service accounting so
      // client-visible counters stay exact.
      stats_.ops_serviced.fetch_sub(1, std::memory_order_relaxed);
      stats_.bytes_out.fetch_sub(event.len, std::memory_order_relaxed);
    }
    ++sub->fired;
    stats_.notifications_fired.fetch_add(1, std::memory_order_relaxed);
    const bool coalesce = sub->spec.policy.coalesce;
    sub->channel->Publish(std::move(event), coalesce);
  }
}

}  // namespace fmds
