// Client-side admission control for a congested fabric (DESIGN.md §14).
//
// The congestion front end (ServiceQueue) tells a client it is overloading a
// node only *after* the fact — a shed costs a wasted round trip, and under a
// naive retry storm the rejects themselves consume node capacity (reject_ns
// of front-end time each). AdmissionController moves the decision to the
// client: a per-node token bucket, refilled in simulated time at an adaptive
// rate, gates ops BEFORE they are offered to the node. The rate adapts AIMD:
// the harness (or an application loop) periodically feeds it the node's
// recent p99 from WindowedSignals::RecentP99 — when the tail crosses the
// configured bound the rate is cut multiplicatively (the queue is building),
// otherwise it creeps back up additively, probing for the knee of the
// latency/throughput curve.
//
// The controller is deliberately client-local and advisory: Admit() refusing
// an op means "defer or shed it at the client, for free" — nothing was sent.
// It is thread-safe (one controller may be shared by the threads of a
// scenario arm; the TSan-stressed admission_test exercises exactly that).
#ifndef FMDS_SRC_FABRIC_ADMISSION_H_
#define FMDS_SRC_FABRIC_ADMISSION_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "src/fabric/far_addr.h"

namespace fmds {

struct AdmissionOptions {
  // Starting per-node admission rate, in ops per simulated second. The
  // AIMD loop moves it inside [min_rate, max_rate] from here.
  double initial_rate_ops_per_sec = 2e6;
  double min_rate_ops_per_sec = 5e4;
  double max_rate_ops_per_sec = 1e8;
  // Bucket depth: how much short-term burstiness rides through untouched.
  double burst_ops = 32.0;
  // Tail bound the AIMD loop defends: ReportP99 above this cuts the rate.
  uint64_t p99_bound_ns = 20'000;
  // Multiplicative decrease factor applied when the bound is exceeded.
  double decrease_factor = 0.6;
  // Additive increase (ops/sec) applied per in-bound report.
  double increase_ops_per_sec = 1e5;
};

class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionOptions& options = {});

  // Consumes one token for `node` if available. True => send the op now;
  // false => the caller should defer (back off and retry Admit later) or
  // shed the op client-side. `now_ns` is the caller's simulated clock and
  // must be monotone per caller; refill uses the max clock seen so far.
  bool Admit(NodeId node, uint64_t now_ns);

  // AIMD update from a fresh tail measurement (e.g. WindowedSignals::
  // RecentP99 over the ops that landed on `node`). Feed it once per
  // telemetry window, not per op.
  void ReportP99(NodeId node, uint64_t p99_ns);

  // Current admission rate for `node` (ops per simulated second).
  double RateFor(NodeId node) const;

  uint64_t admitted() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  uint64_t deferred() const {
    return deferred_.load(std::memory_order_relaxed);
  }

  const AdmissionOptions& options() const { return options_; }

 private:
  struct Bucket {
    double tokens;
    double rate;        // ops per simulated second
    uint64_t clock_ns;  // refill high-water mark
  };

  Bucket& BucketFor(NodeId node, uint64_t now_ns);  // mu_ held

  AdmissionOptions options_;
  mutable std::mutex mu_;
  std::unordered_map<NodeId, Bucket> buckets_;
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> deferred_{0};
};

}  // namespace fmds

#endif  // FMDS_SRC_FABRIC_ADMISSION_H_
