// FarClient: the client-side fabric interface (one per application thread).
//
// Exposes the base one-sided verbs (read/write/CAS/fetch-add, as RDMA and
// Gen-Z already provide) and every extension of the paper's Figure 1:
// indirect addressing (load0..2 / store0..2 / faai / saai / add0..2),
// scatter-gather (rscatter / rgather / wscatter / wgather), and
// notifications (notify0 / notifye / notify0d).
//
// Accounting: each operation advances the client's private SimClock by the
// modelled latency and bumps ClientStats — far_ops counts client round
// trips, messages counts node visits (segments + forward hops). §3.1 makes
// far accesses the metric; these counters are what the benchmarks report.
//
// Deviation from Figure 1, documented in DESIGN.md §1: faai/saai return the
// *old pointer value* in addition to their effect. The memory node reads the
// pointer word anyway, so this costs no extra access, and the far-memory
// queue needs it to detect slack-region entry without additional round trips.
#ifndef FMDS_SRC_FABRIC_FAR_CLIENT_H_
#define FMDS_SRC_FABRIC_FAR_CLIENT_H_

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/fabric/fabric.h"
#include "src/fabric/notification.h"
#include "src/fabric/stats.h"
#include "src/sim/sim_clock.h"

namespace fmds {

// A far-memory buffer descriptor for gather/scatter lists.
struct FarSeg {
  FarAddr addr;
  uint64_t len;
};

struct ClientOptions {
  size_t channel_capacity = 4096;
};

class FarClient {
 public:
  FarClient(Fabric* fabric, uint64_t client_id, ClientOptions options = {});
  FarClient(const FarClient&) = delete;
  FarClient& operator=(const FarClient&) = delete;

  uint64_t id() const { return client_id_; }
  Fabric* fabric() { return fabric_; }

  // ------------------------- Base verbs (§2) -------------------------
  Status Read(FarAddr addr, std::span<std::byte> out);
  Status Write(FarAddr addr, std::span<const std::byte> data);
  Result<uint64_t> ReadWord(FarAddr addr);
  Status WriteWord(FarAddr addr, uint64_t value);
  // Returns the value observed before the operation.
  Result<uint64_t> CompareSwap(FarAddr addr, uint64_t expected,
                               uint64_t desired);
  Result<uint64_t> FetchAdd(FarAddr addr, uint64_t delta);

  // ------------------ Indirect addressing (§4.1, Fig. 1) ------------------
  // load0: tmp = *ad; read `out.size()` bytes at tmp. Returns tmp.
  Result<FarAddr> Load0(FarAddr ad, std::span<std::byte> out);
  // load1: tmp = *(ad + i); read at tmp.
  Result<FarAddr> Load1(FarAddr ad, uint64_t i, std::span<std::byte> out);
  // load2: tmp = *ad + i; read at tmp.
  Result<FarAddr> Load2(FarAddr ad, uint64_t i, std::span<std::byte> out);
  // store0: tmp = *ad; write value at tmp. Returns tmp.
  Result<FarAddr> Store0(FarAddr ad, std::span<const std::byte> value);
  // store1: tmp = *(ad + i); write at tmp.
  Result<FarAddr> Store1(FarAddr ad, uint64_t i,
                         std::span<const std::byte> value);
  // store2: tmp = *ad + i; write at tmp.
  Result<FarAddr> Store2(FarAddr ad, uint64_t i,
                         std::span<const std::byte> value);
  // faai: old = *ad; *ad += delta; read out.size() bytes at old. Returns old.
  Result<FarAddr> Faai(FarAddr ad, int64_t delta, std::span<std::byte> out);
  // saai: old = *ad; *ad += delta; write value at old. Returns old.
  Result<FarAddr> Saai(FarAddr ad, int64_t delta,
                       std::span<const std::byte> value);
  // add0: tmp = *ad; word at tmp += v.
  Status Add0(FarAddr ad, uint64_t v);
  // add1: tmp = *(ad + i); word at tmp += v.
  Status Add1(FarAddr ad, uint64_t v, uint64_t i);
  // add2: tmp = *ad + i; word at tmp += v.
  Status Add2(FarAddr ad, uint64_t v, uint64_t i);

  // --------------------- Scatter-gather (§4.2, Fig. 1) ---------------------
  // rscatter: read far range [ad, ad + sum(iov)) into local iovec buffers.
  Status RScatter(FarAddr ad, std::span<const LocalBuf> iov);
  // rgather: read far iovec into the contiguous local range `out`.
  Status RGather(std::span<const FarSeg> iov, std::span<std::byte> out);
  // wscatter: write far iovec from the contiguous local range `src`.
  Status WScatter(std::span<const FarSeg> iov, std::span<const std::byte> src);
  // wgather: write far range [ad, ad + sum(iov)) from local iovec buffers.
  Status WGather(FarAddr ad, std::span<const ConstLocalBuf> iov);

  // Batched compare-and-swap: N independent word CASes issued in one
  // doorbell (one client round trip, N fabric messages). Each CAS is
  // individually atomic; there is NO atomicity across entries. This is the
  // scatter-gather idea (§4.2) applied to atomics — and standard RDMA
  // doorbell batching achieves the same pipelining today. `observed`
  // receives each word's pre-CAS value (== expected on success).
  struct CasTarget {
    FarAddr addr;
    uint64_t expected;
    uint64_t desired;
  };
  Status CasBatch(std::span<const CasTarget> targets,
                  std::span<uint64_t> observed);

  // ----------------------- Notifications (§4.3) -----------------------
  Result<SubId> Subscribe(const NotifySpec& spec);
  Status Unsubscribe(SubId id);
  NotificationChannel& channel() { return channel_; }
  // Non-blocking; accounts one near access per poll and one notification
  // per delivered event.
  std::optional<NotifyEvent> PollNotification();
  // Spins (real time, for threaded tests) until an event arrives or
  // ~timeout_ms elapses.
  Result<NotifyEvent> WaitNotification(uint64_t timeout_ms = 2000);

  // --------------------------- Ordering (§2) ---------------------------
  // Memory barrier: all previously issued operations complete before any
  // later one. Our ops are synchronous, so this is a (counted) no-op kept
  // for API fidelity.
  void Fence();

  // -------------------------- Accounting hooks --------------------------
  // Data-structure code calls this when it touches its *local* cache, so the
  // near/far cost split in the experiments is explicit.
  void AccountNear(uint64_t accesses = 1);
  // Far write issued off the critical path (e.g. queue slot re-initialization
  // §5.3): counted as traffic, does not advance the client clock.
  Status PostWriteBackground(FarAddr addr, std::span<const std::byte> data);
  Status PostWriteWordBackground(FarAddr addr, uint64_t value);
  // Far read issued off the critical path (e.g. queue occupancy estimate
  // refresh, §5.3): counted as traffic, does not advance the client clock.
  Result<uint64_t> ReadWordBackground(FarAddr addr);

  SimClock& clock() { return clock_; }
  const ClientStats& stats() const { return stats_; }
  ClientStats& mutable_stats() { return stats_; }
  void ResetStats() { stats_ = ClientStats(); }

 private:
  enum class IndirectKind : uint8_t { kRead, kWrite, kAtomicAdd };
  // Pointer-selection variants of Fig. 1:
  //   kPlain:      tmp = *ad
  //   kIndexedPtr: tmp = *(ad + i)       (load1/store1/add1)
  //   kIndexedTgt: tmp = *ad + i         (load2/store2/add2)
  enum class IndexMode : uint8_t { kPlain, kIndexedPtr, kIndexedTgt };

  // Shared engine for all indirect primitives. `fetch_add_delta`, when set,
  // atomically bumps the pointer word (faai/saai).
  Result<FarAddr> IndirectOp(IndirectKind kind, IndexMode mode, FarAddr ad,
                             uint64_t i, std::optional<int64_t> fetch_add_delta,
                             std::span<std::byte> read_out,
                             std::span<const std::byte> write_value,
                             uint64_t add_value);

  // Executes a direct far access at `addr` (second round trip of the
  // kError indirection policy).
  Status DirectAccess(IndirectKind kind, FarAddr addr,
                      std::span<std::byte> read_out,
                      std::span<const std::byte> write_value,
                      uint64_t add_value);

  void AccountRoundTrip(uint64_t payload_bytes, uint64_t messages,
                        uint64_t extra_hops);

  Fabric* fabric_;
  uint64_t client_id_;
  LatencyModel latency_;
  SimClock clock_;
  ClientStats stats_;
  NotificationChannel channel_;
  std::unordered_map<SubId, NodeId> sub_homes_;
};

}  // namespace fmds

#endif  // FMDS_SRC_FABRIC_FAR_CLIENT_H_
