// FarClient: the client-side fabric interface (one per application thread).
//
// Exposes the base one-sided verbs (read/write/CAS/fetch-add, as RDMA and
// Gen-Z already provide) and every extension of the paper's Figure 1:
// indirect addressing (load0..2 / store0..2 / faai / saai / add0..2),
// scatter-gather (rscatter / rgather / wscatter / wgather), and
// notifications (notify0 / notifye / notify0d).
//
// Accounting: each operation advances the client's private SimClock by the
// modelled latency and bumps ClientStats — far_ops counts client round
// trips, messages counts node visits (segments + forward hops). §3.1 makes
// far accesses the metric; these counters are what the benchmarks report.
//
// Deviation from Figure 1, documented in DESIGN.md §1: faai/saai return the
// *old pointer value* in addition to their effect. The memory node reads the
// pointer word anyway, so this costs no extra access, and the far-memory
// queue needs it to detect slack-region entry without additional round trips.
#ifndef FMDS_SRC_FABRIC_FAR_CLIENT_H_
#define FMDS_SRC_FABRIC_FAR_CLIENT_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/fabric/fabric.h"
#include "src/fabric/notification.h"
#include "src/fabric/stats.h"
#include "src/obs/recorder.h"
#include "src/sim/sim_clock.h"

namespace fmds {

// A far-memory buffer descriptor for gather/scatter lists.
struct FarSeg {
  FarAddr addr;
  uint64_t len;
};

// Retry policy for kOverloaded bounces from a congested node's service
// queue (DESIGN.md §14). The default (max_attempts = 1) retries nothing:
// every shed surfaces to the caller. With retries enabled, each bounce
// backs the client off for a jittered, exponentially growing interval of
// *simulated* time — which lets the congested node drain — before the op
// is re-offered. A per-op deadline bounds the total simulated time spent.
struct RetryPolicy {
  // Admission attempts per operation, counting the first (1 = no retry).
  uint32_t max_attempts = 1;
  // First backoff; doubles per failed attempt up to backoff_max_ns.
  uint64_t backoff_base_ns = 2'000;
  uint64_t backoff_max_ns = 500'000;
  // Per-op budget in simulated ns, measured from the op's first admission
  // attempt; 0 = unlimited. A backoff that would cross the deadline fails
  // the op immediately (kOverloaded) instead of sleeping past it.
  uint64_t deadline_ns = 0;
  // Jittered backoff: uniform in [b/2, b). Decorrelates the retry storms
  // synchronized sheds would otherwise produce.
  bool jitter = true;
};

struct ClientOptions {
  size_t channel_capacity = 4096;
  // What to do when a congested node sheds this client's op; see
  // RetryPolicy. Ignored while the fabric's congestion model is off.
  RetryPolicy retry;
  // Flight-recorder gate (histograms / trace ring); defaults fully off so
  // the accounting hot path stays a branch + counter increments.
  ObsOptions obs;
  // Near-memory agent mode (§3.1): this client's compute sits next to
  // `home_node`'s memory — the shape of the RPC dataplane's per-node agents
  // (src/route/). Round trips serviced by the home node are charged
  // `local_latency` (memory-controller access) instead of fabric RTTs;
  // accesses to every other node still pay the full fabric model, and a
  // node's injected extra_service_ns applies on both (it models the
  // memory/controller side, which an on-node agent crosses too).
  std::optional<NodeId> home_node;
  LatencyModel local_latency = LocalAgentLatency();
};

class FarClient {
 public:
  FarClient(Fabric* fabric, uint64_t client_id, ClientOptions options = {});
  FarClient(const FarClient&) = delete;
  FarClient& operator=(const FarClient&) = delete;

  uint64_t id() const { return client_id_; }
  Fabric* fabric() { return fabric_; }

  // ------------------------- Base verbs (§2) -------------------------
  Status Read(FarAddr addr, std::span<std::byte> out);
  Status Write(FarAddr addr, std::span<const std::byte> data);
  Result<uint64_t> ReadWord(FarAddr addr);
  Status WriteWord(FarAddr addr, uint64_t value);
  // Returns the value observed before the operation.
  Result<uint64_t> CompareSwap(FarAddr addr, uint64_t expected,
                               uint64_t desired);
  Result<uint64_t> FetchAdd(FarAddr addr, uint64_t delta);

  // ------------------ Indirect addressing (§4.1, Fig. 1) ------------------
  // load0: tmp = *ad; read `out.size()` bytes at tmp. Returns tmp.
  Result<FarAddr> Load0(FarAddr ad, std::span<std::byte> out);
  // load1: tmp = *(ad + i); read at tmp.
  Result<FarAddr> Load1(FarAddr ad, uint64_t i, std::span<std::byte> out);
  // load2: tmp = *ad + i; read at tmp.
  Result<FarAddr> Load2(FarAddr ad, uint64_t i, std::span<std::byte> out);
  // store0: tmp = *ad; write value at tmp. Returns tmp.
  Result<FarAddr> Store0(FarAddr ad, std::span<const std::byte> value);
  // store1: tmp = *(ad + i); write at tmp.
  Result<FarAddr> Store1(FarAddr ad, uint64_t i,
                         std::span<const std::byte> value);
  // store2: tmp = *ad + i; write at tmp.
  Result<FarAddr> Store2(FarAddr ad, uint64_t i,
                         std::span<const std::byte> value);
  // faai: old = *ad; *ad += delta; read out.size() bytes at old. Returns old.
  Result<FarAddr> Faai(FarAddr ad, int64_t delta, std::span<std::byte> out);
  // saai: old = *ad; *ad += delta; write value at old. Returns old.
  Result<FarAddr> Saai(FarAddr ad, int64_t delta,
                       std::span<const std::byte> value);
  // add0: tmp = *ad; word at tmp += v.
  Status Add0(FarAddr ad, uint64_t v);
  // add1: tmp = *(ad + i); word at tmp += v.
  Status Add1(FarAddr ad, uint64_t v, uint64_t i);
  // add2: tmp = *ad + i; word at tmp += v.
  Status Add2(FarAddr ad, uint64_t v, uint64_t i);

  // --------------------- Scatter-gather (§4.2, Fig. 1) ---------------------
  // rscatter: read far range [ad, ad + sum(iov)) into local iovec buffers.
  Status RScatter(FarAddr ad, std::span<const LocalBuf> iov);
  // rgather: read far iovec into the contiguous local range `out`.
  Status RGather(std::span<const FarSeg> iov, std::span<std::byte> out);
  // wscatter: write far iovec from the contiguous local range `src`.
  Status WScatter(std::span<const FarSeg> iov, std::span<const std::byte> src);
  // wgather: write far range [ad, ad + sum(iov)) from local iovec buffers.
  Status WGather(FarAddr ad, std::span<const ConstLocalBuf> iov);

  // Batched compare-and-swap: N independent word CASes issued in one
  // doorbell (one client round trip, N fabric messages). Each CAS is
  // individually atomic; there is NO atomicity across entries. This is the
  // scatter-gather idea (§4.2) applied to atomics — and standard RDMA
  // doorbell batching achieves the same pipelining today. `observed`
  // receives each word's pre-CAS value (== expected on success).
  struct CasTarget {
    FarAddr addr;
    uint64_t expected;
    uint64_t desired;
  };
  Status CasBatch(std::span<const CasTarget> targets,
                  std::span<uint64_t> observed);

  // ------------------ Async batched pipeline (§3.1, §4.2) ------------------
  // The paper's round-trip argument cuts both ways: dependent accesses cost
  // one RTT each, but *independent* accesses can be overlapped. Post*
  // enqueues an operation into the client's issue queue without touching the
  // fabric; Flush() is the doorbell that submits the whole batch. The
  // latency model charges a batch of k independent ops to the same memory
  // node one base round trip plus per-op wire/occupancy cost (not k RTTs);
  // ops bound for different nodes overlap, so the client waits for the
  // slowest node group. Completions are delivered in post order through
  // Poll()/WaitAll() and carry a per-op Status plus the word result (read
  // value / pre-op value / indirect pointer).
  //
  // Lifetime: read output spans must stay valid until the op's completion is
  // observed; write payloads are copied at Post time. A FarClient is owned
  // by one application thread, so the queues need no locking.
  using OpId = uint64_t;

  struct Completion {
    OpId id = 0;
    Status status;
    // ReadWord value, CAS/fetch-add pre-op value, or indirect pointer.
    uint64_t word = 0;
  };

  OpId PostRead(FarAddr addr, std::span<std::byte> out);
  OpId PostWrite(FarAddr addr, std::span<const std::byte> data);
  OpId PostReadWord(FarAddr addr);
  OpId PostWriteWord(FarAddr addr, uint64_t value);
  OpId PostCompareSwap(FarAddr addr, uint64_t expected, uint64_t desired);
  OpId PostFetchAdd(FarAddr addr, uint64_t delta);
  // Indirect read (Fig. 1 load0): tmp = *ad, read out.size() bytes at tmp.
  OpId PostLoad0(FarAddr ad, std::span<std::byte> out);
  // Scatter-gather read of a far iovec into the contiguous `out`.
  OpId PostRGather(std::vector<FarSeg> iov, std::span<std::byte> out);

  size_t pending_ops() const { return issue_queue_.size(); }
  size_t pending_completions() const { return completion_queue_.size(); }

  // Doorbell: submits every posted op in post order, advances the clock by
  // the modelled batch latency, and moves completions to the completion
  // queue. A flush with nothing posted is a (free) no-op.
  Status Flush();
  // Pops the oldest completion, if any. Completions surface in post order.
  std::optional<Completion> Poll();
  // Flushes pending ops, drains every completion into `out` (if given), and
  // returns OK iff all drained ops succeeded (first error otherwise).
  Status WaitAll(std::vector<Completion>* out = nullptr);

  // ----------------------- Notifications (§4.3) -----------------------
  // Read-and-arm registration: if `snapshot` is non-null it receives the
  // watched range's first word, read atomically with the registration on
  // the memory node. A caller that validated data *before* subscribing
  // compares the snapshot against the word it read: a mismatch means a
  // write raced the registration window and the data must not be trusted.
  Result<SubId> Subscribe(const NotifySpec& spec, uint64_t* snapshot = nullptr);
  // Subscribe with a dispatch target: events for this subscription are
  // routed to `sink` by DispatchNotifications() instead of surfacing
  // through PollNotification(). Same 1-RTT registration cost.
  Result<SubId> Subscribe(const NotifySpec& spec, NotificationSink* sink,
                          uint64_t* snapshot = nullptr);
  Status Unsubscribe(SubId id);
  // Node-side unsubscribe by explicit watch address: pays the 1-RTT
  // teardown on the node owning `watch_addr` without consulting this
  // client's subscription maps. Built for background cache evictors: the
  // evictor's own client retires a subscription that a *different* client
  // registered (the owner later calls ForgetSubscription to drop its maps).
  Status UnsubscribeAt(FarAddr watch_addr, SubId id);
  // Owner-side bookkeeping drop for a subscription whose node-side half was
  // already torn down elsewhere (UnsubscribeAt). No round trip. Late events
  // already in flight for the id are discarded instead of parked.
  void ForgetSubscription(SubId id);
  NotificationChannel& channel() { return channel_; }
  // Non-blocking; accounts one near access per poll and one notification
  // per delivered event.
  std::optional<NotifyEvent> PollNotification();
  // Spins (real time, for threaded tests) until an event arrives or
  // ~timeout_ms elapses.
  Result<NotifyEvent> WaitNotification(uint64_t timeout_ms = 2000);
  // Drains the channel and routes each event to the sink registered for its
  // subscription. Loss warnings (which carry no sub_id) fan out to every
  // distinct sink. Events for poll-style subscriptions are parked and remain
  // observable through PollNotification()/WaitNotification(). Returns the
  // number of events routed to sinks. Accounting: checking an empty channel
  // is free (the local queue head is near state the client touches anyway);
  // a non-empty drain charges one near access, and each event bumps the
  // notification stat exactly once, at the point it is delivered — sink
  // routing here, or the PollNotification()/WaitNotification() call that
  // later consumes a parked event. Parking is not delivery.
  size_t DispatchNotifications();

  // --------------------------- Ordering (§2) ---------------------------
  // Memory barrier: all previously issued operations complete before any
  // later one. Synchronous ops already execute in program order; posted
  // async ops are flushed here, so a fence orders them against everything
  // that follows. Completions stay pollable after the fence.
  void Fence();

  // -------------------------- Accounting hooks --------------------------
  // Data-structure code calls this when it touches its *local* cache, so the
  // near/far cost split in the experiments is explicit.
  void AccountNear(uint64_t accesses = 1);
  // Far write issued off the critical path (e.g. queue slot re-initialization
  // §5.3): counted as traffic, does not advance the client clock.
  Status PostWriteBackground(FarAddr addr, std::span<const std::byte> data);
  Status PostWriteWordBackground(FarAddr addr, uint64_t value);
  // Far read issued off the critical path (e.g. queue occupancy estimate
  // refresh, §5.3): counted as traffic, does not advance the client clock.
  Result<uint64_t> ReadWordBackground(FarAddr addr);

  // ---------------------- Congestion admission (§14) ----------------------
  // Offers `ops` operations carrying `bytes` payload to `node`'s congestion
  // front end, running the client's RetryPolicy on sheds (each bounce is a
  // completed, failed round trip; each retry advances the clock by the
  // jittered backoff). Returns the queueing delay to fold into the round
  // trip, or kOverloaded once the policy gives up. No-op (returns 0) for
  // kObsNoNode, for the agent's own home node (an on-node agent crosses the
  // memory controller, not the NIC front end), and while congestion is off.
  // Sync verbs, the batched Flush path, and RpcClient::Call all come
  // through here — admission happens BEFORE memory effects everywhere.
  Result<uint64_t> AdmitCongestion(FarOpKind kind, NodeId node, FarAddr addr,
                                   uint64_t ops, uint64_t bytes);
  const RetryPolicy& retry_policy() const { return retry_; }
  void set_retry_policy(const RetryPolicy& policy) { retry_ = policy; }

  SimClock& clock() { return clock_; }
  const ClientStats& stats() const { return stats_; }
  ClientStats& mutable_stats() { return stats_; }
  void ResetStats() { stats_ = ClientStats(); }

  // ------------------------- Flight recorder -------------------------
  // Per-client observability: op-kind/label latency histograms, node
  // traffic row, bounded trace ring (see src/obs/). ScopedOpLabel and the
  // benches go through these; recording is a no-op until enabled.
  OpRecorder& recorder() { return obs_; }
  const OpRecorder& recorder() const { return obs_; }
  void EnableObs(const ObsOptions& options) { obs_.set_options(options); }

 private:
  enum class IndirectKind : uint8_t { kRead, kWrite, kAtomicAdd };
  // Pointer-selection variants of Fig. 1:
  //   kPlain:      tmp = *ad
  //   kIndexedPtr: tmp = *(ad + i)       (load1/store1/add1)
  //   kIndexedTgt: tmp = *ad + i         (load2/store2/add2)
  enum class IndexMode : uint8_t { kPlain, kIndexedPtr, kIndexedTgt };

  // Shared engine for all indirect primitives. `fetch_add_delta`, when set,
  // atomically bumps the pointer word (faai/saai).
  Result<FarAddr> IndirectOp(IndirectKind kind, IndexMode mode, FarAddr ad,
                             uint64_t i, std::optional<int64_t> fetch_add_delta,
                             std::span<std::byte> read_out,
                             std::span<const std::byte> write_value,
                             uint64_t add_value);

  // Executes a direct far access at `addr` (second round trip of the
  // kError indirection policy).
  Status DirectAccess(IndirectKind kind, FarAddr addr,
                      std::span<std::byte> read_out,
                      std::span<const std::byte> write_value,
                      uint64_t add_value);

  // Charges one client round trip: bumps ClientStats, advances the clock
  // by the modelled latency plus any congestion queueing delay, and (when
  // enabled) feeds the flight recorder with the op kind, the primary
  // memory node serviced (kObsNoNode when none applies), and the far
  // address touched.
  void AccountRoundTrip(FarOpKind kind, NodeId node, FarAddr addr,
                        uint64_t payload_bytes, uint64_t messages,
                        uint64_t extra_hops, bool ok = true,
                        uint64_t queue_ns = 0);

  // ---- Async pipeline internals ----
  enum class OpKind : uint8_t {
    kRead,
    kWrite,
    kReadWord,
    kWriteWord,
    kCas,
    kFetchAdd,
    kLoad0,
    kRGather,
  };

  struct PendingOp {
    OpId id = 0;
    OpKind kind = OpKind::kRead;
    FarAddr addr = kNullFarAddr;
    uint64_t arg0 = 0;  // CAS expected / fetch-add delta / write word value
    uint64_t arg1 = 0;  // CAS desired
    std::span<std::byte> out;        // read destination (caller-owned)
    std::vector<std::byte> payload;  // write data (copied at Post time)
    std::vector<FarSeg> iov;         // rgather source list
  };

  // Per-node accumulator for one Flush: cost_n = far_base + wire_ns +
  // (contribs-1)*batch_op_ns + hops*node_hop_ns; the clock advances by the
  // max over nodes plus any serialized extra round trips (kError policy).
  struct BatchGroup {
    uint64_t contribs = 0;
    double wire_ns = 0.0;
    uint64_t hops = 0;
    // Max congestion queueing delay over the group's admitted ops: the
    // sub-batch completes when its most-delayed op does.
    uint64_t queue_ns = 0;
  };

  // Recorder-facing view of one batched op, collected during Flush; the
  // latency share is assigned once the whole batch's cost is known.
  struct BatchOpObs {
    FarOpKind kind = FarOpKind::kRead;
    NodeId node = kObsNoNode;
    FarAddr addr = kNullFarAddr;
    uint64_t bytes = 0;
    bool ok = true;
  };

  // Queues a dispatched poll-style event for PollNotification(), bounded by
  // the channel capacity (overflow collapses to one loss warning).
  void ParkEvent(NotifyEvent ev);

  OpId Enqueue(PendingOp op);
  // Executes one posted op against the memory nodes, accumulating node-group
  // charges into `groups` and message/serial-RTT totals; returns the
  // per-op status and fills `word`. When `obs` is non-null it receives the
  // op's kind/node/bytes for the flight recorder.
  Status ExecuteBatchedOp(PendingOp& op, uint64_t* word,
                          std::unordered_map<NodeId, BatchGroup>& groups,
                          uint64_t* messages, uint64_t* fabric_ops,
                          uint64_t* serial_ns, uint64_t* serial_rtts,
                          BatchOpObs* obs);

  // Latency model for round trips serviced by `node` — the local model when
  // this client is a near-memory agent on that node, the fabric model
  // otherwise (kObsNoNode always resolves to the fabric model).
  const LatencyModel& ModelFor(NodeId node) const {
    return (home_node_.has_value() && node == *home_node_) ? local_latency_
                                                           : latency_;
  }

  // One shed-or-retry admission attempt without retry semantics (the batch
  // path: a doorbell offers each op once; rejected ops complete with
  // kOverloaded in the same reply). Bumps shed stats on reject.
  Result<uint64_t> OfferOnce(NodeId node, uint64_t ops, uint64_t bytes);
  // Deterministic per-client jitter source (xorshift).
  uint64_t NextJitter();

  Fabric* fabric_;
  uint64_t client_id_;
  LatencyModel latency_;
  RetryPolicy retry_;
  uint64_t jitter_state_;
  std::optional<NodeId> home_node_;
  LatencyModel local_latency_;
  SimClock clock_;
  ClientStats stats_;
  OpRecorder obs_;
  NotificationChannel channel_;
  std::unordered_map<SubId, NodeId> sub_homes_;
  // Dispatch routing for sink-registered subscriptions plus the overflow
  // park for poll-style events that DispatchNotifications() drained.
  std::unordered_map<SubId, NotificationSink*> sinks_;
  // Subscriptions dropped via ForgetSubscription: events still in flight
  // for these ids are discarded at dispatch instead of parked (bounded
  // ring; an id aged out of it degrades to the normal park path).
  std::deque<SubId> forgotten_subs_;
  std::deque<NotifyEvent> parked_events_;
  size_t channel_capacity_;

  std::vector<PendingOp> issue_queue_;
  std::deque<Completion> completion_queue_;
  OpId next_op_id_ = 1;
};

}  // namespace fmds

#endif  // FMDS_SRC_FABRIC_FAR_CLIENT_H_
