// Notifications (§4.3): callbacks triggered when far memory changes, so
// clients can keep caches fresh without polling. Modes:
//   kOnWrite  (notify0)  — any write intersecting [addr, addr+len)
//   kOnEqual  (notifye)  — a write leaves the word at addr equal to `value`
//   kOnWriteData (notify0d) — like kOnWrite, but carries the changed bytes
//
// Delivery is best-effort by design (§7.2): per-subscription policies can
// drop, delay, or coalesce events, and a bounded channel that overflows
// replaces the lost events with a loss warning the data-structure algorithm
// must handle (versioning / full refresh).
#ifndef FMDS_SRC_FABRIC_NOTIFICATION_H_
#define FMDS_SRC_FABRIC_NOTIFICATION_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"
#include "src/fabric/far_addr.h"

namespace fmds {

using SubId = uint64_t;
inline constexpr SubId kInvalidSubId = 0;

enum class NotifyMode : uint8_t {
  kOnWrite = 0,      // notify0
  kOnEqual = 1,      // notifye
  kOnWriteData = 2,  // notify0d
};

// How events for one subscription are delivered (§7.2 scalability knobs).
struct DeliveryPolicy {
  double drop_probability = 0.0;  // unreliable delivery
  bool coalesce = true;           // merge with a still-queued event of same sub
  uint64_t delay_ns = 0;          // extra fabric delay beyond notify_delay_ns
  static DeliveryPolicy Reliable() {
    return DeliveryPolicy{0.0, /*coalesce=*/false, 0};
  }
};

struct NotifySpec {
  NotifyMode mode = NotifyMode::kOnWrite;
  FarAddr addr = kNullFarAddr;  // word-aligned; range must not cross a page
  uint64_t len = kWordSize;
  uint64_t value = 0;           // target for kOnEqual
  DeliveryPolicy policy = DeliveryPolicy::Reliable();
};

// Receiver-side callback target for dispatched events. A subscriber (e.g. a
// NearCache) registers a sink with FarClient::Subscribe(spec, sink); the
// client's DispatchNotifications() routes delivered events to it. Dispatch
// happens on the owning client's thread — sinks need no locking of their own.
class NotificationSink {
 public:
  virtual ~NotificationSink() = default;
  virtual void OnNotify(const struct NotifyEvent& event) = 0;
};

enum class NotifyEventKind : uint8_t {
  kChanged = 0,      // a subscribed range changed
  kLossWarning = 1,  // channel overflowed; an unknown number of events lost
};

struct NotifyEvent {
  NotifyEventKind kind = NotifyEventKind::kChanged;
  SubId sub_id = kInvalidSubId;
  FarAddr addr = kNullFarAddr;  // start of the changed (possibly merged) range
  uint64_t len = 0;
  uint64_t publish_ns = 0;  // writer-side virtual timestamp
  uint64_t coalesced = 0;   // additional events merged into this one
  // Value of the subscribed range's FIRST word, read at publish time inside
  // the node's subscription critical section (same section the read-and-arm
  // snapshot uses). For word-versioned caches — watched words that only ever
  // swing to fresh values, like HT-tree bucket heads — this lets a
  // subscriber compare the event against the word its entry was filled
  // under: a match confirms the entry is current (the writer was itself),
  // a mismatch demands invalidation. Coalesced events keep the latest word.
  uint64_t word = 0;
  std::vector<std::byte> data;  // payload for kOnWriteData
};

// Per-client inbound event queue. Thread-safe: memory nodes publish from
// writer threads; the owning client polls.
class NotificationChannel {
 public:
  explicit NotificationChannel(size_t capacity = 4096) : capacity_(capacity) {}

  // Called by the fabric. Applies coalescing and overflow handling.
  void Publish(NotifyEvent event, bool coalesce);

  // Non-blocking pop; nullopt when empty.
  std::optional<NotifyEvent> Poll();

  // Pops everything currently queued.
  std::vector<NotifyEvent> Drain();

  size_t size() const;
  uint64_t published() const;
  uint64_t overflow_lost() const;
  uint64_t coalesced() const;

 private:
  mutable std::mutex mu_;
  std::deque<NotifyEvent> queue_;
  // sub_id -> index into queue_ of a still-queued event to coalesce into.
  std::unordered_map<SubId, size_t> pending_index_;
  size_t capacity_;
  uint64_t published_ = 0;
  uint64_t overflow_lost_ = 0;
  uint64_t coalesced_ = 0;
  bool loss_pending_ = false;
};

// One registered subscription, owned by a memory node's SubscriptionTable.
struct Subscription {
  SubId id = kInvalidSubId;
  NotifySpec spec;          // spec.addr is the *global* FarAddr
  uint64_t node_offset = 0; // node-local offset of spec.addr
  NotificationChannel* channel = nullptr;
  Rng drop_rng{0};
  uint64_t fired = 0;
  uint64_t dropped = 0;
};

// Page-indexed subscription registry of one memory node. The paper suggests
// recording subscriptions in page-table entries at the memory node so write
// paths find them cheaply; this mirrors that: lookup is by page index, so a
// write touches only the tables of its own pages.
class SubscriptionTable {
 public:
  // Registers a subscription at a node-local offset. The range must lie
  // within a single page (hardware constraint from §4.3); the caller
  // validates this.
  void Add(uint64_t node_offset, const NotifySpec& spec,
           NotificationChannel* channel, SubId id);
  bool Remove(SubId id);

  // Appends subscriptions whose range intersects [offset, offset+len).
  void Collect(uint64_t offset, uint64_t len, std::vector<Subscription*>& out);

  size_t size() const { return subs_.size(); }

 private:
  std::unordered_map<SubId, std::unique_ptr<Subscription>> subs_;
  std::unordered_map<uint64_t, std::vector<Subscription*>> by_page_;
};

}  // namespace fmds

#endif  // FMDS_SRC_FABRIC_NOTIFICATION_H_
