file(REMOVE_RECURSE
  "libfmds_perfmodel.a"
)
