# Empty dependencies file for fmds_perfmodel.
# This may be replaced when dependencies are built.
