file(REMOVE_RECURSE
  "CMakeFiles/fmds_perfmodel.dir/throughput_model.cc.o"
  "CMakeFiles/fmds_perfmodel.dir/throughput_model.cc.o.d"
  "libfmds_perfmodel.a"
  "libfmds_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmds_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
