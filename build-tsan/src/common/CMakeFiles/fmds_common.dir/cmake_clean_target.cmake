file(REMOVE_RECURSE
  "libfmds_common.a"
)
