# Empty dependencies file for fmds_common.
# This may be replaced when dependencies are built.
