file(REMOVE_RECURSE
  "CMakeFiles/fmds_common.dir/histogram.cc.o"
  "CMakeFiles/fmds_common.dir/histogram.cc.o.d"
  "CMakeFiles/fmds_common.dir/rng.cc.o"
  "CMakeFiles/fmds_common.dir/rng.cc.o.d"
  "CMakeFiles/fmds_common.dir/status.cc.o"
  "CMakeFiles/fmds_common.dir/status.cc.o.d"
  "CMakeFiles/fmds_common.dir/table.cc.o"
  "CMakeFiles/fmds_common.dir/table.cc.o.d"
  "libfmds_common.a"
  "libfmds_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmds_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
