# Empty dependencies file for fmds_core.
# This may be replaced when dependencies are built.
