file(REMOVE_RECURSE
  "libfmds_core.a"
)
