file(REMOVE_RECURSE
  "CMakeFiles/fmds_core.dir/blob_store.cc.o"
  "CMakeFiles/fmds_core.dir/blob_store.cc.o.d"
  "CMakeFiles/fmds_core.dir/cached_vector.cc.o"
  "CMakeFiles/fmds_core.dir/cached_vector.cc.o.d"
  "CMakeFiles/fmds_core.dir/far_barrier.cc.o"
  "CMakeFiles/fmds_core.dir/far_barrier.cc.o.d"
  "CMakeFiles/fmds_core.dir/far_mutex.cc.o"
  "CMakeFiles/fmds_core.dir/far_mutex.cc.o.d"
  "CMakeFiles/fmds_core.dir/far_queue.cc.o"
  "CMakeFiles/fmds_core.dir/far_queue.cc.o.d"
  "CMakeFiles/fmds_core.dir/ht_tree.cc.o"
  "CMakeFiles/fmds_core.dir/ht_tree.cc.o.d"
  "CMakeFiles/fmds_core.dir/refreshable_vector.cc.o"
  "CMakeFiles/fmds_core.dir/refreshable_vector.cc.o.d"
  "libfmds_core.a"
  "libfmds_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmds_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
