
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/blob_store.cc" "src/core/CMakeFiles/fmds_core.dir/blob_store.cc.o" "gcc" "src/core/CMakeFiles/fmds_core.dir/blob_store.cc.o.d"
  "/root/repo/src/core/cached_vector.cc" "src/core/CMakeFiles/fmds_core.dir/cached_vector.cc.o" "gcc" "src/core/CMakeFiles/fmds_core.dir/cached_vector.cc.o.d"
  "/root/repo/src/core/far_barrier.cc" "src/core/CMakeFiles/fmds_core.dir/far_barrier.cc.o" "gcc" "src/core/CMakeFiles/fmds_core.dir/far_barrier.cc.o.d"
  "/root/repo/src/core/far_mutex.cc" "src/core/CMakeFiles/fmds_core.dir/far_mutex.cc.o" "gcc" "src/core/CMakeFiles/fmds_core.dir/far_mutex.cc.o.d"
  "/root/repo/src/core/far_queue.cc" "src/core/CMakeFiles/fmds_core.dir/far_queue.cc.o" "gcc" "src/core/CMakeFiles/fmds_core.dir/far_queue.cc.o.d"
  "/root/repo/src/core/ht_tree.cc" "src/core/CMakeFiles/fmds_core.dir/ht_tree.cc.o" "gcc" "src/core/CMakeFiles/fmds_core.dir/ht_tree.cc.o.d"
  "/root/repo/src/core/refreshable_vector.cc" "src/core/CMakeFiles/fmds_core.dir/refreshable_vector.cc.o" "gcc" "src/core/CMakeFiles/fmds_core.dir/refreshable_vector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/fabric/CMakeFiles/fmds_fabric.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/alloc/CMakeFiles/fmds_alloc.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/fmds_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/fmds_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
