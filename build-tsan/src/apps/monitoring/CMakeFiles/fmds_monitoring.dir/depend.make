# Empty dependencies file for fmds_monitoring.
# This may be replaced when dependencies are built.
