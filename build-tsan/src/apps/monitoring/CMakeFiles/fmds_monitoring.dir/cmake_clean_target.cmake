file(REMOVE_RECURSE
  "libfmds_monitoring.a"
)
