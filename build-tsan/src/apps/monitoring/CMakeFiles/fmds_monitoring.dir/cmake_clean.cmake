file(REMOVE_RECURSE
  "CMakeFiles/fmds_monitoring.dir/monitoring.cc.o"
  "CMakeFiles/fmds_monitoring.dir/monitoring.cc.o.d"
  "libfmds_monitoring.a"
  "libfmds_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmds_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
