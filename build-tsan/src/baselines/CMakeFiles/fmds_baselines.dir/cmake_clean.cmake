file(REMOVE_RECURSE
  "CMakeFiles/fmds_baselines.dir/btree.cc.o"
  "CMakeFiles/fmds_baselines.dir/btree.cc.o.d"
  "CMakeFiles/fmds_baselines.dir/chained_hash.cc.o"
  "CMakeFiles/fmds_baselines.dir/chained_hash.cc.o.d"
  "CMakeFiles/fmds_baselines.dir/linked_list.cc.o"
  "CMakeFiles/fmds_baselines.dir/linked_list.cc.o.d"
  "CMakeFiles/fmds_baselines.dir/neighborhood_hash.cc.o"
  "CMakeFiles/fmds_baselines.dir/neighborhood_hash.cc.o.d"
  "CMakeFiles/fmds_baselines.dir/simple_queues.cc.o"
  "CMakeFiles/fmds_baselines.dir/simple_queues.cc.o.d"
  "CMakeFiles/fmds_baselines.dir/skip_list.cc.o"
  "CMakeFiles/fmds_baselines.dir/skip_list.cc.o.d"
  "libfmds_baselines.a"
  "libfmds_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmds_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
