
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/btree.cc" "src/baselines/CMakeFiles/fmds_baselines.dir/btree.cc.o" "gcc" "src/baselines/CMakeFiles/fmds_baselines.dir/btree.cc.o.d"
  "/root/repo/src/baselines/chained_hash.cc" "src/baselines/CMakeFiles/fmds_baselines.dir/chained_hash.cc.o" "gcc" "src/baselines/CMakeFiles/fmds_baselines.dir/chained_hash.cc.o.d"
  "/root/repo/src/baselines/linked_list.cc" "src/baselines/CMakeFiles/fmds_baselines.dir/linked_list.cc.o" "gcc" "src/baselines/CMakeFiles/fmds_baselines.dir/linked_list.cc.o.d"
  "/root/repo/src/baselines/neighborhood_hash.cc" "src/baselines/CMakeFiles/fmds_baselines.dir/neighborhood_hash.cc.o" "gcc" "src/baselines/CMakeFiles/fmds_baselines.dir/neighborhood_hash.cc.o.d"
  "/root/repo/src/baselines/simple_queues.cc" "src/baselines/CMakeFiles/fmds_baselines.dir/simple_queues.cc.o" "gcc" "src/baselines/CMakeFiles/fmds_baselines.dir/simple_queues.cc.o.d"
  "/root/repo/src/baselines/skip_list.cc" "src/baselines/CMakeFiles/fmds_baselines.dir/skip_list.cc.o" "gcc" "src/baselines/CMakeFiles/fmds_baselines.dir/skip_list.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/fabric/CMakeFiles/fmds_fabric.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/alloc/CMakeFiles/fmds_alloc.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/core/CMakeFiles/fmds_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/rpc/CMakeFiles/fmds_rpc.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/fmds_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/fmds_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
