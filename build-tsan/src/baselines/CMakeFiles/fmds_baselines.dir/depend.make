# Empty dependencies file for fmds_baselines.
# This may be replaced when dependencies are built.
