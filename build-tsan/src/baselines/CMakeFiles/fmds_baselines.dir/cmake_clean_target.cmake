file(REMOVE_RECURSE
  "libfmds_baselines.a"
)
