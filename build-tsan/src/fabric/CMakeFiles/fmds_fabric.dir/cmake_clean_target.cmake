file(REMOVE_RECURSE
  "libfmds_fabric.a"
)
