# Empty dependencies file for fmds_fabric.
# This may be replaced when dependencies are built.
