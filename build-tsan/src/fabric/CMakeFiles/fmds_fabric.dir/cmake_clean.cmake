file(REMOVE_RECURSE
  "CMakeFiles/fmds_fabric.dir/fabric.cc.o"
  "CMakeFiles/fmds_fabric.dir/fabric.cc.o.d"
  "CMakeFiles/fmds_fabric.dir/far_client.cc.o"
  "CMakeFiles/fmds_fabric.dir/far_client.cc.o.d"
  "CMakeFiles/fmds_fabric.dir/memory_node.cc.o"
  "CMakeFiles/fmds_fabric.dir/memory_node.cc.o.d"
  "CMakeFiles/fmds_fabric.dir/notification.cc.o"
  "CMakeFiles/fmds_fabric.dir/notification.cc.o.d"
  "CMakeFiles/fmds_fabric.dir/stats.cc.o"
  "CMakeFiles/fmds_fabric.dir/stats.cc.o.d"
  "libfmds_fabric.a"
  "libfmds_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmds_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
