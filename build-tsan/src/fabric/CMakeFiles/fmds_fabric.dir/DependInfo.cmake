
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fabric/fabric.cc" "src/fabric/CMakeFiles/fmds_fabric.dir/fabric.cc.o" "gcc" "src/fabric/CMakeFiles/fmds_fabric.dir/fabric.cc.o.d"
  "/root/repo/src/fabric/far_client.cc" "src/fabric/CMakeFiles/fmds_fabric.dir/far_client.cc.o" "gcc" "src/fabric/CMakeFiles/fmds_fabric.dir/far_client.cc.o.d"
  "/root/repo/src/fabric/memory_node.cc" "src/fabric/CMakeFiles/fmds_fabric.dir/memory_node.cc.o" "gcc" "src/fabric/CMakeFiles/fmds_fabric.dir/memory_node.cc.o.d"
  "/root/repo/src/fabric/notification.cc" "src/fabric/CMakeFiles/fmds_fabric.dir/notification.cc.o" "gcc" "src/fabric/CMakeFiles/fmds_fabric.dir/notification.cc.o.d"
  "/root/repo/src/fabric/stats.cc" "src/fabric/CMakeFiles/fmds_fabric.dir/stats.cc.o" "gcc" "src/fabric/CMakeFiles/fmds_fabric.dir/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/fmds_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/fmds_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
