# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-tsan/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("fabric")
subdirs("alloc")
subdirs("rpc")
subdirs("core")
subdirs("baselines")
subdirs("apps/monitoring")
subdirs("perfmodel")
