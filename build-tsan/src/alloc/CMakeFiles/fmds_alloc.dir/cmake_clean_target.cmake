file(REMOVE_RECURSE
  "libfmds_alloc.a"
)
