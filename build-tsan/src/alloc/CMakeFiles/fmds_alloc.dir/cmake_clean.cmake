file(REMOVE_RECURSE
  "CMakeFiles/fmds_alloc.dir/far_allocator.cc.o"
  "CMakeFiles/fmds_alloc.dir/far_allocator.cc.o.d"
  "libfmds_alloc.a"
  "libfmds_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmds_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
