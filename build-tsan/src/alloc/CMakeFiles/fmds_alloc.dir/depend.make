# Empty dependencies file for fmds_alloc.
# This may be replaced when dependencies are built.
