
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rpc/kv_service.cc" "src/rpc/CMakeFiles/fmds_rpc.dir/kv_service.cc.o" "gcc" "src/rpc/CMakeFiles/fmds_rpc.dir/kv_service.cc.o.d"
  "/root/repo/src/rpc/queue_service.cc" "src/rpc/CMakeFiles/fmds_rpc.dir/queue_service.cc.o" "gcc" "src/rpc/CMakeFiles/fmds_rpc.dir/queue_service.cc.o.d"
  "/root/repo/src/rpc/rpc.cc" "src/rpc/CMakeFiles/fmds_rpc.dir/rpc.cc.o" "gcc" "src/rpc/CMakeFiles/fmds_rpc.dir/rpc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/fabric/CMakeFiles/fmds_fabric.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/fmds_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/fmds_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
