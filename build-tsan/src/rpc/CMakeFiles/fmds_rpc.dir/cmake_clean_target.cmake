file(REMOVE_RECURSE
  "libfmds_rpc.a"
)
