# Empty dependencies file for fmds_rpc.
# This may be replaced when dependencies are built.
