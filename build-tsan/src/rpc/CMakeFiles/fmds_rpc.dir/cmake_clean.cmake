file(REMOVE_RECURSE
  "CMakeFiles/fmds_rpc.dir/kv_service.cc.o"
  "CMakeFiles/fmds_rpc.dir/kv_service.cc.o.d"
  "CMakeFiles/fmds_rpc.dir/queue_service.cc.o"
  "CMakeFiles/fmds_rpc.dir/queue_service.cc.o.d"
  "CMakeFiles/fmds_rpc.dir/rpc.cc.o"
  "CMakeFiles/fmds_rpc.dir/rpc.cc.o.d"
  "libfmds_rpc.a"
  "libfmds_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmds_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
