# Empty dependencies file for fmds_sim.
# This may be replaced when dependencies are built.
