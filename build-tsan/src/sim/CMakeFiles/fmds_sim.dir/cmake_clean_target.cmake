file(REMOVE_RECURSE
  "libfmds_sim.a"
)
