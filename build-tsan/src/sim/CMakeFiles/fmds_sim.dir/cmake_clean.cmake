file(REMOVE_RECURSE
  "CMakeFiles/fmds_sim.dir/event_queue.cc.o"
  "CMakeFiles/fmds_sim.dir/event_queue.cc.o.d"
  "libfmds_sim.a"
  "libfmds_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmds_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
