# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/common_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/fabric_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/notification_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/alloc_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/rpc_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/core_simple_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/ht_tree_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/far_queue_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/baselines_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/refreshable_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/monitoring_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/perfmodel_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/integration_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/property_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/failure_injection_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/cached_vector_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/sim_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/fabric_edge_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/blob_store_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/async_client_test[1]_include.cmake")
