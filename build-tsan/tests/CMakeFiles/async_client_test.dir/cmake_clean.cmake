file(REMOVE_RECURSE
  "CMakeFiles/async_client_test.dir/async_client_test.cc.o"
  "CMakeFiles/async_client_test.dir/async_client_test.cc.o.d"
  "async_client_test"
  "async_client_test.pdb"
  "async_client_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_client_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
