
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/async_client_test.cc" "tests/CMakeFiles/async_client_test.dir/async_client_test.cc.o" "gcc" "tests/CMakeFiles/async_client_test.dir/async_client_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/fmds_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/fmds_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/fabric/CMakeFiles/fmds_fabric.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/alloc/CMakeFiles/fmds_alloc.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/rpc/CMakeFiles/fmds_rpc.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/core/CMakeFiles/fmds_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/baselines/CMakeFiles/fmds_baselines.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/apps/monitoring/CMakeFiles/fmds_monitoring.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/perfmodel/CMakeFiles/fmds_perfmodel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
