file(REMOVE_RECURSE
  "CMakeFiles/fabric_edge_test.dir/fabric_edge_test.cc.o"
  "CMakeFiles/fabric_edge_test.dir/fabric_edge_test.cc.o.d"
  "fabric_edge_test"
  "fabric_edge_test.pdb"
  "fabric_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
