# Empty dependencies file for fabric_edge_test.
# This may be replaced when dependencies are built.
