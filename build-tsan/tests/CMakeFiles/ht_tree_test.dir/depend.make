# Empty dependencies file for ht_tree_test.
# This may be replaced when dependencies are built.
