file(REMOVE_RECURSE
  "CMakeFiles/ht_tree_test.dir/ht_tree_test.cc.o"
  "CMakeFiles/ht_tree_test.dir/ht_tree_test.cc.o.d"
  "ht_tree_test"
  "ht_tree_test.pdb"
  "ht_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ht_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
