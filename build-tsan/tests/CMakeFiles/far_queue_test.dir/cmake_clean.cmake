file(REMOVE_RECURSE
  "CMakeFiles/far_queue_test.dir/far_queue_test.cc.o"
  "CMakeFiles/far_queue_test.dir/far_queue_test.cc.o.d"
  "far_queue_test"
  "far_queue_test.pdb"
  "far_queue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/far_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
