# Empty compiler generated dependencies file for far_queue_test.
# This may be replaced when dependencies are built.
