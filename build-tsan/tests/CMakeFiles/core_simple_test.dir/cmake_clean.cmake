file(REMOVE_RECURSE
  "CMakeFiles/core_simple_test.dir/core_simple_test.cc.o"
  "CMakeFiles/core_simple_test.dir/core_simple_test.cc.o.d"
  "core_simple_test"
  "core_simple_test.pdb"
  "core_simple_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_simple_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
