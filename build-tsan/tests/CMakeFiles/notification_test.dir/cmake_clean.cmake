file(REMOVE_RECURSE
  "CMakeFiles/notification_test.dir/notification_test.cc.o"
  "CMakeFiles/notification_test.dir/notification_test.cc.o.d"
  "notification_test"
  "notification_test.pdb"
  "notification_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/notification_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
