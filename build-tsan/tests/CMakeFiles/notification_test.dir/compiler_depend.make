# Empty compiler generated dependencies file for notification_test.
# This may be replaced when dependencies are built.
