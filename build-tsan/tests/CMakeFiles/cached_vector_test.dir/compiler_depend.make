# Empty compiler generated dependencies file for cached_vector_test.
# This may be replaced when dependencies are built.
