file(REMOVE_RECURSE
  "CMakeFiles/cached_vector_test.dir/cached_vector_test.cc.o"
  "CMakeFiles/cached_vector_test.dir/cached_vector_test.cc.o.d"
  "cached_vector_test"
  "cached_vector_test.pdb"
  "cached_vector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cached_vector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
