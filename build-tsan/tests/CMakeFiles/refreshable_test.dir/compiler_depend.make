# Empty compiler generated dependencies file for refreshable_test.
# This may be replaced when dependencies are built.
