file(REMOVE_RECURSE
  "CMakeFiles/refreshable_test.dir/refreshable_test.cc.o"
  "CMakeFiles/refreshable_test.dir/refreshable_test.cc.o.d"
  "refreshable_test"
  "refreshable_test.pdb"
  "refreshable_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refreshable_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
