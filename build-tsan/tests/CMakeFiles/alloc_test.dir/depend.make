# Empty dependencies file for alloc_test.
# This may be replaced when dependencies are built.
