file(REMOVE_RECURSE
  "CMakeFiles/alloc_test.dir/alloc_test.cc.o"
  "CMakeFiles/alloc_test.dir/alloc_test.cc.o.d"
  "alloc_test"
  "alloc_test.pdb"
  "alloc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alloc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
