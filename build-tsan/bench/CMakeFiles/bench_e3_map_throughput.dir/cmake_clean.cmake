file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_map_throughput.dir/bench_e3_map_throughput.cc.o"
  "CMakeFiles/bench_e3_map_throughput.dir/bench_e3_map_throughput.cc.o.d"
  "bench_e3_map_throughput"
  "bench_e3_map_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_map_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
