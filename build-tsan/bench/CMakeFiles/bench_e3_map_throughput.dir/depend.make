# Empty dependencies file for bench_e3_map_throughput.
# This may be replaced when dependencies are built.
