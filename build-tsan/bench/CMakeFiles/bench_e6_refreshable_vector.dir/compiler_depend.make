# Empty compiler generated dependencies file for bench_e6_refreshable_vector.
# This may be replaced when dependencies are built.
