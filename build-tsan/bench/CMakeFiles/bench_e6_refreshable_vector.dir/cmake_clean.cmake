file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_refreshable_vector.dir/bench_e6_refreshable_vector.cc.o"
  "CMakeFiles/bench_e6_refreshable_vector.dir/bench_e6_refreshable_vector.cc.o.d"
  "bench_e6_refreshable_vector"
  "bench_e6_refreshable_vector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_refreshable_vector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
