# Empty dependencies file for bench_e8_indirection_scale.
# This may be replaced when dependencies are built.
