file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_indirection_scale.dir/bench_e8_indirection_scale.cc.o"
  "CMakeFiles/bench_e8_indirection_scale.dir/bench_e8_indirection_scale.cc.o.d"
  "bench_e8_indirection_scale"
  "bench_e8_indirection_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_indirection_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
