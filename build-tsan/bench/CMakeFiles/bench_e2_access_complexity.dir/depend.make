# Empty dependencies file for bench_e2_access_complexity.
# This may be replaced when dependencies are built.
