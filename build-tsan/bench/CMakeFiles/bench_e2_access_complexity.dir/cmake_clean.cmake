file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_access_complexity.dir/bench_e2_access_complexity.cc.o"
  "CMakeFiles/bench_e2_access_complexity.dir/bench_e2_access_complexity.cc.o.d"
  "bench_e2_access_complexity"
  "bench_e2_access_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_access_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
