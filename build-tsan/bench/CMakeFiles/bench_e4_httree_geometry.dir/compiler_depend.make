# Empty compiler generated dependencies file for bench_e4_httree_geometry.
# This may be replaced when dependencies are built.
