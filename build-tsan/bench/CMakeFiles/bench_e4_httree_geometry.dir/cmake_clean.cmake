file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_httree_geometry.dir/bench_e4_httree_geometry.cc.o"
  "CMakeFiles/bench_e4_httree_geometry.dir/bench_e4_httree_geometry.cc.o.d"
  "bench_e4_httree_geometry"
  "bench_e4_httree_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_httree_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
