# Empty compiler generated dependencies file for bench_a11_httree_ablation.
# This may be replaced when dependencies are built.
