file(REMOVE_RECURSE
  "CMakeFiles/bench_a11_httree_ablation.dir/bench_a11_httree_ablation.cc.o"
  "CMakeFiles/bench_a11_httree_ablation.dir/bench_a11_httree_ablation.cc.o.d"
  "bench_a11_httree_ablation"
  "bench_a11_httree_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a11_httree_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
