file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_queue.dir/bench_e5_queue.cc.o"
  "CMakeFiles/bench_e5_queue.dir/bench_e5_queue.cc.o.d"
  "bench_e5_queue"
  "bench_e5_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
