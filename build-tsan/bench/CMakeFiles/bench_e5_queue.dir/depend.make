# Empty dependencies file for bench_e5_queue.
# This may be replaced when dependencies are built.
