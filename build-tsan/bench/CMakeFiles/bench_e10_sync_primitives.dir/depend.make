# Empty dependencies file for bench_e10_sync_primitives.
# This may be replaced when dependencies are built.
