file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_sync_primitives.dir/bench_e10_sync_primitives.cc.o"
  "CMakeFiles/bench_e10_sync_primitives.dir/bench_e10_sync_primitives.cc.o.d"
  "bench_e10_sync_primitives"
  "bench_e10_sync_primitives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_sync_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
