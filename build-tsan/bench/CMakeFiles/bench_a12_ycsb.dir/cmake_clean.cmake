file(REMOVE_RECURSE
  "CMakeFiles/bench_a12_ycsb.dir/bench_a12_ycsb.cc.o"
  "CMakeFiles/bench_a12_ycsb.dir/bench_a12_ycsb.cc.o.d"
  "bench_a12_ycsb"
  "bench_a12_ycsb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a12_ycsb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
