# Empty dependencies file for bench_a12_ycsb.
# This may be replaced when dependencies are built.
