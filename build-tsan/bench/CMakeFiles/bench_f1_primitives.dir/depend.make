# Empty dependencies file for bench_f1_primitives.
# This may be replaced when dependencies are built.
