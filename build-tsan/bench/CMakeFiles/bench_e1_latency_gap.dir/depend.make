# Empty dependencies file for bench_e1_latency_gap.
# This may be replaced when dependencies are built.
