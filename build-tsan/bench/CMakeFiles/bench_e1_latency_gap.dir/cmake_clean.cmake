file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_latency_gap.dir/bench_e1_latency_gap.cc.o"
  "CMakeFiles/bench_e1_latency_gap.dir/bench_e1_latency_gap.cc.o.d"
  "bench_e1_latency_gap"
  "bench_e1_latency_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_latency_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
