file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_notification_scale.dir/bench_e9_notification_scale.cc.o"
  "CMakeFiles/bench_e9_notification_scale.dir/bench_e9_notification_scale.cc.o.d"
  "bench_e9_notification_scale"
  "bench_e9_notification_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_notification_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
