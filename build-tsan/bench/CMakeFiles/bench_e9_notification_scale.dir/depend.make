# Empty dependencies file for bench_e9_notification_scale.
# This may be replaced when dependencies are built.
