# Empty compiler generated dependencies file for bench_e7_monitoring.
# This may be replaced when dependencies are built.
