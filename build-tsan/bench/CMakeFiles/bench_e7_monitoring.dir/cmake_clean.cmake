file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_monitoring.dir/bench_e7_monitoring.cc.o"
  "CMakeFiles/bench_e7_monitoring.dir/bench_e7_monitoring.cc.o.d"
  "bench_e7_monitoring"
  "bench_e7_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
