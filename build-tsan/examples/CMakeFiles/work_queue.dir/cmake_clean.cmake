file(REMOVE_RECURSE
  "CMakeFiles/work_queue.dir/work_queue.cc.o"
  "CMakeFiles/work_queue.dir/work_queue.cc.o.d"
  "work_queue"
  "work_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/work_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
