file(REMOVE_RECURSE
  "CMakeFiles/parameter_server.dir/parameter_server.cc.o"
  "CMakeFiles/parameter_server.dir/parameter_server.cc.o.d"
  "parameter_server"
  "parameter_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parameter_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
