# Empty dependencies file for parameter_server.
# This may be replaced when dependencies are built.
