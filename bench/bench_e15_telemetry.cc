// E15 — live windowed telemetry (src/obs/windowed.*, src/obs/telemetry.*,
// DESIGN.md §12): rolling signals over simulated time, pipeline health
// gauges, and the continuous JSON-lines exporter. Two claims, both enforced
// by the exit code:
//
//   1. Overhead: always-on windowed signals (ObsOptions::WindowedOnly,
//      the production shape) cost < 5% thread-CPU time vs observability OFF
//      on the E3 hot path (HT-tree Get probes). Measured as the median over
//      many passes of finely interleaved off/windowed chunk pairs on ONE
//      pre-built tree (see MeasureOverhead for why every coarser design
//      fails to resolve a 5% budget). --smoke relaxes the bound to 30% (CI
//      machines are shared and noisy; the smoke gate checks wiring, the
//      committed full run checks the budget).
//   2. Tracking: after a per-node slowdown is injected
//      (MemoryNode::set_extra_service_ns), RecentP99All reflects it within
//      TWO rolling windows of simulated work — and decays back within two
//      windows of the slowdown clearing (window expiry, not Reset).
//
// The bench also drives the full export surface as a smoke-level check:
// a TelemetryHub wired with recorder + fabric + cache + write-behind +
// evictor gauges, a TelemetrySnapshotter writing JSON-lines while app,
// flusher, and evictor threads run, Prometheus text export, and the
// Fabric::DumpHealth / DumpClientStats tables.
//
// Flags: --smoke, --json=<path>, --telemetry=<path> (JSON-lines output,
// default TELEMETRY_e15.jsonl).
#include <time.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/cache/bg_evictor.h"
#include "src/common/rng.h"
#include "src/core/ht_tree.h"
#include "src/obs/telemetry.h"

namespace fmds {
namespace {

struct Config {
  uint64_t keys = 20000;
  int probes = 60000;        // per overhead pass, per mode
  // Each pass yields one win/off ratio from interleaved chunk pairs; the
  // reported overhead is the median over passes, which discards the passes
  // an interference episode (scheduler, frequency scaling) still splits
  // asymmetrically.
  int passes = 25;
  double overhead_bound = 0.05;
  int pipeline_ops = 6000;
};

// ---- Claim 1: wall-clock overhead of always-on windowed signals ----

// Thread CPU time: on a shared box, wall time charges us for every
// preemption (50% pass-to-pass swings in practice); CPU time only counts
// cycles this thread actually ran, which is the quantity the overhead
// budget is about.
uint64_t ThreadCpuNowNs() {
  timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

// One probe pass over a pre-built HT-tree; returns thread-CPU nanoseconds.
uint64_t ProbePassCpuNs(HtTree& map, uint64_t keys, int probes,
                        uint64_t seed) {
  Rng rng(seed);
  const uint64_t t0 = ThreadCpuNowNs();
  for (int i = 0; i < probes; ++i) {
    CheckOk(map.Get(rng.NextInRange(1, keys)).status(), "get");
  }
  return ThreadCpuNowNs() - t0;
}

struct OverheadResult {
  uint64_t off_cpu_ns = 0;       // median over passes
  uint64_t windowed_cpu_ns = 0;  // median over passes
  double overhead = 0.0;         // median of per-pass win/off - 1
};

OverheadResult MeasureOverhead(const Config& cfg) {
  // ONE environment; passes alternate the recorder's options between
  // obs-off and windowed-only on the same client. Building two separate
  // environments (the obvious design) measures heap/layout luck as much as
  // recording cost: two identical processes differ by several percent run
  // to run, which swamps a 5% budget. Toggling the gate on one tree keeps
  // the memory layout, cache state, and rng sequence identical across
  // modes, so the off/windowed difference isolates the recording path.
  BenchEnv env(DefaultFabric());
  FarClient& client = env.NewClient();

  HtTree::Options options;
  options.buckets_per_table = 8192;
  HtTree map =
      CheckOk(HtTree::Create(&client, &env.alloc(), options), "map");
  for (uint64_t k = 1; k <= cfg.keys; ++k) {
    CheckOk(map.Put(k, k), "put");
  }

  // ONE WindowedSignals instance for the whole measurement, toggled via
  // Pause/ResumeWindowed (a pointer move). Rebuilding it per toggle — what
  // set_options does — zeroes its ~half-MB ring allocation, which evicts
  // the tree's hot lines right before the windowed chunk runs and shows up
  // as fake recording overhead.
  client.recorder().set_options(ObsOptions::WindowedOnly());

  // Warm both paths once (page-ins, branch predictors) before timing.
  client.recorder().PauseWindowed();
  ProbePassCpuNs(map, cfg.keys, cfg.probes / 4, 7);
  client.recorder().ResumeWindowed();
  ProbePassCpuNs(map, cfg.keys, cfg.probes / 4, 7);

  // Each pass splits its probes into short alternating off/windowed CHUNKS
  // (sub-millisecond) and keeps the pass's win/off ratio over the summed
  // chunk times. Even thread-CPU time drifts by tens of percent at the
  // millisecond scale on a shared box (frequency scaling, sibling load), so
  // back-to-back whole-pass pairs still can't resolve a 5% budget;
  // fine-grained interleaving makes both modes sample nearly the same
  // machine state. The chunk order flips every pass so warm-up effects
  // cancel, and the median over passes discards the ones an interference
  // episode still splits.
  constexpr int kChunks = 24;  // per mode, per pass
  const int chunk_probes = cfg.probes / kChunks;
  std::vector<double> ratios;
  std::vector<uint64_t> off_times;
  std::vector<uint64_t> win_times;
  ratios.reserve(cfg.passes);
  for (int p = 0; p < cfg.passes; ++p) {
    uint64_t off_ns = 0;
    uint64_t win_ns = 0;
    const bool off_first = (p % 2) == 0;
    for (int c = 0; c < kChunks; ++c) {
      // The two timed modes of a chunk share a seed (identical key
      // sequence); each chunk advances, so a full pass still sweeps the
      // keyspace. An UNTIMED warm run of the same keys goes first: the
      // first replay of a fresh key sequence pays its compulsory cache
      // misses, and charging those to whichever mode happened to run first
      // would swamp the budget being measured.
      const uint64_t seed = 11 + static_cast<uint64_t>(p) * kChunks + c;
      client.recorder().PauseWindowed();
      ProbePassCpuNs(map, cfg.keys, chunk_probes, seed);
      const bool this_off_first = off_first == (c % 2 == 0);
      for (int half = 0; half < 2; ++half) {
        if (this_off_first == (half == 0)) {
          client.recorder().PauseWindowed();
          off_ns += ProbePassCpuNs(map, cfg.keys, chunk_probes, seed);
        } else {
          client.recorder().ResumeWindowed();
          win_ns += ProbePassCpuNs(map, cfg.keys, chunk_probes, seed);
        }
      }
    }
    client.recorder().ResumeWindowed();
    off_times.push_back(off_ns);
    win_times.push_back(win_ns);
    ratios.push_back(static_cast<double>(win_ns) /
                     static_cast<double>(off_ns));
  }
  auto median_u64 = [](std::vector<uint64_t>& v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  std::sort(ratios.begin(), ratios.end());
  OverheadResult r;
  r.off_cpu_ns = median_u64(off_times);
  r.windowed_cpu_ns = median_u64(win_times);
  r.overhead = ratios[ratios.size() / 2] - 1.0;
  return r;
}

// ---- Claim 2: RecentP99 tracks a node slowdown within 2 windows ----

struct TrackingResult {
  uint64_t p99_baseline = 0;
  uint64_t p99_slow = 0;       // after <= 2 windows of slowed work
  uint64_t p99_recovered = 0;  // after 2 clean windows post-clear
  double ewma_slow_node = 0.0;
  double ewma_fast_node = 0.0;
  uint64_t extra_ns = 0;
  bool detected = false;
  bool recovered = false;
};

TrackingResult MeasureTracking() {
  FabricOptions fabric_opts;
  fabric_opts.num_nodes = 4;
  fabric_opts.node_capacity = 64ull << 20;
  BenchEnv env(fabric_opts);
  FarClient& client = env.NewClient(ObsOptions::WindowedOnly());
  WindowedSignals* signals = client.recorder().windowed();

  // One word array per node: uniform reads spread evenly, and per-node
  // attribution (the load EWMAs) is exact.
  constexpr uint64_t kWordsPerNode = 16 * 1024;
  FarAddr bases[4];
  for (NodeId n = 0; n < 4; ++n) {
    bases[n] = CheckOk(
        env.alloc().Allocate(kWordsPerNode * 8, AllocHint::OnNode(n)),
        "alloc");
  }
  Rng rng(42);
  const auto op = [&] {
    const uint64_t r = rng.Next();
    const FarAddr addr = bases[r % 4] + 8 * ((r >> 2) % kWordsPerNode);
    CheckOk(client.ReadWord(addr).status(), "rd");
  };
  const auto run_for = [&](uint64_t sim_ns) {
    const uint64_t until = client.clock().now_ns() + sim_ns;
    while (client.clock().now_ns() < until) {
      op();
    }
  };
  const uint64_t window_ns = signals->options().window_ns;

  TrackingResult r;
  // Baseline: fill more than one full window of steady traffic.
  run_for(2 * window_ns);
  signals->Drain();
  r.p99_baseline = signals->RecentP99All();

  // Inject: node 2 slows by ~4x a typical one-sided RTT. Charged inside
  // AccountRoundTrip, so every op touching node 2 stretches by extra_ns.
  r.extra_ns = 4000;
  const NodeId slow_node = 2;
  env.fabric().node(slow_node).set_extra_service_ns(r.extra_ns);
  // The claim: the rolling p99 reflects the shift within TWO windows of
  // simulated work (old sub-windows still hold fast samples until they
  // rotate out — two windows bounds full turnover).
  run_for(2 * window_ns);
  signals->Drain();
  r.p99_slow = signals->RecentP99All();
  r.ewma_slow_node = signals->NodeLoadEwma(slow_node);
  r.ewma_fast_node = signals->NodeLoadEwma(0);
  // 1/4 of ops hit the slow node, so the 99th percentile must sit above
  // baseline + extra (minus histogram bucket slack: p99 buckets are
  // log-scaled, allow half the injected delta).
  r.detected = r.p99_slow >= r.p99_baseline + r.extra_ns / 2;

  // Clear and let the slowed samples rotate out of the window entirely.
  env.fabric().node(slow_node).set_extra_service_ns(0);
  run_for(2 * window_ns);
  signals->Drain();
  r.p99_recovered = signals->RecentP99All();
  r.recovered = r.p99_recovered < r.p99_baseline + r.extra_ns / 2;
  return r;
}

// ---- Export surface: hub + snapshotter + prom text + health tables ----

struct PipelineResult {
  uint64_t ticks = 0;
  uint64_t gauge_count = 0;
  uint64_t telemetry_lines = 0;
  double wb_batches_flushed = 0.0;
  double cache_windowed_lookups = 0.0;
  double evictor_passes = 0.0;
  bool ok = false;
};

PipelineResult RunPipeline(const Config& cfg, const std::string& telemetry,
                           bool verbose) {
  FabricOptions fabric_opts;
  fabric_opts.num_nodes = 2;
  fabric_opts.node_capacity = 128ull << 20;
  BenchEnv env(fabric_opts);
  FarClient& client = env.NewClient(ObsOptions::WindowedOnly());

  HtTree::Options options;
  options.buckets_per_table = 4096;
  options.cache.budget_bytes = 32 << 10;  // small: the evictor has work
  options.cache.admit_after = 0;
  options.cache.background_eviction = true;
  HtTree map =
      CheckOk(HtTree::Create(&client, &env.alloc(), options), "map");
  WriteBehindOptions wb;
  wb.max_batch = 64;
  wb.flush_interval_us = 50;
  CheckOk(map.EnableWriteBehind(wb), "wb");
  BackgroundEvictor evictor(&env.fabric(), /*client_id=*/4242);
  evictor.Watch(map.near_cache());

  // Every layer registers its gauges with one hub; the snapshotter samples
  // them on a wall-clock cadence while app + flusher + evictor threads run.
  TelemetryHub hub;
  GaugeGroup gauges(&hub);
  client.recorder().AddGauges(&gauges, "client0", env.fabric().num_nodes());
  env.fabric().AddGauges(&gauges, "fabric");
  map.near_cache()->AddGauges(&gauges, "cache");
  map.write_behind()->AddGauges(&gauges, "wb");
  evictor.AddGauges(&gauges, "evictor");

  SnapshotterOptions snap_opts;
  snap_opts.path = telemetry;
  snap_opts.interval_ms = 5;
  TelemetrySnapshotter snapshotter(&hub, snap_opts);
  CheckOk(snapshotter.Start(), "snapshotter start");

  Rng rng(99);
  const uint64_t span = 4000;
  for (int i = 0; i < cfg.pipeline_ops; ++i) {
    const uint64_t key = 1 + rng.Next() % span;
    if (i % 4 == 0) {
      CheckOk(map.Put(key, i + 1), "put");
    } else {
      (void)map.Get(key);
    }
  }
  CheckOk(map.FlushBarrier(), "barrier");
  evictor.SweepNow();
  snapshotter.TickNow();
  snapshotter.Stop();

  PipelineResult r;
  r.ticks = snapshotter.ticks();
  r.gauge_count = hub.gauge_count();
  for (const TelemetryHub::Sample& s : hub.Snapshot()) {
    if (s.name == "wb.batches_flushed") {
      r.wb_batches_flushed = s.value;
    } else if (s.name == "cache.windowed_lookups") {
      r.cache_windowed_lookups = s.value;
    } else if (s.name == "evictor.passes") {
      r.evictor_passes = s.value;
    }
  }
  const std::string prom = hub.ExportPromText();

  if (verbose) {
    env.fabric().DumpHealth(std::cout);
    // Quiesced: app thread is this thread, flusher idles post-barrier,
    // evictor pass completed — the single-owner stats are stable to copy.
    const ClientStats fleet[] = {
        client.stats(), map.write_behind()->flusher_client()->stats(),
        evictor.stats()};
    Fabric::DumpClientStats(std::cout, fleet);
    std::cout << "\nprom export (" << r.gauge_count << " gauges, "
              << prom.size() << " bytes), telemetry: " << telemetry << "\n";
  }

  uint64_t lines = 0;
  {
    std::ifstream in(telemetry);
    std::string line;
    while (std::getline(in, line)) {
      if (line.rfind("{\"tick\":", 0) == 0) {
        ++lines;
      }
    }
  }
  r.telemetry_lines = lines;

  evictor.Unwatch(map.near_cache());
  evictor.StopAndJoin();
  r.ok = r.ticks >= 1 && r.telemetry_lines >= r.ticks &&
         r.gauge_count >= 30 && r.wb_batches_flushed > 0 &&
         r.cache_windowed_lookups > 0 && r.evictor_passes > 0 &&
         prom.find("fmds_") != std::string::npos;
  return r;
}

}  // namespace
}  // namespace fmds

int main(int argc, char** argv) {
  using namespace fmds;

  const bool smoke = FlagPresent(argc, argv, "--smoke");
  Config cfg;
  if (smoke) {
    cfg.keys = 5000;
    cfg.probes = 15000;
    cfg.passes = 7;
    cfg.overhead_bound = 0.30;
    cfg.pipeline_ops = 2000;
  }
  const std::string telemetry =
      TelemetryOutputPath(argc, argv, "TELEMETRY_e15.jsonl");

  const OverheadResult overhead = MeasureOverhead(cfg);
  const TrackingResult tracking = MeasureTracking();
  const PipelineResult pipeline = RunPipeline(cfg, telemetry, !smoke);

  Table table({"check", "value", "bound", "pass"});
  table.AddRow({"windowed overhead", Table::Cell(100.0 * overhead.overhead, 2),
                Table::Cell(100.0 * cfg.overhead_bound, 0),
                overhead.overhead < cfg.overhead_bound ? "yes" : "NO"});
  table.AddRow({"p99 shift detected (ns)",
                Table::Cell(tracking.p99_slow - std::min(tracking.p99_slow,
                                                         tracking.p99_baseline)),
                Table::Cell(tracking.extra_ns / 2),
                tracking.detected ? "yes" : "NO"});
  table.AddRow({"p99 recovered (ns)", Table::Cell(tracking.p99_recovered),
                Table::Cell(tracking.p99_baseline + tracking.extra_ns / 2),
                tracking.recovered ? "yes" : "NO"});
  table.AddRow({"export surface", Table::Cell(pipeline.ticks), "-",
                pipeline.ok ? "yes" : "NO"});
  table.Print(std::cout, "E15: live windowed telemetry gates");

  std::cout << "\nsummary: overhead = " << 100.0 * overhead.overhead
            << "% (bound " << 100.0 * cfg.overhead_bound << "%); p99 "
            << tracking.p99_baseline << " -> " << tracking.p99_slow
            << " ns under +" << tracking.extra_ns << " ns on 1/4 nodes, back "
            << "to " << tracking.p99_recovered << " ns after expiry; "
            << pipeline.ticks << " snapshotter ticks, "
            << pipeline.gauge_count << " gauges\n";

  BenchJson json;
  json.Begin("overhead");
  json.Int("probes", static_cast<uint64_t>(cfg.probes));
  json.Int("passes", static_cast<uint64_t>(cfg.passes));
  json.Int("off_cpu_ns", overhead.off_cpu_ns);
  json.Int("windowed_cpu_ns", overhead.windowed_cpu_ns);
  json.Num("overhead_frac", overhead.overhead, 4);
  json.Num("bound_frac", cfg.overhead_bound);
  json.Begin("load_shift");
  json.Int("extra_service_ns", tracking.extra_ns);
  json.Int("p99_baseline_ns", tracking.p99_baseline);
  json.Int("p99_slow_ns", tracking.p99_slow);
  json.Int("p99_recovered_ns", tracking.p99_recovered);
  json.Num("ewma_slow_node_ns", tracking.ewma_slow_node, 1);
  json.Num("ewma_fast_node_ns", tracking.ewma_fast_node, 1);
  json.Int("windows_to_detect", 2);
  json.Begin("export");
  json.Int("snapshotter_ticks", pipeline.ticks);
  json.Int("telemetry_lines", pipeline.telemetry_lines);
  json.Int("gauges", pipeline.gauge_count);
  json.Num("wb_batches_flushed", pipeline.wb_batches_flushed, 1);
  json.Num("cache_windowed_lookups", pipeline.cache_windowed_lookups, 1);
  json.Num("evictor_passes", pipeline.evictor_passes, 1);
  json.Begin("headline");
  json.Int("overhead_ok", overhead.overhead < cfg.overhead_bound ? 1 : 0);
  json.Int("tracking_ok", tracking.detected && tracking.recovered ? 1 : 0);
  json.Int("export_ok", pipeline.ok ? 1 : 0);
  json.Write(JsonOutputPath(argc, argv, "BENCH_e15.json"));

  const bool pass = overhead.overhead < cfg.overhead_bound &&
                    tracking.detected && tracking.recovered && pipeline.ok;
  return pass ? 0 : 1;
}
