// E13 — optimistic multi-key transactions over ShardedMap (src/core/txn.*):
// the paper's "far memory wants transactions built from one-sided CAS"
// direction, measured as a transfer workload (YCSB-T shape: move one unit
// between two accounts).
//
// Two claims, both enforced by the exit code:
//   1. Batching: a txn moving B=4 transfers commits its 8-key read set in
//      one doorbell (MultiGet probe wave) and its write set in two more
//      (prepare, commit) — against the per-key sequential baseline
//      (read a, read b, 2-RTT put a, 2-RTT put b = 6 dependent RTTs per
//      transfer) that is >= 2x simulated throughput at 8 nodes under low
//      contention.
//   2. Liveness: at Zipf(0.99) skew with 4 concurrent clients (batch=1),
//      the abort rate — aborted attempts / all attempts — stays < 25%, so
//      OCC retries are a tax, not a wall.
//
// Flags: --smoke (tiny config for CI), --repeat=N (median-of-N),
// --json=<path>.
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/core/sharded_map.h"
#include "src/core/txn.h"

namespace fmds {
namespace {

struct Config {
  uint32_t nodes = 8;
  uint32_t shards = 8;
  uint64_t keys = 24000;
  uint64_t buckets = 8192;  // low load factor: probes resolve at the head
  int warmup_transfers = 1000;
  int transfers = 12000;
  // Contention rows (multi-threaded, batch=1).
  uint32_t threads = 4;
  int transfers_per_thread = 2000;
};

FabricOptions TxnFabric(uint32_t nodes) {
  FabricOptions options;
  options.num_nodes = nodes;
  options.node_capacity = 256ull << 20;
  return options;
}

ShardedMap::Options MapOptions(const Config& cfg) {
  ShardedMap::Options options;
  options.num_shards = cfg.shards;
  options.shard.buckets_per_table = cfg.buckets;
  return options;
}

constexpr uint64_t kInitialBalance = 1 << 20;

// Draws `n` distinct keys into `out`.
void DrawKeys(Rng& rng, uint64_t key_space, size_t n,
              std::vector<uint64_t>* out) {
  out->clear();
  while (out->size() < n) {
    const uint64_t k = rng.NextBelow(key_space) + 1;
    bool dup = false;
    for (uint64_t other : *out) {
      dup |= other == k;
    }
    if (!dup) {
      out->push_back(k);
    }
  }
}

struct RunResult {
  double transfers_per_sec = 0.0;
  double far_per_transfer = 0.0;
  double abort_rate = 0.0;
  uint64_t commits = 0;
  uint64_t aborts = 0;
};

// Per-key sequential baseline: the transfer every far-memory KV supports
// today — two dependent reads, then two 2-RTT stores, no atomicity.
RunResult RunBaseline(const Config& cfg, uint64_t seed) {
  BenchEnv env(TxnFabric(cfg.nodes));
  FarClient& client = env.NewClient();
  ShardedMap map = CheckOk(
      ShardedMap::Create(&client, &env.alloc(), MapOptions(cfg)), "create");
  for (uint64_t k = 1; k <= cfg.keys; ++k) {
    CheckOk(map.Put(k, kInitialBalance), "preload");
  }
  Rng rng(seed);
  std::vector<uint64_t> pair;
  const auto transfer = [&] {
    DrawKeys(rng, cfg.keys, 2, &pair);
    const uint64_t from = CheckOk(map.Get(pair[0]), "get");
    const uint64_t to = CheckOk(map.Get(pair[1]), "get");
    CheckOk(map.Put(pair[0], from - 1), "put");
    CheckOk(map.Put(pair[1], to + 1), "put");
  };
  for (int i = 0; i < cfg.warmup_transfers; ++i) {
    transfer();
  }
  const ClientStats before = client.stats();
  const uint64_t t0 = client.clock().now_ns();
  for (int i = 0; i < cfg.transfers; ++i) {
    transfer();
  }
  const ClientStats delta = client.stats().Delta(before);
  const uint64_t elapsed = client.clock().now_ns() - t0;

  RunResult r;
  r.transfers_per_sec = cfg.transfers * 1e9 / static_cast<double>(elapsed);
  r.far_per_transfer = static_cast<double>(delta.far_ops) / cfg.transfers;
  return r;
}

// Txn mode: B transfers (2B distinct keys) per transaction. The read set
// rides one MultiGet doorbell; commit adds prepare + commit doorbells.
RunResult RunTxnMode(const Config& cfg, int batch, uint64_t seed) {
  BenchEnv env(TxnFabric(cfg.nodes));
  FarClient& client = env.NewClient();
  ShardedMap map = CheckOk(
      ShardedMap::Create(&client, &env.alloc(), MapOptions(cfg)), "create");
  for (uint64_t k = 1; k <= cfg.keys; ++k) {
    CheckOk(map.Put(k, kInitialBalance), "preload");
  }
  Rng rng(seed);
  TxnOptions topt;
  topt.seed = seed;
  std::vector<uint64_t> keys;
  const auto run_batch = [&] {
    DrawKeys(rng, cfg.keys, 2 * batch, &keys);
    CheckOk(RunTxn(&map, topt,
                   [&](Txn& txn) -> Status {
                     auto values = txn.MultiGet(keys);
                     for (auto& v : values) {
                       FMDS_RETURN_IF_ERROR(v.status());
                     }
                     for (int b = 0; b < batch; ++b) {
                       FMDS_RETURN_IF_ERROR(
                           txn.Put(keys[2 * b], *values[2 * b] - 1));
                       FMDS_RETURN_IF_ERROR(
                           txn.Put(keys[2 * b + 1], *values[2 * b + 1] + 1));
                     }
                     return OkStatus();
                   }),
            "txn");
  };
  for (int i = 0; i < cfg.warmup_transfers / batch; ++i) {
    run_batch();
  }
  const ClientStats before = client.stats();
  const uint64_t t0 = client.clock().now_ns();
  const int batches = cfg.transfers / batch;
  for (int i = 0; i < batches; ++i) {
    run_batch();
  }
  const ClientStats delta = client.stats().Delta(before);
  const uint64_t elapsed = client.clock().now_ns() - t0;

  RunResult r;
  const int transfers = batches * batch;
  r.transfers_per_sec = transfers * 1e9 / static_cast<double>(elapsed);
  r.far_per_transfer = static_cast<double>(delta.far_ops) / transfers;
  r.commits = delta.txn_commits;
  r.aborts = delta.txn_aborts;
  const uint64_t attempts = r.commits + r.aborts;
  r.abort_rate =
      attempts > 0 ? static_cast<double>(r.aborts) / attempts : 0.0;
  return r;
}

// Contention row: `threads` concurrent clients, batch=1, Zipf-skewed
// account choice. Throughput here is wall-clock (threads really race);
// the interesting number is the abort rate.
RunResult RunContention(const Config& cfg, double theta, uint64_t seed) {
  BenchEnv env(TxnFabric(cfg.nodes));
  std::vector<FarClient*> clients;
  for (uint32_t t = 0; t < cfg.threads + 1; ++t) {
    clients.push_back(&env.NewClient());
  }
  ShardedMap root = CheckOk(
      ShardedMap::Create(clients[0], &env.alloc(), MapOptions(cfg)),
      "create");
  for (uint64_t k = 1; k <= cfg.keys; ++k) {
    CheckOk(root.Put(k, kInitialBalance), "preload");
  }
  std::vector<std::unique_ptr<ShardedMap>> maps;
  for (uint32_t t = 0; t < cfg.threads; ++t) {
    maps.push_back(std::make_unique<ShardedMap>(
        CheckOk(ShardedMap::Attach(clients[t + 1], &env.alloc(),
                                   root.directory(), MapOptions(cfg)),
                "attach")));
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (uint32_t t = 0; t < cfg.threads; ++t) {
    workers.emplace_back([&, t] {
      ShardedMap& map = *maps[t];
      ZipfGenerator zipf(cfg.keys, theta, seed + 31 * t);
      TxnOptions topt;
      topt.max_attempts = 64;
      topt.seed = seed ^ (t + 1);
      for (int i = 0; i < cfg.transfers_per_thread; ++i) {
        uint64_t from = zipf.Next() + 1;
        uint64_t to = zipf.Next() + 1;
        while (to == from) {
          to = zipf.Next() + 1;
        }
        CheckOk(RunTxn(&map, topt,
                       [&](Txn& txn) -> Status {
                         FMDS_ASSIGN_OR_RETURN(uint64_t a, txn.Get(from));
                         FMDS_ASSIGN_OR_RETURN(uint64_t b, txn.Get(to));
                         FMDS_RETURN_IF_ERROR(txn.Put(from, a - 1));
                         FMDS_RETURN_IF_ERROR(txn.Put(to, b + 1));
                         return OkStatus();
                       }),
                "contended txn");
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  RunResult r;
  for (uint32_t t = 0; t < cfg.threads; ++t) {
    r.commits += clients[t + 1]->stats().txn_commits;
    r.aborts += clients[t + 1]->stats().txn_aborts;
  }
  const uint64_t attempts = r.commits + r.aborts;
  r.abort_rate =
      attempts > 0 ? static_cast<double>(r.aborts) / attempts : 0.0;
  r.transfers_per_sec =
      wall > 0.0 ? cfg.threads * cfg.transfers_per_thread / wall : 0.0;
  return r;
}

}  // namespace
}  // namespace fmds

int main(int argc, char** argv) {
  using namespace fmds;

  const bool smoke = FlagPresent(argc, argv, "--smoke");
  const int repeat = RepeatArg(argc, argv);

  Config cfg;
  std::vector<double> thetas{0.0, 0.8, 0.99};
  if (smoke) {
    cfg.keys = 4000;
    cfg.buckets = 2048;
    cfg.warmup_transfers = 200;
    cfg.transfers = 2000;
    cfg.threads = 2;
    cfg.transfers_per_thread = 400;
    thetas = {0.99};
  }

  BenchJson json;
  Table table({"mode", "batch", "theta", "threads", "Ktps", "far/transfer",
               "abort%", "commits"});

  // --- Claim 1: batched txns vs the sequential per-key baseline ---
  double base_tps = 0.0;
  double batch4_tps = 0.0;
  for (int mode = 0; mode < 3; ++mode) {
    std::vector<double> samples;
    RunResult r;
    for (int rep = 0; rep < repeat; ++rep) {
      const uint64_t seed = 17 + 101 * rep;
      r = mode == 0 ? RunBaseline(cfg, seed)
                    : RunTxnMode(cfg, mode == 1 ? 1 : 4, seed);
      samples.push_back(r.transfers_per_sec);
    }
    r.transfers_per_sec = Median(samples);
    const char* name =
        mode == 0 ? "baseline" : (mode == 1 ? "txn" : "txn");
    const int batch = mode == 0 ? 0 : (mode == 1 ? 1 : 4);
    if (mode == 0) {
      base_tps = r.transfers_per_sec;
    }
    if (mode == 2) {
      batch4_tps = r.transfers_per_sec;
    }
    table.AddRow({Table::Cell(name), Table::Cell(uint64_t(batch)),
                  Table::Cell(0.0, 2), Table::Cell(uint64_t(1)),
                  Table::Cell(r.transfers_per_sec / 1e3, 1),
                  Table::Cell(r.far_per_transfer, 2),
                  Table::Cell(100.0 * r.abort_rate, 1),
                  Table::Cell(r.commits)});
    json.Begin(std::string(name) + ",batch=" + std::to_string(batch));
    json.Str("mode", name);
    json.Int("batch", static_cast<uint64_t>(batch));
    json.Int("nodes", cfg.nodes);
    json.Int("keys", cfg.keys);
    json.Int("threads", 1);
    json.Int("repeat", static_cast<uint64_t>(repeat));
    json.Num("transfers_per_sec", r.transfers_per_sec);
    json.Num("far_accesses_per_transfer", r.far_per_transfer);
    json.Num("abort_rate", r.abort_rate, 4);
    json.Int("commits", r.commits);
    json.Int("aborts", r.aborts);
  }

  // --- Claim 2: abort rate vs contention (multi-threaded, batch=1) ---
  double abort99 = 1.0;
  for (double theta : thetas) {
    const RunResult r = RunContention(cfg, theta, 23);
    if (theta == 0.99) {
      abort99 = r.abort_rate;
    }
    table.AddRow({Table::Cell("contend"), Table::Cell(uint64_t(1)),
                  Table::Cell(theta, 2), Table::Cell(uint64_t(cfg.threads)),
                  Table::Cell(r.transfers_per_sec / 1e3, 1),
                  Table::Cell(0.0, 2), Table::Cell(100.0 * r.abort_rate, 1),
                  Table::Cell(r.commits)});
    char theta_name[48];
    std::snprintf(theta_name, sizeof(theta_name), "contention,theta=%.2f",
                  theta);
    json.Begin(theta_name);
    json.Str("mode", "contention");
    json.Int("batch", 1);
    json.Num("theta", theta);
    json.Int("threads", cfg.threads);
    json.Int("keys", cfg.keys);
    json.Num("wall_transfers_per_sec", r.transfers_per_sec);
    json.Num("abort_rate", r.abort_rate, 4);
    json.Int("commits", r.commits);
    json.Int("aborts", r.aborts);
  }

  table.Print(std::cout,
              "E13: multi-key optimistic transactions (transfer workload, "
              "8-node simulated fabric)");

  const double speedup = base_tps > 0.0 ? batch4_tps / base_tps : 0.0;
  std::cout << "\nsummary: txn(batch=4)/sequential-baseline = " << speedup
            << "x (target >= 2x); abort@theta0.99 = " << 100.0 * abort99
            << "% (target < 25%)\n";
  json.Begin("headline");
  json.Num("speedup_batch4_vs_baseline", speedup, 4);
  json.Num("speedup_target", 2.0);
  json.Num("abort_rate_theta099", abort99, 4);
  json.Num("abort_rate_target", 0.25);

  json.Write(JsonOutputPath(argc, argv, "BENCH_e13.json"));
  return (speedup >= 2.0 && abort99 < 0.25) ? 0 : 1;
}
