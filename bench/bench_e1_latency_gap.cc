// E1 — §2/§3.1 cost-model validation: far accesses are ~10x near accesses
// and cannot hide behind processor caches; 1 KB moves in ~1 µs.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/common/bytes.h"

namespace fmds {
namespace {

void PrintLatencyGap() {
  BenchEnv env(DefaultFabric());
  auto& client = env.NewClient();
  const LatencyModel& model = env.fabric().options().latency;

  Table table({"transfer", "near_ns", "far_ns", "far/near"});
  for (uint64_t bytes : {8ull, 64ull, 256ull, 1024ull, 4096ull, 65536ull}) {
    // Near cost: the data-structure cache touch(es) a local lookup needs.
    const uint64_t near_ns = model.near_ns;
    // Far cost: measured off the simulated clock, not just the formula.
    std::vector<std::byte> buf(bytes);
    const uint64_t t0 = client.clock().now_ns();
    CheckOk(client.Read(1 << 20, buf), "read");
    const uint64_t far_ns = client.clock().now_ns() - t0;
    char label[32];
    std::snprintf(label, sizeof(label), "%llu B",
                  static_cast<unsigned long long>(bytes));
    table.AddRow({label, Table::Cell(near_ns), Table::Cell(far_ns),
                  Table::Cell(static_cast<double>(far_ns) /
                                  static_cast<double>(near_ns),
                              1)});
  }
  table.Print(std::cout,
              "E1: near vs far access latency (paper: far ~ O(1us), near ~ "
              "O(100ns), 1KB in ~1us)");

  // The paper's key arithmetic: an operation needing k far accesses vs an
  // RPC (1 round trip + server CPU).
  Table ops({"operation shape", "sim_ns"});
  for (int k : {1, 2, 4, 8}) {
    uint64_t total = 0;
    for (int i = 0; i < k; ++i) {
      const uint64_t t0 = client.clock().now_ns();
      uint64_t w;
      CheckOk(client.Read(1 << 20, AsBytes(w)), "read");
      total += client.clock().now_ns() - t0;
    }
    char label[48];
    std::snprintf(label, sizeof(label), "one-sided, %d far accesses", k);
    ops.AddRow({label, Table::Cell(total)});
  }
  ops.AddRow({"RPC (1 RTT + server CPU)",
              Table::Cell(model.RpcNs(16, 16))});
  ops.Print(std::cout,
            "E1b: why operations must take O(1) far accesses (§3.1)");
}

void BM_FarRead8(benchmark::State& state) {
  BenchEnv env(DefaultFabric());
  auto& client = env.NewClient();
  uint64_t w;
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.Read(1 << 20, AsBytes(w)));
  }
}
BENCHMARK(BM_FarRead8);

void BM_FarRead1K(benchmark::State& state) {
  BenchEnv env(DefaultFabric());
  auto& client = env.NewClient();
  std::vector<std::byte> buf(1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.Read(1 << 20, buf));
  }
}
BENCHMARK(BM_FarRead1K);

}  // namespace
}  // namespace fmds

int main(int argc, char** argv) {
  fmds::PrintLatencyGap();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
