// A11 — ablation of the HT-tree's two accelerators (DESIGN.md §4):
//   * indirect addressing (load0): merges the bucket dereference with the
//     item read — the §4.1 hardware proposal;
//   * client bucket-head hints: let stores CAS against a predicted head —
//     the §3 "data caches at clients" component.
// Rows show far accesses per Get and per Put with each knob on/off;
// this isolates how much of the headline 1-access/2-access behaviour comes
// from the hardware vs the structure vs the client cache.
#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/core/ht_tree.h"

namespace fmds {
namespace {

constexpr uint64_t kKeys = 50000;
constexpr int kProbes = 3000;

struct AblationRow {
  double get_far;
  double put_far;
};

AblationRow Run(bool use_indirect, bool use_head_hints) {
  BenchEnv env(DefaultFabric());
  auto& client = env.NewClient();
  HtTree::Options options;
  options.buckets_per_table = 8192;
  options.use_indirect = use_indirect;
  options.use_head_hints = use_head_hints;
  auto map = CheckOk(HtTree::Create(&client, &env.alloc(), options), "map");
  for (uint64_t k = 1; k <= kKeys; ++k) {
    CheckOk(map.Put(k, k), "load");
  }
  Rng rng(17);
  AblationRow row;
  {
    const uint64_t before = client.stats().far_ops;
    for (int i = 0; i < kProbes; ++i) {
      CheckOk(map.Get(rng.NextInRange(1, kKeys)).status(), "get");
    }
    row.get_far =
        static_cast<double>(client.stats().far_ops - before) / kProbes;
  }
  {
    const uint64_t before = client.stats().far_ops;
    for (int i = 0; i < kProbes; ++i) {
      // Overwrites of existing keys: the paper's "store" case.
      CheckOk(map.Put(rng.NextInRange(1, kKeys), i), "put");
    }
    row.put_far =
        static_cast<double>(client.stats().far_ops - before) / kProbes;
  }
  return row;
}

}  // namespace
}  // namespace fmds

int main() {
  using namespace fmds;
  Table table({"indirect (load0)", "head hints", "far/Get", "far/Put"});
  for (bool indirect : {true, false}) {
    for (bool hints : {true, false}) {
      auto row = Run(indirect, hints);
      table.AddRow({indirect ? "on" : "off", hints ? "on" : "off",
                    Table::Cell(row.get_far, 2),
                    Table::Cell(row.put_far, 2)});
    }
  }
  table.Print(std::cout,
              "A11: HT-tree ablation — the hardware primitive buys the "
              "1-access Get; the client hint cache buys the 2-access Put");
  return 0;
}
