// E9 — §7.2: notification scalability mechanisms.
//  (a) Number of subscriptions: coarsening the spatial granularity (one
//      subscription over an enclosing range instead of many fine ones)
//      trades subscription-table size for false positives.
//  (b) Network traffic: temporal coalescing merges back-to-back events.
//  (c) Overload: bounded channels drop events and surface a loss warning
//      the algorithm must handle.
//  (d) Number of subscribers: broker fan-out — 1 hardware subscriber
//      re-distributing to k software subscribers keeps hardware state O(1).
#include "bench/bench_util.h"
#include "src/common/rng.h"

namespace fmds {
namespace {

constexpr uint64_t kWords = 512;            // watched region: 4 KB page
constexpr int kWrites = 4000;

// (a) fine vs coarse subscriptions.
void GranularityTable() {
  Table table({"granularity", "subs", "events fired", "relevant",
               "false-positive frac"});
  for (uint64_t words_per_sub : {1ull, 8ull, 64ull, 512ull}) {
    BenchEnv env(DefaultFabric());
    auto& writer = env.NewClient();
    ClientOptions big;
    big.channel_capacity = 1 << 20;
    FarClient watcher(&env.fabric(), 42, big);
    const FarAddr base =
        CheckOk(env.alloc().Allocate(kWords * kWordSize, AllocHint::Any(),
                                     kPageSize),
                "region");
    // The client *cares* about every 8th word only.
    std::vector<bool> interesting(kWords, false);
    for (uint64_t w = 0; w < kWords; w += 8) {
      interesting[w] = true;
    }
    uint64_t subs = 0;
    for (uint64_t w = 0; w < kWords; w += words_per_sub) {
      // Subscribe to a coarse range only if it contains something we care
      // about (for word granularity: only the interesting words).
      bool covers = false;
      for (uint64_t i = w; i < w + words_per_sub && i < kWords; ++i) {
        covers |= interesting[i];
      }
      if (!covers) {
        continue;
      }
      NotifySpec spec;
      spec.mode = NotifyMode::kOnWrite;
      spec.addr = base + w * kWordSize;
      spec.len = std::min(words_per_sub, kWords - w) * kWordSize;
      spec.policy.coalesce = false;
      CheckOk(watcher.Subscribe(spec).status(), "subscribe");
      ++subs;
    }
    Rng rng(7);
    for (int i = 0; i < kWrites; ++i) {
      CheckOk(writer.WriteWord(base + rng.NextBelow(kWords) * kWordSize, i),
              "write");
    }
    uint64_t fired = 0;
    uint64_t relevant = 0;
    while (auto event = watcher.channel().Poll()) {
      if (event->kind != NotifyEventKind::kChanged) {
        continue;
      }
      ++fired;
      const uint64_t word = (event->addr - base) / kWordSize;
      relevant += interesting[word] ? 1 : 0;
    }
    table.AddRow({Table::Cell(words_per_sub * kWordSize), Table::Cell(subs),
                  Table::Cell(fired), Table::Cell(relevant),
                  Table::Cell(fired == 0 ? 0.0
                                         : 1.0 - static_cast<double>(relevant) /
                                                     static_cast<double>(fired),
                              3)});
  }
  table.Print(std::cout,
              "E9a: spatial granularity — fewer subscriptions, more false "
              "positives (subscriber re-checks)");
}

// (b) temporal coalescing.
void CoalescingTable() {
  Table table({"burst", "coalesce", "published", "delivered",
               "traffic reduction"});
  for (int burst : {1, 8, 64}) {
    for (bool coalesce : {false, true}) {
      BenchEnv env(DefaultFabric());
      auto& writer = env.NewClient();
      ClientOptions big;
      big.channel_capacity = 1 << 20;
      FarClient watcher(&env.fabric(), 43, big);
      const FarAddr addr = CheckOk(env.alloc().Allocate(64), "word");
      NotifySpec spec;
      spec.mode = NotifyMode::kOnWrite;
      spec.addr = addr;
      spec.len = 64;
      spec.policy.coalesce = coalesce;
      CheckOk(watcher.Subscribe(spec).status(), "subscribe");
      uint64_t delivered = 0;
      for (int round = 0; round < kWrites / burst; ++round) {
        for (int i = 0; i < burst; ++i) {
          CheckOk(writer.WriteWord(addr + (i % 8) * 8, i), "write");
        }
        // The subscriber drains between bursts (the paper's temporal
        // batching window).
        delivered += watcher.channel().Drain().size();
      }
      table.AddRow(
          {Table::Cell(static_cast<int64_t>(burst)),
           coalesce ? "on" : "off",
           Table::Cell(watcher.channel().published()),
           Table::Cell(delivered),
           Table::Cell(static_cast<double>(watcher.channel().published()) /
                           static_cast<double>(std::max<uint64_t>(delivered,
                                                                  1)),
                       1)});
    }
  }
  table.Print(std::cout,
              "E9b: temporal coalescing — events merged per delivery");
}

// (c) overload: drops + loss warnings.
void OverloadTable() {
  Table table({"channel_cap", "writes", "delivered", "lost",
               "loss warnings seen"});
  for (size_t capacity : {16ull, 256ull, 65536ull}) {
    BenchEnv env(DefaultFabric());
    auto& writer = env.NewClient();
    ClientOptions opts;
    opts.channel_capacity = capacity;
    FarClient watcher(&env.fabric(), 44, opts);
    const FarAddr addr = CheckOk(env.alloc().Allocate(8), "word");
    NotifySpec spec;
    spec.mode = NotifyMode::kOnWrite;
    spec.addr = addr;
    spec.len = 8;
    spec.policy.coalesce = false;
    CheckOk(watcher.Subscribe(spec).status(), "subscribe");
    for (int i = 0; i < kWrites; ++i) {
      CheckOk(writer.WriteWord(addr, i), "write");
    }
    uint64_t delivered = 0;
    uint64_t warnings = 0;
    while (auto event = watcher.channel().Poll()) {
      if (event->kind == NotifyEventKind::kLossWarning) {
        ++warnings;
      } else {
        ++delivered;
      }
    }
    table.AddRow({Table::Cell(static_cast<uint64_t>(capacity)),
                  Table::Cell(static_cast<int64_t>(kWrites)),
                  Table::Cell(delivered),
                  Table::Cell(watcher.channel().overflow_lost()),
                  Table::Cell(warnings)});
  }
  table.Print(std::cout,
              "E9c: overload — bounded channels drop and surface ONE loss "
              "warning (algorithms fall back to versions/refresh)");
}

// (d) broker fan-out: hardware sees 1 subscriber; software re-distributes.
void BrokerTable() {
  Table table({"subscribers", "direct hw subs", "brokered hw subs",
               "events via broker"});
  for (int subscribers : {4, 16, 64}) {
    BenchEnv env(DefaultFabric());
    auto& writer = env.NewClient();
    ClientOptions big;
    big.channel_capacity = 1 << 20;
    FarClient broker(&env.fabric(), 45, big);
    const FarAddr addr = CheckOk(env.alloc().Allocate(8), "word");
    NotifySpec spec;
    spec.mode = NotifyMode::kOnWrite;
    spec.addr = addr;
    spec.len = 8;
    spec.policy.coalesce = false;
    CheckOk(broker.Subscribe(spec).status(), "subscribe");
    // Software subscriber queues fed by the broker.
    std::vector<uint64_t> delivered(subscribers, 0);
    for (int i = 0; i < 1000; ++i) {
      CheckOk(writer.WriteWord(addr, i), "write");
      while (auto event = broker.channel().Poll()) {
        for (int s = 0; s < subscribers; ++s) {
          ++delivered[s];  // broker re-publishes over the network
        }
      }
    }
    uint64_t total = 0;
    for (uint64_t d : delivered) {
      total += d;
    }
    table.AddRow({Table::Cell(static_cast<int64_t>(subscribers)),
                  Table::Cell(static_cast<int64_t>(subscribers)),
                  Table::Cell(uint64_t{1}), Table::Cell(total)});
  }
  table.Print(std::cout,
              "E9d: broker fan-out — hardware subscription state stays O(1) "
              "regardless of subscriber count");
}

}  // namespace
}  // namespace fmds

int main() {
  fmds::GranularityTable();
  fmds::CoalescingTable();
  fmds::OverloadTable();
  fmds::BrokerTable();
  return 0;
}
