// E4 — §5.2's geometry claim: "An HT-tree can store 1 trillion items with a
// tree of 10M nodes (taking 100s of MB of cache space) and 10M hash tables
// of 100K elements each", with 1-far-access lookups; vs a client-cached
// B-tree, which needs O(n / fanout) cache for the same property.
//
// We measure the cache-bytes / far-accesses trade at laptop scale and then
// extrapolate the paper's trillion-item arithmetic from the same geometry.
#include "bench/bench_util.h"
#include "src/baselines/btree.h"
#include "src/common/rng.h"
#include "src/core/ht_tree.h"

namespace fmds {
namespace {

struct Measured {
  double far_per_lookup;
  uint64_t cache_bytes;
  uint64_t tables;
};

Measured MeasureHtTree(uint64_t items, uint64_t buckets_per_table) {
  BenchEnv env(DefaultFabric(2ull << 30));
  auto& client = env.NewClient();
  HtTree::Options options;
  options.buckets_per_table = buckets_per_table;
  // Pre-split so the load phase does not dominate the run.
  uint32_t depth = 0;
  while ((buckets_per_table << depth) * 2 < items) {
    ++depth;
  }
  options.initial_depth = std::min<uint32_t>(depth, 12);
  auto map = CheckOk(HtTree::Create(&client, &env.alloc(), options), "map");
  for (uint64_t k = 1; k <= items; ++k) {
    CheckOk(map.Put(k, k), "put");
  }
  Rng rng(5);
  const int probes = 2000;
  const uint64_t before = client.stats().far_ops;
  for (int i = 0; i < probes; ++i) {
    CheckOk(map.Get(rng.NextInRange(1, items)).status(), "get");
  }
  Measured m;
  m.far_per_lookup =
      static_cast<double>(client.stats().far_ops - before) / probes;
  m.cache_bytes = map.cache_bytes();
  m.tables = map.cached_tables();
  return m;
}

Measured MeasureCachedBTree(uint64_t items) {
  BenchEnv env(DefaultFabric(2ull << 30));
  auto& client = env.NewClient();
  FarBTree::Options options;
  options.fanout = 16;
  options.cache_internal = true;
  auto tree = CheckOk(FarBTree::Create(&client, &env.alloc(), options), "bt");
  for (uint64_t k = 1; k <= items; ++k) {
    CheckOk(tree.Put(k, k), "put");
  }
  Rng rng(5);
  // Warm: touch the whole key space so every internal node is cached.
  for (uint64_t k = 1; k <= items; k += 7) {
    CheckOk(tree.Get(k).status(), "warm");
  }
  const int probes = 2000;
  const uint64_t before = client.stats().far_ops;
  for (int i = 0; i < probes; ++i) {
    CheckOk(tree.Get(rng.NextInRange(1, items)).status(), "get");
  }
  Measured m;
  m.far_per_lookup =
      static_cast<double>(client.stats().far_ops - before) / probes;
  m.cache_bytes = tree.cache_bytes();
  m.tables = 0;
  return m;
}

}  // namespace
}  // namespace fmds

int main() {
  using namespace fmds;
  Table table({"items", "structure", "far/lookup", "client_cache_B",
               "cache_B/item"});
  for (uint64_t items : {20000ull, 100000ull, 400000ull}) {
    auto ht = MeasureHtTree(items, 4096);
    char n_label[32];
    std::snprintf(n_label, sizeof(n_label), "%llu",
                  static_cast<unsigned long long>(items));
    table.AddRow({n_label, "HT-tree", Table::Cell(ht.far_per_lookup, 2),
                  Table::Cell(ht.cache_bytes),
                  Table::Cell(static_cast<double>(ht.cache_bytes) /
                                  static_cast<double>(items),
                              3)});
    auto bt = MeasureCachedBTree(items);
    table.AddRow({n_label, "B-tree cached", Table::Cell(bt.far_per_lookup, 2),
                  Table::Cell(bt.cache_bytes),
                  Table::Cell(static_cast<double>(bt.cache_bytes) /
                                  static_cast<double>(items),
                              3)});
  }
  table.Print(std::cout,
              "E4a: 1-far-access lookups — what they cost in client cache");

  // The paper's arithmetic, reproduced from the structure's geometry:
  // tables of 100K elements, trie of ~2x tables nodes, 32 B per cached node.
  Table extrapolation({"items", "tables(100K each)", "trie nodes",
                       "client cache", "B-tree cache (fanout 16)"});
  for (double items : {1e9, 1e12}) {
    const double tables = items / 100000.0;
    const double nodes = 2.0 * tables;  // internal + leaf
    const double cache_mb = nodes * 32.0 / 1e6;
    const double btree_cache_gb = (items / 16.0) * 32.0 / 1e9;
    char items_label[16];
    char cache_label[32];
    char btree_label[32];
    std::snprintf(items_label, sizeof(items_label), "%.0e", items);
    std::snprintf(cache_label, sizeof(cache_label), "%.0f MB", cache_mb);
    std::snprintf(btree_label, sizeof(btree_label), "%.0f GB",
                  btree_cache_gb);
    extrapolation.AddRow({items_label,
                          Table::Cell(tables, 0),
                          Table::Cell(nodes, 0), cache_label, btree_label});
  }
  extrapolation.Print(
      std::cout,
      "E4b: extrapolated geometry (paper: 1T items -> ~10M tables, 100s of "
      "MB of cache; a cached B-tree would need billions of entries)");
  return 0;
}
