// E2 — §1/§5.2: far accesses per lookup across data structures and sizes.
// "linked lists take O(n) far accesses, while balanced trees and skip lists
//  take O(log n)" — and the HT-tree takes ~1.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench/bench_util.h"
#include "src/baselines/btree.h"
#include "src/baselines/chained_hash.h"
#include "src/baselines/linked_list.h"
#include "src/baselines/neighborhood_hash.h"
#include "src/baselines/skip_list.h"
#include "src/common/rng.h"
#include "src/core/ht_tree.h"

namespace fmds {
namespace {

struct Sample {
  double far_accesses;
  double bytes;
  uint64_t cache_bytes;
};

// Measures the mean per-lookup cost over `probes` random present keys.
template <typename Lookup>
Sample MeasureLookups(FarClient& client, uint64_t n, int probes,
                      uint64_t cache_bytes, Lookup&& lookup) {
  Rng rng(n * 7 + 5);
  const ClientStats before = client.stats();
  for (int i = 0; i < probes; ++i) {
    lookup(rng.NextInRange(1, n));
  }
  const ClientStats delta = client.stats().Delta(before);
  Sample sample;
  sample.far_accesses =
      static_cast<double>(delta.far_ops) / probes;
  sample.bytes = static_cast<double>(delta.bytes_read + delta.bytes_written) /
                 probes;
  sample.cache_bytes = cache_bytes;
  return sample;
}

// Batched variant: `probes` lookups issued as MultiGet batches of
// `batch` keys. far_ops then counts round trips actually *waited on*,
// so the column shows the doorbell win directly.
constexpr int kBatch = 16;

template <typename MultiLookup>
Sample MeasureBatchedLookups(FarClient& client, uint64_t n, int probes,
                             uint64_t cache_bytes, MultiLookup&& multi) {
  Rng rng(n * 7 + 5);
  const ClientStats before = client.stats();
  int issued = 0;
  while (issued < probes) {
    const int take = std::min(kBatch, probes - issued);
    std::vector<uint64_t> keys(take);
    for (int i = 0; i < take; ++i) {
      keys[i] = rng.NextInRange(1, n);
    }
    multi(keys);
    issued += take;
  }
  const ClientStats delta = client.stats().Delta(before);
  Sample sample;
  sample.far_accesses = static_cast<double>(delta.far_ops) / probes;
  sample.bytes = static_cast<double>(delta.bytes_read + delta.bytes_written) /
                 probes;
  sample.cache_bytes = cache_bytes;
  return sample;
}

void RunSize(Table& table, uint64_t n) {
  const int probes = 400;
  char n_label[32];
  std::snprintf(n_label, sizeof(n_label), "%llu",
                static_cast<unsigned long long>(n));
  auto add = [&](const char* structure, const Sample& sample) {
    table.AddRow({n_label, structure, Table::Cell(sample.far_accesses, 2),
                  Table::Cell(sample.bytes, 0),
                  Table::Cell(sample.cache_bytes)});
  };

  // Linked list: only at small n (O(n) lookups are the point).
  if (n <= 2048) {
    BenchEnv env(DefaultFabric());
    auto& client = env.NewClient();
    auto list = CheckOk(FarLinkedList::Create(&client, &env.alloc()), "list");
    for (uint64_t k = 1; k <= n; ++k) {
      CheckOk(list.PushFront(k, k), "push");
    }
    add("linked list (O(n))",
        MeasureLookups(client, n, 50, 0, [&](uint64_t key) {
          CheckOk(list.Find(key).status(), "find");
        }));
  }

  {
    BenchEnv env(DefaultFabric());
    auto& client = env.NewClient();
    auto list =
        CheckOk(FarSkipList::Create(&client, &env.alloc()), "skiplist");
    for (uint64_t k = 1; k <= n; ++k) {
      CheckOk(list.Put(k, k), "put");
    }
    add("skip list (O(log n))",
        MeasureLookups(client, n, probes, 0, [&](uint64_t key) {
          CheckOk(list.Get(key).status(), "get");
        }));
  }

  {
    BenchEnv env(DefaultFabric());
    auto& client = env.NewClient();
    FarBTree::Options options;
    options.fanout = 16;
    auto tree =
        CheckOk(FarBTree::Create(&client, &env.alloc(), options), "btree");
    for (uint64_t k = 1; k <= n; ++k) {
      CheckOk(tree.Put(k, k), "put");
    }
    add("B-tree uncached (O(log n))",
        MeasureLookups(client, n, probes, 0, [&](uint64_t key) {
          CheckOk(tree.Get(key).status(), "get");
        }));
  }

  {
    BenchEnv env(DefaultFabric());
    auto& client = env.NewClient();
    FarBTree::Options options;
    options.fanout = 16;
    options.cache_internal = true;
    auto tree =
        CheckOk(FarBTree::Create(&client, &env.alloc(), options), "btree");
    for (uint64_t k = 1; k <= n; ++k) {
      CheckOk(tree.Put(k, k), "put");
    }
    // Warm the internal cache.
    Rng warm(3);
    for (int i = 0; i < 2000; ++i) {
      CheckOk(tree.Get(warm.NextInRange(1, n)).status(), "warm");
    }
    auto sample = MeasureLookups(client, n, probes, 0, [&](uint64_t key) {
      CheckOk(tree.Get(key).status(), "get");
    });
    sample.cache_bytes = tree.cache_bytes();
    add("B-tree cached internals", sample);
  }

  {
    BenchEnv env(DefaultFabric());
    auto& client = env.NewClient();
    ChainedHash::Options options;
    options.buckets = n / 2;  // load factor 2: chains exist
    auto table_ds = CheckOk(
        ChainedHash::Create(&client, &env.alloc(), options), "chained");
    for (uint64_t k = 1; k <= n; ++k) {
      CheckOk(table_ds.Put(k, k), "put");
    }
    add("chained HT, verbs (2 + chain)",
        MeasureLookups(client, n, probes, 0, [&](uint64_t key) {
          CheckOk(table_ds.Get(key).status(), "get");
        }));
  }

  {
    BenchEnv env(DefaultFabric());
    auto& client = env.NewClient();
    ChainedHash::Options options;
    options.buckets = n / 2;
    options.use_indirect = true;
    auto table_ds = CheckOk(
        ChainedHash::Create(&client, &env.alloc(), options), "chained");
    for (uint64_t k = 1; k <= n; ++k) {
      CheckOk(table_ds.Put(k, k), "put");
    }
    add("chained HT + load0 (1 + chain)",
        MeasureLookups(client, n, probes, 0, [&](uint64_t key) {
          CheckOk(table_ds.Get(key).status(), "get");
        }));
  }

  {
    BenchEnv env(DefaultFabric());
    auto& client = env.NewClient();
    NeighborhoodHash::Options options;
    options.buckets = n * 2;  // hopscotch needs headroom
    auto table_ds = CheckOk(
        NeighborhoodHash::Create(&client, &env.alloc(), options), "hood");
    for (uint64_t k = 1; k <= n; ++k) {
      // A full neighborhood fails the insert; that is this baseline's
      // documented weakness, not a measurement error — lookups of the
      // skipped keys still cost the same single neighborhood read.
      const Status put = table_ds.Put(k, k);
      if (!put.ok() && put.code() != StatusCode::kResourceExhausted) {
        CheckOk(put, "put");
      }
    }
    add("FaRM-style inline (1, fat reads)",
        MeasureLookups(client, n, probes, 0, [&](uint64_t key) {
          (void)table_ds.Get(key);  // hit or miss: one neighborhood read
        }));
  }

  {
    BenchEnv env(DefaultFabric());
    auto& client = env.NewClient();
    HtTree::Options options;
    options.buckets_per_table = 4096;
    auto map = CheckOk(HtTree::Create(&client, &env.alloc(), options),
                       "httree");
    for (uint64_t k = 1; k <= n; ++k) {
      CheckOk(map.Put(k, k), "put");
    }
    auto sample = MeasureLookups(client, n, probes, 0, [&](uint64_t key) {
      CheckOk(map.Get(key).status(), "get");
    });
    sample.cache_bytes = map.cache_bytes();
    add("HT-tree (1)", sample);
  }

  // ---- Batched (async doorbell) variants: k lookups share round trips ----

  {
    BenchEnv env(DefaultFabric());
    auto& client = env.NewClient();
    ChainedHash::Options options;
    options.buckets = n / 2;
    auto table_ds = CheckOk(
        ChainedHash::Create(&client, &env.alloc(), options), "chained");
    for (uint64_t k = 1; k <= n; ++k) {
      CheckOk(table_ds.Put(k, k), "put");
    }
    add("chained HT, batched x16",
        MeasureBatchedLookups(client, n, probes, 0,
                              [&](std::span<const uint64_t> keys) {
                                for (auto& r : table_ds.MultiGet(keys)) {
                                  CheckOk(r.status(), "mget");
                                }
                              }));
  }

  {
    BenchEnv env(DefaultFabric());
    auto& client = env.NewClient();
    NeighborhoodHash::Options options;
    options.buckets = n * 2;
    auto table_ds = CheckOk(
        NeighborhoodHash::Create(&client, &env.alloc(), options), "hood");
    for (uint64_t k = 1; k <= n; ++k) {
      const Status put = table_ds.Put(k, k);
      if (!put.ok() && put.code() != StatusCode::kResourceExhausted) {
        CheckOk(put, "put");
      }
    }
    add("FaRM-style inline, batched x16",
        MeasureBatchedLookups(client, n, probes, 0,
                              [&](std::span<const uint64_t> keys) {
                                (void)table_ds.MultiGet(keys);
                              }));
  }

  {
    BenchEnv env(DefaultFabric());
    auto& client = env.NewClient();
    HtTree::Options options;
    options.buckets_per_table = 4096;
    auto map = CheckOk(HtTree::Create(&client, &env.alloc(), options),
                       "httree");
    for (uint64_t k = 1; k <= n; ++k) {
      CheckOk(map.Put(k, k), "put");
    }
    auto sample = MeasureBatchedLookups(
        client, n, probes, 0, [&](std::span<const uint64_t> keys) {
          for (auto& r : map.MultiGet(keys)) {
            CheckOk(r.status(), "mget");
          }
        });
    sample.cache_bytes = map.cache_bytes();
    add("HT-tree batched x16", sample);
  }
}

}  // namespace
}  // namespace fmds

int main() {
  fmds::Table table(
      {"n", "structure", "far_accesses/lookup", "bytes/lookup",
       "client_cache_B"});
  for (uint64_t n : {1000ull, 10000ull, 100000ull}) {
    fmds::RunSize(table, n);
  }
  table.Print(std::cout,
              "E2: far accesses per lookup (paper §1/§5.2: only ~1-access "
              "designs are viable)");
  return 0;
}
