// Shared helpers for the experiment harness. Every bench binary prints
// paper-shaped tables (fmds::Table) built from exact ClientStats counters
// and the simulated clock; google-benchmark provides wall-time microbenches
// where those add signal (F1/E1).
#ifndef FMDS_BENCH_BENCH_UTIL_H_
#define FMDS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <vector>

#include "src/alloc/far_allocator.h"
#include "src/common/table.h"
#include "src/fabric/fabric.h"
#include "src/fabric/far_client.h"

namespace fmds {

class BenchEnv {
 public:
  explicit BenchEnv(FabricOptions options = FabricOptions())
      : fabric_(options), alloc_(&fabric_) {}

  Fabric& fabric() { return fabric_; }
  FarAllocator& alloc() { return alloc_; }
  FarClient& NewClient() {
    clients_.push_back(
        std::make_unique<FarClient>(&fabric_, clients_.size() + 1));
    return *clients_.back();
  }

 private:
  Fabric fabric_;
  FarAllocator alloc_;
  std::vector<std::unique_ptr<FarClient>> clients_;
};

inline FabricOptions DefaultFabric(uint64_t capacity = 512ull << 20) {
  FabricOptions options;
  options.num_nodes = 1;
  options.node_capacity = capacity;
  return options;
}

// Aborts the bench with a message if a Status is not OK — experiment code
// treats any infrastructure failure as fatal.
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, status.ToString().c_str());
    std::abort();
  }
}

template <typename T>
T CheckOk(Result<T> result, const char* what) {
  CheckOk(result.status(), what);
  return std::move(result).value();
}

}  // namespace fmds

#endif  // FMDS_BENCH_BENCH_UTIL_H_
