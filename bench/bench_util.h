// Shared helpers for the experiment harness. Every bench binary prints
// paper-shaped tables (fmds::Table) built from exact ClientStats counters
// and the simulated clock; google-benchmark provides wall-time microbenches
// where those add signal (F1/E1).
#ifndef FMDS_BENCH_BENCH_UTIL_H_
#define FMDS_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/alloc/far_allocator.h"
#include "src/common/table.h"
#include "src/fabric/fabric.h"
#include "src/fabric/far_client.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/trace_export.h"

namespace fmds {

class BenchEnv {
 public:
  explicit BenchEnv(FabricOptions options = FabricOptions())
      : fabric_(options), alloc_(&fabric_) {}

  Fabric& fabric() { return fabric_; }
  FarAllocator& alloc() { return alloc_; }
  FarClient& NewClient() {
    clients_.push_back(
        std::make_unique<FarClient>(&fabric_, clients_.size() + 1));
    return *clients_.back();
  }
  // Client with the flight recorder armed (histograms and/or tracing).
  FarClient& NewClient(const ObsOptions& obs) {
    FarClient& client = NewClient();
    client.EnableObs(obs);
    return client;
  }
  // Absorb every client's recorder into one registry for fleet-wide
  // tables / JSON / trace export.
  MetricsRegistry CollectMetrics() const {
    MetricsRegistry registry;
    for (const auto& client : clients_) {
      registry.Absorb(client->recorder());
    }
    return registry;
  }

 private:
  Fabric fabric_;
  FarAllocator alloc_;
  std::vector<std::unique_ptr<FarClient>> clients_;
};

inline FabricOptions DefaultFabric(uint64_t capacity = 512ull << 20) {
  FabricOptions options;
  options.num_nodes = 1;
  options.node_capacity = capacity;
  return options;
}

// Aborts the bench with a message if a Status is not OK — experiment code
// treats any infrastructure failure as fatal.
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, status.ToString().c_str());
    std::abort();
  }
}

template <typename T>
T CheckOk(Result<T> result, const char* what) {
  CheckOk(result.status(), what);
  return std::move(result).value();
}

// Machine-readable results alongside the stdout tables: each bench writes a
// JSON array of {"name": ..., <config and metric fields>} objects so runs
// are diffable across commits and scripts can track headline numbers.
// The default output path is per-bench (BENCH_<id>.json in the working
// directory); `--json=<path>` overrides it.
class BenchJson {
 public:
  // Starts a new result entry; subsequent Num/Int/Str calls attach to it.
  void Begin(const std::string& name) {
    entries_.push_back(Entry{name, {}});
  }
  void Num(const std::string& key, double value, int significant = 6) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*g", significant, value);
    entries_.back().fields.emplace_back(key, std::string(buf));
  }
  void Int(const std::string& key, uint64_t value) {
    entries_.back().fields.emplace_back(key, std::to_string(value));
  }
  void Str(const std::string& key, const std::string& value) {
    entries_.back().fields.emplace_back(key, Quote(value));
  }
  // Attach a pre-rendered JSON value (object/array) verbatim — used for
  // the observability sub-documents (op_latency, node_heatmap).
  void Raw(const std::string& key, const std::string& rendered_json) {
    entries_.back().fields.emplace_back(key, rendered_json);
  }

  // Writes the array; aborts the bench on I/O failure (results files are
  // part of the experiment output, losing one silently would be worse).
  void Write(const std::string& path) const {
    std::ofstream out(path, std::ios::trunc);
    out << "[\n";
    for (size_t i = 0; i < entries_.size(); ++i) {
      const Entry& entry = entries_[i];
      out << "  {\"name\": " << Quote(entry.name);
      for (const auto& [key, rendered] : entry.fields) {
        out << ", " << Quote(key) << ": " << rendered;
      }
      out << (i + 1 < entries_.size() ? "},\n" : "}\n");
    }
    out << "]\n";
    out.flush();
    if (!out) {
      std::fprintf(stderr, "FATAL: cannot write %s\n", path.c_str());
      std::abort();
    }
  }

 private:
  struct Entry {
    std::string name;
    // Field values pre-rendered as JSON tokens, in insertion order.
    std::vector<std::pair<std::string, std::string>> fields;
  };

  static std::string Quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
      }
      out += c;
    }
    out += '"';
    return out;
  }

  std::vector<Entry> entries_;
};

// The --json=<path> argument, or `default_path` when absent.
inline std::string JsonOutputPath(int argc, char** argv,
                                  const std::string& default_path) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      return arg.substr(7);
    }
  }
  return default_path;
}

// True when `flag` (e.g. "--smoke") appears verbatim on the command line.
inline bool FlagPresent(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == flag) {
      return true;
    }
  }
  return false;
}

// The --repeat=N argument, or 1 when absent. Benches that honor it run each
// configuration N times (distinct seeds) and report the median, shrinking
// run-to-run noise in the committed BENCH_*.json numbers. The simulated
// clock is deterministic per seed, so N=1 stays reproducible; --repeat
// matters when a bench mixes in wall-clock measurements or randomized
// workloads whose seed varies per repeat.
inline int RepeatArg(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--repeat=", 0) == 0) {
      const int n = std::atoi(arg.c_str() + 9);
      return n > 0 ? n : 1;
    }
  }
  return 1;
}

// Median of the samples (mean of the middle pair for even counts). Used
// with RepeatArg for median-of-N reporting; mutates its copy by sorting.
inline double Median(std::vector<double> samples) {
  if (samples.empty()) {
    return 0.0;
  }
  std::sort(samples.begin(), samples.end());
  const size_t mid = samples.size() / 2;
  if (samples.size() % 2 == 1) {
    return samples[mid];
  }
  return (samples[mid - 1] + samples[mid]) / 2.0;
}

// The --telemetry=<path> argument (JSON-lines gauge snapshots written by a
// TelemetrySnapshotter while the bench runs), or `default_path` when absent.
// Pass "" as the default for benches where continuous export is opt-in.
inline std::string TelemetryOutputPath(int argc, char** argv,
                                       const std::string& default_path = "") {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--telemetry=", 0) == 0) {
      return arg.substr(12);
    }
  }
  return default_path;
}

// The --trace=<path> argument (Chrome trace-event JSON output), or "" when
// tracing was not requested.
inline std::string TraceOutputPath(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace=", 0) == 0) {
      return arg.substr(8);
    }
  }
  return "";
}

// Writes the Chrome trace if `path` is non-empty; fatal on I/O failure,
// same policy as BenchJson::Write.
inline void MaybeWriteTrace(const MetricsRegistry& registry,
                            const std::string& path) {
  if (path.empty()) {
    return;
  }
  CheckOk(WriteChromeTraceFile(path, registry), "trace export");
  std::fprintf(stderr, "trace written to %s\n", path.c_str());
}

}  // namespace fmds

#endif  // FMDS_BENCH_BENCH_UTIL_H_
