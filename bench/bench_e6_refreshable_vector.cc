// E6 — §5.4: refreshable vector refresh traffic vs update rate, for the
// three policies (always-poll, always-notify, dynamic kAuto). The workload
// is the paper's distributed-ML shape: the update rate decays as the model
// converges; kAuto should track the better of the two static policies and
// shift to notifications in the quiet tail.
#include <cmath>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/core/refreshable_vector.h"

namespace fmds {
namespace {

constexpr uint64_t kSize = 4096;
constexpr uint64_t kGroup = 64;
constexpr int kRounds = 14;

struct RoundCost {
  uint64_t far_ops;
  uint64_t bytes;
  uint64_t notifications;
};

std::vector<RoundCost> RunPolicy(RefreshableVector::RefreshMode mode,
                                 bool* ended_in_notify) {
  BenchEnv env(DefaultFabric());
  auto& writer = env.NewClient();
  auto& reader = env.NewClient();
  RefreshableVector::Options options;
  options.size = kSize;
  options.group_size = kGroup;
  auto vec_w =
      CheckOk(RefreshableVector::Create(&writer, &env.alloc(), options),
              "create");
  auto vec_r = CheckOk(RefreshableVector::Attach(&reader, vec_w.header()),
                       "attach");
  CheckOk(vec_r.EnableReader(mode), "reader");
  Rng rng(11);
  std::vector<RoundCost> costs;
  for (int round = 0; round < kRounds; ++round) {
    const int updates =
        static_cast<int>(2048.0 / std::pow(2.0, round));  // decay
    for (int i = 0; i < updates; ++i) {
      CheckOk(vec_w.UpdateScatter(rng.NextBelow(kSize), round * 10 + i),
              "update");
    }
    const ClientStats before = reader.stats();
    CheckOk(vec_r.Refresh(), "refresh");
    const ClientStats delta = reader.stats().Delta(before);
    costs.push_back(
        RoundCost{delta.far_ops, delta.bytes_read, delta.notifications});
  }
  if (ended_in_notify != nullptr) {
    *ended_in_notify = vec_r.refresh_stats().notify_active;
  }
  return costs;
}

}  // namespace
}  // namespace fmds

int main() {
  using namespace fmds;
  bool auto_notify = false;
  auto poll = RunPolicy(RefreshableVector::RefreshMode::kPollVersions,
                        nullptr);
  auto notify = RunPolicy(RefreshableVector::RefreshMode::kNotify, nullptr);
  auto dynamic =
      RunPolicy(RefreshableVector::RefreshMode::kAuto, &auto_notify);

  Table table({"round", "updates", "poll far/B", "notify far/B/evts",
               "auto far/B/evts"});
  for (int round = 0; round < kRounds; ++round) {
    const int updates = static_cast<int>(2048.0 / std::pow(2.0, round));
    char poll_cell[48];
    char notify_cell[48];
    char auto_cell[48];
    std::snprintf(poll_cell, sizeof(poll_cell), "%llu / %llu",
                  static_cast<unsigned long long>(poll[round].far_ops),
                  static_cast<unsigned long long>(poll[round].bytes));
    std::snprintf(notify_cell, sizeof(notify_cell), "%llu / %llu / %llu",
                  static_cast<unsigned long long>(notify[round].far_ops),
                  static_cast<unsigned long long>(notify[round].bytes),
                  static_cast<unsigned long long>(
                      notify[round].notifications));
    std::snprintf(auto_cell, sizeof(auto_cell), "%llu / %llu / %llu",
                  static_cast<unsigned long long>(dynamic[round].far_ops),
                  static_cast<unsigned long long>(dynamic[round].bytes),
                  static_cast<unsigned long long>(
                      dynamic[round].notifications));
    table.AddRow({Table::Cell(static_cast<int64_t>(round)),
                  Table::Cell(static_cast<int64_t>(updates)), poll_cell,
                  notify_cell, auto_cell});
  }
  table.Print(std::cout,
              "E6: refresh cost per round under a converging (decaying) "
              "update stream — far ops / bytes read");
  std::cout << "kAuto finished in "
            << (auto_notify ? "notification" : "polling")
            << " mode (paper: shifts to notifications as updates slow)\n";

  // Totals (the headline series).
  auto total = [](const std::vector<RoundCost>& costs) {
    RoundCost sum{0, 0, 0};
    for (const auto& cost : costs) {
      sum.far_ops += cost.far_ops;
      sum.bytes += cost.bytes;
      sum.notifications += cost.notifications;
    }
    return sum;
  };
  const RoundCost poll_sum = total(poll);
  const RoundCost notify_sum = total(notify);
  const RoundCost auto_sum = total(dynamic);
  Table totals({"policy", "total far ops", "total bytes read",
                "notification events"});
  totals.AddRow({"poll versions", Table::Cell(poll_sum.far_ops),
                 Table::Cell(poll_sum.bytes),
                 Table::Cell(poll_sum.notifications)});
  totals.AddRow({"notifications", Table::Cell(notify_sum.far_ops),
                 Table::Cell(notify_sum.bytes),
                 Table::Cell(notify_sum.notifications)});
  totals.AddRow({"dynamic (kAuto)", Table::Cell(auto_sum.far_ops),
                 Table::Cell(auto_sum.bytes),
                 Table::Cell(auto_sum.notifications)});
  totals.Print(std::cout, "E6b: whole-run refresh traffic by policy");

  // Group-size ablation: bigger groups mean fewer version words but more
  // false sharing per changed group.
  Table groups({"group_size", "far ops", "bytes read"});
  for (uint64_t group : {8ull, 32ull, 128ull, 512ull}) {
    BenchEnv env(DefaultFabric());
    auto& writer = env.NewClient();
    auto& reader = env.NewClient();
    RefreshableVector::Options options;
    options.size = kSize;
    options.group_size = group;
    auto vec_w =
        CheckOk(RefreshableVector::Create(&writer, &env.alloc(), options),
                "create");
    auto vec_r = CheckOk(RefreshableVector::Attach(&reader, vec_w.header()),
                         "attach");
    CheckOk(vec_r.EnableReader(RefreshableVector::RefreshMode::kPollVersions),
            "reader");
    Rng rng(13);
    const ClientStats before = reader.stats();
    for (int round = 0; round < 10; ++round) {
      for (int i = 0; i < 64; ++i) {
        CheckOk(vec_w.UpdateScatter(rng.NextBelow(kSize), i), "update");
      }
      CheckOk(vec_r.Refresh(), "refresh");
    }
    const ClientStats delta = reader.stats().Delta(before);
    groups.AddRow({Table::Cell(group), Table::Cell(delta.far_ops),
                   Table::Cell(delta.bytes_read)});
  }
  groups.Print(std::cout,
               "E6c: group-size ablation (version metadata vs refresh "
               "amplification)");
  return 0;
}
