// E11 — §7 scale-out: cross-node sharding with parallel batch fan-out.
//
// A ShardedMap pins one HT-tree shard per memory node and drives batched
// operations as per-shard wave engines flushed through a single doorbell,
// so the per-node sub-batches overlap (simulated wait = max over nodes,
// not the sum). The sweep below varies node count x batch size and reports
//   - simulated lookup/store throughput (client clock),
//   - far-accesses/op (round trips *waited*): falls with batch size and
//     stays flat in node count — spanning nodes costs no extra waits;
//   - messages/op: flat in node count (each key still touches one node);
//   - fan-out accounting (ClientStats.fanout_batches / cross_node_rtts_saved).
//
// Headline claim checked by the summary line: batched lookups over 8 nodes
// beat single-node unbatched lookups by >= 4x simulated throughput.
#include <map>
#include <string>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/core/sharded_map.h"

namespace fmds {
namespace {

constexpr uint64_t kKeys = 50000;
constexpr int kProbes = 4096;  // measured ops per configuration and kind

struct RunResult {
  double get_ops_per_sec = 0.0;
  double put_ops_per_sec = 0.0;
  double far_per_get = 0.0;
  double msgs_per_get = 0.0;
  uint64_t fanout_batches = 0;
  uint64_t rtts_saved = 0;
  // Flight-recorder JSON fragments (per-op-kind latency, node heatmap).
  std::string op_latency;
  std::string node_heatmap;
};

// `trace_path` non-empty = export this configuration's Chrome trace.
RunResult RunConfig(uint32_t nodes, int batch, const ObsOptions& obs,
                    const std::string& trace_path) {
  FabricOptions fabric;
  fabric.num_nodes = nodes;
  fabric.node_capacity = 256ull << 20;
  BenchEnv env(fabric);
  FarClient& client = env.NewClient(obs);

  ShardedMap::Options options;
  options.num_shards = nodes;  // one pinned shard per memory node
  // Keep tables under-loaded so lookups stay at ~1 far access and the
  // sweep isolates the batching/fan-out effects from chain walks.
  options.shard.buckets_per_table = 65536;
  ShardedMap map =
      CheckOk(ShardedMap::Create(&client, &env.alloc(), options), "create");

  // Preload through MultiPut (also exercises the batched store path).
  {
    std::vector<uint64_t> keys;
    std::vector<uint64_t> values;
    for (uint64_t k = 1; k <= kKeys; ++k) {
      keys.push_back(k);
      values.push_back(k * 3);
      if (keys.size() == 256 || k == kKeys) {
        CheckOk(map.MultiPut(keys, values), "preload");
        keys.clear();
        values.clear();
      }
    }
  }

  client.recorder().Reset();  // keep the preload out of the histograms
  RunResult result;
  Rng rng(7);
  std::vector<uint64_t> probe(batch);
  std::vector<uint64_t> values(batch);

  // Batched lookups.
  {
    const ClientStats before = client.stats();
    const uint64_t t0 = client.clock().now_ns();
    for (int issued = 0; issued < kProbes; issued += batch) {
      for (int i = 0; i < batch; ++i) {
        probe[i] = rng.NextInRange(1, kKeys);
      }
      for (auto& r : map.MultiGet(probe)) {
        CheckOk(r.status(), "multiget");
      }
    }
    const ClientStats delta = client.stats().Delta(before);
    const uint64_t elapsed = client.clock().now_ns() - t0;
    result.get_ops_per_sec = kProbes * 1e9 / static_cast<double>(elapsed);
    result.far_per_get = static_cast<double>(delta.far_ops) / kProbes;
    result.msgs_per_get = static_cast<double>(delta.messages) / kProbes;
    result.fanout_batches = delta.fanout_batches;
    result.rtts_saved = delta.cross_node_rtts_saved;
  }

  // Batched stores (overwrites of random keys).
  {
    const uint64_t t0 = client.clock().now_ns();
    for (int issued = 0; issued < kProbes; issued += batch) {
      for (int i = 0; i < batch; ++i) {
        probe[i] = rng.NextInRange(1, kKeys);
        values[i] = probe[i] * 7;
      }
      CheckOk(map.MultiPut(probe, values), "multiput");
    }
    const uint64_t elapsed = client.clock().now_ns() - t0;
    result.put_ops_per_sec = kProbes * 1e9 / static_cast<double>(elapsed);
  }

  MetricsRegistry registry = env.CollectMetrics();
  result.op_latency = registry.OpLatencyJsonObject();
  result.node_heatmap = registry.NodeHeatmapJsonArray();
  if (!trace_path.empty()) {
    registry.PrintOpKindTable(
        std::cout, "E11 obs: per-op-kind simulated latency (nodes=" +
                       std::to_string(nodes) +
                       ", batch=" + std::to_string(batch) + ")");
    registry.PrintHeatmap(std::cout, "E11 obs: node heatmap");
    MaybeWriteTrace(registry, trace_path);
  }
  return result;
}

}  // namespace
}  // namespace fmds

int main(int argc, char** argv) {
  using namespace fmds;

  const std::string trace_path = TraceOutputPath(argc, argv);
  const ObsOptions obs =
      trace_path.empty() ? ObsOptions::HistogramsOnly() : ObsOptions::All();

  const std::vector<uint32_t> node_counts{1, 2, 4, 8, 16};
  const std::vector<int> batch_sizes{1, 16, 64};

  std::map<std::pair<uint32_t, int>, RunResult> results;
  BenchJson json;
  Table table({"nodes", "batch", "get_Mops", "put_Mops", "far/get",
               "msgs/get", "fanout_batches", "xnode_rtts_saved"});
  for (uint32_t nodes : node_counts) {
    for (int batch : batch_sizes) {
      // The headline fan-out configuration carries the trace export.
      const bool headline = nodes == 8 && batch == 16;
      const RunResult r =
          RunConfig(nodes, batch, obs, headline ? trace_path : "");
      results[{nodes, batch}] = r;
      table.AddRow({Table::Cell(static_cast<uint64_t>(nodes)),
                    Table::Cell(static_cast<uint64_t>(batch)),
                    Table::Cell(r.get_ops_per_sec / 1e6, 3),
                    Table::Cell(r.put_ops_per_sec / 1e6, 3),
                    Table::Cell(r.far_per_get, 3),
                    Table::Cell(r.msgs_per_get, 2),
                    Table::Cell(r.fanout_batches),
                    Table::Cell(r.rtts_saved)});
      json.Begin("nodes=" + std::to_string(nodes) +
                 ",batch=" + std::to_string(batch));
      json.Int("nodes", nodes);
      json.Int("batch", static_cast<uint64_t>(batch));
      json.Int("keys", kKeys);
      json.Num("ops_per_sec", r.get_ops_per_sec);
      json.Num("put_ops_per_sec", r.put_ops_per_sec);
      json.Num("far_accesses_per_op", r.far_per_get);
      json.Num("messages_per_op", r.msgs_per_get);
      json.Int("fanout_batches", r.fanout_batches);
      json.Int("cross_node_rtts_saved", r.rtts_saved);
      json.Raw("op_latency", r.op_latency);
      json.Raw("node_heatmap", r.node_heatmap);
    }
  }
  table.Print(std::cout,
              "E11: sharded HT-tree, nodes x batch (simulated; one pinned "
              "shard per node, one doorbell per wave across shards)");

  // Headline: batched fan-out vs the single-node synchronous baseline.
  // Near accesses (~3 per key of client CPU at 100 ns each: routing hash,
  // trie descent, staleness check) bound the batched configurations, which
  // is the paper's point — once waits are amortized, the client CPU is the
  // next wall, not the fabric.
  const double base = results[{1, 1}].get_ops_per_sec;
  const double fan16 = results[{8, 16}].get_ops_per_sec;
  const double fan64 = results[{8, 64}].get_ops_per_sec;
  std::cout << "\nsummary: 8-node batched-x16 / 1-node unbatched = "
            << fan16 / base << "x; batched-x64 = " << fan64 / base
            << "x (target >= 4x batched)\n";

  json.Write(JsonOutputPath(argc, argv, "BENCH_e11.json"));
  return fan64 / base >= 4.0 ? 0 : 1;
}
