// E10 — §5.1: synchronization primitives. Under contention, a poll-waiting
// mutex burns one far access per CAS retry; notifye waiting costs a
// subscription plus (mostly) zero far traffic while blocked. Same story for
// the barrier's last-arriver notification.
#include <chrono>
#include <thread>

#include "bench/bench_util.h"
#include "src/core/far_barrier.h"
#include "src/core/far_mutex.h"

namespace fmds {
namespace {

struct MutexResult {
  double far_per_acquire;
  double msgs_per_acquire;
};

MutexResult RunMutex(int threads, MutexWaitStrategy strategy,
                     int acquisitions_per_thread) {
  BenchEnv env(DefaultFabric());
  auto& creator = env.NewClient();
  auto mutex = CheckOk(FarMutex::Create(creator, env.alloc()), "mutex");
  std::vector<FarClient*> clients;
  for (int t = 0; t < threads; ++t) {
    clients.push_back(&env.NewClient());
  }
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < acquisitions_per_thread; ++i) {
        CheckOk(mutex.Lock(*clients[t], strategy, 30000), "lock");
        // Hold a realistic critical section (~200us) so waiters actually
        // wait: pollers burn a far CAS per retry, notifye waiters block.
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        CheckOk(mutex.Unlock(*clients[t]), "unlock");
      }
    });
  }
  for (auto& worker : workers) {
    worker.join();
  }
  uint64_t far_ops = 0;
  uint64_t messages = 0;
  for (FarClient* client : clients) {
    far_ops += client->stats().far_ops;
    messages += client->stats().messages;
  }
  const double total_acquires =
      static_cast<double>(threads) * acquisitions_per_thread;
  return MutexResult{static_cast<double>(far_ops) / total_acquires,
                     static_cast<double>(messages) / total_acquires};
}

}  // namespace
}  // namespace fmds

int main() {
  using namespace fmds;

  Table mutex_table({"threads", "strategy", "far ops/acquire",
                     "msgs/acquire"});
  for (int threads : {1, 2, 4, 8}) {
    for (auto strategy :
         {MutexWaitStrategy::kPoll, MutexWaitStrategy::kNotify}) {
      auto result = RunMutex(threads, strategy, 50);
      mutex_table.AddRow(
          {Table::Cell(static_cast<int64_t>(threads)),
           strategy == MutexWaitStrategy::kPoll ? "poll (CAS spin)"
                                                : "notifye wait",
           Table::Cell(result.far_per_acquire, 2),
           Table::Cell(result.msgs_per_acquire, 2)});
    }
  }
  mutex_table.Print(std::cout,
                    "E10a: far-memory mutex — polling burns far accesses "
                    "under contention; notifye waiting does not (§5.1)");

  // Barrier: far accesses per participant per round.
  Table barrier_table({"participants", "far ops/participant/round"});
  for (int participants : {2, 4, 8, 16}) {
    BenchEnv env(DefaultFabric());
    auto& creator = env.NewClient();
    auto barrier = CheckOk(
        FarBarrier::Create(creator, env.alloc(), participants), "barrier");
    std::vector<FarClient*> clients;
    for (int t = 0; t < participants; ++t) {
      clients.push_back(&env.NewClient());
    }
    constexpr int kRounds = 20;
    std::vector<std::thread> workers;
    for (int t = 0; t < participants; ++t) {
      workers.emplace_back([&, t] {
        auto handle = FarBarrier::Attach(*clients[t], barrier.base());
        CheckOk(handle.status(), "attach");
        for (int round = 0; round < kRounds; ++round) {
          CheckOk(handle->Arrive(*clients[t], 30000), "arrive");
        }
      });
    }
    for (auto& worker : workers) {
      worker.join();
    }
    uint64_t far_ops = 0;
    for (FarClient* client : clients) {
      far_ops += client->stats().far_ops;
    }
    barrier_table.AddRow(
        {Table::Cell(static_cast<int64_t>(participants)),
         Table::Cell(static_cast<double>(far_ops) /
                         (static_cast<double>(participants) * kRounds),
                     2)});
  }
  barrier_table.Print(std::cout,
                      "E10b: far-memory barrier — decrement + notifye "
                      "completion (§5.1)");
  return 0;
}
