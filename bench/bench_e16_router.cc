// E16 — adaptive hybrid dataplane (src/route/, DESIGN.md §13): per-op
// one-sided vs RPC routing driven by live telemetry. §3.1 frames the
// tradeoff — k dependent far accesses cost k round trips but zero server
// CPU; shipping the op costs one round trip plus service at a
// possibly-occupied processor — and the crossover moves with chain depth,
// server occupancy, and batch size. The sweep drifts a workload across
// that crossover and runs three arms at every point:
//
//   one-sided : routing off, the pure one-sided protocol (wave engine for
//               batches)
//   rpc       : DataplaneRouter with force=kRpc — every op ships to the
//               per-node near-memory agents
//   adaptive  : one persistent DataplaneRouter carried across ALL points,
//               re-deciding per op from its live cost estimates
//
// Exit-code gates (all enforced):
//   1. At EVERY sweep point the adaptive arm achieves >= 90% of the
//      better static arm's ns/op (it may pay probing + relearning, but
//      never falls off the crossover).
//   2. At the extremes (occupied+shallow, idle+deep, busy+deep+batch32)
//      the WORSE static arm costs >= 1.5x the adaptive arm — the regimes
//      are real, and a wrong static choice is expensive while adaptive
//      tracks the winner.
//   3. The adaptive router flips its preferred route >= 2 times across
//      the sweep (route_flips proves mid-sweep switching, not a lucky
//      initial guess).
//   4. sharded_skew: with per-node occupancy skew, ONE router splits
//      per-shard — RPC to the idle node's shard, one-sided to the busy
//      node's shard, within the same MultiGets.
//
// Flags: --smoke (tiny config for CI), --json=<path>,
// --telemetry=<path> (one JSON object of the final route gauges).
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/hash.h"
#include "src/common/rng.h"
#include "src/core/sharded_map.h"
#include "src/obs/telemetry.h"
#include "src/route/router.h"
#include "src/route/rpc_dataplane.h"

namespace fmds {
namespace {

struct Config {
  uint64_t buckets = 16384;  // one leaf, no splits: depth is controlled
  int gets_per_phase = 1200;
  int batches_per_phase = 400;
  int sharded_batches = 500;
};

// Key populations with exact chain depths: `count` buckets of `depth`
// colliding keys each, found by binning sequential candidates by bucket
// index. One leaf (initial_depth 0, max_chain huge) keeps them intact.
struct Population {
  std::vector<std::vector<uint64_t>> chains;  // [bucket][depth]
  std::vector<uint64_t> flat;
};

Population FindPopulation(uint64_t buckets, uint64_t first_bucket,
                          size_t count, size_t depth, uint64_t seed) {
  Population pop;
  pop.chains.resize(count);
  size_t filled = 0;
  for (uint64_t k = seed; filled < count; ++k) {
    const uint64_t bucket = Mix64(k) % buckets;
    if (bucket < first_bucket || bucket >= first_bucket + count) {
      continue;
    }
    auto& chain = pop.chains[bucket - first_bucket];
    if (chain.size() >= depth) {
      continue;
    }
    chain.push_back(k);
    pop.flat.push_back(k);
    if (chain.size() == depth) {
      ++filled;
    }
  }
  return pop;
}

HtTree::Options SweepMapOptions(const Config& cfg) {
  HtTree::Options options;
  options.buckets_per_table = cfg.buckets;
  options.max_chain = 1 << 20;  // depth stays what the population built
  options.placement = AllocHint::OnNode(0);
  return options;
}

// One sweep arm: its own client, map, and (for routed arms) router + path.
struct Arm {
  Arm(BenchEnv* env, RpcDataplane* dataplane, const Config& cfg,
      std::optional<DataplaneRoute> force, bool routed) {
    ObsOptions obs;
    obs.windowed = true;  // the adaptive router's staleness priors
    client = &env->NewClient(obs);
    map.emplace(CheckOk(HtTree::Create(client, &env->alloc(),
                                       SweepMapOptions(cfg)),
                        "create sweep map"));
    if (routed) {
      DataplaneRouterOptions options;
      options.force = force;
      router.emplace(client, options);
      path.emplace(client, dataplane);
      CheckOk(map->EnableRouting(&*router, &*path), "enable routing");
    }
  }

  FarClient* client = nullptr;
  std::optional<HtTree> map;
  std::optional<DataplaneRouter> router;
  std::optional<RpcMapPath> path;
};

struct Phase {
  std::string name;
  double rho = 0.0;        // agent occupancy at the map's home node
  size_t depth = 1;        // chain depth of the population in play
  uint64_t batch = 1;      // 1 = point gets; >1 = MultiGet waves
  double put_frac = 0.0;   // fraction of point ops that are Puts
  bool extreme = false;    // gate 2 applies here
};

struct PhaseResult {
  double ns_per_op[3] = {0.0, 0.0, 0.0};  // one-sided, rpc, adaptive
  uint64_t adaptive_rpc_share = 0;        // rpc decisions this phase
  uint64_t adaptive_decisions = 0;
  uint64_t flips_after = 0;
};

constexpr int kOneSided = 0;
constexpr int kRpcArm = 1;
constexpr int kAdaptive = 2;

// Runs one phase's op stream against one arm; returns ns/op of the arm's
// simulated clock. The stream is identical across arms (same seed).
double RunPhaseOnArm(Arm& arm, const Phase& phase, const Population& pop,
                     const Config& cfg, uint64_t seed) {
  Rng rng(seed);
  const uint64_t t0 = arm.client->clock().now_ns();
  uint64_t ops = 0;
  if (phase.batch > 1) {
    std::vector<uint64_t> keys(phase.batch);
    for (int b = 0; b < cfg.batches_per_phase; ++b) {
      for (auto& key : keys) {
        key = pop.flat[rng.Next() % pop.flat.size()];
      }
      auto results = arm.map->MultiGet(keys);
      for (auto& r : results) {
        CheckOk(r.status(), "sweep multiget");
      }
      ops += phase.batch;
    }
  } else {
    for (int i = 0; i < cfg.gets_per_phase; ++i) {
      const uint64_t key = pop.flat[rng.Next() % pop.flat.size()];
      if (phase.put_frac > 0.0 &&
          (rng.Next() % 1000) < uint64_t(phase.put_frac * 1000)) {
        CheckOk(arm.map->Put(key, rng.Next()), "sweep put");
      } else {
        CheckOk(arm.map->Get(key).status(), "sweep get");
      }
      ++ops;
    }
  }
  return double(arm.client->clock().now_ns() - t0) / double(ops);
}

}  // namespace
}  // namespace fmds

int main(int argc, char** argv) {
  using namespace fmds;

  const bool smoke = FlagPresent(argc, argv, "--smoke");
  Config cfg;
  if (smoke) {
    cfg.gets_per_phase = 400;
    cfg.batches_per_phase = 120;
    cfg.sharded_batches = 200;
  }

  BenchEnv env([] {
    FabricOptions options;
    options.num_nodes = 2;
    options.node_capacity = 256ull << 20;
    return options;
  }());
  RpcDataplane dataplane(&env.fabric(), &env.alloc());

  // Populations with exact chain depths, disjoint bucket ranges.
  const Population pop1 = FindPopulation(cfg.buckets, 0, 256, 1, 1);
  const Population pop2 = FindPopulation(cfg.buckets, 1000, 128, 2, 1);
  const Population pop4 = FindPopulation(cfg.buckets, 3000, 64, 4, 1);
  const Population pop8 = FindPopulation(cfg.buckets, 5000, 64, 8, 1);
  auto pop_for = [&](size_t depth) -> const Population& {
    switch (depth) {
      case 1: return pop1;
      case 2: return pop2;
      case 4: return pop4;
      default: return pop8;
    }
  };

  std::vector<std::unique_ptr<Arm>> arms;
  arms.push_back(std::make_unique<Arm>(&env, &dataplane, cfg, std::nullopt,
                                       /*routed=*/false));
  arms.push_back(std::make_unique<Arm>(&env, &dataplane, cfg,
                                       DataplaneRoute::kRpc,
                                       /*routed=*/true));
  arms.push_back(std::make_unique<Arm>(&env, &dataplane, cfg, std::nullopt,
                                       /*routed=*/true));

  // All arms see the same far state: identical populations inserted into
  // each arm's own map (one-sided, so the agents start cold everywhere).
  for (const Population* pop : {&pop1, &pop2, &pop4, &pop8}) {
    for (const auto& chain : pop->chains) {
      for (uint64_t key : chain) {
        for (auto& arm : arms) {
          CheckOk(arm->map->Put(key, key * 3), "populate");
        }
      }
    }
  }

  const std::vector<Phase> phases = {
      {"occupied_headhit", 0.75, 1, 1, 0.0, true},
      {"busy_headhit", 0.50, 1, 1, 0.0, false},
      {"busy_shallow", 0.50, 2, 1, 0.0, false},
      {"idle_mid", 0.00, 4, 1, 0.0, false},
      {"idle_deep", 0.00, 8, 1, 0.0, true},
      // Not idle: wave batching amortizes one-sided RTTs so well at
      // batch=32 (~batch_op_ns per op) that the agent's amortized RTT is
      // competitive when the server is free; moderate occupancy inflates
      // the agent's service time and makes this a one-sided-wins extreme.
      {"busy_deep_batch32", 0.50, 8, 32, 0.0, true},
      {"mixed_puts", 0.30, 4, 1, 0.5, false},
  };

  BenchJson json;
  Table table({"phase", "rho", "depth", "batch", "one-sided ns/op",
               "rpc ns/op", "adaptive ns/op", "adp rpc%", "flips"});
  bool gate_track = true;
  bool gate_extremes = true;
  std::vector<PhaseResult> results;

  for (size_t p = 0; p < phases.size(); ++p) {
    const Phase& phase = phases[p];
    dataplane.SetLoadFactor(0, phase.rho);
    const Population& pop = pop_for(phase.depth);
    PhaseResult r;
    DataplaneRouter& adaptive = *arms[kAdaptive]->router;
    const uint64_t rpc0 = adaptive.rpc_decisions();
    const uint64_t dec0 = adaptive.rpc_decisions() +
                          adaptive.one_sided_decisions();
    for (int a = 0; a < 3; ++a) {
      r.ns_per_op[a] = RunPhaseOnArm(*arms[a], phase, pop, cfg, 7 + 13 * p);
    }
    r.adaptive_rpc_share = adaptive.rpc_decisions() - rpc0;
    r.adaptive_decisions =
        adaptive.rpc_decisions() + adaptive.one_sided_decisions() - dec0;
    r.flips_after = adaptive.flips();
    results.push_back(r);

    const double best_static =
        std::min(r.ns_per_op[kOneSided], r.ns_per_op[kRpcArm]);
    const double worst_static =
        std::max(r.ns_per_op[kOneSided], r.ns_per_op[kRpcArm]);
    const bool track_ok = r.ns_per_op[kAdaptive] * 0.9 <= best_static;
    const bool extreme_ok =
        !phase.extreme || worst_static >= 1.5 * r.ns_per_op[kAdaptive];
    gate_track = gate_track && track_ok;
    gate_extremes = gate_extremes && extreme_ok;

    const double rpc_pct =
        r.adaptive_decisions == 0
            ? 0.0
            : 100.0 * double(r.adaptive_rpc_share) / r.adaptive_decisions;
    table.AddRow({Table::Cell(phase.name), Table::Cell(phase.rho, 2),
                  Table::Cell(uint64_t(phase.depth)),
                  Table::Cell(phase.batch), Table::Cell(r.ns_per_op[0], 0),
                  Table::Cell(r.ns_per_op[1], 0),
                  Table::Cell(r.ns_per_op[2], 0), Table::Cell(rpc_pct, 1),
                  Table::Cell(r.flips_after)});
    json.Begin(phase.name);
    json.Num("rho", phase.rho);
    json.Int("depth", phase.depth);
    json.Int("batch", phase.batch);
    json.Num("put_frac", phase.put_frac);
    json.Num("one_sided_ns_per_op", r.ns_per_op[0], 5);
    json.Num("rpc_ns_per_op", r.ns_per_op[1], 5);
    json.Num("adaptive_ns_per_op", r.ns_per_op[2], 5);
    json.Num("adaptive_rpc_share_pct", rpc_pct, 4);
    json.Int("adaptive_flips_cum", r.flips_after);
    json.Int("extreme", phase.extreme ? 1 : 0);
    json.Int("track_gate_ok", track_ok ? 1 : 0);
    json.Int("extreme_gate_ok", extreme_ok ? 1 : 0);
  }

  const uint64_t total_flips = arms[kAdaptive]->router->flips();
  const bool gate_flips = total_flips >= 2;

  table.Print(std::cout,
              "E16: adaptive one-sided vs RPC routing across the crossover");
  std::cout << "adaptive route flips across sweep: " << total_flips << "\n";

  // ---- sharded_skew: per-node occupancy split inside one MultiGet ----
  // Fresh maps: 2 pinned shards; node 1's agent is occupied while node 0
  // idles. Shard 0 (idle node) holds 8-deep chains, shard 1 (busy node)
  // depth-1 head hits: the adaptive arm must ship shard-0 residues to the
  // idle agent while walking shard 1 one-sided past the occupied one.
  dataplane.SetLoadFactor(0, 0.0);
  dataplane.SetLoadFactor(1, 0.75);
  ShardedMap::Options shard_options;
  shard_options.num_shards = 2;
  shard_options.shard = SweepMapOptions(cfg);
  shard_options.shard.placement = AllocHint::Any();  // pin_shards decides

  struct ShardArm {
    std::optional<ShardedMap> map;
    std::optional<DataplaneRouter> router;
    std::optional<RpcMapPath> path;
    FarClient* client = nullptr;
  };
  std::vector<ShardArm> shard_arms(3);
  for (int a = 0; a < 3; ++a) {
    ObsOptions obs;
    obs.windowed = true;
    ShardArm& arm = shard_arms[a];
    arm.client = &env.NewClient(obs);
    arm.map.emplace(CheckOk(
        ShardedMap::Create(arm.client, &env.alloc(), shard_options),
        "create sharded map"));
    if (a != kOneSided) {
      DataplaneRouterOptions options;
      if (a == kRpcArm) {
        options.force = DataplaneRoute::kRpc;
      }
      arm.router.emplace(arm.client, options);
      arm.path.emplace(arm.client, &dataplane);
      CheckOk(arm.map->EnableRouting(&*arm.router, &*arm.path),
              "enable sharded routing");
    }
  }

  // Asymmetric shards make the split pay in wall-clock: shard 0 (idle
  // node) gets 8-deep chains — dependent walks the agent collapses to one
  // round trip — while shard 1 (busy node) gets depth-1 buckets, where
  // one-sided head hits beat the occupancy-inflated agent. The RPC leg
  // runs before the wave loop, so the adaptive batch is a cheap agent
  // trip plus a short wave train instead of a deep joint wave train.
  std::vector<uint64_t> shard_keys[2];
  std::set<uint64_t> busy_buckets;
  for (uint64_t k = 1, have = 0; have < 2; ++k) {
    const uint64_t bucket = Mix64(k) % cfg.buckets;
    const uint32_t s = shard_arms[0].map->ShardOf(k);
    if (s == 0) {
      if (bucket >= 8 || shard_keys[0].size() >= 64) {
        continue;  // 8 bucket targets -> 8-deep chains
      }
    } else {
      if (bucket < 8 || !busy_buckets.insert(bucket).second ||
          shard_keys[1].size() >= 64) {
        continue;  // 64 distinct buckets -> depth-1 head hits
      }
    }
    shard_keys[s].push_back(k);
    if (shard_keys[s].size() == 64) {
      ++have;
    }
  }
  for (int s = 0; s < 2; ++s) {
    for (uint64_t key : shard_keys[s]) {
      for (auto& arm : shard_arms) {
        CheckOk(arm.map->Put(key, key * 5), "populate sharded");
      }
    }
  }

  double shard_ns[3] = {0, 0, 0};
  for (int a = 0; a < 3; ++a) {
    Rng rng(99);
    ShardArm& arm = shard_arms[a];
    const uint64_t t0 = arm.client->clock().now_ns();
    uint64_t ops = 0;
    for (int b = 0; b < cfg.sharded_batches; ++b) {
      // 2 keys per shard per batch: deep chains on the idle node (agent
      // wins), head hits on the busy node (one-sided wins).
      const uint64_t batch[4] = {
          shard_keys[0][rng.Next() % shard_keys[0].size()],
          shard_keys[0][rng.Next() % shard_keys[0].size()],
          shard_keys[1][rng.Next() % shard_keys[1].size()],
          shard_keys[1][rng.Next() % shard_keys[1].size()]};
      auto results = arm.map->MultiGet(batch);
      for (auto& r : results) {
        CheckOk(r.status(), "sharded multiget");
      }
      ops += 4;
    }
    shard_ns[a] = double(arm.client->clock().now_ns() - t0) / double(ops);
  }

  DataplaneRouter& srouter = *shard_arms[kAdaptive].router;
  const NodeId idle_node = 0;
  const NodeId busy_node = 1;
  const bool gate_split =
      srouter.Preferred(RoutedOp::kMultiGet, idle_node) ==
          DataplaneRoute::kRpc &&
      srouter.Preferred(RoutedOp::kMultiGet, busy_node) ==
          DataplaneRoute::kOneSided;
  const double shard_best = std::min(shard_ns[0], shard_ns[1]);
  const bool gate_shard_track = shard_ns[kAdaptive] * 0.9 <= shard_best;
  gate_track = gate_track && gate_shard_track;

  Table stable({"phase", "one-sided ns/op", "rpc ns/op", "adaptive ns/op",
                "idle-node route", "busy-node route"});
  stable.AddRow(
      {Table::Cell("sharded_skew"), Table::Cell(shard_ns[0], 0),
       Table::Cell(shard_ns[1], 0), Table::Cell(shard_ns[2], 0),
       Table::Cell(srouter.Preferred(RoutedOp::kMultiGet, idle_node) ==
                           DataplaneRoute::kRpc
                       ? "rpc"
                       : "one-sided"),
       Table::Cell(srouter.Preferred(RoutedOp::kMultiGet, busy_node) ==
                           DataplaneRoute::kRpc
                       ? "rpc"
                       : "one-sided")});
  stable.Print(std::cout, "E16: per-shard split under node occupancy skew");

  json.Begin("sharded_skew");
  json.Num("rho_idle_node", 0.0);
  json.Num("rho_busy_node", 0.75);
  json.Int("depth_idle_shard", 8);
  json.Int("depth_busy_shard", 1);
  json.Int("batch", 4);
  json.Num("one_sided_ns_per_op", shard_ns[0], 5);
  json.Num("rpc_ns_per_op", shard_ns[1], 5);
  json.Num("adaptive_ns_per_op", shard_ns[2], 5);
  json.Str("idle_node_route",
           srouter.Preferred(RoutedOp::kMultiGet, idle_node) ==
                   DataplaneRoute::kRpc
               ? "rpc"
               : "one-sided");
  json.Str("busy_node_route",
           srouter.Preferred(RoutedOp::kMultiGet, busy_node) ==
                   DataplaneRoute::kRpc
               ? "rpc"
               : "one-sided");
  json.Int("split_gate_ok", gate_split ? 1 : 0);
  json.Int("track_gate_ok", gate_shard_track ? 1 : 0);

  json.Begin("gates");
  json.Int("smoke", smoke ? 1 : 0);
  json.Int("track_90pct_everywhere", gate_track ? 1 : 0);
  json.Int("extremes_1p5x", gate_extremes ? 1 : 0);
  json.Int("adaptive_flips", total_flips);
  json.Int("flips_gate_ok", gate_flips ? 1 : 0);
  json.Int("per_shard_split_ok", gate_split ? 1 : 0);
  json.Write(JsonOutputPath(argc, argv, "BENCH_e16.json"));

  // Final route gauges for the telemetry artifact (--telemetry=<path>).
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--telemetry=", 0) == 0) {
      TelemetryHub hub;
      GaugeGroup sweep_gauges(&hub);
      GaugeGroup shard_gauges(&hub);
      arms[kAdaptive]->router->AddGauges(&sweep_gauges, "route.sweep");
      srouter.AddGauges(&shard_gauges, "route.sharded");
      std::ofstream out(arg.substr(12), std::ios::trunc);
      hub.WriteJsonObject(out);
      out << "\n";
    }
  }

  std::cout << "\ngates: track90=" << (gate_track ? "OK" : "FAIL")
            << " extremes1.5x=" << (gate_extremes ? "OK" : "FAIL")
            << " flips(" << total_flips << ")>=2="
            << (gate_flips ? "OK" : "FAIL")
            << " per-shard-split=" << (gate_split ? "OK" : "FAIL") << "\n";
  return (gate_track && gate_extremes && gate_flips && gate_split) ? 0 : 1;
}
