// A12 — YCSB-style mixed workloads (skewed keys, realistic op mixes) over
// the three map designs of E3. Confirms the E3 crossover is not an artifact
// of uniform read-only probing: under updates, inserts, and Zipf skew the
// HT-tree stays near 1-2 far accesses/op while the RPC server stays
// CPU-bound.
#include "bench/bench_util.h"
#include "src/baselines/chained_hash.h"
#include "src/common/workload.h"
#include "src/core/ht_tree.h"
#include "src/perfmodel/throughput_model.h"
#include "src/rpc/kv_service.h"

namespace fmds {
namespace {

constexpr uint64_t kRecords = 50000;
constexpr int kOps = 10000;
constexpr double kMemNodeServiceNs = 60.0;

struct MixResult {
  double far_per_op;
  double latency_ns;
  double messages_per_op;
};

template <typename ReadFn, typename WriteFn>
MixResult RunMix(FarClient& client, YcsbMix mix, ReadFn&& read,
                 WriteFn&& write) {
  YcsbGenerator gen(mix, kRecords);
  const ClientStats before = client.stats();
  const uint64_t t0 = client.clock().now_ns();
  for (int i = 0; i < kOps; ++i) {
    const KvRequest request = gen.Next();
    switch (request.op) {
      case KvOp::kRead:
        read(request.key);
        break;
      case KvOp::kUpdate:
      case KvOp::kInsert:
        write(request.key, request.key * 31);
        break;
      case KvOp::kRmw:
        read(request.key);
        write(request.key, request.key * 37);
        break;
    }
  }
  const ClientStats delta = client.stats().Delta(before);
  MixResult result;
  result.far_per_op = static_cast<double>(delta.far_ops) / kOps;
  result.messages_per_op =
      static_cast<double>(delta.messages + 2 * delta.rpc_calls) / kOps;
  result.latency_ns =
      static_cast<double>(client.clock().now_ns() - t0) / kOps;
  return result;
}

}  // namespace
}  // namespace fmds

int main() {
  using namespace fmds;
  Table table({"mix", "design", "far/op", "1-client ns/op",
               "modelled Mops @64 clients"});
  for (YcsbMix mix : {YcsbMix::kA, YcsbMix::kB, YcsbMix::kC, YcsbMix::kD,
                      YcsbMix::kF}) {
    // HT-tree.
    {
      BenchEnv env(DefaultFabric());
      auto& client = env.NewClient();
      HtTree::Options options;
      options.buckets_per_table = 8192;
      auto map =
          CheckOk(HtTree::Create(&client, &env.alloc(), options), "map");
      for (uint64_t k = 1; k <= kRecords; ++k) {
        CheckOk(map.Put(k, k), "load");
      }
      auto result = RunMix(
          client, mix, [&](uint64_t key) { (void)map.Get(key); },
          [&](uint64_t key, uint64_t value) {
            CheckOk(map.Put(key, value), "put");
          });
      WorkloadCost model{result.latency_ns,
                         result.messages_per_op * kMemNodeServiceNs, 1};
      table.AddRow({YcsbMixName(mix), "HT-tree",
                    Table::Cell(result.far_per_op, 2),
                    Table::Cell(result.latency_ns, 0),
                    Table::Cell(SolveClosedSystem(model, 64).ops_per_sec /
                                    1e6,
                                2)});
    }
    // Chained HT.
    {
      BenchEnv env(DefaultFabric());
      auto& client = env.NewClient();
      ChainedHash::Options options;
      options.buckets = kRecords / 2;
      auto map = CheckOk(ChainedHash::Create(&client, &env.alloc(), options),
                         "chained");
      for (uint64_t k = 1; k <= kRecords; ++k) {
        CheckOk(map.Put(k, k), "load");
      }
      auto result = RunMix(
          client, mix, [&](uint64_t key) { (void)map.Get(key); },
          [&](uint64_t key, uint64_t value) {
            CheckOk(map.Put(key, value), "put");
          });
      WorkloadCost model{result.latency_ns,
                         result.messages_per_op * kMemNodeServiceNs, 1};
      table.AddRow({YcsbMixName(mix), "chained HT",
                    Table::Cell(result.far_per_op, 2),
                    Table::Cell(result.latency_ns, 0),
                    Table::Cell(SolveClosedSystem(model, 64).ops_per_sec /
                                    1e6,
                                2)});
    }
    // RPC KV.
    {
      BenchEnv env(DefaultFabric());
      auto& client = env.NewClient();
      RpcServer server;
      KvService service(&server);
      KvStub stub{RpcClient(&client, &server)};
      for (uint64_t k = 1; k <= kRecords; ++k) {
        CheckOk(stub.Put(k, k), "load");
      }
      const uint64_t calls0 = server.calls();
      const uint64_t busy0 = server.busy_ns();
      auto result = RunMix(
          client, mix, [&](uint64_t key) { (void)stub.Get(key); },
          [&](uint64_t key, uint64_t value) {
            CheckOk(stub.Put(key, value), "put");
          });
      const double service_ns =
          static_cast<double>(server.busy_ns() - busy0) /
          static_cast<double>(server.calls() - calls0);
      WorkloadCost model{result.latency_ns - service_ns, service_ns, 1};
      table.AddRow({YcsbMixName(mix), "RPC KV",
                    Table::Cell(result.far_per_op, 2),
                    Table::Cell(result.latency_ns, 0),
                    Table::Cell(SolveClosedSystem(model, 64).ops_per_sec /
                                    1e6,
                                2)});
    }
  }
  table.Print(std::cout,
              "A12: YCSB mixes (Zipf 0.99) — the E3 story holds under "
              "skewed mixed workloads");
  return 0;
}
