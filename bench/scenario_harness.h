// Overload scenario harness (EXPERIMENTS.md E17, DESIGN.md §14): shared
// plumbing for the congestion scenarios in bench_e17_overload. The harness
// programs against the abstract FarMap interface — workers hold their map
// handles behind FarMap*, so a scenario runs unchanged over HtTree,
// ShardedMap, or a baseline table behind FarMapRef.
//
// Concurrency model: workers are round-robin closed-loop clients. Each
// worker owns a FarClient (private SimClock) and an Attach'd map handle;
// RunRounds issues one logical op per worker per round, so the workers'
// clocks advance in near-lockstep — exactly the offered-load shape N
// concurrent application threads present to a node's congestion front end
// (ServiceQueue keys admission off its virtual clock, the max arrival time
// across clients). Single real thread: runs are deterministic.
#ifndef FMDS_BENCH_SCENARIO_HARNESS_H_
#define FMDS_BENCH_SCENARIO_HARNESS_H_

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/far_map.h"
#include "src/core/ht_tree.h"

namespace fmds {

// q-th percentile (by rank) of raw latency samples; 0 for an empty set.
inline uint64_t PercentileNs(std::vector<uint64_t> samples, double q) {
  if (samples.empty()) {
    return 0;
  }
  std::sort(samples.begin(), samples.end());
  const size_t rank = std::min(
      samples.size() - 1,
      static_cast<size_t>(q * static_cast<double>(samples.size())));
  return samples[rank];
}

// One closed-loop worker: a client plus its FarMap handle on the shared
// structure. `latencies` collects one sample per completed round.
struct ScenarioWorker {
  FarClient* client = nullptr;
  std::unique_ptr<FarMap> map;
  std::vector<uint64_t> latencies;
  uint64_t ok_ops = 0;
  uint64_t failed_ops = 0;
  uint64_t overloaded_ops = 0;
};

// A fleet of workers attached to one shared HT-tree. The tree is created by
// worker 0 and Attach'd by the rest, so all handles see the same far state.
class ScenarioFleet {
 public:
  // `retry` applies to every worker; `obs` (windowed signals for admission
  // feedback) is armed on worker 0 only — one observer is enough to feed a
  // fleet-shared AdmissionController and keeps the other workers on the
  // zero-overhead path.
  ScenarioFleet(BenchEnv* env, size_t workers, const HtTree::Options& options,
                const RetryPolicy& retry, const ObsOptions* obs = nullptr) {
    workers_.resize(workers);
    for (size_t i = 0; i < workers; ++i) {
      ScenarioWorker& worker = workers_[i];
      worker.client = &env->NewClient();
      worker.client->set_retry_policy(retry);
      if (obs != nullptr && i == 0) {
        worker.client->EnableObs(*obs);
      }
      if (i == 0) {
        auto tree = CheckOk(
            HtTree::Create(worker.client, &env->alloc(), options),
            "scenario fleet create");
        root_ = tree.header();
        worker.map = std::make_unique<HtTree>(std::move(tree));
      } else {
        worker.map = std::make_unique<HtTree>(
            CheckOk(HtTree::Attach(worker.client, &env->alloc(), root_,
                                   options),
                    "scenario fleet attach"));
      }
    }
  }

  size_t size() const { return workers_.size(); }
  ScenarioWorker& worker(size_t i) { return workers_[i]; }
  FarMap& map(size_t i) { return *workers_[i].map; }
  FarClient& client(size_t i) { return *workers_[i].client; }
  FarAddr root() const { return root_; }

  // Round-robin closed loop: `rounds` rounds, one op per worker per round.
  // `op` runs one logical operation (any FarMap calls) and returns its
  // Status; the harness records the worker's clock delta as the round's
  // latency sample and buckets the outcome (ok / overloaded / failed).
  template <typename Fn>
  void RunRounds(size_t rounds, Fn&& op) {
    for (size_t round = 0; round < rounds; ++round) {
      for (size_t i = 0; i < workers_.size(); ++i) {
        ScenarioWorker& worker = workers_[i];
        const uint64_t t0 = worker.client->clock().now_ns();
        const Status status = op(*worker.map, *worker.client, i, round);
        worker.latencies.push_back(worker.client->clock().now_ns() - t0);
        if (status.ok()) {
          ++worker.ok_ops;
        } else if (status.code() == StatusCode::kOverloaded) {
          ++worker.overloaded_ops;
        } else {
          ++worker.failed_ops;
        }
      }
    }
  }

  // Pooled latency samples across the fleet (cleared by ResetSamples).
  std::vector<uint64_t> AllLatencies() const {
    std::vector<uint64_t> all;
    for (const ScenarioWorker& worker : workers_) {
      all.insert(all.end(), worker.latencies.begin(), worker.latencies.end());
    }
    return all;
  }
  void ResetSamples() {
    for (ScenarioWorker& worker : workers_) {
      worker.latencies.clear();
      worker.ok_ops = worker.failed_ops = worker.overloaded_ops = 0;
    }
  }

  uint64_t TotalOk() const {
    uint64_t n = 0;
    for (const ScenarioWorker& worker : workers_) {
      n += worker.ok_ops;
    }
    return n;
  }
  uint64_t TotalOverloaded() const {
    uint64_t n = 0;
    for (const ScenarioWorker& worker : workers_) {
      n += worker.overloaded_ops;
    }
    return n;
  }
  // Clock barrier: advances every worker to the fleet max, like threads
  // released together at a phase boundary. Call before a measured phase so
  // no worker "arrives from the past" of the node's virtual clock.
  void AlignClocks() {
    const uint64_t now = MaxClockNs();
    for (ScenarioWorker& worker : workers_) {
      SimClock& clock = worker.client->clock();
      if (clock.now_ns() < now) {
        clock.Advance(now - clock.now_ns());
      }
    }
  }
  // Max simulated clock across the fleet — the wall the slowest worker saw.
  uint64_t MaxClockNs() const {
    uint64_t now = 0;
    for (const ScenarioWorker& worker : workers_) {
      now = std::max(now, worker.client->clock().now_ns());
    }
    return now;
  }
  // Fleet-summed client stats (quiesced read: call between rounds only).
  ClientStats SumStats() const {
    ClientStats sum;
    for (const ScenarioWorker& worker : workers_) {
      sum.Add(worker.client->stats());
    }
    return sum;
  }

 private:
  FarAddr root_;
  std::vector<ScenarioWorker> workers_;
};

// Exit-code gate bookkeeping: every scenario Check()s its gates; main exits
// nonzero if any failed. Also mirrors each gate into the JSON report.
class GateSet {
 public:
  void Check(const std::string& name, bool ok, const std::string& detail) {
    gates_.push_back({name, ok});
    std::printf("gate %-38s %s  (%s)\n", name.c_str(), ok ? "OK  " : "FAIL",
                detail.c_str());
    all_ok_ = all_ok_ && ok;
  }
  bool all_ok() const { return all_ok_; }
  void Report(BenchJson* json) const {
    json->Begin("gates");
    for (const auto& [name, ok] : gates_) {
      json->Int(name, ok ? 1 : 0);
    }
    json->Int("all_ok", all_ok_ ? 1 : 0);
  }

 private:
  std::vector<std::pair<std::string, bool>> gates_;
  bool all_ok_ = true;
};

}  // namespace fmds

#endif  // FMDS_BENCH_SCENARIO_HARNESS_H_
