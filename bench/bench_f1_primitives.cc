// F1 — Figure 1 reproduction: every proposed hardware primitive, its
// observable semantics cost: client round trips (far_ops), fabric messages,
// payload bytes, and modelled latency. The paper's table lists semantics;
// this harness validates that each primitive completes its composite effect
// in ONE client round trip.
#include <benchmark/benchmark.h>

#include <functional>

#include "bench/bench_util.h"
#include "src/common/bytes.h"

namespace fmds {
namespace {

struct Row {
  const char* name;
  ClientStats delta;
  uint64_t sim_ns;
};

Row Measure(BenchEnv& env, FarClient& client, const char* name,
            const std::function<void(FarClient&)>& op) {
  (void)env;
  const ClientStats before = client.stats();
  const uint64_t t0 = client.clock().now_ns();
  op(client);
  Row row;
  row.name = name;
  row.delta = client.stats().Delta(before);
  row.sim_ns = client.clock().now_ns() - t0;
  return row;
}

void PrintFigure1() {
  BenchEnv env(DefaultFabric());
  auto& client = env.NewClient();
  auto& watcher = env.NewClient();

  // Layout: ptr cell at 64 -> 4096; ptr table at [64,72]; data at 4096+.
  CheckOk(client.WriteWord(64, 4096), "init");
  CheckOk(client.WriteWord(72, 8192), "init");
  CheckOk(client.WriteWord(4096, 11), "init");
  CheckOk(client.WriteWord(8192, 22), "init");

  uint64_t word = 0;
  std::vector<Row> rows;
  auto measure = [&](const char* name, std::function<void(FarClient&)> op) {
    rows.push_back(Measure(env, client, name, op));
  };

  measure("read (verb)", [&](FarClient& c) {
    CheckOk(c.Read(4096, AsBytes(word)), "read");
  });
  measure("write (verb)", [&](FarClient& c) {
    CheckOk(c.Write(4096, AsConstBytes(word)), "write");
  });
  measure("cas (verb)", [&](FarClient& c) {
    CheckOk(c.CompareSwap(4096, word, word).status(), "cas");
  });
  measure("fetch-add (verb)", [&](FarClient& c) {
    CheckOk(c.FetchAdd(4096, 0).status(), "faa");
  });
  measure("load0", [&](FarClient& c) {
    CheckOk(c.Load0(64, AsBytes(word)).status(), "load0");
  });
  measure("load1", [&](FarClient& c) {
    CheckOk(c.Load1(64, 8, AsBytes(word)).status(), "load1");
  });
  measure("load2", [&](FarClient& c) {
    CheckOk(c.Load2(64, 8, AsBytes(word)).status(), "load2");
  });
  measure("store0", [&](FarClient& c) {
    CheckOk(c.Store0(64, AsConstBytes(word)).status(), "store0");
  });
  measure("store1", [&](FarClient& c) {
    CheckOk(c.Store1(64, 8, AsConstBytes(word)).status(), "store1");
  });
  measure("store2", [&](FarClient& c) {
    CheckOk(c.Store2(64, 8, AsConstBytes(word)).status(), "store2");
  });
  CheckOk(client.WriteWord(128, 4096), "init faai cursor");
  measure("faai", [&](FarClient& c) {
    CheckOk(c.Faai(128, 8, AsBytes(word)).status(), "faai");
  });
  measure("saai", [&](FarClient& c) {
    CheckOk(c.Saai(128, 8, AsConstBytes(word)).status(), "saai");
  });
  measure("add0", [&](FarClient& c) { CheckOk(c.Add0(64, 1), "add0"); });
  measure("add1", [&](FarClient& c) { CheckOk(c.Add1(64, 1, 8), "add1"); });
  measure("add2", [&](FarClient& c) { CheckOk(c.Add2(64, 1, 8), "add2"); });

  std::byte buf_a[64];
  std::byte buf_b[64];
  LocalBuf scatter_iov[2] = {{buf_a, 64}, {buf_b, 64}};
  measure("rscatter", [&](FarClient& c) {
    CheckOk(c.RScatter(4096, scatter_iov), "rscatter");
  });
  FarSeg far_iov[2] = {{4096, 64}, {8192, 64}};
  std::byte big[128];
  measure("rgather", [&](FarClient& c) {
    CheckOk(c.RGather(far_iov, big), "rgather");
  });
  measure("wscatter", [&](FarClient& c) {
    CheckOk(c.WScatter(far_iov, big), "wscatter");
  });
  ConstLocalBuf wg_iov[2] = {{buf_a, 64}, {buf_b, 64}};
  measure("wgather", [&](FarClient& c) {
    CheckOk(c.WGather(4096, wg_iov), "wgather");
  });

  // Notifications: subscription setup + the writer-side cost of a firing
  // write (zero extra client round trips for the writer).
  NotifySpec spec;
  spec.mode = NotifyMode::kOnWrite;
  spec.addr = 4096;
  spec.len = 64;
  CheckOk(watcher.Subscribe(spec).status(), "notify0 sub");
  measure("write w/ notify0 armed", [&](FarClient& c) {
    CheckOk(c.WriteWord(4096, 1), "write");
  });
  NotifySpec eq;
  eq.mode = NotifyMode::kOnEqual;
  eq.addr = 8192;
  eq.len = 8;
  eq.value = 0;
  CheckOk(watcher.Subscribe(eq).status(), "notifye sub");
  measure("write w/ notifye armed", [&](FarClient& c) {
    CheckOk(c.WriteWord(8192, 0), "write");
  });

  Table table({"primitive", "round_trips", "messages", "bytes_rd",
               "bytes_wr", "sim_ns"});
  for (const Row& row : rows) {
    table.AddRow({row.name, Table::Cell(row.delta.far_ops),
                  Table::Cell(row.delta.messages),
                  Table::Cell(row.delta.bytes_read),
                  Table::Cell(row.delta.bytes_written),
                  Table::Cell(row.sim_ns)});
  }
  table.Print(std::cout,
              "F1: Figure 1 primitives — cost per operation "
              "(every primitive = 1 client round trip)");
  std::cout << "notifications delivered to watcher: "
            << watcher.channel().published() << "\n";
}

// Wall-time microbenches of representative primitives (simulator speed).
void BM_Load0(benchmark::State& state) {
  BenchEnv env(DefaultFabric());
  auto& client = env.NewClient();
  CheckOk(client.WriteWord(64, 4096), "init");
  uint64_t out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.Load0(64, AsBytes(out)));
  }
}
BENCHMARK(BM_Load0);

void BM_Faai(benchmark::State& state) {
  BenchEnv env(DefaultFabric());
  auto& client = env.NewClient();
  CheckOk(client.WriteWord(64, 4096), "init");
  uint64_t out;
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.Faai(64, 8, AsBytes(out)));
    if (++i % 1000 == 0) {
      CheckOk(client.WriteWord(64, 4096), "reset");
    }
  }
}
BENCHMARK(BM_Faai);

void BM_RGather4(benchmark::State& state) {
  BenchEnv env(DefaultFabric());
  auto& client = env.NewClient();
  FarSeg iov[4] = {{4096, 64}, {8192, 64}, {12288, 64}, {16384, 64}};
  std::byte out[256];
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.RGather(iov, out));
  }
}
BENCHMARK(BM_RGather4);

}  // namespace
}  // namespace fmds

int main(int argc, char** argv) {
  fmds::PrintFigure1();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
