// E14 — asynchronous write-behind pipeline (src/core/write_behind.*,
// DESIGN.md §11): the app thread enqueues writes into a client-local
// pending table and a flusher thread publishes them in batched doorbell
// waves, so a write-heavy workload is bounded by the flusher's *issue
// rate*, not the app thread's serial round-trip latency.
//
// Three claims, all enforced by the exit code:
//   1. Throughput: at 8 app threads (each its own client + write-behind
//      ShardedMap handle) on a Zipf(0.99) 95/5 write/read mix, simulated
//      throughput — total ops over the MAX clock advance across all app
//      AND flusher clients — is >= 2x the synchronous-Put baseline.
//   2. Combining: a single writer rewriting 64 hot keys in a loop gets
//      >= 1.5x over FIFO (combine=false) mode: same-key writes collapse
//      in the pending table, so hot keys cost one publish per drain
//      instead of one per write (ClientStats.writes_combined counts the
//      absorbed doorbells).
//   3. Hot path stays allocation/reclamation-free: during a pure-write
//      window the app client pays ZERO far ops, the app cache performs
//      ZERO hot-path evictions (background evictor reclaims instead:
//      bg_evictions > 0), and the pipeline counters prove the stages ran
//      where they should (app writes_combined > 0, flusher
//      flush_stages > 0, app flush_stages == 0).
//
// Flags: --smoke (tiny config for CI), --repeat=N (median-of-N),
// --json=<path>.
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/cache/bg_evictor.h"
#include "src/common/rng.h"
#include "src/core/sharded_map.h"

namespace fmds {
namespace {

struct Config {
  uint32_t nodes = 8;
  uint32_t shards = 8;
  uint64_t keys = 20000;
  uint64_t buckets = 8192;
  uint32_t threads = 8;
  int ops_per_thread = 8000;
  int warmup_ops = 500;
  // Combining row (single thread).
  uint64_t hot_keys = 64;
  int hot_rounds = 6000;
};

FabricOptions WbFabric(uint32_t nodes) {
  FabricOptions options;
  options.num_nodes = nodes;
  options.node_capacity = 256ull << 20;
  return options;
}

ShardedMap::Options MapOptions(const Config& cfg) {
  ShardedMap::Options options;
  options.num_shards = cfg.shards;
  options.shard.buckets_per_table = cfg.buckets;
  options.shard.cache.budget_bytes = 256 << 10;
  options.shard.cache.admit_after = 0;
  options.shard.cache.word_versioned = true;
  return options;
}

WriteBehindOptions WbOptions() {
  WriteBehindOptions wb;
  wb.max_batch = 64;
  wb.flush_interval_us = 50;
  return wb;
}

struct RunResult {
  double ops_per_sec = 0.0;     // total ops / max simulated clock advance
  double app_far_per_op = 0.0;  // app-client far ops per operation
  uint64_t writes_combined = 0;
  uint64_t flush_stages = 0;
};

// The Zipf write/read sweep: `threads` concurrent app clients, each with
// its own handle (write-behind when `wb` is set). Simulated elapsed time
// is the max clock advance over every participating client — app AND
// flusher — so the flusher's publish work is never hidden.
RunResult RunMix(const Config& cfg, bool wb, double write_frac,
                 uint64_t seed) {
  BenchEnv env(WbFabric(cfg.nodes));
  FarClient& owner = env.NewClient();
  std::vector<FarClient*> clients;
  for (uint32_t t = 0; t < cfg.threads; ++t) {
    clients.push_back(&env.NewClient());
  }
  ShardedMap root = CheckOk(
      ShardedMap::Create(&owner, &env.alloc(), MapOptions(cfg)), "create");
  {
    std::vector<uint64_t> keys, values;
    for (uint64_t k = 1; k <= cfg.keys; ++k) {
      keys.push_back(k);
      values.push_back(k);
      if (keys.size() == 512 || k == cfg.keys) {
        CheckOk(root.MultiPut(keys, values), "preload");
        keys.clear();
        values.clear();
      }
    }
  }

  std::vector<std::unique_ptr<ShardedMap>> maps;
  for (uint32_t t = 0; t < cfg.threads; ++t) {
    maps.push_back(std::make_unique<ShardedMap>(
        CheckOk(ShardedMap::Attach(clients[t], &env.alloc(),
                                   root.directory(), MapOptions(cfg)),
                "attach")));
    if (wb) {
      CheckOk(maps.back()->EnableWriteBehind(WbOptions()), "enable wb");
    }
  }

  std::vector<uint64_t> app_delta(cfg.threads, 0);
  std::vector<uint64_t> flusher_delta(cfg.threads, 0);
  std::vector<uint64_t> app_far(cfg.threads, 0);
  std::vector<uint64_t> combined(cfg.threads, 0);
  std::vector<uint64_t> stages(cfg.threads, 0);
  std::vector<std::thread> workers;
  for (uint32_t t = 0; t < cfg.threads; ++t) {
    workers.emplace_back([&, t] {
      ShardedMap& map = *maps[t];
      FarClient& client = *clients[t];
      ZipfGenerator zipf(cfg.keys, 0.99, seed + 31 * t);
      Rng rng(seed ^ (t + 1));
      const auto op = [&](uint64_t salt) {
        const uint64_t key = zipf.Next() + 1;
        if (rng.Next() % 1000 < static_cast<uint64_t>(write_frac * 1000)) {
          CheckOk(map.Put(key, key * 10 + salt), "put");
        } else {
          CheckOk(map.Get(key).status(), "get");
        }
      };
      for (int i = 0; i < cfg.warmup_ops; ++i) {
        op(0);
      }
      CheckOk(map.FlushBarrier(), "warmup barrier");
      // The flusher idles between drains; after a barrier with nothing
      // staged its clock is stable to sample.
      const uint64_t app_t0 = client.clock().now_ns();
      const uint64_t flusher_t0 =
          wb ? map.write_behind()->flusher_client()->clock().now_ns() : 0;
      const ClientStats before = client.stats();
      for (int i = 0; i < cfg.ops_per_thread; ++i) {
        op(1);
      }
      CheckOk(map.FlushBarrier(), "final barrier");
      const ClientStats delta = client.stats().Delta(before);
      app_delta[t] = client.clock().now_ns() - app_t0;
      flusher_delta[t] =
          wb ? map.write_behind()->flusher_client()->clock().now_ns() -
                   flusher_t0
             : 0;
      app_far[t] = delta.far_ops;
      combined[t] = delta.writes_combined;
      stages[t] =
          wb ? map.write_behind()->flusher_client()->stats().flush_stages
             : 0;
    });
  }
  for (auto& w : workers) {
    w.join();
  }

  uint64_t elapsed = 1;
  RunResult r;
  for (uint32_t t = 0; t < cfg.threads; ++t) {
    elapsed = std::max({elapsed, app_delta[t], flusher_delta[t]});
    r.app_far_per_op += static_cast<double>(app_far[t]);
    r.writes_combined += combined[t];
    r.flush_stages += stages[t];
  }
  const double total_ops =
      static_cast<double>(cfg.threads) * cfg.ops_per_thread;
  r.ops_per_sec = total_ops * 1e9 / static_cast<double>(elapsed);
  r.app_far_per_op /= total_ops;
  return r;
}

// The combining row: one writer rewriting `hot_keys` keys round-robin.
// Everything stays staged until batch-full/barrier drains (huge flush
// interval), so the only difference between the modes is how many records
// reach a doorbell: combine mode publishes one per key per drain, FIFO
// publishes one per WRITE.
RunResult RunHotRewrite(const Config& cfg, bool combine, uint64_t seed) {
  BenchEnv env(WbFabric(cfg.nodes));
  FarClient& client = env.NewClient();
  ShardedMap map = CheckOk(
      ShardedMap::Create(&client, &env.alloc(), MapOptions(cfg)), "create");
  WriteBehindOptions wb;
  wb.combine = combine;
  wb.max_batch = 256;
  wb.max_pending = 512;
  wb.flush_interval_us = 1000ull * 1000 * 1000;
  CheckOk(map.EnableWriteBehind(wb), "enable wb");

  Rng rng(seed);
  for (int i = 0; i < cfg.warmup_ops; ++i) {
    CheckOk(map.Put(1 + rng.Next() % cfg.hot_keys, i + 1), "warmup");
  }
  CheckOk(map.FlushBarrier(), "warmup barrier");
  const uint64_t app_t0 = client.clock().now_ns();
  const uint64_t flusher_t0 =
      map.write_behind()->flusher_client()->clock().now_ns();
  const ClientStats before = client.stats();
  for (int i = 0; i < cfg.hot_rounds; ++i) {
    CheckOk(map.Put(1 + (i % cfg.hot_keys), i + 1), "hot put");
  }
  CheckOk(map.FlushBarrier(), "final barrier");
  const ClientStats delta = client.stats().Delta(before);

  RunResult r;
  const uint64_t elapsed = std::max<uint64_t>(
      1, std::max(client.clock().now_ns() - app_t0,
                  map.write_behind()->flusher_client()->clock().now_ns() -
                      flusher_t0));
  r.ops_per_sec = cfg.hot_rounds * 1e9 / static_cast<double>(elapsed);
  r.app_far_per_op = static_cast<double>(delta.far_ops) / cfg.hot_rounds;
  r.writes_combined = delta.writes_combined;
  r.flush_stages =
      map.write_behind()->flusher_client()->stats().flush_stages;
  return r;
}

// The hot-path proof window: pure writes against a small background-mode
// cache with an active evictor. Returns through out-params because the
// claim is about exact counter values, not throughput.
struct ProofResult {
  uint64_t app_far_ops = 0;
  uint64_t app_evictions = 0;
  uint64_t bg_evictions = 0;
  uint64_t writes_combined = 0;
  uint64_t app_flush_stages = 0;
  uint64_t flusher_flush_stages = 0;
};

ProofResult RunHotPathProof(const Config& cfg, uint64_t seed) {
  BenchEnv env(WbFabric(1));
  FarClient& client = env.NewClient();
  HtTree::Options options;
  options.buckets_per_table = 4096;
  options.cache.budget_bytes = 16 << 10;  // tiny: forces reclamation
  options.cache.admit_after = 0;
  options.cache.background_eviction = true;
  HtTree map = CheckOk(HtTree::Create(&client, &env.alloc(), options),
                       "create");
  CheckOk(map.EnableWriteBehind(WbOptions()), "enable wb");
  BackgroundEvictor evictor(&env.fabric(), /*client_id=*/4242);
  evictor.Watch(map.near_cache());

  Rng rng(seed);
  const uint64_t span = cfg.keys / 4;
  // Warm the cache via reads so eviction pressure is real.
  for (uint64_t k = 1; k <= span; ++k) {
    CheckOk(map.Put(k, k), "put");
  }
  CheckOk(map.FlushBarrier(), "warm barrier");
  for (uint64_t k = 1; k <= span; ++k) {
    (void)map.Get(k);
  }
  evictor.SweepNow();

  const ClientStats before = client.stats();
  const NearCacheStats cache_before = map.near_cache()->stats();
  for (int i = 0; i < cfg.ops_per_thread; ++i) {
    CheckOk(map.Put(1 + rng.Next() % span, i + 1), "pure write");
  }
  const ClientStats delta = client.stats().Delta(before);

  ProofResult p;
  p.app_far_ops = delta.far_ops;
  p.app_evictions =
      map.near_cache()->stats().evictions - cache_before.evictions;
  p.writes_combined = delta.writes_combined;
  p.app_flush_stages = delta.flush_stages;
  CheckOk(map.FlushBarrier(), "proof barrier");
  evictor.SweepNow();
  p.bg_evictions = evictor.stats().bg_evictions;
  p.flusher_flush_stages =
      map.write_behind()->flusher_client()->stats().flush_stages;
  evictor.Unwatch(map.near_cache());
  evictor.StopAndJoin();
  return p;
}

}  // namespace
}  // namespace fmds

int main(int argc, char** argv) {
  using namespace fmds;

  const bool smoke = FlagPresent(argc, argv, "--smoke");
  const int repeat = RepeatArg(argc, argv);

  Config cfg;
  if (smoke) {
    cfg.keys = 4000;
    cfg.buckets = 2048;
    cfg.ops_per_thread = 1500;
    cfg.warmup_ops = 200;
    cfg.hot_rounds = 2000;
  }

  BenchJson json;
  Table table({"mode", "write%", "threads", "Kops/s", "app far/op",
               "combined", "stages"});

  // --- Claim 1: write-behind vs synchronous Put, Zipf 95/5 and 50/50 ---
  double sync95 = 0.0, wb95 = 0.0;
  for (const double write_frac : {0.95, 0.50}) {
    for (const bool wb : {false, true}) {
      std::vector<double> samples;
      RunResult r;
      for (int rep = 0; rep < repeat; ++rep) {
        r = RunMix(cfg, wb, write_frac, 17 + 101 * rep);
        samples.push_back(r.ops_per_sec);
      }
      r.ops_per_sec = Median(samples);
      if (write_frac == 0.95) {
        (wb ? wb95 : sync95) = r.ops_per_sec;
      }
      const char* mode = wb ? "write-behind" : "sync";
      table.AddRow({Table::Cell(mode),
                    Table::Cell(100.0 * write_frac, 0),
                    Table::Cell(uint64_t(cfg.threads)),
                    Table::Cell(r.ops_per_sec / 1e3, 1),
                    Table::Cell(r.app_far_per_op, 3),
                    Table::Cell(r.writes_combined),
                    Table::Cell(r.flush_stages)});
      char name[64];
      std::snprintf(name, sizeof(name), "%s,write=%.0f%%", mode,
                    100.0 * write_frac);
      json.Begin(name);
      json.Str("mode", mode);
      json.Num("write_frac", write_frac);
      json.Int("threads", cfg.threads);
      json.Int("nodes", cfg.nodes);
      json.Int("keys", cfg.keys);
      json.Int("repeat", static_cast<uint64_t>(repeat));
      json.Num("ops_per_sec", r.ops_per_sec);
      json.Num("app_far_per_op", r.app_far_per_op, 4);
      json.Int("writes_combined", r.writes_combined);
      json.Int("flush_stages", r.flush_stages);
    }
  }

  // --- Claim 2: write combining on same-word hot keys ---
  double combine_tput = 0.0, fifo_tput = 0.0;
  for (const bool combine : {false, true}) {
    const RunResult r = RunHotRewrite(cfg, combine, 23);
    (combine ? combine_tput : fifo_tput) = r.ops_per_sec;
    const char* mode = combine ? "wb-combine" : "wb-fifo";
    table.AddRow({Table::Cell(mode), Table::Cell(100.0, 0),
                  Table::Cell(uint64_t(1)),
                  Table::Cell(r.ops_per_sec / 1e3, 1),
                  Table::Cell(r.app_far_per_op, 3),
                  Table::Cell(r.writes_combined),
                  Table::Cell(r.flush_stages)});
    json.Begin(std::string(mode) + ",hot=" + std::to_string(cfg.hot_keys));
    json.Str("mode", mode);
    json.Int("hot_keys", cfg.hot_keys);
    json.Int("rounds", static_cast<uint64_t>(cfg.hot_rounds));
    json.Num("ops_per_sec", r.ops_per_sec);
    json.Int("writes_combined", r.writes_combined);
    json.Int("flush_stages", r.flush_stages);
  }

  // --- Claim 3: the hot path is allocation- and reclamation-free ---
  const ProofResult proof = RunHotPathProof(cfg, 29);
  json.Begin("hot-path-proof");
  json.Int("app_far_ops_pure_write_window", proof.app_far_ops);
  json.Int("app_cache_evictions", proof.app_evictions);
  json.Int("bg_evictions", proof.bg_evictions);
  json.Int("writes_combined", proof.writes_combined);
  json.Int("app_flush_stages", proof.app_flush_stages);
  json.Int("flusher_flush_stages", proof.flusher_flush_stages);

  table.Print(std::cout,
              "E14: asynchronous write-behind pipeline (Zipf 0.99, "
              "8-node simulated fabric)");

  const double speedup = sync95 > 0.0 ? wb95 / sync95 : 0.0;
  const double combining = fifo_tput > 0.0 ? combine_tput / fifo_tput : 0.0;
  const bool hot_path_clean =
      proof.app_far_ops == 0 && proof.app_evictions == 0 &&
      proof.bg_evictions > 0 && proof.writes_combined > 0 &&
      proof.app_flush_stages == 0 && proof.flusher_flush_stages > 0;
  std::cout << "\nsummary: write-behind/sync @95%w,8T = " << speedup
            << "x (target >= 2x); combine/fifo = " << combining
            << "x (target >= 1.5x); hot path clean = "
            << (hot_path_clean ? "yes" : "NO") << "\n";
  json.Begin("headline");
  json.Num("speedup_wb_vs_sync_95w_8t", speedup, 4);
  json.Num("speedup_target", 2.0);
  json.Num("combining_speedup", combining, 4);
  json.Num("combining_target", 1.5);
  json.Int("hot_path_clean", hot_path_clean ? 1 : 0);

  json.Write(JsonOutputPath(argc, argv, "BENCH_e14.json"));
  return (speedup >= 2.0 && combining >= 1.5 && hot_path_clean) ? 0 : 1;
}
