// E5 — §5.3: queue operation costs. The faai/saai queue's fast path is ONE
// far access; the best today's verbs manage is two (FAA + slot); locks cost
// ~5 plus contention; RPC costs server CPU. Also: slow-path frequency as
// the ring wraps, and throughput-vs-clients curves from the measured costs.
#include <thread>

#include "bench/bench_util.h"
#include "src/baselines/simple_queues.h"
#include "src/core/far_queue.h"
#include "src/perfmodel/throughput_model.h"
#include "src/rpc/queue_service.h"

namespace fmds {
namespace {

constexpr int kOpsPairs = 20000;
constexpr double kMemNodeServiceNs = 60.0;

struct Cost {
  double far_per_op;
  double bg_per_op;
  double latency_ns;
  double slow_fraction;
};

}  // namespace
}  // namespace fmds

int main() {
  using namespace fmds;

  // ---- FarQueue (faai/saai) ----
  Cost faai_cost{};
  {
    BenchEnv env(DefaultFabric());
    auto& client = env.NewClient();
    FarQueue::Options options;
    options.capacity = 4096;
    options.max_clients = 2;
    auto queue = CheckOk(FarQueue::Create(&client, &env.alloc(), options),
                         "farqueue");
    // Steady-state: keep ~half full.
    for (int i = 1; i <= 2048; ++i) {
      CheckOk(queue.Enqueue(i), "prefill");
    }
    const ClientStats before = client.stats();
    const uint64_t t0 = client.clock().now_ns();
    for (int i = 1; i <= kOpsPairs; ++i) {
      CheckOk(queue.Enqueue(i), "enq");
      CheckOk(queue.Dequeue().status(), "deq");
    }
    const ClientStats delta = client.stats().Delta(before);
    faai_cost.far_per_op =
        static_cast<double>(delta.far_ops) / (2.0 * kOpsPairs);
    faai_cost.bg_per_op =
        static_cast<double>(delta.background_ops) / (2.0 * kOpsPairs);
    faai_cost.latency_ns =
        static_cast<double>(client.clock().now_ns() - t0) /
        (2.0 * kOpsPairs);
    faai_cost.slow_fraction =
        static_cast<double>(delta.slow_path_ops) / (2.0 * kOpsPairs);
  }

  // ---- Ticket queue (2x FAA-era accesses) ----
  Cost ticket_cost{};
  {
    BenchEnv env(DefaultFabric());
    auto& client = env.NewClient();
    auto queue = CheckOk(TicketFarQueue::Create(&client, &env.alloc(), 4096),
                         "ticket");
    for (int i = 1; i <= 2048; ++i) {
      CheckOk(queue.Enqueue(i), "prefill");
    }
    const ClientStats before = client.stats();
    const uint64_t t0 = client.clock().now_ns();
    for (int i = 1; i <= kOpsPairs; ++i) {
      CheckOk(queue.Enqueue(i), "enq");
      CheckOk(queue.Dequeue().status(), "deq");
    }
    const ClientStats delta = client.stats().Delta(before);
    ticket_cost.far_per_op =
        static_cast<double>(delta.far_ops) / (2.0 * kOpsPairs);
    ticket_cost.bg_per_op =
        static_cast<double>(delta.background_ops) / (2.0 * kOpsPairs);
    ticket_cost.latency_ns =
        static_cast<double>(client.clock().now_ns() - t0) /
        (2.0 * kOpsPairs);
  }

  // ---- Lock queue ----
  Cost lock_cost{};
  {
    BenchEnv env(DefaultFabric());
    auto& client = env.NewClient();
    auto queue = CheckOk(LockFarQueue::Create(&client, &env.alloc(), 4096),
                         "lockq");
    for (int i = 1; i <= 2048; ++i) {
      CheckOk(queue.Enqueue(i), "prefill");
    }
    const ClientStats before = client.stats();
    const uint64_t t0 = client.clock().now_ns();
    for (int i = 1; i <= kOpsPairs / 4; ++i) {
      CheckOk(queue.Enqueue(i), "enq");
      CheckOk(queue.Dequeue().status(), "deq");
    }
    const ClientStats delta = client.stats().Delta(before);
    lock_cost.far_per_op =
        static_cast<double>(delta.far_ops) / (2.0 * kOpsPairs / 4);
    lock_cost.latency_ns =
        static_cast<double>(client.clock().now_ns() - t0) /
        (2.0 * kOpsPairs / 4);
  }

  // ---- RPC queue ----
  Cost rpc_cost{};
  double rpc_service_ns = 0.0;
  {
    BenchEnv env(DefaultFabric());
    auto& client = env.NewClient();
    RpcServer server;
    QueueService service(&server);
    QueueStub stub{RpcClient(&client, &server)};
    const uint64_t t0 = client.clock().now_ns();
    for (int i = 1; i <= kOpsPairs / 4; ++i) {
      CheckOk(stub.Enqueue(i), "enq");
      CheckOk(stub.Dequeue().status(), "deq");
    }
    rpc_cost.latency_ns = static_cast<double>(client.clock().now_ns() - t0) /
                          (2.0 * kOpsPairs / 4);
    rpc_service_ns = static_cast<double>(server.busy_ns()) /
                     static_cast<double>(server.calls());
  }

  Table costs({"queue", "far/op", "bg/op", "slow_frac", "1-client ns/op"});
  costs.AddRow({"faai/saai FarQueue (§5.3)",
                Table::Cell(faai_cost.far_per_op, 3),
                Table::Cell(faai_cost.bg_per_op, 3),
                Table::Cell(faai_cost.slow_fraction, 4),
                Table::Cell(faai_cost.latency_ns, 0)});
  costs.AddRow({"ticket (FAA + write)", Table::Cell(ticket_cost.far_per_op, 3),
                Table::Cell(ticket_cost.bg_per_op, 3), "-",
                Table::Cell(ticket_cost.latency_ns, 0)});
  costs.AddRow({"far-mutex locked", Table::Cell(lock_cost.far_per_op, 3), "-",
                "-", Table::Cell(lock_cost.latency_ns, 0)});
  costs.AddRow({"RPC queue", "0", "-", "-",
                Table::Cell(rpc_cost.latency_ns, 0)});
  costs.Print(std::cout,
              "E5a: far accesses per queue operation (paper: faai/saai -> "
              "1 in the fast path)");

  // ---- Slow-path frequency vs capacity (wrap rate) ----
  Table wraps({"capacity", "ops", "slow_entries", "wraps",
               "slow_frac"});
  for (uint64_t capacity : {64ull, 256ull, 1024ull, 4096ull}) {
    BenchEnv env(DefaultFabric());
    auto& client = env.NewClient();
    FarQueue::Options options;
    options.capacity = capacity;
    options.max_clients = 2;
    auto queue = CheckOk(FarQueue::Create(&client, &env.alloc(), options),
                         "farqueue");
    const int pairs = 20000;
    for (int i = 1; i <= pairs; ++i) {
      CheckOk(queue.Enqueue(i), "enq");
      CheckOk(queue.Dequeue().status(), "deq");
    }
    const auto& stats = queue.op_stats();
    wraps.AddRow({Table::Cell(capacity), Table::Cell(uint64_t{2} * pairs),
                  Table::Cell(stats.slow_enqueues + stats.slow_dequeues),
                  Table::Cell(stats.wraps),
                  Table::Cell(static_cast<double>(stats.slow_enqueues +
                                                  stats.slow_dequeues) /
                                  (2.0 * pairs),
                              4)});
  }
  wraps.Print(std::cout,
              "E5b: slow-path frequency vs ring capacity (wrap fixups "
              "amortize as 1/capacity)");

  // ---- Throughput model ----
  WorkloadCost faai_model{faai_cost.latency_ns,
                          (faai_cost.far_per_op + faai_cost.bg_per_op) *
                              kMemNodeServiceNs,
                          1};
  WorkloadCost ticket_model{ticket_cost.latency_ns,
                            (ticket_cost.far_per_op + ticket_cost.bg_per_op) *
                                kMemNodeServiceNs,
                            1};
  WorkloadCost rpc_model{rpc_cost.latency_ns - rpc_service_ns,
                         rpc_service_ns, 1};
  Table curve({"clients", "faai_Mops", "ticket_Mops", "rpc_Mops"});
  for (uint32_t n : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    curve.AddRow({Table::Cell(static_cast<uint64_t>(n)),
                  Table::Cell(SolveClosedSystem(faai_model, n).ops_per_sec /
                                  1e6,
                              3),
                  Table::Cell(SolveClosedSystem(ticket_model, n).ops_per_sec /
                                  1e6,
                              3),
                  Table::Cell(SolveClosedSystem(rpc_model, n).ops_per_sec /
                                  1e6,
                              3)});
  }
  curve.Print(std::cout, "E5c: modelled queue throughput vs clients");

  // ---- Idle consumer poll cost: polled reads vs pushed estimates ----
  // A consumer that polls an empty queue pays far reads just to learn
  // "still empty". With watch_estimates the header words arrive as
  // notifications, so the idle poll must cost ZERO far accesses — the
  // assertion below is the exit-code gate.
  constexpr int kIdlePolls = 1000;
  uint64_t polled_far = 0;
  uint64_t watched_far = 0;
  for (const bool watched : {false, true}) {
    BenchEnv env(DefaultFabric());
    auto& producer = env.NewClient();
    FarQueue::Options options;
    options.capacity = 4096;
    options.max_clients = 2;
    options.refresh_every = 1;  // poll mode: re-read the header every miss
    options.watch_estimates = watched;
    auto queue = CheckOk(FarQueue::Create(&producer, &env.alloc(), options),
                         "farqueue");
    auto& consumer = env.NewClient();
    auto view = CheckOk(FarQueue::Attach(&consumer, queue.header(), options),
                        "attach");
    const ClientStats before = consumer.stats();
    for (int i = 0; i < kIdlePolls; ++i) {
      auto got = view.Dequeue();
      CheckOk(got.ok() ? Status(StatusCode::kInternal, "unexpected item")
                       : OkStatus(),
              "idle poll");
    }
    const uint64_t far = consumer.stats().Delta(before).far_ops;
    (watched ? watched_far : polled_far) = far;
  }
  Table idle({"consumer mode", "idle polls", "far ops", "far/poll"});
  idle.AddRow({"polled estimates", Table::Cell(uint64_t{kIdlePolls}),
               Table::Cell(polled_far),
               Table::Cell(static_cast<double>(polled_far) / kIdlePolls, 3)});
  idle.AddRow({"watched estimates", Table::Cell(uint64_t{kIdlePolls}),
               Table::Cell(watched_far),
               Table::Cell(static_cast<double>(watched_far) / kIdlePolls, 3)});
  idle.Print(std::cout,
             "E5d: idle consumer poll cost (watched head/tail -> zero far "
             "accesses while empty)");

  if (watched_far != 0 || polled_far == 0) {
    std::cout << "E5d FAIL: watched idle polls cost " << watched_far
              << " far ops (want 0); polled cost " << polled_far
              << " (want > 0)\n";
    return 1;
  }
  return 0;
}
