// E3 — §3.1's central argument: throughput vs number of clients for
//   (a) RPC key-value service (one round trip, serialized server CPU),
//   (b) one-sided *traditional* chained hash table (multiple round trips),
//   (c) HT-tree (one round trip, no server CPU).
// Prior work [24, 25] showed (a) beats (b); the paper's position is that
// (c) — a structure redesigned for ~1 far access — restores the one-sided
// advantage. Per-op costs are MEASURED on the simulator; the closed-system
// MVA model turns them into throughput curves.
#include <functional>

#include "bench/bench_util.h"
#include "src/baselines/chained_hash.h"
#include "src/common/rng.h"
#include "src/core/ht_tree.h"
#include "src/perfmodel/throughput_model.h"
#include "src/rpc/kv_service.h"

namespace fmds {
namespace {

constexpr uint64_t kKeys = 100000;
constexpr int kProbes = 2000;
// Memory-node controller occupancy per one-sided message (ns): small — the
// fabric services simple ops in hardware; this is what lets one-sided
// designs scale past a server CPU.
constexpr double kMemNodeServiceNs = 60.0;

struct MeasuredCost {
  double far_accesses = 0.0;
  double rpc_calls = 0.0;
  double messages = 0.0;
  double latency_ns = 0.0;  // single-client per-op simulated latency
};

MeasuredCost MeasureWorkload(FarClient& client,
                             const std::function<void(uint64_t)>& op) {
  Rng rng(99);
  const ClientStats before = client.stats();
  const uint64_t t0 = client.clock().now_ns();
  for (int i = 0; i < kProbes; ++i) {
    op(rng.NextInRange(1, kKeys));
  }
  const ClientStats delta = client.stats().Delta(before);
  MeasuredCost cost;
  cost.far_accesses = static_cast<double>(delta.far_ops) / kProbes;
  cost.rpc_calls = static_cast<double>(delta.rpc_calls) / kProbes;
  cost.messages = static_cast<double>(delta.messages) / kProbes;
  cost.latency_ns =
      static_cast<double>(client.clock().now_ns() - t0) / kProbes;
  return cost;
}

// Batched variant: lookups ride MultiGet doorbells of `kBatchSize` keys.
// far_accesses then counts round trips *waited on* per lookup, and
// latency_ns is the per-lookup share of the batch's simulated time.
constexpr int kBatchSize = 16;

MeasuredCost MeasureBatchedWorkload(
    FarClient& client,
    const std::function<void(std::span<const uint64_t>)>& op) {
  Rng rng(99);
  const ClientStats before = client.stats();
  const uint64_t t0 = client.clock().now_ns();
  int issued = 0;
  while (issued < kProbes) {
    uint64_t keys[kBatchSize];
    for (int i = 0; i < kBatchSize; ++i) {
      keys[i] = rng.NextInRange(1, kKeys);
    }
    op(std::span<const uint64_t>(keys, kBatchSize));
    issued += kBatchSize;
  }
  const ClientStats delta = client.stats().Delta(before);
  MeasuredCost cost;
  cost.far_accesses = static_cast<double>(delta.far_ops) / kProbes;
  cost.rpc_calls = static_cast<double>(delta.rpc_calls) / kProbes;
  cost.messages = static_cast<double>(delta.messages) / kProbes;
  cost.latency_ns =
      static_cast<double>(client.clock().now_ns() - t0) / kProbes;
  return cost;
}

// Flight-recorder output captured per configuration (the BenchEnv and its
// clients are scoped to each block; JSON fragments outlive them).
struct ObsJson {
  std::string op_latency;
  std::string node_heatmap;
  std::string cache = "{}";  // hit/miss/invalidation rollup (E12 schema)
};

ObsJson SnapshotObs(const BenchEnv& env) {
  MetricsRegistry registry = env.CollectMetrics();
  return ObsJson{registry.OpLatencyJsonObject(),
                 registry.NodeHeatmapJsonArray(), registry.CacheJsonObject()};
}

}  // namespace
}  // namespace fmds

int main(int argc, char** argv) {
  using namespace fmds;

  const std::string trace_path = TraceOutputPath(argc, argv);
  const ObsOptions obs =
      trace_path.empty() ? ObsOptions::HistogramsOnly() : ObsOptions::All();

  // ---- (a) RPC KV ----
  MeasuredCost rpc_cost;
  ObsJson rpc_obs;
  double rpc_service_ns = 0.0;
  {
    BenchEnv env(DefaultFabric());
    auto& client = env.NewClient(obs);
    RpcServer server;
    KvService service(&server);
    KvStub stub{RpcClient(&client, &server)};
    for (uint64_t k = 1; k <= kKeys; ++k) {
      CheckOk(stub.Put(k, k), "put");
    }
    client.recorder().Reset();  // histogram the probe phase only
    const uint64_t calls0 = server.calls();
    const uint64_t busy0 = server.busy_ns();
    rpc_cost = MeasureWorkload(client, [&](uint64_t key) {
      CheckOk(stub.Get(key).status(), "get");
    });
    rpc_service_ns = static_cast<double>(server.busy_ns() - busy0) /
                     static_cast<double>(server.calls() - calls0);
    rpc_obs = SnapshotObs(env);
  }

  // ---- (b) one-sided traditional chained hash ----
  MeasuredCost chained_cost;
  ObsJson chained_obs;
  {
    BenchEnv env(DefaultFabric());
    auto& client = env.NewClient(obs);
    ChainedHash::Options options;
    options.buckets = kKeys / 2;  // realistic load: chains exist
    auto table =
        CheckOk(ChainedHash::Create(&client, &env.alloc(), options), "ch");
    for (uint64_t k = 1; k <= kKeys; ++k) {
      CheckOk(table.Put(k, k), "put");
    }
    client.recorder().Reset();
    chained_cost = MeasureWorkload(client, [&](uint64_t key) {
      CheckOk(table.Get(key).status(), "get");
    });
    chained_obs = SnapshotObs(env);
  }

  // ---- (c) HT-tree ----
  MeasuredCost httree_cost;
  ObsJson httree_obs;
  {
    BenchEnv env(DefaultFabric());
    auto& client = env.NewClient(obs);
    HtTree::Options options;
    options.buckets_per_table = 8192;
    auto map =
        CheckOk(HtTree::Create(&client, &env.alloc(), options), "httree");
    for (uint64_t k = 1; k <= kKeys; ++k) {
      CheckOk(map.Put(k, k), "put");
    }
    client.recorder().Reset();
    httree_cost = MeasureWorkload(client, [&](uint64_t key) {
      CheckOk(map.Get(key).status(), "get");
    });
    httree_obs = SnapshotObs(env);
  }

  // ---- (d) HT-tree, batched MultiGet(kBatchSize) ----
  MeasuredCost batched_cost;
  ObsJson batched_obs;
  {
    BenchEnv env(DefaultFabric());
    auto& client = env.NewClient(obs);
    HtTree::Options options;
    options.buckets_per_table = 8192;
    auto map =
        CheckOk(HtTree::Create(&client, &env.alloc(), options), "httree");
    for (uint64_t k = 1; k <= kKeys; ++k) {
      CheckOk(map.Put(k, k), "put");
    }
    client.recorder().Reset();
    batched_cost =
        MeasureBatchedWorkload(client, [&](std::span<const uint64_t> keys) {
          for (auto& r : map.MultiGet(keys)) {
            CheckOk(r.status(), "mget");
          }
        });
    batched_obs = SnapshotObs(env);
    MetricsRegistry registry = env.CollectMetrics();
    registry.PrintOpKindTable(
        std::cout, "E3 obs: HT-tree batched per-op-kind simulated latency");
    registry.PrintHeatmap(std::cout, "E3 obs: node heatmap (batched config)");
    MaybeWriteTrace(registry, trace_path);
  }

  // ---- (e) HT-tree + NearCache (warmed, read-only probes) ----
  // Upper bound of the §4-notification caching story: budget covers the
  // whole keyspace, a warm pass admits every key, and the read-only probe
  // phase then runs near-only — zero far accesses AND zero memory-node
  // occupancy, so the throughput model scales as pure N/delay.
  MeasuredCost cached_cost;
  ObsJson cached_obs;
  {
    BenchEnv env(DefaultFabric());
    auto& client = env.NewClient(obs);
    HtTree::Options options;
    options.buckets_per_table = 8192;
    options.cache.budget_bytes = 32ull << 20;  // all 100k keys fit
    options.cache.admit_after = 1;  // one warm pass admits everything
    auto map =
        CheckOk(HtTree::Create(&client, &env.alloc(), options), "httree");
    for (uint64_t k = 1; k <= kKeys; ++k) {
      CheckOk(map.Put(k, k), "put");
    }
    for (uint64_t k = 1; k <= kKeys; ++k) {
      CheckOk(map.Get(k).status(), "warm");
    }
    client.recorder().Reset();
    cached_cost = MeasureWorkload(client, [&](uint64_t key) {
      CheckOk(map.Get(key).status(), "get");
    });
    cached_obs = SnapshotObs(env);
  }

  Table costs({"design", "far_accesses/op", "messages/op", "1-client ns/op"});
  costs.AddRow({"RPC KV (two-sided)", Table::Cell(rpc_cost.rpc_calls, 2),
                Table::Cell(rpc_cost.messages, 2),
                Table::Cell(rpc_cost.latency_ns, 0)});
  costs.AddRow({"chained HT (one-sided)",
                Table::Cell(chained_cost.far_accesses, 2),
                Table::Cell(chained_cost.messages, 2),
                Table::Cell(chained_cost.latency_ns, 0)});
  costs.AddRow({"HT-tree (one-sided)",
                Table::Cell(httree_cost.far_accesses, 2),
                Table::Cell(httree_cost.messages, 2),
                Table::Cell(httree_cost.latency_ns, 0)});
  costs.AddRow({"HT-tree batched x16",
                Table::Cell(batched_cost.far_accesses, 2),
                Table::Cell(batched_cost.messages, 2),
                Table::Cell(batched_cost.latency_ns, 0)});
  costs.AddRow({"HT-tree + NearCache (warm)",
                Table::Cell(cached_cost.far_accesses, 2),
                Table::Cell(cached_cost.messages, 2),
                Table::Cell(cached_cost.latency_ns, 0)});
  costs.Print(std::cout, "E3a: measured per-lookup costs (100k keys)");

  // ---- Closed-system throughput curves ----
  WorkloadCost rpc_model;
  rpc_model.delay_ns = rpc_cost.latency_ns - rpc_service_ns;
  rpc_model.bottleneck_demand_ns = rpc_service_ns;  // ONE server CPU

  WorkloadCost chained_model;
  chained_model.delay_ns = chained_cost.latency_ns;
  chained_model.bottleneck_demand_ns =
      chained_cost.messages * kMemNodeServiceNs;

  WorkloadCost httree_model;
  httree_model.delay_ns = httree_cost.latency_ns;
  httree_model.bottleneck_demand_ns =
      httree_cost.messages * kMemNodeServiceNs;

  WorkloadCost batched_model;
  batched_model.delay_ns = batched_cost.latency_ns;
  batched_model.bottleneck_demand_ns =
      batched_cost.messages * kMemNodeServiceNs;

  WorkloadCost cached_model;
  cached_model.delay_ns = cached_cost.latency_ns;
  cached_model.bottleneck_demand_ns =
      cached_cost.messages * kMemNodeServiceNs;

  std::vector<uint32_t> clients{1, 2, 4, 8, 16, 32, 64, 128, 256};
  Table curve({"clients", "RPC_Mops", "chainedHT_Mops", "HTtree_Mops",
               "HTtree_batch_Mops", "HTtree_cache_Mops", "RPC_util"});
  for (uint32_t n : clients) {
    auto rpc_pt = SolveClosedSystem(rpc_model, n);
    auto ch_pt = SolveClosedSystem(chained_model, n);
    auto ht_pt = SolveClosedSystem(httree_model, n);
    auto hb_pt = SolveClosedSystem(batched_model, n);
    auto hc_pt = SolveClosedSystem(cached_model, n);
    curve.AddRow({Table::Cell(static_cast<uint64_t>(n)),
                  Table::Cell(rpc_pt.ops_per_sec / 1e6, 3),
                  Table::Cell(ch_pt.ops_per_sec / 1e6, 3),
                  Table::Cell(ht_pt.ops_per_sec / 1e6, 3),
                  Table::Cell(hb_pt.ops_per_sec / 1e6, 3),
                  Table::Cell(hc_pt.ops_per_sec / 1e6, 3),
                  Table::Cell(rpc_pt.utilization, 2)});
  }
  curve.Print(std::cout,
              "E3b: throughput vs clients (paper §3.1: RPC beats multi-RTT "
              "one-sided; 1-access one-sided beats RPC at scale)");

  // Who wins where (printed summary for EXPERIMENTS.md).
  auto rpc_low = SolveClosedSystem(rpc_model, 4).ops_per_sec;
  auto ch_low = SolveClosedSystem(chained_model, 4).ops_per_sec;
  auto rpc_high = SolveClosedSystem(rpc_model, 256).ops_per_sec;
  auto ht_high = SolveClosedSystem(httree_model, 256).ops_per_sec;
  std::cout << "\nsummary: at 4 clients RPC/chained = "
            << rpc_low / ch_low << "x; at 256 clients HT-tree/RPC = "
            << ht_high / rpc_high << "x\n";

  BenchJson json;
  const auto emit = [&](const std::string& name, const MeasuredCost& cost,
                        const WorkloadCost& model, const ObsJson& obs_json) {
    json.Begin(name);
    json.Int("keys", kKeys);
    json.Num("far_accesses_per_op", cost.far_accesses);
    json.Num("rpc_calls_per_op", cost.rpc_calls);
    json.Num("messages_per_op", cost.messages);
    json.Num("latency_ns", cost.latency_ns);
    json.Num("ops_per_sec_256_clients",
             SolveClosedSystem(model, 256).ops_per_sec);
    json.Raw("op_latency", obs_json.op_latency);
    json.Raw("node_heatmap", obs_json.node_heatmap);
    json.Raw("cache", obs_json.cache);
  };
  emit("rpc_kv", rpc_cost, rpc_model, rpc_obs);
  emit("chained_hash", chained_cost, chained_model, chained_obs);
  emit("ht_tree", httree_cost, httree_model, httree_obs);
  emit("ht_tree_batched_x16", batched_cost, batched_model, batched_obs);
  emit("ht_tree_near_cache_warm", cached_cost, cached_model, cached_obs);
  json.Write(JsonOutputPath(argc, argv, "BENCH_e3.json"));
  return 0;
}
