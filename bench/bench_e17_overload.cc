// E17 — overload scenario suite (DESIGN.md §14, EXPERIMENTS.md E17). The
// congestion model turns each memory node's front end into a bounded
// virtual-time service queue; these scenarios drive it past the knee and
// check that every layer that claims to handle overload actually does.
// All driver code programs against the unified FarMap interface
// (bench/scenario_harness.h): the scenarios never name HtTree in their op
// loops.
//
//   overload_tails     gate (a): offered load >= 2x a node's service rate
//                      makes p99 grow >= 5x over the idle p99 (queueing is
//                      nonlinear, not additive).
//   admission_control  gate (b): a token-bucket AdmissionController fed by
//                      WindowedSignals::RecentP99 yields >= 1.5x the
//                      goodput of a naive retry storm at EQUAL offered
//                      load (rejects burn node capacity; client-side
//                      deferral is free). Shed rates reported.
//   hotspot_router     gate (c): when one node's front end degrades, the
//                      DataplaneRouter's (op, node) cost cells learn it
//                      and shift >= 20% of the op mix off the congested
//                      front end within 2 telemetry windows (window_ns =
//                      5 ms), then shift back after recovery.
//   slowdown_recovery  a transient 10x service-time excursion: tails blow
//                      up during the excursion and return to baseline
//                      after it; the queue drains to idle.
//   retry_deadline     gate (d): with jittered exponential backoff and a
//                      sufficient deadline budget, ZERO kOverloaded
//                      results leak to the application even though the
//                      node sheds continuously.
//
// Flags: --smoke (small config for CI; all gates still enforced),
// --json=<path> (default BENCH_e17.json), --telemetry=<path> (one JSON
// object of fabric gauges snapshotted at the slowdown peak — includes the
// per-node queue_depth / sheds / shed_rate gauges).
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/scenario_harness.h"
#include "src/common/rng.h"
#include "src/common/table.h"
#include "src/core/ht_tree.h"
#include "src/fabric/admission.h"
#include "src/obs/telemetry.h"
#include "src/route/router.h"
#include "src/route/rpc_dataplane.h"

namespace fmds {
namespace {

struct Config {
  bool smoke = false;
  size_t keys = 1024;
  size_t tail_workers = 16;
  size_t tail_rounds = 400;
  size_t adm_workers = 24;
  size_t adm_rounds = 500;
  size_t hot_batches_learn = 300;
  size_t hot_batches_hot = 600;
  size_t hot_batches_recover = 900;
  size_t slow_workers = 4;
  size_t slow_rounds = 300;
  size_t retry_workers = 16;
  size_t retry_rounds = 400;
};

Config SmokeConfig() {
  Config cfg;
  cfg.smoke = true;
  cfg.keys = 512;
  cfg.tail_workers = 8;
  cfg.tail_rounds = 150;
  cfg.adm_workers = 12;
  cfg.adm_rounds = 220;
  cfg.hot_batches_learn = 150;
  cfg.hot_batches_hot = 300;
  cfg.hot_batches_recover = 500;
  cfg.slow_rounds = 150;
  cfg.retry_workers = 8;
  cfg.retry_rounds = 150;
  return cfg;
}

FabricOptions ScenarioFabric(uint32_t nodes) {
  FabricOptions options;
  options.num_nodes = nodes;
  options.node_capacity = 256ull << 20;
  // Congestion starts DISABLED: populate at fixed RTT, then arm the front
  // end per node via MemoryNode::SetCongestion for the measured phases.
  return options;
}

CongestionOptions FrontEnd(uint64_t service_ns, uint64_t queue_ops,
                           uint64_t reject_ns = 150) {
  CongestionOptions options;
  options.enabled = true;
  options.service_ns = service_ns;
  options.queue_ops = queue_ops;
  options.reject_ns = reject_ns;
  return options;
}

HtTree::Options ScenarioMap() {
  HtTree::Options options;
  options.buckets_per_table = 4096;
  options.placement = AllocHint::OnNode(0);
  return options;
}

void Populate(FarMap& map, size_t keys) {
  for (uint64_t k = 1; k <= keys; ++k) {
    CheckOk(map.Put(k, k * 7), "populate");
  }
}

Status GetRandomKey(FarMap& map, Rng& rng, size_t keys) {
  return map.Get(1 + rng.NextBelow(keys)).status();
}

// ------------------------- scenario: overload_tails ------------------------

void ScenarioOverloadTails(const Config& cfg, GateSet* gates,
                           BenchJson* json) {
  std::printf("\n-- overload_tails: %zu closed-loop workers vs one node --\n",
              cfg.tail_workers);
  BenchEnv env(ScenarioFabric(1));
  RetryPolicy retry;
  retry.max_attempts = 4;  // absorb rare sheds; the queue bound is generous
  ScenarioFleet fleet(&env, cfg.tail_workers, ScenarioMap(), retry);
  Populate(fleet.map(0), cfg.keys);

  const uint64_t service_ns = 650;
  env.fabric().node(0).SetCongestion(FrontEnd(service_ns, 256));

  // Idle tail: worker 0 alone, ops spaced far apart so the queue is always
  // drained — this is the fixed-RTT baseline the congestion model must
  // recover at low load.
  Rng rng(17);
  const ClientStats before_idle = fleet.client(0).stats();
  fleet.ResetSamples();
  for (size_t i = 0; i < cfg.tail_rounds; ++i) {
    ScenarioWorker& worker = fleet.worker(0);
    const uint64_t t0 = worker.client->clock().now_ns();
    CheckOk(GetRandomKey(*worker.map, rng, cfg.keys), "idle get");
    worker.latencies.push_back(worker.client->clock().now_ns() - t0);
    worker.client->clock().Advance(50'000);  // open the loop
  }
  const std::vector<uint64_t> idle = fleet.worker(0).latencies;
  const uint64_t idle_p99 = PercentileNs(idle, 0.99);
  const double idle_get_ns = Median(std::vector<double>(idle.begin(), idle.end()));
  const double ops_per_get =
      static_cast<double>(fleet.client(0).stats().far_ops -
                          before_idle.far_ops) /
      static_cast<double>(cfg.tail_rounds);

  // Offered load of the closed-loop fleet, in front-end ops/s, against the
  // node's service rate. Demand is what the fleet WOULD issue at idle
  // latency; the gate requires >= 2x capacity.
  const double capacity_ops_per_sec = 1e9 / static_cast<double>(service_ns);
  const double offered_ops_per_sec =
      static_cast<double>(cfg.tail_workers) * ops_per_get * 1e9 / idle_get_ns;
  const double load_ratio = offered_ops_per_sec / capacity_ops_per_sec;

  // Overloaded tail: the whole fleet, closed loop from a clock barrier.
  fleet.ResetSamples();
  fleet.AlignClocks();
  fleet.RunRounds(cfg.tail_rounds,
                  [&](FarMap& map, FarClient&, size_t, size_t) {
                    return GetRandomKey(map, rng, cfg.keys);
                  });
  const std::vector<uint64_t> loaded = fleet.AllLatencies();
  const uint64_t loaded_p99 = PercentileNs(loaded, 0.99);
  const uint64_t loaded_p50 = PercentileNs(loaded, 0.50);
  const double p99_ratio =
      static_cast<double>(loaded_p99) / static_cast<double>(idle_p99);

  Table table({"metric", "value"});
  table.AddRow({Table::Cell("idle p99 (ns)"), Table::Cell(idle_p99)});
  table.AddRow({Table::Cell("loaded p50 (ns)"), Table::Cell(loaded_p50)});
  table.AddRow({Table::Cell("loaded p99 (ns)"), Table::Cell(loaded_p99)});
  table.AddRow({Table::Cell("offered/capacity"), Table::Cell(load_ratio, 3)});
  table.AddRow({Table::Cell("p99 inflation"), Table::Cell(p99_ratio, 3)});
  table.Print(std::cout, "E17: overload tails");

  gates->Check("tails_offered_load_2x", load_ratio >= 2.0,
               "offered/capacity = " + std::to_string(load_ratio));
  gates->Check("tails_p99_5x_idle", p99_ratio >= 5.0,
               "p99 inflation = " + std::to_string(p99_ratio));

  json->Begin("overload_tails");
  json->Int("workers", cfg.tail_workers);
  json->Int("service_ns", service_ns);
  json->Num("ops_per_get", ops_per_get, 4);
  json->Num("offered_over_capacity", load_ratio, 4);
  json->Int("idle_p99_ns", idle_p99);
  json->Int("loaded_p50_ns", loaded_p50);
  json->Int("loaded_p99_ns", loaded_p99);
  json->Num("p99_inflation", p99_ratio, 4);
  json->Int("sheds", env.fabric().node(0).stats().ops_shed.load());
}

// ----------------------- scenario: admission_control -----------------------

struct AdmissionArmResult {
  double goodput_ops_per_sec = 0.0;
  double shed_rate = 0.0;
  uint64_t ok = 0;
  uint64_t overloaded = 0;
  uint64_t deferred = 0;
};

// Both arms present the same offered load: `workers` closed-loop clients,
// `rounds` rounds each. `controller` non-null = the admission-control arm.
AdmissionArmResult RunAdmissionArm(const Config& cfg,
                                   AdmissionController* controller) {
  BenchEnv env(ScenarioFabric(1));
  RetryPolicy retry;
  if (controller == nullptr) {
    // The naive arm answers sheds with an aggressive retry storm.
    retry.max_attempts = 3;
    retry.backoff_base_ns = 400;
    retry.backoff_max_ns = 3'000;
  } else {
    retry.max_attempts = 1;  // the controller is the throttle
  }
  ObsOptions obs;
  obs.windowed = true;  // worker 0 feeds RecentP99 into the AIMD loop
  ScenarioFleet fleet(&env, cfg.adm_workers, ScenarioMap(), retry, &obs);
  Populate(fleet.map(0), cfg.keys);
  env.fabric().node(0).SetCongestion(
      FrontEnd(/*service_ns=*/650, /*queue_ops=*/12, /*reject_ns=*/600));
  fleet.AlignClocks();

  Rng rng(23);
  const uint64_t start_ns = fleet.MaxClockNs();
  fleet.RunRounds(
      cfg.adm_rounds, [&](FarMap& map, FarClient& client, size_t worker,
                          size_t round) -> Status {
        if (controller != nullptr) {
          // Client-side gate: a refused op defers (advancing only the
          // client's own clock) instead of burning node capacity.
          int spins = 0;
          while (!controller->Admit(0, client.clock().now_ns())) {
            client.clock().Advance(2'000);
            if (++spins > 100'000) {
              return Overloaded("admission spin bound");
            }
          }
          if (worker == 0 && round % 32 == 31) {
            WindowedSignals* signals = client.recorder().windowed();
            signals->Drain();
            const uint64_t p99 = signals->RecentP99All();
            if (p99 > 0) {
              controller->ReportP99(0, p99);
            }
          }
        }
        return GetRandomKey(map, rng, cfg.keys);
      });

  AdmissionArmResult result;
  result.ok = fleet.TotalOk();
  result.overloaded = fleet.TotalOverloaded();
  result.deferred = controller != nullptr ? controller->deferred() : 0;
  const uint64_t elapsed = fleet.MaxClockNs() - start_ns;
  result.goodput_ops_per_sec =
      elapsed == 0 ? 0.0 : static_cast<double>(result.ok) * 1e9 /
                               static_cast<double>(elapsed);
  const auto& node_stats = env.fabric().node(0).stats();
  const double shed = static_cast<double>(node_stats.ops_shed.load());
  const double served = static_cast<double>(node_stats.ops_serviced.load());
  result.shed_rate = shed + served == 0.0 ? 0.0 : shed / (shed + served);
  return result;
}

void ScenarioAdmissionControl(const Config& cfg, GateSet* gates,
                              BenchJson* json) {
  std::printf("\n-- admission_control: token bucket vs retry storm --\n");
  const AdmissionArmResult naive = RunAdmissionArm(cfg, nullptr);

  AdmissionOptions options;
  options.initial_rate_ops_per_sec = 1.2e6;  // above capacity: AIMD must cut
  options.min_rate_ops_per_sec = 5e4;
  options.max_rate_ops_per_sec = 1e7;
  options.burst_ops = static_cast<double>(cfg.adm_workers);
  options.p99_bound_ns = 4'000;
  options.decrease_factor = 0.7;
  options.increase_ops_per_sec = 2e4;
  AdmissionController controller(options);
  const AdmissionArmResult admitted = RunAdmissionArm(cfg, &controller);

  const double gain = naive.goodput_ops_per_sec == 0.0
                          ? 0.0
                          : admitted.goodput_ops_per_sec /
                                naive.goodput_ops_per_sec;
  Table table({"arm", "goodput ops/s", "shed rate", "ok", "overloaded",
               "deferred"});
  table.AddRow({Table::Cell("retry storm"),
             Table::Cell(naive.goodput_ops_per_sec, 6),
             Table::Cell(naive.shed_rate, 4), Table::Cell(naive.ok),
             Table::Cell(naive.overloaded), Table::Cell(uint64_t{0})});
  table.AddRow({Table::Cell("admission"),
             Table::Cell(admitted.goodput_ops_per_sec, 6),
             Table::Cell(admitted.shed_rate, 4), Table::Cell(admitted.ok),
             Table::Cell(admitted.overloaded),
             Table::Cell(admitted.deferred)});
  table.Print(std::cout, "E17: admission control");

  gates->Check("admission_goodput_1p5x", gain >= 1.5,
               "goodput gain = " + std::to_string(gain));
  gates->Check("admission_sheds_reduced",
               admitted.shed_rate < naive.shed_rate,
               "shed rate " + std::to_string(naive.shed_rate) + " -> " +
                   std::to_string(admitted.shed_rate));

  json->Begin("admission_control");
  json->Int("workers", cfg.adm_workers);
  json->Num("naive_goodput_ops_per_sec", naive.goodput_ops_per_sec, 6);
  json->Num("admission_goodput_ops_per_sec",
            admitted.goodput_ops_per_sec, 6);
  json->Num("goodput_gain", gain, 4);
  json->Num("naive_shed_rate", naive.shed_rate, 4);
  json->Num("admission_shed_rate", admitted.shed_rate, 4);
  json->Int("naive_overloaded", naive.overloaded);
  json->Int("admission_overloaded", admitted.overloaded);
  json->Int("admission_deferred", admitted.deferred);
  json->Num("admission_final_rate_ops_per_sec", controller.RateFor(0), 6);
}

// ------------------------- scenario: hotspot_router ------------------------

void ScenarioHotspotRouter(const Config& cfg, GateSet* gates,
                           BenchJson* json) {
  std::printf("\n-- hotspot_router: congested node vs adaptive routing --\n");
  BenchEnv env(ScenarioFabric(2));
  RpcDataplane dataplane(&env.fabric(), &env.alloc());
  // The agents' colocated processors are moderately occupied, so one-sided
  // is the right route while the fabric front end is healthy.
  dataplane.SetLoadFactorAll(0.75);

  ObsOptions obs;
  obs.windowed = true;  // 5 ms windows: the gate's clock
  FarClient& client = env.NewClient(obs);
  DataplaneRouterOptions router_options;
  router_options.probe_period = 32;
  DataplaneRouter router(&client, router_options);
  RpcMapPath path(&client, &dataplane);

  // Routing arms through the consolidated RouteOptions block: Create wires
  // the decider into the handle (map_options.h), no post-create call.
  HtTree::Options map_options = ScenarioMap();
  map_options.route.decider = &router;
  map_options.route.remote = &path;
  std::unique_ptr<FarMap> map = std::make_unique<HtTree>(CheckOk(
      HtTree::Create(&client, &env.alloc(), map_options), "hotspot map"));
  Populate(*map, cfg.keys);

  const uint64_t window_ns =
      client.recorder().windowed()->options().window_ns;
  const CongestionOptions mild = FrontEnd(/*service_ns=*/300, 512);
  const CongestionOptions hot = FrontEnd(/*service_ns=*/2'500, 512);
  env.fabric().node(0).SetCongestion(mild);
  env.fabric().node(1).SetCongestion(mild);

  constexpr size_t kBatch = 4;
  Rng rng(29);
  auto run_batches = [&](size_t batches, uint64_t* rpc_delta,
                         uint64_t* decision_delta) {
    const uint64_t rpc0 = router.rpc_decisions();
    const uint64_t one0 = router.one_sided_decisions();
    for (size_t b = 0; b < batches; ++b) {
      std::vector<uint64_t> keys;
      keys.reserve(kBatch);
      for (size_t i = 0; i < kBatch; ++i) {
        keys.push_back(1 + rng.NextBelow(cfg.keys));
      }
      for (const Result<uint64_t>& r : map->MultiGet(keys)) {
        CheckOk(r.status(), "hotspot multiget");
      }
    }
    const uint64_t rpc = router.rpc_decisions() - rpc0;
    const uint64_t decisions =
        rpc + (router.one_sided_decisions() - one0);
    if (rpc_delta != nullptr) {
      *rpc_delta = rpc;
    }
    if (decision_delta != nullptr) {
      *decision_delta = decisions;
    }
  };

  // Phase 1: learn the healthy fabric.
  uint64_t rpc_learn = 0;
  uint64_t dec_learn = 0;
  run_batches(cfg.hot_batches_learn, &rpc_learn, &dec_learn);
  const double rpc_share_learn =
      dec_learn == 0 ? 0.0
                     : static_cast<double>(rpc_learn) /
                           static_cast<double>(dec_learn);

  // Phase 2: node 0 degrades. Track the simulated time until >= 20% of the
  // phase's decisions route around the congested front end.
  env.fabric().node(0).SetCongestion(hot);
  const uint64_t hot_start_ns = client.clock().now_ns();
  const uint64_t rpc_at_hot = router.rpc_decisions();
  const uint64_t one_at_hot = router.one_sided_decisions();
  uint64_t shift_ns = 0;
  for (size_t b = 0; b < cfg.hot_batches_hot; ++b) {
    run_batches(1, nullptr, nullptr);
    if (shift_ns == 0) {
      const uint64_t rpc = router.rpc_decisions() - rpc_at_hot;
      const uint64_t total =
          rpc + (router.one_sided_decisions() - one_at_hot);
      if (total >= 10 && rpc * 5 >= total) {  // rpc share >= 20%
        shift_ns = client.clock().now_ns() - hot_start_ns;
      }
    }
  }
  const uint64_t rpc_hot = router.rpc_decisions() - rpc_at_hot;
  const uint64_t dec_hot =
      rpc_hot + (router.one_sided_decisions() - one_at_hot);
  const double rpc_share_hot =
      dec_hot == 0 ? 0.0
                   : static_cast<double>(rpc_hot) /
                         static_cast<double>(dec_hot);
  // Front-end op mix: a one-sided MultiGet offers ~2*kBatch ops to node
  // 0's queue (bucket-head wave + item wave); an RPC batch offers one
  // request op (the agent's home-node walk bypasses the NIC front end).
  const double ops_one_sided = 2.0 * static_cast<double>(kBatch);
  const double mix_before = ops_one_sided;  // phase 1 is all one-sided
  const double mix_hot =
      (static_cast<double>(dec_hot - rpc_hot) * ops_one_sided +
       static_cast<double>(rpc_hot) * 1.0) /
      std::max<double>(1.0, static_cast<double>(dec_hot));
  const double mix_shift = 1.0 - mix_hot / mix_before;

  // Phase 3: recovery. Probing rediscovers the cheap one-sided route.
  env.fabric().node(0).SetCongestion(mild);
  run_batches(cfg.hot_batches_recover * 2 / 3, nullptr, nullptr);
  uint64_t rpc_tail = 0;
  uint64_t dec_tail = 0;
  run_batches(cfg.hot_batches_recover / 3, &rpc_tail, &dec_tail);
  const double rpc_share_recovered =
      dec_tail == 0 ? 0.0
                    : static_cast<double>(rpc_tail) /
                          static_cast<double>(dec_tail);
  const bool recovered =
      router.Preferred(RoutedOp::kMultiGet, 0) == DataplaneRoute::kOneSided;

  Table table({"phase", "rpc share", "note"});
  table.AddRow({Table::Cell("healthy"), Table::Cell(rpc_share_learn, 3),
             Table::Cell("one-sided should win")});
  table.AddRow({Table::Cell("hotspot"), Table::Cell(rpc_share_hot, 3),
             Table::Cell("shift at +" + std::to_string(shift_ns) + " ns")});
  table.AddRow({Table::Cell("recovered"), Table::Cell(rpc_share_recovered, 3),
             Table::Cell(recovered ? "one-sided again" : "still rpc")});
  table.Print(std::cout, "E17: hotspot routing");
  std::printf("front-end op mix shift off node 0: %.1f%%\n",
              mix_shift * 100.0);

  gates->Check("hotspot_shift_within_2_windows",
               shift_ns > 0 && shift_ns <= 2 * window_ns,
               "shift after " + std::to_string(shift_ns) + " ns, bound " +
                   std::to_string(2 * window_ns));
  gates->Check("hotspot_mix_shift_20pct", mix_shift >= 0.20,
               "mix shift = " + std::to_string(mix_shift));
  gates->Check("hotspot_recovers", recovered,
               "preferred(kMultiGet, node0) back to one-sided");

  json->Begin("hotspot_router");
  json->Int("batch", kBatch);
  json->Int("window_ns", window_ns);
  json->Num("rpc_share_healthy", rpc_share_learn, 4);
  json->Num("rpc_share_hot", rpc_share_hot, 4);
  json->Num("rpc_share_recovered", rpc_share_recovered, 4);
  json->Int("shift_ns", shift_ns);
  json->Num("mix_shift", mix_shift, 4);
  json->Int("recovered", recovered ? 1 : 0);
  json->Int("router_flips", router.flips());
}

// ----------------------- scenario: slowdown_recovery -----------------------

void ScenarioSlowdownRecovery(const Config& cfg, GateSet* gates,
                              BenchJson* json, const std::string& telemetry) {
  std::printf("\n-- slowdown_recovery: transient 10x service excursion --\n");
  BenchEnv env(ScenarioFabric(1));
  RetryPolicy retry;
  retry.max_attempts = 6;
  retry.backoff_base_ns = 2'000;
  ScenarioFleet fleet(&env, cfg.slow_workers, ScenarioMap(), retry);
  Populate(fleet.map(0), cfg.keys);
  MemoryNode& node = env.fabric().node(0);
  node.SetCongestion(FrontEnd(/*service_ns=*/300, 256));
  fleet.AlignClocks();

  Rng rng(31);
  auto run_phase = [&](size_t rounds) {
    fleet.ResetSamples();
    fleet.RunRounds(rounds, [&](FarMap& map, FarClient&, size_t, size_t) {
      return GetRandomKey(map, rng, cfg.keys);
    });
    return PercentileNs(fleet.AllLatencies(), 0.99);
  };

  const uint64_t p99_base = run_phase(cfg.slow_rounds);

  // Excursion: the node's controller slows 10x (e.g. thermal throttling or
  // a background scrub). Existing backlog is preserved by SetCongestion.
  node.SetCongestion(FrontEnd(/*service_ns=*/3'000, 256));
  const uint64_t p99_slow = run_phase(cfg.slow_rounds);
  const uint64_t depth_during = node.queue_depth_ops();
  const uint64_t backlog_during = node.queue_backlog_ns();

  // Snapshot the fabric gauges at the peak — the TELEMETRY schema artifact
  // (queue_depth / sheds / shed_rate per node, EXPERIMENTS.md E17).
  if (!telemetry.empty()) {
    TelemetryHub hub;
    GaugeGroup gauges(&hub);
    env.fabric().AddGauges(&gauges, "fabric");
    std::ofstream out(telemetry, std::ios::trunc);
    hub.WriteJsonObject(out);
    out << "\n";
  }
  env.fabric().DumpHealth(std::cout);

  // Recovery: restore the service rate, let the backlog drain, re-measure.
  node.SetCongestion(FrontEnd(/*service_ns=*/300, 256));
  run_phase(cfg.slow_rounds / 3);  // drain warmup, discarded
  const uint64_t p99_recovered = run_phase(cfg.slow_rounds);
  const uint64_t depth_after = node.queue_depth_ops();

  const double slow_ratio =
      static_cast<double>(p99_slow) / static_cast<double>(p99_base);
  const double recovered_ratio =
      static_cast<double>(p99_recovered) / static_cast<double>(p99_base);
  Table table({"phase", "p99 (ns)", "queue depth"});
  table.AddRow({Table::Cell("baseline"), Table::Cell(p99_base),
             Table::Cell(uint64_t{0})});
  table.AddRow({Table::Cell("slowdown"), Table::Cell(p99_slow),
             Table::Cell(depth_during)});
  table.AddRow({Table::Cell("recovered"), Table::Cell(p99_recovered),
             Table::Cell(depth_after)});
  table.Print(std::cout, "E17: slowdown and recovery");

  gates->Check("slowdown_tail_blows_up", slow_ratio >= 2.0,
               "slowdown p99 ratio = " + std::to_string(slow_ratio));
  gates->Check("slowdown_recovers", recovered_ratio <= 1.5,
               "recovered p99 ratio = " + std::to_string(recovered_ratio));

  json->Begin("slowdown_recovery");
  json->Int("workers", cfg.slow_workers);
  json->Int("p99_baseline_ns", p99_base);
  json->Int("p99_slowdown_ns", p99_slow);
  json->Int("p99_recovered_ns", p99_recovered);
  json->Num("slowdown_ratio", slow_ratio, 4);
  json->Num("recovered_ratio", recovered_ratio, 4);
  json->Int("queue_depth_during", depth_during);
  json->Int("queue_backlog_ns_during", backlog_during);
  json->Int("queue_depth_after", depth_after);
}

// ------------------------ scenario: retry_deadline -------------------------

void ScenarioRetryDeadline(const Config& cfg, GateSet* gates,
                           BenchJson* json) {
  std::printf("\n-- retry_deadline: backoff absorbs continuous sheds --\n");
  // Main arm: a queue bound far below the fleet's in-flight demand, so the
  // node sheds continuously — and a retry policy with enough attempts and
  // deadline budget that NO kOverloaded ever reaches the application.
  BenchEnv env(ScenarioFabric(1));
  RetryPolicy retry;
  retry.max_attempts = 100;
  retry.backoff_base_ns = 4'000;
  retry.backoff_max_ns = 2'000'000;
  retry.deadline_ns = 0;  // unlimited budget
  retry.jitter = true;
  ScenarioFleet fleet(&env, cfg.retry_workers, ScenarioMap(), retry);
  Populate(fleet.map(0), cfg.keys);
  env.fabric().node(0).SetCongestion(FrontEnd(/*service_ns=*/650, 8));
  fleet.AlignClocks();

  Rng rng(37);
  fleet.RunRounds(cfg.retry_rounds,
                  [&](FarMap& map, FarClient&, size_t, size_t) {
                    return GetRandomKey(map, rng, cfg.keys);
                  });
  const ClientStats stats = fleet.SumStats();
  const uint64_t leaked = fleet.TotalOverloaded();

  // Contrast arm: same load, but a deadline far below the drain time —
  // ops give up inside their budget instead (reported, not gated).
  BenchEnv tight_env(ScenarioFabric(1));
  RetryPolicy tight = retry;
  tight.deadline_ns = 15'000;
  ScenarioFleet tight_fleet(&tight_env, cfg.retry_workers, ScenarioMap(),
                            tight);
  Populate(tight_fleet.map(0), cfg.keys);
  tight_env.fabric().node(0).SetCongestion(FrontEnd(650, 8));
  tight_fleet.AlignClocks();
  tight_fleet.RunRounds(cfg.retry_rounds,
                        [&](FarMap& map, FarClient&, size_t, size_t) {
                          return GetRandomKey(map, rng, cfg.keys);
                        });
  const uint64_t tight_leaked = tight_fleet.TotalOverloaded();

  std::printf("sheds=%llu retries=%llu leaked=%llu (tight-deadline arm "
              "leaked=%llu of %llu)\n",
              static_cast<unsigned long long>(stats.overload_sheds),
              static_cast<unsigned long long>(stats.overload_retries),
              static_cast<unsigned long long>(leaked),
              static_cast<unsigned long long>(tight_leaked),
              static_cast<unsigned long long>(tight_fleet.TotalOk() +
                                              tight_leaked));

  gates->Check("retry_pressure_real", stats.overload_sheds > 0,
               "sheds = " + std::to_string(stats.overload_sheds));
  gates->Check("retry_zero_leaks", leaked == 0,
               "kOverloaded leaked to app = " + std::to_string(leaked));

  json->Begin("retry_deadline");
  json->Int("workers", cfg.retry_workers);
  json->Int("sheds", stats.overload_sheds);
  json->Int("retries", stats.overload_retries);
  json->Int("leaked_overloaded", leaked);
  json->Int("tight_deadline_ns", tight.deadline_ns);
  json->Int("tight_leaked_overloaded", tight_leaked);
}

}  // namespace
}  // namespace fmds

int main(int argc, char** argv) {
  using namespace fmds;

  const bool smoke = FlagPresent(argc, argv, "--smoke");
  const Config cfg = smoke ? SmokeConfig() : Config{};
  const std::string telemetry = TelemetryOutputPath(argc, argv);

  BenchJson json;
  GateSet gates;
  ScenarioOverloadTails(cfg, &gates, &json);
  ScenarioAdmissionControl(cfg, &gates, &json);
  ScenarioHotspotRouter(cfg, &gates, &json);
  ScenarioSlowdownRecovery(cfg, &gates, &json, telemetry);
  ScenarioRetryDeadline(cfg, &gates, &json);

  std::printf("\n");
  gates.Report(&json);
  json.Write(JsonOutputPath(argc, argv, "BENCH_e17.json"));
  std::printf("overall: %s\n", gates.all_ok() ? "OK" : "FAIL");
  return gates.all_ok() ? 0 : 1;
}
