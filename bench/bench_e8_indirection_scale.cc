// E8 — §7.1: memory-side indirection across a striped multi-node fabric.
// A dereferenced pointer may live on another node; compare:
//   * kForward: the home node relays the request (1 client RTT, +1 hop);
//   * kError:   the client completes the indirection (2 client RTTs);
// and show how locality-hinted allocation (AllocHint::Near) removes the
// cross-node case entirely.
#include "bench/bench_util.h"
#include "src/common/bytes.h"
#include "src/common/rng.h"

namespace fmds {
namespace {

constexpr int kOps = 5000;
constexpr int kPointers = 1024;

struct RunResult {
  double rtts_per_op;
  double messages_per_op;
  double sim_ns_per_op;
  double cross_node_fraction;
};

RunResult Run(uint32_t nodes, IndirectionPolicy policy, bool locality_hint) {
  FabricOptions options;
  options.num_nodes = nodes;
  options.node_capacity = 64ull << 20;
  options.stripe_bytes = nodes > 1 ? kPageSize : 0;
  options.indirection = policy;
  BenchEnv env(options);
  auto& client = env.NewClient();

  // Build pointer cells -> 64 B records. Random placement scatters the
  // record across nodes; the locality hint pins it next to its pointer.
  std::vector<FarAddr> cells(kPointers);
  uint64_t cross = 0;
  for (int i = 0; i < kPointers; ++i) {
    cells[i] = CheckOk(env.alloc().Allocate(kWordSize), "cell");
    const AllocHint hint =
        locality_hint ? AllocHint::Near(cells[i]) : AllocHint::Any();
    const FarAddr record = CheckOk(env.alloc().Allocate(64, hint), "record");
    CheckOk(client.WriteWord(cells[i], record), "link");
    const NodeId cell_node = env.fabric().Translate(cells[i])->node;
    const NodeId record_node = env.fabric().Translate(record)->node;
    cross += cell_node != record_node ? 1 : 0;
  }

  Rng rng(3);
  const ClientStats before = client.stats();
  const uint64_t t0 = client.clock().now_ns();
  std::byte buf[64];
  for (int i = 0; i < kOps; ++i) {
    CheckOk(client.Load0(cells[rng.NextBelow(kPointers)], buf).status(),
            "load0");
  }
  const ClientStats delta = client.stats().Delta(before);
  RunResult result;
  result.rtts_per_op = static_cast<double>(delta.far_ops) / kOps;
  result.messages_per_op = static_cast<double>(delta.messages) / kOps;
  result.sim_ns_per_op =
      static_cast<double>(client.clock().now_ns() - t0) / kOps;
  result.cross_node_fraction =
      static_cast<double>(cross) / static_cast<double>(kPointers);
  return result;
}

}  // namespace
}  // namespace fmds

int main() {
  using namespace fmds;
  Table table({"nodes", "placement", "policy", "cross-node frac",
               "RTTs/op", "msgs/op", "sim ns/op"});
  for (uint32_t nodes : {1u, 2u, 4u, 8u}) {
    for (bool hinted : {false, true}) {
      for (auto policy :
           {IndirectionPolicy::kForward, IndirectionPolicy::kError}) {
        auto result = Run(nodes, policy, hinted);
        table.AddRow(
            {Table::Cell(static_cast<uint64_t>(nodes)),
             hinted ? "locality-hinted" : "random",
             policy == IndirectionPolicy::kForward ? "forward" : "error",
             Table::Cell(result.cross_node_fraction, 2),
             Table::Cell(result.rtts_per_op, 2),
             Table::Cell(result.messages_per_op, 2),
             Table::Cell(result.sim_ns_per_op, 0)});
      }
    }
  }
  table.Print(std::cout,
              "E8: §7.1 — indirect addressing across striped nodes: "
              "forwarding keeps 1 RTT (+hops); the error policy pays a 2nd "
              "RTT; locality-aware allocation avoids both");
  return 0;
}
