// E12 — near-memory hot-data cache (§4 notifications as a coherence
// primitive): a byte-budgeted client-side NearCache holds hot bucket heads
// so repeat Gets cost ZERO far accesses; writers' bucket CASes publish
// notifications that invalidate exactly the cached lines they touch.
//
// The sweep varies cache budget x Zipf skew on a 95/5 read/write mix and
// reports simulated throughput, far accesses per op, hit ratio, and
// coherence traffic (invalidations). The paper's economics: a hit costs
// one near access (~100 ns) instead of a ~1 us round trip, so throughput
// scales with the hit ratio — which scales with skew, not budget, once
// the hot set fits.
//
// Headline claim checked by the exit code: at Zipf(0.99) with a 1 MiB
// budget, the cached map beats cache-off by >= 2x simulated throughput.
//
// Flags: --smoke (tiny config for CI), --repeat=N (median-of-N, distinct
// workload seeds), --json=<path>.
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/core/ht_tree.h"

namespace fmds {
namespace {

// Geometry note: overwrites accumulate old item versions in the bucket
// chains until a compaction split rewrites the table, and a split retires
// every bucket in it — invalidating every cached line from that table.
// Many small tables (pre-split via initial_depth) keep that blast radius
// to 1/2^depth of the cache instead of all of it, and keep each split's
// bulk rewrite cheap; this is the right deployment shape for caching
// regardless of the bench.
struct Config {
  uint64_t keys = 20000;
  uint64_t buckets = 4096;
  uint32_t depth = 4;      // pre-split into 16 tables
  int warmup_ops = 80000;  // fills the cache before the measured window
  int measured_ops = 20000;
  double read_fraction = 0.95;
};

struct RunResult {
  double ops_per_sec = 0.0;
  double far_per_op = 0.0;
  double hit_ratio = 0.0;
  uint64_t invalidations = 0;
  uint64_t evictions = 0;
  uint64_t admissions = 0;
  uint64_t cache_bytes = 0;
  std::string cache_json = "{}";
};

RunResult RunConfig(uint64_t budget, double theta, const Config& cfg,
                    uint64_t seed, bool print_labels) {
  BenchEnv env(DefaultFabric());
  FarClient& client = env.NewClient(ObsOptions::HistogramsOnly());

  HtTree::Options options;
  options.buckets_per_table = cfg.buckets;
  options.initial_depth = cfg.depth;
  // Cache policy knobs stay at their defaults (admit_after=2 k-hit filter):
  // the filter costs a few hit-ratio points on the once-seen Zipf tail but
  // keeps the small-budget rows honest — without it every cold miss would
  // admit, evict, and burn a subscribe+unsubscribe round trip pair.
  options.cache.budget_bytes = budget;
  HtTree map =
      CheckOk(HtTree::Create(&client, &env.alloc(), options), "create");
  for (uint64_t k = 1; k <= cfg.keys; ++k) {
    CheckOk(map.Put(k, k * 3), "preload");
  }

  ZipfGenerator zipf(cfg.keys, theta, seed);
  DiscreteChoice mix({cfg.read_fraction, 1.0 - cfg.read_fraction}, seed + 1);
  uint64_t write_val = 0;
  const auto step = [&] {
    const uint64_t key = zipf.Next() + 1;
    if (mix.Next() == 0) {
      CheckOk(map.Get(key).status(), "get");
    } else {
      CheckOk(map.Put(key, ++write_val), "put");
    }
  };

  for (int i = 0; i < cfg.warmup_ops; ++i) {
    step();
  }
  client.recorder().Reset();  // measured window only in the label table
  const ClientStats before = client.stats();
  const uint64_t t0 = client.clock().now_ns();
  for (int i = 0; i < cfg.measured_ops; ++i) {
    step();
  }
  const ClientStats delta = client.stats().Delta(before);
  const uint64_t elapsed = client.clock().now_ns() - t0;

  RunResult r;
  r.ops_per_sec = cfg.measured_ops * 1e9 / static_cast<double>(elapsed);
  r.far_per_op = static_cast<double>(delta.far_ops) / cfg.measured_ops;
  const uint64_t lookups = delta.cache_hits + delta.cache_misses;
  r.hit_ratio = lookups > 0
                    ? static_cast<double>(delta.cache_hits) / lookups
                    : 0.0;
  r.invalidations = delta.cache_invalidations;
  if (const NearCache* cache = map.near_cache()) {
    r.evictions = cache->stats().evictions;
    r.admissions = cache->stats().admissions;
    r.cache_bytes = cache->bytes_used();
  }
  MetricsRegistry registry = env.CollectMetrics();
  r.cache_json = registry.CacheJsonObject();
  if (print_labels) {
    registry.PrintLabelTable(
        std::cout,
        "E12 obs: per-label latency + cache hit ratio (budget=" +
            std::to_string(budget >> 10) + "KiB, theta=" +
            std::to_string(theta) + ")");
  }
  return r;
}

}  // namespace
}  // namespace fmds

int main(int argc, char** argv) {
  using namespace fmds;

  const bool smoke = FlagPresent(argc, argv, "--smoke");
  const int repeat = RepeatArg(argc, argv);

  Config cfg;
  std::vector<uint64_t> budgets{0, 64 << 10, 256 << 10, 1 << 20, 4 << 20};
  std::vector<double> thetas{0.0, 0.8, 0.99};
  if (smoke) {
    cfg.keys = 2000;
    cfg.buckets = 1024;
    cfg.depth = 2;
    cfg.warmup_ops = 10000;
    cfg.measured_ops = 4000;
    budgets = {0, 1 << 20};
    thetas = {0.99};
  }
  const uint64_t headline_budget = budgets.back() < (1u << 20)
                                       ? budgets.back()
                                       : (1u << 20);

  BenchJson json;
  Table table({"budget_KiB", "theta", "Mops", "far/op", "hit%", "inval",
               "evict", "cache_KiB"});
  double base_ops = 0.0;    // theta=0.99, cache off
  double cached_ops = 0.0;  // theta=0.99, headline budget
  for (uint64_t budget : budgets) {
    for (double theta : thetas) {
      // Median-of-N over distinct workload seeds; counters come from the
      // median run's RunResult (re-run rather than interpolated).
      std::vector<double> samples;
      RunResult r;
      for (int rep = 0; rep < repeat; ++rep) {
        const bool headline = budget == headline_budget && theta == 0.99;
        r = RunConfig(budget, theta, cfg, 11 + 97 * rep,
                      headline && rep == repeat - 1);
        samples.push_back(r.ops_per_sec);
      }
      r.ops_per_sec = Median(samples);
      if (theta == 0.99 && budget == 0) {
        base_ops = r.ops_per_sec;
      }
      if (theta == 0.99 && budget == headline_budget) {
        cached_ops = r.ops_per_sec;
      }
      table.AddRow({Table::Cell(budget >> 10), Table::Cell(theta, 2),
                    Table::Cell(r.ops_per_sec / 1e6, 3),
                    Table::Cell(r.far_per_op, 3),
                    Table::Cell(100.0 * r.hit_ratio, 1),
                    Table::Cell(r.invalidations), Table::Cell(r.evictions),
                    Table::Cell(r.cache_bytes >> 10)});
      json.Begin("budget=" + std::to_string(budget) +
                 ",theta=" + std::to_string(theta));
      json.Int("budget_bytes", budget);
      json.Num("theta", theta);
      json.Int("keys", cfg.keys);
      json.Int("repeat", static_cast<uint64_t>(repeat));
      json.Num("ops_per_sec", r.ops_per_sec);
      json.Num("far_accesses_per_op", r.far_per_op);
      json.Num("hit_ratio", r.hit_ratio, 4);
      json.Int("invalidations", r.invalidations);
      json.Int("evictions", r.evictions);
      json.Int("admissions", r.admissions);
      json.Int("cache_bytes_used", r.cache_bytes);
      json.Raw("cache", r.cache_json);
    }
  }
  table.Print(std::cout,
              "E12: NearCache budget x Zipf skew (95/5 read/write, "
              "notification-driven invalidation, simulated)");

  const double speedup = base_ops > 0.0 ? cached_ops / base_ops : 0.0;
  std::cout << "\nsummary: Zipf(0.99) cached("
            << (headline_budget >> 10) << "KiB)/uncached = " << speedup
            << "x (target >= 2x)\n";
  json.Begin("headline");
  json.Int("budget_bytes", headline_budget);
  json.Num("theta", 0.99);
  json.Num("speedup_vs_uncached", speedup, 4);
  json.Num("target", 2.0);

  json.Write(JsonOutputPath(argc, argv, "BENCH_e12.json"));
  return speedup >= 2.0 ? 0 : 1;
}
